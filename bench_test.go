// Package rubin_test hosts the top-level benchmark harness: one testing.B
// benchmark per figure/table of the paper's evaluation (plus the E5/E6
// extensions). Each iteration runs a full deterministic simulation; the
// reported custom metrics are *virtual* time and rate — the simulated
// cluster's numbers, which the paper's figures correspond to — while ns/op
// measures the simulator's real cost.
//
// Regenerate the figures directly with:
//
//	go test -bench=Fig3 -benchtime=1x
//	go run ./cmd/fig3bench   (full sweep, pretty tables)
package rubin_test

import (
	"fmt"
	"testing"

	"rubin/internal/bench"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/reptor"
	"rubin/internal/transport"
)

// benchPayloadsKB are the representative points of the 1–100 KB sweep.
var benchPayloadsKB = []int{1, 16, 100}

func echoCfg(kb int) bench.EchoConfig {
	cfg := bench.DefaultEchoConfig(kb << 10)
	cfg.Messages = 200
	cfg.Warmup = 20
	return cfg
}

// BenchmarkFig3Latency regenerates Figure 3a (echo latency per stack).
func BenchmarkFig3Latency(b *testing.B) {
	for _, stack := range bench.Fig3Stacks() {
		for _, kb := range benchPayloadsKB {
			stack, kb := stack, kb
			b.Run(fmt.Sprintf("%s/%dKB", stack, kb), func(b *testing.B) {
				var last bench.EchoResult
				for i := 0; i < b.N; i++ {
					res, err := bench.RunFig3(stack, echoCfg(kb), model.Default())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MeanRT.Micros(), "vus/op")
				b.ReportMetric(last.P99RT.Micros(), "vus/p99")
			})
		}
	}
}

// BenchmarkFig3Throughput regenerates Figure 3b (echo throughput).
func BenchmarkFig3Throughput(b *testing.B) {
	for _, stack := range bench.Fig3Stacks() {
		for _, kb := range benchPayloadsKB {
			stack, kb := stack, kb
			b.Run(fmt.Sprintf("%s/%dKB", stack, kb), func(b *testing.B) {
				var last bench.EchoResult
				for i := 0; i < b.N; i++ {
					res, err := bench.RunFig3(stack, echoCfg(kb), model.Default())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.Throughput/1000, "vkrps")
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (RUBIN vs Java-NIO selector over the
// Reptor communication stack; latency and throughput in one run).
func BenchmarkFig4(b *testing.B) {
	names := map[transport.Kind]string{transport.KindRDMA: "Rubin", transport.KindTCP: "TCP"}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		for _, kb := range benchPayloadsKB {
			kind, kb := kind, kb
			b.Run(fmt.Sprintf("%s/%dKB", names[kind], kb), func(b *testing.B) {
				cfg := bench.DefaultFig4Config(kb << 10)
				cfg.Messages = 300
				cfg.Warmup = 50
				var last bench.EchoResult
				for i := 0; i < b.N; i++ {
					res, err := bench.RunFig4(kind, cfg, model.Default())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MeanRT.Micros(), "vus/op")
				b.ReportMetric(last.Throughput, "vrps")
			})
		}
	}
}

// BenchmarkBFTAgreement regenerates experiment E5: the fully replicated
// system (4-replica PBFT) over both transport stacks.
func BenchmarkBFTAgreement(b *testing.B) {
	names := map[transport.Kind]string{transport.KindRDMA: "Reptor+RUBIN", transport.KindTCP: "Reptor+NIO"}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		for _, kb := range []int{1, 16} {
			kind, kb := kind, kb
			b.Run(fmt.Sprintf("%s/%dKB", names[kind], kb), func(b *testing.B) {
				cfg := bench.DefaultBFTConfig(kind, kb<<10)
				cfg.Requests = 150
				cfg.Warmup = 20
				var last bench.BFTResult
				for i := 0; i < b.N; i++ {
					res, err := bench.RunBFT(cfg, model.Default())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MeanLat.Micros(), "vus/op")
				b.ReportMetric(last.Throughput, "vrps")
			})
		}
	}
}

// BenchmarkAblation regenerates experiment E6: each Section IV
// optimization disabled in isolation, at a small and a large payload.
func BenchmarkAblation(b *testing.B) {
	for _, ab := range bench.Ablations() {
		for _, kb := range []int{2, 100} {
			ab, kb := ab, kb
			b.Run(fmt.Sprintf("%s/%dKB", ab.Name, kb), func(b *testing.B) {
				tab, err := bench.AblationTable([]int{kb}, model.Default())
				if err != nil {
					b.Fatal(err)
				}
				series := tab.Get(ab.Name)
				if series == nil {
					b.Fatalf("missing series %q", ab.Name)
				}
				for i := 1; i < b.N; i++ {
					if _, err := bench.AblationTable([]int{kb}, model.Default()); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(series.At(float64(kb)), "vus/op")
			})
		}
	}
}

// BenchmarkCOPScaling measures Reptor's consensus-oriented parallelization:
// ordering throughput with K parallel instances.
func BenchmarkCOPScaling(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("instances-%d", k), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := reptor.DefaultConfig()
				cfg.Instances = k
				g, err := reptor.NewGroup(transport.KindRDMA, cfg, model.Default(), 1,
					func(int) pbft.Application { return kvstore.New() })
				if err != nil {
					b.Fatal(err)
				}
				if err := g.Start(); err != nil {
					b.Fatal(err)
				}
				cl, err := g.AddClient()
				if err != nil {
					b.Fatal(err)
				}
				const requests = 100
				done := 0
				start := g.Loop.Now()
				finish := start
				g.Loop.Post(func() {
					for r := 0; r < requests; r++ {
						cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("w%04d", r), "v"), func([]byte) {
							done++
							finish = g.Loop.Now()
						})
					}
				})
				g.Loop.Run()
				if done != requests {
					b.Fatalf("completed %d of %d", done, requests)
				}
				rate = float64(requests) / (finish - start).Seconds()
			}
			b.ReportMetric(rate, "vrps")
		})
	}
}
