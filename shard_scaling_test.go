package rubin_test

import (
	"math"
	"testing"

	"rubin/internal/metrics"
)

// TestShardScalingCheckedIn pins the headline claim of E10 against the
// checked-in BENCH_E10.json: the sweep covers S ∈ {1,2,4,8} on both
// transports, and at a 0% cross-shard share, partitioning the keyspace
// into four consensus groups lifts committed throughput at least 2.5x
// over the single-group deployment on at least one transport. If a
// change to the consensus core or the router erodes the scale-out, the
// regenerated file fails here instead of silently shipping.
func TestShardScalingCheckedIn(t *testing.T) {
	res, err := metrics.ReadResultFile("BENCH_E10.json")
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "E10" {
		t.Fatalf("experiment %q, want E10", res.Experiment)
	}
	shards := []float64{1, 2, 4, 8}
	names := []string{"scale cross=0% RUBIN", "scale cross=0% NIO"}
	bestRatio := 0.0
	for _, name := range names {
		s := res.GetSeries(name, metrics.MetricCommittedGoodput)
		if s == nil {
			t.Fatalf("missing series (%s, %s)", name, metrics.MetricCommittedGoodput)
		}
		for _, x := range shards {
			if y := s.At(x); math.IsNaN(y) || y <= 0 {
				t.Fatalf("series %q: no positive point at %v shards", name, x)
			}
		}
		if ratio := s.At(4) / s.At(1); ratio > bestRatio {
			bestRatio = ratio
		}
	}
	if bestRatio < 2.5 {
		t.Fatalf("committed goodput S=4/S=1 = %.2fx on the better transport, want >= 2.5x", bestRatio)
	}
}
