package rubin_test

import (
	"math"
	"testing"

	"rubin/internal/bench"
	"rubin/internal/metrics"
	"rubin/internal/raceflag"
)

// TestAllocRegressionCheckedIn is the allocation-regression gate: it
// re-measures the ALLOC experiment in process and compares every point
// against the checked-in BENCH_ALLOC.json. A layer whose steady-state
// allocs/op grow more than 10% past the baseline (plus a fixed 0.25
// slack so an exact-zero baseline still tolerates AllocsPerRun's
// truncation jitter) fails here instead of silently shipping. It also
// pins the headline bounds of the hot-path pass on the baseline file
// itself: whole-message sends at most 1 alloc/op and auth MACs exactly
// zero, so a regenerated file cannot quietly relax the claim.
func TestAllocRegressionCheckedIn(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	base, err := metrics.ReadResultFile("BENCH_ALLOC.json")
	if err != nil {
		t.Fatal(err)
	}
	if base.Experiment != "ALLOC" {
		t.Fatalf("experiment %q, want ALLOC", base.Experiment)
	}
	for _, s := range base.Series {
		for _, p := range s.Points {
			switch {
			case s.Name == "msgnet send whole" && p.Y > 1:
				t.Errorf("baseline %q at %v bytes: %.2f allocs/op, want <= 1", s.Name, p.X, p.Y)
			case s.Name == "auth mac" && p.Y != 0:
				t.Errorf("baseline %q at n=%v: %.2f allocs/op, want 0", s.Name, p.X, p.Y)
			}
		}
	}

	// Quick mode shrinks only the AllocsPerRun iteration count; the sweep
	// points match the full-mode baseline one for one.
	rc := bench.DefaultRunContext()
	rc.Quick = true
	fresh, err := bench.Run("ALLOC", rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range base.Series {
		fs := fresh.GetSeries(bs.Name, bs.Metric)
		if fs == nil {
			t.Errorf("series (%s, %s) missing from fresh run", bs.Name, bs.Metric)
			continue
		}
		for _, p := range bs.Points {
			got := fs.At(p.X)
			if math.IsNaN(got) {
				t.Errorf("series %q: fresh run has no point at x=%v", bs.Name, p.X)
				continue
			}
			if limit := p.Y*1.10 + 0.25; got > limit {
				t.Errorf("series %q at x=%v: measured %.2f allocs/op, baseline %.2f (limit %.2f)",
					bs.Name, p.X, got, p.Y, limit)
			}
		}
	}
}
