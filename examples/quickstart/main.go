// Quickstart: an echo client/server over the RUBIN channel and selector —
// the paper's Figure 1 components in ~60 lines of application code.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/rdma"
	"rubin/internal/rubin"
	"rubin/internal/sim"
)

func main() {
	// The simulated testbed: two hosts on a 10 Gbps RDMA-capable link.
	loop := sim.NewLoop(42)
	params := model.Default()
	nw := fabric.New(loop, params)
	clientNode, serverNode := nw.AddNode("client"), nw.AddNode("server")
	nw.Connect(clientNode, serverNode)

	clientDev, serverDev := rdma.OpenDevice(clientNode), rdma.OpenDevice(serverNode)
	clientSel, serverSel := rubin.NewSelector(clientDev), rubin.NewSelector(serverDev)

	cfg := rubin.DefaultConfig(params)

	// Server: accept channels via OpConnect, echo messages via OpReceive.
	srv, err := rubin.Listen(serverDev, 7000, cfg)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	serverSel.Register(srv, rubin.OpConnect, nil)
	serverSel.Select(func(keys []*rubin.SelectionKey) {
		for _, k := range keys {
			switch ch := k.Channel().(type) {
			case *rubin.ServerChannel:
				if k.Ready()&rubin.OpConnect != 0 {
					for {
						c := ch.Accept()
						if c == nil {
							break
						}
						fmt.Printf("server: accepted channel id=%d\n", c.ID())
						serverSel.Register(c, rubin.OpReceive, nil)
					}
				}
			case *rubin.Channel:
				if k.Ready()&rubin.OpReceive != 0 {
					for {
						msg, ok := ch.Receive()
						if !ok {
							break
						}
						if err := ch.Send(msg); err != nil {
							log.Fatalf("echo send: %v", err)
						}
					}
				}
			}
		}
	})

	// Client: connect, send a few messages, measure round trips.
	var client *rubin.Channel
	_, err = rubin.Connect(clientDev, serverNode, 7000, cfg, func(ch *rubin.Channel, err error) {
		if err != nil {
			log.Fatalf("connect: %v", err)
		}
		client = ch
	})
	if err != nil {
		log.Fatalf("connect setup: %v", err)
	}
	loop.Run()

	sent := map[int]sim.Time{}
	received := 0
	const messages = 5
	clientSel.Register(client, rubin.OpReceive, nil)
	clientSel.Select(func(keys []*rubin.SelectionKey) {
		for _, k := range keys {
			ch, ok := k.Channel().(*rubin.Channel)
			if !ok || k.Ready()&rubin.OpReceive == 0 {
				continue
			}
			for {
				msg, ok := ch.Receive()
				if !ok {
					break
				}
				rtt := loop.Now() - sent[received]
				fmt.Printf("client: echo %d (%d bytes) RTT=%v\n", received, len(msg), rtt)
				received++
			}
		}
	})

	loop.Post(func() {
		for i := 0; i < messages; i++ {
			payload := make([]byte, 1<<10*(i+1)) // 1..5 KB
			sent[i] = loop.Now()
			if err := client.Send(payload); err != nil {
				log.Fatalf("send: %v", err)
			}
		}
	})
	loop.Run()

	fmt.Printf("\ndone: %d echoes, %d send completions signaled (selective signaling interval %d)\n",
		received, client.SignaledCompletions(), cfg.SignalInterval)
}
