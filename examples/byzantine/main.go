// Example byzantine: fault injection against the replicated store. The
// leader of view 0 crashes mid-workload; the remaining replicas detect the
// silence via request timers, run a view change, and the new leader
// finishes the workload — no client request is lost and no state diverges.
//
// Run with: go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func main() {
	cluster, err := pbft.NewCluster(transport.KindRDMA, pbft.DefaultConfig(), model.Default(), 11,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	loop := cluster.Loop

	for i, rep := range cluster.Replicas {
		i := i
		rep.OnViewChange(func(v uint64) {
			fmt.Printf("t=%v replica %d installed view %d (new leader: replica %d)\n",
				loop.Now(), i, v, v%4)
		})
	}

	fmt.Println("phase 1: healthy cluster, leader = replica 0")
	done := 0
	loop.Post(func() {
		for k := 0; k < 3; k++ {
			key := fmt.Sprintf("pre-%d", k)
			client.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, "ok"), func([]byte) { done++ })
		}
	})
	loop.Run()
	fmt.Printf("  %d requests committed in view 0\n\n", done)

	fmt.Println("phase 2: leader (replica 0) crashes; submitting more requests")
	cluster.Replicas[0].SetFaults(pbft.Faults{Crashed: true})
	loop.Post(func() {
		for k := 0; k < 3; k++ {
			key := fmt.Sprintf("post-%d", k)
			t0 := loop.Now()
			client.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, "survived"), func([]byte) {
				done++
				fmt.Printf("t=%v request %s committed after view change (latency %v)\n", loop.Now(), key, loop.Now()-t0)
			})
		}
	})
	loop.RunUntil(loop.Now() + 500*sim.Millisecond)

	fmt.Printf("\ntotal committed: %d/6\n", done)
	fmt.Println("state digests of live replicas (must match):")
	for i := 1; i < 4; i++ {
		fmt.Printf("  replica %d: %s  view=%d executed=%d\n",
			i, cluster.Apps[i].Snapshot().Short(), cluster.Replicas[i].View(), cluster.Replicas[i].Executed())
	}
	if done != 6 {
		log.Fatal("byzantine example failed: not all requests committed")
	}
	fmt.Println("\nthe cluster tolerated the fault: agreement continued under the new leader")
}
