// Example byzantine: scripted fault injection against the replicated
// store using the chaos scenario API. The leader of view 0 crashes
// mid-workload; the remaining replicas detect the silence via request
// timers, run a view change, and the new leader finishes the workload.
// Later the crashed replica restarts with empty state and rejoins the
// group through PBFT state transfer — no client request is lost, no state
// diverges, and the whole timeline is deterministic for a given seed.
//
// Run with: go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"rubin/internal/chaos"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func main() {
	cfg := pbft.DefaultConfig()
	cfg.BatchSize = 1       // one sequence per request: visible checkpoints
	cfg.CheckpointEvery = 4 // checkpoint often so recovery has state to fetch
	cluster, err := pbft.NewCluster(transport.KindRDMA, cfg, model.Default(), 11,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	loop := cluster.Loop

	hookViews := func(i int, rep *pbft.Replica) {
		rep.OnViewChange(func(v uint64) {
			fmt.Printf("t=%v replica %d installed view %d (new leader: replica %d)\n",
				loop.Now(), i, v, rep.Leader(v))
		})
	}
	for i, rep := range cluster.Replicas {
		hookViews(i, rep)
	}
	cluster.OnRestart = hookViews

	// The fault script: the view-0 leader crashes at +20ms and reboots
	// with empty state at +150ms.
	scenario := chaos.NewScenario("primary-crash-and-recovery").
		Crash(20*sim.Millisecond, 0).
		Restart(150*sim.Millisecond, 0)
	sched := chaos.Apply(cluster, scenario)
	base := loop.Now()

	// The workload: three writes per phase — before the crash, while the
	// leader is down (these must survive the view change), and after the
	// restart (these drive the checkpoint the newcomer fetches).
	done := 0
	put := func(key string) {
		t0 := loop.Now()
		client.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, "ok"), func([]byte) {
			done++
			fmt.Printf("t=%v request %s committed (latency %v)\n", loop.Now(), key, loop.Now()-t0)
		})
	}
	phases := []struct {
		at     sim.Time
		prefix string
		banner string
	}{
		{0, "pre", "phase 1: healthy cluster, leader = replica 0"},
		{30 * sim.Millisecond, "post", "phase 2: leader crashed; requests must survive the view change"},
		{200 * sim.Millisecond, "rejoin", "phase 3: replica 0 restarted; new writes advance the checkpoint it fetches"},
	}
	for _, ph := range phases {
		ph := ph
		loop.At(base+ph.at, func() {
			fmt.Printf("\n%s\n", ph.banner)
			for k := 0; k < 3; k++ {
				put(fmt.Sprintf("%s-%d", ph.prefix, k))
			}
		})
	}
	loop.RunUntil(base + 600*sim.Millisecond)

	if err := sched.Err(); err != nil {
		log.Fatalf("scenario: %v", err)
	}
	fmt.Printf("\nfault timeline:\n%s", sched.TraceString())
	fmt.Printf("total committed: %d/9\n", done)
	fmt.Printf("replica 0 rejoined via %d state transfer(s)\n", cluster.Replicas[0].StateTransfers())
	fmt.Printf("delivery failures surfaced: %d (peak msgnet send queue: %d bytes)\n",
		cluster.SendFaults(), cluster.PeakQueueBytes())
	fmt.Println("state digests of all replicas (must match):")
	d0 := cluster.Apps[0].Snapshot()
	diverged := false
	for i, rep := range cluster.Replicas {
		fmt.Printf("  replica %d: %s  view=%d executed=%d\n",
			i, cluster.Apps[i].Snapshot().Short(), rep.View(), rep.Executed())
		if cluster.Apps[i].Snapshot() != d0 {
			diverged = true
		}
	}
	if done != 9 || diverged || cluster.Replicas[0].StateTransfers() == 0 {
		log.Fatal("byzantine example failed: lost requests, divergent state, or no recovery")
	}
	fmt.Println("\nthe cluster tolerated the crash and recovered the replica: agreement never stopped")
}
