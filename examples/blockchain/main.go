// Example blockchain: a permissioned blockchain whose consensus layer is
// PBFT over RDMA — the deployment the paper's introduction motivates.
// Transactions are ordered by the replica group and sealed into
// hash-chained blocks; every replica builds the identical chain.
//
// Run with: go run ./examples/blockchain
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"rubin/internal/auth"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/transport"
)

// blockSize is how many transactions seal a block.
const blockSize = 4

// Block is one sealed element of the chain.
type Block struct {
	Height   int
	PrevHash auth.Digest
	Hash     auth.Digest
	Txs      []string
}

// Ledger is the replicated state machine: it orders transactions into
// hash-chained blocks. It implements pbft.Application.
type Ledger struct {
	chain   []Block
	pending []string
}

// Execute appends one transaction and seals a block when full.
func (l *Ledger) Execute(op []byte) []byte {
	l.pending = append(l.pending, string(op))
	if len(l.pending) >= blockSize {
		l.seal()
	}
	return []byte(fmt.Sprintf("accepted@%d", len(l.chain)))
}

func (l *Ledger) seal() {
	var prev auth.Digest
	if n := len(l.chain); n > 0 {
		prev = l.chain[n-1].Hash
	}
	var buf []byte
	buf = append(buf, prev[:]...)
	for _, tx := range l.pending {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(tx)))
		buf = append(buf, tx...)
	}
	l.chain = append(l.chain, Block{
		Height:   len(l.chain),
		PrevHash: prev,
		Hash:     auth.Hash(buf),
		Txs:      l.pending,
	})
	l.pending = nil
}

// Snapshot digests the chain head (pbft.Application).
func (l *Ledger) Snapshot() auth.Digest {
	if len(l.chain) == 0 {
		return auth.Digest{}
	}
	return l.chain[len(l.chain)-1].Hash
}

func main() {
	cfg := pbft.DefaultConfig()
	cfg.BatchSize = 1 // one consensus slot per transaction for clarity
	cluster, err := pbft.NewCluster(transport.KindRDMA, cfg, model.Default(), 7,
		func(i int) pbft.Application { return &Ledger{} })
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	txs := []string{
		"alice->bob:10", "bob->carol:4", "carol->dave:1", "dave->alice:7",
		"bob->alice:2", "carol->bob:3", "alice->dave:5", "dave->carol:6",
	}
	loop := cluster.Loop
	confirmed := 0
	loop.Post(func() {
		for _, tx := range txs {
			tx := tx
			t0 := loop.Now()
			client.Invoke([]byte(tx), func(result []byte) {
				confirmed++
				fmt.Printf("tx %-16s %-12s confirmation time %v\n", tx, result, loop.Now()-t0)
			})
		}
	})
	loop.Run()

	fmt.Printf("\n%d/%d transactions confirmed (BFT consensus finality — no forks possible)\n\n", confirmed, len(txs))
	ledger := cluster.Apps[0].(*Ledger)
	fmt.Println("chain at replica 0:")
	for _, b := range ledger.chain {
		fmt.Printf("  block %d  hash=%s  prev=%s  txs=%v\n", b.Height, b.Hash.Short(), b.PrevHash.Short(), b.Txs)
	}
	fmt.Println("\nchain heads (must all match):")
	for i, app := range cluster.Apps {
		fmt.Printf("  replica %d: %s (%d blocks)\n", i, app.Snapshot().Short(), len(app.(*Ledger).chain))
	}
}
