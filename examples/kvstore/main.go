// Example kvstore: a Byzantine fault-tolerant replicated key/value store.
// Four PBFT replicas order client operations over the RUBIN RDMA stack;
// the client accepts a result once f+1 replicas agree.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/transport"
)

func main() {
	cluster, err := pbft.NewCluster(transport.KindRDMA, pbft.DefaultConfig(), model.Default(), 42,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	type op struct {
		desc string
		op   []byte
	}
	ops := []op{
		{`PUT currency=BFT`, kvstore.EncodeOp(kvstore.OpPut, "currency", "BFT")},
		{`PUT block-42=0xabc`, kvstore.EncodeOp(kvstore.OpPut, "block-42", "0xabc")},
		{`GET currency`, kvstore.EncodeOp(kvstore.OpGet, "currency", "")},
		{`DELETE block-42`, kvstore.EncodeOp(kvstore.OpDelete, "block-42", "")},
		{`GET block-42`, kvstore.EncodeOp(kvstore.OpGet, "block-42", "")},
	}
	loop := cluster.Loop
	loop.Post(func() {
		for _, o := range ops {
			o := o
			t0 := loop.Now()
			client.Invoke(o.op, func(result []byte) {
				fmt.Printf("%-22s -> %-10q  (agreement latency %v)\n", o.desc, result, loop.Now()-t0)
			})
		}
	})
	loop.Run()

	fmt.Println("\nreplica state digests (must all match):")
	for i, app := range cluster.Apps {
		fmt.Printf("  replica %d: %s  executed=%d\n", i, app.Snapshot().Short(), cluster.Replicas[i].Executed())
	}
}
