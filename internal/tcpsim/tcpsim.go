// Package tcpsim simulates a kernel TCP/IP stack with the cost structure
// the paper attributes to it: per-call syscall crossings, user<->kernel
// buffer copies, per-MTU-segment protocol processing, interrupts, and
// scheduler wakeups — all charged to the host CPU resource. This is the
// baseline that RDMA's kernel bypass and zero copy eliminate.
//
// The API is non-blocking and event-driven (the simulator has no blocked
// goroutines): Read and Write transfer whatever is possible immediately and
// return short counts otherwise, and OnReadable/OnWritable callbacks signal
// readiness transitions. Package nio builds a Java-NIO-style selector on
// top of these callbacks.
//
// Delivery relies on the fabric's in-order per-direction links, so no
// retransmission logic is modeled; flow control (socket-buffer windows) is.
package tcpsim

import (
	"errors"
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// Errors returned by connection operations.
var (
	ErrClosed       = errors.New("tcpsim: connection closed")
	ErrPortInUse    = errors.New("tcpsim: port already in use")
	ErrNoListener   = errors.New("tcpsim: connection refused")
	ErrStackExists  = errors.New("tcpsim: node already has a TCP stack")
	headerWireBytes = 60 // control segment size on the wire
)

// Stack is the per-node TCP instance. Create one per fabric node.
type Stack struct {
	node      *fabric.Node
	params    model.Params
	listeners map[int]*Listener
	conns     map[connID]*Conn
	nextPort  int

	// app serializes application-side syscall work (Write/Read/Dial).
	// It models the single selector thread of the NIO architecture the
	// paper targets, and guarantees that a connection's writes enter the
	// send queue in call order. Kernel work (interrupts, segment
	// processing) runs on the node's multi-core CPU instead.
	app *sim.Resource

	// Interrupt coalescing: segments arriving while the receive softirq
	// is active are drained in the same batch without a fresh interrupt
	// charge. rxFrom parallels rxQueue.
	rxQueue  []*segment
	rxFrom   []*fabric.Node
	rxActive bool
}

type connID struct {
	peer       string
	localPort  int
	remotePort int
}

// segment is the unit carried over the fabric.
type segment struct {
	kind     segKind
	srcPort  int
	dstPort  int
	payload  []byte
	consumed int // windowUpdate: bytes the peer application consumed
}

type segKind uint8

const (
	segSYN segKind = iota + 1
	segSYNACK
	segRST
	segDATA
	segWINDOW
	segFIN
)

// NewStack creates the TCP stack on a node and registers it for ProtoTCP
// frames. A node can host at most one stack.
func NewStack(node *fabric.Node) *Stack {
	s := &Stack{
		node:      node,
		params:    node.Network().Params(),
		listeners: make(map[int]*Listener),
		conns:     make(map[connID]*Conn),
		nextPort:  49152,
		app:       sim.NewResource(node.Loop(), node.Name()+"/tcp-app", 1),
	}
	node.Register(fabric.ProtoTCP, s.deliver)
	return s
}

// Node returns the fabric node this stack runs on.
func (s *Stack) Node() *fabric.Node { return s.node }

// AppThread returns the stack's single application/selector thread
// resource, where layers above the socket charge their per-message work.
func (s *Stack) AppThread() *sim.Resource { return s.app }

func (s *Stack) loop() *sim.Loop { return s.node.Loop() }

// Listen opens a listening port. onAccept runs for every established
// inbound connection.
func (s *Stack) Listen(port int, onAccept func(*Conn)) (*Listener, error) {
	if _, used := s.listeners[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{stack: s, port: port, onAccept: onAccept}
	s.listeners[port] = l
	return l, nil
}

// Dial opens a connection to port on the remote node. done is called once
// the three-way handshake completes (or fails).
func (s *Stack) Dial(remote *fabric.Node, port int, done func(*Conn, error)) {
	local := s.nextPort
	s.nextPort++
	c := s.newConn(remote, local, port)
	c.state = stateSYNSent
	c.onDialed = done
	s.conns[c.id()] = c
	// Connection setup costs one syscall plus the handshake round trip.
	s.app.Acquire(s.params.TCP.SendSyscall, func() {
		c.sendControl(segSYN)
	})
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack    *Stack
	port     int
	onAccept func(*Conn)
	closed   bool
}

// Port returns the listening port.
func (l *Listener) Port() int { return l.port }

// Close stops accepting new connections.
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		delete(l.stack.listeners, l.port)
	}
}

type connState uint8

const (
	stateSYNSent connState = iota + 1
	stateEstablished
	stateClosed
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack      *Stack
	remote     *fabric.Node
	localPort  int
	remotePort int
	state      connState

	onDialed   func(*Conn, error)
	onReadable func()
	onWritable func()
	onClose    func()

	// Send side: bytes accepted from the application but not yet
	// permitted onto the wire by the peer's advertised window.
	sendQ    [][]byte
	sendQLen int
	inFlight int // bytes on the wire not yet consumed by the peer app

	// Receive side: the kernel socket buffer.
	recvBuf    []byte
	notifyArm  bool // a readable wakeup is already scheduled
	writeBlock bool // application hit a zero window and awaits OnWritable
}

func (s *Stack) newConn(remote *fabric.Node, localPort, remotePort int) *Conn {
	return &Conn{
		stack:      s,
		remote:     remote,
		localPort:  localPort,
		remotePort: remotePort,
	}
}

func (c *Conn) id() connID {
	return connID{peer: c.remote.Name(), localPort: c.localPort, remotePort: c.remotePort}
}

// LocalNode returns the node this endpoint lives on.
func (c *Conn) LocalNode() *fabric.Node { return c.stack.node }

// RemoteNode returns the peer's node.
func (c *Conn) RemoteNode() *fabric.Node { return c.remote }

// LocalPort returns the local port number.
func (c *Conn) LocalPort() int { return c.localPort }

// RemotePort returns the peer's port number.
func (c *Conn) RemotePort() int { return c.remotePort }

// Established reports whether the connection is open for data transfer.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// OnReadable installs the callback invoked (after the modeled interrupt and
// wakeup latency) whenever the receive buffer transitions to non-empty.
func (c *Conn) OnReadable(fn func()) { c.onReadable = fn }

// OnWritable installs the callback invoked when send-buffer space frees up
// after a Write returned a short count.
func (c *Conn) OnWritable(fn func()) { c.onWritable = fn }

// OnClose installs the callback invoked when the peer closes or resets.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// Readable returns the number of bytes immediately available to Read.
func (c *Conn) Readable() int { return len(c.recvBuf) }

// WritableSpace returns how many bytes Write would currently accept.
func (c *Conn) WritableSpace() int {
	space := c.stack.params.TCP.SocketBuffer - c.sendQLen - c.inFlight
	if space < 0 {
		return 0
	}
	return space
}

// Write queues up to len(p) bytes for transmission and returns how many
// were accepted (non-blocking). The syscall, user-to-kernel copy and
// per-segment processing costs are charged to the host CPU; bytes enter the
// wire once those costs have been served and the flow-control window
// permits.
func (c *Conn) Write(p []byte) (int, error) {
	if c.state != stateEstablished {
		return 0, ErrClosed
	}
	n := len(p)
	if space := c.WritableSpace(); n > space {
		n = space
	}
	if n == 0 {
		c.writeBlock = true
		return 0, nil
	}
	data := make([]byte, n)
	copy(data, p)
	tp := c.stack.params.TCP
	cost := tp.SendSyscall + model.KB(tp.CopyPerKB, n) +
		tp.SegmentProc*sim.Time(c.stack.params.Link.Frames(n))
	c.sendQLen += n
	c.stack.app.Acquire(cost, func() {
		c.sendQ = append(c.sendQ, data)
		c.pump()
	})
	return n, nil
}

// pump moves queued bytes onto the wire as MTU segments while the peer's
// advertised window has room.
func (c *Conn) pump() {
	if c.state != stateEstablished {
		return
	}
	mtu := c.stack.params.Link.MTU
	for len(c.sendQ) > 0 {
		window := c.stack.params.TCP.SocketBuffer - c.inFlight
		if window <= 0 {
			return
		}
		head := c.sendQ[0]
		n := len(head)
		if n > mtu {
			n = mtu
		}
		if n > window {
			n = window
		}
		chunk := head[:n]
		if n == len(head) {
			c.sendQ = c.sendQ[1:]
		} else {
			c.sendQ[0] = head[n:]
		}
		c.sendQLen -= n
		c.inFlight += n
		c.send(&segment{kind: segDATA, srcPort: c.localPort, dstPort: c.remotePort, payload: chunk}, n)
	}
}

// Read copies up to len(p) bytes out of the receive buffer, returning the
// count (0 means would-block). The syscall and kernel-to-user copy are
// charged to the CPU; the window update advertising freed space is sent
// once that charge has been served.
func (c *Conn) Read(p []byte) (int, error) {
	if c.state == stateClosed && len(c.recvBuf) == 0 {
		return 0, ErrClosed
	}
	n := copy(p, c.recvBuf)
	if n == 0 {
		return 0, nil
	}
	c.recvBuf = c.recvBuf[n:]
	tp := c.stack.params.TCP
	cost := tp.RecvSyscall + model.KB(tp.CopyPerKB, n)
	c.stack.app.Acquire(cost, func() {
		if c.state == stateEstablished {
			c.send(&segment{kind: segWINDOW, srcPort: c.localPort, dstPort: c.remotePort, consumed: n}, 0)
		}
	})
	return n, nil
}

// Close shuts the connection down and notifies the peer.
func (c *Conn) Close() {
	if c.state == stateClosed {
		return
	}
	if c.state == stateEstablished {
		c.sendControl(segFIN)
	}
	c.teardown()
}

func (c *Conn) teardown() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	delete(c.stack.conns, c.id())
	if c.onClose != nil {
		cb := c.onClose
		c.stack.loop().Post(cb)
	}
}

func (c *Conn) sendControl(kind segKind) {
	c.send(&segment{kind: kind, srcPort: c.localPort, dstPort: c.remotePort}, 0)
}

func (c *Conn) send(seg *segment, payloadBytes int) {
	wire := payloadBytes
	if wire == 0 {
		wire = headerWireBytes
	}
	// Fabric errors (no link / no stack on peer) surface as a reset.
	if err := c.stack.node.Network().Send(c.stack.node, c.remote, fabric.ProtoTCP, seg, wire); err != nil {
		c.teardown()
	}
}

// deliver is the fabric handler: it models interrupt coalescing, then
// per-segment kernel processing, then hands data to connections.
func (s *Stack) deliver(from *fabric.Node, payload any, wireBytes int) {
	seg, ok := payload.(*segment)
	if !ok {
		return
	}
	s.rxQueue = append(s.rxQueue, seg)
	s.rxFrom = append(s.rxFrom, from)
	if s.rxActive {
		return
	}
	s.rxActive = true
	s.node.CPU.Acquire(s.params.TCP.Interrupt, s.drainRx)
}

func (s *Stack) drainRx() {
	if len(s.rxQueue) == 0 {
		s.rxActive = false
		return
	}
	seg := s.rxQueue[0]
	from := s.rxFrom[0]
	s.rxQueue = s.rxQueue[1:]
	s.rxFrom = s.rxFrom[1:]
	s.node.CPU.Acquire(s.params.TCP.SegmentProc, func() {
		s.handleSegment(from, seg)
		s.drainRx()
	})
}

func (s *Stack) handleSegment(from *fabric.Node, seg *segment) {
	switch seg.kind {
	case segSYN:
		l := s.listeners[seg.dstPort]
		if l == nil || l.closed {
			reply := &segment{kind: segRST, srcPort: seg.dstPort, dstPort: seg.srcPort}
			_ = s.node.Network().Send(s.node, from, fabric.ProtoTCP, reply, headerWireBytes)
			return
		}
		c := s.newConn(from, seg.dstPort, seg.srcPort)
		c.state = stateEstablished
		s.conns[c.id()] = c
		c.sendControl(segSYNACK)
		if l.onAccept != nil {
			l.onAccept(c)
		}
	case segSYNACK:
		c := s.conns[connID{peer: from.Name(), localPort: seg.dstPort, remotePort: seg.srcPort}]
		if c == nil || c.state != stateSYNSent {
			return
		}
		c.state = stateEstablished
		if c.onDialed != nil {
			done := c.onDialed
			c.onDialed = nil
			done(c, nil)
		}
	case segRST:
		c := s.conns[connID{peer: from.Name(), localPort: seg.dstPort, remotePort: seg.srcPort}]
		if c == nil {
			return
		}
		if c.onDialed != nil {
			done := c.onDialed
			c.onDialed = nil
			delete(s.conns, c.id())
			c.state = stateClosed
			done(nil, ErrNoListener)
			return
		}
		c.teardown()
	case segDATA:
		c := s.conns[connID{peer: from.Name(), localPort: seg.dstPort, remotePort: seg.srcPort}]
		if c == nil || c.state != stateEstablished {
			return
		}
		c.recvBuf = append(c.recvBuf, seg.payload...)
		c.notifyReadable()
	case segWINDOW:
		c := s.conns[connID{peer: from.Name(), localPort: seg.dstPort, remotePort: seg.srcPort}]
		if c == nil || c.state != stateEstablished {
			return
		}
		c.inFlight -= seg.consumed
		if c.inFlight < 0 {
			c.inFlight = 0
		}
		c.pump()
		if c.writeBlock && c.WritableSpace() > 0 && c.onWritable != nil {
			c.writeBlock = false
			c.onWritable()
		}
	case segFIN:
		c := s.conns[connID{peer: from.Name(), localPort: seg.dstPort, remotePort: seg.srcPort}]
		if c == nil {
			return
		}
		c.teardown()
	}
}

// notifyReadable schedules the application wakeup (at most one outstanding).
func (c *Conn) notifyReadable() {
	if c.onReadable == nil || c.notifyArm {
		return
	}
	c.notifyArm = true
	c.stack.node.CPU.Acquire(c.stack.params.TCP.Wakeup, func() {
		c.notifyArm = false
		if c.onReadable != nil && len(c.recvBuf) > 0 {
			c.onReadable()
		}
	})
}
