package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

type pair struct {
	loop   *sim.Loop
	nw     *fabric.Network
	a, b   *fabric.Node
	sa, sb *Stack
}

func newPair(t *testing.T) *pair {
	t.Helper()
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	a, b := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(a, b)
	return &pair{loop: loop, nw: nw, a: a, b: b, sa: NewStack(a), sb: NewStack(b)}
}

// connect establishes a client connection from a to a listener on b and
// returns both endpoints.
func (p *pair) connect(t *testing.T, port int) (client, server *Conn) {
	t.Helper()
	if _, err := p.sb.Listen(port, func(c *Conn) { server = c }); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	p.loop.At(0, func() {
		p.sa.Dial(p.b, port, func(c *Conn, err error) {
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			client = c
		})
	})
	p.loop.Run()
	if client == nil || server == nil {
		t.Fatal("handshake did not complete")
	}
	return client, server
}

func TestHandshake(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)
	if !client.Established() || !server.Established() {
		t.Fatal("connections should be established")
	}
	if client.RemotePort() != 1000 || server.LocalPort() != 1000 {
		t.Fatal("port mismatch")
	}
	if client.LocalNode() != p.a || client.RemoteNode() != p.b {
		t.Fatal("node endpoints wrong")
	}
}

func TestDialConnectionRefused(t *testing.T) {
	p := newPair(t)
	var gotErr error
	called := false
	p.loop.At(0, func() {
		p.sa.Dial(p.b, 4242, func(c *Conn, err error) {
			called = true
			gotErr = err
			if c != nil {
				t.Error("conn should be nil on refusal")
			}
		})
	})
	p.loop.Run()
	if !called {
		t.Fatal("dial callback never ran")
	}
	if gotErr == nil {
		t.Fatal("expected connection refused")
	}
}

func TestListenPortInUse(t *testing.T) {
	p := newPair(t)
	if _, err := p.sb.Listen(7, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sb.Listen(7, nil); err == nil {
		t.Fatal("second Listen on same port should fail")
	}
}

func TestListenerCloseFreesPort(t *testing.T) {
	p := newPair(t)
	l, err := p.sb.Listen(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := p.sb.Listen(7, nil); err != nil {
		t.Fatalf("Listen after Close: %v", err)
	}
}

func TestDataTransferPreservesBytes(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)

	msg := make([]byte, 5000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	var rx []byte
	server.OnReadable(func() {
		buf := make([]byte, 64<<10)
		for {
			n, err := server.Read(buf)
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			rx = append(rx, buf[:n]...)
		}
	})
	p.loop.Post(func() {
		n, err := client.Write(msg)
		if err != nil || n != len(msg) {
			t.Errorf("Write = (%d, %v), want (%d, nil)", n, err, len(msg))
		}
	})
	p.loop.Run()
	if !bytes.Equal(rx, msg) {
		t.Fatalf("received %d bytes, want %d; data corrupted", len(rx), len(msg))
	}
}

func TestEchoRoundTripLatencyIsPlausible(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)

	buf := make([]byte, 64<<10)
	server.OnReadable(func() {
		n, _ := server.Read(buf)
		if n > 0 {
			_, _ = server.Write(buf[:n])
		}
	})
	var start, end sim.Time
	payload := make([]byte, 1024)
	got := 0
	client.OnReadable(func() {
		n, _ := client.Read(buf)
		got += n
		if got == len(payload) {
			end = p.loop.Now()
		}
	})
	p.loop.Post(func() {
		start = p.loop.Now()
		_, _ = client.Write(payload)
	})
	p.loop.Run()
	if end == 0 {
		t.Fatal("echo never completed")
	}
	rtt := end - start
	// Calibration: 1 KB TCP echo should land in the low hundreds of µs
	// (paper Fig. 3a shows ~200 µs at 1 KB).
	if rtt < 50*sim.Microsecond || rtt > 500*sim.Microsecond {
		t.Fatalf("1KB echo RTT %v outside plausible band", rtt)
	}
}

func TestLargeTransferSegmentsAndFlowControl(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)

	total := 6 << 20 // larger than the 4 MB socket buffer: exercises windows
	var rx int
	buf := make([]byte, 128<<10)
	server.OnReadable(func() {
		for {
			n, _ := server.Read(buf)
			if n == 0 {
				break
			}
			rx += n
		}
	})
	remaining := total
	var pumpWrite func()
	pumpWrite = func() {
		for remaining > 0 {
			chunk := remaining
			if chunk > 256<<10 {
				chunk = 256 << 10
			}
			n, err := client.Write(make([]byte, chunk))
			if err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			remaining -= n
			if n == 0 {
				client.OnWritable(pumpWrite)
				return
			}
		}
	}
	p.loop.Post(pumpWrite)
	p.loop.Run()
	if rx != total {
		t.Fatalf("received %d bytes, want %d", rx, total)
	}
}

func TestWriteOnClosedConnFails(t *testing.T) {
	p := newPair(t)
	client, _ := p.connect(t, 1000)
	p.loop.Post(func() {
		client.Close()
		if _, err := client.Write([]byte("x")); err == nil {
			t.Error("Write after Close should fail")
		}
	})
	p.loop.Run()
}

func TestCloseNotifiesPeer(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)
	closed := false
	server.OnClose(func() { closed = true })
	p.loop.Post(client.Close)
	p.loop.Run()
	if !closed {
		t.Fatal("peer did not observe close")
	}
	if server.Established() {
		t.Fatal("server conn should be closed")
	}
}

func TestReadOnClosedDrainedConnFails(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)
	var readErr error
	server.OnClose(func() {
		_, readErr = server.Read(make([]byte, 10))
	})
	p.loop.Post(client.Close)
	p.loop.Run()
	if readErr == nil {
		t.Fatal("Read on closed drained conn should fail")
	}
}

func TestReadWouldBlockReturnsZero(t *testing.T) {
	p := newPair(t)
	client, _ := p.connect(t, 1000)
	p.loop.Post(func() {
		n, err := client.Read(make([]byte, 10))
		if n != 0 || err != nil {
			t.Errorf("Read on empty conn = (%d, %v), want (0, nil)", n, err)
		}
	})
	p.loop.Run()
}

func TestBidirectionalTransfer(t *testing.T) {
	p := newPair(t)
	client, server := p.connect(t, 1000)
	var fromClient, fromServer []byte
	buf := make([]byte, 32<<10)
	server.OnReadable(func() {
		n, _ := server.Read(buf)
		fromClient = append(fromClient, buf[:n]...)
	})
	client.OnReadable(func() {
		n, _ := client.Read(buf)
		fromServer = append(fromServer, buf[:n]...)
	})
	p.loop.Post(func() {
		_, _ = client.Write(bytes.Repeat([]byte("c"), 3000))
		_, _ = server.Write(bytes.Repeat([]byte("s"), 3000))
	})
	p.loop.Run()
	if len(fromClient) != 3000 || len(fromServer) != 3000 {
		t.Fatalf("got %d/%d bytes, want 3000/3000", len(fromClient), len(fromServer))
	}
}

func TestMultipleConnectionsAreIsolated(t *testing.T) {
	p := newPair(t)
	var servers []*Conn
	if _, err := p.sb.Listen(1000, func(c *Conn) { servers = append(servers, c) }); err != nil {
		t.Fatal(err)
	}
	var clients []*Conn
	p.loop.At(0, func() {
		for i := 0; i < 3; i++ {
			p.sa.Dial(p.b, 1000, func(c *Conn, err error) {
				if err != nil {
					t.Errorf("Dial: %v", err)
					return
				}
				clients = append(clients, c)
			})
		}
	})
	p.loop.Run()
	if len(clients) != 3 || len(servers) != 3 {
		t.Fatalf("got %d clients, %d servers; want 3 each", len(clients), len(servers))
	}

	// Send a distinct byte on each connection; verify no cross-talk.
	recv := make([]byte, 3)
	for i, s := range servers {
		i, s := i, s
		s.OnReadable(func() {
			b := make([]byte, 16)
			n, _ := s.Read(b)
			if n == 1 {
				recv[i] = b[0]
			} else {
				t.Errorf("conn %d got %d bytes", i, n)
			}
		})
	}
	p.loop.Post(func() {
		for i, c := range clients {
			_, _ = c.Write([]byte{byte('A' + i)})
		}
	})
	p.loop.Run()
	// Server conns accept in SYN arrival order, matching dial order.
	for i := range recv {
		if recv[i] != byte('A'+i) {
			t.Fatalf("cross-talk: conn %d received %q", i, recv[i])
		}
	}
}

// Property: any sequence of writes arrives concatenated, uncorrupted and
// in order.
func TestPropertyStreamIntegrity(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		loop := sim.NewLoop(1)
		nw := fabric.New(loop, model.Default())
		a, b := nw.AddNode("a"), nw.AddNode("b")
		nw.Connect(a, b)
		sa, sb := NewStack(a), NewStack(b)
		var server *Conn
		_, err := sb.Listen(1, func(c *Conn) { server = c })
		if err != nil {
			return false
		}
		var client *Conn
		loop.At(0, func() {
			sa.Dial(b, 1, func(c *Conn, err error) { client = c })
		})
		loop.Run()
		if client == nil || server == nil {
			return false
		}
		var want, got []byte
		buf := make([]byte, 64<<10)
		server.OnReadable(func() {
			for {
				n, _ := server.Read(buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		})
		loop.Post(func() {
			for _, ch := range chunks {
				if len(ch) > 32<<10 {
					ch = ch[:32<<10]
				}
				want = append(want, ch...)
				_, _ = client.Write(ch)
			}
		})
		loop.Run()
		return bytes.Equal(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
