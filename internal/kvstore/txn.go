package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Transaction and partition operations. The shard layer partitions the
// keyspace across independent consensus groups; multi-key operations
// commit through these state-machine ops so atomicity is decided inside
// the replicated logs rather than by a trusted coordinator:
//
//   - OpTxn executes a multi-key read/write transaction atomically in one
//     ordered operation — the one-phase fast path when every key lives in
//     one group.
//   - OpPrepare stages a transaction's writes and write-locks its keys
//     (votes PREPARED), or votes ABORTED on a lock conflict (no-wait, so
//     2PC cannot deadlock). Reads execute at prepare time, under the
//     locks.
//   - OpCommit applies the staged writes and releases the locks.
//   - OpAbort discards the staged writes and releases the locks.
//   - OpScanPart is a partition-filtered scan: it returns only the
//     matching keys that PartitionKey assigns to one partition, so a
//     router can scatter a scan across groups (or COP instances) and
//     merge per-partition results that are each deterministic.
//
// Single-key writes and deletes that hit a write-locked key reply
// "LOCKED" — a retryable condition the router backs off on — so a
// prepared transaction's staged state can never be torn by interleaved
// single-key traffic.
const (
	OpTxn OpCode = iota + 16
	OpPrepare
	OpCommit
	OpAbort
	OpScanPart
)

// Locked is the reply to a single-key write/delete (or one-phase OpTxn)
// that conflicts with a prepared transaction's write locks. The caller
// retries after a backoff; the condition clears when the holding
// transaction commits or aborts.
const Locked = "LOCKED"

// Transaction reply statuses (see EncodeTxnResult).
const (
	TxnCommitted = "COMMITTED"
	TxnPrepared  = "PREPARED"
	TxnAborted   = "ABORTED"
)

// TxnSub is one sub-operation of a multi-key transaction: an OpGet or an
// OpPut on a single key.
type TxnSub struct {
	Code  OpCode
	Key   string
	Value string
}

// PartitionKey deterministically assigns a key to one of parts hash
// ranges: the 32-bit FNV-1a hash space is split into parts equal ranges
// and the key belongs to the range its hash falls in. This is THE
// partitioning function of the repository — the shard router, the COP
// key-routing client and the partition-filtered scan all use it, so "who
// owns this key" has exactly one answer everywhere.
//
// Range partitioning keys off the hash's upper bits, and FNV-1a's upper
// bits correlate badly across near-identical inputs (workload key names
// differ only in trailing digits — raw FNV left whole shards empty). A
// murmur3-style finalizer avalanches the bits before the range split.
func PartitionKey(key string, parts int) int {
	if parts <= 1 {
		return 0
	}
	f := fnv.New32a()
	_, _ = f.Write([]byte(key))
	h := f.Sum32()
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(uint64(h) * uint64(parts) >> 32)
}

// OpKeys returns the state-machine keys an encoded operation touches —
// the single key of a put/get/delete, the prefix of a scan (its routing
// key), or the sub-operation keys of a transaction (deduplicated, in
// first-appearance order). It errors on operations that do not name
// their keys (OpCommit/OpAbort act on previously staged state).
func OpKeys(op []byte) ([]string, error) {
	code, key, value, err := DecodeOp(op)
	if err != nil {
		return nil, err
	}
	switch code {
	case OpPut, OpGet, OpDelete, OpScan, OpScanPart:
		return []string{key}, nil
	case OpTxn, OpPrepare:
		subs, err := DecodeTxnSubs([]byte(value))
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(subs))
		var keys []string
		for _, sub := range subs {
			if !seen[sub.Key] {
				seen[sub.Key] = true
				keys = append(keys, sub.Key)
			}
		}
		return keys, nil
	}
	return nil, fmt.Errorf("kvstore: op %d does not name its keys", code)
}

// EncodeTxn encodes a one-phase multi-key transaction (OpTxn). The key
// field carries the transaction id (used only for reporting; the
// one-phase path needs no staging).
func EncodeTxn(id string, subs []TxnSub) []byte {
	return EncodeOp(OpTxn, id, string(encodeTxnSubs(subs)))
}

// EncodePrepare encodes the PREPARE of transaction id carrying the
// sub-operations one participant group is responsible for.
func EncodePrepare(id string, subs []TxnSub) []byte {
	return EncodeOp(OpPrepare, id, string(encodeTxnSubs(subs)))
}

// EncodeCommit encodes the COMMIT decision for transaction id.
func EncodeCommit(id string) []byte { return EncodeOp(OpCommit, id, "") }

// EncodeAbort encodes the ABORT decision for transaction id.
func EncodeAbort(id string) []byte { return EncodeOp(OpAbort, id, "") }

// encodeTxnSubs serializes a sub-operation list: count, then per sub the
// code byte and length-prefixed key and value.
func encodeTxnSubs(subs []TxnSub) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(subs)))
	for _, s := range subs {
		buf = append(buf, byte(s.Code))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Key)))
		buf = append(buf, s.Key...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Value)))
		buf = append(buf, s.Value...)
	}
	return buf
}

// DecodeTxnSubs parses a sub-operation list.
func DecodeTxnSubs(raw []byte) ([]TxnSub, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("kvstore: txn subs too short (%d bytes)", len(raw))
	}
	n := binary.BigEndian.Uint32(raw)
	rest := raw[4:]
	subs := make([]TxnSub, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("kvstore: truncated txn sub code")
		}
		code := OpCode(rest[0])
		rest = rest[1:]
		var key, value string
		var err error
		if key, rest, err = takeString(rest); err != nil {
			return nil, fmt.Errorf("kvstore: txn sub key: %w", err)
		}
		if value, rest, err = takeString(rest); err != nil {
			return nil, fmt.Errorf("kvstore: txn sub value: %w", err)
		}
		subs = append(subs, TxnSub{Code: code, Key: key, Value: value})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("kvstore: %d trailing bytes after txn subs", len(rest))
	}
	return subs, nil
}

// takeString pops one length-prefixed string off a buffer, comparing
// lengths in uint64 so hostile 32-bit length fields cannot overflow int
// arithmetic on 32-bit platforms.
func takeString(raw []byte) (string, []byte, error) {
	if len(raw) < 4 {
		return "", nil, fmt.Errorf("truncated length")
	}
	n64 := uint64(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if n64 > uint64(len(raw)) {
		return "", nil, fmt.Errorf("truncated payload")
	}
	n := int(n64)
	return string(raw[:n]), raw[n:], nil
}

// txnResultMarker leads every transaction reply so it can never be
// confused with a plain single-key reply (or with Locked).
const txnResultMarker = 'T'

// EncodeTxnResult encodes a transaction reply: the status (TxnCommitted,
// TxnPrepared or TxnAborted) plus one result per sub-operation, in
// sub-operation order. An aborted reply carries no results.
func EncodeTxnResult(status string, results [][]byte) []byte {
	buf := []byte{txnResultMarker}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(status)))
	buf = append(buf, status...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(results)))
	for _, r := range results {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r)))
		buf = append(buf, r...)
	}
	return buf
}

// DecodeTxnResult parses a transaction reply.
func DecodeTxnResult(raw []byte) (status string, results [][]byte, err error) {
	if len(raw) < 1 || raw[0] != txnResultMarker {
		return "", nil, fmt.Errorf("kvstore: not a txn result (%q)", raw)
	}
	rest := raw[1:]
	if status, rest, err = takeString(rest); err != nil {
		return "", nil, fmt.Errorf("kvstore: txn result status: %w", err)
	}
	if len(rest) < 4 {
		return "", nil, fmt.Errorf("kvstore: truncated txn result count")
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	for i := uint32(0); i < n; i++ {
		var r string
		if r, rest, err = takeString(rest); err != nil {
			return "", nil, fmt.Errorf("kvstore: txn result %d: %w", i, err)
		}
		results = append(results, []byte(r))
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("kvstore: %d trailing bytes after txn result", len(rest))
	}
	return status, results, nil
}

// EncodeScanPart encodes a partition-filtered scan: up to limit pairs
// whose keys start with prefix AND belong to hash partition part of
// parts (see PartitionKey).
func EncodeScanPart(prefix string, limit, part, parts int) []byte {
	return EncodeOp(OpScanPart, prefix, fmt.Sprintf("%d %d %d", limit, part, parts))
}

// SplitScan decomposes one OpScan into per-partition OpScanPart
// operations, one per partition. Each partial scan must carry the full
// limit — the merge caps the union, and any partition alone may hold up
// to limit matches.
func SplitScan(prefix string, limit, parts int) [][]byte {
	ops := make([][]byte, parts)
	for p := 0; p < parts; p++ {
		ops[p] = EncodeScanPart(prefix, limit, p, parts)
	}
	return ops
}

// MergeScans merges per-partition scan results (newline-joined "k=v"
// lines, sorted within each partition) into one sorted result capped at
// limit pairs — the reply a whole-keyspace OpScan would have produced.
// Partitions are disjoint, so a plain merge-and-sort suffices.
func MergeScans(parts []string, limit int) string {
	var lines []string
	for _, p := range parts {
		if p == "" {
			continue
		}
		lines = append(lines, strings.Split(p, "\n")...)
	}
	sort.Strings(lines)
	if limit > 0 && len(lines) > limit {
		lines = lines[:limit]
	}
	return strings.Join(lines, "\n")
}

// preparedTxn is a staged (prepared but undecided) transaction: every
// sub-operation this participant is responsible for, in sub order. The
// writes apply on commit; the reads are kept because their keys hold
// locks too (strict two-phase locking — a committed reader observed a
// stable snapshot, not a half-applied writer).
type preparedTxn struct {
	subs []TxnSub
}

// Prepared returns the ids of staged transactions, sorted — the 2PC
// participant's in-doubt set.
func (s *Store) Prepared() []string {
	ids := make([]string, 0, len(s.prepared))
	for id := range s.prepared {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// LockHolder returns the id of the prepared transaction write-locking a
// key ("" if unlocked).
func (s *Store) LockHolder(key string) string { return s.locks[key] }

// validateSubs checks a transaction's sub-operations: only reads and
// writes are allowed inside a transaction.
func validateSubs(subs []TxnSub) error {
	for _, sub := range subs {
		if sub.Code != OpGet && sub.Code != OpPut {
			return fmt.Errorf("kvstore: txn sub op %d (only get/put allowed)", sub.Code)
		}
	}
	return nil
}

// conflicts reports whether any sub-operation — read or write — targets
// a key locked by a transaction other than id. Reads conflict too:
// prepared transactions hold exclusive locks on their whole key set, so
// committed transactions are serializable, not merely write-atomic.
func (s *Store) conflicts(id string, subs []TxnSub) bool {
	for _, sub := range subs {
		if holder, ok := s.locks[sub.Key]; ok && holder != id {
			return true
		}
	}
	return false
}

// executeTxn runs a one-phase multi-key transaction: sub-operations
// apply in order (reads see the transaction's earlier writes), the whole
// transaction conflicts with prepared write locks like any single-key
// write would.
func (s *Store) executeTxn(id, payload string) []byte {
	subs, err := DecodeTxnSubs([]byte(payload))
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	if err := validateSubs(subs); err != nil {
		return []byte("ERR " + err.Error())
	}
	if s.conflicts(id, subs) {
		return []byte(Locked)
	}
	results := make([][]byte, len(subs))
	for i, sub := range subs {
		switch sub.Code {
		case OpPut:
			s.put(sub.Key, sub.Value)
			results[i] = []byte("OK")
		case OpGet:
			if v, ok := s.get(sub.Key); ok {
				results[i] = []byte(v)
			} else {
				results[i] = []byte("NOTFOUND")
			}
		}
	}
	return EncodeTxnResult(TxnCommitted, results)
}

// executePrepare stages one participant's slice of a cross-group
// transaction: on a write-lock conflict it votes ABORTED without staging
// anything (no-wait, so 2PC over consensus cannot deadlock); otherwise
// it executes the reads (seeing the transaction's earlier writes),
// stages the writes, locks the write set and votes PREPARED. The staged
// state is part of MarshalState, so checkpoints and state transfer carry
// in-doubt transactions to recovering replicas.
func (s *Store) executePrepare(id, payload string) []byte {
	subs, err := DecodeTxnSubs([]byte(payload))
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	if err := validateSubs(subs); err != nil {
		return []byte("ERR " + err.Error())
	}
	if _, dup := s.prepared[id]; dup {
		return []byte("ERR duplicate prepare of txn " + id)
	}
	if s.conflicts(id, subs) {
		return EncodeTxnResult(TxnAborted, nil)
	}
	overlay := map[string]string{}
	results := make([][]byte, len(subs))
	for i, sub := range subs {
		s.locks[sub.Key] = id
		switch sub.Code {
		case OpPut:
			overlay[sub.Key] = sub.Value
			results[i] = []byte("OK")
		case OpGet:
			if v, ok := overlay[sub.Key]; ok {
				results[i] = []byte(v)
			} else if v, ok := s.get(sub.Key); ok {
				results[i] = []byte(v)
			} else {
				results[i] = []byte("NOTFOUND")
			}
		}
	}
	s.prepared[id] = &preparedTxn{subs: subs}
	s.touchPrepared()
	return EncodeTxnResult(TxnPrepared, results)
}

// executeCommit applies a prepared transaction's staged writes and
// releases its locks.
func (s *Store) executeCommit(id string) []byte {
	staged, ok := s.prepared[id]
	if !ok {
		return []byte("ERR commit of unknown txn " + id)
	}
	for _, sub := range staged.subs {
		if sub.Code == OpPut {
			s.put(sub.Key, sub.Value)
		}
	}
	s.releaseTxn(id, staged)
	return EncodeTxnResult(TxnCommitted, nil)
}

// executeAbort discards a prepared transaction. Aborting a transaction
// this participant never prepared (it voted ABORTED, staging nothing) is
// a no-op, not an error — the coordinator broadcasts its decision to
// every participant.
func (s *Store) executeAbort(id string) []byte {
	if staged, ok := s.prepared[id]; ok {
		s.releaseTxn(id, staged)
	}
	return EncodeTxnResult(TxnAborted, nil)
}

// releaseTxn drops a transaction's staging and locks.
func (s *Store) releaseTxn(id string, staged *preparedTxn) {
	for _, sub := range staged.subs {
		if s.locks[sub.Key] == id {
			delete(s.locks, sub.Key)
		}
	}
	delete(s.prepared, id)
	s.touchPrepared()
}

// executeScanPart runs a partition-filtered scan. The value field
// carries "limit part parts".
func (s *Store) executeScanPart(prefix, value string) []byte {
	var limit, part, parts int
	if n, err := fmt.Sscanf(value, "%d %d %d", &limit, &part, &parts); n != 3 || err != nil {
		return []byte("ERR bad scan partition spec " + strconv.Quote(value))
	}
	if limit < 0 || parts < 1 || part < 0 || part >= parts {
		return []byte("ERR bad scan partition spec " + strconv.Quote(value))
	}
	var keys []string
	s.forEach(func(k, _ string) {
		if strings.HasPrefix(k, prefix) && PartitionKey(k, parts) == part {
			keys = append(keys, k)
		}
	})
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(k)
		b.WriteByte('=')
		v, _ := s.get(k)
		b.WriteString(v)
	}
	return []byte(b.String())
}
