// Package kvstore is a deterministic key/value state machine used as the
// replicated application in the execution stage of the BFT experiments:
// identical operation sequences produce identical states and snapshots on
// every replica.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rubin/internal/auth"
)

// OpCode identifies a state-machine operation.
type OpCode uint8

// Operations.
const (
	OpPut OpCode = iota + 1
	OpGet
	OpDelete
	// OpScan reads the keys starting with a prefix: the op's key field
	// holds the prefix and its value field an optional decimal result
	// cap. Scans go through the ordered path like every other operation,
	// so they observe one consistent snapshot of the store.
	OpScan
)

// Store is the key/value state machine. It implements pbft.Application.
type Store struct {
	data map[string]string

	// 2PC participant state (see txn.go): staged transactions and the
	// write locks they hold. Both are part of the marshaled state, so
	// checkpoints and state transfer carry in-doubt transactions.
	prepared map[string]*preparedTxn
	locks    map[string]string

	applied uint64

	// marshaled caches the MarshalState encoding between mutations:
	// checkpoints take both a snapshot digest and the serialized state,
	// and the shared cache keeps that a single sort-and-encode pass.
	// Invariant: non-nil only while it matches data/applied exactly;
	// the slice is never mutated after creation, so callers may retain
	// it read-only.
	marshaled []byte
}

// New returns an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string]string),
		prepared: make(map[string]*preparedTxn),
		locks:    make(map[string]string),
	}
}

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.data) }

// Applied returns the number of operations executed.
func (s *Store) Applied() uint64 { return s.applied }

// Get reads a key directly (local, not ordered — for inspection).
func (s *Store) Get(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// EncodeOp serializes an operation for submission through the agreement
// layer.
func EncodeOp(code OpCode, key, value string) []byte {
	buf := []byte{byte(code)}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	return buf
}

// DecodeOp parses an operation.
func DecodeOp(op []byte) (code OpCode, key, value string, err error) {
	if len(op) < 9 {
		return 0, "", "", fmt.Errorf("kvstore: op too short (%d bytes)", len(op))
	}
	code = OpCode(op[0])
	kl := int(binary.BigEndian.Uint32(op[1:5]))
	if len(op) < 5+kl+4 {
		return 0, "", "", fmt.Errorf("kvstore: truncated key")
	}
	key = string(op[5 : 5+kl])
	vl := int(binary.BigEndian.Uint32(op[5+kl : 9+kl]))
	if len(op) != 9+kl+vl {
		return 0, "", "", fmt.Errorf("kvstore: truncated value")
	}
	value = string(op[9+kl : 9+kl+vl])
	return code, key, value, nil
}

// Execute applies one ordered operation (pbft.Application).
func (s *Store) Execute(op []byte) []byte {
	s.marshaled = nil
	s.applied++
	code, key, value, err := DecodeOp(op)
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	switch code {
	case OpPut:
		if _, locked := s.locks[key]; locked {
			return []byte(Locked)
		}
		s.data[key] = value
		return []byte("OK")
	case OpGet:
		v, ok := s.data[key]
		if !ok {
			return []byte("NOTFOUND")
		}
		return []byte(v)
	case OpDelete:
		if _, locked := s.locks[key]; locked {
			return []byte(Locked)
		}
		if _, ok := s.data[key]; !ok {
			return []byte("NOTFOUND")
		}
		delete(s.data, key)
		return []byte("OK")
	case OpTxn:
		return s.executeTxn(key, value)
	case OpPrepare:
		return s.executePrepare(key, value)
	case OpCommit:
		return s.executeCommit(key)
	case OpAbort:
		return s.executeAbort(key)
	case OpScanPart:
		return s.executeScanPart(key, value)
	case OpScan:
		limit := 0
		if value != "" {
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return []byte("ERR bad scan limit " + value)
			}
			limit = n
		}
		return []byte(s.Scan(key, limit))
	default:
		return []byte("ERR unknown op")
	}
}

// OpReadOnly reports whether an encoded operation is side-effect-free:
// executing it leaves the store byte-identical. Only such operations are
// eligible for the agreement-bypassing read fast path; malformed
// encodings are conservatively not read-only (the ordered path will
// surface the decode error).
func OpReadOnly(op []byte) bool {
	code, _, _, err := DecodeOp(op)
	if err != nil {
		return false
	}
	switch code {
	case OpGet, OpScan, OpScanPart:
		return true
	default:
		return false
	}
}

// ExecuteReadOnly evaluates a side-effect-free operation against the
// current state without mutating anything — unlike Execute it leaves the
// applied counter and the marshaled-state cache untouched, so tentative
// reads served at different times on different replicas cannot diverge
// their checkpoint digests. Results are byte-identical to what Execute
// would return for the same operation and state (pbft.TentativeReader).
func (s *Store) ExecuteReadOnly(op []byte) []byte {
	code, key, value, err := DecodeOp(op)
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	switch code {
	case OpGet:
		v, ok := s.data[key]
		if !ok {
			return []byte("NOTFOUND")
		}
		return []byte(v)
	case OpScan:
		limit := 0
		if value != "" {
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return []byte("ERR bad scan limit " + value)
			}
			limit = n
		}
		return []byte(s.Scan(key, limit))
	case OpScanPart:
		return s.executeScanPart(key, value)
	default:
		return []byte("ERR not read-only")
	}
}

// Scan returns up to limit key=value pairs whose keys start with prefix,
// in sorted key order, joined by newlines (limit <= 0 means no cap). An
// empty result is the empty string.
func (s *Store) Scan(prefix string, limit int) string {
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.data[k])
	}
	return b.String()
}

// encodeState serializes the key/value contents in sorted order — a
// pair count followed by the pairs — the canonical form shared by
// Snapshot and MarshalState.
func (s *Store) encodeState() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		v := s.data[k]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// encodePrepared serializes the staged-transaction section in sorted
// transaction-id order: the count, then per transaction the id and its
// sub-operations in sub order (code byte, key, value). Locks are not
// serialized — they are exactly the staged key sets (reads lock too)
// and are rebuilt on unmarshal.
func (s *Store) encodePrepared() []byte {
	ids := s.Prepared()
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(id)))
		buf = append(buf, id...)
		subs := s.prepared[id].subs
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(subs)))
		for _, sub := range subs {
			buf = append(buf, byte(sub.Code))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Key)))
			buf = append(buf, sub.Key...)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Value)))
			buf = append(buf, sub.Value...)
		}
	}
	return buf
}

// MarshalState serializes the full store for PBFT state transfer
// (pbft.StateTransferable): the applied-operation counter, the canonical
// sorted key/value encoding, and the staged 2PC transactions — a replica
// recovering mid-transaction must learn the in-doubt set, or a later
// COMMIT would find nothing to apply. The result is cached until the
// next mutation and must be treated as read-only.
func (s *Store) MarshalState() []byte {
	if s.marshaled == nil {
		buf := binary.BigEndian.AppendUint64(nil, s.applied)
		buf = append(buf, s.encodeState()...)
		s.marshaled = append(buf, s.encodePrepared()...)
	}
	return s.marshaled
}

// Snapshot digests the full marshaled state deterministically
// (pbft.Application): keys are hashed in sorted order so replicas with
// equal contents produce equal digests regardless of map iteration order.
// The digest covers exactly what MarshalState ships — including the
// applied counter — so state-transfer verification detects tampering with
// any transferred byte.
func (s *Store) Snapshot() auth.Digest {
	return auth.Hash(s.MarshalState())
}

// UnmarshalState replaces the store's contents — key/value data and
// staged 2PC transactions — with a marshaled state.
func (s *Store) UnmarshalState(state []byte) error {
	if len(state) < 8 {
		return fmt.Errorf("kvstore: state too short (%d bytes)", len(state))
	}
	applied := binary.BigEndian.Uint64(state)
	rest := state[8:]

	npairs, rest, err := takeCount(rest, "pair count")
	if err != nil {
		return err
	}
	data := make(map[string]string)
	for i := uint32(0); i < npairs; i++ {
		var k, v string
		if k, rest, err = takeString(rest); err != nil {
			return fmt.Errorf("kvstore: state key: %w", err)
		}
		if v, rest, err = takeString(rest); err != nil {
			return fmt.Errorf("kvstore: state value: %w", err)
		}
		data[k] = v
	}

	ntxns, rest, err := takeCount(rest, "txn count")
	if err != nil {
		return err
	}
	prepared := make(map[string]*preparedTxn)
	locks := make(map[string]string)
	for i := uint32(0); i < ntxns; i++ {
		var id string
		if id, rest, err = takeString(rest); err != nil {
			return fmt.Errorf("kvstore: staged txn id: %w", err)
		}
		if _, dup := prepared[id]; dup {
			return fmt.Errorf("kvstore: duplicate staged txn %q", id)
		}
		var nsubs uint32
		if nsubs, rest, err = takeCount(rest, "staged sub count"); err != nil {
			return err
		}
		staged := &preparedTxn{}
		for j := uint32(0); j < nsubs; j++ {
			if len(rest) < 1 {
				return fmt.Errorf("kvstore: truncated staged sub code")
			}
			code := OpCode(rest[0])
			rest = rest[1:]
			if code != OpGet && code != OpPut {
				return fmt.Errorf("kvstore: staged sub op %d (only get/put allowed)", code)
			}
			var k, v string
			if k, rest, err = takeString(rest); err != nil {
				return fmt.Errorf("kvstore: staged sub key: %w", err)
			}
			if v, rest, err = takeString(rest); err != nil {
				return fmt.Errorf("kvstore: staged sub value: %w", err)
			}
			if holder, locked := locks[k]; locked && holder != id {
				return fmt.Errorf("kvstore: staged txns %q and %q both lock %q", holder, id, k)
			}
			staged.subs = append(staged.subs, TxnSub{Code: code, Key: k, Value: v})
			locks[k] = id
		}
		prepared[id] = staged
	}
	if len(rest) != 0 {
		return fmt.Errorf("kvstore: %d trailing state bytes", len(rest))
	}
	s.data = data
	s.prepared = prepared
	s.locks = locks
	s.applied = applied
	s.marshaled = nil
	return nil
}

// takeCount pops one uint32 count off a buffer.
func takeCount(raw []byte, what string) (uint32, []byte, error) {
	if len(raw) < 4 {
		return 0, nil, fmt.Errorf("kvstore: truncated %s", what)
	}
	return binary.BigEndian.Uint32(raw), raw[4:], nil
}
