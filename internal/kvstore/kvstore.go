// Package kvstore is a deterministic key/value state machine used as the
// replicated application in the execution stage of the BFT experiments:
// identical operation sequences produce identical states and snapshots on
// every replica.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rubin/internal/auth"
)

// OpCode identifies a state-machine operation.
type OpCode uint8

// Operations.
const (
	OpPut OpCode = iota + 1
	OpGet
	OpDelete
	// OpScan reads the keys starting with a prefix: the op's key field
	// holds the prefix and its value field an optional decimal result
	// cap. Scans go through the ordered path like every other operation,
	// so they observe one consistent snapshot of the store.
	OpScan
)

// Store is the key/value state machine. It implements pbft.Application
// and pbft.PartitionedState: keys live in MerkleBuckets hash partitions
// (see merkle.go) so checkpoints and state transfer work per bucket.
type Store struct {
	// buckets holds the key/value data, partitioned by bucketOf. A nil
	// bucket map is an empty bucket; size is the total key count.
	buckets [MerkleBuckets]map[string]string
	size    int

	// 2PC participant state (see txn.go): staged transactions and the
	// write locks they hold. Both are part of the marshaled state, so
	// checkpoints and state transfer carry in-doubt transactions.
	prepared map[string]*preparedTxn
	locks    map[string]string

	applied uint64

	// Per-bucket encoding caches. bucketEnc[i] is the canonical
	// encoding of bucket i (nil marks the bucket dirty — a mutation
	// invalidates only its own bucket, never the others) and
	// bucketDig[i] its digest, valid whenever bucketEnc[i] is non-nil.
	// bucketMod[i] is the applied counter at the bucket's last
	// mutation, which is what CheckpointDelta answers from. Cached
	// slices are never mutated after creation and never aliased into
	// other caches: encodeBucket builds a fresh slice, MarshalState
	// copies bucket encodings into its own buffer, and setBucket copies
	// the incoming encoding.
	bucketEnc [MerkleBuckets][]byte
	bucketDig [MerkleBuckets]auth.Digest
	bucketMod [MerkleBuckets]uint64

	// preparedEnc caches the staged-2PC section encoding (nil = dirty).
	preparedEnc []byte

	// marshaled caches the full MarshalState concatenation. Any Execute
	// invalidates it (the applied counter is part of the encoding), but
	// rebuilding it only re-encodes dirty buckets.
	marshaled []byte
}

// New returns an empty store.
func New() *Store {
	return &Store{
		prepared: make(map[string]*preparedTxn),
		locks:    make(map[string]string),
	}
}

// Len returns the number of keys.
func (s *Store) Len() int { return s.size }

// Applied returns the number of operations executed.
func (s *Store) Applied() uint64 { return s.applied }

// Get reads a key directly (local, not ordered — for inspection).
func (s *Store) Get(key string) (string, bool) {
	v, ok := s.buckets[bucketOf(key)][key]
	return v, ok
}

// get reads a key from its bucket.
func (s *Store) get(key string) (string, bool) {
	v, ok := s.buckets[bucketOf(key)][key]
	return v, ok
}

// put writes a key and dirties its bucket.
func (s *Store) put(key, value string) {
	b := bucketOf(key)
	if s.buckets[b] == nil {
		s.buckets[b] = make(map[string]string)
	}
	if _, ok := s.buckets[b][key]; !ok {
		s.size++
	}
	s.buckets[b][key] = value
	s.touchBucket(b)
}

// del removes a key, dirtying its bucket; it reports whether the key
// existed.
func (s *Store) del(key string) bool {
	b := bucketOf(key)
	if _, ok := s.buckets[b][key]; !ok {
		return false
	}
	delete(s.buckets[b], key)
	s.size--
	s.touchBucket(b)
	return true
}

// touchBucket marks one bucket dirty at the current applied counter.
func (s *Store) touchBucket(b int) {
	s.bucketEnc[b] = nil
	s.bucketMod[b] = s.applied
	s.marshaled = nil
}

// touchPrepared marks the staged-2PC section dirty.
func (s *Store) touchPrepared() {
	s.preparedEnc = nil
	s.marshaled = nil
}

// forEach visits every key/value pair (bucket by bucket, map order
// within a bucket — callers needing determinism sort what they collect).
func (s *Store) forEach(fn func(k, v string)) {
	for i := range s.buckets {
		for k, v := range s.buckets[i] {
			fn(k, v)
		}
	}
}

// EncodeOp serializes an operation for submission through the agreement
// layer.
func EncodeOp(code OpCode, key, value string) []byte {
	buf := []byte{byte(code)}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	return buf
}

// DecodeOp parses an operation.
func DecodeOp(op []byte) (code OpCode, key, value string, err error) {
	if len(op) < 9 {
		return 0, "", "", fmt.Errorf("kvstore: op too short (%d bytes)", len(op))
	}
	code = OpCode(op[0])
	kl := int(binary.BigEndian.Uint32(op[1:5]))
	if len(op) < 5+kl+4 {
		return 0, "", "", fmt.Errorf("kvstore: truncated key")
	}
	key = string(op[5 : 5+kl])
	vl := int(binary.BigEndian.Uint32(op[5+kl : 9+kl]))
	if len(op) != 9+kl+vl {
		return 0, "", "", fmt.Errorf("kvstore: truncated value")
	}
	value = string(op[9+kl : 9+kl+vl])
	return code, key, value, nil
}

// Execute applies one ordered operation (pbft.Application).
func (s *Store) Execute(op []byte) []byte {
	// The applied counter is part of the marshaled state, so the full
	// concatenation goes stale on every operation — but the per-bucket
	// encodings do not: only the mutated key's bucket is re-encoded at
	// the next checkpoint (a read dirties nothing).
	s.marshaled = nil
	s.applied++
	code, key, value, err := DecodeOp(op)
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	switch code {
	case OpPut:
		if _, locked := s.locks[key]; locked {
			return []byte(Locked)
		}
		s.put(key, value)
		return []byte("OK")
	case OpGet:
		v, ok := s.get(key)
		if !ok {
			return []byte("NOTFOUND")
		}
		return []byte(v)
	case OpDelete:
		if _, locked := s.locks[key]; locked {
			return []byte(Locked)
		}
		if !s.del(key) {
			return []byte("NOTFOUND")
		}
		return []byte("OK")
	case OpTxn:
		return s.executeTxn(key, value)
	case OpPrepare:
		return s.executePrepare(key, value)
	case OpCommit:
		return s.executeCommit(key)
	case OpAbort:
		return s.executeAbort(key)
	case OpScanPart:
		return s.executeScanPart(key, value)
	case OpScan:
		limit := 0
		if value != "" {
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return []byte("ERR bad scan limit " + value)
			}
			limit = n
		}
		return []byte(s.Scan(key, limit))
	default:
		return []byte("ERR unknown op")
	}
}

// OpReadOnly reports whether an encoded operation is side-effect-free:
// executing it leaves the store byte-identical. Only such operations are
// eligible for the agreement-bypassing read fast path; malformed
// encodings are conservatively not read-only (the ordered path will
// surface the decode error).
func OpReadOnly(op []byte) bool {
	code, _, _, err := DecodeOp(op)
	if err != nil {
		return false
	}
	switch code {
	case OpGet, OpScan, OpScanPart:
		return true
	default:
		return false
	}
}

// ExecuteReadOnly evaluates a side-effect-free operation against the
// current state without mutating anything — unlike Execute it leaves the
// applied counter and the marshaled-state cache untouched, so tentative
// reads served at different times on different replicas cannot diverge
// their checkpoint digests. Results are byte-identical to what Execute
// would return for the same operation and state (pbft.TentativeReader).
func (s *Store) ExecuteReadOnly(op []byte) []byte {
	code, key, value, err := DecodeOp(op)
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	switch code {
	case OpGet:
		v, ok := s.get(key)
		if !ok {
			return []byte("NOTFOUND")
		}
		return []byte(v)
	case OpScan:
		limit := 0
		if value != "" {
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return []byte("ERR bad scan limit " + value)
			}
			limit = n
		}
		return []byte(s.Scan(key, limit))
	case OpScanPart:
		return s.executeScanPart(key, value)
	default:
		return []byte("ERR not read-only")
	}
}

// Scan returns up to limit key=value pairs whose keys start with prefix,
// in sorted key order, joined by newlines (limit <= 0 means no cap). An
// empty result is the empty string.
func (s *Store) Scan(prefix string, limit int) string {
	var keys []string
	s.forEach(func(k, _ string) {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	})
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(k)
		b.WriteByte('=')
		v, _ := s.get(k)
		b.WriteString(v)
	}
	return b.String()
}

// preparedBytes returns the staged-2PC section encoding, re-encoding
// only if a transaction was staged or released since the last call. The
// returned slice is a cache: read-only for callers.
func (s *Store) preparedBytes() []byte {
	if s.preparedEnc == nil {
		s.preparedEnc = s.encodePrepared()
	}
	return s.preparedEnc
}

// encodePrepared serializes the staged-transaction section in sorted
// transaction-id order: the count, then per transaction the id and its
// sub-operations in sub order (code byte, key, value). Locks are not
// serialized — they are exactly the staged key sets (reads lock too)
// and are rebuilt on unmarshal.
func (s *Store) encodePrepared() []byte {
	ids := s.Prepared()
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(id)))
		buf = append(buf, id...)
		subs := s.prepared[id].subs
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(subs)))
		for _, sub := range subs {
			buf = append(buf, byte(sub.Code))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Key)))
			buf = append(buf, sub.Key...)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Value)))
			buf = append(buf, sub.Value...)
		}
	}
	return buf
}

// MarshalState serializes the full store for PBFT state transfer
// (pbft.StateTransferable): the applied-operation counter, a partition
// count followed by every bucket's canonical encoding in bucket order,
// and the staged 2PC transactions — a replica recovering mid-transaction
// must learn the in-doubt set, or a later COMMIT would find nothing to
// apply. Rebuilding re-encodes only buckets dirtied since the last
// call; the result is cached until the next operation and must be
// treated as read-only. The buffer is always a fresh allocation (never
// one of the per-bucket caches), so retaining it across later mutations
// is safe.
func (s *Store) MarshalState() []byte {
	if s.marshaled == nil {
		buf := binary.BigEndian.AppendUint64(nil, s.applied)
		buf = binary.BigEndian.AppendUint32(buf, MerkleBuckets)
		for i := range s.buckets {
			buf = append(buf, s.bucketBytes(i)...)
		}
		s.marshaled = append(buf, s.preparedBytes()...)
	}
	return s.marshaled
}

// Snapshot digests the state deterministically (pbft.Application) as the
// Merkle root over the bucket digests combined with the applied counter
// and the staged-2PC section: Hash(applied || merkleRoot(buckets) ||
// Hash(prepared)). Keys are hashed in sorted order within their bucket,
// so replicas with equal contents produce equal digests regardless of
// map iteration order, and the digest covers every byte a transfer
// ships. Unlike a flat digest of MarshalState, recomputation after K
// mutated buckets costs O(K + interior nodes), not O(state) — this is
// what makes frequent checkpoints affordable at large state sizes.
func (s *Store) Snapshot() auth.Digest {
	digests := make([]auth.Digest, MerkleBuckets)
	for i := range digests {
		s.bucketBytes(i)
		digests[i] = s.bucketDig[i]
	}
	return composeRoot(s.applied, merkleRoot(digests), auth.Hash(s.preparedBytes()))
}

// UnmarshalState replaces the store's contents — key/value data and
// staged 2PC transactions — with a marshaled state. Keys are re-homed
// into their owning buckets regardless of which partition section they
// arrived in, so any decodable input re-marshals canonically.
func (s *Store) UnmarshalState(state []byte) error {
	if len(state) < 8 {
		return fmt.Errorf("kvstore: state too short (%d bytes)", len(state))
	}
	applied := binary.BigEndian.Uint64(state)
	rest := state[8:]

	nbuckets, rest, err := takeCount(rest, "partition count")
	if err != nil {
		return err
	}
	if nbuckets != MerkleBuckets {
		return fmt.Errorf("kvstore: state has %d partitions (want %d)", nbuckets, MerkleBuckets)
	}
	var buckets [MerkleBuckets]map[string]string
	size := 0
	for b := uint32(0); b < nbuckets; b++ {
		var npairs uint32
		if npairs, rest, err = takeCount(rest, "pair count"); err != nil {
			return err
		}
		for i := uint32(0); i < npairs; i++ {
			var k, v string
			if k, rest, err = takeString(rest); err != nil {
				return fmt.Errorf("kvstore: state key: %w", err)
			}
			if v, rest, err = takeString(rest); err != nil {
				return fmt.Errorf("kvstore: state value: %w", err)
			}
			home := bucketOf(k)
			if buckets[home] == nil {
				buckets[home] = make(map[string]string)
			}
			if _, dup := buckets[home][k]; !dup {
				size++
			}
			buckets[home][k] = v
		}
	}

	prepared, locks, err := decodePrepared(rest)
	if err != nil {
		return err
	}
	s.buckets = buckets
	s.size = size
	s.prepared = prepared
	s.locks = locks
	s.applied = applied
	for i := range s.bucketEnc {
		s.bucketEnc[i] = nil
		s.bucketMod[i] = applied
	}
	s.preparedEnc = nil
	s.marshaled = nil
	return nil
}

// takeCount pops one uint32 count off a buffer.
func takeCount(raw []byte, what string) (uint32, []byte, error) {
	if len(raw) < 4 {
		return 0, nil, fmt.Errorf("kvstore: truncated %s", what)
	}
	return binary.BigEndian.Uint32(raw), raw[4:], nil
}
