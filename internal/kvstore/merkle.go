package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rubin/internal/auth"
)

// The keyspace is partitioned into a fixed-arity Merkle tree over
// PartitionKey hash buckets (the PBFT hierarchical state partition,
// Castro & Liskov §6.3). Each bucket owns the keys PartitionKey assigns
// to it and carries a cached canonical encoding plus its digest; a
// mutation dirties only its own bucket, so a checkpoint re-encodes and
// re-hashes O(dirty buckets) instead of the whole store, and a lagging
// replica fetches only the buckets whose digests diverge from a
// quorum-certified root.
const (
	// MerkleBuckets is the number of leaf partitions. It is part of the
	// state encoding and the digest definition: all replicas must agree
	// on it, so it is a constant, not a Config knob.
	MerkleBuckets = 256

	// MerkleArity is the fan-in of interior tree nodes: 256 leaves hash
	// into 16 interior digests which hash into the tree root.
	MerkleArity = 16
)

// bucketOf returns the Merkle leaf bucket owning a key.
func bucketOf(key string) int { return PartitionKey(key, MerkleBuckets) }

// PartitionCount returns the number of Merkle leaf partitions
// (pbft.PartitionedState).
func (s *Store) PartitionCount() int { return MerkleBuckets }

// PartitionDigests returns the current leaf digests, bucket 0 first
// (pbft.PartitionedState). Dirty buckets are re-encoded first; the
// returned slice is a fresh copy the caller may retain.
func (s *Store) PartitionDigests() []auth.Digest {
	out := make([]auth.Digest, MerkleBuckets)
	for i := range out {
		s.bucketBytes(i)
		out[i] = s.bucketDig[i]
	}
	return out
}

// CheckpointDelta returns the buckets mutated by any operation applied
// after the store's applied counter read since — the partitions a
// checkpoint taken now must re-serialize relative to a checkpoint taken
// at since (pbft.PartitionedState). Indices ascend.
func (s *Store) CheckpointDelta(since uint64) []int {
	var dirty []int
	for i := range s.bucketMod {
		if s.bucketMod[i] > since {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// MarshalPartition serializes one bucket in canonical form — pair count,
// then the pairs in sorted key order (pbft.PartitionedState). The result
// is a fresh copy; auth.Hash of it equals the bucket's leaf digest.
func (s *Store) MarshalPartition(part int) []byte {
	if part < 0 || part >= MerkleBuckets {
		return nil
	}
	enc := s.bucketBytes(part)
	out := make([]byte, len(enc))
	copy(out, enc)
	return out
}

// MarshalHeader serializes the non-partitioned remainder of the state:
// the applied-operation counter and the staged 2PC transaction section
// (pbft.PartitionedState). Together with the leaf digests it determines
// the root: ComposeRoot(MarshalHeader(), PartitionDigests()) ==
// Snapshot().
func (s *Store) MarshalHeader() []byte {
	buf := binary.BigEndian.AppendUint64(nil, s.applied)
	return append(buf, s.preparedBytes()...)
}

// ComposeRoot recomputes the root digest a store with the given header
// and leaf digests would report from Snapshot (pbft.PartitionedState).
// It is stateless: a fetcher uses it to check a transfer manifest for
// self-consistency before requesting any partition, and to verify the
// assembled state against the quorum-certified root. A malformed header
// or digest count yields the zero digest, which no honest replica ever
// certifies (roots are hash outputs).
func (s *Store) ComposeRoot(header []byte, digests []auth.Digest) auth.Digest {
	if len(header) < 8 || len(digests) != MerkleBuckets {
		return auth.Digest{}
	}
	applied := binary.BigEndian.Uint64(header)
	return composeRoot(applied, merkleRoot(digests), auth.Hash(header[8:]))
}

// composeRoot combines the three state components into the root digest:
// Hash(applied || tree root || prepared-section digest).
func composeRoot(applied uint64, tree auth.Digest, prepared auth.Digest) auth.Digest {
	buf := make([]byte, 0, 8+2*auth.DigestSize)
	buf = binary.BigEndian.AppendUint64(buf, applied)
	buf = append(buf, tree[:]...)
	buf = append(buf, prepared[:]...)
	return auth.Hash(buf)
}

// merkleRoot folds leaf digests up the fixed-arity tree: each interior
// node hashes the concatenation of its (up to MerkleArity) children.
func merkleRoot(level []auth.Digest) auth.Digest {
	if len(level) == 0 {
		return auth.Hash(nil)
	}
	for len(level) > 1 {
		next := make([]auth.Digest, 0, (len(level)+MerkleArity-1)/MerkleArity)
		for i := 0; i < len(level); i += MerkleArity {
			end := min(i+MerkleArity, len(level))
			buf := make([]byte, 0, (end-i)*auth.DigestSize)
			for _, d := range level[i:end] {
				buf = append(buf, d[:]...)
			}
			next = append(next, auth.Hash(buf))
		}
		level = next
	}
	return level[0]
}

// ApplyPartition replaces one bucket's contents with a serialized
// partition (pbft.PartitionedState). The encoding must be canonical —
// strictly ascending keys that all belong to the bucket — so that
// re-marshaling reproduces the input byte for byte and the bucket digest
// equals auth.Hash of it. The store is unchanged on error.
func (s *Store) ApplyPartition(part int, data []byte) error {
	if part < 0 || part >= MerkleBuckets {
		return fmt.Errorf("kvstore: partition %d out of range", part)
	}
	m, err := decodeBucket(part, data)
	if err != nil {
		return err
	}
	s.setBucket(part, m, data)
	return nil
}

// setBucket installs a decoded bucket map plus its already-canonical
// encoding, refreshing size and caches. The encoding is copied so the
// cache cannot alias a caller-retained network buffer.
func (s *Store) setBucket(part int, m map[string]string, enc []byte) {
	s.size += len(m) - len(s.buckets[part])
	s.buckets[part] = m
	cp := make([]byte, len(enc))
	copy(cp, enc)
	s.bucketEnc[part] = cp
	s.bucketDig[part] = auth.Hash(cp)
	s.bucketMod[part] = s.applied
	s.marshaled = nil
}

// decodeBucket parses one bucket encoding, enforcing canonical form:
// strictly ascending keys, every key owned by the bucket, no trailing
// bytes.
func decodeBucket(part int, data []byte) (map[string]string, error) {
	npairs, rest, err := takeCount(data, "partition pair count")
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, min(int(npairs), 1<<16))
	prev := ""
	for i := uint32(0); i < npairs; i++ {
		var k, v string
		if k, rest, err = takeString(rest); err != nil {
			return nil, fmt.Errorf("kvstore: partition key: %w", err)
		}
		if v, rest, err = takeString(rest); err != nil {
			return nil, fmt.Errorf("kvstore: partition value: %w", err)
		}
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("kvstore: partition keys not strictly sorted (%q after %q)", k, prev)
		}
		if bucketOf(k) != part {
			return nil, fmt.Errorf("kvstore: key %q does not belong to partition %d", k, part)
		}
		prev = k
		m[k] = v
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("kvstore: %d trailing partition bytes", len(rest))
	}
	return m, nil
}

// ApplyTransfer atomically replaces the whole store from a transfer
// header plus one serialized partition per bucket
// (pbft.PartitionedState). Everything is validated before anything is
// installed: on error the store is unchanged.
func (s *Store) ApplyTransfer(header []byte, parts [][]byte) error {
	if len(parts) != MerkleBuckets {
		return fmt.Errorf("kvstore: transfer has %d partitions (want %d)", len(parts), MerkleBuckets)
	}
	if len(header) < 8 {
		return fmt.Errorf("kvstore: transfer header too short (%d bytes)", len(header))
	}
	applied := binary.BigEndian.Uint64(header)
	prepared, locks, err := decodePrepared(header[8:])
	if err != nil {
		return err
	}
	maps := make([]map[string]string, MerkleBuckets)
	for i, p := range parts {
		if maps[i], err = decodeBucket(i, p); err != nil {
			return fmt.Errorf("kvstore: transfer partition %d: %w", i, err)
		}
	}
	s.applied = applied
	for i := range maps {
		s.setBucket(i, maps[i], parts[i])
		s.bucketMod[i] = applied
	}
	s.prepared = prepared
	s.locks = locks
	s.preparedEnc = nil
	s.marshaled = nil
	return nil
}

// decodePrepared parses the staged-2PC section (the byte layout of
// encodePrepared) and rebuilds the lock table from the staged key sets.
// It rejects trailing bytes.
func decodePrepared(raw []byte) (map[string]*preparedTxn, map[string]string, error) {
	ntxns, rest, err := takeCount(raw, "txn count")
	if err != nil {
		return nil, nil, err
	}
	prepared := make(map[string]*preparedTxn)
	locks := make(map[string]string)
	for i := uint32(0); i < ntxns; i++ {
		var id string
		if id, rest, err = takeString(rest); err != nil {
			return nil, nil, fmt.Errorf("kvstore: staged txn id: %w", err)
		}
		if _, dup := prepared[id]; dup {
			return nil, nil, fmt.Errorf("kvstore: duplicate staged txn %q", id)
		}
		var nsubs uint32
		if nsubs, rest, err = takeCount(rest, "staged sub count"); err != nil {
			return nil, nil, err
		}
		staged := &preparedTxn{}
		for j := uint32(0); j < nsubs; j++ {
			if len(rest) < 1 {
				return nil, nil, fmt.Errorf("kvstore: truncated staged sub code")
			}
			code := OpCode(rest[0])
			rest = rest[1:]
			if code != OpGet && code != OpPut {
				return nil, nil, fmt.Errorf("kvstore: staged sub op %d (only get/put allowed)", code)
			}
			var k, v string
			if k, rest, err = takeString(rest); err != nil {
				return nil, nil, fmt.Errorf("kvstore: staged sub key: %w", err)
			}
			if v, rest, err = takeString(rest); err != nil {
				return nil, nil, fmt.Errorf("kvstore: staged sub value: %w", err)
			}
			if holder, locked := locks[k]; locked && holder != id {
				return nil, nil, fmt.Errorf("kvstore: staged txns %q and %q both lock %q", holder, id, k)
			}
			staged.subs = append(staged.subs, TxnSub{Code: code, Key: k, Value: v})
			locks[k] = id
		}
		prepared[id] = staged
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("kvstore: %d trailing state bytes", len(rest))
	}
	return prepared, locks, nil
}

// bucketBytes returns the canonical encoding of one bucket, re-encoding
// it only if a mutation dirtied it since the last encoding. The returned
// slice is the cache itself: callers must treat it as read-only (use
// MarshalPartition for a retainable copy).
func (s *Store) bucketBytes(i int) []byte {
	if s.bucketEnc[i] == nil {
		s.bucketEnc[i] = encodeBucket(s.buckets[i])
		s.bucketDig[i] = auth.Hash(s.bucketEnc[i])
	}
	return s.bucketEnc[i]
}

// encodeBucket serializes one bucket map in canonical form.
func encodeBucket(m map[string]string) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		v := m[k]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}
