package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if got := s.Execute(EncodeOp(OpPut, "k", "v1")); string(got) != "OK" {
		t.Fatalf("put = %q", got)
	}
	if got := s.Execute(EncodeOp(OpGet, "k", "")); string(got) != "v1" {
		t.Fatalf("get = %q", got)
	}
	if got := s.Execute(EncodeOp(OpPut, "k", "v2")); string(got) != "OK" {
		t.Fatalf("overwrite = %q", got)
	}
	if got := s.Execute(EncodeOp(OpGet, "k", "")); string(got) != "v2" {
		t.Fatalf("get after overwrite = %q", got)
	}
	if got := s.Execute(EncodeOp(OpDelete, "k", "")); string(got) != "OK" {
		t.Fatalf("delete = %q", got)
	}
	if got := s.Execute(EncodeOp(OpGet, "k", "")); string(got) != "NOTFOUND" {
		t.Fatalf("get after delete = %q", got)
	}
	if got := s.Execute(EncodeOp(OpDelete, "k", "")); string(got) != "NOTFOUND" {
		t.Fatalf("double delete = %q", got)
	}
	if s.Applied() != 7 || s.Len() != 0 {
		t.Fatalf("applied=%d len=%d", s.Applied(), s.Len())
	}
}

func TestMalformedOps(t *testing.T) {
	s := New()
	for _, op := range [][]byte{nil, {1}, {1, 0, 0, 0, 99}, {99, 0, 0, 0, 0, 0, 0, 0, 0}} {
		out := s.Execute(op)
		if len(out) == 0 {
			t.Fatalf("malformed op %v produced empty result", op)
		}
	}
	// A malformed op must not mutate state.
	if s.Len() != 0 {
		t.Fatal("malformed op mutated state")
	}
}

func TestOpCodecRoundTrip(t *testing.T) {
	code, key, val, err := DecodeOp(EncodeOp(OpPut, "key-1", "value-1"))
	if err != nil || code != OpPut || key != "key-1" || val != "value-1" {
		t.Fatalf("round trip failed: %v %v %q %q", err, code, key, val)
	}
}

func TestSnapshotDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := New(), New()
	a.Execute(EncodeOp(OpPut, "x", "1"))
	a.Execute(EncodeOp(OpPut, "y", "2"))
	b.Execute(EncodeOp(OpPut, "y", "2"))
	b.Execute(EncodeOp(OpPut, "x", "1"))
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("snapshot depends on insertion order")
	}
	b.Execute(EncodeOp(OpPut, "z", "3"))
	if a.Snapshot() == b.Snapshot() {
		t.Fatal("different states share a snapshot")
	}
}

func TestMarshalStateRoundTrip(t *testing.T) {
	a := New()
	a.Execute(EncodeOp(OpPut, "x", "1"))
	a.Execute(EncodeOp(OpPut, "y", "2"))
	a.Execute(EncodeOp(OpDelete, "x", ""))
	b := New()
	b.Execute(EncodeOp(OpPut, "stale", "gone"))
	if err := b.UnmarshalState(a.MarshalState()); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if b.Snapshot() != a.Snapshot() {
		t.Fatal("restored state digest differs")
	}
	if b.Applied() != a.Applied() {
		t.Fatalf("applied counter not restored: %d vs %d", b.Applied(), a.Applied())
	}
	if _, ok := b.Get("stale"); ok {
		t.Fatal("restore did not replace prior contents")
	}
	if v, ok := b.Get("y"); !ok || v != "2" {
		t.Fatal("restored value missing")
	}
}

func TestUnmarshalStateRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {1, 2}, append(make([]byte, 8), 0, 0, 0, 9, 'x')} {
		if err := New().UnmarshalState(raw); err == nil {
			t.Errorf("UnmarshalState(%v) should fail", raw)
		}
	}
	// Empty store round-trips.
	s := New()
	if err := s.UnmarshalState(New().MarshalState()); err != nil {
		t.Fatalf("empty round trip: %v", err)
	}
}

// Property: op encoding round-trips for arbitrary keys/values.
func TestPropertyOpCodec(t *testing.T) {
	prop := func(code uint8, key, value string) bool {
		c := OpCode(code%3 + 1)
		gc, gk, gv, err := DecodeOp(EncodeOp(c, key, value))
		return err == nil && gc == c && gk == key && gv == value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two stores fed the identical op sequence agree on state digest
// and on every result.
func TestPropertyReplicaDeterminism(t *testing.T) {
	prop := func(ops [][2]string, codes []uint8) bool {
		a, b := New(), New()
		for i, kv := range ops {
			code := OpPut
			if i < len(codes) {
				code = OpCode(codes[i]%3 + 1)
			}
			op := EncodeOp(code, kv[0], kv[1])
			if !bytes.Equal(a.Execute(op), b.Execute(op)) {
				return false
			}
		}
		return a.Snapshot() == b.Snapshot()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScanReturnsSortedPrefixMatches(t *testing.T) {
	s := New()
	for _, k := range []string{"k000012", "k000010", "k000019", "k000104", "x9"} {
		s.Execute(EncodeOp(OpPut, k, "v-"+k))
	}
	if got := s.Scan("k00001", 0); got != "k000010=v-k000010\nk000012=v-k000012\nk000019=v-k000019" {
		t.Fatalf("Scan = %q", got)
	}
	if got := s.Scan("k00001", 2); got != "k000010=v-k000010\nk000012=v-k000012" {
		t.Fatalf("limited Scan = %q", got)
	}
	if got := s.Scan("zzz", 0); got != "" {
		t.Fatalf("empty Scan = %q", got)
	}
}

func TestScanThroughExecute(t *testing.T) {
	s := New()
	s.Execute(EncodeOp(OpPut, "a1", "1"))
	s.Execute(EncodeOp(OpPut, "a2", "2"))
	s.Execute(EncodeOp(OpPut, "b1", "3"))
	if got := string(s.Execute(EncodeOp(OpScan, "a", "10"))); got != "a1=1\na2=2" {
		t.Fatalf("scan op = %q", got)
	}
	if got := string(s.Execute(EncodeOp(OpScan, "a", ""))); got != "a1=1\na2=2" {
		t.Fatalf("uncapped scan op = %q", got)
	}
	if got := string(s.Execute(EncodeOp(OpScan, "a", "bogus"))); got != "ERR bad scan limit bogus" {
		t.Fatalf("bad limit = %q", got)
	}
	if got := string(s.Execute(EncodeOp(OpScan, "a", "-1"))); got != "ERR bad scan limit -1" {
		t.Fatalf("negative limit = %q", got)
	}
	// Scans go through the ordered path: they count as applied ops and
	// invalidate the marshal cache like any other execution.
	before := s.Applied()
	s.Execute(EncodeOp(OpScan, "a", ""))
	if s.Applied() != before+1 {
		t.Fatal("scan not counted as an applied op")
	}
}
