package kvstore

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedStates returns marshaled states (valid and corrupted) seeding
// FuzzUnmarshalState with inputs that reach every parse arm.
func fuzzSeedStates() [][]byte {
	empty := New()
	small := New()
	small.Execute(EncodeOp(OpPut, "alpha", "1"))
	small.Execute(EncodeOp(OpPut, "beta", "two"))
	small.Execute(EncodeOp(OpDelete, "alpha", ""))
	valid := small.MarshalState()

	truncated := bytes.Clone(valid)[:len(valid)-3]
	hugeKeyLen := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugeKeyLen[8:], 0xFFFFFFFF)

	return [][]byte{
		empty.MarshalState(),
		valid,
		truncated,
		hugeKeyLen,
		{},
		{0, 0, 0, 0, 0, 0, 0},       // shorter than the applied counter
		{0, 0, 0, 0, 0, 0, 0, 1, 9}, // counter plus a dangling length byte
	}
}

// FuzzUnmarshalState asserts the state codec is total: arbitrary input
// either loads into a store whose canonical re-marshaling is a fixed
// point, or returns an error — it must never panic. Corrupted snapshots
// (truncated payloads, hostile length fields) land on the error path.
func FuzzUnmarshalState(f *testing.F) {
	for _, seed := range fuzzSeedStates() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		if err := s.UnmarshalState(data); err != nil {
			return
		}
		// Accepted: the canonical form must round-trip exactly. (The
		// input itself may be non-canonical — unsorted or duplicate
		// keys — so it is the re-marshaling that must be the fixed
		// point, and the snapshot digest must follow it.)
		m := bytes.Clone(s.MarshalState())
		s2 := New()
		if err := s2.UnmarshalState(m); err != nil {
			t.Fatalf("canonical state rejected: %v", err)
		}
		if !bytes.Equal(s2.MarshalState(), m) {
			t.Fatalf("re-marshaling is not a fixed point:\n%x\nvs\n%x", m, s2.MarshalState())
		}
		if s2.Applied() != s.Applied() || s2.Len() != s.Len() {
			t.Fatalf("round trip changed counters: applied %d->%d, len %d->%d",
				s.Applied(), s2.Applied(), s.Len(), s2.Len())
		}
		if s2.Snapshot() != s.Snapshot() {
			t.Fatal("round trip changed the snapshot digest")
		}
	})
}

// FuzzDecodeOp asserts the operation codec is total and canonical:
// whatever DecodeOp accepts must re-encode byte-identically.
func FuzzDecodeOp(f *testing.F) {
	f.Add(EncodeOp(OpPut, "k1", "v1"))
	f.Add(EncodeOp(OpGet, "k1", ""))
	f.Add(EncodeOp(OpDelete, "", ""))
	f.Add(EncodeOp(OpScan, "k00", "16"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		code, key, value, err := DecodeOp(data)
		if err != nil {
			return
		}
		if re := EncodeOp(code, key, value); !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x re-encodes to %x", data, re)
		}
	})
}
