package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"rubin/internal/auth"
)

// keyInBucket returns a key of the form prefix<n> that PartitionKey
// assigns to the wanted Merkle bucket.
func keyInBucket(t testing.TB, prefix string, want int) string {
	t.Helper()
	for n := 0; n < 1<<20; n++ {
		k := fmt.Sprintf("%s%d", prefix, n)
		if bucketOf(k) == want {
			return k
		}
	}
	t.Fatalf("no key found for bucket %d", want)
	return ""
}

// TestMerkleRootComposition is the table-driven contract test for the
// partition layer: for a range of store shapes, the root composed from
// the header and leaf digests must equal Snapshot(), and every leaf
// digest must equal auth.Hash of the partition's canonical encoding.
func TestMerkleRootComposition(t *testing.T) {
	cases := []struct {
		name  string
		build func(s *Store)
	}{
		{"empty store", func(s *Store) {}},
		{"single bucket", func(s *Store) {
			s.Execute(EncodeOp(OpPut, "solo", "v"))
		}},
		{"bucket deleted back to empty", func(s *Store) {
			s.Execute(EncodeOp(OpPut, "gone", "v"))
			s.Execute(EncodeOp(OpDelete, "gone", ""))
		}},
		{"many buckets", func(s *Store) {
			for i := 0; i < 300; i++ {
				s.Execute(EncodeOp(OpPut, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i)))
			}
		}},
		{"with staged txn section", func(s *Store) {
			s.Execute(EncodeOp(OpPut, "base", "1"))
			s.Execute(EncodePrepare("t1", []TxnSub{{Code: OpPut, Key: "staged", Value: "x"}}))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			tc.build(s)
			digests := s.PartitionDigests()
			if len(digests) != s.PartitionCount() || s.PartitionCount() != MerkleBuckets {
				t.Fatalf("digest count %d, partition count %d", len(digests), s.PartitionCount())
			}
			if got := s.ComposeRoot(s.MarshalHeader(), digests); got != s.Snapshot() {
				t.Fatalf("ComposeRoot %x != Snapshot %x", got, s.Snapshot())
			}
			for i, d := range digests {
				if auth.Hash(s.MarshalPartition(i)) != d {
					t.Fatalf("partition %d digest does not match its encoding", i)
				}
			}
		})
	}
}

// TestMerkleDigestStableAcrossInsertionOrder asserts the leaf digests
// (not just the root) are a pure function of contents: two stores
// reaching the same key set by different orders and intermediate
// states must agree bucket by bucket.
func TestMerkleDigestStableAcrossInsertionOrder(t *testing.T) {
	a, b := New(), New()
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, k := range keys {
		a.Execute(EncodeOp(OpPut, k, "v-"+k))
	}
	// b inserts in reverse, with detours through values and deletions.
	for i := len(keys) - 1; i >= 0; i-- {
		b.Execute(EncodeOp(OpPut, keys[i], "wrong"))
		b.Execute(EncodeOp(OpPut, keys[i], "v-"+keys[i]))
	}
	b.Execute(EncodeOp(OpPut, "transient", "x"))
	b.Execute(EncodeOp(OpDelete, "transient", ""))
	da, db := a.PartitionDigests(), b.PartitionDigests()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("bucket %d digest depends on history", i)
		}
	}
	// The roots still differ: the applied counters diverged.
	if a.Snapshot() == b.Snapshot() {
		t.Fatal("snapshot ignores the applied counter")
	}
}

// TestCheckpointDeltaTracksDirtyBuckets drives targeted mutations and
// asserts CheckpointDelta reports exactly the touched buckets, and that
// reads (which advance the applied counter but mutate nothing) dirty
// none.
func TestCheckpointDeltaTracksDirtyBuckets(t *testing.T) {
	s := New()
	k1 := keyInBucket(t, "a", 7)
	k2 := keyInBucket(t, "b", 200)
	s.Execute(EncodeOp(OpPut, k1, "1"))
	s.Execute(EncodeOp(OpPut, k2, "2"))
	base := s.Applied()

	if d := s.CheckpointDelta(base); len(d) != 0 {
		t.Fatalf("nothing applied since base, delta = %v", d)
	}
	s.Execute(EncodeOp(OpGet, k1, ""))
	s.Execute(EncodeOp(OpScan, "a", ""))
	if d := s.CheckpointDelta(base); len(d) != 0 {
		t.Fatalf("reads dirtied buckets: %v", d)
	}
	s.Execute(EncodeOp(OpPut, k2, "2'"))
	if d := s.CheckpointDelta(base); len(d) != 1 || d[0] != 200 {
		t.Fatalf("delta = %v, want [200]", d)
	}
	s.Execute(EncodeOp(OpDelete, k1, ""))
	if d := s.CheckpointDelta(base); len(d) != 2 || d[0] != 7 || d[1] != 200 {
		t.Fatalf("delta = %v, want [7 200]", d)
	}
	// Full history: both populated buckets are dirty relative to zero.
	if d := s.CheckpointDelta(0); len(d) != 2 {
		t.Fatalf("delta from genesis = %v", d)
	}
}

// TestApplyPartitionRoundTrip moves one bucket between stores and
// verifies the receiving store's digest tracks the donor's for that
// bucket, while rejecting non-canonical encodings.
func TestApplyPartitionRoundTrip(t *testing.T) {
	src := New()
	k1 := keyInBucket(t, "p", 42)
	k2 := keyInBucket(t, "q", 42)
	src.Execute(EncodeOp(OpPut, k1, "one"))
	src.Execute(EncodeOp(OpPut, k2, "two"))

	dst := New()
	enc := src.MarshalPartition(42)
	if err := dst.ApplyPartition(42, enc); err != nil {
		t.Fatalf("ApplyPartition: %v", err)
	}
	if dst.PartitionDigests()[42] != src.PartitionDigests()[42] {
		t.Fatal("transferred bucket digest differs")
	}
	if v, ok := dst.Get(k1); !ok || v != "one" {
		t.Fatal("transferred key unreadable")
	}
	if dst.Len() != 2 {
		t.Fatalf("Len = %d after partition install, want 2", dst.Len())
	}

	// Rejections: wrong bucket, trailing bytes, truncation, unsorted keys.
	if err := dst.ApplyPartition(41, enc); err == nil {
		t.Fatal("accepted keys into the wrong bucket")
	}
	if err := dst.ApplyPartition(42, append(bytes.Clone(enc), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if err := dst.ApplyPartition(42, enc[:len(enc)-2]); err == nil {
		t.Fatal("accepted truncated encoding")
	}
	if err := dst.ApplyPartition(MerkleBuckets, enc); err == nil {
		t.Fatal("accepted out-of-range partition index")
	}
	before := dst.Snapshot()
	if err := dst.ApplyPartition(42, enc[:len(enc)-2]); err == nil || dst.Snapshot() != before {
		t.Fatal("failed ApplyPartition mutated the store")
	}
}

// TestMarshalStateCopiesDoNotAlias is the regression test for the
// checkpoint-retention aliasing hazard: bytes returned by MarshalState
// and MarshalPartition are retained by the PBFT layer across later
// executions, so subsequent mutations must never write through into a
// previously returned slice.
func TestMarshalStateCopiesDoNotAlias(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Execute(EncodeOp(OpPut, fmt.Sprintf("k%03d", i), "before"))
	}
	snap := s.MarshalState()
	retained := bytes.Clone(snap)
	part := 0
	for i := range s.buckets {
		if len(s.buckets[i]) > 0 {
			part = i
			break
		}
	}
	partEnc := s.MarshalPartition(part)
	partRetained := bytes.Clone(partEnc)

	for i := 0; i < 64; i++ {
		s.Execute(EncodeOp(OpPut, fmt.Sprintf("k%03d", i), "AFTER!"))
		s.Execute(EncodeOp(OpPut, fmt.Sprintf("extra%03d", i), "x"))
	}
	s.MarshalState() // repopulate every cache after the mutations
	if !bytes.Equal(snap, retained) {
		t.Fatal("MarshalState result mutated by later executions")
	}
	if !bytes.Equal(partEnc, partRetained) {
		t.Fatal("MarshalPartition result mutated by later executions")
	}

	// And the reverse direction: installing a partition must not keep a
	// reference to the caller's buffer.
	src := New()
	k := keyInBucket(t, "alias", 3)
	src.Execute(EncodeOp(OpPut, k, "clean"))
	buf := src.MarshalPartition(3)
	dst := New()
	if err := dst.ApplyPartition(3, buf); err != nil {
		t.Fatal(err)
	}
	want := dst.PartitionDigests()[3]
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if dst.PartitionDigests()[3] != want {
		t.Fatal("store aliases the caller's partition buffer")
	}
}

// TestMarshalStateReusesCleanBucketEncodings asserts the incremental
// re-encode: after a full marshal, mutating one key and marshaling
// again must re-encode only that key's bucket (observable through the
// cache slots).
func TestMarshalStateReusesCleanBucketEncodings(t *testing.T) {
	s := New()
	for i := 0; i < 512; i++ {
		s.Execute(EncodeOp(OpPut, fmt.Sprintf("k%04d", i), "v"))
	}
	s.MarshalState()
	var cached [MerkleBuckets][]byte
	for i := range cached {
		cached[i] = s.bucketEnc[i]
	}
	hot := keyInBucket(t, "hot", 9)
	s.Execute(EncodeOp(OpPut, hot, "1"))
	s.MarshalState()
	for i := range cached {
		same := &s.bucketEnc[i][0] == &cached[i][0]
		if i == 9 && same {
			t.Fatal("dirty bucket encoding not refreshed")
		}
		if i != 9 && !same {
			t.Fatalf("clean bucket %d was re-encoded", i)
		}
	}
}

// TestApplyTransferAtomic verifies whole-store adoption: a valid
// header+partitions set installs atomically and reproduces the donor's
// snapshot; any invalid component leaves the store untouched.
func TestApplyTransferAtomic(t *testing.T) {
	src := New()
	for i := 0; i < 128; i++ {
		src.Execute(EncodeOp(OpPut, fmt.Sprintf("t%04d", i), fmt.Sprintf("v%d", i)))
	}
	src.Execute(EncodePrepare("tx9", []TxnSub{{Code: OpPut, Key: "locked", Value: "L"}}))
	header := src.MarshalHeader()
	parts := make([][]byte, MerkleBuckets)
	for i := range parts {
		parts[i] = src.MarshalPartition(i)
	}

	dst := New()
	dst.Execute(EncodeOp(OpPut, "stale", "gone"))
	if err := dst.ApplyTransfer(header, parts); err != nil {
		t.Fatalf("ApplyTransfer: %v", err)
	}
	if dst.Snapshot() != src.Snapshot() {
		t.Fatal("adopted snapshot differs from donor")
	}
	if _, ok := dst.Get("stale"); ok {
		t.Fatal("transfer did not replace prior contents")
	}
	if dst.Len() != src.Len() || dst.Applied() != src.Applied() {
		t.Fatalf("counters diverged: len %d/%d applied %d/%d", dst.Len(), src.Len(), dst.Applied(), src.Applied())
	}

	// A corrupt partition in the set must reject without mutating.
	bad := make([][]byte, MerkleBuckets)
	copy(bad, parts)
	for i := range bad {
		if len(bad[i]) > 4 {
			bad[i] = bad[i][:len(bad[i])-1]
			break
		}
	}
	before := dst.Snapshot()
	if err := dst.ApplyTransfer(header, bad); err == nil {
		t.Fatal("accepted transfer with corrupt partition")
	}
	if dst.Snapshot() != before {
		t.Fatal("failed transfer mutated the store")
	}
	if err := dst.ApplyTransfer(header, parts[:10]); err == nil {
		t.Fatal("accepted short partition set")
	}
	if err := dst.ApplyTransfer(header[:4], parts); err == nil {
		t.Fatal("accepted truncated header")
	}
}

// FuzzApplyPartition asserts the partition codec is total and
// canonical: arbitrary bytes either install (and then re-marshal byte
// for byte with a digest matching auth.Hash of the input) or reject
// with the store untouched — never panic.
func FuzzApplyPartition(f *testing.F) {
	seedSrc := New()
	seedSrc.Execute(EncodeOp(OpPut, "fz-a", "1"))
	seedSrc.Execute(EncodeOp(OpPut, "fz-b", "2"))
	for i := 0; i < MerkleBuckets; i++ {
		if len(seedSrc.MarshalPartition(i)) > 4 {
			f.Add(i, seedSrc.MarshalPartition(i))
		}
	}
	f.Add(0, New().MarshalPartition(0))
	f.Add(3, []byte{})
	f.Add(-1, []byte{0, 0, 0, 0})
	f.Add(MerkleBuckets, []byte{0, 0, 0, 1, 0, 0, 0, 1, 'x', 0, 0, 0, 0})
	f.Add(5, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, part int, data []byte) {
		s := New()
		s.Execute(EncodeOp(OpPut, "pre", "kept"))
		before := s.Snapshot()
		if err := s.ApplyPartition(part, data); err != nil {
			if s.Snapshot() != before {
				t.Fatal("failed ApplyPartition mutated the store")
			}
			return
		}
		if got := s.MarshalPartition(part); !bytes.Equal(got, data) {
			t.Fatalf("accepted partition is not canonical:\n%x\nvs\n%x", data, got)
		}
		if s.PartitionDigests()[part] != auth.Hash(data) {
			t.Fatal("installed digest does not hash the encoding")
		}
	})
}

// benchStore builds a store with n keys for the checkpoint benchmarks.
func benchStore(n int) *Store {
	s := New()
	for i := 0; i < n; i++ {
		s.Execute(EncodeOp(OpPut, fmt.Sprintf("bench%06d", i), "value-for-benchmarking"))
	}
	s.MarshalState() // settle every cache
	return s
}

// BenchmarkCheckpointTakeIncremental measures the steady-state
// checkpoint path over a 10k-key store: one mutation, then the header,
// digest list and dirty-partition serialization a pbft checkpoint
// records. The interesting number is allocs/op staying flat as the
// store grows (contrast BenchmarkCheckpointTakeFull).
func BenchmarkCheckpointTakeIncremental(b *testing.B) {
	s := benchStore(10_000)
	prev := s.Applied()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Execute(EncodeOp(OpPut, "bench000007", fmt.Sprintf("v%d", i)))
		header := s.MarshalHeader()
		digests := s.PartitionDigests()
		var bytes int
		for _, p := range s.CheckpointDelta(prev) {
			bytes += len(s.MarshalPartition(p))
		}
		prev = s.Applied()
		_, _ = header, digests
		_ = bytes
	}
}

// BenchmarkCheckpointTakeFull measures the pre-incremental cost: a
// whole-store serialization per checkpoint, as the legacy
// FullStateTransfer mode still performs.
func BenchmarkCheckpointTakeFull(b *testing.B) {
	s := benchStore(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Execute(EncodeOp(OpPut, "bench000007", fmt.Sprintf("v%d", i)))
		_ = len(s.MarshalState())
	}
}

// BenchmarkCheckpointAdopt measures whole-state adoption from a
// transfer (header + 256 partitions), the receive side of recovery.
func BenchmarkCheckpointAdopt(b *testing.B) {
	src := benchStore(10_000)
	header := src.MarshalHeader()
	parts := make([][]byte, MerkleBuckets)
	for i := range parts {
		parts[i] = src.MarshalPartition(i)
	}
	dst := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.ApplyTransfer(header, parts); err != nil {
			b.Fatal(err)
		}
	}
}
