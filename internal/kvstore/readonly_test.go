package kvstore

import (
	"bytes"
	"testing"
)

func TestOpReadOnlyClassification(t *testing.T) {
	cases := []struct {
		name string
		op   []byte
		want bool
	}{
		{"get", EncodeOp(OpGet, "k", ""), true},
		{"scan", EncodeOp(OpScan, "pre", "10"), true},
		{"scan-part", EncodeOp(OpScanPart, "pre", "0/4/10"), true},
		{"put", EncodeOp(OpPut, "k", "v"), false},
		{"delete", EncodeOp(OpDelete, "k", ""), false},
		{"txn", EncodeOp(OpTxn, "t1", "r:a"), false},
		{"prepare", EncodeOp(OpPrepare, "t1", ""), false},
		{"commit", EncodeOp(OpCommit, "t1", ""), false},
		{"abort", EncodeOp(OpAbort, "t1", ""), false},
		{"malformed", []byte{0xFF, 1, 2}, false},
		{"empty", nil, false},
	}
	for _, tc := range cases {
		if got := OpReadOnly(tc.op); got != tc.want {
			t.Errorf("%s: OpReadOnly = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestExecuteReadOnlyMatchesExecute pins the tentative read contract:
// for every read-only operation, ExecuteReadOnly returns byte-identical
// results to Execute on the same state — and leaves the store's applied
// counter, marshaled state and checkpoint digest untouched, where
// Execute advances them even for reads.
func TestExecuteReadOnlyMatchesExecute(t *testing.T) {
	build := func() *Store {
		s := New()
		s.Execute(EncodeOp(OpPut, "a1", "x"))
		s.Execute(EncodeOp(OpPut, "a2", "y"))
		s.Execute(EncodeOp(OpPut, "b1", "z"))
		return s
	}
	ops := [][]byte{
		EncodeOp(OpGet, "a1", ""),
		EncodeOp(OpGet, "missing", ""),
		EncodeOp(OpScan, "a", ""),
		EncodeOp(OpScan, "a", "1"),
		EncodeOp(OpScan, "a", "bogus"),
		EncodeOp(OpScanPart, "a", "0/2/0"),
		EncodeOp(OpScanPart, "a", "1/2/0"),
		{0xFF, 0, 1}, // malformed: both paths answer ERR
	}
	for _, op := range ops {
		ordered := build()
		tentative := build()
		applied, state, digest := tentative.Applied(), tentative.MarshalState(), tentative.Snapshot()
		want := ordered.Execute(op)
		got := tentative.ExecuteReadOnly(op)
		if !bytes.Equal(got, want) {
			t.Errorf("op %q: ExecuteReadOnly = %q, Execute = %q", op, got, want)
		}
		if tentative.Applied() != applied {
			t.Errorf("op %q: tentative read advanced the applied counter", op)
		}
		if tentative.Snapshot() != digest {
			t.Errorf("op %q: tentative read changed the checkpoint digest", op)
		}
		if !bytes.Equal(tentative.MarshalState(), state) {
			t.Errorf("op %q: tentative read changed the marshaled state", op)
		}
	}
}

// TestExecuteReadOnlyRefusesMutations proves the tentative path cannot
// be abused to write: non-read-only operations are refused and the
// store stays byte-identical.
func TestExecuteReadOnlyRefusesMutations(t *testing.T) {
	s := New()
	s.Execute(EncodeOp(OpPut, "k", "v"))
	digest := s.Snapshot()
	for _, op := range [][]byte{
		EncodeOp(OpPut, "k", "v2"),
		EncodeOp(OpDelete, "k", ""),
		EncodeOp(OpTxn, "t1", "w:k=v3"),
	} {
		res := s.ExecuteReadOnly(op)
		if !bytes.HasPrefix(res, []byte("ERR")) {
			t.Errorf("mutation %q accepted on the read-only path: %q", op, res)
		}
	}
	if s.Snapshot() != digest {
		t.Fatal("refused mutations still changed the state")
	}
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Fatalf("value corrupted: %q %v", v, ok)
	}
}
