package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func txnResult(t *testing.T, raw []byte) (string, [][]byte) {
	t.Helper()
	status, results, err := DecodeTxnResult(raw)
	if err != nil {
		t.Fatalf("DecodeTxnResult(%q): %v", raw, err)
	}
	return status, results
}

func TestPartitionKeyCoversAllRanges(t *testing.T) {
	const parts = 8
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		p := PartitionKey(fmt.Sprintf("k%06d", i), parts)
		if p < 0 || p >= parts {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p]++
	}
	for p := 0; p < parts; p++ {
		if seen[p] == 0 {
			t.Fatalf("partition %d empty over 1000 keys", p)
		}
	}
	if PartitionKey("anything", 1) != 0 {
		t.Fatal("single partition must own everything")
	}
}

func TestOpKeys(t *testing.T) {
	subs := []TxnSub{{OpPut, "b", "1"}, {OpGet, "a", ""}, {OpPut, "b", "2"}}
	cases := []struct {
		op   []byte
		want []string
	}{
		{EncodeOp(OpPut, "k1", "v"), []string{"k1"}},
		{EncodeOp(OpGet, "k2", ""), []string{"k2"}},
		{EncodeOp(OpDelete, "k3", ""), []string{"k3"}},
		{EncodeOp(OpScan, "k0", "16"), []string{"k0"}},
		{EncodeScanPart("k0", 16, 1, 4), []string{"k0"}},
		{EncodeTxn("t1", subs), []string{"b", "a"}},
		{EncodePrepare("t1", subs), []string{"b", "a"}},
	}
	for _, c := range cases {
		got, err := OpKeys(c.op)
		if err != nil {
			t.Fatalf("OpKeys: %v", err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("OpKeys = %v, want %v", got, c.want)
		}
	}
	for _, op := range [][]byte{EncodeCommit("t1"), EncodeAbort("t1"), {1, 2}} {
		if _, err := OpKeys(op); err == nil {
			t.Fatalf("OpKeys(%x) should fail", op)
		}
	}
}

func TestOnePhaseTxnAtomic(t *testing.T) {
	s := New()
	s.Execute(EncodeOp(OpPut, "a", "old"))
	res := s.Execute(EncodeTxn("t1", []TxnSub{
		{OpGet, "a", ""},
		{OpPut, "a", "new"},
		{OpGet, "a", ""}, // reads its own write
		{OpPut, "b", "vb"},
	}))
	status, results := txnResult(t, res)
	if status != TxnCommitted {
		t.Fatalf("status %q", status)
	}
	want := []string{"old", "OK", "new", "OK"}
	for i, w := range want {
		if string(results[i]) != w {
			t.Fatalf("result[%d] = %q, want %q", i, results[i], w)
		}
	}
	if v, _ := s.Get("b"); v != "vb" {
		t.Fatalf("b = %q", v)
	}
}

func TestPrepareCommitAppliesStagedWrites(t *testing.T) {
	s := New()
	s.Execute(EncodeOp(OpPut, "a", "old"))
	res := s.Execute(EncodePrepare("t1", []TxnSub{{OpGet, "a", ""}, {OpPut, "a", "new"}}))
	status, results := txnResult(t, res)
	if status != TxnPrepared || string(results[0]) != "old" {
		t.Fatalf("prepare: %q %q", status, results)
	}
	// Staged, not applied: reads still see the old value, writes are locked.
	if v, _ := s.Get("a"); v != "old" {
		t.Fatalf("pre-commit a = %q", v)
	}
	if got := string(s.Execute(EncodeOp(OpPut, "a", "clobber"))); got != Locked {
		t.Fatalf("conflicting put got %q, want %q", got, Locked)
	}
	if got := string(s.Execute(EncodeOp(OpDelete, "a", ""))); got != Locked {
		t.Fatalf("conflicting delete got %q, want %q", got, Locked)
	}
	// Reads pass through locks (staged writes are invisible pre-commit).
	if got := string(s.Execute(EncodeOp(OpGet, "a", ""))); got != "old" {
		t.Fatalf("read under lock got %q", got)
	}
	status, _ = txnResult(t, s.Execute(EncodeCommit("t1")))
	if status != TxnCommitted {
		t.Fatalf("commit status %q", status)
	}
	if v, _ := s.Get("a"); v != "new" {
		t.Fatalf("post-commit a = %q", v)
	}
	if s.LockHolder("a") != "" || len(s.Prepared()) != 0 {
		t.Fatal("commit left locks or staging behind")
	}
}

func TestPrepareAbortDiscardsStagedWrites(t *testing.T) {
	s := New()
	txnResult(t, s.Execute(EncodePrepare("t1", []TxnSub{{OpPut, "a", "v"}})))
	txnResult(t, s.Execute(EncodeAbort("t1")))
	if _, ok := s.Get("a"); ok {
		t.Fatal("aborted write applied")
	}
	if s.LockHolder("a") != "" {
		t.Fatal("abort left the lock")
	}
	// Aborting a never-prepared txn is a harmless no-op.
	status, _ := txnResult(t, s.Execute(EncodeAbort("t9")))
	if status != TxnAborted {
		t.Fatalf("status %q", status)
	}
	// Committing an unknown txn is an error.
	if got := string(s.Execute(EncodeCommit("t9"))); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("commit of unknown txn got %q", got)
	}
}

func TestPrepareConflictVotesAbort(t *testing.T) {
	s := New()
	txnResult(t, s.Execute(EncodePrepare("t1", []TxnSub{{OpPut, "a", "1"}})))
	status, _ := txnResult(t, s.Execute(EncodePrepare("t2", []TxnSub{{OpPut, "a", "2"}})))
	if status != TxnAborted {
		t.Fatalf("conflicting prepare voted %q, want %q", status, TxnAborted)
	}
	// The loser staged nothing: committing t1 must win cleanly.
	txnResult(t, s.Execute(EncodeCommit("t1")))
	if v, _ := s.Get("a"); v != "1" {
		t.Fatalf("a = %q", v)
	}
	// One-phase txns see the same conflict as single-key writes.
	txnResult(t, s.Execute(EncodePrepare("t3", []TxnSub{{OpPut, "b", "3"}})))
	if got := string(s.Execute(EncodeTxn("t4", []TxnSub{{OpPut, "b", "4"}}))); got != Locked {
		t.Fatalf("one-phase txn under lock got %q, want %q", got, Locked)
	}
}

func TestPrepareLocksReadKeys(t *testing.T) {
	// Strict two-phase locking: a prepared reader holds its snapshot
	// stable — writers (single-key or transactional) conflict until the
	// decision releases the locks.
	s := New()
	s.Execute(EncodeOp(OpPut, "a", "v0"))
	status, results := txnResult(t, s.Execute(EncodePrepare("r1", []TxnSub{{OpGet, "a", ""}})))
	if status != TxnPrepared || string(results[0]) != "v0" {
		t.Fatalf("reader prepare: %q %q", status, results)
	}
	if s.LockHolder("a") != "r1" {
		t.Fatal("read sub did not lock its key")
	}
	if got := string(s.Execute(EncodeOp(OpPut, "a", "clobber"))); got != Locked {
		t.Fatalf("write under read lock got %q", got)
	}
	status, _ = txnResult(t, s.Execute(EncodePrepare("w1", []TxnSub{{OpPut, "a", "v1"}})))
	if status != TxnAborted {
		t.Fatalf("writer prepare under read lock voted %q", status)
	}
	// Commit of a pure reader applies nothing and releases the lock.
	txnResult(t, s.Execute(EncodeCommit("r1")))
	if v, _ := s.Get("a"); v != "v0" || s.LockHolder("a") != "" {
		t.Fatalf("reader commit mutated state: a=%q holder=%q", v, s.LockHolder("a"))
	}
}

func TestMarshalStateCarriesPreparedTxns(t *testing.T) {
	s := New()
	s.Execute(EncodeOp(OpPut, "a", "old"))
	txnResult(t, s.Execute(EncodePrepare("t1", []TxnSub{{OpPut, "a", "new"}, {OpGet, "q", ""}, {OpPut, "z", "zz"}})))

	s2 := New()
	if err := s2.UnmarshalState(s.MarshalState()); err != nil {
		t.Fatal(err)
	}
	if s2.Snapshot() != s.Snapshot() {
		t.Fatal("digest diverged across marshal round trip")
	}
	if s2.LockHolder("a") != "t1" || s2.LockHolder("z") != "t1" || s2.LockHolder("q") != "t1" {
		t.Fatal("locks (including read locks) not rebuilt from staged subs")
	}
	// The restored replica can finish the in-doubt transaction.
	status, _ := txnResult(t, s2.Execute(EncodeCommit("t1")))
	if status != TxnCommitted {
		t.Fatalf("status %q", status)
	}
	if v, _ := s2.Get("a"); v != "new" {
		t.Fatalf("a = %q", v)
	}
}

func TestScanPartPartitionsAndMerges(t *testing.T) {
	const parts = 4
	s := New()
	var want []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%06d", i)
		s.Execute(EncodeOp(OpPut, k, fmt.Sprintf("v%d", i)))
		want = append(want, k+"="+fmt.Sprintf("v%d", i))
	}
	s.Execute(EncodeOp(OpPut, "other", "x"))

	var partials []string
	total := 0
	for _, op := range SplitScan("k", 0, parts) {
		res := string(s.Execute(op))
		if res != "" {
			total += len(strings.Split(res, "\n"))
		}
		partials = append(partials, res)
	}
	if total != 40 {
		t.Fatalf("partitions returned %d pairs, want 40", total)
	}
	merged := MergeScans(partials, 0)
	if merged != strings.Join(want, "\n") {
		t.Fatalf("merged scan mismatch:\n%s", merged)
	}
	// The merge of partition scans equals the whole-store scan, capped.
	if got := MergeScans(partials, 7); got != s.Scan("k", 7) {
		t.Fatalf("capped merge %q != direct scan %q", got, s.Scan("k", 7))
	}
	// Malformed partition specs are deterministic errors.
	if got := string(s.Execute(EncodeOp(OpScanPart, "k", "nonsense"))); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad spec got %q", got)
	}
	if got := string(s.Execute(EncodeOp(OpScanPart, "k", "0 9 4"))); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("out-of-range part got %q", got)
	}
}

func TestTxnCodecRoundTrips(t *testing.T) {
	subs := []TxnSub{{OpPut, "k1", "v1"}, {OpGet, "k2", ""}}
	dec, err := DecodeTxnSubs([]byte(""))
	if err == nil {
		t.Fatalf("empty subs accepted: %v", dec)
	}
	_, k, v, err := DecodeOp(EncodePrepare("t1", subs))
	if err != nil || k != "t1" {
		t.Fatalf("prepare decode: %q %v", k, err)
	}
	got, err := DecodeTxnSubs([]byte(v))
	if err != nil || len(got) != 2 || got[0] != subs[0] || got[1] != subs[1] {
		t.Fatalf("subs round trip: %v %v", got, err)
	}
	res := EncodeTxnResult(TxnPrepared, [][]byte{[]byte("old"), nil})
	status, results, err := DecodeTxnResult(res)
	if err != nil || status != TxnPrepared || len(results) != 2 || !bytes.Equal(results[0], []byte("old")) {
		t.Fatalf("result round trip: %q %v %v", status, results, err)
	}
	if _, _, err := DecodeTxnResult([]byte("OK")); err == nil {
		t.Fatal("plain reply decoded as txn result")
	}
	// Trailing bytes are rejected (canonical decode).
	if _, err := DecodeTxnSubs(append(encodeTxnSubs(subs), 0)); err == nil {
		t.Fatal("trailing sub bytes accepted")
	}
	if _, _, err := DecodeTxnResult(append(res, 0)); err == nil {
		t.Fatal("trailing result bytes accepted")
	}
}
