// Package fabric simulates the physical cluster: hosts with CPU and NIC
// resources connected by full-duplex point-to-point links.
//
// The fabric is deliberately protocol-agnostic: it serializes opaque
// payloads onto a link direction (FIFO, so delivery is in order per
// direction), applies propagation delay, and hands frames to the protocol
// handler registered at the destination node. The TCP and RDMA stacks on
// top charge their own CPU/NIC costs before and after using the wire, which
// keeps the comparison between stacks honest: both see the same link.
//
// Links additionally carry the per-link fault state the chaos subsystem
// drives (LinkFaults: loss, added latency, jitter, down). A downed link
// holds frames and releases them in their original order on heal — a
// partition is modeled as an unbounded message delay, never as loss — so
// the loss-free simulated transports survive partition/heal cycles intact.
package fabric

import (
	"fmt"

	"rubin/internal/model"
	"rubin/internal/sim"
)

// Protocol identifies which stack a frame belongs to; nodes register one
// handler per protocol.
type Protocol uint8

// Protocols multiplexed over the fabric.
const (
	ProtoTCP Protocol = iota + 1
	ProtoRDMA
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoRDMA:
		return "rdma"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Handler receives frames delivered to a node.
type Handler func(from *Node, payload any, wireBytes int)

// DropFunc inspects a frame about to enter a link direction and reports
// whether to drop it (fault injection). A nil DropFunc drops nothing.
type DropFunc func(from, to *Node, payload any, wireBytes int) bool

// Network is a set of nodes and links sharing one simulation loop and one
// parameter set.
type Network struct {
	loop   *sim.Loop
	params model.Params
	nodes  map[string]*Node
	links  map[linkKey]*Link
}

type linkKey struct{ a, b string }

func orderedKey(a, b string) linkKey {
	if a < b {
		return linkKey{a, b}
	}
	return linkKey{b, a}
}

// New creates an empty network on the given loop.
func New(loop *sim.Loop, params model.Params) *Network {
	return &Network{
		loop:   loop,
		params: params,
		nodes:  make(map[string]*Node),
		links:  make(map[linkKey]*Link),
	}
}

// Loop returns the simulation loop.
func (nw *Network) Loop() *sim.Loop { return nw.loop }

// Params returns the network's parameter set.
func (nw *Network) Params() model.Params { return nw.params }

// AddNode creates a node with the configured CPU core and NIC engine
// counts. Node names must be unique.
func (nw *Network) AddNode(name string) *Node {
	if _, dup := nw.nodes[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate node %q", name))
	}
	n := &Node{
		name:     name,
		net:      nw,
		CPU:      sim.NewResource(nw.loop, name+"/cpu", nw.params.Host.Cores),
		NIC:      sim.NewResource(nw.loop, name+"/nic", nw.params.Host.NICEngines),
		handlers: make(map[Protocol]Handler),
	}
	nw.nodes[name] = n
	return n
}

// Node returns the named node, or nil if absent.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Connect creates (or returns the existing) full-duplex link between two
// nodes using the network's link parameters.
func (nw *Network) Connect(a, b *Node) *Link {
	if a == b {
		panic("fabric: cannot link a node to itself")
	}
	key := orderedKey(a.name, b.name)
	if l, ok := nw.links[key]; ok {
		return l
	}
	l := &Link{
		net:    nw,
		a:      a,
		b:      b,
		params: nw.params.Link,
		ab:     sim.NewResource(nw.loop, a.name+"->"+b.name, 1),
		ba:     sim.NewResource(nw.loop, b.name+"->"+a.name, 1),
	}
	nw.links[key] = l
	return l
}

// Link returns the link between two nodes, or nil if they are not connected.
func (nw *Network) Link(a, b *Node) *Link {
	return nw.links[orderedKey(a.name, b.name)]
}

// Send serializes a payload onto the link from one node to another and
// schedules delivery to the destination's protocol handler. wireBytes is
// the size charged on the wire (payload plus protocol framing). It returns
// an error if the nodes are not connected or the destination has no handler
// for the protocol.
func (nw *Network) Send(from, to *Node, proto Protocol, payload any, wireBytes int) error {
	link := nw.Link(from, to)
	if link == nil {
		return fmt.Errorf("fabric: no link %s -> %s", from.name, to.name)
	}
	if _, ok := to.handlers[proto]; !ok {
		return fmt.Errorf("fabric: node %s has no %v handler", to.name, proto)
	}
	link.transmit(from, to, proto, payload, wireBytes)
	return nil
}

// Node is one simulated host.
type Node struct {
	name string
	net  *Network

	// CPU is the host processor (Cores parallel servers). All software
	// costs — syscalls, copies, kernel protocol processing, selector
	// dispatch, BFT logic — are charged here.
	CPU *sim.Resource

	// NIC is the RDMA NIC's processing/DMA engine pool. RDMA data-path
	// costs are charged here instead of the CPU: that asymmetry is the
	// kernel-bypass / zero-copy advantage.
	NIC *sim.Resource

	handlers map[Protocol]Handler
}

// Name returns the node's unique name.
func (n *Node) Name() string { return n.name }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Loop returns the simulation loop.
func (n *Node) Loop() *sim.Loop { return n.net.loop }

// Register installs the handler for a protocol, replacing any previous one.
func (n *Node) Register(proto Protocol, h Handler) {
	if h == nil {
		panic("fabric: nil handler")
	}
	n.handlers[proto] = h
}

// LinkFaults is the injected fault state of one link (both directions).
// The zero value is a healthy link. All randomness (loss, jitter) is drawn
// from the simulation loop's seeded source, so fault behaviour is
// deterministic per seed.
type LinkFaults struct {
	// LossRate is the probability in [0,1] that a frame is silently
	// discarded before entering the wire. Note that the simulated stream
	// transports assume a reliable fabric (no retransmission is modeled),
	// so sustained loss on an established connection degrades it
	// permanently — use for raw-fabric experiments and datagram traffic.
	LossRate float64
	// ExtraLatency is added to every frame's propagation delay.
	ExtraLatency sim.Time
	// Jitter adds a uniformly distributed random delay in [0, Jitter) per
	// frame. Delivery remains FIFO per direction: a frame is never
	// delivered before one sent earlier on the same direction.
	Jitter sim.Time
	// Down severs the link: frames are held instead of transmitted and
	// are released in order when the link comes back up. This models a
	// network partition as an unbounded delay (the standard asynchronous
	// model), which keeps the loss-free stream transports above the
	// fabric intact across a heal.
	Down bool
}

// heldFrame is a frame queued while its link is down.
type heldFrame struct {
	from, to  *Node
	proto     Protocol
	payload   any
	wireBytes int
}

// Link is a full-duplex point-to-point link.
type Link struct {
	net    *Network
	a, b   *Node
	params model.LinkParams
	ab, ba *sim.Resource // one serialization server per direction

	drop   DropFunc
	faults LinkFaults
	held   []heldFrame

	// lastArrival tracks the latest scheduled delivery time per direction
	// so jittered frames cannot overtake earlier ones.
	lastArrivalAB sim.Time
	lastArrivalBA sim.Time

	// Stats per link (both directions combined).
	frames  uint64
	bytes   uint64
	dropped uint64
}

// SetDrop installs a fault-injection predicate; frames for which it returns
// true vanish before entering the wire.
func (l *Link) SetDrop(fn DropFunc) { l.drop = fn }

// Faults returns the link's current fault state.
func (l *Link) Faults() LinkFaults { return l.faults }

// SetFaults replaces the link's fault state. Clearing Down releases all
// held frames, in their original order, through the then-current fault
// state (so a healed link delivers its backlog at normal link speed).
func (l *Link) SetFaults(f LinkFaults) {
	wasDown := l.faults.Down
	l.faults = f
	if wasDown && !f.Down {
		held := l.held
		l.held = nil
		for _, h := range held {
			l.transmit(h.from, h.to, h.proto, h.payload, h.wireBytes)
		}
	}
}

// SetDown severs or restores the link, preserving the other fault fields.
func (l *Link) SetDown(down bool) {
	f := l.faults
	f.Down = down
	l.SetFaults(f)
}

// Frames returns the number of frames transmitted.
func (l *Link) Frames() uint64 { return l.frames }

// Bytes returns the number of payload bytes transmitted.
func (l *Link) Bytes() uint64 { return l.bytes }

// Dropped returns the number of frames removed by fault injection.
func (l *Link) Dropped() uint64 { return l.dropped }

// Held returns the number of frames currently queued on a down link.
func (l *Link) Held() int { return len(l.held) }

func (l *Link) direction(from *Node) *sim.Resource {
	if from == l.a {
		return l.ab
	}
	return l.ba
}

func (l *Link) lastArrival(from *Node) *sim.Time {
	if from == l.a {
		return &l.lastArrivalAB
	}
	return &l.lastArrivalBA
}

func (l *Link) transmit(from, to *Node, proto Protocol, payload any, wireBytes int) {
	// Hold before consulting the DropFunc: held frames re-enter transmit
	// on heal, and each frame must face the predicate exactly once.
	if l.faults.Down {
		l.held = append(l.held, heldFrame{from, to, proto, payload, wireBytes})
		return
	}
	if l.drop != nil && l.drop(from, to, payload, wireBytes) {
		l.dropped++
		return
	}
	if l.faults.LossRate > 0 && l.net.loop.Rand().Float64() < l.faults.LossRate {
		l.dropped++
		return
	}
	l.frames++
	l.bytes += uint64(wireBytes)
	ser := l.params.SerializeTime(wireBytes)
	prop := l.params.Propagation + l.faults.ExtraLatency
	if l.faults.Jitter > 0 {
		prop += sim.Time(l.net.loop.Rand().Int63n(int64(l.faults.Jitter)))
	}
	loop := l.net.loop
	last := l.lastArrival(from)
	l.direction(from).Acquire(ser, func() {
		at := loop.Now() + prop
		if at < *last {
			at = *last // FIFO: never overtake an earlier frame
		}
		*last = at
		loop.At(at, func() {
			if h := to.handlers[proto]; h != nil {
				h(from, payload, wireBytes)
			}
		})
	})
}
