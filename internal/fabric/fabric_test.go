package fabric

import (
	"testing"
	"testing/quick"

	"rubin/internal/model"
	"rubin/internal/sim"
)

func testNet() (*sim.Loop, *Network) {
	loop := sim.NewLoop(1)
	return loop, New(loop, model.Default())
}

func TestSendDeliversInOrderWithDelay(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(a, b)

	var got []int
	var at []sim.Time
	b.Register(ProtoTCP, func(from *Node, p any, wb int) {
		got = append(got, p.(int))
		at = append(at, loop.Now())
	})
	loop.At(0, func() {
		for i := 0; i < 5; i++ {
			if err := nw.Send(a, b, ProtoTCP, i, 1500); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	loop.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
	// First frame: serialize(1500+58) + 3µs propagation.
	min := model.Default().Link.Propagation
	if at[0] <= min {
		t.Fatalf("first delivery at %v, want > propagation %v", at[0], min)
	}
	// Frames serialize back-to-back, so deliveries are strictly increasing.
	for i := 1; i < len(at); i++ {
		if at[i] <= at[i-1] {
			t.Fatalf("deliveries not strictly ordered in time: %v", at)
		}
	}
}

func TestSendWithoutLinkFails(t *testing.T) {
	_, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	b.Register(ProtoTCP, func(*Node, any, int) {})
	if err := nw.Send(a, b, ProtoTCP, "x", 10); err == nil {
		t.Fatal("Send without a link should fail")
	}
}

func TestSendWithoutHandlerFails(t *testing.T) {
	_, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(a, b)
	if err := nw.Send(a, b, ProtoTCP, "x", 10); err == nil {
		t.Fatal("Send without a handler should fail")
	}
}

func TestConnectIsIdempotent(t *testing.T) {
	_, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	l1 := nw.Connect(a, b)
	l2 := nw.Connect(b, a)
	if l1 != l2 {
		t.Fatal("Connect(a,b) and Connect(b,a) should return the same link")
	}
	if nw.Link(a, b) != l1 || nw.Link(b, a) != l1 {
		t.Fatal("Link lookup should be direction-agnostic")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	_, nw := testNet()
	nw.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate node")
		}
	}()
	nw.AddNode("a")
}

func TestSelfLinkPanics(t *testing.T) {
	_, nw := testNet()
	a := nw.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self link")
		}
	}()
	nw.Connect(a, a)
}

func TestDropFunc(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	link := nw.Connect(a, b)
	delivered := 0
	b.Register(ProtoTCP, func(*Node, any, int) { delivered++ })
	n := 0
	link.SetDrop(func(from, to *Node, p any, wb int) bool {
		n++
		return n%2 == 0 // drop every second frame
	})
	loop.At(0, func() {
		for i := 0; i < 10; i++ {
			_ = nw.Send(a, b, ProtoTCP, i, 100)
		}
	})
	loop.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5", delivered)
	}
	if link.Dropped() != 5 {
		t.Fatalf("Dropped() = %d, want 5", link.Dropped())
	}
	if link.Frames() != 5 {
		t.Fatalf("Frames() = %d, want 5", link.Frames())
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(a, b)
	var aAt, bAt sim.Time
	a.Register(ProtoTCP, func(*Node, any, int) { aAt = loop.Now() })
	b.Register(ProtoTCP, func(*Node, any, int) { bAt = loop.Now() })
	loop.At(0, func() {
		_ = nw.Send(a, b, ProtoTCP, "ab", 100000)
		_ = nw.Send(b, a, ProtoTCP, "ba", 100000)
	})
	loop.Run()
	if aAt == 0 || bAt == 0 {
		t.Fatal("both directions should deliver")
	}
	if aAt != bAt {
		t.Fatalf("full duplex broken: a at %v, b at %v", aAt, bAt)
	}
}

func TestProtocolDemux(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(a, b)
	var tcp, rdma int
	b.Register(ProtoTCP, func(*Node, any, int) { tcp++ })
	b.Register(ProtoRDMA, func(*Node, any, int) { rdma++ })
	loop.At(0, func() {
		_ = nw.Send(a, b, ProtoTCP, 1, 10)
		_ = nw.Send(a, b, ProtoRDMA, 2, 10)
		_ = nw.Send(a, b, ProtoRDMA, 3, 10)
	})
	loop.Run()
	if tcp != 1 || rdma != 2 {
		t.Fatalf("demux wrong: tcp=%d rdma=%d", tcp, rdma)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoRDMA.String() != "rdma" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() != "proto(9)" {
		t.Fatal("unknown protocol formatting wrong")
	}
}

func TestLinkDownHoldsAndReleasesInOrder(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	link := nw.Connect(a, b)
	var got []int
	b.Register(ProtoTCP, func(from *Node, p any, wb int) { got = append(got, p.(int)) })

	link.SetDown(true)
	loop.At(0, func() {
		for i := 0; i < 4; i++ {
			_ = nw.Send(a, b, ProtoTCP, i, 100)
		}
	})
	loop.Run()
	if len(got) != 0 {
		t.Fatalf("down link delivered %v", got)
	}
	if link.Held() != 4 {
		t.Fatalf("Held() = %d, want 4", link.Held())
	}
	// Heal at a later virtual time: the backlog drains in order.
	loop.At(loop.Now()+sim.Millisecond, func() { link.SetDown(false) })
	loop.Run()
	if len(got) != 4 || link.Held() != 0 {
		t.Fatalf("after heal: got %v, held %d", got, link.Held())
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("heal reordered frames: %v", got)
		}
	}
}

func TestLinkLossIsDeterministic(t *testing.T) {
	run := func() (delivered int, dropped uint64) {
		loop, nw := testNet()
		a, b := nw.AddNode("a"), nw.AddNode("b")
		link := nw.Connect(a, b)
		b.Register(ProtoTCP, func(*Node, any, int) { delivered++ })
		link.SetFaults(LinkFaults{LossRate: 0.3})
		loop.At(0, func() {
			for i := 0; i < 200; i++ {
				_ = nw.Send(a, b, ProtoTCP, i, 100)
			}
		})
		loop.Run()
		return delivered, link.Dropped()
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("loss nondeterministic: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("loss rate 0.3 dropped %d and delivered %d of 200", x1, d1)
	}
}

func TestLinkExtraLatencyDelaysDelivery(t *testing.T) {
	arrival := func(extra sim.Time) sim.Time {
		loop, nw := testNet()
		a, b := nw.AddNode("a"), nw.AddNode("b")
		link := nw.Connect(a, b)
		var at sim.Time
		b.Register(ProtoTCP, func(*Node, any, int) { at = loop.Now() })
		link.SetFaults(LinkFaults{ExtraLatency: extra})
		loop.At(0, func() { _ = nw.Send(a, b, ProtoTCP, nil, 100) })
		loop.Run()
		return at
	}
	base := arrival(0)
	slow := arrival(5 * sim.Millisecond)
	if slow != base+5*sim.Millisecond {
		t.Fatalf("extra latency: base %v, degraded %v", base, slow)
	}
}

func TestLinkJitterPreservesFIFO(t *testing.T) {
	loop, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	link := nw.Connect(a, b)
	var got []int
	var at []sim.Time
	b.Register(ProtoTCP, func(from *Node, p any, wb int) {
		got = append(got, p.(int))
		at = append(at, loop.Now())
	})
	link.SetFaults(LinkFaults{Jitter: 2 * sim.Millisecond})
	loop.At(0, func() {
		for i := 0; i < 50; i++ {
			_ = nw.Send(a, b, ProtoTCP, i, 100)
		}
	})
	loop.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50 under jitter", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("jitter reordered frames at %d: %v", i, got[:i+1])
		}
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrival times regressed: %v then %v", at[i-1], at[i])
		}
	}
}

func TestSetFaultsPreservedAcrossSetDown(t *testing.T) {
	_, nw := testNet()
	a, b := nw.AddNode("a"), nw.AddNode("b")
	link := nw.Connect(a, b)
	link.SetFaults(LinkFaults{ExtraLatency: sim.Millisecond, LossRate: 0.1})
	link.SetDown(true)
	link.SetDown(false)
	f := link.Faults()
	if f.ExtraLatency != sim.Millisecond || f.LossRate != 0.1 || f.Down {
		t.Fatalf("SetDown clobbered fault state: %+v", f)
	}
}

// Property: bigger frames never arrive earlier than smaller ones sent at the
// same instant on an idle link (serialization is monotone in size).
func TestPropertyLargerFramesArriveNoEarlier(t *testing.T) {
	prop := func(s1, s2 uint16) bool {
		small, big := int(s1)%60000, int(s2)%60000
		if small > big {
			small, big = big, small
		}
		arrival := func(size int) sim.Time {
			loop := sim.NewLoop(1)
			nw := New(loop, model.Default())
			a, b := nw.AddNode("a"), nw.AddNode("b")
			nw.Connect(a, b)
			var at sim.Time
			b.Register(ProtoTCP, func(*Node, any, int) { at = loop.Now() })
			loop.At(0, func() { _ = nw.Send(a, b, ProtoTCP, nil, size) })
			loop.Run()
			return at
		}
		return arrival(small) <= arrival(big)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
