package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLoopRunsEventsInTimeOrder(t *testing.T) {
	l := NewLoop(1)
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		l.After(d, func() { got = append(got, l.Now()) })
	}
	l.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at t=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoopTieBreakIsFIFO(t *testing.T) {
	l := NewLoop(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(100, func() { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline events ran out of order: %v", order)
		}
	}
}

func TestLoopPostRunsAfterQueuedSameInstant(t *testing.T) {
	l := NewLoop(1)
	var order []string
	l.At(0, func() {
		l.Post(func() { order = append(order, "posted") })
	})
	l.At(0, func() { order = append(order, "second") })
	l.Run()
	if len(order) != 2 || order[0] != "second" || order[1] != "posted" {
		t.Fatalf("got order %v, want [second posted]", order)
	}
}

func TestLoopSchedulingInPastClampsToNow(t *testing.T) {
	l := NewLoop(1)
	fired := Time(-1)
	l.At(100, func() {
		l.At(50, func() { fired = l.Now() })
	})
	l.Run()
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %v, want 100", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should fail")
	}
	l.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if tm.Pending() {
		t.Fatal("canceled timer reports pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	l := NewLoop(1)
	tm := l.After(10, func() {})
	l.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after firing should return false")
	}
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
}

func TestNilTimerCancel(t *testing.T) {
	var tm *Timer
	if tm.Cancel() || tm.Pending() {
		t.Fatal("nil timer must be inert")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.At(10, func() { ran = true })
	l.At(500, func() { t.Error("event beyond horizon ran") })
	l.RunUntil(100)
	if !ran {
		t.Fatal("event before horizon did not run")
	}
	if l.Now() != 100 {
		t.Fatalf("clock at %v, want 100", l.Now())
	}
	if l.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", l.Pending())
	}
}

func TestRunUntilDrainedQueueStillAdvances(t *testing.T) {
	l := NewLoop(1)
	l.RunUntil(42)
	if l.Now() != 42 {
		t.Fatalf("clock at %v, want 42", l.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	l := NewLoop(1)
	if l.Step() {
		t.Fatal("Step on empty loop returned true")
	}
}

func TestEventLimitPanics(t *testing.T) {
	l := NewLoop(1)
	l.SetEventLimit(5)
	var reschedule func()
	reschedule = func() { l.After(1, reschedule) }
	l.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	l.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		l := NewLoop(seed)
		var trace []Time
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			l.At(Time(rng.Int63n(1000)), func() {
				trace = append(trace, l.Now())
				if l.Rand().Intn(2) == 0 {
					l.After(Time(l.Rand().Int63n(100)), func() {
						trace = append(trace, l.Now())
					})
				}
			})
		}
		l.Run()
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("different trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of deadlines, execution order is the sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(deadlines []uint16) bool {
		l := NewLoop(1)
		var got []Time
		for _, d := range deadlines {
			l.At(Time(d), func() { got = append(got, l.Now()) })
		}
		l.Run()
		want := make([]Time, len(deadlines))
		for i, d := range deadlines {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: clock never moves backwards regardless of scheduling pattern.
func TestPropertyMonotonicClock(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		l := NewLoop(seed)
		last := Time(0)
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if l.Now() < last {
				ok = false
			}
			last = l.Now()
			if depth > 0 {
				l.After(Time(l.Rand().Int63n(50)), func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < int(n%16)+1; i++ {
			l.At(Time(l.Rand().Int63n(100)), func() { spawn(3) })
		}
		l.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Microsecond.Micros() != 1 {
		t.Error("Micros conversion wrong")
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds conversion wrong")
	}
}
