package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rubin/internal/raceflag"
)

func TestLoopRunsEventsInTimeOrder(t *testing.T) {
	l := NewLoop(1)
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		l.After(d, func() { got = append(got, l.Now()) })
	}
	l.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at t=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoopTieBreakIsFIFO(t *testing.T) {
	l := NewLoop(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(100, func() { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline events ran out of order: %v", order)
		}
	}
}

func TestLoopPostRunsAfterQueuedSameInstant(t *testing.T) {
	l := NewLoop(1)
	var order []string
	l.At(0, func() {
		l.Post(func() { order = append(order, "posted") })
	})
	l.At(0, func() { order = append(order, "second") })
	l.Run()
	if len(order) != 2 || order[0] != "second" || order[1] != "posted" {
		t.Fatalf("got order %v, want [second posted]", order)
	}
}

func TestLoopSchedulingInPastClampsToNow(t *testing.T) {
	l := NewLoop(1)
	fired := Time(-1)
	l.At(100, func() {
		l.At(50, func() { fired = l.Now() })
	})
	l.Run()
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %v, want 100", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should fail")
	}
	l.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if tm.Pending() {
		t.Fatal("canceled timer reports pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	l := NewLoop(1)
	tm := l.After(10, func() {})
	l.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after firing should return false")
	}
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Cancel() || tm.Pending() {
		t.Fatal("zero timer must be inert")
	}
}

func TestCancelRemovesEventFromHeap(t *testing.T) {
	l := NewLoop(1)
	var timers []Timer
	for i := 0; i < 8; i++ {
		timers = append(timers, l.After(Time(10*(i+1)), func() {}))
	}
	if l.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", l.Pending())
	}
	// Cancel from the middle: the heap must shrink immediately, not at
	// the event's deadline.
	if !timers[3].Cancel() {
		t.Fatal("Cancel failed")
	}
	if l.Pending() != 7 {
		t.Fatalf("pending after cancel = %d, want 7 (lazy removal?)", l.Pending())
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if l.Pending() != 0 {
		t.Fatalf("pending after canceling all = %d, want 0", l.Pending())
	}
	fired := false
	l.After(5, func() { fired = true })
	l.Run()
	if !fired {
		t.Fatal("loop unusable after cancellations")
	}
}

func TestRecycledEventIgnoresStaleTimer(t *testing.T) {
	l := NewLoop(1)
	stale := l.After(10, func() {})
	if !stale.Cancel() {
		t.Fatal("Cancel failed")
	}
	// The canceled event goes back to the free list; the next At reuses
	// it. The stale handle must not be able to cancel the new occupant.
	fired := false
	fresh := l.After(20, func() { fired = true })
	if stale.Cancel() || stale.Pending() {
		t.Fatal("stale timer still acts on the recycled event")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer not pending")
	}
	l.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelOrderDeterminismUnchanged(t *testing.T) {
	// Interleaving cancellations must not perturb the (time, seq) order
	// of the surviving events.
	run := func() []int {
		l := NewLoop(3)
		var got []int
		var timers []Timer
		for i := 0; i < 50; i++ {
			i := i
			timers = append(timers, l.At(Time(i%7)*10, func() { got = append(got, i) }))
		}
		for i := 0; i < 50; i += 3 {
			timers[i].Cancel()
		}
		l.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.At(10, func() { ran = true })
	l.At(500, func() { t.Error("event beyond horizon ran") })
	l.RunUntil(100)
	if !ran {
		t.Fatal("event before horizon did not run")
	}
	if l.Now() != 100 {
		t.Fatalf("clock at %v, want 100", l.Now())
	}
	if l.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", l.Pending())
	}
}

func TestRunUntilDrainedQueueStillAdvances(t *testing.T) {
	l := NewLoop(1)
	l.RunUntil(42)
	if l.Now() != 42 {
		t.Fatalf("clock at %v, want 42", l.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	l := NewLoop(1)
	if l.Step() {
		t.Fatal("Step on empty loop returned true")
	}
}

func TestEventLimitPanics(t *testing.T) {
	l := NewLoop(1)
	l.SetEventLimit(5)
	var reschedule func()
	reschedule = func() { l.After(1, reschedule) }
	l.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	l.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		l := NewLoop(seed)
		var trace []Time
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			l.At(Time(rng.Int63n(1000)), func() {
				trace = append(trace, l.Now())
				if l.Rand().Intn(2) == 0 {
					l.After(Time(l.Rand().Int63n(100)), func() {
						trace = append(trace, l.Now())
					})
				}
			})
		}
		l.Run()
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("different trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of deadlines, execution order is the sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(deadlines []uint16) bool {
		l := NewLoop(1)
		var got []Time
		for _, d := range deadlines {
			l.At(Time(d), func() { got = append(got, l.Now()) })
		}
		l.Run()
		want := make([]Time, len(deadlines))
		for i, d := range deadlines {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: clock never moves backwards regardless of scheduling pattern.
func TestPropertyMonotonicClock(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		l := NewLoop(seed)
		last := Time(0)
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if l.Now() < last {
				ok = false
			}
			last = l.Now()
			if depth > 0 {
				l.After(Time(l.Rand().Int63n(50)), func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < int(n%16)+1; i++ {
			l.At(Time(l.Rand().Int63n(100)), func() { spawn(3) })
		}
		l.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAtFireAllocsSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	l := NewLoop(1)
	fn := func() {}
	// Warm up: grow the heap backing array and seed the free list.
	for i := 0; i < 64; i++ {
		l.After(1, fn)
	}
	l.Run()
	if avg := testing.AllocsPerRun(200, func() {
		l.After(1, fn)
		l.Run()
	}); avg > 0 {
		t.Fatalf("At+fire allocates %.1f/op steady-state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tm := l.After(1, fn)
		tm.Cancel()
	}); avg > 0 {
		t.Fatalf("At+Cancel allocates %.1f/op steady-state, want 0", avg)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Microsecond.Micros() != 1 {
		t.Error("Micros conversion wrong")
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds conversion wrong")
	}
}
