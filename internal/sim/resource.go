package sim

// Resource models a k-server FIFO service station on the simulation loop,
// e.g. a CPU with k cores, a NIC processing engine, or one direction of a
// network link. Work is submitted with Acquire(serviceTime, done): it is
// served in submission order as servers free up, and done runs at the
// virtual instant the work completes.
//
// Resources are how the simulator charges time: instead of sleeping, a
// component acquires its CPU or NIC for the modeled duration of an
// operation. Contention and queueing then emerge naturally under load.
type Resource struct {
	loop *Loop
	name string

	// busyUntil holds the next-free instant of each server, unsorted;
	// Acquire picks the earliest-free server deterministically (lowest
	// index wins ties).
	busyUntil []Time

	// Statistics.
	jobs      uint64
	busyTotal Time
	lastIdle  Time
}

// NewResource creates a resource with the given number of parallel servers.
// servers must be at least 1.
func NewResource(loop *Loop, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: NewResource needs at least one server")
	}
	return &Resource{loop: loop, name: name, busyUntil: make([]Time, servers)}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of parallel servers.
func (r *Resource) Servers() int { return len(r.busyUntil) }

// Acquire enqueues a job with the given service time and returns the virtual
// time at which it will complete. If done is non-nil it is scheduled to run
// at that completion instant. Service is FIFO per call order: a job starts
// at max(now, earliest server free time).
func (r *Resource) Acquire(service Time, done func()) Time {
	if service < 0 {
		service = 0
	}
	now := r.loop.Now()
	best := 0
	for i := 1; i < len(r.busyUntil); i++ {
		if r.busyUntil[i] < r.busyUntil[best] {
			best = i
		}
	}
	start := r.busyUntil[best]
	if start < now {
		start = now
	}
	finish := start + service
	r.busyUntil[best] = finish
	r.jobs++
	r.busyTotal += service
	if done != nil {
		r.loop.At(finish, done)
	}
	return finish
}

// Delay is a convenience for charging time without a completion callback.
func (r *Resource) Delay(service Time) Time { return r.Acquire(service, nil) }

// QueueDelay returns how long a zero-length job submitted now would wait
// before starting service, i.e. the current backlog of the least-loaded
// server.
func (r *Resource) QueueDelay() Time {
	now := r.loop.Now()
	best := r.busyUntil[0]
	for _, t := range r.busyUntil[1:] {
		if t < best {
			best = t
		}
	}
	if best <= now {
		return 0
	}
	return best - now
}

// Jobs returns the number of jobs submitted so far.
func (r *Resource) Jobs() uint64 { return r.jobs }

// BusyTotal returns the cumulative service time charged to this resource.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Utilization returns busy time divided by (elapsed × servers), a value in
// [0, 1] once the simulation has run past time zero.
func (r *Resource) Utilization() float64 {
	elapsed := r.loop.Now()
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busyTotal) / (float64(elapsed) * float64(len(r.busyUntil)))
}
