package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSingleServerSerializes(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 1)
	var done []Time
	l.At(0, func() {
		r.Acquire(100, func() { done = append(done, l.Now()) })
		r.Acquire(50, func() { done = append(done, l.Now()) })
		r.Acquire(25, func() { done = append(done, l.Now()) })
	})
	l.Run()
	want := []Time{100, 150, 175}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v (all: %v)", i, done[i], want[i], done)
		}
	}
}

func TestResourceMultiServerParallel(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 2)
	var done []Time
	l.At(0, func() {
		r.Acquire(100, func() { done = append(done, l.Now()) }) // server 0: 0..100
		r.Acquire(100, func() { done = append(done, l.Now()) }) // server 1: 0..100
		r.Acquire(100, func() { done = append(done, l.Now()) }) // queued: 100..200
	})
	l.Run()
	want := []Time{100, 100, 200}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceIdleGapResets(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 1)
	var second Time
	l.At(0, func() { r.Acquire(10, nil) })
	l.At(1000, func() { r.Acquire(10, func() { second = l.Now() }) })
	l.Run()
	if second != 1010 {
		t.Fatalf("job after idle gap finished at %v, want 1010", second)
	}
}

func TestResourceQueueDelay(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 1)
	l.At(0, func() {
		if d := r.QueueDelay(); d != 0 {
			t.Errorf("idle QueueDelay = %v, want 0", d)
		}
		r.Acquire(100, nil)
		if d := r.QueueDelay(); d != 100 {
			t.Errorf("QueueDelay = %v, want 100", d)
		}
	})
	l.Run()
}

func TestResourceStats(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 1)
	l.At(0, func() {
		r.Acquire(60, func() {})
		r.Acquire(40, func() {})
	})
	l.Run()
	if r.Jobs() != 2 {
		t.Errorf("Jobs = %d, want 2", r.Jobs())
	}
	if r.BusyTotal() != 100 {
		t.Errorf("BusyTotal = %v, want 100", r.BusyTotal())
	}
	if u := r.Utilization(); u != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", u)
	}
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	l := NewLoop(1)
	r := NewResource(l, "cpu", 1)
	var at Time = -1
	l.At(5, func() { r.Acquire(-10, func() { at = l.Now() }) })
	l.Run()
	if at != 5 {
		t.Fatalf("negative-service job completed at %v, want 5", at)
	}
}

func TestNewResourcePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewLoop(1), "bad", 0)
}

// Property: on a single-server resource, completions preserve submission
// order and never overlap (finish[i] + service[i+1] <= finish[i+1]).
func TestPropertyResourceFIFO(t *testing.T) {
	prop := func(services []uint8) bool {
		l := NewLoop(1)
		r := NewResource(l, "cpu", 1)
		var finishes []Time
		l.At(0, func() {
			for _, s := range services {
				r.Acquire(Time(s), func() { finishes = append(finishes, l.Now()) })
			}
		})
		l.Run()
		if len(finishes) != len(services) {
			return false
		}
		var expect Time
		for i, s := range services {
			expect += Time(s)
			if finishes[i] != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals the sum of service times, regardless of
// server count.
func TestPropertyResourceBusyAccounting(t *testing.T) {
	prop := func(services []uint8, servers uint8) bool {
		k := int(servers%4) + 1
		l := NewLoop(1)
		r := NewResource(l, "cpu", k)
		var sum Time
		l.At(0, func() {
			for _, s := range services {
				sum += Time(s)
				r.Acquire(Time(s), nil)
			}
		})
		l.Run()
		return r.BusyTotal() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
