// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulated components in this repository (network fabric, TCP stack,
// RDMA verbs, selectors, BFT replicas) run as event handlers on a single
// Loop with a virtual nanosecond clock. Determinism is guaranteed by a
// strict (time, sequence) ordering of events and a seeded random source,
// so every experiment regenerates identical numbers.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most natural unit, e.g. "12.5µs".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback. Events with equal deadlines fire in the
// order they were scheduled (seq tie-break), which keeps runs reproducible.
//
// Events are pooled: once fired or canceled they return to the loop's free
// list and are reused by later At calls. gen increments on every release so
// a stale Timer holding a recycled event cannot cancel its new occupant.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int    // heap index, -1 while released
	gen   uint64 // reuse generation, bumped on release
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a value handle to a scheduled event; Cancel prevents it from
// firing. The zero Timer is inert: Cancel and Pending return false. Timers
// may be copied freely; every copy refers to the same scheduled event.
type Timer struct {
	loop *Loop
	ev   *event
	gen  uint64
}

// Cancel stops the timer, removing its event from the queue immediately
// (O(log n)) and recycling it. It reports whether the callback had not yet
// fired and was successfully prevented from firing. Cancel on a zero Timer
// or an already-fired/canceled timer is a no-op returning false.
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.index < 0 {
		return false
	}
	heap.Remove(&t.loop.events, ev.index)
	t.loop.release(ev)
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Loop is a single-threaded discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use; all simulated activity must happen in
// event callbacks on the loop.
type Loop struct {
	now       Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	processed uint64
	maxEvents uint64 // safety valve against runaway simulations; 0 = unlimited

	// free recycles fired/canceled events (plain LIFO — the loop is
	// single-threaded, so this is deterministic, unlike sync.Pool).
	free []*event
}

// NewLoop returns a Loop whose random source is seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.processed }

// SetEventLimit caps the total number of events the loop will execute;
// Run panics once the cap is exceeded. Zero disables the cap.
func (l *Loop) SetEventLimit(n uint64) { l.maxEvents = n }

// acquire takes an event from the free list, or allocates one.
func (l *Loop) acquire() *event {
	if n := len(l.free); n > 0 {
		ev := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns a fired or canceled event to the free list. Bumping gen
// invalidates every outstanding Timer for the old occupancy.
func (l *Loop) release(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	l.free = append(l.free, ev)
}

// At schedules fn to run at virtual time t. Scheduling in the past (t less
// than Now) runs the event at the current time, after already-queued events
// for that instant.
func (l *Loop) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < l.now {
		t = l.now
	}
	l.seq++
	ev := l.acquire()
	ev.at, ev.seq, ev.fn = t, l.seq, fn
	heap.Push(&l.events, ev)
	return Timer{loop: l, ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (l *Loop) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Post schedules fn to run at the current virtual time, after all events
// already queued for this instant.
func (l *Loop) Post(fn func()) Timer { return l.At(l.now, fn) }

// Step executes the single next event, advancing the clock to its deadline.
// It reports whether an event was executed. The event is released before
// its callback runs, so the callback may reschedule without growing the
// pool; a Timer held on the firing event reports Pending false inside it.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	ev := heap.Pop(&l.events).(*event)
	l.now = ev.at
	l.processed++
	if l.maxEvents != 0 && l.processed > l.maxEvents {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", l.maxEvents, l.now))
	}
	fn := ev.fn
	l.release(ev)
	fn()
	return true
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to exactly t (even if the queue drained earlier).
func (l *Loop) RunUntil(t Time) {
	for len(l.events) > 0 && l.events[0].at <= t {
		l.Step()
	}
	if l.now < t {
		l.now = t
	}
}

// Pending returns the number of scheduled events in the queue. Canceled
// events leave the queue immediately, so every counted event is live.
func (l *Loop) Pending() int { return len(l.events) }
