package bench

import (
	"fmt"
	"testing"

	"rubin/internal/model"
	"rubin/internal/transport"
)

// quickChaos shrinks the client window so the test run is cheap; the
// timeline and protocol behaviour are unchanged.
func quickChaos(kind transport.Kind) ChaosConfig {
	cfg := DefaultChaosConfig(kind)
	cfg.Window = 4
	return cfg
}

// TestChaosLivenessAcrossTimeline asserts the headline result of
// experiment E7 on both backends: the cluster keeps committing requests
// through every phase of the fault timeline — including the partition of
// the current leader, which only stays live because the previously
// crashed replica recovered via state transfer and completes the
// majority's quorum.
func TestChaosLivenessAcrossTimeline(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			res, err := RunChaos(quickChaos(kind), model.Default())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Phases {
				if p.Committed == 0 {
					t.Errorf("phase %q committed nothing:\n%s", p.Name, res.Render())
				}
			}
			if res.StateTransfers == 0 {
				t.Errorf("restarted replica completed no state transfer")
			}
			// The healthy phase must outperform the view-change phase
			// in mean latency (faults are not free).
			if res.Phases[0].MeanLat >= res.Phases[1].MeanLat {
				t.Errorf("healthy mean latency %v >= crash-phase %v",
					res.Phases[0].MeanLat, res.Phases[1].MeanLat)
			}
		})
	}
}

// TestChaosWindow8Regression is the deterministic repro of the window-8
// wedge: at exactly this offered load on the NIO backend, the partition
// phase used to leave TWO replicas lagging together behind the other two.
// No new checkpoint could then be certified (the 2F+1 certificate needs
// the laggards' own votes), the log window filled at stable+LogWindow,
// and state transfer never triggered because its trigger demanded a full
// quorum certificate — zero commits in the healed phase while view
// changes spun forever. Fixed by (1) triggering the fetch on F+1 matching
// checkpoint votes, (2) serving the newest retained (not just stable)
// checkpoint, and (3) having an adopter broadcast the adopted checkpoint
// so the stalled certificate completes. This test pins the fix at the
// exact wedging configuration on both backends.
func TestChaosWindow8Regression(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := DefaultChaosConfig(kind)
			cfg.Window = 8
			res, err := RunChaos(cfg, model.Default())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Phases {
				if p.Committed == 0 {
					t.Errorf("phase %q committed nothing (window-8 wedge is back):\n%s",
						p.Name, res.Render())
				}
			}
		})
	}
}

// TestChaosDeterministic asserts E7 reproduces byte-identical per-phase
// numbers and fault traces for a fixed seed.
func TestChaosDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunChaos(quickChaos(transport.KindRDMA), model.Default())
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s\n%s", res.Render(), res.Trace)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("E7 not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
