// Package bench is the benchmark-suite subsystem: an experiment registry
// regenerating the paper's evaluation and its extensions, with every
// experiment emitting machine-readable results.
//
// Experiments E1–E9 register themselves (from their defining files' init
// functions) as Experiment values: E1/E2 reproduce Figure 3 (transport
// micro-benchmark), E3/E4 Figure 4 (RUBIN vs Java-NIO selector over the
// Reptor communication stack), E5 the full replicated-system evaluation
// the paper lists as future work, E6 ablations of the Section IV
// optimizations, E7 agreement under a scripted fault timeline, and E8 the
// scaling study (PBFT cluster size, Reptor COP parallelism, multi-client
// load). Run executes one experiment under a RunContext (seed, quick
// mode, cost model, knob overrides) and returns a validated
// metrics.Result; cmd/benchsuite persists those as BENCH_<name>.json and
// diffs them across runs. Knob names and the result schema are documented
// in docs/EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/fabric"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/rdma"
	"rubin/internal/rubin"
	"rubin/internal/sim"
	"rubin/internal/tcpsim"
)

// Fig3Stack selects one series of Figure 3.
type Fig3Stack string

// The four series of Figure 3.
const (
	StackTCP      Fig3Stack = "TCP"
	StackSendRecv Fig3Stack = "RDMA Send/Recv"
	StackOneSided Fig3Stack = "RDMA Read/Write"
	StackChannel  Fig3Stack = "RDMA Channel"
)

// Fig3Stacks returns the series in the paper's legend order.
func Fig3Stacks() []Fig3Stack {
	return []Fig3Stack{StackTCP, StackSendRecv, StackOneSided, StackChannel}
}

// EchoConfig parameterizes one echo measurement.
type EchoConfig struct {
	Payload  int // message size in bytes
	Messages int // measured round trips
	Warmup   int // unmeasured round trips
	Window   int // outstanding messages (the paper streams 1000 msgs)
	Seed     int64
}

// DefaultEchoConfig mirrors the paper's micro-benchmark: 1000 messages
// exchanged per run with a small pipeline of outstanding requests.
func DefaultEchoConfig(payload int) EchoConfig {
	return EchoConfig{Payload: payload, Messages: 1000, Warmup: 50, Window: 3, Seed: 1}
}

// EchoResult is one measurement point.
type EchoResult struct {
	Stack      Fig3Stack
	Payload    int
	MeanRT     sim.Time // mean request round-trip latency
	P99RT      sim.Time
	Throughput float64 // requests per second (closed loop)
}

// RunFig3 measures one (stack, payload) point of Figure 3.
func RunFig3(stack Fig3Stack, cfg EchoConfig, params model.Params) (EchoResult, error) {
	switch stack {
	case StackTCP:
		return echoTCP(cfg, params)
	case StackSendRecv:
		return echoSendRecv(cfg, params)
	case StackOneSided:
		return echoOneSided(cfg, params)
	case StackChannel:
		return echoChannel(cfg, params)
	default:
		return EchoResult{}, fmt.Errorf("bench: unknown stack %q", stack)
	}
}

// ---------------------------------------------------------------------------
// Registry entries: E1 (Figure 3a, latency) and E2 (Figure 3b, throughput).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E1",
		Title:  "echo latency across transport stacks",
		Figure: "Figure 3a",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveFig3(rc)
			return cfg, err
		},
		Run: func(rc RunContext, res *metrics.Result) error {
			return runFig3Suite(rc, res, true)
		},
	})
	Register(Experiment{
		Name:   "E2",
		Title:  "echo throughput across transport stacks",
		Figure: "Figure 3b",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveFig3(rc)
			return cfg, err
		},
		Run: func(rc RunContext, res *metrics.Result) error {
			return runFig3Suite(rc, res, false)
		},
	})
}

// fig3Knobs are the resolved parameters of one E1/E2 run.
type fig3Knobs struct {
	payloadsKB []int
	messages   int
	warmup     int
	window     int
}

func resolveFig3(rc RunContext) (fig3Knobs, map[string]string, error) {
	k := fig3Knobs{payloadsKB: []int{1, 2, 4, 8, 16, 32, 64, 100}, messages: 1000, warmup: 50, window: 3}
	if rc.Quick {
		k.payloadsKB, k.messages, k.warmup = []int{1, 16}, 150, 20
	}
	var err error
	if k.payloadsKB, err = rc.intsKnob("payloads_kb", k.payloadsKB); err != nil {
		return k, nil, err
	}
	if k.messages, err = rc.intKnob("messages", k.messages); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	cfg := map[string]string{
		"payloads_kb": formatInts(k.payloadsKB),
		"messages":    strconv.Itoa(k.messages),
		"warmup":      strconv.Itoa(k.warmup),
		"window":      strconv.Itoa(k.window),
	}
	return k, cfg, nil
}

// fig3Transport labels the backend each Figure 3 series exercises.
func fig3Transport(stack Fig3Stack) string {
	if stack == StackTCP {
		return "tcp"
	}
	return "rdma"
}

// runFig3Suite sweeps all four stacks; latency selects Figure 3a (mean and
// p99 round trip in µs), otherwise Figure 3b (closed-loop krps).
func runFig3Suite(rc RunContext, res *metrics.Result, latency bool) error {
	k, _, err := resolveFig3(rc)
	if err != nil {
		return err
	}
	for _, stack := range Fig3Stacks() {
		var mean, p99, tput *metrics.ResultSeries
		if latency {
			mean = res.AddSeries(string(stack), metrics.MetricLatencyMean, "us", fig3Transport(stack), "payload_kb")
			p99 = res.AddSeries(string(stack), metrics.MetricLatencyP99, "us", fig3Transport(stack), "payload_kb")
		} else {
			tput = res.AddSeries(string(stack), metrics.MetricThroughput, "krps", fig3Transport(stack), "payload_kb")
		}
		for _, kb := range k.payloadsKB {
			cfg := EchoConfig{Payload: kb << 10, Messages: k.messages, Warmup: k.warmup, Window: k.window, Seed: rc.Seed}
			r, err := RunFig3(stack, cfg, rc.Model)
			if err != nil {
				return err
			}
			if latency {
				mean.Add(float64(kb), r.MeanRT.Micros())
				p99.Add(float64(kb), r.P99RT.Micros())
			} else {
				tput.Add(float64(kb), r.Throughput/1000)
			}
		}
	}
	return nil
}

// twoNodes builds the two-machine testbed of the paper's evaluation.
func twoNodes(seed int64, params model.Params) (*sim.Loop, *fabric.Node, *fabric.Node) {
	loop := sim.NewLoop(seed)
	nw := fabric.New(loop, params)
	a, b := nw.AddNode("client"), nw.AddNode("server")
	nw.Connect(a, b)
	return loop, a, b
}

// echoDriver runs the common closed-loop measurement: send() transmits one
// payload; the transport calls completed() per finished round trip.
type echoDriver struct {
	loop     *sim.Loop
	cfg      EchoConfig
	rec      *metrics.Recorder
	sendFn   func()
	started  []sim.Time
	inFlight int
	sent     int
	done     int
	startAt  sim.Time
	endAt    sim.Time
}

func newEchoDriver(loop *sim.Loop, cfg EchoConfig) *echoDriver {
	return &echoDriver{loop: loop, cfg: cfg, rec: metrics.NewRecorder()}
}

func (d *echoDriver) total() int { return d.cfg.Messages + d.cfg.Warmup }

// start primes the pipeline with Window outstanding messages.
func (d *echoDriver) start(send func()) {
	d.sendFn = send
	for i := 0; i < d.cfg.Window && d.sent < d.total(); i++ {
		d.sendOne()
	}
}

func (d *echoDriver) sendOne() {
	if d.sent == d.cfg.Warmup {
		d.startAt = d.loop.Now()
	}
	d.sent++
	d.started = append(d.started, d.loop.Now())
	d.sendFn()
}

// completed records one round trip and refills the pipeline.
func (d *echoDriver) completed() {
	if len(d.started) == 0 {
		return
	}
	t0 := d.started[0]
	d.started = d.started[1:]
	d.done++
	if d.done > d.cfg.Warmup {
		d.rec.Record(d.loop.Now() - t0)
		d.endAt = d.loop.Now()
	}
	if d.sent < d.total() {
		d.sendOne()
	}
}

func (d *echoDriver) result(stack Fig3Stack) EchoResult {
	elapsed := d.endAt - d.startAt
	return EchoResult{
		Stack:      stack,
		Payload:    d.cfg.Payload,
		MeanRT:     d.rec.Mean(),
		P99RT:      d.rec.Percentile(99),
		Throughput: metrics.Throughput(d.rec.Count(), elapsed),
	}
}

// ---------------------------------------------------------------------------
// TCP series: raw simulated sockets (no selector), byte-counted echo.
// ---------------------------------------------------------------------------

func echoTCP(cfg EchoConfig, params model.Params) (EchoResult, error) {
	loop, cn, sn := twoNodes(cfg.Seed, params)
	cs, ss := tcpsim.NewStack(cn), tcpsim.NewStack(sn)

	var serverConn *tcpsim.Conn
	if _, err := ss.Listen(9, func(c *tcpsim.Conn) { serverConn = c }); err != nil {
		return EchoResult{}, err
	}
	var clientConn *tcpsim.Conn
	var dialErr error
	loop.At(0, func() {
		cs.Dial(sn, 9, func(c *tcpsim.Conn, err error) {
			clientConn, dialErr = c, err
		})
	})
	loop.Run()
	if dialErr != nil || clientConn == nil || serverConn == nil {
		return EchoResult{}, fmt.Errorf("bench: tcp setup failed: %v", dialErr)
	}

	d := newEchoDriver(loop, cfg)
	payload := make([]byte, cfg.Payload)
	buf := make([]byte, 256<<10)

	// Server: echo every byte back.
	serverConn.OnReadable(func() {
		for {
			n, _ := serverConn.Read(buf)
			if n == 0 {
				return
			}
			rest := buf[:n]
			for len(rest) > 0 {
				w, _ := serverConn.Write(rest)
				if w == 0 {
					return // window closed; rely on further reads to drain
				}
				rest = rest[w:]
			}
		}
	})

	// Client: count echoed bytes; every Payload bytes completes one RT.
	echoed := 0
	clientConn.OnReadable(func() {
		for {
			n, _ := clientConn.Read(buf)
			if n == 0 {
				return
			}
			echoed += n
			for echoed >= cfg.Payload {
				echoed -= cfg.Payload
				d.completed()
			}
		}
	})

	loop.Post(func() {
		d.start(func() {
			rest := payload
			for len(rest) > 0 {
				w, _ := clientConn.Write(rest)
				if w == 0 {
					break
				}
				rest = rest[w:]
			}
		})
	})
	loop.Run()
	return d.result(StackTCP), nil
}

// ---------------------------------------------------------------------------
// RDMA Send/Recv series: raw verbs, every send signaled, explicit staging
// copies — the unoptimized two-sided baseline of the paper.
// ---------------------------------------------------------------------------

func echoSendRecv(cfg EchoConfig, params model.Params) (EchoResult, error) {
	loop, cn, sn := twoNodes(cfg.Seed, params)
	cd, sd := rdma.OpenDevice(cn), rdma.OpenDevice(sn)
	// One application thread per side, as in a verbs echo benchmark.
	ct := sim.NewResource(loop, "client/app", 1)
	st := sim.NewResource(loop, "server/app", 1)

	qprs, err := connectQPs(loop, cd, sd, cfg)
	if err != nil {
		return EchoResult{}, err
	}
	cqp, sqp := qprs.client, qprs.server
	cqp.SetWorkThread(ct)
	sqp.SetWorkThread(st)
	qprs.clientSendCQ.SetWorkThread(ct)
	qprs.clientRecvCQ.SetWorkThread(ct)
	qprs.serverSendCQ.SetWorkThread(st)
	qprs.serverRecvCQ.SetWorkThread(st)

	d := newEchoDriver(loop, cfg)

	// Server: echo each received message straight from registered memory
	// (perftest style: the raw verbs baseline does no staging copies);
	// re-post the receive buffer afterwards.
	serverSend := func(slot int, bytes int) {
		wr := &rdma.SendWR{ID: uint64(slot), Op: rdma.OpSend,
			MR: qprs.serverSendMR, Offset: slot * cfg.Payload, Length: bytes, Signaled: true}
		_ = sqp.PostSend(wr)
	}
	qprs.serverRecvCQ.OnEvent(func() {
		for {
			cqes := qprs.serverRecvCQ.Poll(16)
			if cqes == nil {
				break
			}
			for _, cqe := range cqes {
				slot := int(cqe.WRID)
				serverSend(slot, cqe.Bytes)
				_ = sqp.PostRecv(rdma.RecvWR{ID: cqe.WRID, MR: qprs.serverRecvMR,
					Offset: slot * cfg.Payload, Length: cfg.Payload})
			}
		}
		qprs.serverRecvCQ.RequestNotify()
	})
	qprs.serverRecvCQ.RequestNotify()
	// Pay for every signaled send completion individually — the naive
	// baseline processes one completion event per message; this is the
	// cost RUBIN's selective signaling amortizes away.
	drainCQStrict(qprs.serverSendCQ, st, params)

	// Client: completion of an echo per received message.
	qprs.clientRecvCQ.OnEvent(func() {
		for {
			cqes := qprs.clientRecvCQ.Poll(16)
			if cqes == nil {
				break
			}
			for _, cqe := range cqes {
				slot := int(cqe.WRID)
				_ = cqp.PostRecv(rdma.RecvWR{ID: cqe.WRID, MR: qprs.clientRecvMR,
					Offset: slot * cfg.Payload, Length: cfg.Payload})
				d.completed()
			}
		}
		qprs.clientRecvCQ.RequestNotify()
	})
	qprs.clientRecvCQ.RequestNotify()
	drainCQStrict(qprs.clientSendCQ, ct, params)

	sendSlot := 0
	loop.Post(func() {
		d.start(func() {
			slot := sendSlot % qpSlots
			sendSlot++
			wr := &rdma.SendWR{ID: uint64(slot), Op: rdma.OpSend,
				MR: qprs.clientSendMR, Offset: slot * cfg.Payload, Length: cfg.Payload, Signaled: true}
			_ = cqp.PostSend(wr)
		})
	})
	loop.Run()
	return d.result(StackSendRecv), nil
}

// drainCQStrict keeps a completion queue empty, charging the full
// completion-handling cost for every entry (no event coalescing): the
// behaviour of an application that signals and processes every send.
func drainCQStrict(cq *rdma.CQ, thread *sim.Resource, params model.Params) {
	var pump func()
	pump = func() {
		drained := 0
		for {
			cqes := cq.Poll(16)
			if cqes == nil {
				break
			}
			drained += len(cqes)
		}
		if drained > 1 {
			// The notification already charged one CompletionHandle;
			// charge the rest so the cost stays strictly per message.
			thread.Delay(params.RDMA.CompletionHandle * sim.Time(drained-1))
		}
		cq.RequestNotify()
	}
	cq.OnEvent(pump)
	cq.RequestNotify()
}

const qpSlots = 64

// qpPair bundles the verbs resources of a two-node echo.
type qpPair struct {
	client, server             *rdma.QP
	clientSendCQ, clientRecvCQ *rdma.CQ
	serverSendCQ, serverRecvCQ *rdma.CQ
	clientSendMR, clientRecvMR *rdma.MR
	serverSendMR, serverRecvMR *rdma.MR
	clientRemoteMR             *rdma.MR // server-exposed region for one-sided ops
	clientRemoteKey            uint32
	clientLocalMR              *rdma.MR
	clientDevice, serverDevice *rdma.Device
	clientPD, serverPD         *rdma.PD
	payload, slots             int
}

func connectQPs(loop *sim.Loop, cd, sd *rdma.Device, cfg EchoConfig) (*qpPair, error) {
	p := &qpPair{payload: cfg.Payload, slots: qpSlots, clientDevice: cd, serverDevice: sd}
	p.clientPD, p.serverPD = cd.AllocPD(), sd.AllocPD()
	p.clientSendCQ, p.clientRecvCQ = cd.CreateCQ(2*qpSlots+8), cd.CreateCQ(2*qpSlots+8)
	p.serverSendCQ, p.serverRecvCQ = sd.CreateCQ(2*qpSlots+8), sd.CreateCQ(2*qpSlots+8)

	size := qpSlots * cfg.Payload
	if size == 0 {
		size = qpSlots
	}
	p.clientSendMR = p.clientPD.RegisterMR(size, rdma.AccessLocalWrite, nil)
	p.clientRecvMR = p.clientPD.RegisterMR(size, rdma.AccessLocalWrite, nil)
	p.serverSendMR = p.serverPD.RegisterMR(size, rdma.AccessLocalWrite, nil)
	p.serverRecvMR = p.serverPD.RegisterMR(size, rdma.AccessLocalWrite, nil)
	// One-sided target region on the server.
	p.clientRemoteMR = p.serverPD.RegisterMR(size, rdma.AccessLocalWrite|rdma.AccessRemoteWrite|rdma.AccessRemoteRead, nil)
	p.clientRemoteKey = p.clientRemoteMR.RKey()
	p.clientLocalMR = p.clientSendMR

	var server *rdma.QP
	_, err := sd.ListenCM(9, p.serverPD, func() rdma.QPConfig {
		return rdma.QPConfig{SendCQ: p.serverSendCQ, RecvCQ: p.serverRecvCQ, MaxSendWR: qpSlots, MaxRecvWR: qpSlots}
	}, func(qp *rdma.QP) { server = qp })
	if err != nil {
		return nil, err
	}
	var client *rdma.QP
	var dialErr error
	loop.At(0, func() {
		cd.ConnectCM(sd.Node(), 9, p.clientPD,
			rdma.QPConfig{SendCQ: p.clientSendCQ, RecvCQ: p.clientRecvCQ, MaxSendWR: qpSlots, MaxRecvWR: qpSlots},
			func(qp *rdma.QP, err error) { client, dialErr = qp, err })
	})
	loop.Run()
	if dialErr != nil || client == nil || server == nil {
		return nil, fmt.Errorf("bench: QP setup failed: %v", dialErr)
	}
	p.client, p.server = client, server
	// Pre-post the full receive rings on both sides.
	for i := 0; i < qpSlots; i++ {
		off := i * cfg.Payload
		if err := server.PostRecv(rdma.RecvWR{ID: uint64(i), MR: p.serverRecvMR, Offset: off, Length: cfg.Payload}); err != nil {
			return nil, err
		}
		if err := client.PostRecv(rdma.RecvWR{ID: uint64(i), MR: p.clientRecvMR, Offset: off, Length: cfg.Payload}); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ---------------------------------------------------------------------------
// RDMA Read/Write series: one-sided writes, no server involvement — the
// paper measures the client writing without waiting for an application
// response.
// ---------------------------------------------------------------------------

func echoOneSided(cfg EchoConfig, params model.Params) (EchoResult, error) {
	loop, cn, sn := twoNodes(cfg.Seed, params)
	cd, sd := rdma.OpenDevice(cn), rdma.OpenDevice(sn)
	ct := sim.NewResource(loop, "client/app", 1)

	qprs, err := connectQPs(loop, cd, sd, cfg)
	if err != nil {
		return EchoResult{}, err
	}
	cqp := qprs.client
	cqp.SetWorkThread(ct)
	qprs.clientSendCQ.SetWorkThread(ct)

	d := newEchoDriver(loop, cfg)

	// Completion = hardware ack of the write; the server CPU never runs.
	qprs.clientSendCQ.OnEvent(func() {
		for {
			cqes := qprs.clientSendCQ.Poll(16)
			if cqes == nil {
				break
			}
			for range cqes {
				d.completed()
			}
		}
		qprs.clientSendCQ.RequestNotify()
	})
	qprs.clientSendCQ.RequestNotify()

	slotN := 0
	loop.Post(func() {
		d.start(func() {
			slot := slotN % qpSlots
			slotN++
			off := slot * cfg.Payload
			wr := &rdma.SendWR{ID: uint64(slot), Op: rdma.OpWrite,
				MR: qprs.clientLocalMR, Offset: off, Length: cfg.Payload,
				RemoteKey: qprs.clientRemoteKey, RemoteOffset: off, Signaled: true}
			_ = cqp.PostSend(wr)
		})
	})
	loop.Run()
	return d.result(StackOneSided), nil
}

// ---------------------------------------------------------------------------
// RDMA Channel series: the full RUBIN channel with all Section IV
// optimizations (pre-registered pools, batched doorbells, selective
// signaling, zero-copy send, inline small messages).
// ---------------------------------------------------------------------------

func echoChannel(cfg EchoConfig, params model.Params) (EchoResult, error) {
	return echoChannelCfg(cfg, params, nil)
}

// echoChannelCfg allows ablations to mutate the channel configuration.
func echoChannelCfg(cfg EchoConfig, params model.Params, mutate func(*rubin.Config)) (EchoResult, error) {
	loop, cn, sn := twoNodes(cfg.Seed, params)
	cd, sd := rdma.OpenDevice(cn), rdma.OpenDevice(sn)
	selC, selS := rubin.NewSelector(cd), rubin.NewSelector(sd)

	ccfg := rubin.DefaultConfig(params)
	ccfg.BufferSize = cfg.Payload
	if ccfg.BufferSize < 256 {
		ccfg.BufferSize = 256
	}
	ccfg.SendWRs, ccfg.RecvWRs = qpSlots, qpSlots
	if mutate != nil {
		mutate(&ccfg)
	}

	srv, err := rubin.Listen(sd, 9, ccfg)
	if err != nil {
		return EchoResult{}, err
	}
	var serverCh *rubin.Channel
	selS.Register(srv, rubin.OpConnect, nil)
	selS.Select(func(keys []*rubin.SelectionKey) {
		for _, k := range keys {
			switch ch := k.Channel().(type) {
			case *rubin.ServerChannel:
				if k.Ready()&rubin.OpConnect != 0 {
					for {
						c := ch.Accept()
						if c == nil {
							break
						}
						serverCh = c
						selS.Register(c, rubin.OpReceive, nil)
					}
				}
			case *rubin.Channel:
				if k.Ready()&rubin.OpReceive != 0 {
					for {
						msg, ok := ch.Receive()
						if !ok {
							break
						}
						_ = ch.Send(msg)
					}
				}
			}
		}
	})

	var clientCh *rubin.Channel
	var dialErr error
	loop.At(0, func() {
		_, dialErr = rubin.Connect(cd, sn, 9, ccfg, func(ch *rubin.Channel, err error) {
			if err != nil {
				dialErr = err
				return
			}
			clientCh = ch
		})
	})
	loop.Run()
	if dialErr != nil || clientCh == nil || serverCh == nil {
		return EchoResult{}, fmt.Errorf("bench: channel setup failed: %v", dialErr)
	}

	d := newEchoDriver(loop, cfg)
	payload := make([]byte, cfg.Payload)
	selC.Register(clientCh, rubin.OpReceive, nil)
	selC.Select(func(keys []*rubin.SelectionKey) {
		for _, k := range keys {
			ch, ok := k.Channel().(*rubin.Channel)
			if !ok || k.Ready()&rubin.OpReceive == 0 {
				continue
			}
			for {
				_, okMsg := ch.Receive()
				if !okMsg {
					break
				}
				d.completed()
			}
		}
	})

	loop.Post(func() {
		d.start(func() { _ = clientCh.Send(payload) })
	})
	loop.Run()
	return d.result(StackChannel), nil
}
