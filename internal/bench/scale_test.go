package bench

import (
	"testing"

	"rubin/internal/model"
	"rubin/internal/transport"
)

// quickBFTN returns a small closed-loop config for an N-replica cluster.
func quickBFTN(kind transport.Kind, n int) BFTConfig {
	cfg := DefaultBFTConfig(kind, 1<<10)
	cfg.N, cfg.F = n, (n-1)/3
	cfg.Requests, cfg.Warmup = 40, 5
	cfg.Clients = 2
	cfg.Window = 8
	return cfg
}

// TestBFTScalesWithN asserts the N axis of E8 works at all swept sizes and
// that agreement latency grows with the cluster size (quadratic message
// complexity): N=10 must be slower than N=4 on both transports.
func TestBFTScalesWithN(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		lats := map[int]float64{}
		for _, n := range []int{4, 7, 10} {
			res, err := RunBFT(quickBFTN(kind, n), model.Default())
			if err != nil {
				t.Fatalf("%s N=%d: %v", kind, n, err)
			}
			if res.MeanLat <= 0 || res.Throughput <= 0 {
				t.Fatalf("%s N=%d: degenerate result %+v", kind, n, res)
			}
			if res.SendFaults != 0 {
				t.Errorf("%s N=%d: %d send faults on a healthy network", kind, n, res.SendFaults)
			}
			lats[n] = res.MeanLat.Micros()
		}
		if lats[10] <= lats[4] {
			t.Errorf("%s: N=10 latency (%.1fus) should exceed N=4 (%.1fus)", kind, lats[10], lats[4])
		}
	}
}

// TestBFTMultiClientAddsLoad asserts the closed-loop client count is a real
// load axis: two clients commit more requests per second than one.
func TestBFTMultiClientAddsLoad(t *testing.T) {
	one := DefaultBFTConfig(transport.KindRDMA, 1<<10)
	one.Requests, one.Warmup, one.Window = 60, 10, 8
	two := one
	two.Clients = 2
	r1, err := RunBFT(one, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBFT(two, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throughput <= r1.Throughput {
		t.Errorf("2 clients (%.0f req/s) should out-commit 1 client (%.0f req/s)",
			r2.Throughput, r1.Throughput)
	}
}

func quickCOP(kind transport.Kind, k int) COPConfig {
	cfg := DefaultCOPConfig(kind, 1<<10)
	cfg.Instances = k
	cfg.Requests, cfg.Warmup = 40, 5
	cfg.Clients = 2
	return cfg
}

// TestCOPInstanceSweep asserts the K axis of E8 is measurable at every
// swept instance count and reproduces the merge-barrier effect documented
// in docs/EXPERIMENTS.md: under closed-loop load, per-request latency grows
// with K (the deterministic round-robin merge stalls on holes that
// heartbeat fills resolve), so the parallelization is not free — it pays
// off only when a single leader pipeline saturates.
func TestCOPInstanceSweep(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		lats := map[int]float64{}
		for _, k := range []int{1, 2, 4} {
			r, err := RunCOP(quickCOP(kind, k), model.Default())
			if err != nil {
				t.Fatalf("%s K=%d: %v", kind, k, err)
			}
			if r.MeanLat <= 0 || r.Throughput <= 0 || r.MergedSlots == 0 {
				t.Fatalf("%s K=%d: degenerate result %+v", kind, k, r)
			}
			lats[k] = r.MeanLat.Micros()
		}
		if lats[4] <= lats[1] {
			t.Errorf("%s: K=4 latency (%.1fus) should exceed K=1 (%.1fus) under the merge barrier",
				kind, lats[4], lats[1])
		}
	}
}

// TestCOPFasterOverRUBIN extends the paper's claim to the parallelized
// system: COP ordering commits faster over RUBIN than over the NIO stack.
func TestCOPFasterOverRUBIN(t *testing.T) {
	r, err := RunCOP(quickCOP(transport.KindRDMA, 4), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	n, err := RunCOP(quickCOP(transport.KindTCP, 4), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanLat >= n.MeanLat {
		t.Errorf("COP latency over RUBIN (%v) should beat NIO (%v)", r.MeanLat, n.MeanLat)
	}
}
