package bench

import (
	"fmt"
	"math/rand"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/shard"
	"rubin/internal/sim"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// ShardTrafficConfig parameterizes one point of experiment E10: a mixed
// workload (single-key operations, scans and multi-key transactions)
// driven through routers against a sharded deployment of S independent
// consensus groups. CrossPct controls what share of the transactions is
// forced to span two shards — those commit through 2PC over consensus —
// while the rest stay on one shard's one-phase fast path. Every
// operation is recorded and the history must pass the atomicity plus
// per-key linearizability check, so each E10 point doubles as a
// correctness proof of the sharded commit path.
type ShardTrafficConfig struct {
	Kind      transport.Kind
	Shards    int
	N, F      int
	Users     int // logical users
	Conns     int // routers the users share
	Keys      int // keyspace size
	ValueSize int // written-value padding, bytes
	Ops       int // measured operations
	Warmup    int // unmeasured leading operations
	Mix       workload.Mix
	CrossPct  int // share of transactions forced cross-shard, percent
	Zipf100   int // Zipf theta ×100 over the keyspace; 0 = uniform
	Arrival   workload.Arrival
	Seed      int64
	Trace     *obs.Tracer
}

// ShardTrafficResult is one measurement point of E10.
type ShardTrafficResult struct {
	P50, P90, P99, P999 sim.Time
	Mean                sim.Time
	Goodput             float64 // measured completions per second
	CommittedGoodput    float64 // goodput excluding aborted transactions
	Completed           int
	Aborted             int // transactions lost to no-wait conflicts
	HistoryOps          int
	Breakdown           obs.Summary
	PeakQueueBytes      int
	CrossShardTxns      uint64 // transactions committed through 2PC
	LockRetries         uint64 // LOCKED resubmissions by the routers
}

// shardPools groups the workload's key names by owning shard. Every
// shard must own at least two keys (a transaction needs two distinct
// same-shard keys); hash partitioning makes that overwhelmingly likely
// for keys >> shards, and the caller errors out otherwise.
func shardPools(keys, shards int) ([][]string, error) {
	pools := make([][]string, shards)
	for i := 0; i < keys; i++ {
		k := workload.KeyName(i)
		s := kvstore.PartitionKey(k, shards)
		pools[s] = append(pools[s], k)
	}
	for s, pool := range pools {
		if len(pool) < 2 {
			return nil, fmt.Errorf("bench: shard %d owns %d of %d keys; raise keys or lower shards",
				s, len(pool), keys)
		}
	}
	return pools, nil
}

// crossPick builds the transaction key picker: with probability
// CrossPct% (and more than one shard) the two keys are drawn from two
// different shards' pools, otherwise both from one shard's. The picker
// draws only from the driver's private random source, preserving run
// determinism.
func crossPick(pools [][]string, crossPct int) func(r *rand.Rand) (string, string) {
	return func(r *rand.Rand) (string, string) {
		if len(pools) > 1 && r.Intn(100) < crossPct {
			s1 := r.Intn(len(pools))
			s2 := r.Intn(len(pools) - 1)
			if s2 >= s1 {
				s2++
			}
			return pools[s1][r.Intn(len(pools[s1]))], pools[s2][r.Intn(len(pools[s2]))]
		}
		s := r.Intn(len(pools))
		pool := pools[s]
		a := r.Intn(len(pool))
		b := r.Intn(len(pool) - 1)
		if b >= a {
			b++
		}
		return pool[a], pool[b]
	}
}

// RunShardTraffic drives one workload configuration against a sharded
// deployment to completion, verifies the run was healthy (no send
// faults, no dangling invocations, no 2PC protocol errors) and that the
// history passes the atomicity plus per-key linearizability check, and
// returns the latency and committed-throughput measurements.
func RunShardTraffic(cfg ShardTrafficConfig, params model.Params) (ShardTrafficResult, error) {
	if cfg.CrossPct < 0 || cfg.CrossPct > 100 {
		return ShardTrafficResult{}, fmt.Errorf("bench: cross-shard share %d%% out of range", cfg.CrossPct)
	}
	pools, err := shardPools(cfg.Keys, cfg.Shards)
	if err != nil {
		return ShardTrafficResult{}, err
	}
	var chooser workload.KeyChooser = workload.NewUniform(cfg.Keys)
	if cfg.Zipf100 > 0 {
		chooser = workload.NewZipf(cfg.Keys, float64(cfg.Zipf100)/100)
	}
	wcfg := workload.Config{
		Users: cfg.Users, Conns: cfg.Conns,
		Ops: cfg.Ops, Warmup: cfg.Warmup,
		Keys: chooser, Mix: cfg.Mix, Arrival: cfg.Arrival,
		ValueSize: cfg.ValueSize, Seed: cfg.Seed,
		TxnPick: crossPick(pools, cfg.CrossPct),
	}

	tr := benchTracer(cfg.Trace, fmt.Sprintf("E10 S=%d cross=%d%% %s N=%d users=%d conns=%d seed=%d",
		cfg.Shards, cfg.CrossPct, cfg.Kind, cfg.N, cfg.Users, cfg.Conns, cfg.Seed))

	scfg := shard.DefaultConfig()
	scfg.Shards = cfg.Shards
	scfg.PBFT.N, scfg.PBFT.F = cfg.N, cfg.F
	dep, err := shard.NewKV(cfg.Kind, scfg, params, cfg.Seed)
	if err != nil {
		return ShardTrafficResult{}, err
	}
	if err := dep.Start(); err != nil {
		return ShardTrafficResult{}, err
	}
	dep.SetTracer(tr)
	routers := make([]*shard.Router, cfg.Conns)
	for i := range routers {
		if routers[i], err = dep.AddRouter(); err != nil {
			return ShardTrafficResult{}, err
		}
	}
	var meshes []*msgnet.Mesh
	for _, cl := range dep.Clusters {
		meshes = append(meshes, cl.Meshes...)
	}
	startSamplers(tr, dep.Loop, meshes, nil)

	d, err := workload.New(dep.Loop, wcfg, func(conn int, op []byte, done func([]byte)) string {
		return routers[conn].InvokeOp(op, done)
	})
	if err != nil {
		return ShardTrafficResult{}, err
	}
	d.SetTracer(tr)
	if err := d.Run(); err != nil {
		return ShardTrafficResult{}, err
	}
	if n := dep.SendFaults(); n != 0 {
		return ShardTrafficResult{}, fmt.Errorf("bench: %d send faults on a healthy network", n)
	}
	for i, r := range routers {
		if err := r.Errs(); err != nil {
			return ShardTrafficResult{}, fmt.Errorf("bench: router %d: %w", i, err)
		}
		if n := r.Outstanding(); n != 0 {
			return ShardTrafficResult{}, fmt.Errorf("bench: router %d left %d operations outstanding", i, n)
		}
	}
	if err := d.History().Check(); err != nil {
		return ShardTrafficResult{}, err
	}
	rec := d.Latencies()
	r := ShardTrafficResult{
		P50: rec.Percentile(50), P90: rec.Percentile(90),
		P99: rec.Percentile(99), P999: rec.Percentile(99.9),
		Mean:             rec.Mean(),
		Goodput:          d.Goodput(),
		CommittedGoodput: d.CommittedGoodput(),
		Completed:        d.Completed(),
		Aborted:          d.Aborted(),
		HistoryOps:       d.History().Len(),
		Breakdown:        tr.Summary(),
		PeakQueueBytes:   dep.PeakQueueBytes(),
	}
	for _, rt := range routers {
		r.CrossShardTxns += rt.CrossShardTxns()
		r.LockRetries += rt.Retries()
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E10 (shard scale-out under an atomicity oracle).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E10",
		Title:  "shard scale-out: committed throughput vs shard count and cross-shard transaction share",
		Figure: "beyond the paper: keyspace partitioning over independent consensus groups with 2PC-over-consensus",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE10(rc)
			return cfg, err
		},
		Run: runE10,
	})
}

// e10Knobs are the resolved parameters of one E10 run.
type e10Knobs struct {
	shards     []int // shard counts of the scaling sweep
	crossPcts  []int // cross-shard transaction shares, percent
	n          int
	users      int
	conns      int
	keys       int
	ops        int
	warmup     int
	valueBytes int
	window     int // closed-loop outstanding per user
	readPct    int
	scanPct    int
	deletePct  int
	txnPct     int
}

func resolveE10(rc RunContext) (e10Knobs, map[string]string, error) {
	// The full-mode load (users, conns) is sized to saturate a single
	// group with headroom for eight: the scaling curve must measure the
	// shards, not the client pool. 16 routers keep the front-end off the
	// critical path up to S=8.
	k := e10Knobs{
		shards:    []int{1, 2, 4, 8},
		crossPcts: []int{0, 1, 10},
		n:         4, users: 512, conns: 16, keys: 256,
		ops: 1500, warmup: 150, valueBytes: 128, window: 1,
		readPct: 40, scanPct: 5, deletePct: 5, txnPct: 20,
	}
	if rc.Quick {
		k.shards, k.crossPcts = []int{1, 2}, []int{0, 10}
		k.users, k.conns, k.keys = 24, 2, 64
		k.ops, k.warmup = 60, 10
	}
	var err error
	if k.shards, err = rc.intsKnob("shards", k.shards); err != nil {
		return k, nil, err
	}
	if k.crossPcts, err = rc.nonNegIntsKnob("cross_pcts", k.crossPcts); err != nil {
		return k, nil, err
	}
	if k.n, err = rc.intKnob("n", k.n); err != nil {
		return k, nil, err
	}
	if k.users, err = rc.intKnob("users", k.users); err != nil {
		return k, nil, err
	}
	if k.conns, err = rc.intKnob("conns", k.conns); err != nil {
		return k, nil, err
	}
	if k.keys, err = rc.intKnob("keys", k.keys); err != nil {
		return k, nil, err
	}
	if k.ops, err = rc.intKnob("ops", k.ops); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.valueBytes, err = rc.intKnob("value_bytes", k.valueBytes); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	if k.readPct, err = rc.intKnob("read_pct", k.readPct); err != nil {
		return k, nil, err
	}
	if k.scanPct, err = rc.intKnob("scan_pct", k.scanPct); err != nil {
		return k, nil, err
	}
	if k.deletePct, err = rc.intKnob("delete_pct", k.deletePct); err != nil {
		return k, nil, err
	}
	if k.txnPct, err = rc.intKnob("txn_pct", k.txnPct); err != nil {
		return k, nil, err
	}
	if k.n < 4 {
		return k, nil, fmt.Errorf("bench: E10 needs n >= 4 (3f+1), got %d", k.n)
	}
	if k.users < k.conns || k.conns < 1 {
		return k, nil, fmt.Errorf("bench: E10 needs 1 <= conns <= users, got %d/%d", k.conns, k.users)
	}
	if k.window < 1 {
		return k, nil, fmt.Errorf("bench: E10 needs window >= 1, got %d", k.window)
	}
	if k.readPct < 0 || k.scanPct < 0 || k.deletePct < 0 || k.txnPct < 1 {
		return k, nil, fmt.Errorf("bench: E10 mix shares must be non-negative with txn_pct >= 1")
	}
	if k.readPct+k.scanPct+k.deletePct+k.txnPct > 100 {
		return k, nil, fmt.Errorf("bench: E10 mix read=%d + scan=%d + delete=%d + txn=%d exceeds 100",
			k.readPct, k.scanPct, k.deletePct, k.txnPct)
	}
	maxShards := 0
	for _, s := range k.shards {
		if s > maxShards {
			maxShards = s
		}
	}
	for _, c := range k.crossPcts {
		if c > 100 {
			return k, nil, fmt.Errorf("bench: E10 cross-shard share %d%% out of range", c)
		}
	}
	// Every shard of the largest deployment must own at least two keys
	// (see shardPools); fail at knob time, not mid-sweep.
	if _, err := shardPools(k.keys, maxShards); err != nil {
		return k, nil, err
	}
	cfg := map[string]string{
		"shards":      formatInts(k.shards),
		"cross_pcts":  formatInts(k.crossPcts),
		"n":           strconv.Itoa(k.n),
		"users":       strconv.Itoa(k.users),
		"conns":       strconv.Itoa(k.conns),
		"keys":        strconv.Itoa(k.keys),
		"ops":         strconv.Itoa(k.ops),
		"warmup":      strconv.Itoa(k.warmup),
		"value_bytes": strconv.Itoa(k.valueBytes),
		"window":      strconv.Itoa(k.window),
		"read_pct":    strconv.Itoa(k.readPct),
		"scan_pct":    strconv.Itoa(k.scanPct),
		"delete_pct":  strconv.Itoa(k.deletePct),
		"txn_pct":     strconv.Itoa(k.txnPct),
	}
	return k, cfg, nil
}

// e10Series bundles the series one E10 sweep combo reports: the
// percentile/goodput bundle, committed goodput (the headline scaling
// curve), the abort/2PC/retry counters, the mean latency with its phase
// breakdown, the 2PC phase waits and the send-queue high watermark.
type e10Series struct {
	ps       metrics.PercentileSeries
	mean     *metrics.ResultSeries
	bd       breakdownSeries
	commit   *metrics.ResultSeries
	aborted  *metrics.ResultSeries
	cross    *metrics.ResultSeries
	retries  *metrics.ResultSeries
	prepWait *metrics.ResultSeries
	commWait *metrics.ResultSeries
	peakQ    *metrics.ResultSeries
}

func addE10Series(res *metrics.Result, name, transport, xLabel string) e10Series {
	return e10Series{
		ps:       res.AddPercentileSeries(name, transport, xLabel),
		mean:     res.AddSeries(name, metrics.MetricLatencyMean, "us", transport, xLabel),
		bd:       addBreakdownSeries(res, name, transport, xLabel),
		commit:   res.AddSeries(name, metrics.MetricCommittedGoodput, "op/s", transport, xLabel),
		aborted:  res.AddSeries(name, metrics.MetricAbortedTxns, "count", transport, xLabel),
		cross:    res.AddSeries(name, metrics.MetricCrossShardTxns, "count", transport, xLabel),
		retries:  res.AddSeries(name, metrics.MetricLockRetries, "count", transport, xLabel),
		prepWait: res.AddSeries(name, metrics.MetricPrepareWait, "us", transport, xLabel),
		commWait: res.AddSeries(name, metrics.MetricCommitWait, "us", transport, xLabel),
		peakQ:    res.AddSeries(name, metrics.MetricPeakQueueBytes, "bytes", transport, xLabel),
	}
}

func (s e10Series) observe(x float64, r ShardTrafficResult) {
	s.ps.Observe(x, r.P50, r.P90, r.P99, r.P999, r.Goodput)
	s.mean.Add(x, r.Mean.Micros())
	s.bd.observe(x, r.Breakdown)
	s.commit.Add(x, r.CommittedGoodput)
	s.aborted.Add(x, float64(r.Aborted))
	s.cross.Add(x, float64(r.CrossShardTxns))
	s.retries.Add(x, float64(r.LockRetries))
	s.prepWait.Add(x, r.Breakdown.PrepareWait.Micros())
	s.commWait.Add(x, r.Breakdown.CommitWait.Micros())
	s.peakQ.Add(x, float64(r.PeakQueueBytes))
}

func runE10(rc RunContext, res *metrics.Result) error {
	k, _, err := resolveE10(rc)
	if err != nil {
		return err
	}
	mix := workload.Mix{
		ReadPct: k.readPct, ScanPct: k.scanPct,
		DeletePct: k.deletePct, TxnPct: k.txnPct,
	}
	mix.WritePct = 100 - k.readPct - k.scanPct - k.deletePct - k.txnPct
	for _, kind := range e8Transports {
		for _, cross := range k.crossPcts {
			name := fmt.Sprintf("scale cross=%d%% %s", cross, e8Label(kind))
			ss := addE10Series(res, name, string(kind), "shards")
			for _, shards := range k.shards {
				cfg := ShardTrafficConfig{
					Kind: kind, Shards: shards,
					N: k.n, F: (k.n - 1) / 3,
					Users: k.users, Conns: k.conns, Keys: k.keys,
					ValueSize: k.valueBytes, Ops: k.ops, Warmup: k.warmup,
					Mix: mix, CrossPct: cross,
					Arrival: workload.Closed(k.window, 0),
					Seed:    rc.Seed, Trace: rc.Trace,
				}
				r, err := RunShardTraffic(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("shards=%d cross=%d %s: %w", shards, cross, kind, err)
				}
				ss.observe(float64(shards), r)
			}
		}
	}
	return nil
}
