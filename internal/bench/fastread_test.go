package bench

import (
	"bytes"
	"testing"

	"rubin/internal/metrics"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// tinyE11Context shrinks E11 below quick mode while keeping both
// sweeps, both fast-path settings and both transports on their real
// code paths.
func tinyE11Context() RunContext {
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Seed = 13
	rc.Knobs = map[string]string{
		"read_pcts": "80", "batches": "4",
		"users": "8", "conns": "2", "keys": "16", "ops": "40", "warmup": "5",
	}
	return rc
}

// TestE11SameSeedRunsAreByteIdentical pins E11's determinism and shape:
// two same-seed runs marshal byte-identically, every sweep × fp × transport
// combo carries a positive goodput point, and the fp=on combos export
// positive fast-read counters.
func TestE11SameSeedRunsAreByteIdentical(t *testing.T) {
	rc := tinyE11Context()
	first, err := Run("E11", rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run("E11", rc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := first.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two seed-13 E11 runs marshal differently")
	}
	for _, prefix := range []string{"mix", "batch"} {
		for _, fp := range []string{"fp=on", "fp=off"} {
			for _, tr := range []string{"RUBIN", "NIO"} {
				name := prefix + " " + fp + " " + tr
				s := first.GetSeries(name, metrics.MetricGoodput)
				if s == nil {
					t.Fatalf("missing series (%s, goodput)", name)
				}
				if len(s.Points) == 0 || s.Points[0].Y <= 0 {
					t.Fatalf("series (%s, goodput) carries no positive point", name)
				}
				fr := first.GetSeries(name, metrics.MetricFastReads)
				if fp == "fp=on" {
					if fr == nil || len(fr.Points) == 0 || fr.Points[0].Y <= 0 {
						t.Fatalf("series (%s) exports no positive fast_reads", name)
					}
				} else if fr != nil {
					t.Fatalf("fp=off series %q exports fast_reads", name)
				}
			}
		}
	}
}

// TestRunTrafficCOPFastPath proves the fast path composes with COP:
// single-key reads ride the owning instance's multicast path, the
// history records them, and the run still passes the linearizability
// oracle inside RunTraffic.
func TestRunTrafficCOPFastPath(t *testing.T) {
	cfg := TrafficConfig{
		Kind: transport.KindRDMA, Instances: 2, N: 4, F: 1,
		Users: 8, Conns: 2, Keys: 16, ValueSize: 16,
		Ops: 60, Warmup: 5,
		Mix:          workload.Mix{ReadPct: 70, WritePct: 25, ScanPct: 5},
		Zipf100:      99,
		Arrival:      workload.Closed(1, 0),
		Seed:         7,
		ReadFastPath: true,
	}
	r, err := RunTraffic(cfg, DefaultRunContext().Model)
	if err != nil {
		t.Fatal(err)
	}
	if r.FastReads == 0 {
		t.Fatalf("COP run served no fast reads (fallbacks=%d)", r.FastFallbacks)
	}
	if r.FastOps == 0 {
		t.Fatal("history recorded no fast-path operations")
	}
	if r.FastOps > int(r.FastReads) {
		t.Fatalf("history tags %d fast ops but clients served only %d", r.FastOps, r.FastReads)
	}
}

// TestRunTrafficFastPathOffIsInert pins the opt-in contract: without
// the flag, no fast reads are served and no history op is tagged, even
// for a read-heavy mix.
func TestRunTrafficFastPathOffIsInert(t *testing.T) {
	cfg := TrafficConfig{
		Kind: transport.KindTCP, N: 4, F: 1,
		Users: 6, Conns: 2, Keys: 16, ValueSize: 16,
		Ops: 40, Warmup: 5,
		Mix:     workload.Mix{ReadPct: 80, WritePct: 20},
		Arrival: workload.Closed(1, 0),
		Seed:    9,
	}
	r, err := RunTraffic(cfg, DefaultRunContext().Model)
	if err != nil {
		t.Fatal(err)
	}
	if r.FastReads != 0 || r.FastFallbacks != 0 || r.FastOps != 0 {
		t.Fatalf("fast path leaked into a disabled run: reads=%d fallbacks=%d ops=%d",
			r.FastReads, r.FastFallbacks, r.FastOps)
	}
}

// TestE11RejectsMalformedKnobs pins the knob validation.
func TestE11RejectsMalformedKnobs(t *testing.T) {
	for name, knobs := range map[string]map[string]string{
		"read share over 100": {"read_pcts": "101"},
		"zero batch":          {"batches": "0"},
		"n below quorum":      {"n": "3"},
		"conns > users":       {"users": "2", "conns": "4"},
		"zero timeout":        {"read_timeout_us": "0"},
		"unknown knob":        {"warp": "9"},
	} {
		rc := tinyE11Context()
		for k, v := range knobs {
			rc.Knobs[k] = v
		}
		if _, err := Run("E11", rc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
