package bench

import (
	"bytes"
	"testing"

	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/obs"
	"rubin/internal/sim"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// assertPartition checks the breakdown invariant every measurement run
// must satisfy: the phases partition the tracer's view of the latency
// (they sum to Breakdown.Total exactly, up to integer-mean rounding of
// the five recorders) and Breakdown.Total agrees with the independently
// recorded mean latency within 1%.
func assertPartition(t *testing.T, label string, s obs.Summary, mean sim.Time) {
	t.Helper()
	if s.Count == 0 {
		t.Fatalf("%s: breakdown saw no finished requests", label)
	}
	sum := s.Queue + s.Order + s.Net + s.Merge + s.Exec
	if d := sum - s.Total; d > 5 || d < -5 {
		t.Errorf("%s: phases sum to %v but total is %v", label, sum, s.Total)
	}
	diff := float64(s.Total - mean)
	if diff < 0 {
		diff = -diff
	}
	if mean <= 0 || diff > 0.01*float64(mean) {
		t.Errorf("%s: breakdown total %v vs measured mean %v (>1%% apart)", label, s.Total, mean)
	}
}

// TestBreakdownPartitionsMeanLatency pins the tentpole invariant on all
// three measurement drivers: PBFT closed loop, COP closed loop, and the
// workload-driven traffic study.
func TestBreakdownPartitionsMeanLatency(t *testing.T) {
	bft, err := RunBFT(quickBFTN(transport.KindRDMA, 4), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, "RunBFT", bft.Breakdown, bft.MeanLat)

	cop, err := RunCOP(quickCOP(transport.KindTCP, 2), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, "RunCOP", cop.Breakdown, cop.MeanLat)

	traffic, err := RunTraffic(TrafficConfig{
		Kind: transport.KindRDMA, Instances: 2, N: 4, F: 1,
		Users: 8, Conns: 2, Keys: 16, ValueSize: 16,
		Ops: 40, Warmup: 5,
		Mix:     workload.Mix{ReadPct: 50, WritePct: 50},
		Zipf100: 99,
		Arrival: workload.Closed(1, 0),
		Seed:    7,
	}, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, "RunTraffic", traffic.Breakdown, traffic.Mean)
	if traffic.PeakQueueBytes <= 0 {
		t.Errorf("traffic run saw no msgnet queueing (peak %d bytes)", traffic.PeakQueueBytes)
	}
}

// assertResultBreakdowns walks a stored Result and checks, for every
// series that carries both a latency mean and a breakdown bundle, that
// the breakdown points sum to the mean within 1% — the acceptance
// criterion of the breakdown_* series, enforced on the real registry
// output rather than the in-memory structs.
func assertResultBreakdowns(t *testing.T, res *metrics.Result) int {
	t.Helper()
	checked := 0
	for _, s := range res.Series {
		if s.Metric != metrics.MetricLatencyMean {
			continue
		}
		q := res.GetSeries(s.Name, metrics.MetricBreakdownQueue)
		if q == nil {
			continue
		}
		parts := []*metrics.ResultSeries{
			q,
			res.GetSeries(s.Name, metrics.MetricBreakdownOrder),
			res.GetSeries(s.Name, metrics.MetricBreakdownNet),
			res.GetSeries(s.Name, metrics.MetricBreakdownMerge),
			res.GetSeries(s.Name, metrics.MetricBreakdownExec),
		}
		for i, pt := range s.Points {
			sum := 0.0
			for _, p := range parts {
				if p == nil || len(p.Points) != len(s.Points) {
					t.Fatalf("series %q: breakdown bundle incomplete or misaligned", s.Name)
				}
				sum += p.Points[i].Y
			}
			diff := sum - pt.Y
			if diff < 0 {
				diff = -diff
			}
			if pt.Y <= 0 || diff > 0.01*pt.Y {
				t.Errorf("series %q x=%v: breakdown sums to %.3fus, mean is %.3fus",
					s.Name, pt.X, sum, pt.Y)
			}
			checked++
		}
	}
	return checked
}

// TestE8AndE9QuickCarryBreakdownSeries runs both registry experiments at
// reduced size and validates the stored breakdown series against their
// latency means point by point.
func TestE8AndE9QuickCarryBreakdownSeries(t *testing.T) {
	rc8 := DefaultRunContext()
	rc8.Quick = true
	rc8.Knobs = map[string]string{
		"ns": "4", "ks": "1,2", "payloads_kb": "1", "cop_payloads_kb": "1",
		"requests": "20", "warmup": "4", "clients": "2",
	}
	res8, err := Run("E8", rc8)
	if err != nil {
		t.Fatal(err)
	}
	if n := assertResultBreakdowns(t, res8); n == 0 {
		t.Error("E8 carried no breakdown points")
	}
	// The COP axis additionally reports the off-path merge barrier and
	// executor health counters.
	for _, metric := range []string{
		metrics.MetricMergeWait, metrics.MetricHeartbeatSlots, metrics.MetricLeaderCPU,
	} {
		if res8.GetSeries("COP RUBIN 1KB", metric) == nil {
			t.Errorf("E8 misses series (COP RUBIN 1KB, %s)", metric)
		}
	}

	rc9 := tinyE9Context()
	res9, err := Run("E9", rc9)
	if err != nil {
		t.Fatal(err)
	}
	if n := assertResultBreakdowns(t, res9); n == 0 {
		t.Error("E9 carried no breakdown points")
	}
	// Satellite series: queue watermarks on every system, executor health
	// on COP systems only.
	if s := res9.GetSeries("rate PBFT RUBIN", metrics.MetricPeakQueueBytes); s == nil || s.Points[0].Y <= 0 {
		t.Error("E9 misses a positive (rate PBFT RUBIN, peak_queue_bytes) series")
	}
	for _, metric := range []string{
		metrics.MetricHeartbeatSlots, metrics.MetricHeartbeatDelay,
		metrics.MetricPeakBacklog, metrics.MetricMergeWait,
	} {
		if res9.GetSeries("skew COP-1 RUBIN", metric) == nil {
			t.Errorf("E9 misses series (skew COP-1 RUBIN, %s)", metric)
		}
		if res9.GetSeries("skew PBFT RUBIN", metric) != nil {
			t.Errorf("E9 reports COP-only metric %s for plain PBFT", metric)
		}
	}
}

// TestE7CarriesPerReplicaQueueSeries pins the per-replica send-queue
// watermark series of the fault-timeline experiment.
func TestE7CarriesPerReplicaQueueSeries(t *testing.T) {
	rc := DefaultRunContext()
	rc.Quick = true
	res, err := Run("E7", rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		s := res.GetSeries(string(kind)+" queue", metrics.MetricPeakQueueBytes)
		if s == nil {
			t.Fatalf("%s: missing per-replica peak_queue_bytes series", kind)
		}
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d replica points, want 4", kind, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s: replica %v never queued (peak %v bytes)", kind, p.X, p.Y)
			}
		}
	}
}

// TestTracedSuiteRunIsDeterministic drives the same tiny E9 configuration
// twice with span recording on and requires byte-identical Chrome trace
// exports — the in-process version of the CI trace-determinism job.
func TestTracedSuiteRunIsDeterministic(t *testing.T) {
	export := func() []byte {
		rc := tinyE9Context()
		rc.Trace = obs.New(obs.Options{Spans: true})
		if _, err := Run("E9", rc); err != nil {
			t.Fatal(err)
		}
		if rc.Trace.SpanCount() == 0 || rc.Trace.SampleCount() == 0 || rc.Trace.RunCount() == 0 {
			t.Fatalf("traced run collected spans=%d samples=%d runs=%d",
				rc.Trace.SpanCount(), rc.Trace.SampleCount(), rc.Trace.RunCount())
		}
		var buf bytes.Buffer
		if err := rc.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := export()
	second := export()
	if !bytes.Equal(first, second) {
		t.Fatal("two identical traced E9 runs export different Chrome traces")
	}
}
