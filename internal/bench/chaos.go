package bench

import (
	"fmt"
	"strconv"
	"strings"

	"rubin/internal/chaos"
	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// ChaosConfig parameterizes experiment E7: BFT agreement throughput and
// latency across a scripted fault timeline — primary crash, view change,
// recovery via state transfer, leader partition, heal — on one transport
// backend.
type ChaosConfig struct {
	Kind    transport.Kind
	Payload int   // request operation size in bytes
	Window  int   // client-side outstanding requests
	Seed    int64 // simulation seed
}

// DefaultChaosConfig returns the standard E7 setup.
func DefaultChaosConfig(kind transport.Kind) ChaosConfig {
	return ChaosConfig{Kind: kind, Payload: 512, Window: 16, Seed: 1}
}

// ChaosPhase is one segment of the E7 fault timeline with its measured
// client-side metrics. Commits are attributed to the phase in which they
// complete.
type ChaosPhase struct {
	Name       string
	Start, End sim.Time // offsets into the run
	Committed  int
	MeanLat    sim.Time
	P99Lat     sim.Time
	Throughput float64 // requests per second
}

// ChaosResult is one full E7 run.
type ChaosResult struct {
	Kind           transport.Kind
	N, F           int // replica-group shape the timeline ran against
	Phases         []ChaosPhase
	Trace          string // virtual-time fault trace (deterministic per seed)
	StateTransfers uint64 // completed by the restarted replica
	SendFaults     uint64 // delivery failures surfaced by msgnet across replicas
	PeakQueueBytes int    // deepest msgnet send queue observed on any replica
	// PeakQueueBytesPerReplica is the per-replica send-queue high
	// watermark (index = replica id): the fault timeline stresses
	// replicas asymmetrically — the restarted replica absorbs a state
	// snapshot and the partition dams up queues toward the cut-off node.
	PeakQueueBytesPerReplica []int
}

// chaosTimeline returns the scripted fault events and the matching
// measurement phases. Replica 0 leads view 0 and crashes first; replica 1
// leads view 1 and is partitioned away later, forcing a second view
// change in the majority partition.
func chaosTimeline() (*chaos.Scenario, []ChaosPhase) {
	s := chaos.NewScenario("E7-fault-timeline").
		Crash(150*sim.Millisecond, 0).
		Restart(500*sim.Millisecond, 0).
		Partition(900*sim.Millisecond, []int{1}, []int{0, 2, 3}).
		Heal(1400 * sim.Millisecond)
	phases := []ChaosPhase{
		{Name: "healthy", Start: 0, End: 150 * sim.Millisecond},
		{Name: "crash+viewchange", Start: 150 * sim.Millisecond, End: 500 * sim.Millisecond},
		{Name: "recovery", Start: 500 * sim.Millisecond, End: 900 * sim.Millisecond},
		{Name: "partition", Start: 900 * sim.Millisecond, End: 1400 * sim.Millisecond},
		{Name: "healed", Start: 1400 * sim.Millisecond, End: 1900 * sim.Millisecond},
	}
	return s, phases
}

// maxChaosPayload bounds the request payload. This is purely a
// simulation-cost bound now: msgnet chunks any protocol message above the
// transport frame limit (VIEW-CHANGE aggregates and state snapshots
// included), so no payload size wedges the timeline anymore — large
// payloads just take proportionally long to simulate.
const maxChaosPayload = 256 << 10

// RunChaos measures client-observed throughput and latency of the
// replicated system across the E7 fault timeline.
func RunChaos(cfg ChaosConfig, params model.Params) (ChaosResult, error) {
	if cfg.Payload < 1 || cfg.Payload > maxChaosPayload {
		return ChaosResult{}, fmt.Errorf("bench: chaos payload %d out of range [1, %d]", cfg.Payload, maxChaosPayload)
	}
	pcfg := pbft.DefaultConfig()
	pcfg.BatchSize = 4
	pcfg.CheckpointEvery = 8
	pcfg.LogWindow = 128
	cluster, err := pbft.NewCluster(cfg.Kind, pcfg, params, cfg.Seed,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		return ChaosResult{}, err
	}
	if err := cluster.Start(); err != nil {
		return ChaosResult{}, err
	}
	client, err := cluster.AddClient()
	if err != nil {
		return ChaosResult{}, err
	}

	scenario, phases := chaosTimeline()
	sched := chaos.Apply(cluster, scenario)
	loop := cluster.Loop
	base := loop.Now()
	end := phases[len(phases)-1].End

	recs := make([]*metrics.Recorder, len(phases))
	for i := range recs {
		recs[i] = metrics.NewRecorder()
	}
	phaseAt := func(t sim.Time) int {
		for i := range phases {
			if t < phases[i].End {
				return i
			}
		}
		return -1
	}

	value := string(make([]byte, cfg.Payload))
	// Cycle a bounded key space: the store (and therefore per-checkpoint
	// snapshot cost) stays constant over an arbitrarily long run. The
	// space is sized to the payload to bound per-checkpoint marshal cost;
	// snapshots above the transport frame limit are fine (msgnet chunks
	// the StateResponse), they just cost more virtual time to ship.
	keySpace := 200_000 / (cfg.Payload + 24)
	if keySpace > 128 {
		keySpace = 128
	}
	if keySpace < 4 {
		keySpace = 4
	}
	sent := 0
	var sendOne func()
	sendOne = func() {
		if loop.Now()-base >= end {
			return
		}
		idx := sent
		sent++
		t0 := loop.Now()
		op := kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("chaos-%03d", idx%keySpace), value)
		client.Invoke(op, func([]byte) {
			if p := phaseAt(loop.Now() - base); p >= 0 {
				recs[p].Record(loop.Now() - t0)
			}
			sendOne()
		})
	}
	loop.Post(func() {
		for i := 0; i < cfg.Window; i++ {
			sendOne()
		}
	})
	loop.RunUntil(base + end)

	if err := sched.Err(); err != nil {
		return ChaosResult{}, err
	}
	for i := range phases {
		phases[i].Committed = recs[i].Count()
		phases[i].MeanLat = recs[i].Mean()
		phases[i].P99Lat = recs[i].Percentile(99)
		phases[i].Throughput = metrics.Throughput(recs[i].Count(), phases[i].End-phases[i].Start)
		// The timeline is designed to stay live in every phase (the
		// partition keeps a quorum intact); a zero-commit phase means
		// the cluster wedged and the table would misreport a dead run.
		if phases[i].Committed == 0 {
			return ChaosResult{}, fmt.Errorf("bench: phase %q committed nothing (cluster wedged — check payload/transport limits)", phases[i].Name)
		}
	}
	perReplica := make([]int, len(cluster.Meshes))
	for i, mesh := range cluster.Meshes {
		perReplica[i] = mesh.PeakQueueBytes()
	}
	return ChaosResult{
		Kind:                     cfg.Kind,
		N:                        pcfg.N,
		F:                        pcfg.F,
		Phases:                   phases,
		Trace:                    sched.TraceString(),
		StateTransfers:           cluster.Replicas[0].StateTransfers(),
		SendFaults:               cluster.SendFaults(),
		PeakQueueBytes:           cluster.PeakQueueBytes(),
		PeakQueueBytesPerReplica: perReplica,
	}, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E7 (agreement under a scripted fault timeline).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E7",
		Title:  "BFT agreement under faults (crash, view change, state transfer, partition, heal)",
		Figure: "beyond the paper: fault-regime evaluation",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE7(rc)
			return cfg, err
		},
		Run: runE7,
	})
}

func resolveE7(rc RunContext) (ChaosConfig, map[string]string, error) {
	base := DefaultChaosConfig(transport.KindRDMA)
	base.Seed = rc.Seed
	if rc.Quick {
		// Once pinned to window 4 because window 8 wedged the healed
		// phase (two replicas lagging together deadlocked the stable
		// checkpoint; see TestChaosWindow8Regression). Fixed by the
		// F+1 state-transfer trigger — quick mode now runs the once-bad
		// window to keep the regression visible in CI.
		base.Window = 8
	}
	var err error
	if base.Payload, err = rc.intKnob("payload", base.Payload); err != nil {
		return base, nil, err
	}
	if base.Window, err = rc.intKnob("window", base.Window); err != nil {
		return base, nil, err
	}
	cfg := map[string]string{
		"payload": strconv.Itoa(base.Payload),
		"window":  strconv.Itoa(base.Window),
	}
	return base, cfg, nil
}

// phaseNames lists the fixed E7 timeline phases in index order.
func phaseNames() []string {
	_, phases := chaosTimeline()
	names := make([]string, len(phases))
	for i, p := range phases {
		names[i] = p.Name
	}
	return names
}

func runE7(rc RunContext, res *metrics.Result) error {
	base, _, err := resolveE7(rc)
	if err != nil {
		return err
	}
	res.SetConfig("phases", strings.Join(phaseNames(), ","))
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		cfg := base
		cfg.Kind = kind
		r, err := RunChaos(cfg, rc.Model)
		if err != nil {
			return err
		}
		name := string(kind)
		tput := res.AddSeries(name, metrics.MetricThroughput, "req/s", name, "phase_index")
		mean := res.AddSeries(name, metrics.MetricLatencyMean, "us", name, "phase_index")
		p99 := res.AddSeries(name, metrics.MetricLatencyP99, "us", name, "phase_index")
		commits := res.AddSeries(name, metrics.MetricCommits, "count", name, "phase_index")
		for i, p := range r.Phases {
			x := float64(i)
			tput.Add(x, p.Throughput)
			mean.Add(x, p.MeanLat.Micros())
			p99.Add(x, p.P99Lat.Micros())
			commits.Add(x, float64(p.Committed))
		}
		counters := res.AddSeries(name+" counters", "fault_counters", "count", name, "counter_index")
		counters.Add(0, float64(r.StateTransfers)) // state transfers completed
		counters.Add(1, float64(r.SendFaults))     // surfaced delivery failures
		counters.Add(2, float64(r.PeakQueueBytes)) // peak msgnet queue depth (bytes)
		peakQ := res.AddSeries(name+" queue", metrics.MetricPeakQueueBytes, "bytes", name, "replica_index")
		for i, q := range r.PeakQueueBytesPerReplica {
			peakQ.Add(float64(i), float64(q))
		}
		res.SetConfig("cluster["+name+"]", fmt.Sprintf("%d replicas, f=%d", r.N, r.F))
		res.SetNote("trace["+name+"]", r.Trace)
	}
	res.SetConfig("counter_index", "0=state_transfers,1=send_faults,2=peak_queue_bytes")
	return nil
}

// Render formats the per-phase measurements as an aligned text table.
func (r ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# E7: BFT agreement under faults (%s, %d replicas, f=%d)\n", r.Kind, r.N, r.F)
	fmt.Fprintf(&b, "%-18s %12s %10s %12s %12s %12s\n",
		"phase", "window", "commits", "req/s", "mean lat", "p99 lat")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-18s %5v-%-6v %10d %12.0f %12v %12v\n",
			p.Name, p.Start, p.End, p.Committed, p.Throughput, p.MeanLat, p.P99Lat)
	}
	fmt.Fprintf(&b, "send faults surfaced: %d   peak msgnet queue: %d bytes\n",
		r.SendFaults, r.PeakQueueBytes)
	return b.String()
}
