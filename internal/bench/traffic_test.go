package bench

import (
	"bytes"
	"testing"

	"rubin/internal/metrics"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// tinyE9Context shrinks E9 below quick mode while keeping every sweep,
// both systems and both transports on their real code paths.
func tinyE9Context() RunContext {
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Seed = 11
	rc.Knobs = map[string]string{
		"rates": "900", "skews": "99", "read_pcts": "50", "ks": "1",
		"users": "8", "conns": "2", "keys": "16", "ops": "30", "warmup": "5",
	}
	return rc
}

// TestE9SameSeedRunsAreByteIdentical mirrors the registry determinism
// test for the traffic study specifically: two same-seed runs must
// marshal to byte-identical JSON, and the result must carry the full
// percentile bundle for every sweep and system.
func TestE9SameSeedRunsAreByteIdentical(t *testing.T) {
	rc := tinyE9Context()
	first, err := Run("E9", rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run("E9", rc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := first.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two seed-11 E9 runs marshal differently")
	}
	for _, prefix := range []string{"rate", "skew", "mix"} {
		for _, sys := range []string{"PBFT", "COP-1"} {
			for _, tr := range []string{"RUBIN", "NIO"} {
				name := prefix + " " + sys + " " + tr
				for _, metric := range []string{
					metrics.MetricLatencyP50, metrics.MetricLatencyP90,
					metrics.MetricLatencyP99, metrics.MetricLatencyP999,
					metrics.MetricGoodput,
				} {
					s := first.GetSeries(name, metric)
					if s == nil {
						t.Fatalf("missing series (%s, %s)", name, metric)
					}
					if len(s.Points) == 0 || s.Points[0].Y <= 0 {
						t.Fatalf("series (%s, %s) carries no positive point", name, metric)
					}
				}
			}
		}
	}
}

// TestRunTrafficCOPRoutesByKey drives a skewed, delete-heavy workload
// through a 2-instance COP group: without per-key routing the shared
// state machines would interleave same-key operations differently per
// node and the linearizability check inside RunTraffic would fail.
func TestRunTrafficCOPRoutesByKey(t *testing.T) {
	cfg := TrafficConfig{
		Kind: transport.KindRDMA, Instances: 2, N: 4, F: 1,
		Users: 8, Conns: 2, Keys: 12, ValueSize: 16,
		Ops: 60, Warmup: 5,
		Mix:     workload.Mix{ReadPct: 40, WritePct: 40, DeletePct: 20},
		Zipf100: 99,
		Arrival: workload.Closed(1, 0),
		Seed:    5,
	}
	r, err := RunTraffic(cfg, DefaultRunContext().Model)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 65 || r.HistoryOps != 65 {
		t.Fatalf("completed %d, history %d, want 65", r.Completed, r.HistoryOps)
	}
	if r.Goodput <= 0 || r.P50 <= 0 || r.P999 < r.P50 {
		t.Fatalf("implausible result %+v", r)
	}
}

// TestRunTrafficOpenLoopPBFT exercises the Poisson path over the plain
// cluster on the TCP backend.
func TestRunTrafficOpenLoopPBFT(t *testing.T) {
	cfg := TrafficConfig{
		Kind: transport.KindTCP, N: 4, F: 1,
		Users: 6, Conns: 2, Keys: 16, ValueSize: 16,
		Ops: 50, Warmup: 5,
		Mix:     workload.Mix{ReadPct: 45, WritePct: 45, DeletePct: 5, ScanPct: 5},
		Arrival: workload.Poisson(1200),
		Seed:    3,
	}
	r, err := RunTraffic(cfg, DefaultRunContext().Model)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 55 {
		t.Fatalf("completed %d, want 55", r.Completed)
	}
	// Under-saturated open loop: goodput must sit near the offered rate.
	if r.Goodput < 900 || r.Goodput > 1600 {
		t.Fatalf("goodput %.0f, want ~1200", r.Goodput)
	}
}

// TestE9RejectsMalformedKnobs pins the knob validation.
func TestE9RejectsMalformedKnobs(t *testing.T) {
	for name, knobs := range map[string]map[string]string{
		"theta >= 1":      {"skews": "100"},
		"mix over 100":    {"read_pcts": "95"},
		"scan over 100":   {"scan_pct": "60"}, // breaks the fixed 45%-read sweeps
		"conns > users":   {"users": "2", "conns": "4"},
		"n below quorum":  {"n": "3"},
		"negative skew":   {"skews": "-1"},
		"tiny keyspace":   {"keys": "4"},
		"zero rate":       {"rates": "0"},
		"unknown knob":    {"warp": "9"},
		"malformed lists": {"rates": "a,b"},
	} {
		rc := tinyE9Context()
		for k, v := range knobs {
			rc.Knobs[k] = v
		}
		if _, err := Run("E9", rc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
