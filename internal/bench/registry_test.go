package bench

import (
	"bytes"
	"reflect"
	"testing"

	"rubin/internal/metrics"
)

// TestRegistryComplete asserts the suite registers E1–E12 plus the
// ALLOC harness audit with full metadata, in numeric order (non-E names
// sort first).
func TestRegistryComplete(t *testing.T) {
	want := []string{"ALLOC", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("experiment %d is %s, want %s", i, e.Name, want[i])
		}
		if e.Title == "" || e.Figure == "" || e.Params == nil || e.Run == nil {
			t.Errorf("%s: incomplete metadata %+v", e.Name, e)
		}
		if _, ok := Lookup(e.Name); !ok {
			t.Errorf("Lookup(%s) failed", e.Name)
		}
	}
}

// TestRunRejectsUnknown asserts unknown experiments and unknown knobs are
// errors, not silent no-ops.
func TestRunRejectsUnknown(t *testing.T) {
	rc := DefaultRunContext()
	if _, err := Run("E99", rc); err == nil {
		t.Error("Run accepted unknown experiment E99")
	}
	rc.Quick = true
	rc.Knobs = map[string]string{"no_such_knob": "1"}
	if _, err := Run("E1", rc); err == nil {
		t.Error("Run accepted unknown knob")
	}
	rc.Knobs = map[string]string{"payloads_kb": "zero"}
	if _, err := Run("E1", rc); err == nil {
		t.Error("Run accepted malformed knob value")
	}
}

// tinyKnobs shrink each experiment below even quick mode so the
// round-trip test stays cheap while exercising every registered Run.
var tinyKnobs = map[string]map[string]string{
	"E1": {"payloads_kb": "1", "messages": "60", "warmup": "10"},
	"E2": {"payloads_kb": "1", "messages": "60", "warmup": "10"},
	"E3": {"payloads_kb": "1", "messages": "60", "warmup": "10"},
	"E4": {"payloads_kb": "1", "messages": "60", "warmup": "10"},
	"E5": {"payloads_kb": "1", "requests": "30", "warmup": "5"},
	"E6": {"payloads_kb": "2", "messages": "60", "warmup": "10"},
	"E7": {}, // the timeline is fixed; quick mode already shrinks the window
	"E8": {"ns": "4", "ks": "1,2", "payloads_kb": "1", "requests": "20", "warmup": "5"},
	"E9": {"rates": "900", "skews": "99", "read_pcts": "50", "ks": "1",
		"users": "8", "conns": "2", "keys": "16", "ops": "30", "warmup": "5"},
	"E11": {"read_pcts": "80", "batches": "4",
		"users": "8", "conns": "2", "keys": "16", "ops": "40", "warmup": "5"},
	"E12": {"prefills": "300"},
}

// TestExperimentJSONRoundTripAndDeterminism runs every registered
// experiment twice under the same seed and asserts (a) the two runs
// marshal to byte-identical JSON — the determinism contract BENCH_*.json
// relies on — and (b) the JSON unmarshals back to an equal Result.
func TestExperimentJSONRoundTripAndDeterminism(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		if e.Name == "ALLOC" {
			// AllocsPerRun reads process-global malloc counters, so the
			// parallel subtests here would pollute its window; ALLOC has
			// a dedicated serial determinism test in alloc_test.go.
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			rc := DefaultRunContext()
			rc.Quick = true
			rc.Seed = 7
			rc.Knobs = tinyKnobs[e.Name]

			first, err := Run(e.Name, rc)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := first.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(e.Name, rc)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := second.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("two seed-7 runs differ:\n%s\nvs\n%s", b1, b2)
			}

			decoded, err := metrics.ParseResult(b1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, decoded) {
				t.Fatalf("marshal→unmarshal changed the result:\nin:  %+v\nout: %+v", first, decoded)
			}
			if decoded.Seed != 7 || !decoded.Quick || decoded.Experiment != e.Name {
				t.Fatalf("identity fields wrong after round trip: %+v", decoded)
			}
			for knob := range tinyKnobs[e.Name] {
				if _, ok := decoded.Config[knob]; !ok {
					t.Errorf("config echo missing knob %q", knob)
				}
			}
		})
	}
}
