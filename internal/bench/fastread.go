package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/metrics"
	"rubin/internal/sim"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// ---------------------------------------------------------------------------
// Registry entry: E11 (read-only fast path × batch size study).
// ---------------------------------------------------------------------------
//
// E11 measures the PBFT read-only optimization (Castro & Liskov §4.4):
// clients multicast side-effect-free requests to every replica, replicas
// execute them tentatively against their last-executed state, and the
// client accepts on 2F+1 matching replies — skipping agreement entirely.
// Two sweeps, each run with the fast path on and off on both transports:
//
//   - mix: read share of a closed-loop workload (x = read_pct). The
//     fast path's payoff should grow with the read share.
//   - batch: agreement batch size at the highest read share (x = batch).
//     Batching amortizes agreement for writes; the fast path removes
//     agreement for reads. The sweep shows how much of the fast path's
//     win batching alone can (and cannot) recover.
//
// Every point runs under the workload history oracle — a fast-path read
// returning a stale or unordered value fails the per-key
// linearizability check and aborts the experiment. fp=on points also
// export the fast-read and fallback counters so a run that silently
// degraded to the ordered path is visible in the data.

func init() {
	Register(Experiment{
		Name:   "E11",
		Title:  "read-only fast path: read share and batch size under the linearizability oracle",
		Figure: "beyond the paper: Castro-Liskov read optimization on the RDMA transport study",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE11(rc)
			return cfg, err
		},
		Run: runE11,
	})
}

// e11Knobs are the resolved parameters of one E11 run.
type e11Knobs struct {
	readPcts    []int // read shares of the mix sweep
	batches     []int // agreement batch sizes of the batch sweep
	n           int
	users       int
	conns       int
	keys        int
	ops         int
	warmup      int
	valueBytes  int
	window      int // closed-loop outstanding per user
	readTimeout int // fast-read fallback timeout, us
}

func resolveE11(rc RunContext) (e11Knobs, map[string]string, error) {
	k := e11Knobs{
		readPcts: []int{50, 90, 99},
		batches:  []int{1, 8, 32},
		n:        4, users: 96, conns: 4, keys: 128,
		ops: 300, warmup: 30, valueBytes: 128, window: 1,
		readTimeout: 2000,
	}
	if rc.Quick {
		k.readPcts, k.batches = []int{90}, []int{8}
		k.users, k.conns, k.keys = 24, 2, 32
		k.ops, k.warmup = 60, 10
	}
	var err error
	if k.readPcts, err = rc.nonNegIntsKnob("read_pcts", k.readPcts); err != nil {
		return k, nil, err
	}
	if k.batches, err = rc.intsKnob("batches", k.batches); err != nil {
		return k, nil, err
	}
	if k.n, err = rc.intKnob("n", k.n); err != nil {
		return k, nil, err
	}
	if k.users, err = rc.intKnob("users", k.users); err != nil {
		return k, nil, err
	}
	if k.conns, err = rc.intKnob("conns", k.conns); err != nil {
		return k, nil, err
	}
	if k.keys, err = rc.intKnob("keys", k.keys); err != nil {
		return k, nil, err
	}
	if k.ops, err = rc.intKnob("ops", k.ops); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.valueBytes, err = rc.intKnob("value_bytes", k.valueBytes); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	if k.readTimeout, err = rc.intKnob("read_timeout_us", k.readTimeout); err != nil {
		return k, nil, err
	}
	if k.n < 4 {
		return k, nil, fmt.Errorf("bench: E11 needs n >= 4 (3f+1), got %d", k.n)
	}
	if k.users < k.conns || k.conns < 1 {
		return k, nil, fmt.Errorf("bench: E11 needs 1 <= conns <= users, got %d/%d", k.conns, k.users)
	}
	if k.window < 1 || k.keys < 10 || k.readTimeout < 1 {
		return k, nil, fmt.Errorf("bench: E11 needs window >= 1, keys >= 10 and read_timeout_us >= 1")
	}
	if len(k.readPcts) == 0 || len(k.batches) == 0 {
		return k, nil, fmt.Errorf("bench: E11 needs non-empty read_pcts and batches")
	}
	for _, r := range k.readPcts {
		if r > 100 {
			return k, nil, fmt.Errorf("bench: E11 read_pcts are percentages, got %d", r)
		}
	}
	for _, b := range k.batches {
		if b < 1 {
			return k, nil, fmt.Errorf("bench: E11 batch sizes must be >= 1, got %d", b)
		}
	}
	cfg := map[string]string{
		"read_pcts":       formatInts(k.readPcts),
		"batches":         formatInts(k.batches),
		"n":               strconv.Itoa(k.n),
		"users":           strconv.Itoa(k.users),
		"conns":           strconv.Itoa(k.conns),
		"keys":            strconv.Itoa(k.keys),
		"ops":             strconv.Itoa(k.ops),
		"warmup":          strconv.Itoa(k.warmup),
		"value_bytes":     strconv.Itoa(k.valueBytes),
		"window":          strconv.Itoa(k.window),
		"read_timeout_us": strconv.Itoa(k.readTimeout),
	}
	return k, cfg, nil
}

// e11Series is one E11 sweep combo's series bundle: the shared E9
// percentile/breakdown bundle plus — for fast-path-on combos only — the
// fast-read and fallback counters.
type e11Series struct {
	e9Series
	fastReads *metrics.ResultSeries
	fastFalls *metrics.ResultSeries
}

func addE11Series(res *metrics.Result, name, transport, xLabel string, fast bool) e11Series {
	s := e11Series{e9Series: addE9Series(res, name, transport, xLabel, false)}
	if fast {
		s.fastReads = res.AddSeries(name, metrics.MetricFastReads, "count", transport, xLabel)
		s.fastFalls = res.AddSeries(name, metrics.MetricFastFallbacks, "count", transport, xLabel)
	}
	return s
}

func (s e11Series) observe(x float64, r TrafficResult) {
	s.e9Series.observe(x, r)
	if s.fastReads != nil {
		s.fastReads.Add(x, float64(r.FastReads))
		s.fastFalls.Add(x, float64(r.FastFallbacks))
	}
}

// e11Check enforces the invariants every E11 point must satisfy beyond
// RunTraffic's own health and linearizability checks: a fast-path-on
// point with reads in the mix must actually serve fast reads (a run
// that silently degraded to ordering is a failed experiment, not a
// slow one), and a fast-path-off point must never use it.
func e11Check(r TrafficResult, fast bool, readPct int) error {
	if !fast {
		if r.FastReads != 0 || r.FastFallbacks != 0 {
			return fmt.Errorf("bench: fast path off but served %d fast reads, %d fallbacks",
				r.FastReads, r.FastFallbacks)
		}
		return nil
	}
	if readPct > 0 && r.FastReads == 0 {
		return fmt.Errorf("bench: fast path on with %d%% reads served none fast (%d fallbacks)",
			readPct, r.FastFallbacks)
	}
	return nil
}

func runE11(rc RunContext, res *metrics.Result) error {
	k, _, err := resolveE11(rc)
	if err != nil {
		return err
	}
	readTimeout := sim.Time(k.readTimeout) * sim.Microsecond
	// The batch sweep pins the read share at the mix sweep's highest —
	// where the fast path has the most agreement work to remove.
	topRead := k.readPcts[0]
	for _, r := range k.readPcts[1:] {
		if r > topRead {
			topRead = r
		}
	}
	base := func(kind transport.Kind, fast bool) TrafficConfig {
		cfg := TrafficConfig{
			Kind: kind,
			N:    k.n, F: (k.n - 1) / 3,
			Users: k.users, Conns: k.conns, Keys: k.keys,
			ValueSize: k.valueBytes, Ops: k.ops, Warmup: k.warmup,
			Zipf100: 99, Arrival: workload.Closed(k.window, 0),
			Seed: rc.Seed, Trace: rc.Trace,
		}
		if fast {
			cfg.ReadFastPath, cfg.ReadTimeout = true, readTimeout
		}
		return cfg
	}
	fpLabel := map[bool]string{true: "fp=on", false: "fp=off"}
	// Sweep 1: read share at the default batch size.
	for _, kind := range e8Transports {
		for _, fast := range []bool{true, false} {
			name := fmt.Sprintf("mix %s %s", fpLabel[fast], e8Label(kind))
			ss := addE11Series(res, name, string(kind), "read_pct", fast)
			for _, readPct := range k.readPcts {
				cfg := base(kind, fast)
				cfg.Mix = e9Mix(readPct, 0, 0)
				r, err := RunTraffic(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("read_pct=%d %s %s: %w", readPct, fpLabel[fast], kind, err)
				}
				if err := e11Check(r, fast, readPct); err != nil {
					return fmt.Errorf("read_pct=%d %s %s: %w", readPct, fpLabel[fast], kind, err)
				}
				ss.observe(float64(readPct), r)
			}
		}
	}
	// Sweep 2: agreement batch size at the highest read share.
	for _, kind := range e8Transports {
		for _, fast := range []bool{true, false} {
			name := fmt.Sprintf("batch %s %s", fpLabel[fast], e8Label(kind))
			ss := addE11Series(res, name, string(kind), "batch", fast)
			for _, batch := range k.batches {
				cfg := base(kind, fast)
				cfg.Mix = e9Mix(topRead, 0, 0)
				cfg.BatchSize = batch
				r, err := RunTraffic(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("batch=%d %s %s: %w", batch, fpLabel[fast], kind, err)
				}
				if err := e11Check(r, fast, topRead); err != nil {
					return fmt.Errorf("batch=%d %s %s: %w", batch, fpLabel[fast], kind, err)
				}
				ss.observe(float64(batch), r)
			}
		}
	}
	return nil
}
