package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/obs"
	"rubin/internal/pbft"
	"rubin/internal/reptor"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// COPConfig parameterizes one point of the Reptor COP scaling axis of
// experiment E8: K parallel PBFT instances on an N-replica group, driven
// by closed-loop clients over either transport stack.
type COPConfig struct {
	Kind      transport.Kind
	Instances int // K, the parallel consensus pipelines
	Payload   int // request operation size
	Requests  int // measured requests per client
	Warmup    int // unmeasured requests per client
	Window    int // outstanding requests per client
	Batch     int // per-instance PBFT batch size
	N, F      int
	Clients   int // closed-loop clients (0 means 1)
	Seed      int64
	// HeartbeatDelay/HeartbeatMax tune the executor's adaptive
	// hole-filling heartbeat (zero keeps the reptor defaults).
	HeartbeatDelay sim.Time
	HeartbeatMax   sim.Time
	// Trace, when non-nil, records spans and samples into the shared
	// -trace tracer; nil still aggregates the latency breakdown.
	Trace *obs.Tracer
}

// DefaultCOPConfig returns the 4-replica, 4-instance, single-client setup.
func DefaultCOPConfig(kind transport.Kind, payload int) COPConfig {
	return COPConfig{
		Kind: kind, Payload: payload, Instances: 4,
		Requests: 100, Warmup: 10, Window: 8, Batch: 8,
		N: 4, F: 1, Clients: 1, Seed: 1,
	}
}

// Label describes the group shape of this configuration.
func (c COPConfig) Label() string {
	return fmt.Sprintf("%d replicas, f=%d, K=%d, %d clients", c.N, c.F, c.Instances, c.Clients)
}

// COPResult is one measurement point of the parallelized system.
type COPResult struct {
	Kind        transport.Kind
	Instances   int
	Payload     int
	MeanLat     sim.Time
	P99Lat      sim.Time
	Throughput  float64 // requests per second across all clients
	MergedSlots uint64  // global slots merged by node 0's executor
	// Heartbeat cost of the merge, summed across every node's executor
	// (a fill is proposed by whichever node leads the lagging instance,
	// so per-node counters are a K-dependent sample): fills fired and
	// empty slots they requested (batched fills request several slots
	// per round).
	HeartbeatRounds uint64
	HeartbeatSlots  uint64
	// Backlog is committed-but-unmerged batches left at the end across
	// all nodes — non-zero means some executor stalled behind the
	// agreement.
	Backlog int
	// LeaderCPU is the highest CPU utilization across replica nodes —
	// the saturation signal that decides whether parallelizing the
	// ordering stage can pay off at all.
	LeaderCPU float64
	// Breakdown attributes the measured latency to protocol phases;
	// Breakdown.MergeWait is the executor's commit-to-merge barrier time
	// (off the reply path, so it is not part of the partition).
	Breakdown obs.Summary
	// PeakBacklog is the most committed-but-unmerged batches any node's
	// executor held at once — the transient counterpart of Backlog.
	PeakBacklog int
	// PeakQueueBytes is the deepest msgnet send queue any replica saw.
	PeakQueueBytes int
}

// RunCOP measures ordering latency and throughput of a Reptor COP group
// for one configuration. Clients route operations to instances by hash
// (each instance orders a disjoint partition), so adding instances scales
// the ordering pipeline — the Middleware '15 parallelization the paper
// targets RUBIN at.
func RunCOP(cfg COPConfig, params model.Params) (COPResult, error) {
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	gcfg := reptor.DefaultConfig()
	gcfg.Instances = cfg.Instances
	gcfg.PBFT.N, gcfg.PBFT.F = cfg.N, cfg.F
	gcfg.PBFT.BatchSize = cfg.Batch
	if cfg.HeartbeatDelay > 0 {
		gcfg.HeartbeatDelay = cfg.HeartbeatDelay
	}
	if cfg.HeartbeatMax > 0 {
		gcfg.HeartbeatMax = cfg.HeartbeatMax
	}
	group, err := reptor.NewGroup(cfg.Kind, gcfg, params, cfg.Seed,
		func(int) pbft.Application { return kvstore.New() })
	if err != nil {
		return COPResult{}, err
	}
	if err := group.Start(); err != nil {
		return COPResult{}, err
	}
	tr := benchTracer(cfg.Trace, fmt.Sprintf("COP %s K=%d N=%d clients=%d payload=%dB seed=%d",
		cfg.Kind, cfg.Instances, cfg.N, clients, cfg.Payload, cfg.Seed))
	group.SetTracer(tr)
	cls := make([]*reptor.Client, clients)
	for i := range cls {
		if cls[i], err = group.AddClient(); err != nil {
			return COPResult{}, err
		}
	}
	startSamplers(tr, group.Loop, group.Meshes, group.Executors)

	value := string(make([]byte, cfg.Payload))
	res := runClosedLoop(group.Loop, tr, clients, cfg.Requests, cfg.Warmup, cfg.Window,
		func(ci, idx int) []byte {
			return kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("cop-%d-%06d", ci, idx), value)
		},
		func(ci int, op []byte, done func([]byte)) string { return cls[ci].Invoke(op, done) })
	if want := (cfg.Requests + cfg.Warmup) * clients; res.done != want {
		return COPResult{}, fmt.Errorf("bench: COP completed %d of %d requests", res.done, want)
	}
	var maxCPU float64
	for i := 0; i < cfg.N; i++ {
		if u := group.Network.Node(fmt.Sprintf("r%d", i)).CPU.Utilization(); u > maxCPU {
			maxCPU = u
		}
	}
	var hbRounds, hbSlots uint64
	backlog, peakBacklog := 0, 0
	for _, ex := range group.Executors {
		hbRounds += ex.HeartbeatRounds()
		hbSlots += ex.HeartbeatSlots()
		backlog += ex.Backlog()
		if pb := ex.PeakBacklog(); pb > peakBacklog {
			peakBacklog = pb
		}
	}
	return COPResult{
		Kind:            cfg.Kind,
		Instances:       cfg.Instances,
		Payload:         cfg.Payload,
		MeanLat:         res.rec.Mean(),
		P99Lat:          res.rec.Percentile(99),
		Throughput:      metrics.Throughput(res.rec.Count(), res.endAt-res.startAt),
		MergedSlots:     group.Executors[0].MergedSlots(),
		HeartbeatRounds: hbRounds,
		HeartbeatSlots:  hbSlots,
		Backlog:         backlog,
		LeaderCPU:       maxCPU,
		Breakdown:       tr.Summary(),
		PeakBacklog:     peakBacklog,
		PeakQueueBytes:  group.PeakQueueBytes(),
	}, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E8 (scaling study — cluster size and COP parallelism).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E8",
		Title:  "scaling study: PBFT cluster size (N) and Reptor COP parallelism (K)",
		Figure: "beyond the paper: COP (Behl et al., Middleware '15) scaling axis",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE8(rc)
			return cfg, err
		},
		Run: runE8,
	})
}

// e8Knobs are the resolved parameters of one E8 run.
type e8Knobs struct {
	ns            []int // PBFT cluster sizes; f = (n-1)/3 each
	ks            []int // COP instance counts on the copN-replica group
	payloadsKB    []int // PBFT-axis payload sweep
	copPayloadsKB []int // COP-axis payload sweep (largest shows the crossover)
	copN          int
	requests      int
	warmup        int
	window        int
	clients       int
	batch         int
	hbUS          int // adaptive heartbeat floor, µs
	hbMaxUS       int // adaptive heartbeat backoff ceiling, µs
}

func resolveE8(rc RunContext) (e8Knobs, map[string]string, error) {
	k := e8Knobs{
		ns: []int{4, 7, 10}, ks: []int{1, 2, 4, 8},
		payloadsKB: []int{1, 16}, copPayloadsKB: []int{1, 16, 64},
		copN: 4, requests: 80, warmup: 10, window: 16, clients: 4, batch: 8,
		hbUS: 100, hbMaxUS: 4000,
	}
	if rc.Quick {
		k.ns, k.ks = []int{4, 7}, []int{1, 2}
		k.payloadsKB, k.copPayloadsKB = []int{1}, []int{1}
		k.requests, k.warmup, k.clients = 30, 5, 2
	}
	var err error
	if k.ns, err = rc.intsKnob("ns", k.ns); err != nil {
		return k, nil, err
	}
	if k.ks, err = rc.intsKnob("ks", k.ks); err != nil {
		return k, nil, err
	}
	if k.payloadsKB, err = rc.intsKnob("payloads_kb", k.payloadsKB); err != nil {
		return k, nil, err
	}
	if k.copPayloadsKB, err = rc.intsKnob("cop_payloads_kb", k.copPayloadsKB); err != nil {
		return k, nil, err
	}
	if k.copN, err = rc.intKnob("cop_n", k.copN); err != nil {
		return k, nil, err
	}
	if k.requests, err = rc.intKnob("requests", k.requests); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	if k.clients, err = rc.intKnob("clients", k.clients); err != nil {
		return k, nil, err
	}
	if k.batch, err = rc.intKnob("batch", k.batch); err != nil {
		return k, nil, err
	}
	if k.hbUS, err = rc.intKnob("hb_us", k.hbUS); err != nil {
		return k, nil, err
	}
	if k.hbMaxUS, err = rc.intKnob("hb_max_us", k.hbMaxUS); err != nil {
		return k, nil, err
	}
	for _, n := range k.ns {
		if n < 4 {
			return k, nil, fmt.Errorf("bench: E8 needs N >= 4 (3f+1), got %d", n)
		}
	}
	if k.copN < 4 {
		return k, nil, fmt.Errorf("bench: E8 needs cop_n >= 4 (3f+1), got %d", k.copN)
	}
	if k.hbUS < 1 || k.hbMaxUS < k.hbUS {
		return k, nil, fmt.Errorf("bench: E8 needs 1 <= hb_us <= hb_max_us, got %d/%d", k.hbUS, k.hbMaxUS)
	}
	cfg := map[string]string{
		"ns":              formatInts(k.ns),
		"ks":              formatInts(k.ks),
		"payloads_kb":     formatInts(k.payloadsKB),
		"cop_payloads_kb": formatInts(k.copPayloadsKB),
		"cop_n":           strconv.Itoa(k.copN),
		"requests":        strconv.Itoa(k.requests),
		"warmup":          strconv.Itoa(k.warmup),
		"window":          strconv.Itoa(k.window),
		"clients":         strconv.Itoa(k.clients),
		"batch":           strconv.Itoa(k.batch),
		"hb_us":           strconv.Itoa(k.hbUS),
		"hb_max_us":       strconv.Itoa(k.hbMaxUS),
	}
	return k, cfg, nil
}

// e8Transports are the two backends every E8 sweep runs on.
var e8Transports = []transport.Kind{transport.KindRDMA, transport.KindTCP}

// e8Label shortens the backend name for series labels.
func e8Label(kind transport.Kind) string {
	if kind == transport.KindRDMA {
		return "RUBIN"
	}
	return "NIO"
}

func runE8(rc RunContext, res *metrics.Result) error {
	k, _, err := resolveE8(rc)
	if err != nil {
		return err
	}
	// Axis 1: PBFT agreement vs cluster size (f scales with N).
	for _, kind := range e8Transports {
		for _, kb := range k.payloadsKB {
			name := fmt.Sprintf("PBFT %s %dKB", e8Label(kind), kb)
			mean := res.AddSeries(name, metrics.MetricLatencyMean, "us", string(kind), "replicas")
			p99 := res.AddSeries(name, metrics.MetricLatencyP99, "us", string(kind), "replicas")
			tput := res.AddSeries(name, metrics.MetricThroughput, "req/s", string(kind), "replicas")
			bd := addBreakdownSeries(res, name, string(kind), "replicas")
			for _, n := range k.ns {
				cfg := BFTConfig{
					Kind: kind, Payload: kb << 10,
					Requests: k.requests, Warmup: k.warmup, Window: k.window,
					Batch: k.batch, N: n, F: (n - 1) / 3, Clients: k.clients,
					Seed: rc.Seed, Trace: rc.Trace,
				}
				r, err := RunBFT(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("PBFT N=%d %s %dKB: %w", n, kind, kb, err)
				}
				mean.Add(float64(n), r.MeanLat.Micros())
				p99.Add(float64(n), r.P99Lat.Micros())
				tput.Add(float64(n), r.Throughput)
				bd.observe(float64(n), r.Breakdown)
			}
		}
	}
	// Axis 2: Reptor COP ordering vs instance count on a fixed group. The
	// per-K heartbeat and CPU series document *why* the throughput curve
	// bends: K parallel leaders split the ordering CPU, while the
	// adaptive/batched heartbeat keeps the merge's hole-filling cost from
	// growing with K.
	for _, kind := range e8Transports {
		for _, kb := range k.copPayloadsKB {
			name := fmt.Sprintf("COP %s %dKB", e8Label(kind), kb)
			mean := res.AddSeries(name, metrics.MetricLatencyMean, "us", string(kind), "instances")
			p99 := res.AddSeries(name, metrics.MetricLatencyP99, "us", string(kind), "instances")
			tput := res.AddSeries(name, metrics.MetricThroughput, "req/s", string(kind), "instances")
			hb := res.AddSeries(name, metrics.MetricHeartbeatSlots, "count", string(kind), "instances")
			cpu := res.AddSeries(name, metrics.MetricLeaderCPU, "utilization", string(kind), "instances")
			bd := addBreakdownSeries(res, name, string(kind), "instances")
			mw := res.AddSeries(name, metrics.MetricMergeWait, "us", string(kind), "instances")
			for _, ki := range k.ks {
				cfg := COPConfig{
					Kind: kind, Instances: ki, Payload: kb << 10,
					Requests: k.requests, Warmup: k.warmup, Window: k.window,
					Batch: k.batch, N: k.copN, F: (k.copN - 1) / 3, Clients: k.clients,
					Seed:           rc.Seed,
					HeartbeatDelay: sim.Time(k.hbUS) * sim.Microsecond,
					HeartbeatMax:   sim.Time(k.hbMaxUS) * sim.Microsecond,
					Trace:          rc.Trace,
				}
				r, err := RunCOP(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("COP K=%d %s %dKB: %w", ki, kind, kb, err)
				}
				if r.Backlog != 0 {
					return fmt.Errorf("COP K=%d %s %dKB: executor stalled with %d committed-but-unmerged batches",
						ki, kind, kb, r.Backlog)
				}
				mean.Add(float64(ki), r.MeanLat.Micros())
				p99.Add(float64(ki), r.P99Lat.Micros())
				tput.Add(float64(ki), r.Throughput)
				hb.Add(float64(ki), float64(r.HeartbeatSlots))
				cpu.Add(float64(ki), r.LeaderCPU)
				bd.observe(float64(ki), r.Breakdown)
				mw.Add(float64(ki), r.Breakdown.MergeWait.Micros())
			}
		}
	}
	return nil
}
