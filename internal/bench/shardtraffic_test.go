package bench

import (
	"bytes"
	"testing"

	"rubin/internal/metrics"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// tinyE10Context shrinks E10 below quick mode while keeping both
// transports, a multi-shard point and a cross-shard share on their real
// code paths.
func tinyE10Context() RunContext {
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Seed = 11
	rc.Knobs = map[string]string{
		"shards": "1,2", "cross_pcts": "0,25",
		"users": "8", "conns": "2", "keys": "48", "ops": "40", "warmup": "5",
		"txn_pct": "30",
	}
	return rc
}

// TestE10SameSeedRunsAreByteIdentical mirrors the registry determinism
// test for the shard scale-out study: two same-seed runs must marshal
// to byte-identical JSON, and every sweep combo must carry the full
// percentile bundle plus the committed-goodput scaling series.
func TestE10SameSeedRunsAreByteIdentical(t *testing.T) {
	rc := tinyE10Context()
	first, err := Run("E10", rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run("E10", rc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := first.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two seed-11 E10 runs marshal differently")
	}
	for _, name := range []string{
		"scale cross=0% RUBIN", "scale cross=25% RUBIN",
		"scale cross=0% NIO", "scale cross=25% NIO",
	} {
		for _, metric := range []string{
			metrics.MetricLatencyP50, metrics.MetricGoodput,
			metrics.MetricCommittedGoodput,
		} {
			s := first.GetSeries(name, metric)
			if s == nil {
				t.Fatalf("missing series (%s, %s)", name, metric)
			}
			if len(s.Points) != 2 || s.Points[0].Y <= 0 {
				t.Fatalf("series (%s, %s) carries no positive point per shard count", name, metric)
			}
		}
		// Cross-shard transactions actually flowed on the S=2 point of
		// the cross>0 sweeps — the 2PC path was exercised, not skipped.
		if s := first.GetSeries(name, metrics.MetricCrossShardTxns); s == nil {
			t.Fatalf("missing series (%s, cross_shard_txns)", name)
		} else if name == "scale cross=25% RUBIN" && s.Points[1].Y == 0 {
			t.Fatalf("series (%s): no transactions went through 2PC at S=2", name)
		}
	}
}

// TestRunShardTrafficCrossShard drives a transaction-heavy workload with
// a high cross-shard share through a 4-shard deployment: every point
// must pass the atomicity + linearizability check inside
// RunShardTraffic, and the counters must show 2PC happened.
func TestRunShardTrafficCrossShard(t *testing.T) {
	cfg := ShardTrafficConfig{
		Kind: transport.KindRDMA, Shards: 4, N: 4, F: 1,
		Users: 8, Conns: 2, Keys: 64, ValueSize: 16,
		Ops: 60, Warmup: 5,
		Mix:      workload.Mix{ReadPct: 20, WritePct: 20, DeletePct: 5, ScanPct: 5, TxnPct: 50},
		CrossPct: 80,
		Arrival:  workload.Closed(1, 0),
		Seed:     7,
	}
	r, err := RunShardTraffic(cfg, DefaultRunContext().Model)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 65 || r.HistoryOps != 65 {
		t.Fatalf("completed %d, history %d, want 65", r.Completed, r.HistoryOps)
	}
	if r.CrossShardTxns == 0 {
		t.Fatal("no transactions went through 2PC despite an 80% cross-shard share")
	}
	if r.Goodput <= 0 || r.P50 <= 0 || r.P999 < r.P50 {
		t.Fatalf("implausible result %+v", r)
	}
	if r.CommittedGoodput > r.Goodput {
		t.Fatalf("committed goodput %.0f exceeds goodput %.0f", r.CommittedGoodput, r.Goodput)
	}
}

// TestE10RejectsMalformedKnobs pins the knob validation.
func TestE10RejectsMalformedKnobs(t *testing.T) {
	for name, knobs := range map[string]map[string]string{
		"cross over 100":  {"cross_pcts": "101"},
		"mix over 100":    {"read_pct": "80"}, // 80+5+5+20 > 100
		"zero txn share":  {"txn_pct": "0"},
		"conns > users":   {"users": "2", "conns": "4"},
		"n below quorum":  {"n": "3"},
		"zero shards":     {"shards": "0"},
		"starved shards":  {"shards": "16", "keys": "16"},
		"unknown knob":    {"warp": "9"},
		"malformed lists": {"shards": "a,b"},
	} {
		rc := tinyE10Context()
		for k, v := range knobs {
			rc.Knobs[k] = v
		}
		if _, err := Run("E10", rc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
