package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/obs"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// BFTConfig parameterizes the fully-replicated-system evaluation (the
// paper's stated future work, experiment E5, and the N-axis of the E8
// scaling study): a 3F+1 PBFT cluster ordering closed-loop client requests
// over either transport stack. Cluster size (N, F) and offered load
// (Clients, Window) are parameters, not constants.
type BFTConfig struct {
	Kind     transport.Kind
	Payload  int // request operation size
	Requests int // measured requests per client
	Warmup   int // unmeasured requests per client
	Window   int // outstanding requests per client
	Batch    int // PBFT batch size
	N, F     int
	Clients  int // closed-loop clients (0 means 1)
	Seed     int64
	// Trace, when non-nil, records spans and samples into the shared
	// -trace tracer; nil still aggregates the latency breakdown.
	Trace *obs.Tracer
}

// DefaultBFTConfig returns the 4-replica, f=1, single-client setup.
func DefaultBFTConfig(kind transport.Kind, payload int) BFTConfig {
	return BFTConfig{
		Kind: kind, Payload: payload,
		Requests: 150, Warmup: 20, Window: 16, Batch: 8,
		N: 4, F: 1, Clients: 1, Seed: 1,
	}
}

// Label describes the replica-group shape of this configuration — derived
// from the actual values, so a 7-replica run never reads "4 replicas".
func (c BFTConfig) Label() string {
	label := fmt.Sprintf("%d replicas, f=%d", c.N, c.F)
	if c.Clients > 1 {
		label += fmt.Sprintf(", %d clients", c.Clients)
	}
	return label
}

// BFTResult is one measurement point of the replicated system.
type BFTResult struct {
	Kind       transport.Kind
	Payload    int
	MeanLat    sim.Time // client-observed request latency
	P99Lat     sim.Time
	Throughput float64 // requests per second across all clients
	SendFaults uint64  // delivery failures surfaced by msgnet across replicas
	// Breakdown attributes the measured latency to protocol phases
	// (Breakdown.Total equals MeanLat up to integer-mean rounding).
	Breakdown obs.Summary
	// PeakQueueBytes is the deepest msgnet send queue any replica saw.
	PeakQueueBytes int
}

// closedLoop is the measurement driver RunBFT and RunCOP share: each of
// clients runs its own closed loop of window outstanding requests through
// invoke(ci, op, done). Latency samples start after the per-client warmup;
// startAt is the moment the first client sends its first measured request
// and endAt the last measured completion.
type closedLoop struct {
	rec     *metrics.Recorder
	startAt sim.Time
	endAt   sim.Time
	done    int
}

// runClosedLoop drives the workload to completion on loop; makeOp builds
// the idx-th operation of client ci (keys must be unique per (ci, idx)).
// invoke returns the submitted request's trace id ("" when untraceable);
// tr folds each finished request into the latency breakdown.
func runClosedLoop(loop *sim.Loop, tr *obs.Tracer, clients, requests, warmup, window int,
	makeOp func(ci, idx int) []byte,
	invoke func(ci int, op []byte, done func([]byte)) string) closedLoop {
	cl := closedLoop{rec: metrics.NewRecorder()}
	perClient := requests + warmup
	started := false
	launch := func(ci int) {
		sent, done := 0, 0
		var sendOne func()
		sendOne = func() {
			if sent == warmup && !started {
				cl.startAt, started = loop.Now(), true
			}
			idx := sent
			sent++
			t0 := loop.Now()
			var id string
			id = invoke(ci, makeOp(ci, idx), func([]byte) {
				done++
				cl.done++
				measured := done > warmup
				if measured {
					cl.rec.Record(loop.Now() - t0)
					cl.endAt = loop.Now()
				}
				if tr != nil && id != "" {
					tr.MarkReturn(id, loop.Now())
					tr.Finish(id, measured)
				}
				if sent < perClient {
					sendOne()
				}
			})
			// Safe after the invoke: replies cross the simulated network,
			// so done cannot have fired synchronously at this same event.
			if tr != nil && id != "" {
				tr.MarkArrive(id, t0)
				tr.MarkInvoke(id, t0)
			}
		}
		loop.Post(func() {
			for i := 0; i < window && sent < perClient; i++ {
				sendOne()
			}
		})
	}
	for ci := 0; ci < clients; ci++ {
		launch(ci)
	}
	loop.Run()
	return cl
}

// RunBFT measures agreement latency and throughput of the full replicated
// system for one configuration. Each client runs its own closed loop of
// Window outstanding requests; latency samples start after the per-client
// warmup and throughput aggregates all clients.
func RunBFT(cfg BFTConfig, params model.Params) (BFTResult, error) {
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	pcfg := pbft.DefaultConfig()
	pcfg.N, pcfg.F = cfg.N, cfg.F
	pcfg.BatchSize = cfg.Batch
	cluster, err := pbft.NewCluster(cfg.Kind, pcfg, params, cfg.Seed,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		return BFTResult{}, err
	}
	if err := cluster.Start(); err != nil {
		return BFTResult{}, err
	}
	tr := benchTracer(cfg.Trace, fmt.Sprintf("PBFT %s N=%d clients=%d payload=%dB seed=%d",
		cfg.Kind, cfg.N, clients, cfg.Payload, cfg.Seed))
	cluster.SetTracer(tr)
	cls := make([]*pbft.Client, clients)
	for i := range cls {
		if cls[i], err = cluster.AddClient(); err != nil {
			return BFTResult{}, err
		}
	}
	startSamplers(tr, cluster.Loop, cluster.Meshes, nil)

	value := string(make([]byte, cfg.Payload))
	res := runClosedLoop(cluster.Loop, tr, clients, cfg.Requests, cfg.Warmup, cfg.Window,
		func(ci, idx int) []byte {
			return kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("bench-%d-%06d", ci, idx), value)
		},
		func(ci int, op []byte, done func([]byte)) string { return cls[ci].Invoke(op, done) })
	if want := (cfg.Requests + cfg.Warmup) * clients; res.done != want {
		return BFTResult{}, fmt.Errorf("bench: completed %d of %d requests", res.done, want)
	}
	return BFTResult{
		Kind:           cfg.Kind,
		Payload:        cfg.Payload,
		MeanLat:        res.rec.Mean(),
		P99Lat:         res.rec.Percentile(99),
		Throughput:     metrics.Throughput(res.rec.Count(), res.endAt-res.startAt),
		SendFaults:     cluster.SendFaults(),
		Breakdown:      tr.Summary(),
		PeakQueueBytes: cluster.PeakQueueBytes(),
	}, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E5 (replicated-system agreement over both transports).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E5",
		Title:  "BFT agreement latency and throughput (PBFT over RUBIN vs NIO)",
		Figure: "paper Section VI (stated future work)",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE5(rc)
			return cfg, err
		},
		Run: runE5,
	})
}

// e5SeriesNames label the replicated system on each backend.
var e5SeriesNames = map[transport.Kind]string{
	transport.KindRDMA: "Reptor+RUBIN",
	transport.KindTCP:  "Reptor+NIO",
}

func resolveE5(rc RunContext) (BFTConfig, map[string]string, error) {
	base := DefaultBFTConfig(transport.KindRDMA, 0)
	base.Seed = rc.Seed
	payloadsKB := []int{1, 4, 16}
	if rc.Quick {
		payloadsKB = []int{1}
		base.Requests, base.Warmup = 60, 10
	}
	var err error
	if payloadsKB, err = rc.intsKnob("payloads_kb", payloadsKB); err != nil {
		return base, nil, err
	}
	if base.N, err = rc.intKnob("n", base.N); err != nil {
		return base, nil, err
	}
	if base.F, err = rc.intKnob("f", (base.N-1)/3); err != nil {
		return base, nil, err
	}
	if base.Requests, err = rc.intKnob("requests", base.Requests); err != nil {
		return base, nil, err
	}
	if base.Warmup, err = rc.intKnob("warmup", base.Warmup); err != nil {
		return base, nil, err
	}
	if base.Window, err = rc.intKnob("window", base.Window); err != nil {
		return base, nil, err
	}
	if base.Batch, err = rc.intKnob("batch", base.Batch); err != nil {
		return base, nil, err
	}
	if base.Clients, err = rc.intKnob("clients", base.Clients); err != nil {
		return base, nil, err
	}
	cfg := map[string]string{
		"payloads_kb": formatInts(payloadsKB),
		"n":           strconv.Itoa(base.N),
		"f":           strconv.Itoa(base.F),
		"requests":    strconv.Itoa(base.Requests),
		"warmup":      strconv.Itoa(base.Warmup),
		"window":      strconv.Itoa(base.Window),
		"batch":       strconv.Itoa(base.Batch),
		"clients":     strconv.Itoa(base.Clients),
	}
	return base, cfg, nil
}

func runE5(rc RunContext, res *metrics.Result) error {
	base, cfg, err := resolveE5(rc)
	if err != nil {
		return err
	}
	base.Trace = rc.Trace
	payloadsKB, err := ParseInts(cfg["payloads_kb"])
	if err != nil {
		return err
	}
	res.SetConfig("cluster", base.Label())
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		name := e5SeriesNames[kind]
		mean := res.AddSeries(name, metrics.MetricLatencyMean, "us", string(kind), "payload_kb")
		p99 := res.AddSeries(name, metrics.MetricLatencyP99, "us", string(kind), "payload_kb")
		tput := res.AddSeries(name, metrics.MetricThroughput, "req/s", string(kind), "payload_kb")
		faults := res.AddSeries(name, metrics.MetricSendFaults, "count", string(kind), "payload_kb")
		for _, kb := range payloadsKB {
			c := base
			c.Kind = kind
			c.Payload = kb << 10
			r, err := RunBFT(c, rc.Model)
			if err != nil {
				return err
			}
			mean.Add(float64(kb), r.MeanLat.Micros())
			p99.Add(float64(kb), r.P99Lat.Micros())
			tput.Add(float64(kb), r.Throughput)
			faults.Add(float64(kb), float64(r.SendFaults))
		}
	}
	return nil
}
