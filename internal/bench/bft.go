package bench

import (
	"fmt"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// BFTConfig parameterizes the fully-replicated-system evaluation (the
// paper's stated future work, experiment E5): a 3F+1 PBFT cluster ordering
// client requests over either transport stack.
type BFTConfig struct {
	Kind     transport.Kind
	Payload  int // request operation size
	Requests int // measured requests
	Warmup   int
	Window   int // client-side outstanding requests
	Batch    int // PBFT batch size
	N, F     int
	Seed     int64
}

// DefaultBFTConfig returns the 4-replica, f=1 setup.
func DefaultBFTConfig(kind transport.Kind, payload int) BFTConfig {
	return BFTConfig{
		Kind: kind, Payload: payload,
		Requests: 150, Warmup: 20, Window: 16, Batch: 8,
		N: 4, F: 1, Seed: 1,
	}
}

// BFTResult is one measurement point of the replicated system.
type BFTResult struct {
	Kind       transport.Kind
	Payload    int
	MeanLat    sim.Time // client-observed request latency
	P99Lat     sim.Time
	Throughput float64 // requests per second
	SendFaults uint64  // delivery failures surfaced by msgnet across replicas
}

// RunBFT measures agreement latency and throughput of the full replicated
// system for one configuration.
func RunBFT(cfg BFTConfig, params model.Params) (BFTResult, error) {
	pcfg := pbft.DefaultConfig()
	pcfg.N, pcfg.F = cfg.N, cfg.F
	pcfg.BatchSize = cfg.Batch
	cluster, err := pbft.NewCluster(cfg.Kind, pcfg, params, cfg.Seed,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		return BFTResult{}, err
	}
	if err := cluster.Start(); err != nil {
		return BFTResult{}, err
	}
	client, err := cluster.AddClient()
	if err != nil {
		return BFTResult{}, err
	}

	loop := cluster.Loop
	rec := metrics.NewRecorder()
	value := string(make([]byte, cfg.Payload))
	total := cfg.Requests + cfg.Warmup
	sent, done := 0, 0
	var startAt, endAt sim.Time

	var sendOne func()
	sendOne = func() {
		if sent == cfg.Warmup {
			startAt = loop.Now()
		}
		idx := sent
		sent++
		t0 := loop.Now()
		op := kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("bench-%06d", idx), value)
		client.Invoke(op, func([]byte) {
			done++
			if done > cfg.Warmup {
				rec.Record(loop.Now() - t0)
				endAt = loop.Now()
			}
			if sent < total {
				sendOne()
			}
		})
	}
	loop.Post(func() {
		for i := 0; i < cfg.Window && sent < total; i++ {
			sendOne()
		}
	})
	loop.Run()
	if done != total {
		return BFTResult{}, fmt.Errorf("bench: completed %d of %d requests", done, total)
	}
	return BFTResult{
		Kind:       cfg.Kind,
		Payload:    cfg.Payload,
		MeanLat:    rec.Mean(),
		P99Lat:     rec.Percentile(99),
		Throughput: metrics.Throughput(rec.Count(), endAt-startAt),
		SendFaults: cluster.SendFaults(),
	}, nil
}

// BFTTables sweeps both transports over the payload list and returns the
// agreement latency (µs) and throughput (req/s) tables of experiment E5,
// plus the total delivery failures surfaced by msgnet across all runs —
// nonzero faults in a fault-free sweep indicate a transport regression.
func BFTTables(payloadsKB []int, params model.Params) (latency, throughput *metrics.Table, sendFaults uint64, err error) {
	latency = metrics.NewTable("E5: BFT agreement latency (4 replicas, f=1)", "payload_kb", "latency µs")
	throughput = metrics.NewTable("E5: BFT throughput (4 replicas, f=1)", "payload_kb", "req/s")
	names := map[transport.Kind]string{transport.KindRDMA: "Reptor+RUBIN", transport.KindTCP: "Reptor+NIO"}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		ls := latency.AddSeries(names[kind])
		ts := throughput.AddSeries(names[kind])
		for _, kb := range payloadsKB {
			res, err := RunBFT(DefaultBFTConfig(kind, kb<<10), params)
			if err != nil {
				return nil, nil, 0, err
			}
			ls.Add(float64(kb), res.MeanLat.Micros())
			ts.Add(float64(kb), res.Throughput)
			sendFaults += res.SendFaults
		}
	}
	return latency, throughput, sendFaults, nil
}
