package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/obs"
)

// RunContext carries everything an experiment run is parameterized by:
// the simulation seed, the calibrated cost model, a quick/full switch, and
// experiment-specific knob overrides. The zero Knobs map means "defaults";
// Quick shrinks sweeps and message counts for CI smoke runs while keeping
// every code path exercised.
type RunContext struct {
	Seed  int64
	Quick bool
	Model model.Params
	// Knobs overrides experiment-specific parameters by name (the knob
	// names of each experiment are listed in docs/EXPERIMENTS.md and
	// echoed into Result.Config). Unknown knobs are rejected by Run.
	Knobs map[string]string
	// Trace, when non-nil, is the shared span tracer of a -trace suite
	// run: every measurement run records its span tree and time-series
	// samples into it for Chrome-trace export. It is not a knob and is
	// not echoed into Result.Config — with Trace nil the experiments
	// still aggregate the breakdown_* series through run-local tracers.
	Trace *obs.Tracer
}

// DefaultRunContext returns the standard full-fidelity context: seed 1 and
// the calibrated default cost model.
func DefaultRunContext() RunContext {
	return RunContext{Seed: 1, Model: model.Default()}
}

// knob returns the override for name, or def.
func (rc RunContext) knob(name, def string) string {
	if v, ok := rc.Knobs[name]; ok {
		return v
	}
	return def
}

// intKnob parses an integer knob.
func (rc RunContext) intKnob(name string, def int) (int, error) {
	v, ok := rc.Knobs[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("bench: knob %s=%q: %v", name, v, err)
	}
	return n, nil
}

// intsKnob parses a comma-separated positive integer list knob.
func (rc RunContext) intsKnob(name string, def []int) ([]int, error) {
	return rc.listKnob(name, def, 1)
}

// nonNegIntsKnob parses a comma-separated non-negative integer list knob
// — zero is meaningful here (a uniform skew, an all-write mix).
func (rc RunContext) nonNegIntsKnob(name string, def []int) ([]int, error) {
	return rc.listKnob(name, def, 0)
}

// listKnob parses an integer-list knob with a lower bound per element.
func (rc RunContext) listKnob(name string, def []int, min int) ([]int, error) {
	v, ok := rc.Knobs[name]
	if !ok {
		return def, nil
	}
	out, err := parseInts(v, min)
	if err != nil {
		return nil, fmt.Errorf("bench: knob %s: %v", name, err)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of positive integers (the
// format of payload/size-sweep flags and knobs).
func ParseInts(s string) ([]int, error) { return parseInts(s, 1) }

// parseInts parses a comma-separated integer list with a lower bound.
func parseInts(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// formatInts renders an integer list the way knobs encode it.
func formatInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// Experiment is one registered entry of the benchmark suite. Every
// experiment E1–E9 registers itself from its defining file's init, so any
// binary importing internal/bench sees the full suite.
type Experiment struct {
	// Name is the registry key: "E1".."E9".
	Name string
	// Title is the one-line human description.
	Title string
	// Figure maps the experiment to the paper figure/section (or the
	// follow-up work) it reproduces.
	Figure string
	// Params resolves the effective knob values under rc — exactly the
	// set of accepted knob names (Run rejects any other), echoed into
	// Result.Config so a stored file documents its own run.
	Params func(rc RunContext) (map[string]string, error)
	// Run executes the experiment and fills res with series; the registry
	// has already populated identity, seed and the knob echo. Run may add
	// derived config entries (e.g. E5's "cluster" label) on top.
	Run func(rc RunContext, res *metrics.Result) error
}

var registry = map[string]Experiment{}

// Register adds an experiment to the registry; it panics on duplicate or
// malformed registrations (these are programmer errors wired at init).
func Register(e Experiment) {
	if e.Name == "" || e.Title == "" || e.Figure == "" || e.Params == nil || e.Run == nil {
		panic(fmt.Sprintf("bench: incomplete experiment registration %+v", e))
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate experiment %s", e.Name))
	}
	registry[e.Name] = e
}

// Experiments returns all registered experiments sorted by name (numeric
// suffix order: E1..E10).
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(out[i].Name, "E"))
		nj, _ := strconv.Atoi(strings.TrimPrefix(out[j].Name, "E"))
		return ni != nj && ni < nj || ni == nj && out[i].Name < out[j].Name
	})
	return out
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Run executes one experiment under the given context and returns its
// validated machine-readable result.
func Run(name string, rc RunContext) (*metrics.Result, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", name, knownNames())
	}
	cfg, err := e.Params(rc)
	if err != nil {
		return nil, err
	}
	for k := range rc.Knobs {
		if _, known := cfg[k]; !known {
			return nil, fmt.Errorf("bench: %s: unknown knob %q (have %s)", name, k, knownKnobs(cfg))
		}
	}
	res := metrics.NewResult(e.Name, e.Title, e.Figure, rc.Seed, rc.Quick)
	for k, v := range cfg {
		res.SetConfig(k, v)
	}
	if err := e.Run(rc, res); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	if err := res.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s produced invalid result: %w", name, err)
	}
	return res, nil
}

func knownNames() string {
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ",")
}

func knownKnobs(cfg map[string]string) string {
	var names []string
	for k := range cfg {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
