package bench

import (
	"bytes"
	"testing"

	"rubin/internal/model"
	"rubin/internal/transport"
)

// quickStateSize shrinks the prefill so a single run is cheap while the
// crash/restart arc and both transfer modes stay exercised.
func quickStateSize(kind transport.Kind, full bool) StateSizeConfig {
	cfg := DefaultStateSizeConfig(kind)
	cfg.Prefill = 1000
	cfg.Full = full
	return cfg
}

// TestStateSizeRecoveryBothModes asserts the E12 arc completes in both
// transfer modes on both transports: the restarted replica adopts a
// checkpoint, catches up, and commits resume — with zero transfer
// rejections on a fault-free network.
func TestStateSizeRecoveryBothModes(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		for _, full := range []bool{false, true} {
			r, err := RunStateSize(quickStateSize(kind, full), model.Default())
			if err != nil {
				t.Errorf("%s full=%v: %v", kind, full, err)
				continue
			}
			if r.StateTransfers == 0 || r.Recovery <= 0 {
				t.Errorf("%s full=%v: no recovery (%+v)", kind, full, r)
			}
			if r.StateRejects != 0 {
				t.Errorf("%s full=%v: %d transfer rejections on a clean network", kind, full, r.StateRejects)
			}
			if r.SteadyCheckpoints == 0 || r.SteadyCheckpointBytes == 0 {
				t.Errorf("%s full=%v: no steady checkpoints measured", kind, full)
			}
		}
	}
}

// TestStateSizePartialBeatsFull asserts the headline comparison at one
// prefill size: the partial path serves fewer transfer bytes and takes
// checkpoints with less steady serialization than the full baseline.
func TestStateSizePartialBeatsFull(t *testing.T) {
	partial, err := RunStateSize(quickStateSize(transport.KindTCP, false), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunStateSize(quickStateSize(transport.KindTCP, true), model.Default())
	if err != nil {
		t.Fatal(err)
	}
	if partial.TransferBytes >= full.TransferBytes {
		t.Errorf("partial transfer served %d bytes, full served %d", partial.TransferBytes, full.TransferBytes)
	}
	if partial.SteadyCheckpointBytes >= full.SteadyCheckpointBytes {
		t.Errorf("partial steady checkpoint %d bytes, full %d", partial.SteadyCheckpointBytes, full.SteadyCheckpointBytes)
	}
}

// TestStateSizeDeterministic asserts a full E12 registry run (quick
// caps) marshals byte-identically across repetitions — the property the
// checked-in BENCH_E12.json and its pin test rely on.
func TestStateSizeDeterministic(t *testing.T) {
	run := func() []byte {
		rc := DefaultRunContext()
		rc.Quick = true
		rc.Knobs = map[string]string{"prefills": "500"}
		res, err := Run("E12", rc)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := res.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("E12 not byte-deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
