package bench

import (
	"strconv"
	"testing"

	"rubin/internal/auth"
	"rubin/internal/metrics"
	"rubin/internal/msgnet"
	"rubin/internal/sim"
)

// Experiment ALLOC audits the hot-path efficiency work: it measures the
// steady-state heap allocations of one operation on each of the three
// per-message layers — a msgnet Peer.Send drained to the substrate, an
// auth MAC/Verify/Authenticate, and a sim timer armed and fired — via
// testing.AllocsPerRun after warming every pool to its steady footprint.
// The numbers are properties of the code, not the machine, so the result
// file doubles as a regression baseline: the root test
// TestAllocRegressionCheckedIn re-measures in process and fails when a
// layer's allocs/op grow past the checked-in curve.
//
// Quick mode shrinks the AllocsPerRun iteration count but keeps every
// sweep point, so quick and full runs are point-for-point comparable.

// allocRuns returns the AllocsPerRun iteration count under rc.
func allocRuns(rc RunContext) int {
	if rc.Quick {
		return 60
	}
	return 400
}

// authAllocsPerOp measures the keyring hot paths of an n-replica group:
// MAC and Verify against one peer, and a full Authenticate vector.
func authAllocsPerOp(runs, n, payload int) (mac, verify, authn float64) {
	rings := auth.GenerateKeyrings(n, 1)
	msg := make([]byte, payload)
	tag := make([]byte, 0, auth.MACSize)
	for i := 0; i < 8; i++ { // warm the lazy per-peer HMAC states
		tag = append(tag[:0], rings[0].MAC(1, msg)...)
		rings[1].Verify(0, msg, tag)
		_ = rings[0].Authenticate(msg)
	}
	mac = testing.AllocsPerRun(runs, func() { _ = rings[0].MAC(1, msg) })
	verify = testing.AllocsPerRun(runs, func() { rings[1].Verify(0, msg, tag) })
	authn = testing.AllocsPerRun(runs, func() { _ = rings[0].Authenticate(msg) })
	return mac, verify, authn
}

// simTimerAllocsPerOp measures arming plus firing one timer, and arming
// plus cancelling one, against a heap already holding pending parked
// events (the realistic replica steady state: request timers, heartbeats
// and batch deadlines all outstanding at once).
func simTimerAllocsPerOp(runs, pending int) (fire, cancel float64) {
	loop := sim.NewLoop(1)
	park := sim.Time(1) << 40 // far future: parked events never run
	for i := 0; i < pending; i++ {
		loop.At(park, func() {})
	}
	var at sim.Time
	fireOne := func() {
		at += 2
		loop.At(at, func() {})
		loop.RunUntil(at)
	}
	cancelOne := func() {
		at += 2
		loop.At(at, func() {}).Cancel()
	}
	for i := 0; i < 64; i++ { // warm the event free list
		fireOne()
		cancelOne()
	}
	fire = testing.AllocsPerRun(runs, fireOne)
	cancel = testing.AllocsPerRun(runs, cancelOne)
	return fire, cancel
}

// ---------------------------------------------------------------------------
// Registry entry: ALLOC (steady-state allocations per hot-path op).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "ALLOC",
		Title:  "Steady-state heap allocations per hot-path operation (msgnet send, auth MAC, sim timers)",
		Figure: "beyond the paper: hot-path efficiency audit",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveAlloc(rc)
			return cfg, err
		},
		Run: runAlloc,
	})
}

// allocSweeps bundles the resolved sweep axes of one ALLOC run.
type allocSweeps struct {
	runs     int
	wholes   []int // whole-frame Send payload bytes (<= one transport frame)
	chunked  []int // chunked Send payload bytes (> one transport frame)
	replicas []int // keyring group sizes
	pending  []int // parked timers behind the measured one
}

func resolveAlloc(rc RunContext) (allocSweeps, map[string]string, error) {
	s := allocSweeps{
		runs:     allocRuns(rc),
		wholes:   []int{256, 4096, 65536},
		chunked:  []int{1 << 20, 4 << 20},
		replicas: []int{4, 7, 16},
		pending:  []int{1, 64, 1024},
	}
	var err error
	if s.runs, err = rc.intKnob("runs", s.runs); err != nil {
		return s, nil, err
	}
	if s.wholes, err = rc.intsKnob("whole_payloads", s.wholes); err != nil {
		return s, nil, err
	}
	if s.chunked, err = rc.intsKnob("chunked_payloads", s.chunked); err != nil {
		return s, nil, err
	}
	if s.replicas, err = rc.intsKnob("replicas", s.replicas); err != nil {
		return s, nil, err
	}
	if s.pending, err = rc.intsKnob("pending", s.pending); err != nil {
		return s, nil, err
	}
	cfg := map[string]string{
		"runs":             strconv.Itoa(s.runs),
		"whole_payloads":   formatInts(s.wholes),
		"chunked_payloads": formatInts(s.chunked),
		"replicas":         formatInts(s.replicas),
		"pending":          formatInts(s.pending),
	}
	return s, cfg, nil
}

func runAlloc(rc RunContext, res *metrics.Result) error {
	s, _, err := resolveAlloc(rc)
	if err != nil {
		return err
	}
	const unit = "allocs/op"

	whole := res.AddSeries("msgnet send whole", metrics.MetricAllocsPerOp, unit, "", "payload_bytes")
	for _, n := range s.wholes {
		whole.Add(float64(n), msgnet.SendAllocsPerOp(s.runs, n))
	}
	chunked := res.AddSeries("msgnet send chunked", metrics.MetricAllocsPerOp, unit, "", "payload_bytes")
	for _, n := range s.chunked {
		chunked.Add(float64(n), msgnet.SendAllocsPerOp(s.runs, n))
	}

	macS := res.AddSeries("auth mac", metrics.MetricAllocsPerOp, unit, "", "replicas")
	verifyS := res.AddSeries("auth verify", metrics.MetricAllocsPerOp, unit, "", "replicas")
	authnS := res.AddSeries("auth authenticate", metrics.MetricAllocsPerOp, unit, "", "replicas")
	for _, n := range s.replicas {
		mac, verify, authn := authAllocsPerOp(s.runs, n, 1<<10)
		macS.Add(float64(n), mac)
		verifyS.Add(float64(n), verify)
		authnS.Add(float64(n), authn)
	}

	fireS := res.AddSeries("sim timer arm+fire", metrics.MetricAllocsPerOp, unit, "", "pending_timers")
	cancelS := res.AddSeries("sim timer arm+cancel", metrics.MetricAllocsPerOp, unit, "", "pending_timers")
	for _, n := range s.pending {
		fire, cancel := simTimerAllocsPerOp(s.runs, n)
		fireS.Add(float64(n), fire)
		cancelS.Add(float64(n), cancel)
	}

	res.SetConfig("method", "testing.AllocsPerRun after pool warmup; integer per-op steady state")
	return nil
}
