package bench

import (
	"testing"

	"rubin/internal/model"
	"rubin/internal/transport"
)

// quickEcho shortens the runs for test time while keeping the shapes.
func quickEcho(payload int) EchoConfig {
	cfg := DefaultEchoConfig(payload)
	cfg.Messages = 200
	cfg.Warmup = 20
	return cfg
}

func runStack(t *testing.T, stack Fig3Stack, payload int) EchoResult {
	t.Helper()
	res, err := RunFig3(stack, quickEcho(payload), model.Default())
	if err != nil {
		t.Fatalf("RunFig3(%s, %d): %v", stack, payload, err)
	}
	if res.MeanRT <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result for %s/%d: %+v", stack, payload, res)
	}
	return res
}

// TestFig3LatencyOrdering asserts the headline result of Figure 3a: at
// every payload, one-sided Read/Write is fastest, Send/Recv beats TCP,
// and the RUBIN channel beats TCP.
func TestFig3LatencyOrdering(t *testing.T) {
	for _, kb := range []int{1, 4, 16, 64, 100} {
		payload := kb << 10
		tcp := runStack(t, StackTCP, payload)
		sr := runStack(t, StackSendRecv, payload)
		rw := runStack(t, StackOneSided, payload)
		ch := runStack(t, StackChannel, payload)
		if rw.MeanRT >= sr.MeanRT {
			t.Errorf("%dKB: Read/Write (%v) should beat Send/Recv (%v)", kb, rw.MeanRT, sr.MeanRT)
		}
		if sr.MeanRT >= tcp.MeanRT {
			t.Errorf("%dKB: Send/Recv (%v) should beat TCP (%v)", kb, sr.MeanRT, tcp.MeanRT)
		}
		if ch.MeanRT >= tcp.MeanRT {
			t.Errorf("%dKB: Channel (%v) should beat TCP (%v)", kb, ch.MeanRT, tcp.MeanRT)
		}
	}
}

// TestFig3ChannelCrossover asserts the selective-signaling effect and the
// receive-copy degradation: the channel beats plain Send/Recv below 16 KB
// and loses to it for large payloads (paper Section V).
func TestFig3ChannelCrossover(t *testing.T) {
	small := 2 << 10
	chS := runStack(t, StackChannel, small)
	srS := runStack(t, StackSendRecv, small)
	if chS.MeanRT >= srS.MeanRT {
		t.Errorf("2KB: channel (%v) should beat Send/Recv (%v) via selective signaling", chS.MeanRT, srS.MeanRT)
	}
	large := 100 << 10
	chL := runStack(t, StackChannel, large)
	srL := runStack(t, StackSendRecv, large)
	if chL.MeanRT <= srL.MeanRT {
		t.Errorf("100KB: channel (%v) should trail Send/Recv (%v) due to the receive copy", chL.MeanRT, srL.MeanRT)
	}
}

// TestFig3ChannelVsTCPBand asserts the paper's 33–43%% improvement band
// (we accept 25–60%% across the sweep; the exact band is reported in
// EXPERIMENTS.md).
func TestFig3ChannelVsTCPBand(t *testing.T) {
	for _, kb := range []int{1, 4, 16, 64, 100} {
		payload := kb << 10
		tcp := runStack(t, StackTCP, payload)
		ch := runStack(t, StackChannel, payload)
		gain := 1 - float64(ch.MeanRT)/float64(tcp.MeanRT)
		if gain < 0.20 || gain > 0.60 {
			t.Errorf("%dKB: channel gain over TCP = %.0f%%, want 20-60%%", kb, gain*100)
		}
	}
}

// TestFig3ReadWriteVsSendRecvFactor asserts the ~46%% advantage of
// one-sided operations over Send/Recv.
func TestFig3ReadWriteVsSendRecvFactor(t *testing.T) {
	for _, kb := range []int{1, 16} {
		payload := kb << 10
		sr := runStack(t, StackSendRecv, payload)
		rw := runStack(t, StackOneSided, payload)
		ratio := float64(rw.MeanRT) / float64(sr.MeanRT)
		if ratio < 0.30 || ratio > 0.70 {
			t.Errorf("%dKB: RW/SR latency ratio = %.2f, want ~0.54 (0.30-0.70)", kb, ratio)
		}
	}
	// At 100 KB both are DMA/wire-bound; one-sided must still not lose.
	sr := runStack(t, StackSendRecv, 100<<10)
	rw := runStack(t, StackOneSided, 100<<10)
	if rw.MeanRT > sr.MeanRT {
		t.Errorf("100KB: RW (%v) should not trail SR (%v)", rw.MeanRT, sr.MeanRT)
	}
}

// TestFig3ThroughputMirrorsLatency asserts Figure 3b's ordering.
func TestFig3ThroughputMirrorsLatency(t *testing.T) {
	for _, kb := range []int{1, 16, 100} {
		payload := kb << 10
		tcp := runStack(t, StackTCP, payload)
		sr := runStack(t, StackSendRecv, payload)
		rw := runStack(t, StackOneSided, payload)
		ch := runStack(t, StackChannel, payload)
		if rw.Throughput <= sr.Throughput {
			t.Errorf("%dKB: RW throughput should exceed SR", kb)
		}
		if ch.Throughput <= tcp.Throughput {
			t.Errorf("%dKB: channel throughput (%.0f) should exceed TCP (%.0f)", kb, ch.Throughput, tcp.Throughput)
		}
	}
}

func quickFig4(payload int) Fig4Config {
	cfg := DefaultFig4Config(payload)
	cfg.Messages = 300
	cfg.Warmup = 50
	return cfg
}

// TestFig4Shape asserts Figure 4: RUBIN's throughput beats the NIO stack
// at every payload, and its latency wins at the sweep's ends (1 KB and
// 100 KB per the paper).
func TestFig4Shape(t *testing.T) {
	for _, kb := range []int{1, 20, 100} {
		payload := kb << 10
		rubinRes, err := RunFig4(transport.KindRDMA, quickFig4(payload), model.Default())
		if err != nil {
			t.Fatalf("fig4 rdma %dKB: %v", kb, err)
		}
		tcpRes, err := RunFig4(transport.KindTCP, quickFig4(payload), model.Default())
		if err != nil {
			t.Fatalf("fig4 tcp %dKB: %v", kb, err)
		}
		if rubinRes.Throughput <= tcpRes.Throughput {
			t.Errorf("%dKB: RUBIN throughput (%.0f) should exceed TCP (%.0f)",
				kb, rubinRes.Throughput, tcpRes.Throughput)
		}
		if kb == 1 || kb == 100 {
			if rubinRes.MeanRT >= tcpRes.MeanRT {
				t.Errorf("%dKB: RUBIN latency (%v) should beat TCP (%v)", kb, rubinRes.MeanRT, tcpRes.MeanRT)
			}
		}
	}
}

// TestBFTAgreementFasterOverRUBIN asserts the end goal (experiment E5):
// the replicated system commits faster over RUBIN than over the NIO stack.
func TestBFTAgreementFasterOverRUBIN(t *testing.T) {
	cfgR := DefaultBFTConfig(transport.KindRDMA, 1<<10)
	cfgR.Requests, cfgR.Warmup = 120, 20
	cfgT := cfgR
	cfgT.Kind = transport.KindTCP
	r, err := RunBFT(cfgR, model.Default())
	if err != nil {
		t.Fatalf("bft rdma: %v", err)
	}
	tc, err := RunBFT(cfgT, model.Default())
	if err != nil {
		t.Fatalf("bft tcp: %v", err)
	}
	if r.MeanLat >= tc.MeanLat {
		t.Errorf("BFT latency over RUBIN (%v) should beat NIO (%v)", r.MeanLat, tc.MeanLat)
	}
	if r.Throughput <= tc.Throughput {
		t.Errorf("BFT throughput over RUBIN (%.0f) should beat NIO (%.0f)", r.Throughput, tc.Throughput)
	}
}

// TestAblationTable asserts the E6 table is complete and sane: every
// variant produces positive latencies, the projected zero-copy receive
// never loses to the copying path, and disabling doorbell batching never
// helps. (Per-mechanism effects — completion counts under selective
// signaling, doorbell cost under batching — are asserted directly in the
// rubin package tests where the counters are visible; end-to-end latency
// deltas can hide in idle thread gaps depending on load alignment.)
func TestAblationTable(t *testing.T) {
	tab, err := AblationTable([]int{2, 32, 100}, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != len(Ablations()) {
		t.Fatalf("table has %d series, want %d", len(tab.Series), len(Ablations()))
	}
	full := tab.Get("full (all optimizations)")
	if full == nil {
		t.Fatal("missing full series")
	}
	for _, s := range tab.Series {
		for _, kb := range []float64{2, 32, 100} {
			v := s.At(kb)
			if !(v > 0) {
				t.Errorf("series %q at %vKB: non-positive latency %v", s.Name, kb, v)
			}
		}
	}
	zc := tab.Get("zero-copy receive (projected)")
	for _, kb := range []float64{2, 32, 100} {
		if zc.At(kb) > full.At(kb)*1.001 {
			t.Errorf("zero-copy receive slower than copying at %vKB: %.2f vs %.2f", kb, zc.At(kb), full.At(kb))
		}
	}
	nb := tab.Get("no doorbell batching")
	if nb.At(2) < full.At(2)*0.95 {
		t.Errorf("disabling batching improved 2KB latency: %.2f vs %.2f", nb.At(2), full.At(2))
	}
}
