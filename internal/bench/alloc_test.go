package bench

import (
	"bytes"
	"testing"

	"rubin/internal/raceflag"
)

// allocTinyKnobs shrink the ALLOC sweeps for test runs: few AllocsPerRun
// iterations, one point per axis. Steady-state allocs/op are integers,
// so fewer iterations measure the same values.
func allocTinyKnobs() map[string]string {
	return map[string]string{
		"runs":             "25",
		"whole_payloads":   "1024",
		"chunked_payloads": "1048576",
		"replicas":         "4",
		"pending":          "16",
	}
}

// TestAllocDeterminism is ALLOC's counterpart of the registry round-trip
// test, kept serial on purpose: AllocsPerRun reads process-global malloc
// counters, so two same-seed runs are only byte-identical when nothing
// else allocates concurrently.
func TestAllocDeterminism(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Seed = 7
	rc.Knobs = allocTinyKnobs()
	first, err := Run("ALLOC", rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run("ALLOC", rc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := first.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two seed-7 ALLOC runs differ:\n%s\nvs\n%s", b1, b2)
	}
}

// TestAllocHeadlineBounds asserts the claims of the hot-path pass on a
// live measurement: whole-frame sends at most 1 alloc/op and MAC/Verify
// and timer arm+fire exactly zero.
func TestAllocHeadlineBounds(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Knobs = allocTinyKnobs()
	res, err := Run("ALLOC", rc)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []struct {
		series string
		max    float64
	}{
		{"msgnet send whole", 1},
		{"msgnet send chunked", 1},
		{"auth mac", 0},
		{"auth verify", 0},
		{"sim timer arm+fire", 0},
		{"sim timer arm+cancel", 0},
	}
	for _, b := range bounds {
		s := res.GetSeries(b.series, "allocs_per_op")
		if s == nil {
			t.Fatalf("missing series %q", b.series)
		}
		for _, p := range s.Points {
			if p.Y > b.max {
				t.Errorf("series %q at x=%v: %.2f allocs/op, want <= %v", b.series, p.X, p.Y, b.max)
			}
		}
	}
}

// TestAllocKnobValidation asserts malformed ALLOC knobs are rejected.
func TestAllocKnobValidation(t *testing.T) {
	rc := DefaultRunContext()
	rc.Quick = true
	rc.Knobs = map[string]string{"runs": "many"}
	if _, err := Run("ALLOC", rc); err == nil {
		t.Error("Run accepted malformed runs knob")
	}
	rc.Knobs = map[string]string{"pending": "0"}
	if _, err := Run("ALLOC", rc); err == nil {
		t.Error("Run accepted pending=0")
	}
}
