package bench

import (
	"fmt"
	"strconv"
	"strings"

	"rubin/internal/auth"
	"rubin/internal/chaos"
	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Experiment E12 extends the E7 fault timeline with a state-size axis:
// every replica carries a cold prefilled store while a hot working set
// keeps committing, a backup crashes and restarts, and the run measures
// what the accumulated state costs — the steady per-checkpoint
// serialization (and its modeled digest pause), the bytes a recovery
// moves, and the time until the restarted replica rejoins — under both
// the incremental/partial machinery and the legacy full-state baseline
// (pbft.Config.FullStateTransfer).
//
// Hot keys are confined to the low Merkle buckets and cold prefill to
// the rest: incremental checkpoints win exactly when updates concentrate
// in a subset of partitions (hot-set/cold-mass separation); a workload
// that sprayed writes uniformly across all 256 buckets would re-dirty
// everything and degrade to the full path — that is the granularity
// tradeoff of partition-level deltas, not a failure of the mechanism.

// stateSizeHotBuckets is the bucket cutoff: workload keys hash below it,
// prefill keys at or above it.
const stateSizeHotBuckets = 8

// StateSizeConfig parameterizes one E12 run.
type StateSizeConfig struct {
	Kind    transport.Kind
	Prefill int   // cold keys preloaded into every replica's store
	Payload int   // value size in bytes for cold and hot keys
	Window  int   // client-side outstanding requests
	Seed    int64 // simulation seed
	Full    bool  // legacy full-snapshot checkpoints + transfer (baseline)
}

// DefaultStateSizeConfig returns the standard E12 single-run setup.
func DefaultStateSizeConfig(kind transport.Kind) StateSizeConfig {
	return StateSizeConfig{Kind: kind, Prefill: 8000, Payload: 64, Window: 8, Seed: 1}
}

// StateSizeResult is one E12 run: one transport, one prefill size, one
// transfer mode.
type StateSizeResult struct {
	Kind       transport.Kind
	Prefill    int
	Full       bool
	StateBytes int // serialized store size at run end

	// Checkpoint cost after the first (base) checkpoint: mean bytes
	// serialized per interval and the modeled digest pause they imply.
	SteadyCheckpoints     uint64
	SteadyCheckpointBytes uint64 // mean per checkpoint
	CheckpointPause       sim.Time

	// Recovery of the restarted backup.
	Recovery       sim.Time // restart -> executed caught up to the group
	TransferBytes  uint64   // state bytes served by all responders
	StateTransfers uint64   // adoptions completed by the restarted replica
	StateRejects   uint64   // corrupted/mismatched transfer rejections (0 here)

	// Client-observed agreement throughput while healthy and while the
	// restarted replica was absorbing state.
	HealthyTput   float64
	RecoveredTput float64
	Committed     int
	Trace         string // deterministic virtual-time fault trace
}

// stateSizeTimeline mirrors E7's crash/recover arc without the
// partition act: traffic, a backup crash, a restart into a large state.
func stateSizeTimeline() (*chaos.Scenario, crashPoints) {
	pts := crashPoints{
		Crash:   300 * sim.Millisecond,
		Restart: 600 * sim.Millisecond,
		End:     1200 * sim.Millisecond,
	}
	s := chaos.NewScenario("E12-state-size").
		Crash(pts.Crash, 3).
		Restart(pts.Restart, 3)
	return s, pts
}

type crashPoints struct {
	Crash, Restart, End sim.Time
}

// stateSizeKeys returns n keys whose Merkle bucket satisfies keep,
// generated deterministically.
func stateSizeKeys(prefix string, n int, keep func(b int) bool) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("%s%07d", prefix, i)
		if keep(kvstore.PartitionKey(k, kvstore.MerkleBuckets)) {
			keys = append(keys, k)
		}
	}
	return keys
}

// RunStateSize executes one E12 configuration.
func RunStateSize(cfg StateSizeConfig, params model.Params) (StateSizeResult, error) {
	if cfg.Prefill < 0 || cfg.Prefill > 1<<20 {
		return StateSizeResult{}, fmt.Errorf("bench: prefill %d out of range [0, %d]", cfg.Prefill, 1<<20)
	}
	if cfg.Payload < 1 || cfg.Payload > 4<<10 {
		return StateSizeResult{}, fmt.Errorf("bench: payload %d out of range [1, %d]", cfg.Payload, 4<<10)
	}
	pcfg := pbft.DefaultConfig()
	pcfg.BatchSize = 4
	pcfg.CheckpointEvery = 8
	pcfg.LogWindow = 128
	pcfg.FullStateTransfer = cfg.Full

	// Every store instance — initial and restarted — starts from the
	// identical cold prefill, modeling a replica that recovers from its
	// durable local checkpoint: the cold partitions match the group's
	// digests, so a partial transfer ships only the hot subtrees, while
	// the legacy baseline re-ships everything regardless.
	coldValue := string(make([]byte, cfg.Payload))
	coldKeys := stateSizeKeys("cold", cfg.Prefill, func(b int) bool { return b >= stateSizeHotBuckets })
	appFactory := func(i int) pbft.Application {
		s := kvstore.New()
		for _, k := range coldKeys {
			s.Execute(kvstore.EncodeOp(kvstore.OpPut, k, coldValue))
		}
		return s
	}
	cluster, err := pbft.NewCluster(cfg.Kind, pcfg, params, cfg.Seed, appFactory)
	if err != nil {
		return StateSizeResult{}, err
	}
	if err := cluster.Start(); err != nil {
		return StateSizeResult{}, err
	}
	client, err := cluster.AddClient()
	if err != nil {
		return StateSizeResult{}, err
	}

	scenario, pts := stateSizeTimeline()
	sched := chaos.Apply(cluster, scenario)
	loop := cluster.Loop
	base := loop.Now()

	// Closed-loop hot-key workload, cycling a bounded working set.
	hotKeys := stateSizeKeys("hot", 64, func(b int) bool { return b < stateSizeHotBuckets })
	value := string(make([]byte, cfg.Payload))
	healthy, recovered := metrics.NewRecorder(), metrics.NewRecorder()
	committed, sent := 0, 0
	var sendOne func()
	sendOne = func() {
		if loop.Now()-base >= pts.End {
			return
		}
		idx := sent
		sent++
		t0 := loop.Now()
		op := kvstore.EncodeOp(kvstore.OpPut, hotKeys[idx%len(hotKeys)], value)
		client.Invoke(op, func([]byte) {
			committed++
			switch at := loop.Now() - base; {
			case at < pts.Crash:
				healthy.Record(loop.Now() - t0)
			case at >= pts.Restart:
				recovered.Record(loop.Now() - t0)
			}
			sendOne()
		})
	}
	loop.Post(func() {
		for i := 0; i < cfg.Window; i++ {
			sendOne()
		}
	})

	// Recovery probe: from the restart instant, poll virtual time until
	// the restarted replica has adopted a checkpoint and executed past
	// the group's position at restart. Polling on the deterministic loop
	// keeps the measurement byte-reproducible.
	var recovery sim.Time = -1
	loop.At(base+pts.Restart, func() {
		target := cluster.Replicas[0].Executed()
		var poll func()
		poll = func() {
			rep := cluster.Replicas[3]
			if rep.StateTransfers() > 0 && rep.Executed() >= target {
				recovery = loop.Now() - (base + pts.Restart)
				return
			}
			if loop.Now()-base < pts.End {
				loop.After(250*sim.Microsecond, poll)
			}
		}
		poll()
	})
	loop.RunUntil(base + pts.End)

	if err := sched.Err(); err != nil {
		return StateSizeResult{}, err
	}
	if recovery < 0 {
		return StateSizeResult{}, fmt.Errorf("bench: E12 replica never recovered (prefill=%d full=%v %s)", cfg.Prefill, cfg.Full, cfg.Kind)
	}
	if healthy.Count() == 0 || recovered.Count() == 0 {
		return StateSizeResult{}, fmt.Errorf("bench: E12 phase committed nothing (prefill=%d full=%v %s)", cfg.Prefill, cfg.Full, cfg.Kind)
	}
	var served uint64
	for _, rep := range cluster.Replicas {
		served += rep.StateBytesServed()
	}
	cpCount, cpBytes := cluster.Replicas[0].CheckpointSteadyStats()
	var meanCp uint64
	var pause sim.Time
	if cpCount > 0 {
		meanCp = cpBytes / cpCount
		pause = auth.DigestCost(params.Crypto, int(meanCp))
	}
	return StateSizeResult{
		Kind:                  cfg.Kind,
		Prefill:               cfg.Prefill,
		Full:                  cfg.Full,
		StateBytes:            len(cluster.Apps[0].(*kvstore.Store).MarshalState()),
		SteadyCheckpoints:     cpCount,
		SteadyCheckpointBytes: meanCp,
		CheckpointPause:       pause,
		Recovery:              recovery,
		TransferBytes:         served,
		StateTransfers:        cluster.Replicas[3].StateTransfers(),
		StateRejects:          cluster.Replicas[3].StateRejects(),
		HealthyTput:           metrics.Throughput(healthy.Count(), pts.Crash),
		RecoveredTput:         metrics.Throughput(recovered.Count(), pts.End-pts.Restart),
		Committed:             committed,
		Trace:                 sched.TraceString(),
	}, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E12 (checkpoint and recovery cost vs state size).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E12",
		Title:  "Checkpoint and recovery cost vs state size (incremental + partial transfer vs full)",
		Figure: "beyond the paper: state-transfer amplification study",
		Params: func(rc RunContext) (map[string]string, error) {
			_, _, cfg, err := resolveE12(rc)
			return cfg, err
		},
		Run: runE12,
	})
}

func resolveE12(rc RunContext) ([]int, StateSizeConfig, map[string]string, error) {
	base := DefaultStateSizeConfig(transport.KindRDMA)
	base.Seed = rc.Seed
	prefills := []int{2000, 8000, 32000}
	if rc.Quick {
		prefills = []int{500, 2000}
	}
	var err error
	if prefills, err = rc.intsKnob("prefills", prefills); err != nil {
		return nil, base, nil, err
	}
	if base.Payload, err = rc.intKnob("payload", base.Payload); err != nil {
		return nil, base, nil, err
	}
	if base.Window, err = rc.intKnob("window", base.Window); err != nil {
		return nil, base, nil, err
	}
	cfg := map[string]string{
		"prefills": formatInts(prefills),
		"payload":  strconv.Itoa(base.Payload),
		"window":   strconv.Itoa(base.Window),
	}
	return prefills, base, cfg, nil
}

func runE12(rc RunContext, res *metrics.Result) error {
	prefills, base, _, err := resolveE12(rc)
	if err != nil {
		return err
	}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		for _, full := range []bool{false, true} {
			mode := "partial"
			if full {
				mode = "full"
			}
			name := mode + " " + string(kind)
			tr := string(kind)
			recoverS := res.AddSeries(name, metrics.MetricRecoveryTime, "us", tr, "prefill_keys")
			cpBytesS := res.AddSeries(name, metrics.MetricCheckpointBytes, "bytes", tr, "prefill_keys")
			pauseS := res.AddSeries(name, metrics.MetricCheckpointPause, "us", tr, "prefill_keys")
			xferS := res.AddSeries(name, metrics.MetricTransferBytes, "bytes", tr, "prefill_keys")
			stateS := res.AddSeries(name, metrics.MetricStateBytes, "bytes", tr, "prefill_keys")
			tputS := res.AddSeries(name, metrics.MetricThroughput, "req/s", tr, "prefill_keys")
			dipS := res.AddSeries(name, metrics.MetricThroughputDip, "ratio", tr, "prefill_keys")
			for _, prefill := range prefills {
				cfg := base
				cfg.Kind = kind
				cfg.Full = full
				cfg.Prefill = prefill
				r, err := RunStateSize(cfg, rc.Model)
				if err != nil {
					return err
				}
				if r.StateRejects != 0 {
					return fmt.Errorf("bench: E12 rejected %d transfers on a fault-free network", r.StateRejects)
				}
				x := float64(prefill)
				recoverS.Add(x, r.Recovery.Micros())
				cpBytesS.Add(x, float64(r.SteadyCheckpointBytes))
				pauseS.Add(x, r.CheckpointPause.Micros())
				xferS.Add(x, float64(r.TransferBytes))
				stateS.Add(x, float64(r.StateBytes))
				tputS.Add(x, r.HealthyTput)
				dipS.Add(x, r.RecoveredTput/r.HealthyTput)
				res.SetNote(fmt.Sprintf("trace[%s prefill=%d]", name, prefill), r.Trace)
			}
		}
	}
	res.SetConfig("cluster", fmt.Sprintf("%d replicas, f=%d", pbft.DefaultConfig().N, pbft.DefaultConfig().F))
	res.SetConfig("modes", "partial=incremental checkpoints + Merkle partial transfer, full=legacy whole-snapshot baseline")
	return nil
}

// Render formats one E12 run as text.
func (r StateSizeResult) Render() string {
	mode := "partial"
	if r.Full {
		mode = "full"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# E12: state-size run (%s, %s, %d cold keys, %d-byte state)\n",
		r.Kind, mode, r.Prefill, r.StateBytes)
	fmt.Fprintf(&b, "steady checkpoints: %d x %d bytes (pause %v)\n",
		r.SteadyCheckpoints, r.SteadyCheckpointBytes, r.CheckpointPause)
	fmt.Fprintf(&b, "recovery: %v after %d transfer bytes (%d adoptions)\n",
		r.Recovery, r.TransferBytes, r.StateTransfers)
	fmt.Fprintf(&b, "throughput: healthy %.0f req/s, recovered %.0f req/s (%d committed)\n",
		r.HealthyTput, r.RecoveredTput, r.Committed)
	return b.String()
}
