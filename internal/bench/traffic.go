package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/obs"
	"rubin/internal/pbft"
	"rubin/internal/reptor"
	"rubin/internal/sim"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// TrafficConfig parameterizes one point of experiment E9: a workload
// (key skew, operation mix, arrival model) driven against either a PBFT
// cluster (Instances == 0) or a Reptor COP group (Instances == K) over
// one transport backend. Logical users are multiplexed over a bounded
// pool of client connections, every operation is recorded, and the
// history is checked for per-key register linearizability — a failed
// check fails the run, so every E9 point doubles as a correctness proof.
type TrafficConfig struct {
	Kind      transport.Kind
	Instances int // 0 = plain PBFT cluster; K >= 1 = Reptor COP group
	N, F      int
	Users     int // logical users
	Conns     int // client connections the users share
	Keys      int // keyspace size
	ValueSize int // written-value padding, bytes
	Ops       int // measured operations
	Warmup    int // unmeasured leading operations
	Mix       workload.Mix
	Zipf100   int // Zipf theta ×100 over the keyspace; 0 = uniform
	Arrival   workload.Arrival
	Seed      int64
	// BatchSize, when positive, overrides the protocol's default
	// agreement batch size (E11 sweeps it; zero keeps the default).
	BatchSize int
	// ReadFastPath enables the PBFT read-only optimization: single-key
	// reads are multicast and accepted on 2F+1 matching tentative
	// replies, falling back to the ordered path after ReadTimeout
	// (default 2ms). Off by default — E9 points are unaffected.
	ReadFastPath bool
	ReadTimeout  sim.Time
	// Trace, when non-nil, records spans and samples into the shared
	// -trace tracer; nil still aggregates the latency breakdown.
	Trace *obs.Tracer
}

// TrafficResult is one measurement point of E9.
type TrafficResult struct {
	P50, P90, P99, P999 sim.Time // latency percentiles, arrival to reply
	Mean                sim.Time // mean latency (the breakdown partitions it)
	Goodput             float64  // measured completions per second
	Completed           int
	HistoryOps          int
	// Breakdown attributes the mean latency to protocol phases;
	// Breakdown.Total equals Mean up to integer-mean rounding.
	Breakdown obs.Summary
	// PeakQueueBytes is the deepest msgnet send queue any replica saw.
	PeakQueueBytes int
	// COP-only executor health counters (zero for plain PBFT): heartbeat
	// fill slots summed across nodes, the largest adaptive heartbeat delay
	// any instance backed off to, and the deepest committed-but-unmerged
	// backlog any node's executor held at once.
	HeartbeatSlots    uint64
	HeartbeatDelayMax sim.Time
	PeakBacklog       int
	// Read fast-path counters summed across client connections (zero
	// unless ReadFastPath is set): reads served by 2F+1 matching
	// tentative replies, and reads that timed out or mismatched and
	// retried through the ordered path.
	FastReads     uint64
	FastFallbacks uint64
	// FastOps is the number of history operations the oracle saw tagged
	// as fast-path-served; the checkers treat them identically.
	FastOps int
}

// RunTraffic drives one workload configuration to completion, verifies
// the run was healthy (no send faults, no stalled executor, no dangling
// invocations) and linearizable, and returns the latency percentiles
// and goodput.
func RunTraffic(cfg TrafficConfig, params model.Params) (TrafficResult, error) {
	var chooser workload.KeyChooser = workload.NewUniform(cfg.Keys)
	if cfg.Zipf100 > 0 {
		chooser = workload.NewZipf(cfg.Keys, float64(cfg.Zipf100)/100)
	}
	wcfg := workload.Config{
		Users: cfg.Users, Conns: cfg.Conns,
		Ops: cfg.Ops, Warmup: cfg.Warmup,
		Keys: chooser, Mix: cfg.Mix, Arrival: cfg.Arrival,
		ValueSize: cfg.ValueSize, Seed: cfg.Seed,
	}

	sysLabel := "PBFT"
	if cfg.Instances > 0 {
		sysLabel = fmt.Sprintf("COP-%d", cfg.Instances)
	}
	tr := benchTracer(cfg.Trace, fmt.Sprintf("E9 %s %s N=%d users=%d conns=%d seed=%d",
		sysLabel, cfg.Kind, cfg.N, cfg.Users, cfg.Conns, cfg.Seed))

	readTimeout := cfg.ReadTimeout
	if readTimeout <= 0 {
		readTimeout = 2 * sim.Millisecond
	}

	var loop *sim.Loop
	var invoke workload.Invoker
	var finish func() error
	var health func(r *TrafficResult)
	var wireHooks func(d *workload.Driver)
	if cfg.Instances == 0 {
		pcfg := pbft.DefaultConfig()
		pcfg.N, pcfg.F = cfg.N, cfg.F
		if cfg.BatchSize > 0 {
			pcfg.BatchSize = cfg.BatchSize
		}
		cluster, err := pbft.NewCluster(cfg.Kind, pcfg, params, cfg.Seed,
			func(int) pbft.Application { return kvstore.New() })
		if err != nil {
			return TrafficResult{}, err
		}
		if err := cluster.Start(); err != nil {
			return TrafficResult{}, err
		}
		cluster.SetTracer(tr)
		cls := make([]*pbft.Client, cfg.Conns)
		for i := range cls {
			if cls[i], err = cluster.AddClient(); err != nil {
				return TrafficResult{}, err
			}
		}
		loop = cluster.Loop
		startSamplers(tr, loop, cluster.Meshes, nil)
		if cfg.ReadFastPath {
			for _, cl := range cls {
				cl.EnableReadFastPath(cluster.Loop, readTimeout)
			}
		}
		invoke = func(conn int, op []byte, done func([]byte)) string {
			if cfg.ReadFastPath {
				if code, _, _, err := kvstore.DecodeOp(op); err == nil && code == kvstore.OpGet {
					return cls[conn].InvokeRead(op, done)
				}
			}
			return cls[conn].Invoke(op, done)
		}
		wireHooks = func(d *workload.Driver) {
			for _, cl := range cls {
				cl.SetReadPathHook(d.NotePath)
			}
		}
		health = func(r *TrafficResult) {
			r.PeakQueueBytes = cluster.PeakQueueBytes()
			for _, cl := range cls {
				r.FastReads += cl.FastReads()
				r.FastFallbacks += cl.FastReadFallbacks()
			}
		}
		finish = func() error {
			if n := cluster.SendFaults(); n != 0 {
				return fmt.Errorf("bench: %d send faults on a healthy network", n)
			}
			for _, cl := range cls {
				if n := cl.Outstanding(); n != 0 {
					return fmt.Errorf("bench: client %d left %d invocations outstanding", cl.ID(), n)
				}
			}
			return nil
		}
	} else {
		gcfg := reptor.DefaultConfig()
		gcfg.Instances = cfg.Instances
		gcfg.PBFT.N, gcfg.PBFT.F = cfg.N, cfg.F
		if cfg.BatchSize > 0 {
			gcfg.PBFT.BatchSize = cfg.BatchSize
		}
		group, err := reptor.NewGroup(cfg.Kind, gcfg, params, cfg.Seed,
			func(int) pbft.Application { return kvstore.New() })
		if err != nil {
			return TrafficResult{}, err
		}
		if err := group.Start(); err != nil {
			return TrafficResult{}, err
		}
		group.SetTracer(tr)
		if cfg.ReadFastPath {
			group.EnableReadFastPath(readTimeout)
		}
		cls := make([]*reptor.Client, cfg.Conns)
		for i := range cls {
			if cls[i], err = group.AddClient(); err != nil {
				return TrafficResult{}, err
			}
		}
		loop = group.Loop
		startSamplers(tr, loop, group.Meshes, group.Executors)
		// COP routes by the state-machine key, so one instance orders
		// every operation of a key; scans fan out as partition-filtered
		// sub-scans and merge locally (see reptor.Client.InvokeOp).
		invoke = func(conn int, op []byte, done func([]byte)) string {
			return cls[conn].InvokeOp(op, done)
		}
		wireHooks = func(d *workload.Driver) {
			for _, cl := range cls {
				cl.SetReadPathHook(d.NotePath)
			}
		}
		health = func(r *TrafficResult) {
			r.PeakQueueBytes = group.PeakQueueBytes()
			for _, cl := range cls {
				r.FastReads += cl.FastReads()
				r.FastFallbacks += cl.FastReadFallbacks()
			}
			for _, ex := range group.Executors {
				r.HeartbeatSlots += ex.HeartbeatSlots()
				if pb := ex.PeakBacklog(); pb > r.PeakBacklog {
					r.PeakBacklog = pb
				}
				for i := 0; i < cfg.Instances; i++ {
					if d := ex.HeartbeatDelay(i); d > r.HeartbeatDelayMax {
						r.HeartbeatDelayMax = d
					}
				}
			}
		}
		finish = func() error {
			if n := group.SendFaults(); n != 0 {
				return fmt.Errorf("bench: %d send faults on a healthy network", n)
			}
			for i, ex := range group.Executors {
				if b := ex.Backlog(); b != 0 {
					return fmt.Errorf("bench: node %d executor stalled with %d committed-but-unmerged batches", i, b)
				}
			}
			for i, cl := range cls {
				if n := cl.Outstanding(); n != 0 {
					return fmt.Errorf("bench: client %d left %d invocations outstanding", i, n)
				}
			}
			return nil
		}
	}

	d, err := workload.New(loop, wcfg, invoke)
	if err != nil {
		return TrafficResult{}, err
	}
	d.SetTracer(tr)
	if cfg.ReadFastPath {
		wireHooks(d)
	}
	if err := d.Run(); err != nil {
		return TrafficResult{}, err
	}
	if err := finish(); err != nil {
		return TrafficResult{}, err
	}
	if err := d.History().Check(); err != nil {
		return TrafficResult{}, err
	}
	rec := d.Latencies()
	r := TrafficResult{
		P50: rec.Percentile(50), P90: rec.Percentile(90),
		P99: rec.Percentile(99), P999: rec.Percentile(99.9),
		Mean:       rec.Mean(),
		Goodput:    d.Goodput(),
		Completed:  d.Completed(),
		HistoryOps: d.History().Len(),
		FastOps:    d.History().FastOps(),
		Breakdown:  tr.Summary(),
	}
	health(&r)
	return r, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E9 (traffic study under a linearizability oracle).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E9",
		Title:  "traffic study: arrival rate, key skew and operation mix under a linearizability oracle",
		Figure: "beyond the paper: YCSB-style open/closed-loop workloads over the replicated system",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE9(rc)
			return cfg, err
		},
		Run: runE9,
	})
}

// e9Knobs are the resolved parameters of one E9 run.
type e9Knobs struct {
	rates      []int // open-loop arrival rates, ops/s
	skews      []int // Zipf theta ×100; 0 = uniform
	readPcts   []int // read shares of the mix sweep
	ks         []int // COP instance counts (PBFT always runs too)
	n          int
	users      int
	conns      int
	keys       int
	ops        int
	warmup     int
	valueBytes int
	window     int // closed-loop outstanding per user
	scanPct    int
	deletePct  int
	burstUS    int // on/off half-period of the burst sweep; 0 disables it
}

func resolveE9(rc RunContext) (e9Knobs, map[string]string, error) {
	k := e9Knobs{
		rates:    []int{3000, 8000, 16000},
		skews:    []int{0, 90, 99},
		readPcts: []int{0, 45, 90},
		ks:       []int{1, 4},
		n:        4, users: 96, conns: 4, keys: 128,
		ops: 300, warmup: 30, valueBytes: 128, window: 1,
		scanPct: 5, deletePct: 5, burstUS: 2000,
	}
	if rc.Quick {
		k.rates, k.skews, k.readPcts = []int{1500}, []int{99}, []int{50}
		k.ks = []int{1}
		k.users, k.conns, k.keys = 24, 2, 32
		k.ops, k.warmup = 60, 10
		k.burstUS = 0
	}
	var err error
	if k.rates, err = rc.intsKnob("rates", k.rates); err != nil {
		return k, nil, err
	}
	if k.skews, err = rc.nonNegIntsKnob("skews", k.skews); err != nil {
		return k, nil, err
	}
	if k.readPcts, err = rc.nonNegIntsKnob("read_pcts", k.readPcts); err != nil {
		return k, nil, err
	}
	if k.ks, err = rc.intsKnob("ks", k.ks); err != nil {
		return k, nil, err
	}
	if k.n, err = rc.intKnob("n", k.n); err != nil {
		return k, nil, err
	}
	if k.users, err = rc.intKnob("users", k.users); err != nil {
		return k, nil, err
	}
	if k.conns, err = rc.intKnob("conns", k.conns); err != nil {
		return k, nil, err
	}
	if k.keys, err = rc.intKnob("keys", k.keys); err != nil {
		return k, nil, err
	}
	if k.ops, err = rc.intKnob("ops", k.ops); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.valueBytes, err = rc.intKnob("value_bytes", k.valueBytes); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	if k.scanPct, err = rc.intKnob("scan_pct", k.scanPct); err != nil {
		return k, nil, err
	}
	if k.deletePct, err = rc.intKnob("delete_pct", k.deletePct); err != nil {
		return k, nil, err
	}
	if k.burstUS, err = rc.intKnob("burst_us", k.burstUS); err != nil {
		return k, nil, err
	}
	if k.n < 4 {
		return k, nil, fmt.Errorf("bench: E9 needs n >= 4 (3f+1), got %d", k.n)
	}
	if k.users < k.conns || k.conns < 1 {
		return k, nil, fmt.Errorf("bench: E9 needs 1 <= conns <= users, got %d/%d", k.conns, k.users)
	}
	if k.window < 1 || k.keys < 10 || k.burstUS < 0 {
		return k, nil, fmt.Errorf("bench: E9 needs window >= 1, keys >= 10 and burst_us >= 0")
	}
	for _, s := range k.skews {
		if s >= 100 {
			return k, nil, fmt.Errorf("bench: E9 skews are Zipf theta x100 in [0, 100), got %d", s)
		}
	}
	if k.scanPct < 0 || k.deletePct < 0 {
		return k, nil, fmt.Errorf("bench: E9 needs scan_pct/delete_pct >= 0, got %d/%d", k.scanPct, k.deletePct)
	}
	// Every read share the sweeps use — the read_pcts axis and the fixed
	// e9MidRead of the rate/burst/skew sweeps — must leave the mix a
	// valid percentage split.
	for _, r := range append([]int{e9MidRead}, k.readPcts...) {
		if r+k.scanPct+k.deletePct > 100 {
			return k, nil, fmt.Errorf("bench: E9 mix read=%d + scan=%d + delete=%d exceeds 100",
				r, k.scanPct, k.deletePct)
		}
	}
	cfg := map[string]string{
		"rates":       formatInts(k.rates),
		"skews":       formatInts(k.skews),
		"read_pcts":   formatInts(k.readPcts),
		"ks":          formatInts(k.ks),
		"n":           strconv.Itoa(k.n),
		"users":       strconv.Itoa(k.users),
		"conns":       strconv.Itoa(k.conns),
		"keys":        strconv.Itoa(k.keys),
		"ops":         strconv.Itoa(k.ops),
		"warmup":      strconv.Itoa(k.warmup),
		"value_bytes": strconv.Itoa(k.valueBytes),
		"window":      strconv.Itoa(k.window),
		"scan_pct":    strconv.Itoa(k.scanPct),
		"delete_pct":  strconv.Itoa(k.deletePct),
		"burst_us":    strconv.Itoa(k.burstUS),
	}
	return k, cfg, nil
}

// e9System is one system-under-test of the E9 sweeps.
type e9System struct {
	label     string
	instances int // 0 = PBFT
}

// e9MidRead is the fixed read share of the rate, burst and skew sweeps.
const e9MidRead = 45

// e9Mix builds the operation mix for one read share. Scans run on COP
// too: they fan out as partition-filtered sub-scans, one per instance,
// whose partial results are deterministic because only instance k's
// order ever mutates partition-k keys (see reptor.Client.InvokeOp).
func e9Mix(readPct, scanPct, deletePct int) workload.Mix {
	m := workload.Mix{ReadPct: readPct, ScanPct: scanPct, DeletePct: deletePct}
	m.WritePct = 100 - m.ReadPct - m.ScanPct - m.DeletePct
	return m
}

// e9Series bundles every series one E9 sweep combo reports: the
// percentile/goodput bundle, the mean latency with its phase breakdown,
// the msgnet send-queue high watermark, and — for COP systems only — the
// executor health counters (heartbeat fill slots, the adaptive-delay
// ceiling reached, the peak merge backlog) plus the commit-to-merge wait.
type e9Series struct {
	ps    metrics.PercentileSeries
	mean  *metrics.ResultSeries
	bd    breakdownSeries
	peakQ *metrics.ResultSeries
	// COP-only (nil for plain PBFT):
	hbSlots *metrics.ResultSeries
	hbDelay *metrics.ResultSeries
	backlog *metrics.ResultSeries
	mergeW  *metrics.ResultSeries
}

func addE9Series(res *metrics.Result, name, transport, xLabel string, cop bool) e9Series {
	s := e9Series{
		ps:    res.AddPercentileSeries(name, transport, xLabel),
		mean:  res.AddSeries(name, metrics.MetricLatencyMean, "us", transport, xLabel),
		bd:    addBreakdownSeries(res, name, transport, xLabel),
		peakQ: res.AddSeries(name, metrics.MetricPeakQueueBytes, "bytes", transport, xLabel),
	}
	if cop {
		s.hbSlots = res.AddSeries(name, metrics.MetricHeartbeatSlots, "count", transport, xLabel)
		s.hbDelay = res.AddSeries(name, metrics.MetricHeartbeatDelay, "us", transport, xLabel)
		s.backlog = res.AddSeries(name, metrics.MetricPeakBacklog, "count", transport, xLabel)
		s.mergeW = res.AddSeries(name, metrics.MetricMergeWait, "us", transport, xLabel)
	}
	return s
}

func (s e9Series) observe(x float64, r TrafficResult) {
	s.ps.Observe(x, r.P50, r.P90, r.P99, r.P999, r.Goodput)
	s.mean.Add(x, r.Mean.Micros())
	s.bd.observe(x, r.Breakdown)
	s.peakQ.Add(x, float64(r.PeakQueueBytes))
	if s.hbSlots != nil {
		s.hbSlots.Add(x, float64(r.HeartbeatSlots))
		s.hbDelay.Add(x, r.HeartbeatDelayMax.Micros())
		s.backlog.Add(x, float64(r.PeakBacklog))
		s.mergeW.Add(x, r.Breakdown.MergeWait.Micros())
	}
}

func runE9(rc RunContext, res *metrics.Result) error {
	k, _, err := resolveE9(rc)
	if err != nil {
		return err
	}
	systems := []e9System{{"PBFT", 0}}
	for _, ki := range k.ks {
		systems = append(systems, e9System{fmt.Sprintf("COP-%d", ki), ki})
	}
	base := func(kind transport.Kind, sys e9System) TrafficConfig {
		return TrafficConfig{
			Kind: kind, Instances: sys.instances,
			N: k.n, F: (k.n - 1) / 3,
			Users: k.users, Conns: k.conns, Keys: k.keys,
			ValueSize: k.valueBytes, Ops: k.ops, Warmup: k.warmup,
			Seed: rc.Seed, Trace: rc.Trace,
		}
	}
	// Sweep 1 (+2): open-loop arrival rate, Poisson — and, when enabled,
	// the same rates as on/off bursts — at fixed skew and mix.
	type arrivalSweep struct {
		prefix  string
		arrival func(rate int) workload.Arrival
	}
	sweeps := []arrivalSweep{
		{"rate", func(rate int) workload.Arrival { return workload.Poisson(float64(rate)) }},
	}
	if k.burstUS > 0 {
		burst := sim.Time(k.burstUS) * sim.Microsecond
		sweeps = append(sweeps, arrivalSweep{"burst", func(rate int) workload.Arrival {
			return workload.Bursts(float64(rate), burst, burst)
		}})
	}
	for _, sweep := range sweeps {
		for _, kind := range e8Transports {
			for _, sys := range systems {
				name := fmt.Sprintf("%s %s %s", sweep.prefix, sys.label, e8Label(kind))
				ss := addE9Series(res, name, string(kind), "rate_ops_s", sys.instances > 0)
				for _, rate := range k.rates {
					cfg := base(kind, sys)
					cfg.Mix = e9Mix(e9MidRead, k.scanPct, k.deletePct)
					cfg.Zipf100 = 99
					cfg.Arrival = sweep.arrival(rate)
					r, err := RunTraffic(cfg, rc.Model)
					if err != nil {
						return fmt.Errorf("%s=%d %s %s: %w", sweep.prefix, rate, sys.label, kind, err)
					}
					ss.observe(float64(rate), r)
				}
			}
		}
	}
	// Sweep 3: key skew under closed-loop load.
	for _, kind := range e8Transports {
		for _, sys := range systems {
			name := fmt.Sprintf("skew %s %s", sys.label, e8Label(kind))
			ss := addE9Series(res, name, string(kind), "zipf_theta_x100", sys.instances > 0)
			for _, skew := range k.skews {
				cfg := base(kind, sys)
				cfg.Mix = e9Mix(e9MidRead, k.scanPct, k.deletePct)
				cfg.Zipf100 = skew
				cfg.Arrival = workload.Closed(k.window, 0)
				r, err := RunTraffic(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("skew=%d %s %s: %w", skew, sys.label, kind, err)
				}
				ss.observe(float64(skew), r)
			}
		}
	}
	// Sweep 4: read share under closed-loop load at fixed skew.
	for _, kind := range e8Transports {
		for _, sys := range systems {
			name := fmt.Sprintf("mix %s %s", sys.label, e8Label(kind))
			ss := addE9Series(res, name, string(kind), "read_pct", sys.instances > 0)
			for _, readPct := range k.readPcts {
				cfg := base(kind, sys)
				cfg.Mix = e9Mix(readPct, k.scanPct, k.deletePct)
				cfg.Zipf100 = 99
				cfg.Arrival = workload.Closed(k.window, 0)
				r, err := RunTraffic(cfg, rc.Model)
				if err != nil {
					return fmt.Errorf("read_pct=%d %s %s: %w", readPct, sys.label, kind, err)
				}
				ss.observe(float64(readPct), r)
			}
		}
	}
	return nil
}
