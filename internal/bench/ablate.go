package bench

import (
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/rubin"
)

// Ablation names one configuration variant of the RUBIN channel; the
// ablation bench (experiment E6) quantifies each Section IV optimization
// by disabling it in isolation.
type Ablation struct {
	Name   string
	Mutate func(*model.Params, *rubin.Config)
}

// Ablations returns the studied variants.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "full (all optimizations)", Mutate: nil},
		{Name: "no selective signaling", Mutate: func(p *model.Params, c *rubin.Config) {
			c.SignalInterval = 1
		}},
		{Name: "no doorbell batching", Mutate: func(p *model.Params, c *rubin.Config) {
			c.PostBatch = 1
		}},
		{Name: "no inline sends", Mutate: func(p *model.Params, c *rubin.Config) {
			c.Inline = false
		}},
		{Name: "zero-copy receive (projected)", Mutate: func(p *model.Params, c *rubin.Config) {
			c.ZeroCopyReceive = true
		}},
	}
}

// AblationTable measures the channel echo under every variant for the
// given payloads, reporting mean round-trip latency in µs.
func AblationTable(payloadsKB []int, params model.Params) (*metrics.Table, error) {
	tab := metrics.NewTable("E6: RUBIN channel ablations", "payload_kb", "latency µs")
	for _, ab := range Ablations() {
		series := tab.AddSeries(ab.Name)
		for _, kb := range payloadsKB {
			p := params
			cfg := DefaultEchoConfig(kb << 10)
			// Saturate the selector thread so per-message overheads are
			// on the critical path (idle gaps would otherwise hide them).
			cfg.Window = 8
			var mutate func(*rubin.Config)
			if ab.Mutate != nil {
				ab := ab
				mutate = func(c *rubin.Config) { ab.Mutate(&p, c) }
			}
			res, err := echoChannelCfg(cfg, p, mutate)
			if err != nil {
				return nil, err
			}
			series.Add(float64(kb), res.MeanRT.Micros())
		}
	}
	return tab, nil
}
