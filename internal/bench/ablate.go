package bench

import (
	"strconv"

	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/rubin"
)

// Ablation names one configuration variant of the RUBIN channel; the
// ablation bench (experiment E6) quantifies each Section IV optimization
// by disabling it in isolation.
type Ablation struct {
	Name   string
	Mutate func(*model.Params, *rubin.Config)
}

// Ablations returns the studied variants.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "full (all optimizations)", Mutate: nil},
		{Name: "no selective signaling", Mutate: func(p *model.Params, c *rubin.Config) {
			c.SignalInterval = 1
		}},
		{Name: "no doorbell batching", Mutate: func(p *model.Params, c *rubin.Config) {
			c.PostBatch = 1
		}},
		{Name: "no inline sends", Mutate: func(p *model.Params, c *rubin.Config) {
			c.Inline = false
		}},
		{Name: "zero-copy receive (projected)", Mutate: func(p *model.Params, c *rubin.Config) {
			c.ZeroCopyReceive = true
		}},
	}
}

// runAblation measures the channel echo under one variant/payload point.
func runAblation(ab Ablation, cfg EchoConfig, params model.Params) (EchoResult, error) {
	p := params
	var mutate func(*rubin.Config)
	if ab.Mutate != nil {
		mutate = func(c *rubin.Config) { ab.Mutate(&p, c) }
	}
	return echoChannelCfg(cfg, p, mutate)
}

// AblationTable measures the channel echo under every variant for the
// given payloads, reporting mean round-trip latency in µs.
func AblationTable(payloadsKB []int, params model.Params) (*metrics.Table, error) {
	tab := metrics.NewTable("E6: RUBIN channel ablations", "payload_kb", "latency µs")
	for _, ab := range Ablations() {
		series := tab.AddSeries(ab.Name)
		for _, kb := range payloadsKB {
			cfg := DefaultEchoConfig(kb << 10)
			// Saturate the selector thread so per-message overheads are
			// on the critical path (idle gaps would otherwise hide them).
			cfg.Window = 8
			res, err := runAblation(ab, cfg, params)
			if err != nil {
				return nil, err
			}
			series.Add(float64(kb), res.MeanRT.Micros())
		}
	}
	return tab, nil
}

// ---------------------------------------------------------------------------
// Registry entry: E6 (Section IV optimization ablations).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E6",
		Title:  "RUBIN channel optimization ablations (echo mean RTT)",
		Figure: "paper Section IV/V",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveE6(rc)
			return cfg, err
		},
		Run: runE6,
	})
}

type e6Knobs struct {
	payloadsKB []int
	messages   int
	warmup     int
	window     int
}

func resolveE6(rc RunContext) (e6Knobs, map[string]string, error) {
	k := e6Knobs{payloadsKB: []int{1, 4, 16, 64, 100}, messages: 1000, warmup: 50, window: 8}
	if rc.Quick {
		k.payloadsKB, k.messages, k.warmup = []int{2}, 150, 20
	}
	var err error
	if k.payloadsKB, err = rc.intsKnob("payloads_kb", k.payloadsKB); err != nil {
		return k, nil, err
	}
	if k.messages, err = rc.intKnob("messages", k.messages); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	cfg := map[string]string{
		"payloads_kb": formatInts(k.payloadsKB),
		"messages":    strconv.Itoa(k.messages),
		"warmup":      strconv.Itoa(k.warmup),
		"window":      strconv.Itoa(k.window),
	}
	return k, cfg, nil
}

func runE6(rc RunContext, res *metrics.Result) error {
	k, _, err := resolveE6(rc)
	if err != nil {
		return err
	}
	for _, ab := range Ablations() {
		mean := res.AddSeries(ab.Name, metrics.MetricLatencyMean, "us", "rdma", "payload_kb")
		for _, kb := range k.payloadsKB {
			cfg := EchoConfig{Payload: kb << 10, Messages: k.messages, Warmup: k.warmup,
				Window: k.window, Seed: rc.Seed}
			r, err := runAblation(ab, cfg, rc.Model)
			if err != nil {
				return err
			}
			mean.Add(float64(kb), r.MeanRT.Micros())
		}
	}
	return nil
}
