package bench

import (
	"fmt"
	"testing"

	"rubin/internal/model"
	"rubin/internal/transport"
)

func TestProbe(t *testing.T) {
	p := model.Default()
	for _, kb := range []int{1, 2, 8, 16, 32, 64, 100} {
		cfg := DefaultEchoConfig(kb << 10)
		cfg.Messages, cfg.Warmup = 300, 30
		var line string
		line = fmt.Sprintf("%3dKB", kb)
		for _, st := range Fig3Stacks() {
			res, err := RunFig3(st, cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			line += fmt.Sprintf("  %s=%7.1fus/%6.0frps", shortName(st), res.MeanRT.Micros(), res.Throughput)
		}
		fmt.Println(line)
	}
	for _, kb := range []int{1, 20, 100} {
		c4 := DefaultFig4Config(kb << 10)
		c4.Messages, c4.Warmup = 300, 50
		r, err := RunFig4(transport.KindRDMA, c4, p)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := RunFig4(transport.KindTCP, c4, p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("fig4 %3dKB rubin=%8.1fus/%7.0frps tcp=%8.1fus/%7.0frps  lat%+5.0f%% tput%+5.0f%%\n",
			kb, r.MeanRT.Micros(), r.Throughput, tc.MeanRT.Micros(), tc.Throughput,
			100*(float64(r.MeanRT)/float64(tc.MeanRT)-1), 100*(r.Throughput/tc.Throughput-1))
	}
}

func shortName(s Fig3Stack) string {
	switch s {
	case StackTCP:
		return "tcp"
	case StackSendRecv:
		return "sr"
	case StackOneSided:
		return "rw"
	case StackChannel:
		return "ch"
	}
	return "?"
}
