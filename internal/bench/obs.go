package bench

import (
	"rubin/internal/metrics"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/reptor"
	"rubin/internal/sim"
)

// benchTracer returns the tracer one measurement run should use: the
// shared span tracer when the suite runs with -trace, otherwise a
// run-local breakdown-only aggregator (spans off, so it only folds
// milestones into phase means). Either way the run label is installed,
// resetting the aggregation for this sweep point.
func benchTracer(shared *obs.Tracer, label string) *obs.Tracer {
	t := shared
	if t == nil {
		t = obs.New(obs.Options{})
	}
	t.BeginRun(label)
	return t
}

// samplePeriod is the virtual-time interval of the queue-depth, CPU and
// backlog time-series samplers attached to span-traced runs.
const samplePeriod = 250 * sim.Microsecond

// startSamplers attaches the time-series samplers of one run — per-node
// msgnet queue bytes, per-node CPU utilization and (for COP) per-node
// executor backlog — when span recording is on. Samplers are pure
// observers on the loop: they read counters and record samples, so they
// cannot perturb the run being measured, and the sampler group stops
// re-arming once only its own ticks remain (the loop still drains).
func startSamplers(tr *obs.Tracer, loop *sim.Loop, meshes []*msgnet.Mesh, execs []*reptor.Executor) {
	if !tr.SpansEnabled() {
		return
	}
	g := obs.NewSamplerGroup(loop)
	g.Every(samplePeriod, func(now sim.Time) {
		for _, mesh := range meshes {
			node := mesh.Node()
			tr.Sample("msgnet_queue_bytes", node.Name(), now, float64(mesh.QueueBytes()))
			tr.Sample("cpu_util", node.Name(), now, node.CPU.Utilization())
		}
		for i, ex := range execs {
			tr.Sample("executor_backlog", meshes[i].Node().Name(), now, float64(ex.Backlog()))
		}
	})
}

// breakdownSeries bundles the five breakdown_* series of one sweep combo.
// The phases partition the measured end-to-end latency: per point,
// queue + order + net + merge + exec equals the latency_mean series.
type breakdownSeries struct {
	queue, order, net, merge, exec *metrics.ResultSeries
}

func addBreakdownSeries(res *metrics.Result, name, transport, xLabel string) breakdownSeries {
	return breakdownSeries{
		queue: res.AddSeries(name, metrics.MetricBreakdownQueue, "us", transport, xLabel),
		order: res.AddSeries(name, metrics.MetricBreakdownOrder, "us", transport, xLabel),
		net:   res.AddSeries(name, metrics.MetricBreakdownNet, "us", transport, xLabel),
		merge: res.AddSeries(name, metrics.MetricBreakdownMerge, "us", transport, xLabel),
		exec:  res.AddSeries(name, metrics.MetricBreakdownExec, "us", transport, xLabel),
	}
}

func (b breakdownSeries) observe(x float64, s obs.Summary) {
	b.queue.Add(x, s.Queue.Micros())
	b.order.Add(x, s.Order.Micros())
	b.net.Add(x, s.Net.Micros())
	b.merge.Add(x, s.Merge.Micros())
	b.exec.Add(x, s.Exec.Micros())
}
