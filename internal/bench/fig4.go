package bench

import (
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Fig4Config parameterizes the selector-stack echo of Figure 4: an echo
// server on the Reptor communication stack comparing the RUBIN selector
// with the Java NIO selector, window size 30 and batching 10.
type Fig4Config struct {
	Payload  int
	Messages int
	Warmup   int
	Window   int // outstanding requests (paper: 30)
	Batch    int // messages coalesced per syscall/doorbell (paper: 10)
	Seed     int64
}

// DefaultFig4Config returns the paper's measurement parameters.
func DefaultFig4Config(payload int) Fig4Config {
	return Fig4Config{Payload: payload, Messages: 1000, Warmup: 100, Window: 30, Batch: 10, Seed: 1}
}

// RunFig4 measures one (kind, payload) point: mean request latency and
// closed-loop throughput through the full transport stack.
func RunFig4(kind transport.Kind, cfg Fig4Config, params model.Params) (EchoResult, error) {
	loop := sim.NewLoop(cfg.Seed)
	nw := fabric.New(loop, params)
	cn, sn := nw.AddNode("client"), nw.AddNode("server")
	nw.Connect(cn, sn)

	opts := transport.DefaultOptions()
	opts.Batch = cfg.Batch
	if cfg.Payload > opts.MaxMessage {
		opts.MaxMessage = cfg.Payload
	}
	cs, err := transport.NewStack(kind, cn, opts)
	if err != nil {
		return EchoResult{}, err
	}
	ss, err := transport.NewStack(kind, sn, opts)
	if err != nil {
		return EchoResult{}, err
	}

	var serverConn transport.Conn
	if err := ss.Listen(9, func(c transport.Conn) {
		serverConn = c
		c.OnMessage(func(msg []byte) { _ = c.Send(msg) })
	}); err != nil {
		return EchoResult{}, err
	}
	var clientConn transport.Conn
	var dialErr error
	loop.Post(func() {
		cs.Dial(sn, 9, func(c transport.Conn, err error) { clientConn, dialErr = c, err })
	})
	loop.Run()
	if dialErr != nil || clientConn == nil || serverConn == nil {
		return EchoResult{}, fmt.Errorf("bench: fig4 setup failed: %v", dialErr)
	}

	d := newEchoDriver(loop, EchoConfig{
		Payload: cfg.Payload, Messages: cfg.Messages, Warmup: cfg.Warmup, Window: cfg.Window, Seed: cfg.Seed,
	})
	clientConn.OnMessage(func(msg []byte) { d.completed() })
	payload := make([]byte, cfg.Payload)
	loop.Post(func() {
		d.start(func() { _ = clientConn.Send(payload) })
	})
	loop.Run()
	res := d.result(Fig3Stack(kind))
	return res, nil
}

// Fig4Tables sweeps both stacks over the payload list and returns the
// latency (µs) and throughput (requests/s) tables of Figures 4a and 4b.
func Fig4Tables(payloadsKB []int, params model.Params) (latency, throughput *metrics.Table, err error) {
	latency = metrics.NewTable("Figure 4a: selector-stack latency", "payload_kb", "latency µs")
	throughput = metrics.NewTable("Figure 4b: selector-stack throughput", "payload_kb", "req/s")
	names := map[transport.Kind]string{transport.KindRDMA: "Rubin", transport.KindTCP: "TCP"}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		ls := latency.AddSeries(names[kind])
		ts := throughput.AddSeries(names[kind])
		for _, kb := range payloadsKB {
			res, err := RunFig4(kind, DefaultFig4Config(kb<<10), params)
			if err != nil {
				return nil, nil, err
			}
			ls.Add(float64(kb), res.MeanRT.Micros())
			ts.Add(float64(kb), res.Throughput)
		}
	}
	return latency, throughput, nil
}
