package bench

import (
	"fmt"
	"strconv"

	"rubin/internal/fabric"
	"rubin/internal/metrics"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Fig4Config parameterizes the selector-stack echo of Figure 4: an echo
// server on the Reptor communication stack comparing the RUBIN selector
// with the Java NIO selector, window size 30 and batching 10.
type Fig4Config struct {
	Payload  int
	Messages int
	Warmup   int
	Window   int // outstanding requests (paper: 30)
	Batch    int // messages coalesced per syscall/doorbell (paper: 10)
	Seed     int64
}

// DefaultFig4Config returns the paper's measurement parameters.
func DefaultFig4Config(payload int) Fig4Config {
	return Fig4Config{Payload: payload, Messages: 1000, Warmup: 100, Window: 30, Batch: 10, Seed: 1}
}

// RunFig4 measures one (kind, payload) point: mean request latency and
// closed-loop throughput through the full transport stack.
func RunFig4(kind transport.Kind, cfg Fig4Config, params model.Params) (EchoResult, error) {
	loop := sim.NewLoop(cfg.Seed)
	nw := fabric.New(loop, params)
	cn, sn := nw.AddNode("client"), nw.AddNode("server")
	nw.Connect(cn, sn)

	opts := transport.DefaultOptions()
	opts.Batch = cfg.Batch
	if cfg.Payload > opts.MaxMessage {
		opts.MaxMessage = cfg.Payload
	}
	cs, err := transport.NewStack(kind, cn, opts)
	if err != nil {
		return EchoResult{}, err
	}
	ss, err := transport.NewStack(kind, sn, opts)
	if err != nil {
		return EchoResult{}, err
	}

	var serverConn transport.Conn
	if err := ss.Listen(9, func(c transport.Conn) {
		serverConn = c
		c.OnMessage(func(msg []byte) { _ = c.Send(msg) })
	}); err != nil {
		return EchoResult{}, err
	}
	var clientConn transport.Conn
	var dialErr error
	loop.Post(func() {
		cs.Dial(sn, 9, func(c transport.Conn, err error) { clientConn, dialErr = c, err })
	})
	loop.Run()
	if dialErr != nil || clientConn == nil || serverConn == nil {
		return EchoResult{}, fmt.Errorf("bench: fig4 setup failed: %v", dialErr)
	}

	d := newEchoDriver(loop, EchoConfig{
		Payload: cfg.Payload, Messages: cfg.Messages, Warmup: cfg.Warmup, Window: cfg.Window, Seed: cfg.Seed,
	})
	clientConn.OnMessage(func(msg []byte) { d.completed() })
	payload := make([]byte, cfg.Payload)
	loop.Post(func() {
		d.start(func() { _ = clientConn.Send(payload) })
	})
	loop.Run()
	res := d.result(Fig3Stack(kind))
	return res, nil
}

// ---------------------------------------------------------------------------
// Registry entries: E3 (Figure 4a, latency) and E4 (Figure 4b, throughput).
// ---------------------------------------------------------------------------

func init() {
	Register(Experiment{
		Name:   "E3",
		Title:  "selector-stack echo latency (RUBIN vs Java NIO)",
		Figure: "Figure 4a",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveFig4(rc)
			return cfg, err
		},
		Run: func(rc RunContext, res *metrics.Result) error {
			return runFig4Suite(rc, res, true)
		},
	})
	Register(Experiment{
		Name:   "E4",
		Title:  "selector-stack echo throughput (RUBIN vs Java NIO)",
		Figure: "Figure 4b",
		Params: func(rc RunContext) (map[string]string, error) {
			_, cfg, err := resolveFig4(rc)
			return cfg, err
		},
		Run: func(rc RunContext, res *metrics.Result) error {
			return runFig4Suite(rc, res, false)
		},
	})
}

// fig4Knobs are the resolved parameters of one E3/E4 run.
type fig4Knobs struct {
	payloadsKB []int
	messages   int
	warmup     int
	window     int
	batch      int
}

func resolveFig4(rc RunContext) (fig4Knobs, map[string]string, error) {
	k := fig4Knobs{payloadsKB: []int{1, 10, 20, 40, 60, 80, 100}, messages: 1000, warmup: 100, window: 30, batch: 10}
	if rc.Quick {
		k.payloadsKB, k.messages, k.warmup = []int{1, 20}, 200, 40
	}
	var err error
	if k.payloadsKB, err = rc.intsKnob("payloads_kb", k.payloadsKB); err != nil {
		return k, nil, err
	}
	if k.messages, err = rc.intKnob("messages", k.messages); err != nil {
		return k, nil, err
	}
	if k.warmup, err = rc.intKnob("warmup", k.warmup); err != nil {
		return k, nil, err
	}
	if k.window, err = rc.intKnob("window", k.window); err != nil {
		return k, nil, err
	}
	if k.batch, err = rc.intKnob("batch", k.batch); err != nil {
		return k, nil, err
	}
	cfg := map[string]string{
		"payloads_kb": formatInts(k.payloadsKB),
		"messages":    strconv.Itoa(k.messages),
		"warmup":      strconv.Itoa(k.warmup),
		"window":      strconv.Itoa(k.window),
		"batch":       strconv.Itoa(k.batch),
	}
	return k, cfg, nil
}

// fig4SeriesNames label the two selector stacks the way the paper's legend
// does.
var fig4SeriesNames = map[transport.Kind]string{transport.KindRDMA: "Rubin", transport.KindTCP: "TCP"}

// runFig4Suite sweeps both selector stacks; latency selects Figure 4a,
// otherwise Figure 4b.
func runFig4Suite(rc RunContext, res *metrics.Result, latency bool) error {
	k, _, err := resolveFig4(rc)
	if err != nil {
		return err
	}
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		name := fig4SeriesNames[kind]
		var mean, p99, tput *metrics.ResultSeries
		if latency {
			mean = res.AddSeries(name, metrics.MetricLatencyMean, "us", string(kind), "payload_kb")
			p99 = res.AddSeries(name, metrics.MetricLatencyP99, "us", string(kind), "payload_kb")
		} else {
			tput = res.AddSeries(name, metrics.MetricThroughput, "req/s", string(kind), "payload_kb")
		}
		for _, kb := range k.payloadsKB {
			cfg := Fig4Config{Payload: kb << 10, Messages: k.messages, Warmup: k.warmup,
				Window: k.window, Batch: k.batch, Seed: rc.Seed}
			r, err := RunFig4(kind, cfg, rc.Model)
			if err != nil {
				return err
			}
			if latency {
				mean.Add(float64(kb), r.MeanRT.Micros())
				p99.Add(float64(kb), r.P99RT.Micros())
			} else {
				tput.Add(float64(kb), r.Throughput)
			}
		}
	}
	return nil
}
