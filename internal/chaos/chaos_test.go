package chaos

import (
	"fmt"
	"strings"
	"testing"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func kinds() []transport.Kind { return []transport.Kind{transport.KindTCP, transport.KindRDMA} }

// chaosConfig uses small batches and frequent checkpoints so state
// transfer and recovery happen within short virtual windows.
func chaosConfig() pbft.Config {
	cfg := pbft.DefaultConfig()
	cfg.BatchSize = 2
	cfg.CheckpointEvery = 4
	cfg.LogWindow = 64
	return cfg
}

// timeline is the canonical fault script exercised by the suite:
// healthy, primary crash (view change), restart with state transfer,
// partition of the then-current leader (second view change), heal.
func timeline() *Scenario {
	return NewScenario("primary-crash-restart-partition-heal").
		Crash(100*sim.Millisecond, 0).
		Restart(500*sim.Millisecond, 0).
		Partition(900*sim.Millisecond, []int{1}, []int{0, 2, 3}).
		Heal(1400 * sim.Millisecond)
}

// phaseStarts are the workload injection offsets, one per phase, each
// shortly after the preceding fault event.
func phaseStarts() []sim.Time {
	return []sim.Time{0, 110 * sim.Millisecond, 510 * sim.Millisecond,
		910 * sim.Millisecond, 1410 * sim.Millisecond}
}

// phaseChecks are the virtual deadlines by which each phase's requests
// must have committed.
func phaseChecks() []sim.Time {
	return []sim.Time{100 * sim.Millisecond, 500 * sim.Millisecond, 900 * sim.Millisecond,
		1400 * sim.Millisecond, 1900 * sim.Millisecond}
}

const perPhase = 20

// result captures one full scenario run for assertions and determinism
// comparison.
type result struct {
	cluster *Cluster2
	metrics string
	done    []int
}

// Cluster2 bundles the cluster with the safety record kept across
// restarts.
type Cluster2 struct {
	*pbft.Cluster
	execDigests []map[uint64]auth.Digest
}

// runTimeline executes the canonical fault timeline against a 4-replica
// cluster, driving perPhase client requests per phase and asserting each
// phase's liveness deadline. The returned metrics string is the
// determinism witness: it records the scenario trace and every commit's
// virtual time, and must be byte-identical across runs with equal seeds.
func runTimeline(t *testing.T, kind transport.Kind, seed int64) result {
	t.Helper()
	c, err := pbft.NewCluster(kind, chaosConfig(), model.Default(), seed,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}

	// Safety record: batch digest per executed sequence per replica id,
	// surviving restarts via the OnRestart hook.
	cc := &Cluster2{Cluster: c, execDigests: make([]map[uint64]auth.Digest, c.Config.N)}
	hook := func(i int, rep *pbft.Replica) {
		rep.OnExecute(func(seq uint64, batch []pbft.Request) {
			if d, dup := cc.execDigests[i][seq]; dup && d != pbft.BatchDigest(batch) {
				t.Errorf("replica %d re-executed seq %d with a different batch", i, seq)
			}
			cc.execDigests[i][seq] = pbft.BatchDigest(batch)
		})
	}
	for i := range c.Replicas {
		cc.execDigests[i] = make(map[uint64]auth.Digest)
		hook(i, c.Replicas[i])
	}
	c.OnRestart = hook

	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl, err := c.AddClient()
	if err != nil {
		t.Fatalf("AddClient: %v", err)
	}

	sched := Apply(c, timeline())
	base := c.Loop.Now()

	var metrics strings.Builder
	starts, checks := phaseStarts(), phaseChecks()
	done := make([]int, len(starts))
	for p, start := range starts {
		p := p
		c.Loop.At(base+start, func() {
			for k := 0; k < perPhase; k++ {
				key := fmt.Sprintf("p%dk%02d", p, k)
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, "v"), func([]byte) {
					done[p]++
					fmt.Fprintf(&metrics, "commit %s t=%v\n", key, c.Loop.Now()-base)
				})
			}
		})
	}

	for p, check := range checks {
		c.Loop.RunUntil(base + check)
		if done[p] != perPhase {
			t.Fatalf("%v/%v phase %d: %d of %d requests committed by t=%v",
				kind, seed, p, done[p], perPhase, check)
		}
	}
	// Quiesce: let the healed and restarted replicas finish catching up.
	c.Loop.RunUntil(base + 2500*sim.Millisecond)

	metrics.WriteString(sched.TraceString())
	for i, rep := range c.Replicas {
		fmt.Fprintf(&metrics, "r%d view=%d executed=%d stable=%d transfers=%d digest=%s\n",
			i, rep.View(), rep.Executed(), rep.Stable(), rep.StateTransfers(),
			c.Apps[i].Snapshot().Short())
	}
	fmt.Fprintf(&metrics, "end t=%v\n", c.Loop.Now()-base)
	if err := sched.Err(); err != nil {
		t.Fatalf("scenario errors: %v", err)
	}
	return result{cluster: cc, metrics: metrics.String(), done: done}
}

// TestScenarioSafetyAndLiveness drives the canonical timeline on both
// transport backends and asserts:
//   - liveness: every phase's client requests commit before its deadline
//     (so commits resume after primary crash, replica restart via state
//     transfer, and partition heal);
//   - safety: no two replicas execute divergent batches at any sequence,
//     and all four state machines converge to identical snapshots.
func TestScenarioSafetyAndLiveness(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			res := runTimeline(t, kind, 42)
			c := res.cluster

			// The crash of the view-0 leader must have forced a view
			// change, and the leader partition a second one.
			for i := 1; i < 4; i++ {
				if v := c.Replicas[i].View(); v < 2 {
					t.Errorf("replica %d still in view %d, want >= 2", i, v)
				}
			}
			// The restarted replica rejoined via state transfer.
			if c.Replicas[0].StateTransfers() == 0 {
				t.Error("restarted replica completed no state transfer")
			}

			// Safety: per-sequence agreement across all replicas.
			for seq, d0 := range c.execDigests[0] {
				for i := 1; i < 4; i++ {
					if d, ok := c.execDigests[i][seq]; ok && d != d0 {
						t.Errorf("divergent batch at seq %d between r0 and r%d", seq, i)
					}
				}
			}
			// Convergence: every replica caught up to the same state.
			d0 := c.Apps[0].Snapshot()
			e0 := c.Replicas[0].Executed()
			for i := 1; i < 4; i++ {
				if c.Apps[i].Snapshot() != d0 {
					t.Errorf("replica %d snapshot diverged after quiescence", i)
				}
				if e := c.Replicas[i].Executed(); e != e0 {
					t.Errorf("replica %d executed %d, replica 0 executed %d", i, e, e0)
				}
			}
			// All 100 requests committed exactly once at the client.
			total := 0
			for _, d := range res.done {
				total += d
			}
			if total != perPhase*len(res.done) {
				t.Errorf("client completed %d of %d requests", total, perPhase*len(res.done))
			}
		})
	}
}

// TestScenarioDeterministicTrace asserts the chaos acceptance criterion:
// the same scenario and seed yield a byte-identical virtual-time metrics
// trace — every commit instant, the fired-event trace, and the final
// replica states — across two independent runs, on both backends.
func TestScenarioDeterministicTrace(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m1 := runTimeline(t, kind, 7).metrics
			m2 := runTimeline(t, kind, 7).metrics
			if m1 != m2 {
				t.Fatalf("metrics differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
			}
		})
	}
}

// TestScenarioDifferentSeedsDiverge is the sanity complement of the
// determinism test. The simulation only consumes randomness where a
// fault actually draws it, so the probe scenario enables link jitter
// (which samples the loop RNG per frame): different seeds must then
// produce different virtual-time traces, while the same seed reproduces
// its trace exactly.
func TestScenarioDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) string {
		c, err := pbft.NewCluster(transport.KindTCP, chaosConfig(), model.Default(), seed,
			func(i int) pbft.Application { return kvstore.New() })
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		s := NewScenario("jittery-links")
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				s.Degrade(0, i, j, fabric.LinkFaults{Jitter: 200 * sim.Microsecond})
			}
		}
		Apply(c, s)
		base := c.Loop.Now()
		var trace strings.Builder
		done := 0
		c.Loop.Post(func() {
			for k := 0; k < 20; k++ {
				k := k
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%02d", k), "v"), func([]byte) {
					done++
					fmt.Fprintf(&trace, "commit %d t=%v\n", k, c.Loop.Now()-base)
				})
			}
		})
		c.Loop.RunUntil(base + 500*sim.Millisecond)
		if done != 20 {
			t.Fatalf("seed %d: committed %d of 20 under jitter", seed, done)
		}
		return trace.String()
	}
	a1, a2, b := run(7), run(7), run(8)
	if a1 != a2 {
		t.Fatal("same seed did not reproduce its trace under jitter")
	}
	if a1 == b {
		t.Fatal("different seeds produced identical traces despite jitter")
	}
}

// TestByzantineAndDegradePrimitives exercises the remaining scenario
// primitives: a delayed-send Byzantine replica, link degradation with
// extra latency, and fault clearing — the cluster must keep committing
// throughout.
func TestByzantineAndDegradePrimitives(t *testing.T) {
	c, err := pbft.NewCluster(transport.KindRDMA, chaosConfig(), model.Default(), 3,
		func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	s := NewScenario("degraded-backup").
		Byzantine(0, 3, pbft.Faults{SendDelay: 2 * sim.Millisecond}).
		Degrade(0, 2, 3, fabric.LinkFaults{ExtraLatency: sim.Millisecond, Jitter: 500 * sim.Microsecond}).
		ClearFaults(60*sim.Millisecond, 3).
		Degrade(60*sim.Millisecond, 2, 3, fabric.LinkFaults{})
	sched := Apply(c, s)

	base := c.Loop.Now()
	done := 0
	c.Loop.Post(func() {
		for k := 0; k < 30; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%02d", k), "v"), func([]byte) { done++ })
		}
	})
	c.Loop.RunUntil(base + 200*sim.Millisecond)
	if done != 30 {
		t.Fatalf("committed %d of 30 under degradation", done)
	}
	if err := sched.Err(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Trace()) != 4 {
		t.Fatalf("trace has %d events, want 4:\n%s", len(sched.Trace()), sched.TraceString())
	}
	d0 := c.Apps[0].Snapshot()
	for i := 1; i < 4; i++ {
		if c.Apps[i].Snapshot() != d0 {
			t.Fatalf("replica %d diverged", i)
		}
	}
}
