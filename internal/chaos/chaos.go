// Package chaos is the deterministic fault-injection and scenario
// orchestration subsystem: it schedules timed fault events against a
// pbft.Cluster on the cluster's simulation loop.
//
// A Scenario is a script of composable fault primitives — host crash and
// restart (with PBFT state transfer on rejoin), network partitions with
// heal, per-link degradation (loss, added latency, jitter), and extended
// Byzantine replica behaviours (equivocation, delayed sends, muted message
// types, corrupted authenticators). Because every event fires at a virtual
// time on the seeded sim.Loop and all randomness flows from the loop's
// source, the same scenario with the same seed produces an identical
// virtual-time trace on every run: fault experiments regress like unit
// tests and benchmark like the fault-free fast path.
//
// Typical use:
//
//	s := chaos.NewScenario("primary-crash-recovery").
//		Crash(10*sim.Millisecond, 0).
//		Restart(120*sim.Millisecond, 0).
//		Partition(200*sim.Millisecond, []int{0, 1}, []int{2, 3}).
//		Heal(260 * sim.Millisecond)
//	sched := chaos.Apply(cluster, s) // offsets count from this moment
//	... drive workload, run the loop ...
//	fmt.Print(sched.TraceString())
package chaos

import (
	"errors"
	"fmt"
	"strings"

	"rubin/internal/fabric"
	"rubin/internal/pbft"
	"rubin/internal/sim"
)

// Action mutates the cluster when its event fires.
type Action func(c *pbft.Cluster) error

// Event is one timed fault in a scenario. At is an offset from the moment
// the scenario is applied, not an absolute virtual time.
type Event struct {
	At   sim.Time
	Name string
	Do   Action
}

// Scenario is an ordered script of timed fault events. Builder methods
// append events and return the scenario for chaining; events with equal
// offsets fire in the order they were added.
type Scenario struct {
	name   string
	events []Event
}

// NewScenario creates an empty scenario.
func NewScenario(name string) *Scenario { return &Scenario{name: name} }

// Name returns the scenario name.
func (s *Scenario) Name() string { return s.name }

// Events returns a copy of the scripted events.
func (s *Scenario) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// At appends an arbitrary named action — the escape hatch for faults the
// built-in primitives do not cover.
func (s *Scenario) At(t sim.Time, name string, do Action) *Scenario {
	s.events = append(s.events, Event{At: t, Name: name, Do: do})
	return s
}

// Crash fault-stops replica i at offset t (process crash: all volatile
// state is lost).
func (s *Scenario) Crash(t sim.Time, i int) *Scenario {
	return s.At(t, fmt.Sprintf("crash(r%d)", i), func(c *pbft.Cluster) error {
		c.Crash(i)
		return nil
	})
}

// Restart replaces crashed replica i with a fresh instance at offset t;
// the newcomer rejoins via PBFT state transfer.
func (s *Scenario) Restart(t sim.Time, i int) *Scenario {
	return s.At(t, fmt.Sprintf("restart(r%d)", i), func(c *pbft.Cluster) error {
		return c.Restart(i)
	})
}

// Partition severs links between replica groups at offset t. Frames are
// held and delivered on Heal.
func (s *Scenario) Partition(t sim.Time, groups ...[]int) *Scenario {
	var parts []string
	for _, g := range groups {
		parts = append(parts, fmt.Sprintf("%v", g))
	}
	return s.At(t, "partition"+strings.Join(parts, "|"), func(c *pbft.Cluster) error {
		c.Partition(groups...)
		return nil
	})
}

// Heal restores all replica-to-replica links at offset t.
func (s *Scenario) Heal(t sim.Time) *Scenario {
	return s.At(t, "heal", func(c *pbft.Cluster) error {
		c.Heal()
		return nil
	})
}

// Degrade applies link fault state (loss, latency, jitter, down) to the
// link between replicas i and j at offset t.
func (s *Scenario) Degrade(t sim.Time, i, j int, f fabric.LinkFaults) *Scenario {
	return s.At(t, fmt.Sprintf("degrade(r%d-r%d,loss=%g,lat=%v,jit=%v,down=%t)",
		i, j, f.LossRate, f.ExtraLatency, f.Jitter, f.Down), func(c *pbft.Cluster) error {
		c.DegradeLink(i, j, f)
		return nil
	})
}

// Byzantine installs fault behaviour on replica i at offset t:
// equivocation, muted message types, corrupted authenticators, delayed
// sends, or any combination.
func (s *Scenario) Byzantine(t sim.Time, i int, f pbft.Faults) *Scenario {
	return s.At(t, fmt.Sprintf("byzantine(r%d)", i), func(c *pbft.Cluster) error {
		c.Replicas[i].SetFaults(f)
		return nil
	})
}

// ClearFaults removes injected Byzantine behaviour from replica i at
// offset t.
func (s *Scenario) ClearFaults(t sim.Time, i int) *Scenario {
	return s.At(t, fmt.Sprintf("clear(r%d)", i), func(c *pbft.Cluster) error {
		c.Replicas[i].SetFaults(pbft.Faults{})
		return nil
	})
}

// TraceEntry records one fired event at its virtual time.
type TraceEntry struct {
	At   sim.Time
	Name string
}

// Schedule is a scenario bound to a cluster: it owns the virtual-time
// trace of fired events and collects action errors.
type Schedule struct {
	cluster  *pbft.Cluster
	scenario *Scenario
	trace    []TraceEntry
	errs     []error
}

// Apply schedules every event of the scenario on the cluster's loop, with
// event offsets counted from the current virtual time. The events fire as
// the caller runs the loop (they do not run the loop themselves).
func Apply(c *pbft.Cluster, s *Scenario) *Schedule {
	sched := &Schedule{cluster: c, scenario: s}
	base := c.Loop.Now()
	for _, ev := range s.events {
		ev := ev
		c.Loop.At(base+ev.At, func() {
			sched.trace = append(sched.trace, TraceEntry{At: c.Loop.Now(), Name: ev.Name})
			if err := ev.Do(c); err != nil {
				sched.errs = append(sched.errs, fmt.Errorf("chaos: %s at %v: %w", ev.Name, ev.At, err))
			}
		})
	}
	return sched
}

// Trace returns the fired events in firing order.
func (sched *Schedule) Trace() []TraceEntry {
	out := make([]TraceEntry, len(sched.trace))
	copy(out, sched.trace)
	return out
}

// TraceString renders the trace one event per line — byte-identical
// across runs of the same scenario and seed.
func (sched *Schedule) TraceString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", sched.scenario.name)
	for _, e := range sched.trace {
		fmt.Fprintf(&b, "t=%v %s\n", e.At, e.Name)
	}
	return b.String()
}

// Err returns all action errors joined with the cluster's re-attach
// failures (Restart re-dials that could not complete), or nil. Folding in
// Cluster.AttachErr makes asynchronous recovery failures — a restarted
// replica that never got its connections back — visible to scenarios.
func (sched *Schedule) Err() error {
	errs := make([]error, len(sched.errs))
	copy(errs, sched.errs)
	if err := sched.cluster.AttachErr(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
