// Package shard partitions the keyspace across independent consensus
// groups. Each shard is a full PBFT replica group — its own log,
// checkpoints, state transfer and kvstore partition — and a routing
// front-end (Router) multiplexes client sessions across the groups by
// deterministic hash ranges (kvstore.PartitionKey). Single-key
// operations touch exactly one shard; multi-key operations (scans and
// multi-key read/write transactions) run as scatter-gather reads or as
// two-phase commit layered over consensus: PREPARE and COMMIT/ABORT are
// ordered operations in each participant shard's log, so a shard's vote
// and the transaction's outcome are replicated decisions that survive
// leader crashes — only the protocol's progress, never its safety,
// depends on the router.
package shard

import (
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/obs"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Config parameterizes a sharded deployment.
type Config struct {
	// Shards is the number of independent consensus groups the keyspace
	// is hash-partitioned across.
	Shards int
	// PBFT configures every group identically.
	PBFT pbft.Config
	// Retry is the backoff before a router re-submits an operation the
	// state machine refused with kvstore.Locked (a single-key write or
	// one-phase transaction that hit a prepared transaction's locks).
	Retry sim.Time
}

// DefaultConfig returns a 2-shard deployment of default PBFT groups.
func DefaultConfig() Config {
	return Config{Shards: 2, PBFT: pbft.DefaultConfig(), Retry: 200 * sim.Microsecond}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: need at least 1 shard, have %d", c.Shards)
	}
	if c.Retry <= 0 {
		return fmt.Errorf("shard: retry backoff must be positive, have %v", c.Retry)
	}
	return c.PBFT.Validate()
}

// keySeedStride separates co-hosted groups' keyring seeds; any constant
// larger than zero works, a prime just makes collisions with unrelated
// seed arithmetic unlikely.
const keySeedStride = 7919

// Deployment is a set of independent PBFT groups sharing one simulation
// loop and one fabric network — shard s's replica i is node "s<s>r<i>"
// on the shared network — plus the routers fronting them.
type Deployment struct {
	Loop     *sim.Loop
	Network  *fabric.Network
	Config   Config
	Kind     transport.Kind
	Clusters []*pbft.Cluster

	routers []*Router
	tracer  *obs.Tracer

	// readFastPath, when non-zero, enables the read-only fast path on
	// every router (existing and future) with this fallback timeout.
	readFastPath sim.Time
}

// EnableReadFastPath turns on the read-only optimization for the
// deployment's routers: single-key reads are multicast to the owning
// shard's replicas and accepted on 2F+1 matching tentative replies,
// falling back to the ordered path after timeout. Scans and transaction
// reads stay ordered — their consistency spans shards or lock state.
func (d *Deployment) EnableReadFastPath(timeout sim.Time) {
	d.readFastPath = timeout
	for _, r := range d.routers {
		for _, sub := range r.sub {
			sub.EnableReadFastPath(d.Loop, timeout)
		}
	}
}

// New builds a deployment of cfg.Shards PBFT groups over a shared
// simulated network. The application factory is invoked per (shard,
// replica); each shard's replicas hold only that shard's partition of
// the keyspace, populated and queried through its own group's log. Call
// Start, then AddRouter.
func New(kind transport.Kind, cfg Config, params model.Params, seed int64, appFactory func(shard, replica int) pbft.Application) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	loop := sim.NewLoop(seed)
	d := &Deployment{
		Loop:    loop,
		Network: fabric.New(loop, params),
		Config:  cfg,
		Kind:    kind,
	}
	for s := 0; s < cfg.Shards; s++ {
		s := s
		cl, err := pbft.NewClusterIn(loop, d.Network, fmt.Sprintf("s%d", s), kind, cfg.PBFT,
			seed+int64(s+1)*keySeedStride,
			func(i int) pbft.Application { return appFactory(s, i) })
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		d.Clusters = append(d.Clusters, cl)
	}
	return d, nil
}

// NewKV builds a deployment whose application is a fresh kvstore.Store
// per replica — the standard sharded key/value service.
func NewKV(kind transport.Kind, cfg Config, params model.Params, seed int64) (*Deployment, error) {
	return New(kind, cfg, params, seed, func(_, _ int) pbft.Application { return kvstore.New() })
}

// Start brings up every group (listeners plus full peer meshes).
func (d *Deployment) Start() error {
	for s, cl := range d.Clusters {
		if err := cl.Start(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// SetTracer attaches an observability tracer to every group and router
// mesh. Call before generating traffic; a nil tracer detaches.
func (d *Deployment) SetTracer(t *obs.Tracer) {
	d.tracer = t
	for _, cl := range d.Clusters {
		cl.SetTracer(t)
	}
	for _, r := range d.routers {
		r.mesh.SetTracer(t)
	}
}

// Cluster returns shard s's replica group — the handle chaos scenarios
// target to fault one shard.
func (d *Deployment) Cluster(s int) *pbft.Cluster { return d.Clusters[s] }

// RunFor advances the shared simulation by dur.
func (d *Deployment) RunFor(dur sim.Time) { d.Loop.RunUntil(d.Loop.Now() + dur) }

// SendFaults sums surfaced delivery failures across every group.
func (d *Deployment) SendFaults() uint64 {
	var n uint64
	for _, cl := range d.Clusters {
		n += cl.SendFaults()
	}
	return n
}

// PeakQueueBytes returns the deepest msgnet send queue observed on any
// replica mesh of any group.
func (d *Deployment) PeakQueueBytes() int {
	peak := 0
	for _, cl := range d.Clusters {
		if q := cl.PeakQueueBytes(); q > peak {
			peak = q
		}
	}
	return peak
}
