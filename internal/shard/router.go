package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/msgnet"
	"rubin/internal/pbft"
	"rubin/internal/sim"
)

// Router is the routing front-end of a sharded deployment: it owns one
// PBFT client per shard, routes each operation to the group owning its
// keys (kvstore.PartitionKey hash ranges), fans scans out across every
// shard, and coordinates cross-shard transactions with two-phase commit
// over consensus. The router is a coordinator, not a trust anchor —
// every PREPARE and COMMIT/ABORT it sends is an ordered operation that
// a BFT quorum of the participant shard executes, so a faulty router
// can stall its own transactions but cannot break atomicity.
type Router struct {
	dep  *Deployment
	node string
	mesh *msgnet.Mesh
	sub  []*pbft.Client

	// inflight counts operations accepted by InvokeOp whose done has
	// not fired — unlike the sub-clients' Outstanding, it also covers
	// lock-retry backoffs and the gap between 2PC phases.
	inflight int
	retries  uint64
	txns2PC  uint64
	errs     []error
}

// routerClientID derives the PBFT identity router ridx uses toward
// shard s. Each (router, shard) pair needs its own identity: request
// keys are (client, timestamp) pairs traced in the deployment's shared
// observability stream, so two sub-clients sharing an identity would
// make unrelated operations indistinguishable. The stride bounds a
// deployment at 1024 routers before identities could collide.
func routerClientID(ridx, s int) uint32 { return uint32(100+ridx) + uint32(s)*1024 }

// AddRouter creates a router on its own network node, connected to
// every replica of every shard. Must run after Start.
func (d *Deployment) AddRouter() (*Router, error) {
	ridx := len(d.routers)
	name := fmt.Sprintf("router%d", ridx)
	node := d.Network.AddNode(name)
	n := d.Config.PBFT.N
	for s := 0; s < d.Config.Shards; s++ {
		for i := 0; i < n; i++ {
			d.Network.Connect(node, d.Network.Node(fmt.Sprintf("s%dr%d", s, i)))
		}
	}
	mesh, err := msgnet.NewMesh(d.Kind, node, msgnet.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mesh.SetTracer(d.tracer)
	r := &Router{dep: d, node: name, mesh: mesh}
	var dialErr error
	dials, want := 0, 0
	for s := 0; s < d.Config.Shards; s++ {
		sub := pbft.NewClient(routerClientID(ridx, s), d.Config.PBFT.F)
		if d.readFastPath > 0 {
			sub.EnableReadFastPath(d.Loop, d.readFastPath)
		}
		r.sub = append(r.sub, sub)
		for i := 0; i < n; i++ {
			want++
			s, i := s, i
			d.Loop.Post(func() {
				mesh.Dial(d.Network.Node(fmt.Sprintf("s%dr%d", s, i)), pbft.ClientPort, func(p *msgnet.Peer, err error) {
					if err != nil {
						dialErr = err
						return
					}
					r.sub[s].AttachReplica(uint32(i), p)
					dials++
				})
			})
		}
	}
	d.Loop.Run()
	if dialErr != nil {
		return nil, dialErr
	}
	if dials != want {
		return nil, fmt.Errorf("shard: router wired %d of %d connections", dials, want)
	}
	d.routers = append(d.routers, r)
	return r, nil
}

// InvokeOp routes one encoded kvstore operation; done fires exactly
// once with the final reply. Single-key operations go to the shard
// owning the key, with a deterministic backoff-and-resubmit whenever
// the state machine refuses a write with kvstore.Locked. Scans scatter
// as partition-filtered sub-scans and merge locally. A multi-key
// transaction runs one-phase on its home shard when every key hashes
// there, and through 2PC over consensus otherwise. The returned string
// is the trace id of the operation's (first) sub-request.
func (r *Router) InvokeOp(op []byte, done func([]byte)) string {
	r.inflight++
	finish := func(res []byte) {
		r.inflight--
		if done != nil {
			done(res)
		}
	}
	S := len(r.sub)
	code, key, value, err := kvstore.DecodeOp(op)
	if err != nil {
		// Undecodable bytes still deserve an ordered ERR reply.
		return r.sub[0].Invoke(op, finish)
	}
	if code == kvstore.OpScan && S > 1 {
		limit := 0
		if n, err := strconv.Atoi(value); err == nil && n > 0 {
			limit = n
		}
		return r.scatterScan(key, limit, finish)
	}
	keys, err := kvstore.OpKeys(op)
	if err != nil || len(keys) == 0 {
		return r.sub[0].Invoke(op, finish)
	}
	home := kvstore.PartitionKey(keys[0], S)
	if code == kvstore.OpTxn {
		for _, k := range keys[1:] {
			if kvstore.PartitionKey(k, S) != home {
				return r.invoke2PC(key, value, finish)
			}
		}
	}
	// Single-key reads ride the owning shard's fast path (a no-op
	// routing to the ordered path while the fast path is off). A Get
	// needs no lock-retry loop: reads never observe kvstore.Locked —
	// staged transaction writes are invisible until their COMMIT
	// executes, which is exactly what makes the tentative read safe
	// against in-flight 2PC.
	if code == kvstore.OpGet {
		return r.sub[home].InvokeRead(op, finish)
	}
	return r.invokeRetry(home, op, finish)
}

// SetReadPathHook propagates a path-taken callback to every shard's
// sub-client (see pbft.Client.SetReadPathHook).
func (r *Router) SetReadPathHook(fn func(key string, fast bool)) {
	for _, s := range r.sub {
		s.SetReadPathHook(fn)
	}
}

// FastReads returns fast-path-served reads across shards.
func (r *Router) FastReads() uint64 {
	var total uint64
	for _, s := range r.sub {
		total += s.FastReads()
	}
	return total
}

// FastReadFallbacks returns ordered-path fallbacks across shards.
func (r *Router) FastReadFallbacks() uint64 {
	var total uint64
	for _, s := range r.sub {
		total += s.FastReadFallbacks()
	}
	return total
}

// invokeRetry submits op to one shard, resubmitting after the
// configured backoff for as long as the state machine replies
// kvstore.Locked. The condition clears when the lock-holding prepared
// transaction's decision executes, so in a live system the retry loop
// terminates. Each resubmission is a fresh request; the returned trace
// id is the first attempt's.
func (r *Router) invokeRetry(shard int, op []byte, done func([]byte)) string {
	var submit func() string
	handle := func(res []byte) {
		if string(res) == kvstore.Locked {
			r.retries++
			r.dep.Loop.After(r.dep.Config.Retry, func() { submit() })
			return
		}
		done(res)
	}
	submit = func() string { return r.sub[shard].Invoke(op, handle) }
	return submit()
}

// scatterScan fans a scan out as one partition-filtered OpScanPart per
// shard and merges the partial replies into the result a whole-keyspace
// scan would have produced. done fires once, after the last partial
// lands. The returned trace id is the shard-0 leg's.
func (r *Router) scatterScan(prefix string, limit int, done func([]byte)) string {
	S := len(r.sub)
	partials := make([]string, S)
	pending := S
	var traceID string
	for s, sub := range kvstore.SplitScan(prefix, limit, S) {
		s := s
		id := r.sub[s].Invoke(sub, func(res []byte) {
			partials[s] = string(res)
			if pending--; pending == 0 {
				done([]byte(kvstore.MergeScans(partials, limit)))
			}
		})
		if s == 0 {
			traceID = id
		}
	}
	return traceID
}

// participant is one shard's slice of a cross-shard transaction.
type participant struct {
	shard int
	subs  []kvstore.TxnSub
	idx   []int // positions of subs within the original transaction
}

// invoke2PC coordinates a cross-shard transaction: a PREPARE carrying
// each participant's sub-operations is ordered in that shard's log
// (staging writes, taking locks, executing reads under them), and once
// every vote is in, the decision — COMMIT iff every shard voted
// PREPARED — is ordered in every participant's log. Conflicting
// prepares vote ABORTED instead of waiting (no-wait locking), so 2PC
// over consensus cannot deadlock; the client sees TxnAborted and may
// retry the whole transaction. done fires after every decision quorum
// confirms, with the per-sub results (read values captured at prepare
// time, under the locks) merged back into original sub order.
func (r *Router) invoke2PC(id, payload string, done func([]byte)) string {
	subs, err := kvstore.DecodeTxnSubs([]byte(payload))
	if err != nil {
		done([]byte("ERR " + err.Error()))
		return ""
	}
	S := len(r.sub)
	byShard := make(map[int]*participant)
	var order []int
	for i, sub := range subs {
		s := kvstore.PartitionKey(sub.Key, S)
		p := byShard[s]
		if p == nil {
			p = &participant{shard: s}
			byShard[s] = p
			order = append(order, s)
		}
		p.subs = append(p.subs, sub)
		p.idx = append(p.idx, i)
	}
	sort.Ints(order) // deterministic dispatch order
	r.txns2PC++

	results := make([][]byte, len(subs))
	commit := true
	pending := len(order)
	start := r.dep.Loop.Now()
	var traceID string
	for _, s := range order {
		p := byShard[s]
		tid := r.sub[s].Invoke(kvstore.EncodePrepare(id, p.subs), func(res []byte) {
			status, rs, err := kvstore.DecodeTxnResult(res)
			switch {
			case err == nil && status == kvstore.TxnPrepared && len(rs) == len(p.idx):
				for j, orig := range p.idx {
					results[orig] = rs[j]
				}
			case err == nil && status == kvstore.TxnAborted:
				commit = false
			default:
				// A quorum-confirmed reply that is neither a vote nor an
				// abort is a protocol error (malformed transaction, buggy
				// coordinator); abort and surface it through Errs.
				commit = false
				r.errs = append(r.errs, fmt.Errorf("shard %d: txn %s prepare reply %q", p.shard, id, res))
			}
			if pending--; pending == 0 {
				r.decide(id, order, commit, results, start, traceID, done)
			}
		})
		if traceID == "" {
			traceID = tid
		}
	}
	return traceID
}

// decide orders the transaction's outcome in every participant's log
// and replies to the client once all decision quorums confirm. The
// decision goes to every participant including shards that voted
// ABORTED without staging anything — aborting an unknown transaction is
// an idempotent no-op, and the decision must land in each log so every
// replica of every participant resolves the transaction the same way.
func (r *Router) decide(id string, order []int, commit bool, results [][]byte, start sim.Time, traceID string, done func([]byte)) {
	loop := r.dep.Loop
	voted := loop.Now()
	if t := r.dep.tracer; t != nil {
		t.RecordPrepareWait(voted - start)
		t.Span("shard", "2pc-prepare", r.node, traceID, start, voted)
	}
	decision, want, span := kvstore.EncodeCommit(id), kvstore.TxnCommitted, "2pc-commit"
	if !commit {
		decision, want, span = kvstore.EncodeAbort(id), kvstore.TxnAborted, "2pc-abort"
	}
	pending := len(order)
	for _, s := range order {
		s := s
		r.sub[s].Invoke(decision, func(res []byte) {
			status, _, err := kvstore.DecodeTxnResult(res)
			if err != nil || status != want {
				r.errs = append(r.errs, fmt.Errorf("shard %d: txn %s decision reply %q (want %s)", s, id, res, want))
			}
			if pending--; pending == 0 {
				end := loop.Now()
				if t := r.dep.tracer; t != nil {
					t.RecordCommitWait(end - voted)
					t.Span("shard", span, r.node, traceID, voted, end)
				}
				if commit {
					done(kvstore.EncodeTxnResult(kvstore.TxnCommitted, results))
				} else {
					done(kvstore.EncodeTxnResult(kvstore.TxnAborted, nil))
				}
			}
		})
	}
}

// Outstanding returns the operations accepted by InvokeOp that have not
// replied — including ones parked in a lock-retry backoff or between
// 2PC phases, which hold no sub-client invocation at that instant.
func (r *Router) Outstanding() int { return r.inflight }

// Completed returns the finished sub-invocations across all shards
// (2PC counts one per phase per participant).
func (r *Router) Completed() uint64 {
	var total uint64
	for _, s := range r.sub {
		total += s.Completed()
	}
	return total
}

// Retries returns how many lock-conflict resubmissions the router
// performed.
func (r *Router) Retries() uint64 { return r.retries }

// CrossShardTxns returns how many transactions went through 2PC.
func (r *Router) CrossShardTxns() uint64 { return r.txns2PC }

// Errs joins the 2PC protocol errors observed so far — nil in a
// healthy run. Votes of ABORTED are normal conflicts, not errors.
func (r *Router) Errs() error { return errors.Join(r.errs...) }
