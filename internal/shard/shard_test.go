package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rubin/internal/chaos"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// testConfig shrinks batches and checkpoint intervals so recovery
// happens within short virtual windows, like the chaos suite does.
func testConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.PBFT.BatchSize = 2
	cfg.PBFT.CheckpointEvery = 4
	cfg.PBFT.LogWindow = 64
	return cfg
}

func newTestDeployment(t *testing.T, kind transport.Kind, shards int) (*Deployment, *Router) {
	t.Helper()
	d, err := NewKV(kind, testConfig(shards), model.Default(), 1)
	if err != nil {
		t.Fatalf("NewKV: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	r, err := d.AddRouter()
	if err != nil {
		t.Fatalf("AddRouter: %v", err)
	}
	return d, r
}

// keyOn returns a key with the given tag prefix that PartitionKey
// assigns to the wanted shard.
func keyOn(shard, parts int, tag string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s%d", tag, i)
		if kvstore.PartitionKey(k, parts) == shard {
			return k
		}
	}
}

// store returns replica i's state machine of shard s.
func store(d *Deployment, s, i int) *kvstore.Store {
	return d.Clusters[s].Apps[i].(*kvstore.Store)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Shards = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	bad = DefaultConfig()
	bad.Retry = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Retry=0 accepted")
	}
}

func TestSingleKeyOpsRouteToOwningShard(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	const n = 8
	keys := make([]string, n)
	got := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	d.Loop.Post(func() {
		for i, k := range keys {
			i, k := i, k
			r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, k, fmt.Sprintf("v%d", i)), func(res []byte) {
				if string(res) != "OK" {
					t.Errorf("put %s: %q", k, res)
				}
				r.InvokeOp(kvstore.EncodeOp(kvstore.OpGet, k, ""), func(res []byte) {
					got[i] = string(res)
				})
			})
		}
	})
	d.Loop.Run()
	for i, k := range keys {
		if want := fmt.Sprintf("v%d", i); got[i] != want {
			t.Errorf("get %s = %q, want %q", k, got[i], want)
		}
		// The key lives on exactly the shard PartitionKey names, on
		// every replica of that shard, and nowhere else.
		owner := kvstore.PartitionKey(k, S)
		for s := 0; s < S; s++ {
			for i := 0; i < d.Config.PBFT.N; i++ {
				if _, ok := store(d, s, i).Get(k); ok != (s == owner) {
					t.Errorf("key %s on shard %d replica %d: present=%v, owner=%d", k, s, i, ok, owner)
				}
			}
		}
	}
	if err := r.Errs(); err != nil {
		t.Fatalf("router errors: %v", err)
	}
}

func TestScanMergesAcrossShards(t *testing.T) {
	d, r := newTestDeployment(t, transport.KindRDMA, 4)
	var want []string
	d.Loop.Post(func() {
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("acct%02d", i)
			want = append(want, fmt.Sprintf("%s=%d", k, i))
			r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, k, fmt.Sprintf("%d", i)), nil)
			r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("other%02d", i), "x"), nil)
		}
	})
	d.Loop.Run()
	sort.Strings(want)
	var full, capped string
	d.Loop.Post(func() {
		r.InvokeOp(kvstore.EncodeOp(kvstore.OpScan, "acct", ""), func(res []byte) { full = string(res) })
		r.InvokeOp(kvstore.EncodeOp(kvstore.OpScan, "acct", "7"), func(res []byte) { capped = string(res) })
	})
	d.Loop.Run()
	if full != strings.Join(want, "\n") {
		t.Errorf("scan = %q, want %q", full, strings.Join(want, "\n"))
	}
	if capped != strings.Join(want[:7], "\n") {
		t.Errorf("capped scan = %q, want %q", capped, strings.Join(want[:7], "\n"))
	}
}

// invokeTxn submits a transaction through the router and records its
// decoded status into statuses[id] when the reply lands.
func invokeTxn(d *Deployment, r *Router, statuses map[string]string, id string, subs []kvstore.TxnSub) {
	d.Loop.Post(func() {
		r.InvokeOp(kvstore.EncodeTxn(id, subs), func(res []byte) {
			status, _, err := kvstore.DecodeTxnResult(res)
			if err != nil {
				status = "ERR " + string(res)
			}
			statuses[id] = status
		})
	})
}

func TestCrossShardTxnCommitsAtomically(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	ka, kb := keyOn(0, S, "a"), keyOn(1, S, "b")
	statuses := map[string]string{}
	invokeTxn(d, r, statuses, "w", []kvstore.TxnSub{
		{Code: kvstore.OpPut, Key: ka, Value: "1"},
		{Code: kvstore.OpPut, Key: kb, Value: "2"},
	})
	d.Loop.Run()
	if statuses["w"] != kvstore.TxnCommitted {
		t.Fatalf("writer txn status = %q", statuses["w"])
	}
	if r.CrossShardTxns() != 1 {
		t.Fatalf("CrossShardTxns = %d, want 1", r.CrossShardTxns())
	}

	// A cross-shard reader observes both writes; its reply carries the
	// read values in sub order.
	var readRes [][]byte
	d.Loop.Post(func() {
		r.InvokeOp(kvstore.EncodeTxn("r", []kvstore.TxnSub{
			{Code: kvstore.OpGet, Key: kb},
			{Code: kvstore.OpGet, Key: ka},
		}), func(res []byte) {
			status, rs, err := kvstore.DecodeTxnResult(res)
			if err != nil || status != kvstore.TxnCommitted {
				t.Errorf("reader txn reply %q (err %v)", res, err)
			}
			readRes = rs
		})
	})
	d.Loop.Run()
	if len(readRes) != 2 || string(readRes[0]) != "2" || string(readRes[1]) != "1" {
		t.Fatalf("reader results = %q, want [2 1]", readRes)
	}

	// Nothing stays staged or locked once the decisions executed.
	for s := 0; s < S; s++ {
		for i := 0; i < d.Config.PBFT.N; i++ {
			if ids := store(d, s, i).Prepared(); len(ids) != 0 {
				t.Errorf("shard %d replica %d still stages %v", s, i, ids)
			}
			for _, k := range []string{ka, kb} {
				if h := store(d, s, i).LockHolder(k); h != "" {
					t.Errorf("shard %d replica %d still locks %s for %s", s, i, k, h)
				}
			}
		}
	}
	if err := r.Errs(); err != nil {
		t.Fatalf("router errors: %v", err)
	}
}

func TestSingleShardTxnTakesFastPath(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	ka, kb := keyOn(0, S, "p"), keyOn(0, S, "q")
	statuses := map[string]string{}
	invokeTxn(d, r, statuses, "fast", []kvstore.TxnSub{
		{Code: kvstore.OpPut, Key: ka, Value: "1"},
		{Code: kvstore.OpPut, Key: kb, Value: "2"},
	})
	d.Loop.Run()
	if statuses["fast"] != kvstore.TxnCommitted {
		t.Fatalf("txn status = %q", statuses["fast"])
	}
	if r.CrossShardTxns() != 0 {
		t.Fatalf("CrossShardTxns = %d, want 0 (one-phase fast path)", r.CrossShardTxns())
	}
	if v, _ := store(d, 0, 0).Get(ka); v != "1" {
		t.Fatalf("%s = %q, want 1", ka, v)
	}
}

// TestConflictingTxnsNeverTear drives two concurrent cross-shard
// transactions over the same keys. Whatever the interleaving decides —
// both may commit serially, or no-wait locking may abort one or both —
// the surviving state must be exactly one transaction's write set,
// never a mix, and no locks or staged state may leak.
func TestConflictingTxnsNeverTear(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	ka, kb := keyOn(0, S, "x"), keyOn(1, S, "y")
	statuses := map[string]string{}
	for _, id := range []string{"A", "B"} {
		invokeTxn(d, r, statuses, id, []kvstore.TxnSub{
			{Code: kvstore.OpPut, Key: ka, Value: id + ".1"},
			{Code: kvstore.OpPut, Key: kb, Value: id + ".2"},
		})
	}
	d.Loop.Run()
	committed := 0
	for id, st := range statuses {
		switch st {
		case kvstore.TxnCommitted:
			committed++
		case kvstore.TxnAborted:
		default:
			t.Fatalf("txn %s status = %q", id, st)
		}
	}
	va, okA := store(d, 0, 0).Get(ka)
	vb, okB := store(d, 1, 0).Get(kb)
	if committed == 0 {
		if okA || okB {
			t.Fatalf("no txn committed but keys exist: %q %q", va, vb)
		}
	} else {
		if !okA || !okB {
			t.Fatalf("committed txn left a hole: %v %v", okA, okB)
		}
		// Atomicity: both keys carry the same transaction's values.
		if va[:1] != vb[:1] {
			t.Fatalf("torn write: %s=%q %s=%q", ka, va, kb, vb)
		}
		if statuses[va[:1]] != kvstore.TxnCommitted {
			t.Fatalf("state holds writes of txn %s with status %q", va[:1], statuses[va[:1]])
		}
	}
	for s := 0; s < S; s++ {
		if ids := store(d, s, 0).Prepared(); len(ids) != 0 {
			t.Fatalf("shard %d still stages %v", s, ids)
		}
	}
	if err := r.Errs(); err != nil {
		t.Fatalf("router errors: %v", err)
	}
}

// TestLockedWriteRetriesUntilDecided races a plain single-key write
// against a cross-shard transaction locking the same key. The write
// may be refused with LOCKED while the transaction is in doubt; the
// router must retry it to completion, and the final value must be one
// of the two writers' — with the transaction's partner key intact.
func TestLockedWriteRetriesUntilDecided(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	ka, kb := keyOn(0, S, "m"), keyOn(1, S, "n")
	statuses := map[string]string{}
	invokeTxn(d, r, statuses, "T", []kvstore.TxnSub{
		{Code: kvstore.OpPut, Key: ka, Value: "txn"},
		{Code: kvstore.OpPut, Key: kb, Value: "txn"},
	})
	var putRes string
	d.Loop.Post(func() {
		r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, ka, "plain"), func(res []byte) {
			putRes = string(res)
		})
	})
	d.Loop.Run()
	if putRes != "OK" {
		t.Fatalf("single-key put finished %q, want OK", putRes)
	}
	if statuses["T"] != kvstore.TxnCommitted && statuses["T"] != kvstore.TxnAborted {
		t.Fatalf("txn status = %q", statuses["T"])
	}
	va, _ := store(d, 0, 0).Get(ka)
	if va != "txn" && va != "plain" {
		t.Fatalf("%s = %q, want txn or plain", ka, va)
	}
	if statuses["T"] == kvstore.TxnCommitted {
		if vb, _ := store(d, 1, 0).Get(kb); vb != "txn" {
			t.Fatalf("committed txn's partner key %s = %q", kb, vb)
		}
	}
	if r.Outstanding() != 0 {
		t.Fatalf("router still has %d outstanding ops", r.Outstanding())
	}
}

// TestShardLeaderCrashMid2PC is the chaos smoke for the sharded
// deployment: shard 0's leader is crashed while cross-shard
// transactions are in flight. Shard 1 must keep committing single-key
// writes throughout the outage (fault isolation), and every in-flight
// transaction must still commit once shard 0's view change elects a new
// leader — 2PC over consensus leaves no transaction wedged by one
// replica's crash.
func TestShardLeaderCrashMid2PC(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)
	statuses := map[string]string{}

	// Warm-up: prove the deployment commits cross-shard before faults.
	invokeTxn(d, r, statuses, "warm", []kvstore.TxnSub{
		{Code: kvstore.OpPut, Key: keyOn(0, S, "w"), Value: "1"},
		{Code: kvstore.OpPut, Key: keyOn(1, S, "w.b"), Value: "2"},
	})
	d.Loop.Run()
	if statuses["warm"] != kvstore.TxnCommitted {
		t.Fatalf("warm-up txn status = %q", statuses["warm"])
	}

	// Crash shard 0's current leader (view 0 → replica 0) just after a
	// wave of cross-shard transactions starts, so the fault lands in
	// the middle of their 2PC exchanges.
	const wave = 5
	sched := chaos.Apply(d.Cluster(0), chaos.NewScenario("s0-leader-crash").
		Crash(d.Loop.Now()+50*sim.Microsecond, 0))
	for i := 0; i < wave; i++ {
		invokeTxn(d, r, statuses, fmt.Sprintf("t%d", i), []kvstore.TxnSub{
			{Code: kvstore.OpPut, Key: keyOn(0, S, fmt.Sprintf("c%d.", i)), Value: "1"},
			{Code: kvstore.OpPut, Key: keyOn(1, S, fmt.Sprintf("d%d.", i)), Value: "2"},
		})
	}
	d.RunFor(time2PCOutage(d))

	// While shard 0 is leaderless (its view change has not fired yet),
	// shard 1 keeps committing single-key writes.
	okCount := 0
	d.Loop.Post(func() {
		for i := 0; i < 10; i++ {
			r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, keyOn(1, S, fmt.Sprintf("live%d.", i)), "v"), func(res []byte) {
				if string(res) == "OK" {
					okCount++
				}
			})
		}
	})
	d.RunFor(d.Config.PBFT.ViewTimeout / 2)
	if okCount != 10 {
		t.Fatalf("shard 1 committed %d of 10 writes during shard 0's outage", okCount)
	}

	// Drain: shard 0's view change elects a new leader and every
	// in-flight transaction resolves — committed, since their key sets
	// are disjoint.
	d.Loop.Run()
	for i := 0; i < wave; i++ {
		if st := statuses[fmt.Sprintf("t%d", i)]; st != kvstore.TxnCommitted {
			t.Errorf("txn t%d status = %q after recovery", i, st)
		}
	}
	if err := sched.Err(); err != nil {
		t.Fatalf("chaos schedule: %v", err)
	}
	if err := r.Errs(); err != nil {
		t.Fatalf("router errors: %v", err)
	}
	if r.Outstanding() != 0 {
		t.Fatalf("router still has %d outstanding ops", r.Outstanding())
	}
}

// time2PCOutage is how long the crash wave runs before the liveness
// probe: long enough for the crash event to fire, well short of the
// view timeout.
func time2PCOutage(d *Deployment) sim.Time { return d.Config.PBFT.ViewTimeout / 4 }

// TestShardBackupRecoveryViaPartialTransfer crashes and restarts a
// backup of one shard group under single-key traffic: the restarted
// replica must rejoin through the Merkle partial state transfer
// (kvstore implements pbft.PartitionedState, so shard groups inherit
// the subtree negotiation unchanged), converge on the shard's digest,
// and then participate in a cross-shard transaction — proving the
// transferred header restored the 2PC staging machinery too.
func TestShardBackupRecoveryViaPartialTransfer(t *testing.T) {
	const S = 2
	d, r := newTestDeployment(t, transport.KindRDMA, S)

	c0 := d.Cluster(0)
	c0.Crash(3)
	okCount := 0
	d.Loop.Post(func() {
		for i := 0; i < 20; i++ {
			r.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, keyOn(0, S, fmt.Sprintf("rec%d.", i)), "v"), func(res []byte) {
				if string(res) == "OK" {
					okCount++
				}
			})
		}
	})
	d.Loop.Run()
	if okCount != 20 {
		t.Fatalf("shard 0 committed %d of 20 writes with its backup down", okCount)
	}
	if c0.Replicas[0].Stable() < 8 {
		t.Fatalf("shard 0 stable = %d, want >= 8 before restart", c0.Replicas[0].Stable())
	}
	if err := c0.Restart(3); err != nil {
		t.Fatal(err)
	}
	d.Loop.Run() // state transfer completes
	if c0.Replicas[3].StateTransfers() == 0 {
		t.Fatal("restarted shard replica completed no state transfer")
	}
	if c0.Replicas[3].StateRejects() != 0 {
		t.Fatalf("%d transfer rejections on a clean network", c0.Replicas[3].StateRejects())
	}

	// The recovered replica executes a cross-shard transaction with the
	// rest of its group.
	statuses := map[string]string{}
	invokeTxn(d, r, statuses, "post", []kvstore.TxnSub{
		{Code: kvstore.OpPut, Key: keyOn(0, S, "post.a"), Value: "1"},
		{Code: kvstore.OpPut, Key: keyOn(1, S, "post.b"), Value: "2"},
	})
	d.Loop.Run()
	if statuses["post"] != kvstore.TxnCommitted {
		t.Fatalf("post-recovery txn status = %q", statuses["post"])
	}
	d.RunFor(200 * sim.Millisecond)
	if got, want := c0.Replicas[3].Executed(), c0.Replicas[0].Executed(); got != want {
		t.Fatalf("recovered replica executed %d, group %d", got, want)
	}
	d0 := store(d, 0, 0).Snapshot()
	for i := 1; i < 4; i++ {
		if store(d, 0, i).Snapshot() != d0 {
			t.Fatalf("shard 0 replica %d diverged after recovery", i)
		}
	}
	if err := r.Errs(); err != nil {
		t.Fatalf("router errors: %v", err)
	}
}
