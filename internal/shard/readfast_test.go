package shard

import (
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// TestRouterReadFastPath proves single-key Gets ride the owning shard's
// read fast path — on routers that existed before the enable call and
// on routers added after it — while scans and transactions stay on the
// ordered path (their consistency spans shards or lock state).
func TestRouterReadFastPath(t *testing.T) {
	const S = 2
	d, r1 := newTestDeployment(t, transport.KindRDMA, S)
	d.EnableReadFastPath(2 * sim.Millisecond)
	r2, err := d.AddRouter()
	if err != nil {
		t.Fatalf("AddRouter after enable: %v", err)
	}
	k0 := keyOn(0, S, "a")
	k1 := keyOn(1, S, "b")
	var paths []bool
	for _, r := range []*Router{r1, r2} {
		r.SetReadPathHook(func(_ string, fast bool) { paths = append(paths, fast) })
	}
	got := map[string]string{}
	d.Loop.Post(func() {
		r1.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, k0, "v0"), func([]byte) {
			r1.InvokeOp(kvstore.EncodeOp(kvstore.OpGet, k0, ""), func(res []byte) {
				got[k0] = string(res)
			})
		})
		r2.InvokeOp(kvstore.EncodeOp(kvstore.OpPut, k1, "v1"), func([]byte) {
			r2.InvokeOp(kvstore.EncodeOp(kvstore.OpGet, k1, ""), func(res []byte) {
				got[k1] = string(res)
			})
		})
	})
	d.Loop.Run()
	if got[k0] != "v0" || got[k1] != "v1" {
		t.Fatalf("fast reads returned %v", got)
	}
	if n := r1.FastReads() + r2.FastReads(); n != 2 {
		t.Fatalf("fast reads = %d, want 2 (one per router)", n)
	}
	if n := r1.FastReadFallbacks() + r2.FastReadFallbacks(); n != 0 {
		t.Fatalf("fallbacks = %d on a healthy deployment", n)
	}
	if len(paths) != 2 || !paths[0] || !paths[1] {
		t.Fatalf("path hooks = %v, want two fast reports", paths)
	}

	// Scans and read-only transactions must not touch the fast path:
	// a scan's snapshot spans shards, a transaction's reads interact
	// with 2PC lock state.
	var scanRes, txnRes string
	d.Loop.Post(func() {
		r1.InvokeOp(kvstore.EncodeOp(kvstore.OpScan, "", ""), func(res []byte) {
			scanRes = string(res)
		})
		r1.InvokeOp(kvstore.EncodeTxn("t1", []kvstore.TxnSub{{Code: kvstore.OpGet, Key: k0}}), func(res []byte) {
			txnRes = string(res)
		})
	})
	d.Loop.Run()
	if scanRes == "" {
		t.Fatal("scan returned nothing")
	}
	if txnRes == "" {
		t.Fatal("transaction returned nothing")
	}
	if n := r1.FastReads() + r2.FastReads(); n != 2 {
		t.Fatalf("fast reads = %d after scan+txn, want still 2 (both must stay ordered)", n)
	}
}
