package model

import (
	"testing"
	"testing/quick"

	"rubin/internal/sim"
)

func TestSerializeTimeScalesWithSize(t *testing.T) {
	lp := Default().Link
	small := lp.SerializeTime(1 << 10)
	big := lp.SerializeTime(100 << 10)
	if big <= small {
		t.Fatalf("serialize(100KB)=%v not greater than serialize(1KB)=%v", big, small)
	}
	// 10 Gbps moves 1 KB of payload in ~0.82 µs plus header overhead.
	if small < 700*sim.Nanosecond || small > 2*sim.Microsecond {
		t.Fatalf("serialize(1KB)=%v outside plausible band", small)
	}
}

func TestSerializeTimeZeroPayloadStillOneFrame(t *testing.T) {
	lp := Default().Link
	if got := lp.SerializeTime(0); got <= 0 {
		t.Fatalf("zero payload should still cost one frame header, got %v", got)
	}
	if Default().Link.Frames(0) != 1 {
		t.Fatal("zero payload should occupy one frame")
	}
}

func TestFrames(t *testing.T) {
	lp := LinkParams{BandwidthBytesPerSec: 1e9, MTU: 1500}
	cases := []struct{ size, want int }{
		{1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {3001, 3},
	}
	for _, c := range cases {
		if got := lp.Frames(c.size); got != c.want {
			t.Errorf("Frames(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestKBScaling(t *testing.T) {
	if got := KB(1000, 2048); got != 2000 {
		t.Fatalf("KB(1000ns, 2KB) = %v, want 2000", got)
	}
	if got := KB(1000, 512); got != 500 {
		t.Fatalf("KB(1000ns, 512B) = %v, want 500", got)
	}
	if got := KB(1000, 0); got != 0 {
		t.Fatalf("KB(_, 0) = %v, want 0", got)
	}
}

func TestPropertySerializeMonotonic(t *testing.T) {
	lp := Default().Link
	prop := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return lp.SerializeTime(x) <= lp.SerializeTime(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultIsSane(t *testing.T) {
	p := Default()
	if p.Host.Cores < 1 || p.Host.NICEngines < 1 {
		t.Fatal("host must have cores and NIC engines")
	}
	if p.Selector.SignalInterval < 1 || p.Selector.PostBatch < 1 {
		t.Fatal("selector intervals must be >= 1")
	}
	// The entire premise: RDMA's per-message CPU cost must be far below
	// TCP's. Compare fixed CPU costs of one receive.
	tcpRecv := p.TCP.Interrupt + p.TCP.RecvSyscall + p.TCP.Wakeup
	rdmaRecv := p.RDMA.CQPoll + p.RDMA.CompletionHandle/sim.Time(p.Selector.SignalInterval) + p.RDMA.RecvWRRefill
	if rdmaRecv >= tcpRecv {
		t.Fatalf("calibration broken: RDMA recv CPU %v >= TCP recv CPU %v", rdmaRecv, tcpRecv)
	}
}
