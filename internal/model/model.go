// Package model holds the calibrated cost parameters of the simulated
// hardware and software stacks.
//
// The reproduction substitutes a discrete-event simulation for the paper's
// testbed (two 4-core Xeon v2 hosts, Mellanox MT27520 RoCE NICs, 10 Gbps
// full-duplex Ethernet, OFED 4.0-2, Java/DiSNI). Every constant below names
// a cost component the paper's argument depends on: TCP pays syscalls,
// intermediate copies and per-segment kernel processing on the host CPU,
// while RDMA pays much smaller doorbell/completion costs and moves payload
// bytes on the NIC's DMA engines instead of the CPU.
//
// Absolute values are loosely matched to the magnitudes in the paper's
// Figures 3 and 4 (hundreds of microseconds round-trip); the reproduction
// target is the relative behaviour — orderings, win factors and the ~16 KB
// crossover — which is asserted by calibration tests in internal/bench.
package model

import "rubin/internal/sim"

// LinkParams describes one full-duplex link of the fabric.
type LinkParams struct {
	// BandwidthBytesPerSec is the line rate of each direction.
	BandwidthBytesPerSec int64
	// Propagation is the one-way propagation plus switching delay.
	Propagation sim.Time
	// MTU is the maximum frame payload; larger sends are segmented for
	// per-segment cost accounting (the link itself serializes total bytes).
	MTU int
	// FrameOverheadBytes is added to every frame on the wire (headers).
	FrameOverheadBytes int
}

// SerializeTime returns the wire serialization time for a payload of the
// given size including per-frame header overhead.
func (lp LinkParams) SerializeTime(payload int) sim.Time {
	frames := (payload + lp.MTU - 1) / lp.MTU
	if frames < 1 {
		frames = 1
	}
	bytes := int64(payload + frames*lp.FrameOverheadBytes)
	return sim.Time(bytes * int64(sim.Second) / lp.BandwidthBytesPerSec)
}

// Frames returns the number of MTU-sized frames a payload occupies.
func (lp LinkParams) Frames(payload int) int {
	f := (payload + lp.MTU - 1) / lp.MTU
	if f < 1 {
		f = 1
	}
	return f
}

// HostParams describes a simulated host.
type HostParams struct {
	// Cores is the number of CPU cores (parallel servers of the CPU
	// resource). The paper's machines have 4-core Xeon v2 CPUs.
	Cores int
	// NICEngines is the number of parallel processing engines on the
	// RDMA NIC (DMA/WR pipelines).
	NICEngines int
}

// TCPParams is the cost model of the simulated kernel TCP/IP stack plus the
// Java-style socket layer above it. All CPU costs are charged to the host
// CPU resource; this is precisely the overhead RDMA avoids.
type TCPParams struct {
	// SendSyscall is the fixed cost of a write/send system call,
	// including user/kernel crossing and socket bookkeeping.
	SendSyscall sim.Time
	// RecvSyscall is the fixed cost of a read/recv system call.
	RecvSyscall sim.Time
	// CopyPerKB is the user<->kernel buffer copy cost per KB, charged
	// once on the send path and once on the receive path.
	CopyPerKB sim.Time
	// SegmentProc is the kernel protocol processing cost per MTU segment
	// (header build/parse, checksum, ACK clocking), charged on both ends.
	SegmentProc sim.Time
	// Interrupt is the per-arrival interrupt plus softirq entry cost.
	Interrupt sim.Time
	// Wakeup is the scheduler latency to wake a blocked reader or
	// selector after data becomes readable.
	Wakeup sim.Time
	// MsgHandle is the per-message framing/deframing and handler
	// dispatch cost of the byte-stream transport above the socket.
	MsgHandle sim.Time
	// ConnectRTTs is the number of round trips for connection setup.
	ConnectRTTs int
	// SocketBuffer is the size of the send and receive socket buffers;
	// writers stall when the in-flight window reaches this many bytes.
	SocketBuffer int
}

// RDMAParams is the cost model of the simulated RDMA verbs stack (RoCE
// RNIC + user-space verbs library, jVerbs/DiSNI flavored).
type RDMAParams struct {
	// PostWR is the CPU cost to build one work request and ring the
	// doorbell when posted individually.
	PostWR sim.Time
	// PostWRBatched is the marginal CPU cost per WR when several WRs are
	// posted with a single doorbell (the paper's batched posting).
	PostWRBatched sim.Time
	// NICProcess is the NIC engine cost to process one WR or incoming
	// frame (descriptor fetch, QP state update).
	NICProcess sim.Time
	// DMAPerKB is the NIC DMA engine cost per KB to read or write host
	// memory (charged on the NIC engine, not the CPU — the zero-copy
	// advantage).
	DMAPerKB sim.Time
	// InlineMax is the largest payload that can be sent inline in the
	// WR itself, skipping the DMA read on the send side.
	InlineMax int
	// InlineSave is the NIC-side saving for an inline send.
	InlineSave sim.Time
	// CQEGenerate is the NIC cost to produce a completion entry.
	CQEGenerate sim.Time
	// CQPoll is the CPU cost of one completion-queue poll that finds at
	// least one entry.
	CQPoll sim.Time
	// CompletionHandle is the CPU cost to process one *signaled*
	// completion through the event channel (the cost selective
	// signaling amortizes).
	CompletionHandle sim.Time
	// RecvWRRefill is the CPU cost to re-post one receive WR.
	RecvWRRefill sim.Time
	// MemRegisterBase and MemRegisterPerKB model ibv_reg_mr: pinning
	// pages and programming the NIC's translation tables. Registration
	// is expensive, which is why buffer pools are pre-registered.
	MemRegisterBase  sim.Time
	MemRegisterPerKB sim.Time
	// ConnectRTTs is the number of round trips for QP exchange
	// (RDMA CM address/route resolution + connect).
	ConnectRTTs int
	// RNRRetry is how many times a send is retried after a
	// receiver-not-ready NAK before completing with an error. Following
	// InfiniBand semantics, the value 7 means retry forever.
	RNRRetry int
	// RNRDelay is the backoff before each RNR retry.
	RNRDelay sim.Time
	// AckPropagation is the extra one-way delay for the hardware ACK
	// completing a reliable one-sided operation.
	AckPropagation sim.Time
}

// SelectorParams models the event-demultiplexing layers of Figure 4.
type SelectorParams struct {
	// NIODispatch is the per-readiness-event cost of the epoll-backed
	// Java NIO selector (highly optimized, per the paper).
	NIODispatch sim.Time
	// RubinDispatch is the per-event cost of RUBIN's hybrid event queue
	// plus event manager (the paper notes its select() is slower than
	// NIO's and native code is future work).
	RubinDispatch sim.Time
	// CopyPerKB is the cost of copying received payload from the
	// registered receive buffer into the application buffer — RUBIN's
	// known receive-side copy (paper Section IV).
	CopyPerKB sim.Time
	// MsgHandle is the per-message handling cost of the
	// message-oriented RUBIN transport (no deframing needed, cheaper
	// than the byte-stream path).
	MsgHandle sim.Time
	// SignalInterval is every how many sends RUBIN requests a signaled
	// completion (selective signaling). 1 disables the optimization.
	SignalInterval int
	// PostBatch is how many WRs RUBIN accumulates per doorbell.
	PostBatch int
	// ZeroCopyReceive, when true, removes the receive-side copy —
	// the paper's planned future optimization (used in ablations).
	ZeroCopyReceive bool
}

// CryptoParams models message-authentication CPU costs (Reptor protects
// replica messages with HMACs; paper Section III-C).
type CryptoParams struct {
	// HMACBase and HMACPerKB cost one HMAC computation or verification.
	HMACBase  sim.Time
	HMACPerKB sim.Time
	// DigestBase and DigestPerKB cost one message digest.
	DigestBase  sim.Time
	DigestPerKB sim.Time
}

// ProtocolParams models the agreement-protocol bookkeeping CPU costs that
// sit outside the transport and crypto stacks — the Java-flavored request
// validation, proposal marshalling and reply construction the Reptor
// leader pays for every request it orders. These terms are what make a
// single leader's CPU saturate under load: every replica pays
// ExecRequest, but only the leader pays OrderRequest/OrderPerKB for the
// whole offered load, which is exactly the bottleneck COP's K parallel
// leaders (Behl et al., Middleware '15) are designed to spread.
type ProtocolParams struct {
	// OrderRequest is the leader-side fixed CPU cost to validate, enqueue
	// and assign one client request into a proposal.
	OrderRequest sim.Time
	// OrderPerKB is the additional leader-side marshalling cost per KB of
	// request payload copied into the proposal.
	OrderPerKB sim.Time
	// ExecRequest is the per-request execution/reply bookkeeping cost
	// every replica pays at execution time.
	ExecRequest sim.Time
}

// OrderCost returns the leader CPU cost to order one request of the given
// payload size.
func (pp ProtocolParams) OrderCost(size int) sim.Time {
	return pp.OrderRequest + KB(pp.OrderPerKB, size)
}

// Params aggregates the full cluster model.
type Params struct {
	Link     LinkParams
	Host     HostParams
	TCP      TCPParams
	RDMA     RDMAParams
	Selector SelectorParams
	Crypto   CryptoParams
	Protocol ProtocolParams
}

// Default returns the calibrated parameter set used by all experiments.
// The values reproduce the relative results of the paper's Figures 3 and 4;
// see EXPERIMENTS.md for the measured-vs-paper comparison.
func Default() Params {
	return Params{
		Link: LinkParams{
			BandwidthBytesPerSec: 1_250_000_000, // 10 Gbps
			Propagation:          3 * sim.Microsecond,
			MTU:                  1500,
			FrameOverheadBytes:   58, // Ethernet+IP+TCP headers
		},
		Host: HostParams{
			Cores:      4,
			NICEngines: 2,
		},
		TCP: TCPParams{
			SendSyscall:  12 * sim.Microsecond,
			RecvSyscall:  10 * sim.Microsecond,
			CopyPerKB:    250 * sim.Nanosecond,
			SegmentProc:  500 * sim.Nanosecond,
			Interrupt:    8 * sim.Microsecond,
			Wakeup:       14 * sim.Microsecond,
			MsgHandle:    6500 * sim.Nanosecond,
			ConnectRTTs:  1,
			SocketBuffer: 4 << 20,
		},
		RDMA: RDMAParams{
			PostWR:           6 * sim.Microsecond,
			PostWRBatched:    1 * sim.Microsecond,
			NICProcess:       2 * sim.Microsecond,
			DMAPerKB:         125 * sim.Nanosecond, // ~8 GB/s DMA engines
			InlineMax:        256,
			InlineSave:       1500 * sim.Nanosecond,
			CQEGenerate:      1 * sim.Microsecond,
			CQPoll:           1 * sim.Microsecond,
			CompletionHandle: 8 * sim.Microsecond, // Java event-channel path
			RecvWRRefill:     1 * sim.Microsecond,
			MemRegisterBase:  80 * sim.Microsecond,
			MemRegisterPerKB: 250 * sim.Nanosecond,
			ConnectRTTs:      2,
			RNRRetry:         7,
			RNRDelay:         60 * sim.Microsecond,
			AckPropagation:   3 * sim.Microsecond,
		},
		Selector: SelectorParams{
			NIODispatch:     4 * sim.Microsecond,
			RubinDispatch:   5 * sim.Microsecond,
			MsgHandle:       3500 * sim.Nanosecond,
			CopyPerKB:       500 * sim.Nanosecond,
			SignalInterval:  8,
			PostBatch:       8,
			ZeroCopyReceive: false,
		},
		Crypto: CryptoParams{
			HMACBase:    1500 * sim.Nanosecond,
			HMACPerKB:   350 * sim.Nanosecond,
			DigestBase:  900 * sim.Nanosecond,
			DigestPerKB: 300 * sim.Nanosecond,
		},
		Protocol: ProtocolParams{
			// ~125 MB/s of leader-side marshalling: the Java-flavored
			// object serialization and copy work the Reptor ordering
			// stage pays per proposal byte.
			OrderRequest: 5 * sim.Microsecond,
			OrderPerKB:   8 * sim.Microsecond,
			ExecRequest:  2 * sim.Microsecond,
		},
	}
}

// KB converts a per-KB rate into a cost for size bytes, rounding to the
// nearest nanosecond.
func KB(perKB sim.Time, size int) sim.Time {
	return sim.Time(int64(perKB) * int64(size) / 1024)
}
