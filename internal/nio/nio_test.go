package nio

import (
	"bytes"
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/tcpsim"
)

type rig struct {
	loop   *sim.Loop
	na, nb *fabric.Node
	sa, sb *tcpsim.Stack
}

func newRig(t *testing.T) *rig {
	t.Helper()
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	na, nb := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(na, nb)
	return &rig{loop: loop, na: na, nb: nb, sa: tcpsim.NewStack(na), sb: tcpsim.NewStack(nb)}
}

func TestAcceptViaSelector(t *testing.T) {
	r := newRig(t)
	selB := NewSelector(r.sb)
	ssc, err := ListenSocket(r.sb, 100)
	if err != nil {
		t.Fatal(err)
	}
	selB.Register(ssc, OpAccept, "listener")

	var accepted *SocketChannel
	selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpAccept != 0 {
				if k.Attachment() != "listener" {
					t.Error("attachment lost")
				}
				accepted = k.Channel().(*ServerSocketChannel).Accept()
			}
		}
	})

	r.loop.At(0, func() {
		r.sa.Dial(r.nb, 100, func(c *tcpsim.Conn, err error) {
			if err != nil {
				t.Errorf("Dial: %v", err)
			}
		})
	})
	r.loop.Run()
	if accepted == nil {
		t.Fatal("selector never delivered OpAccept")
	}
	if !accepted.Conn().Established() {
		t.Fatal("accepted channel not established")
	}
}

func TestConnectViaSelector(t *testing.T) {
	r := newRig(t)
	if _, err := r.sb.Listen(100, nil); err != nil {
		t.Fatal(err)
	}
	selA := NewSelector(r.sa)
	sc := OpenSocket(r.sa)
	key := selA.Register(sc, OpConnect, nil)
	finished := false
	selA.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpConnect != 0 {
				finished = k.Channel().(*SocketChannel).FinishConnect()
			}
		}
	})
	r.loop.At(0, func() { sc.Connect(r.nb, 100) })
	r.loop.Run()
	if !finished {
		t.Fatal("FinishConnect reported failure")
	}
	if key.Ready()&OpConnect != 0 {
		t.Fatal("OpConnect readiness not cleared by FinishConnect")
	}
}

func TestConnectFailureSignalsOpConnect(t *testing.T) {
	r := newRig(t)
	selA := NewSelector(r.sa)
	sc := OpenSocket(r.sa)
	selA.Register(sc, OpConnect, nil)
	var finished, handled bool
	selA.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpConnect != 0 {
				handled = true
				finished = k.Channel().(*SocketChannel).FinishConnect()
			}
		}
	})
	r.loop.At(0, func() { sc.Connect(r.nb, 42) }) // nothing listening
	r.loop.Run()
	if !handled {
		t.Fatal("failed connect never signaled")
	}
	if finished {
		t.Fatal("FinishConnect should report failure")
	}
}

// echoPair builds a connected client/server channel pair with selectors.
func echoPair(t *testing.T, r *rig) (selA, selB *Selector, client, server *SocketChannel) {
	t.Helper()
	selA, selB = NewSelector(r.sa), NewSelector(r.sb)
	ssc, err := ListenSocket(r.sb, 100)
	if err != nil {
		t.Fatal(err)
	}
	selB.Register(ssc, OpAccept, nil)
	selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpAccept != 0 {
				server = k.Channel().(*ServerSocketChannel).Accept()
			}
		}
	})
	r.loop.At(0, func() {
		r.sa.Dial(r.nb, 100, func(c *tcpsim.Conn, err error) {
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			client = newSocketChannel(c)
		})
	})
	r.loop.Run()
	if client == nil || server == nil {
		t.Fatal("pair not established")
	}
	return selA, selB, client, server
}

func TestReadWriteThroughSelector(t *testing.T) {
	r := newRig(t)
	selA, selB, client, server := echoPair(t, r)

	// Server: echo everything back.
	selB.Register(server, OpRead, nil)
	buf := make([]byte, 32<<10)
	selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			sc := k.Channel().(*SocketChannel)
			if k.Ready()&OpRead != 0 {
				for {
					n, _ := sc.Read(buf)
					if n == 0 {
						break
					}
					_, _ = sc.Write(buf[:n])
				}
			}
		}
	})

	// Client: collect the echo.
	var got []byte
	selA.Register(client, OpRead, nil)
	selA.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			sc := k.Channel().(*SocketChannel)
			if k.Ready()&OpRead != 0 {
				for {
					n, _ := sc.Read(buf)
					if n == 0 {
						break
					}
					got = append(got, buf[:n]...)
				}
			}
		}
	})

	msg := bytes.Repeat([]byte("nio!"), 1000)
	r.loop.Post(func() { _, _ = client.Write(msg) })
	r.loop.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(got), len(msg))
	}
}

func TestOpWriteReadyImmediatelyOnIdleSocket(t *testing.T) {
	r := newRig(t)
	selA, _, client, _ := echoPair(t, r)
	var sawWrite bool
	selA.Register(client, OpWrite, nil)
	selA.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpWrite != 0 {
				sawWrite = true
				k.SetInterest(0) // stop busy-looping
			}
		}
	})
	r.loop.Run()
	if !sawWrite {
		t.Fatal("idle socket should be write-ready at registration")
	}
}

func TestPeerCloseSignalsRead(t *testing.T) {
	r := newRig(t)
	_, selB, client, server := echoPair(t, r)
	var sawClose bool
	selB.Register(server, OpRead, nil)
	selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			sc := k.Channel().(*SocketChannel)
			if k.Ready()&OpRead != 0 && sc.Closed() {
				sawClose = true
				sc.Close()
			}
		}
	})
	r.loop.Post(client.Close)
	r.loop.Run()
	if !sawClose {
		t.Fatal("peer close not observed via selector")
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	r := newRig(t)
	_, selB, client, server := echoPair(t, r)
	key := selB.Register(server, OpRead, nil)
	deliveries := 0
	selB.Select(func(keys []*SelectionKey) {
		deliveries++
		for range keys {
		}
		key.Cancel()
		// Drain so readiness doesn't re-arm.
		buf := make([]byte, 1024)
		for {
			n, _ := server.Read(buf)
			if n == 0 {
				break
			}
		}
	})
	r.loop.Post(func() { _, _ = client.Write([]byte("one")) })
	r.loop.Run()
	first := deliveries
	r.loop.Post(func() { _, _ = client.Write([]byte("two")) })
	r.loop.Run()
	if deliveries != first {
		t.Fatalf("canceled key still delivered: %d -> %d", first, deliveries)
	}
}

func TestSelectNowDrainsReadySet(t *testing.T) {
	r := newRig(t)
	// Build the pair without installing a Select handler anywhere, so
	// readiness accumulates for SelectNow-style polling.
	var server *SocketChannel
	if _, err := r.sb.Listen(100, func(c *tcpsim.Conn) { server = newSocketChannel(c) }); err != nil {
		t.Fatal(err)
	}
	var client *tcpsim.Conn
	r.loop.At(0, func() {
		r.sa.Dial(r.nb, 100, func(c *tcpsim.Conn, err error) { client = c })
	})
	r.loop.Run()
	if client == nil || server == nil {
		t.Fatal("pair not established")
	}
	selB := NewSelector(r.sb)
	selB.Register(server, OpRead, nil)
	r.loop.Post(func() { _, _ = client.Write([]byte("x")) })
	r.loop.Run()
	keys := selB.SelectNow()
	if len(keys) != 1 || keys[0].Ready()&OpRead == 0 {
		t.Fatalf("SelectNow = %v", keys)
	}
	if got := selB.SelectNow(); got != nil {
		t.Fatalf("second SelectNow should be empty, got %v", got)
	}
}

func TestMultipleChannelsOneSelector(t *testing.T) {
	r := newRig(t)
	selB := NewSelector(r.sb)
	ssc, err := ListenSocket(r.sb, 100)
	if err != nil {
		t.Fatal(err)
	}
	selB.Register(ssc, OpAccept, nil)

	received := map[byte]int{}
	buf := make([]byte, 64)
	selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			switch ch := k.Channel().(type) {
			case *ServerSocketChannel:
				for {
					sc := ch.Accept()
					if sc == nil {
						break
					}
					selB.Register(sc, OpRead, nil)
				}
			case *SocketChannel:
				for {
					n, _ := ch.Read(buf)
					if n == 0 {
						break
					}
					for _, b := range buf[:n] {
						received[b]++
					}
				}
			}
		}
	})

	const nConns = 5
	var clients []*tcpsim.Conn
	r.loop.At(0, func() {
		for i := 0; i < nConns; i++ {
			r.sa.Dial(r.nb, 100, func(c *tcpsim.Conn, err error) {
				if err != nil {
					t.Errorf("Dial: %v", err)
					return
				}
				clients = append(clients, c)
			})
		}
	})
	r.loop.Run()
	if len(clients) != nConns {
		t.Fatalf("only %d clients connected", len(clients))
	}
	r.loop.Post(func() {
		for i, c := range clients {
			_, _ = c.Write(bytes.Repeat([]byte{byte('a' + i)}, 10))
		}
	})
	r.loop.Run()
	if len(received) != nConns {
		t.Fatalf("received bytes from %d channels, want %d (%v)", len(received), nConns, received)
	}
	for b, n := range received {
		if n != 10 {
			t.Fatalf("channel %c delivered %d bytes, want 10", b, n)
		}
	}
	// A single-threaded selector served all five connections.
	if selB.Wakeups() == 0 {
		t.Fatal("no selector wakeups recorded")
	}
}
