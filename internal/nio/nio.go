// Package nio recreates the Java NIO selector/channel abstraction over the
// simulated TCP stack. It is the baseline RUBIN is measured against in the
// paper's Figure 4: BFT frameworks (BFT-SMaRt, UpRight, Reptor) multiplex
// all replica connections onto a single thread with exactly this interface,
// which is why RUBIN mimics it.
//
// The selector is event-driven rather than blocking: Select(handler)
// registers a callback that runs (once per readiness batch, after the
// modeled epoll dispatch cost) whenever registered channels become ready.
package nio

import (
	"errors"

	"rubin/internal/fabric"
	"rubin/internal/tcpsim"
)

// InterestOps is the bitmask of I/O events a selection key watches,
// mirroring java.nio.channels.SelectionKey.
type InterestOps uint8

// Interest/readiness bits.
const (
	OpAccept InterestOps = 1 << iota
	OpConnect
	OpRead
	OpWrite
)

// ErrCanceled is returned when operating on a canceled key.
var ErrCanceled = errors.New("nio: selection key canceled")

// Channel is anything registrable with a Selector.
type Channel interface {
	bind(k *SelectionKey)
	readiness() InterestOps
}

// Selector multiplexes readiness events from many channels onto a single
// application thread.
type Selector struct {
	stack    *tcpsim.Stack
	keys     []*SelectionKey
	handler  func([]*SelectionKey)
	ready    map[*SelectionKey]struct{}
	dispatch bool // a dispatch is already scheduled

	wakeups uint64
}

// NewSelector creates a selector bound to a node's TCP stack.
func NewSelector(stack *tcpsim.Stack) *Selector {
	return &Selector{stack: stack, ready: make(map[*SelectionKey]struct{})}
}

// Stack returns the underlying TCP stack.
func (s *Selector) Stack() *tcpsim.Stack { return s.stack }

// Wakeups returns the number of dispatch batches delivered (a measure of
// how well readiness events coalesce).
func (s *Selector) Wakeups() uint64 { return s.wakeups }

// Register attaches a channel to the selector with the given interest set
// and optional attachment, returning its selection key.
func (s *Selector) Register(ch Channel, ops InterestOps, attachment any) *SelectionKey {
	k := &SelectionKey{sel: s, ch: ch, interest: ops, attachment: attachment}
	s.keys = append(s.keys, k)
	ch.bind(k)
	// Channels may already be ready at registration time (e.g. a
	// writable socket registered for OpWrite).
	if r := ch.readiness() & ops; r != 0 {
		k.ready |= r
		s.enqueue(k)
	}
	return k
}

// Select installs the readiness handler. The handler runs once per
// readiness batch with the set of ready keys; readiness bits persist until
// consumed (read drained, write performed, accept taken), Java-style.
//
// Contract: like a level-triggered epoll loop, the handler MUST consume or
// explicitly clear (ResetReady / SetInterest) every readiness bit it is
// interested in — a bit left both ready and interesting re-dispatches
// immediately and the selector will spin, exactly as a real NIO event loop
// would.
func (s *Selector) Select(handler func(keys []*SelectionKey)) {
	s.handler = handler
	s.pump()
}

// SelectNow returns the currently ready keys without waiting and clears
// the pending set.
func (s *Selector) SelectNow() []*SelectionKey {
	keys := s.takeReady()
	return keys
}

func (s *Selector) takeReady() []*SelectionKey {
	if len(s.ready) == 0 {
		return nil
	}
	keys := make([]*SelectionKey, 0, len(s.ready))
	// Deterministic order: iterate registration list, not the map.
	for _, k := range s.keys {
		if _, ok := s.ready[k]; ok && !k.canceled {
			keys = append(keys, k)
		}
	}
	s.ready = make(map[*SelectionKey]struct{})
	return keys
}

// enqueue marks a key ready and schedules a dispatch batch.
func (s *Selector) enqueue(k *SelectionKey) {
	if k.canceled {
		return
	}
	s.ready[k] = struct{}{}
	s.pump()
}

func (s *Selector) pump() {
	if s.handler == nil || s.dispatch || len(s.ready) == 0 {
		return
	}
	s.dispatch = true
	// The epoll_wait return + key scan cost of the Java selector.
	params := s.stack.Node().Network().Params()
	s.stack.Node().CPU.Acquire(params.Selector.NIODispatch, func() {
		s.dispatch = false
		keys := s.takeReady()
		if len(keys) == 0 || s.handler == nil {
			return
		}
		s.wakeups++
		s.handler(keys)
		// Keys whose readiness was not consumed re-enter the set.
		for _, k := range keys {
			if !k.canceled && k.ready&k.interest != 0 {
				s.ready[k] = struct{}{}
			}
		}
		s.pump()
	})
}

// SelectionKey ties a channel to a selector with an interest set.
type SelectionKey struct {
	sel        *Selector
	ch         Channel
	interest   InterestOps
	ready      InterestOps
	attachment any
	canceled   bool
}

// Channel returns the registered channel.
func (k *SelectionKey) Channel() Channel { return k.ch }

// Attachment returns the object attached at registration.
func (k *SelectionKey) Attachment() any { return k.attachment }

// Attach replaces the attachment.
func (k *SelectionKey) Attach(a any) { k.attachment = a }

// Interest returns the current interest set.
func (k *SelectionKey) Interest() InterestOps { return k.interest }

// SetInterest replaces the interest set, re-evaluating readiness.
func (k *SelectionKey) SetInterest(ops InterestOps) {
	k.interest = ops
	if r := k.ch.readiness() & ops; r != 0 {
		k.ready |= r
		k.sel.enqueue(k)
	}
}

// Ready returns the bits currently ready on this key.
func (k *SelectionKey) Ready() InterestOps { return k.ready }

// ResetReady clears readiness bits after the application has handled them.
func (k *SelectionKey) ResetReady(ops InterestOps) { k.ready &^= ops }

// Cancel removes the key from its selector.
func (k *SelectionKey) Cancel() {
	if k.canceled {
		return
	}
	k.canceled = true
	delete(k.sel.ready, k)
	for i, other := range k.sel.keys {
		if other == k {
			k.sel.keys = append(k.sel.keys[:i], k.sel.keys[i+1:]...)
			break
		}
	}
}

// signal is called by channels when an event makes bits ready.
func (k *SelectionKey) signal(ops InterestOps) {
	if k == nil || k.canceled {
		return
	}
	if r := ops & k.interest; r != 0 {
		k.ready |= r
		k.sel.enqueue(k)
	}
}

// ServerSocketChannel accepts inbound connections, queueing them until the
// application calls Accept.
type ServerSocketChannel struct {
	stack    *tcpsim.Stack
	listener *tcpsim.Listener
	backlog  []*tcpsim.Conn
	key      *SelectionKey
}

// ListenSocket opens a listening server socket channel on the stack.
func ListenSocket(stack *tcpsim.Stack, port int) (*ServerSocketChannel, error) {
	ssc := &ServerSocketChannel{stack: stack}
	l, err := stack.Listen(port, func(c *tcpsim.Conn) {
		ssc.backlog = append(ssc.backlog, c)
		ssc.key.signal(OpAccept)
	})
	if err != nil {
		return nil, err
	}
	ssc.listener = l
	return ssc, nil
}

func (ssc *ServerSocketChannel) bind(k *SelectionKey) { ssc.key = k }

func (ssc *ServerSocketChannel) readiness() InterestOps {
	if len(ssc.backlog) > 0 {
		return OpAccept
	}
	return 0
}

// Accept dequeues one established inbound connection as a SocketChannel,
// or nil if none is pending.
func (ssc *ServerSocketChannel) Accept() *SocketChannel {
	if len(ssc.backlog) == 0 {
		if ssc.key != nil {
			ssc.key.ResetReady(OpAccept)
		}
		return nil
	}
	conn := ssc.backlog[0]
	ssc.backlog = ssc.backlog[1:]
	if len(ssc.backlog) == 0 && ssc.key != nil {
		ssc.key.ResetReady(OpAccept)
	}
	return newSocketChannel(conn)
}

// Close stops listening.
func (ssc *ServerSocketChannel) Close() {
	ssc.listener.Close()
	if ssc.key != nil {
		ssc.key.Cancel()
	}
}

// SocketChannel is a non-blocking byte-stream channel over one TCP
// connection.
type SocketChannel struct {
	conn      *tcpsim.Conn
	connStack *tcpsim.Stack // set on OpenSocket channels until connected
	key       *SelectionKey
	connected bool
	pendConn  bool // connect() issued, not yet finished
	closed    bool
}

func newSocketChannel(conn *tcpsim.Conn) *SocketChannel {
	sc := &SocketChannel{conn: conn, connected: true}
	sc.hook()
	return sc
}

// OpenSocket creates an unconnected socket channel on a stack; call
// Connect and register for OpConnect to complete it.
func OpenSocket(stack *tcpsim.Stack) *SocketChannel {
	return &SocketChannel{connStack: stack}
}

// WrapConn adapts an already-established TCP connection (e.g. from a bare
// Dial callback) into a socket channel.
func WrapConn(conn *tcpsim.Conn) *SocketChannel {
	return newSocketChannel(conn)
}

func (sc *SocketChannel) hook() {
	sc.conn.OnReadable(func() { sc.key.signal(OpRead) })
	sc.conn.OnWritable(func() { sc.key.signal(OpWrite) })
	sc.conn.OnClose(func() {
		sc.closed = true
		// A closed peer manifests as readability (read returns error).
		sc.key.signal(OpRead)
	})
}

// Connect initiates a non-blocking connect to port on the remote node.
// Completion is signaled as OpConnect readiness; call FinishConnect there.
func (sc *SocketChannel) Connect(remote *fabric.Node, port int) {
	if sc.pendConn || sc.connected {
		return
	}
	sc.pendConn = true
	sc.connStack.Dial(remote, port, func(c *tcpsim.Conn, err error) {
		sc.pendConn = false
		if err != nil {
			sc.closed = true
			sc.key.signal(OpConnect)
			return
		}
		sc.conn = c
		sc.connected = true
		sc.hook()
		sc.key.signal(OpConnect)
	})
}

// FinishConnect reports whether the channel is now connected; false after
// a failed connect.
func (sc *SocketChannel) FinishConnect() bool {
	if sc.key != nil {
		sc.key.ResetReady(OpConnect)
	}
	return sc.connected
}

func (sc *SocketChannel) bind(k *SelectionKey) { sc.key = k }

func (sc *SocketChannel) readiness() InterestOps {
	var r InterestOps
	if sc.conn != nil {
		if sc.conn.Readable() > 0 {
			r |= OpRead
		}
		if sc.conn.WritableSpace() > 0 {
			r |= OpWrite
		}
	}
	if sc.closed {
		r |= OpRead
	}
	return r
}

// Read copies available bytes into p (0 means would-block). Draining the
// buffer clears OpRead readiness.
func (sc *SocketChannel) Read(p []byte) (int, error) {
	if sc.conn == nil {
		return 0, tcpsim.ErrClosed
	}
	n, err := sc.conn.Read(p)
	if sc.conn.Readable() == 0 && sc.key != nil && !sc.closed {
		sc.key.ResetReady(OpRead)
	}
	return n, err
}

// Write queues bytes for transmission, returning the accepted count.
func (sc *SocketChannel) Write(p []byte) (int, error) {
	if sc.conn == nil {
		return 0, tcpsim.ErrClosed
	}
	return sc.conn.Write(p)
}

// Readable returns the bytes immediately available.
func (sc *SocketChannel) Readable() int {
	if sc.conn == nil {
		return 0
	}
	return sc.conn.Readable()
}

// Conn exposes the underlying simulated TCP connection.
func (sc *SocketChannel) Conn() *tcpsim.Conn { return sc.conn }

// Closed reports whether the channel has been closed (locally or by peer).
func (sc *SocketChannel) Closed() bool { return sc.closed }

// Close closes the channel and cancels its key.
func (sc *SocketChannel) Close() {
	sc.closed = true
	if sc.conn != nil {
		sc.conn.Close()
	}
	if sc.key != nil {
		sc.key.Cancel()
	}
}
