package msgnet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/raceflag"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func kinds() []transport.Kind { return []transport.Kind{transport.KindTCP, transport.KindRDMA} }

// pair is two meshed nodes: a dialed b.
type pair struct {
	loop *sim.Loop
	na   *fabric.Node
	nb   *fabric.Node
	ma   *Mesh
	mb   *Mesh
	ab   *Peer // a's outbound handle to b
	ba   *Peer // b's accepted handle from a
}

func newPair(t *testing.T, kind transport.Kind, opts Options) *pair {
	t.Helper()
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	p := &pair{loop: loop, na: nw.AddNode("a"), nb: nw.AddNode("b")}
	nw.Connect(p.na, p.nb)
	var err error
	if p.ma, err = NewMesh(kind, p.na, opts); err != nil {
		t.Fatalf("mesh a: %v", err)
	}
	if p.mb, err = NewMesh(kind, p.nb, opts); err != nil {
		t.Fatalf("mesh b: %v", err)
	}
	if err := p.mb.Listen(9, func(in *Peer) { p.ba = in }); err != nil {
		t.Fatalf("listen: %v", err)
	}
	var dialErr error
	loop.Post(func() {
		p.ma.Dial(p.nb, 9, func(peer *Peer, err error) { p.ab, dialErr = peer, err })
	})
	loop.Run()
	if dialErr != nil {
		t.Fatalf("dial: %v", dialErr)
	}
	if p.ab == nil || p.ba == nil {
		t.Fatal("pair not wired")
	}
	return p
}

// pattern returns n deterministic, position-dependent bytes so chunk
// reordering or truncation cannot go unnoticed.
func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*7 + seed
	}
	return out
}

// TestFragmentationRoundTrip drives the chunking edge cases on both
// backends: empty, tiny, the exact whole-frame boundary, one past it,
// exactly MaxMessage, several chunk-boundary straddles, and a snapshot-
// sized megabyte message.
func TestFragmentationRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	maxMsg := opts.Transport.MaxMessage
	chunk := opts.chunkPayload()
	cases := []struct {
		name string
		size int
	}{
		{"empty", 0},
		{"tiny", 100},
		{"whole-boundary", opts.maxWhole()},
		{"first-chunked", opts.maxWhole() + 1},
		{"exactly-maxmessage", maxMsg},
		{"one-chunk-exact", chunk},
		{"two-chunks-exact", 2 * chunk},
		{"two-chunks-straddle", 2*chunk + 17},
		{"megabyte", 1 << 20},
	}
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := newPair(t, kind, opts)
			type got struct {
				class Class
				msg   []byte
			}
			var recv []got
			p.ba.OnMessage(func(c Class, m []byte) {
				cp := make([]byte, len(m))
				copy(cp, m)
				recv = append(recv, got{c, cp})
			})
			for i, tc := range cases {
				cls := Class(i % numClasses)
				if err := p.ab.Send(cls, pattern(tc.size, byte(i))); err != nil {
					t.Fatalf("%s: send: %v", tc.name, err)
				}
			}
			p.loop.Run()
			if len(recv) != len(cases) {
				t.Fatalf("delivered %d of %d messages", len(recv), len(cases))
			}
			// Same-class order is preserved; cross-class order may
			// interleave, so match per class.
			byClass := map[Class][]got{}
			for _, g := range recv {
				byClass[g.class] = append(byClass[g.class], g)
			}
			idx := map[Class]int{}
			for i, tc := range cases {
				cls := Class(i % numClasses)
				g := byClass[cls][idx[cls]]
				idx[cls]++
				if !bytes.Equal(g.msg, pattern(tc.size, byte(i))) {
					t.Errorf("%s: payload mismatch (%d bytes delivered)", tc.name, len(g.msg))
				}
			}
			if p.ba.RecvErrors() != 0 || p.ab.SendErrors() != 0 {
				t.Errorf("recvErrs=%d sendErrs=%d, want 0/0", p.ba.RecvErrors(), p.ab.SendErrors())
			}
		})
	}
}

// TestClassInterleaving sends a megabyte bulk message first, then a train
// of control messages: the class round-robin must get most of the control
// train onto the wire before the bulk stream completes, instead of
// head-of-line-blocking it behind every chunk.
func TestClassInterleaving(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := newPair(t, kind, DefaultOptions())
			var order []string
			p.ba.OnMessage(func(c Class, m []byte) {
				if c == ClassBulk {
					order = append(order, "bulk")
				} else {
					order = append(order, fmt.Sprintf("ctl%d", m[0]))
				}
			})
			const controls = 8
			p.loop.Post(func() {
				if err := p.ab.Send(ClassBulk, pattern(1<<20, 3)); err != nil {
					t.Errorf("bulk send: %v", err)
				}
				for i := 0; i < controls; i++ {
					if err := p.ab.Send(ClassControl, []byte{byte(i)}); err != nil {
						t.Errorf("control send: %v", err)
					}
				}
			})
			p.loop.Run()
			if len(order) != controls+1 {
				t.Fatalf("delivered %d messages, want %d", len(order), controls+1)
			}
			before := 0
			for _, name := range order {
				if name == "bulk" {
					break
				}
				before++
			}
			// The 1 MB bulk message is 5 chunks; strict round-robin lets
			// ~one control through per chunk even though the bulk was
			// queued first.
			if before < 3 {
				t.Errorf("only %d control messages beat the bulk transfer (order %v)", before, order)
			}
		})
	}
}

// TestCloseDropsLateChunksAndReportsQueued closes the receiving peer
// before the chunk stream lands: nothing may be delivered, the loop must
// drain, and the sender's queued-but-undelivered messages must surface
// through the send-error counter rather than vanish.
func TestCloseDropsLateChunksAndReportsQueued(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := newPair(t, kind, DefaultOptions())
			delivered := 0
			p.ba.OnMessage(func(Class, []byte) { delivered++ })
			var sendErr error
			p.ab.OnSendError(func(err error) { sendErr = err })
			p.loop.Post(func() {
				if err := p.ab.Send(ClassBulk, pattern(1<<20, 9)); err != nil {
					t.Errorf("send: %v", err)
				}
				p.ba.Close()
			})
			p.loop.Run()
			if delivered != 0 {
				t.Errorf("delivered %d messages through a closed peer", delivered)
			}
			if !p.ba.Closed() {
				t.Error("receiver not closed")
			}
			// Whether the sender observes the remote close depends on the
			// backend's teardown propagation; what may never happen is a
			// message stuck in the msgnet queue with no surfaced failure —
			// frames already handed to the substrate are the NIC's loss,
			// like any real network.
			if p.ab.QueueBytes() != 0 && p.ab.SendErrors() == 0 && !p.ab.Closed() {
				t.Errorf("queued bytes stranded with no surfaced failure (sendErr=%v)", sendErr)
			}
		})
	}
}

// TestDispatchAfterCloseIsInert is the white-box half of the late-chunk
// edge: frames reaching a peer whose handle is already closed are
// dropped without delivery, reassembly, or spurious error counts.
func TestDispatchAfterCloseIsInert(t *testing.T) {
	p := newPair(t, transport.KindTCP, DefaultOptions())
	delivered := 0
	p.ba.OnMessage(func(Class, []byte) { delivered++ })
	p.ba.connClosed()
	payload := pattern(100, 1)
	p.ba.dispatch(encodeWhole(ClassControl, payload))
	p.ba.dispatch(encodeChunk(ClassBulk, 1, 0, 2, auth.Hash(payload), auth.Digest{}, payload))
	if delivered != 0 || p.ba.RecvErrors() != 0 {
		t.Errorf("closed peer delivered=%d recvErrs=%d, want 0/0", delivered, p.ba.RecvErrors())
	}
}

// TestCorruptChunkRejectedWithoutWedging feeds hand-built chunk frames
// through a raw transport connection: a corrupted payload digest and a
// broken prev-chain must each kill only their own stream — counted and
// reported — while later streams and whole frames still deliver.
func TestCorruptChunkRejectedWithoutWedging(t *testing.T) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	na, nb := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(na, nb)
	opts := DefaultOptions()
	// Raw transport stack on the sender so the test controls the exact
	// frames; a mesh on the receiver does the verification.
	st, err := transport.NewStack(transport.KindTCP, na, opts.Transport)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMesh(transport.KindTCP, nb, opts)
	if err != nil {
		t.Fatal(err)
	}
	var in *Peer
	if err := mb.Listen(9, func(p *Peer) { in = p }); err != nil {
		t.Fatal(err)
	}
	var conn transport.Conn
	loop.Post(func() {
		st.Dial(nb, 9, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			conn = c
		})
	})
	loop.Run()
	if in == nil || conn == nil {
		t.Fatal("not wired")
	}
	var delivered [][]byte
	in.OnMessage(func(_ Class, m []byte) {
		cp := make([]byte, len(m))
		copy(cp, m)
		delivered = append(delivered, cp)
	})
	var recvErrs []error
	in.OnRecvError(func(err error) { recvErrs = append(recvErrs, err) })

	c0, c1 := pattern(64, 1), pattern(64, 2)
	send := func(frame []byte) {
		loop.Post(func() {
			if err := conn.Send(frame); err != nil {
				t.Errorf("raw send: %v", err)
			}
		})
		loop.Run()
	}
	// Stream 1: chunk 0 valid, chunk 1 carries a corrupted digest.
	send(encodeChunk(ClassBulk, 1, 0, 2, auth.Hash(c0), auth.Digest{}, c0))
	bad := auth.Hash(c1)
	bad[0] ^= 0xFF
	send(encodeChunk(ClassBulk, 1, 1, 2, bad, auth.Hash(c0), c1))
	// Stream 2: chunk 1 breaks the prev-digest chain.
	send(encodeChunk(ClassBulk, 2, 0, 2, auth.Hash(c0), auth.Digest{}, c0))
	wrongPrev := auth.Hash([]byte("not the prev"))
	send(encodeChunk(ClassBulk, 2, 1, 2, auth.Hash(c1), wrongPrev, c1))
	// Stream 3 is fully valid and must still get through.
	send(encodeChunk(ClassBulk, 3, 0, 2, auth.Hash(c0), auth.Digest{}, c0))
	send(encodeChunk(ClassBulk, 3, 1, 2, auth.Hash(c1), auth.Hash(c0), c1))
	// As must a plain whole frame.
	send(encodeWhole(ClassControl, []byte("still alive")))

	if len(recvErrs) != 2 || in.RecvErrors() != 2 {
		t.Fatalf("recv errors = %d (%v), want 2", in.RecvErrors(), recvErrs)
	}
	want := append(append([]byte{}, c0...), c1...)
	if len(delivered) != 2 || !bytes.Equal(delivered[0], want) || string(delivered[1]) != "still alive" {
		t.Fatalf("delivered %d messages after corruption, want stream 3 + whole frame", len(delivered))
	}
}

// TestBackpressureWatermarks drives the bounded queue: Sends beyond the
// high watermark fail with ErrBacklog (counted, not silent), OnWritable
// fires once the queue drains to the low watermark, and the peak queue
// depth is observable.
func TestBackpressureWatermarks(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxQueueBytes = 8 << 10
	opts.LowWaterBytes = 2 << 10
	opts.Burst = 1
	opts.SubstrateBacklog = 1
	p := newPair(t, transport.KindTCP, opts)
	delivered := 0
	p.ba.OnMessage(func(Class, []byte) { delivered++ })
	writable := 0
	p.ab.OnWritable(func() { writable++ })

	accepted, rejected := 0, 0
	msg := pattern(1<<10, 5)
	for i := 0; i < 32; i++ {
		err := p.ab.Send(ClassControl, msg)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBacklog):
			rejected++
		default:
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Fatal("32 KB of sends never hit the 8 KB high watermark")
	}
	if got := p.ab.SendErrors(); got != uint64(rejected) {
		t.Errorf("SendErrors = %d, want %d rejected sends", got, rejected)
	}
	if p.ab.PeakQueueBytes() < opts.LowWaterBytes {
		t.Errorf("peak queue %d below low watermark", p.ab.PeakQueueBytes())
	}
	p.loop.Run()
	if delivered != accepted {
		t.Errorf("delivered %d of %d accepted messages", delivered, accepted)
	}
	if writable != 1 {
		t.Errorf("OnWritable fired %d times, want 1", writable)
	}
	if p.ab.QueueBytes() != 0 || p.ab.QueueDepth() != 0 {
		t.Errorf("queue not drained: %d bytes / %d frames", p.ab.QueueBytes(), p.ab.QueueDepth())
	}
}

// probePeer wires a peer over an inert substrate so tests can inspect
// queue state between scheduler turns without a remote end.
func probePeer(opts Options) (*sim.Loop, *Peer) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	node := nw.AddNode("probe")
	m := &Mesh{node: node, kind: transport.KindTCP, opts: opts}
	return loop, m.wrap(&nullConn{remote: node}, true)
}

// TestQueueBytesFramedAccounting pins the send-queue accounting to
// on-wire framed bytes on both sides of the chunk boundary: a whole
// message charges its header, a chunked message charges one chunk header
// per chunk, and draining one frame releases exactly that frame's bytes.
// (The old accounting mixed units: whole messages counted framed bytes
// while chunked messages counted the bare payload, so admission and the
// peak series disagreed across the boundary.)
func TestQueueBytesFramedAccounting(t *testing.T) {
	opts := DefaultOptions()
	opts.Burst = 1
	chunk := opts.chunkPayload()
	maxWhole := opts.maxWhole()

	loop, p := probePeer(opts)
	// Largest unchunked message: framed = payload + whole header.
	if err := p.Send(ClassControl, pattern(maxWhole, 1)); err != nil {
		t.Fatal(err)
	}
	if got, want := p.QueueBytes(), maxWhole+wholeHeaderLen; got != want {
		t.Fatalf("whole at boundary: queueBytes = %d, want %d", got, want)
	}
	loop.Run()
	if p.QueueBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", p.QueueBytes())
	}

	// One byte past the boundary: two chunks, two chunk headers.
	size := maxWhole + 1
	if err := p.Send(ClassBulk, pattern(size, 2)); err != nil {
		t.Fatal(err)
	}
	if got, want := p.QueueBytes(), size+2*chunkHeaderLen; got != want {
		t.Fatalf("chunked past boundary: queueBytes = %d, want %d", got, want)
	}
	if p.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d frames, want 2", p.QueueDepth())
	}
	// One scheduler turn emits one full chunk frame (Burst=1): the queue
	// must release header+payload for that frame, not the payload alone.
	loop.Step()
	if got, want := p.QueueBytes(), size+2*chunkHeaderLen-(chunkHeaderLen+chunk); got != want {
		t.Fatalf("after one chunk: queueBytes = %d, want %d", got, want)
	}
	loop.Run()
	if p.QueueBytes() != 0 || p.QueueDepth() != 0 {
		t.Fatalf("queue not drained: %d bytes / %d frames", p.QueueBytes(), p.QueueDepth())
	}
}

// TestBacklogThenCloseSurfacesAndClearsSuspension is the audit half of
// the suspended flag: a peer that hits ErrBacklog exactly as its
// connection dies must surface every queued message through OnSendError
// and OnClose — and must not fire OnWritable or stay flagged suspended,
// silently waiting for a drain edge that can never come.
func TestBacklogThenCloseSurfacesAndClearsSuspension(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxQueueBytes = 5 << 10 // fits two 2 KiB messages, rejects the third
	opts.LowWaterBytes = 1 << 10
	_, p := probePeer(opts) // loop never runs: the queue stays full
	sendErrs, closes, writables := 0, 0, 0
	p.OnSendError(func(error) { sendErrs++ })
	p.OnClose(func() { closes++ })
	p.OnWritable(func() { writables++ })

	msg := pattern(2<<10, 7)
	if err := p.Send(ClassControl, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(ClassControl, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(ClassControl, msg); !errors.Is(err, ErrBacklog) {
		t.Fatalf("third send: %v, want ErrBacklog", err)
	}
	if !p.suspended {
		t.Fatal("rejected send did not suspend the peer")
	}
	p.connClosed()
	if sendErrs != 2 {
		t.Errorf("OnSendError fired %d times, want 2 (one per queued message)", sendErrs)
	}
	if closes != 1 {
		t.Errorf("OnClose fired %d times, want 1", closes)
	}
	if writables != 0 {
		t.Errorf("OnWritable fired %d times on a dead peer, want 0", writables)
	}
	if p.suspended {
		t.Error("suspended flag wedged on after close")
	}
	if p.QueueBytes() != 0 || p.QueueDepth() != 0 {
		t.Errorf("queue not cleared: %d bytes / %d frames", p.QueueBytes(), p.QueueDepth())
	}
}

// TestBacklogDrainResume closes the loop on the recovery path: backlog,
// drain to the low watermark, OnWritable, and a successful follow-up Send
// that actually delivers.
func TestBacklogDrainResume(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxQueueBytes = 8 << 10
	opts.LowWaterBytes = 2 << 10
	opts.Burst = 1
	opts.SubstrateBacklog = 1
	p := newPair(t, transport.KindTCP, opts)
	delivered := 0
	p.ba.OnMessage(func(Class, []byte) { delivered++ })
	resumed := false
	p.ab.OnWritable(func() {
		resumed = true
		if err := p.ab.Send(ClassControl, pattern(64, 9)); err != nil {
			t.Errorf("send after OnWritable: %v", err)
		}
	})
	accepted := 0
	msg := pattern(1<<10, 5)
	for i := 0; i < 32; i++ {
		if err := p.ab.Send(ClassControl, msg); err == nil {
			accepted++
		} else if !errors.Is(err, ErrBacklog) {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if accepted == 32 {
		t.Fatal("never hit the high watermark")
	}
	p.loop.Run()
	if !resumed {
		t.Fatal("OnWritable never fired after drain")
	}
	if delivered != accepted+1 {
		t.Fatalf("delivered %d, want %d accepted + 1 resumed", delivered, accepted)
	}
}

// TestPooledBufferReuseKeepsPayloadsIntact sends a train of chunked and
// whole messages through the same peer so every later message rides a
// recycled buffer: payloads must survive byte-for-byte, proving frames
// are not recycled while the substrate still needs them.
func TestPooledBufferReuseKeepsPayloadsIntact(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := newPair(t, kind, DefaultOptions())
			var recv [][]byte
			p.ba.OnMessage(func(_ Class, m []byte) {
				recv = append(recv, bytes.Clone(m))
			})
			sizes := []int{1 << 20, 100, 600_000, 1 << 20, 0, 300_000}
			p.loop.Post(func() {
				for i, n := range sizes {
					if err := p.ab.Send(ClassBulk, pattern(n, byte(i))); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
				}
			})
			p.loop.Run()
			if len(recv) != len(sizes) {
				t.Fatalf("delivered %d of %d messages", len(recv), len(sizes))
			}
			for i, n := range sizes {
				if !bytes.Equal(recv[i], pattern(n, byte(i))) {
					t.Errorf("message %d (%d bytes) corrupted by buffer reuse", i, n)
				}
			}
		})
	}
}

// TestSendAllocsSteadyState pins the hot-path allocation bounds: a whole
// message Send plus its scheduler turn at most 1 allocation (0 with the
// pools warm), and the chunked path flat as well.
func TestSendAllocsSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	if avg := SendAllocsPerOp(200, 1<<10); avg > 1 {
		t.Errorf("whole-message Send allocates %.1f/op, want <=1", avg)
	}
	if avg := SendAllocsPerOp(50, 600_000); avg > 2 {
		t.Errorf("chunked Send allocates %.1f/op, want <=2", avg)
	}
}

// TestDialErrorSurfaced dials a port nobody listens on: the error must
// reach the done callback instead of hanging or vanishing.
func TestDialErrorSurfaced(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			loop := sim.NewLoop(1)
			nw := fabric.New(loop, model.Default())
			na, nb := nw.AddNode("a"), nw.AddNode("b")
			nw.Connect(na, nb)
			ma, err := NewMesh(kind, na, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			// The remote needs a stack (to refuse) but no listener on the
			// dialed port; a mesh with no Listen provides exactly that.
			if _, err := NewMesh(kind, nb, DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			called := false
			var dialErr error
			loop.Post(func() {
				ma.Dial(nb, 4242, func(p *Peer, err error) {
					called = true
					dialErr = err
					if p != nil && err != nil {
						t.Error("peer and error both non-nil")
					}
				})
			})
			loop.Run()
			if !called {
				t.Fatal("dial callback never fired")
			}
			if dialErr == nil {
				t.Fatal("dial to unlistened port reported no error")
			}
		})
	}
}

// TestDeterministicDeliveryOrder runs the same interleaved workload twice
// on fresh loops with the same seed: the delivery order must be
// byte-identical, since the chunk scheduler runs on the sim loop.
func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() string {
		p := newPair(t, transport.KindRDMA, DefaultOptions())
		var order []string
		p.ba.OnMessage(func(c Class, m []byte) {
			order = append(order, fmt.Sprintf("%s/%d", c, len(m)))
		})
		p.loop.Post(func() {
			for i := 0; i < 4; i++ {
				_ = p.ab.Send(ClassBulk, pattern(400_000+i, byte(i)))
				_ = p.ab.Send(ClassControl, pattern(32+i, byte(i)))
			}
		})
		p.loop.Run()
		return fmt.Sprintf("%v@%d", order, p.loop.Processed())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("delivery traces diverge:\n%s\n%s", a, b)
	}
}
