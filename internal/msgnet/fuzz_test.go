package msgnet

import (
	"bytes"
	"testing"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// FuzzDecodeFrame asserts the frame parser is total: arbitrary bytes
// either decode or error, never panic, and an accepted chunk frame's
// fields must round-trip through the encoder.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(encodeWhole(ClassControl, []byte("hello")))
	var d, prev auth.Digest
	d[0], prev[1] = 1, 2
	f.Add(encodeChunk(ClassBulk, 7, 1, 3, d, prev, []byte("chunk")))
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data)
		if err != nil {
			return
		}
		switch fr.kind {
		case frameWhole:
			if !bytes.Equal(encodeWhole(fr.class, fr.payload), data) {
				t.Fatalf("whole frame %x does not round-trip", data)
			}
		case frameChunk:
			re := encodeChunk(fr.class, fr.stream, fr.index, fr.count, fr.digest, fr.prev, fr.payload)
			if !bytes.Equal(re, data) {
				t.Fatalf("chunk frame %x round-trips to %x", data, re)
			}
		default:
			t.Fatalf("decodeFrame accepted unknown kind %d", fr.kind)
		}
	})
}

// fuzzPeer builds a receive-side peer over a real fabric node without a
// transport connection — dispatch is fed directly, exactly what a
// corrupted wire would do.
func fuzzPeer() *Peer {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	node := nw.AddNode("rx")
	opts := DefaultOptions()
	opts.Transport.MaxMessage = 128 // small chunks so short inputs span several
	mesh := &Mesh{node: node, opts: opts}
	return &Peer{mesh: mesh, streams: make(map[uint64]*inStream)}
}

// chunkFrames encodes msg as the sender side would: digest-chained chunk
// frames of the peer's chunk payload size.
func chunkFrames(p *Peer, class Class, stream uint64, msg []byte) [][]byte {
	chunk := p.mesh.opts.chunkPayload()
	count := uint32((len(msg) + chunk - 1) / chunk)
	var frames [][]byte
	var prev auth.Digest
	for i := uint32(0); i < count; i++ {
		start := int(i) * chunk
		end := start + chunk
		if end > len(msg) {
			end = len(msg)
		}
		payload := msg[start:end]
		digest := auth.Hash(payload)
		frames = append(frames, encodeChunk(class, stream, i, count, digest, prev, payload))
		prev = digest
	}
	return frames
}

// FuzzChunkReassembly corrupts a single bit of one frame of a chunked
// message and asserts the receiver never panics, never delivers a
// mis-reassembled message, and surfaces the corruption as a receive
// error. An uncorrupted control run must deliver the message
// byte-identically.
func FuzzChunkReassembly(f *testing.F) {
	f.Add([]byte("seed message that spans several chunk frames because it is long enough"), uint32(5), uint8(3))
	f.Add([]byte{}, uint32(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint32(97), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, pos uint32, bit uint8) {
		p := fuzzPeer()
		// Ensure the message spans at least two chunks so every fuzzed
		// input exercises reassembly, not the whole-frame fast path.
		msg := append([]byte("padding-to-span-at-least-two-chunk-frames-"), data...)
		for len(msg) <= p.mesh.opts.chunkPayload() {
			msg = append(msg, byte(len(msg)))
		}
		var delivered [][]byte
		p.OnMessage(func(_ Class, m []byte) { delivered = append(delivered, m) })

		// Control run: clean frames must reassemble byte-identically.
		for _, fr := range chunkFrames(p, ClassControl, 1, msg) {
			p.dispatch(fr)
		}
		if len(delivered) != 1 || !bytes.Equal(delivered[0], msg) {
			t.Fatalf("clean reassembly failed: delivered %d messages", len(delivered))
		}
		if p.RecvErrors() != 0 {
			t.Fatalf("clean reassembly surfaced %d errors", p.RecvErrors())
		}

		// Corrupted run on a fresh stream: flip one bit of one frame.
		delivered = nil
		frames := chunkFrames(p, ClassControl, 2, msg)
		var total int
		for _, fr := range frames {
			total += len(fr)
		}
		target := int(pos) % total
		for i := range frames {
			if target < len(frames[i]) {
				frames[i][target] ^= 1 << (bit % 8)
				break
			}
			target -= len(frames[i])
		}
		for _, fr := range frames {
			p.dispatch(fr)
		}
		for _, m := range delivered {
			if !bytes.Equal(m, msg) {
				t.Fatalf("mis-reassembly: corrupted stream delivered a different %d-byte message", len(m))
			}
		}
		if len(delivered) == 0 && p.RecvErrors() == 0 {
			t.Fatal("corrupted stream vanished without a surfaced receive error")
		}
	})
}
