package msgnet

import "math/bits"

// Free lists for frame buffers and queue items, owned by the Mesh. The
// sim loop is single-threaded, so plain LIFO slabs are deterministic: the
// same sequence of gets and puts reproduces the same reuse pattern every
// run, unlike sync.Pool whose GC-driven emptying varies run to run.
//
// Buffers are classed by power-of-two capacity — a get rounds its request
// up to the class size, so a recycled buffer serves any later request of
// its class. Buffers beyond the largest class (a raised MaxTransfer) are
// allocated exactly and never pooled.

// bufClasses caps the pooled size classes; class c holds capacity 1<<c,
// so the largest pooled buffer is 128 MB — past the default 64 MB
// MaxTransfer plus chunk-header overhead.
const bufClasses = 28

// bufClass returns the smallest class whose buffers hold n bytes.
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getBuf returns a length-n buffer, recycled when the class has one.
func (m *Mesh) getBuf(n int) []byte {
	c := bufClass(n)
	if c >= bufClasses {
		return make([]byte, n)
	}
	fl := m.bufFree[c]
	if last := len(fl) - 1; last >= 0 {
		b := fl[last]
		fl[last] = nil
		m.bufFree[c] = fl[:last]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// putBuf returns a buffer to its class free list. Callers must not touch
// the buffer afterwards — the next getBuf of the class will hand it out.
func (m *Mesh) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	// Floor class: the class capacity never exceeds cap(b), so a get
	// serving n <= 1<<c always fits.
	c := bits.Len(uint(cap(b))) - 1
	if c >= bufClasses {
		return
	}
	m.bufFree[c] = append(m.bufFree[c], b[:0])
}

// getItem returns a zeroed outItem, recycled when available.
func (m *Mesh) getItem() *outItem {
	if last := len(m.itemFree) - 1; last >= 0 {
		it := m.itemFree[last]
		m.itemFree[last] = nil
		m.itemFree = m.itemFree[:last]
		return it
	}
	return &outItem{}
}

// putItem clears an item and returns it to the free list. The item's msg
// buffer is recycled separately via putBuf.
func (m *Mesh) putItem(it *outItem) {
	*it = outItem{}
	m.itemFree = append(m.itemFree, it)
}
