// Package msgnet is the peer-oriented messaging layer between the BFT
// protocol code and the raw transport backends — the boundary the paper
// describes in Section III, widened so the protocol keeps its promises
// under load. A per-node Mesh owns the dial/accept lifecycle over either
// backend (tcp-nio or rdma-rubin); per-peer handles expose class-tagged
// sends whose failures are never silent (every error is returned or
// reported through OnSendError and counted).
//
// Messages larger than the transport's MaxMessage are fragmented
// transparently into digest-chained chunks and reassembled at the
// receiver, so multi-megabyte state snapshots and aggregated view-change
// proofs traverse the same API as a 100-byte PREPARE. The chunk scheduler
// runs on the simulation loop and round-robins traffic classes, so a bulk
// transfer cannot head-of-line-block latency-critical agreement traffic
// beyond the substrate's own queues; bounded per-peer send queues with
// high/low watermarks surface backpressure through ErrBacklog and
// OnWritable, and queue depths are observable for the bench layer.
//
// Protocol code (pbft, reptor) talks only to this package; transport.Conn
// remains the substrate underneath.
package msgnet

import (
	"errors"
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/obs"
	"rubin/internal/transport"
)

// Errors returned by msgnet operations. Every error return is also
// counted on the peer (SendErrors), so no delivery failure is silent even
// if a caller mishandles the return.
var (
	ErrClosed  = errors.New("msgnet: peer closed")
	ErrBacklog = errors.New("msgnet: send queue above high watermark")
	ErrTooBig  = errors.New("msgnet: message exceeds MaxTransfer")
)

// Class tags traffic so the per-peer scheduler can interleave fairly:
// frames are released round-robin across classes, bounding how long a
// huge transfer in one class can delay another class's next frame.
type Class uint8

// The two traffic classes of the BFT workload.
const (
	// ClassControl is latency-critical agreement traffic (pre-prepare,
	// prepare, commit, checkpoints, view changes, client requests).
	ClassControl Class = iota
	// ClassBulk is throughput traffic that may be arbitrarily large
	// (state-transfer snapshots).
	ClassBulk

	numClasses = 2
)

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Options tunes a Mesh.
type Options struct {
	// Transport configures the underlying stack (batching, MaxMessage,
	// WR pool depth).
	Transport transport.Options
	// MaxQueueBytes is the per-peer high watermark: Send on a non-empty
	// queue fails with ErrBacklog once this many bytes are queued. An
	// empty queue always accepts one message of any size (up to
	// MaxTransfer), so progress is never wedged by the bound.
	MaxQueueBytes int
	// LowWaterBytes is the matching low watermark: after a Send has been
	// rejected, OnWritable fires once the queue drains to or below it.
	LowWaterBytes int
	// Burst is how many frames the scheduler releases to the substrate
	// per turn before yielding — together with SubstrateBacklog it bounds
	// head-of-line blocking across classes.
	Burst int
	// SubstrateBacklog pauses the scheduler while the transport reports
	// at least this many unsent messages; pumping resumes on the
	// connection's drain edge.
	SubstrateBacklog int
	// MaxTransfer caps one logical message before chunking — a sanity
	// bound, not a transport limit.
	MaxTransfer int
}

// DefaultOptions returns the configuration used by the experiments: the
// default transport options plus queue bounds generous enough that only a
// genuinely overloaded sender observes backpressure.
func DefaultOptions() Options {
	return Options{
		Transport:        transport.DefaultOptions(),
		MaxQueueBytes:    16 << 20,
		LowWaterBytes:    4 << 20,
		Burst:            4,
		SubstrateBacklog: 4,
		MaxTransfer:      64 << 20,
	}
}

func (o Options) validate() error {
	if o.MaxQueueBytes < 1 || o.LowWaterBytes < 0 || o.LowWaterBytes >= o.MaxQueueBytes {
		return fmt.Errorf("msgnet: invalid watermarks low=%d high=%d", o.LowWaterBytes, o.MaxQueueBytes)
	}
	if o.Burst < 1 || o.SubstrateBacklog < 1 || o.MaxTransfer < 1 {
		return fmt.Errorf("msgnet: invalid options %+v", o)
	}
	if o.Transport.MaxMessage <= chunkHeaderLen {
		return fmt.Errorf("msgnet: MaxMessage %d cannot carry a chunk header (%d bytes)",
			o.Transport.MaxMessage, chunkHeaderLen)
	}
	return nil
}

// chunkPayload is the application bytes carried per chunk frame.
func (o Options) chunkPayload() int { return o.Transport.MaxMessage - chunkHeaderLen }

// maxWhole is the largest message that still fits one unchunked frame.
func (o Options) maxWhole() int { return o.Transport.MaxMessage - wholeHeaderLen }

// Mesh owns one node's messaging endpoint: the transport stack plus every
// peer handle created by Dial or accepted by Listen. It is the unit the
// cluster orchestration holds on to across replica restarts — peers
// survive a replica crash and are re-attached (or re-dialed) on recovery.
type Mesh struct {
	node   *fabric.Node
	kind   transport.Kind
	stack  transport.Stack
	opts   Options
	peers  []*Peer
	tracer *obs.Tracer

	// Free lists shared by this mesh's peers (see pool.go): frame
	// buffers classed by power-of-two capacity, and send-queue items.
	bufFree  [bufClasses][][]byte
	itemFree []*outItem
}

// NewMesh opens a messaging endpoint of the requested backend kind on a
// node.
func NewMesh(kind transport.Kind, node *fabric.Node, opts Options) (*Mesh, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	stack, err := transport.NewStack(kind, node, opts.Transport)
	if err != nil {
		return nil, err
	}
	return &Mesh{node: node, kind: kind, stack: stack, opts: opts}, nil
}

// Node returns the fabric node this mesh runs on.
func (m *Mesh) Node() *fabric.Node { return m.node }

// Kind reports the backend.
func (m *Mesh) Kind() transport.Kind { return m.kind }

// Options returns the mesh configuration.
func (m *Mesh) Options() Options { return m.opts }

// SetTracer attaches an observability tracer: with span recording on,
// peers emit a "sendq" span for every message that waited in a class
// queue before reaching the wire. A nil tracer detaches.
func (m *Mesh) SetTracer(t *obs.Tracer) { m.tracer = t }

// Listen accepts inbound peers on a port.
func (m *Mesh) Listen(port int, accept func(*Peer)) error {
	return m.stack.Listen(port, func(conn transport.Conn) {
		p := m.wrap(conn, false)
		if accept != nil {
			accept(p)
		}
	})
}

// Dial connects to a port on a remote node. The done callback receives
// either a live peer handle or the dial error — errors are the caller's
// to surface (Cluster.Restart records them for chaos scenarios).
func (m *Mesh) Dial(remote *fabric.Node, port int, done func(*Peer, error)) {
	m.stack.Dial(remote, port, func(conn transport.Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(m.wrap(conn, true), nil)
	})
}

// Peers returns every peer this mesh has created, dialed and accepted, in
// creation order (deterministic under the sim loop). Closed peers remain
// listed so their stats stay observable.
func (m *Mesh) Peers() []*Peer {
	out := make([]*Peer, len(m.peers))
	copy(out, m.peers)
	return out
}

// PeakQueueBytes returns the largest send-queue depth any peer of this
// mesh has observed — the queue-depth metric the bench layer reports.
func (m *Mesh) PeakQueueBytes() int {
	peak := 0
	for _, p := range m.peers {
		if p.peakQueueBytes > peak {
			peak = p.peakQueueBytes
		}
	}
	return peak
}

// QueueBytes returns the bytes currently waiting in the send queues of
// all peers — the instantaneous counterpart of PeakQueueBytes, sampled
// by the observability layer's queue-depth time series.
func (m *Mesh) QueueBytes() int {
	n := 0
	for _, p := range m.peers {
		n += p.queueBytes
	}
	return n
}

// SendErrors sums the surfaced send failures across this mesh's peers.
func (m *Mesh) SendErrors() uint64 {
	var n uint64
	for _, p := range m.peers {
		n += p.sendErrs
	}
	return n
}

// Close tears down every peer.
func (m *Mesh) Close() {
	for _, p := range m.peers {
		p.Close()
	}
}

func (m *Mesh) wrap(conn transport.Conn, outbound bool) *Peer {
	p := &Peer{
		mesh:     m,
		conn:     conn,
		outbound: outbound,
		streams:  make(map[uint64]*inStream),
	}
	p.pumpFn = p.pump
	conn.OnMessage(p.dispatch)
	conn.OnClose(p.connClosed)
	conn.OnDrain(p.substrateDrained)
	m.peers = append(m.peers, p)
	return p
}
