package msgnet

import (
	"encoding/binary"
	"fmt"

	"rubin/internal/auth"
)

// Frame kinds on the wire. Every msgnet frame travels as one transport
// message; the first byte discriminates.
const (
	frameWhole byte = 1 // a complete message in one frame
	frameChunk byte = 2 // one fragment of a chunked message
)

// Header sizes. A whole frame is [kind u8][class u8][payload]; a chunk
// frame is [kind u8][class u8][stream u64][index u32][count u32]
// [digest 32][prev 32][payload] — the digest pair forms the chain that
// lets a receiver detect corrupted or mis-sequenced fragments.
const (
	wholeHeaderLen = 2
	chunkHeaderLen = 2 + 8 + 4 + 4 + 2*auth.DigestSize
)

// frame is one decoded msgnet wire frame.
type frame struct {
	kind    byte
	class   Class
	stream  uint64
	index   uint32
	count   uint32
	digest  auth.Digest // digest of this chunk's payload
	prev    auth.Digest // digest of the preceding chunk's payload (zero for index 0)
	payload []byte
}

func encodeWhole(class Class, msg []byte) []byte {
	out := make([]byte, wholeHeaderLen+len(msg))
	out[0] = frameWhole
	out[1] = byte(class)
	copy(out[wholeHeaderLen:], msg)
	return out
}

// putChunkHeader writes a chunk header in place into the first
// chunkHeaderLen bytes of f. The hot path pre-lays chunk frames out in
// the send buffer and fills each header here just before the frame hits
// the substrate, so no per-chunk copy or allocation happens.
func putChunkHeader(f []byte, class Class, stream uint64, index, count uint32, digest, prev auth.Digest) {
	f[0] = frameChunk
	f[1] = byte(class)
	binary.BigEndian.PutUint64(f[2:], stream)
	binary.BigEndian.PutUint32(f[10:], index)
	binary.BigEndian.PutUint32(f[14:], count)
	copy(f[18:], digest[:])
	copy(f[18+auth.DigestSize:], prev[:])
}

func encodeChunk(class Class, stream uint64, index, count uint32, digest, prev auth.Digest, payload []byte) []byte {
	out := make([]byte, chunkHeaderLen+len(payload))
	putChunkHeader(out, class, stream, index, count, digest, prev)
	copy(out[chunkHeaderLen:], payload)
	return out
}

func decodeFrame(raw []byte) (frame, error) {
	if len(raw) < wholeHeaderLen {
		return frame{}, fmt.Errorf("msgnet: frame truncated (%d bytes)", len(raw))
	}
	f := frame{kind: raw[0], class: Class(raw[1])}
	switch f.kind {
	case frameWhole:
		f.payload = raw[wholeHeaderLen:]
		return f, nil
	case frameChunk:
		if len(raw) < chunkHeaderLen {
			return frame{}, fmt.Errorf("msgnet: chunk frame truncated (%d bytes)", len(raw))
		}
		f.stream = binary.BigEndian.Uint64(raw[2:])
		f.index = binary.BigEndian.Uint32(raw[10:])
		f.count = binary.BigEndian.Uint32(raw[14:])
		copy(f.digest[:], raw[18:])
		copy(f.prev[:], raw[18+auth.DigestSize:])
		f.payload = raw[chunkHeaderLen:]
		return f, nil
	default:
		return frame{}, fmt.Errorf("msgnet: unknown frame kind %d", f.kind)
	}
}
