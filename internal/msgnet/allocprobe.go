package msgnet

import (
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Alloc probes for the bench layer (experiment ALLOC): they measure the
// steady-state allocations of the send hot path over an inert substrate
// connection, so the reported numbers isolate this layer from transport
// internals. Probes run a private mesh on a private loop; they never
// touch shared state.

// nullConn is an inert transport.Conn: Send accepts and discards every
// frame, mimicking a substrate that copies synchronously (as both real
// backends do) without allocating.
type nullConn struct {
	remote *fabric.Node
}

func (c *nullConn) Send([]byte) error      { return nil }
func (c *nullConn) OnMessage(func([]byte)) {}
func (c *nullConn) OnClose(func())         {}
func (c *nullConn) OnDrain(func())         {}
func (c *nullConn) Unsent() int            { return 0 }
func (c *nullConn) Peer() *fabric.Node     { return c.remote }
func (c *nullConn) Close()                 {}
func (c *nullConn) Kind() transport.Kind   { return transport.KindTCP }

// SendAllocsPerOp reports the average allocations of one Peer.Send of a
// payloadLen-byte message plus the scheduler turns that drain it to the
// substrate, after warming the pools into steady state. Payloads above
// the transport MaxMessage exercise the chunked path.
func SendAllocsPerOp(runs, payloadLen int) float64 {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	node := nw.AddNode("alloc-probe")
	m := &Mesh{node: node, kind: transport.KindTCP, opts: DefaultOptions()}
	p := m.wrap(&nullConn{remote: node}, true)
	msg := make([]byte, payloadLen)
	warm := func() {
		if err := p.Send(ClassControl, msg); err != nil {
			panic("msgnet: alloc probe send failed: " + err.Error())
		}
		loop.Run()
	}
	// Warm up: grow the pools, queue backing arrays and the loop's event
	// free list to their steady-state footprint.
	for i := 0; i < 32; i++ {
		warm()
	}
	return testing.AllocsPerRun(runs, warm)
}
