package msgnet

import (
	"fmt"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// outItem is one accepted message waiting in a class queue. msg is a
// pooled buffer already laid out as the message's wire frames: one whole
// frame (count==0), or count digest-chained chunk frames back to back,
// payload in place and headers filled in at emission time (the digest
// chain is only known then). index/prev track the emission cursor. The
// buffer and the item return to the mesh pool once the substrate has
// accepted the last frame.
type outItem struct {
	msg    []byte
	stream uint64
	count  uint32
	index  uint32
	prev   auth.Digest

	// Set only while span recording is on: the enqueue instant, so the
	// final dequeue can emit a send-queue-wait span.
	traced bool
	enqAt  sim.Time
}

// classQueue is one class's FIFO of queued items. Pops advance a head
// index instead of re-slicing, and the backing array resets once the
// queue drains — so steady-state queuing allocates nothing.
type classQueue struct {
	items []*outItem
	head  int
}

func (q *classQueue) push(it *outItem) { q.items = append(q.items, it) }

func (q *classQueue) peek() *outItem {
	if q.head >= len(q.items) {
		return nil
	}
	return q.items[q.head]
}

func (q *classQueue) pop() *outItem {
	if q.head >= len(q.items) {
		return nil
	}
	it := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

func (q *classQueue) len() int { return len(q.items) - q.head }

// inStream is the reassembly state of one inbound chunked message.
type inStream struct {
	class Class
	count uint32
	next  uint32
	prev  auth.Digest
	buf   []byte
}

// Peer is one bidirectional message channel to a remote node. Handles are
// created by Mesh.Dial and Mesh.Listen and survive protocol-layer
// restarts: callbacks may be re-installed at any time.
type Peer struct {
	mesh     *Mesh
	conn     transport.Conn
	outbound bool
	closed   bool

	// Delivery.
	onMsg   func(Class, []byte)
	inbox   []inboxEntry
	streams map[uint64]*inStream

	// Send scheduling. queueBytes counts on-wire framed bytes (headers
	// included) for every queued frame, so admission, watermarks and the
	// peak series all speak the same unit. pumpFn is the pump bound once
	// at creation so arming does not allocate a method value per turn.
	queues      [numClasses]classQueue
	cursor      int
	queueBytes  int
	queueFrames int
	pumpArmed   bool
	waitDrain   bool
	suspended   bool // a Send was rejected; OnWritable pending
	nextStream  uint64
	pumpFn      func()

	// Error surface and stats.
	onClose        func()
	onSendErr      func(error)
	onRecvErr      func(error)
	onWritable     func()
	sendErrs       uint64
	recvErrs       uint64
	peakQueueBytes int
}

type inboxEntry struct {
	class Class
	msg   []byte
}

// Remote returns the peer's node.
func (p *Peer) Remote() *fabric.Node { return p.conn.Peer() }

// Outbound reports whether this side dialed the connection.
func (p *Peer) Outbound() bool { return p.outbound }

// Closed reports whether the peer (or its substrate connection) is torn
// down.
func (p *Peer) Closed() bool { return p.closed }

// QueueBytes returns the bytes currently queued for sending.
func (p *Peer) QueueBytes() int { return p.queueBytes }

// QueueDepth returns the frames currently queued for sending.
func (p *Peer) QueueDepth() int { return p.queueFrames }

// PeakQueueBytes returns the high-water mark the send queue has reached.
func (p *Peer) PeakQueueBytes() int { return p.peakQueueBytes }

// SendErrors counts every surfaced send failure: rejected Sends and
// messages dropped because the connection died while they were queued.
func (p *Peer) SendErrors() uint64 { return p.sendErrs }

// RecvErrors counts rejected inbound frames (corrupted digests, broken
// chunk chains, malformed frames).
func (p *Peer) RecvErrors() uint64 { return p.recvErrs }

// OnMessage installs the delivery callback, receiving each reassembled
// message with its traffic class. Messages arriving before a callback is
// installed queue internally, so a restarted consumer can re-attach
// without loss.
func (p *Peer) OnMessage(fn func(class Class, msg []byte)) {
	p.onMsg = fn
	for len(p.inbox) > 0 && p.onMsg != nil {
		e := p.inbox[0]
		p.inbox = p.inbox[1:]
		p.onMsg(e.class, e.msg)
	}
}

// OnClose installs a callback for peer teardown.
func (p *Peer) OnClose(fn func()) { p.onClose = fn }

// OnSendError installs the asynchronous delivery-failure callback: it
// fires once per message dropped by a dying connection and once per
// failed substrate send. Synchronous failures are returned by Send
// itself; both paths increment SendErrors by the same amount, so
// counting in the hook and checking Send's return never double-reports
// or under-reports a failure.
func (p *Peer) OnSendError(fn func(error)) { p.onSendErr = fn }

// OnRecvError installs a callback for rejected inbound frames. The
// stream the frame belonged to is dropped; other streams and subsequent
// messages are unaffected.
func (p *Peer) OnRecvError(fn func(error)) { p.onRecvErr = fn }

// OnWritable installs the backpressure-release callback: after a Send
// has been rejected with ErrBacklog, it fires once the queue drains to
// the low watermark.
func (p *Peer) OnWritable(fn func()) { p.onWritable = fn }

// Close tears the peer down. Queued messages are reported as failed
// through the send-error surface, never silently discarded.
func (p *Peer) Close() {
	if p.closed {
		return
	}
	p.conn.Close() // triggers connClosed via the conn's OnClose
	p.connClosed()
}

// Send queues one message of the given class for delivery. Messages
// above the transport's frame limit are fragmented transparently; the
// error return is never nil for a message that will not be delivered
// barring connection failure (which reports through OnSendError).
func (p *Peer) Send(class Class, msg []byte) error {
	if p.closed {
		return p.sendFail(ErrClosed)
	}
	if int(class) >= numClasses {
		return p.sendFail(fmt.Errorf("msgnet: invalid class %d", class))
	}
	if len(msg) > p.mesh.opts.MaxTransfer {
		return p.sendFail(fmt.Errorf("%w: %d bytes", ErrTooBig, len(msg)))
	}
	// framed is the total on-wire size this message will occupy, headers
	// included — whole frames pay wholeHeaderLen, chunked messages pay
	// one chunkHeaderLen per chunk.
	var count uint32
	framed := wholeHeaderLen + len(msg)
	if len(msg) > p.mesh.opts.maxWhole() {
		chunk := p.mesh.opts.chunkPayload()
		count = uint32((len(msg) + chunk - 1) / chunk)
		framed = len(msg) + int(count)*chunkHeaderLen
	}
	if p.queueBytes > 0 && p.queueBytes+framed > p.mesh.opts.MaxQueueBytes {
		p.suspended = true
		return p.sendFail(fmt.Errorf("%w: %d bytes queued", ErrBacklog, p.queueBytes))
	}
	// The queue may outlive the caller's buffer by many events, so the
	// item owns a copy — a pooled buffer pre-laid-out as the wire frames
	// themselves, so the pump slices frames out instead of re-encoding
	// and a steady-state Send allocates nothing.
	it := p.mesh.getItem()
	it.msg = p.mesh.getBuf(framed)
	if count > 0 {
		chunk := p.mesh.opts.chunkPayload()
		stride := chunkHeaderLen + chunk
		for i := 0; i*chunk < len(msg); i++ {
			end := (i + 1) * chunk
			if end > len(msg) {
				end = len(msg)
			}
			copy(it.msg[i*stride+chunkHeaderLen:], msg[i*chunk:end])
		}
		it.count = count
		it.stream = p.nextStream
		p.nextStream++
		p.queueFrames += int(count)
	} else {
		it.msg[0] = frameWhole
		it.msg[1] = byte(class)
		copy(it.msg[wholeHeaderLen:], msg)
		p.queueFrames++
	}
	if p.mesh.tracer.SpansEnabled() {
		it.traced, it.enqAt = true, p.mesh.node.Loop().Now()
	}
	p.queues[class].push(it)
	p.queueBytes += framed
	if p.queueBytes > p.peakQueueBytes {
		p.peakQueueBytes = p.queueBytes
	}
	p.arm()
	return nil
}

// sendFail counts and returns a synchronous send error.
func (p *Peer) sendFail(err error) error {
	p.sendErrs++
	return err
}

// arm schedules one scheduler turn on the sim loop (deterministic: Post
// ordering is the loop's (time, seq) order).
func (p *Peer) arm() {
	if p.pumpArmed || p.waitDrain || p.closed {
		return
	}
	p.pumpArmed = true
	p.mesh.node.Loop().Post(p.pumpFn)
}

// pump releases up to Burst frames to the substrate, round-robining the
// class queues, then yields. It pauses on substrate backlog and resumes
// on the connection's drain edge, so a bulk stream is metered into the
// wire queue instead of monopolizing it.
func (p *Peer) pump() {
	p.pumpArmed = false
	if p.closed {
		return
	}
	for budget := p.mesh.opts.Burst; budget > 0; budget-- {
		if p.conn.Unsent() >= p.mesh.opts.SubstrateBacklog {
			p.waitDrain = true
			return
		}
		f, fin, ok := p.nextFrame()
		if !ok {
			break
		}
		err := p.conn.Send(f)
		if fin != nil {
			// Both substrates copy what they need inside Send (see the
			// buffer-ownership rules in docs/ARCHITECTURE.md), so the
			// completed item's buffer recycles immediately — even when
			// the send failed.
			p.mesh.putBuf(fin.msg)
			p.mesh.putItem(fin)
		}
		if err != nil {
			p.asyncSendFail(err)
			return
		}
	}
	if p.queueFrames > 0 {
		p.arm()
	}
	p.signalWritable()
}

// nextFrame returns the next frame in class round-robin order: one whole
// message or one chunk of the head-of-line chunked message. Every frame
// is a slice of the item's owned buffer — chunk headers are filled in
// place here, where the digest chain is known. fin is non-nil when this
// frame completes its message: the caller recycles fin's buffer and item
// once the substrate send returns. queueBytes drops by exactly the frame
// length, mirroring the framed-byte admission accounting.
func (p *Peer) nextFrame() (f []byte, fin *outItem, ok bool) {
	for i := 0; i < numClasses; i++ {
		cls := (p.cursor + i) % numClasses
		q := &p.queues[cls]
		it := q.peek()
		if it == nil {
			continue
		}
		p.cursor = (cls + 1) % numClasses
		p.queueFrames--
		if it.count == 0 {
			q.pop()
			p.queueBytes -= len(it.msg)
			p.traceDequeue(it, Class(cls))
			return it.msg, it, true
		}
		stride := chunkHeaderLen + p.mesh.opts.chunkPayload()
		start := int(it.index) * stride
		end := start + stride
		if end > len(it.msg) {
			end = len(it.msg)
		}
		f = it.msg[start:end]
		payload := f[chunkHeaderLen:]
		p.chargeDigest(len(payload))
		digest := auth.Hash(payload)
		putChunkHeader(f, Class(cls), it.stream, it.index, it.count, digest, it.prev)
		it.index++
		it.prev = digest
		p.queueBytes -= len(f)
		if it.index == it.count {
			q.pop()
			p.traceDequeue(it, Class(cls))
			fin = it
		}
		return f, fin, true
	}
	return nil, nil, false
}

// traceDequeue emits the send-queue-wait span of a fully dequeued item.
// Zero-wait messages (dequeued at their enqueue instant, the common case
// off saturation) are skipped — the trace shows contention, not traffic.
func (p *Peer) traceDequeue(it *outItem, cls Class) {
	if !it.traced {
		return
	}
	now := p.mesh.node.Loop().Now()
	if now > it.enqAt {
		p.mesh.tracer.Span("msgnet", "sendq "+cls.String(),
			p.mesh.node.Name()+"->"+p.Remote().Name(), "", it.enqAt, now)
	}
}

// signalWritable fires OnWritable once the queue has drained to the low
// watermark after a rejected Send.
func (p *Peer) signalWritable() {
	if !p.suspended || p.queueBytes > p.mesh.opts.LowWaterBytes {
		return
	}
	p.suspended = false
	if p.onWritable != nil {
		p.mesh.node.Loop().Post(p.onWritable)
	}
}

// substrateDrained is the conn's drain edge: resume a paused scheduler.
func (p *Peer) substrateDrained() {
	if !p.waitDrain {
		return
	}
	p.waitDrain = false
	p.arm()
}

// asyncSendFail surfaces a substrate-level send failure.
func (p *Peer) asyncSendFail(err error) {
	p.sendErrs++
	if p.onSendErr != nil {
		p.onSendErr(err)
	}
	if err == transport.ErrClosed {
		p.connClosed()
	}
}

// connClosed tears the peer down, reporting every queued-but-undelivered
// message through the send-error surface.
func (p *Peer) connClosed() {
	if p.closed {
		return
	}
	p.closed = true
	dropped := 0
	for cls := range p.queues {
		q := &p.queues[cls]
		dropped += q.len()
		for {
			it := q.pop()
			if it == nil {
				break
			}
			p.mesh.putBuf(it.msg)
			p.mesh.putItem(it)
		}
	}
	p.queueBytes = 0
	p.queueFrames = 0
	// A Send rejected at the high watermark leaves suspended set, waiting
	// for a drain edge that will never come on a dead connection. Clear
	// it: the failure surfaces through the per-message send errors below
	// and OnClose — OnWritable must never fire on a closed peer, and a
	// wedged flag must not linger either.
	p.suspended = false
	p.streams = make(map[uint64]*inStream)
	if dropped > 0 {
		p.sendErrs += uint64(dropped)
		if p.onSendErr != nil {
			// One invocation per dropped message, matching the counter,
			// so per-invocation consumers tally the same total.
			err := fmt.Errorf("%w: queued message dropped", ErrClosed)
			for i := 0; i < dropped; i++ {
				p.onSendErr(err)
			}
		}
	}
	if p.onClose != nil {
		p.onClose()
	}
}

// dispatch handles one inbound transport message: decode the frame,
// verify the chunk chain, reassemble, deliver.
func (p *Peer) dispatch(raw []byte) {
	if p.closed {
		return // frames (including late chunks) after Close are dropped
	}
	f, err := decodeFrame(raw)
	if err != nil {
		p.recvFail(err)
		return
	}
	if int(f.class) >= numClasses {
		p.recvFail(fmt.Errorf("msgnet: frame with invalid class %d", f.class))
		return
	}
	if f.kind == frameWhole {
		p.handOff(f.class, f.payload)
		return
	}
	p.chargeDigest(len(f.payload))
	if auth.Hash(f.payload) != f.digest {
		delete(p.streams, f.stream)
		p.recvFail(fmt.Errorf("msgnet: chunk %d of stream %d fails its digest", f.index, f.stream))
		return
	}
	st := p.streams[f.stream]
	if st == nil {
		if f.index != 0 {
			p.recvFail(fmt.Errorf("msgnet: stream %d starts at chunk %d", f.stream, f.index))
			return
		}
		if f.count < 1 || int(f.count) > p.maxChunks() {
			p.recvFail(fmt.Errorf("msgnet: stream %d advertises %d chunks", f.stream, f.count))
			return
		}
		st = &inStream{class: f.class, count: f.count}
		p.streams[f.stream] = st
	}
	if f.index != st.next || f.count != st.count || f.class != st.class || f.prev != st.prev {
		delete(p.streams, f.stream)
		p.recvFail(fmt.Errorf("msgnet: chunk chain broken on stream %d (chunk %d)", f.stream, f.index))
		return
	}
	st.buf = append(st.buf, f.payload...)
	st.next++
	st.prev = f.digest
	if st.next == st.count {
		delete(p.streams, f.stream)
		p.handOff(st.class, st.buf)
	}
}

// maxChunks bounds an advertised stream length by MaxTransfer.
func (p *Peer) maxChunks() int {
	chunk := p.mesh.opts.chunkPayload()
	return (p.mesh.opts.MaxTransfer + chunk - 1) / chunk
}

func (p *Peer) recvFail(err error) {
	p.recvErrs++
	if p.onRecvErr != nil {
		p.onRecvErr(err)
	}
}

func (p *Peer) handOff(class Class, msg []byte) {
	if p.onMsg != nil {
		p.onMsg(class, msg)
	} else {
		p.inbox = append(p.inbox, inboxEntry{class: class, msg: msg})
	}
}

// chargeDigest models the CPU cost of hashing one chunk payload on the
// node, keeping virtual-time traces honest about the chunking overhead.
func (p *Peer) chargeDigest(n int) {
	params := p.mesh.node.Network().Params()
	p.mesh.node.CPU.Delay(auth.DigestCost(params.Crypto, n))
}
