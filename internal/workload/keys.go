package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// KeyChooser picks which key index an operation targets. Implementations
// must be deterministic functions of the random source they are handed.
type KeyChooser interface {
	// Pick returns a key index in [0, Keys()).
	Pick(r *rand.Rand) int
	// Keys returns the keyspace size.
	Keys() int
	// String describes the distribution for config echoes.
	String() string
}

// KeyName renders a key index as the canonical store key. Adjacent
// indices share prefixes, which is what scans exploit.
func KeyName(i int) string { return fmt.Sprintf("k%06d", i) }

// Uniform spreads accesses evenly over the keyspace.
type Uniform struct {
	n int
}

// NewUniform returns a uniform distribution over n keys. It panics on
// n < 1 (a programmer error, like an invalid registration).
func NewUniform(n int) Uniform {
	if n < 1 {
		panic(fmt.Sprintf("workload: uniform keyspace %d", n))
	}
	return Uniform{n: n}
}

// Pick returns a uniformly random key index.
func (u Uniform) Pick(r *rand.Rand) int { return r.Intn(u.n) }

// Keys returns the keyspace size.
func (u Uniform) Keys() int { return u.n }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%d)", u.n) }

// Zipf is the YCSB-style zipfian distribution over n keys with exponent
// theta in [0, 1): key 0 is the hottest, popularity falls as rank^-theta.
// theta = 0 degenerates to uniform; theta = 0.99 is the YCSB default
// "zipfian" skew. Ranks are not scrambled — key 0 being hottest keeps
// runs easy to reason about and scans meaningful.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf precomputes the zeta terms (Gray et al., "Quickly generating
// billion-record synthetic databases"). It panics on n < 1 or theta
// outside [0, 1).
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 || theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipf(n=%d, theta=%v)", n, theta))
	}
	zetan := zeta(n, theta)
	return &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
	}
}

// zeta returns the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Pick draws one zipfian key index.
func (z *Zipf) Pick(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n > 1 && uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Keys returns the keyspace size.
func (z *Zipf) Keys() int { return z.n }

func (z *Zipf) String() string { return fmt.Sprintf("zipf(%d, theta=%.2f)", z.n, z.theta) }

// HotSet sends a fixed fraction of accesses to the first hot keys and
// spreads the rest uniformly over the remainder — the two-temperature
// caricature of a celebrity workload.
type HotSet struct {
	n    int
	hot  int
	frac float64
}

// NewHotSet returns a hot-set distribution: frac of accesses hit the
// first hot keys of an n-key space. It panics on a malformed shape.
func NewHotSet(n, hot int, frac float64) HotSet {
	if n < 1 || hot < 1 || hot > n || frac < 0 || frac > 1 {
		panic(fmt.Sprintf("workload: hotset(n=%d, hot=%d, frac=%v)", n, hot, frac))
	}
	return HotSet{n: n, hot: hot, frac: frac}
}

// Pick draws one key index.
func (h HotSet) Pick(r *rand.Rand) int {
	if h.hot == h.n || r.Float64() < h.frac {
		return r.Intn(h.hot)
	}
	return h.hot + r.Intn(h.n-h.hot)
}

// Keys returns the keyspace size.
func (h HotSet) Keys() int { return h.n }

func (h HotSet) String() string {
	return fmt.Sprintf("hotset(%d, hot=%d, frac=%.2f)", h.n, h.hot, h.frac)
}
