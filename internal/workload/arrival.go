package workload

import (
	"fmt"
	"math/rand"

	"rubin/internal/sim"
)

// ArrivalModel selects how operations enter the system.
type ArrivalModel string

// Arrival models.
const (
	// ModelClosed is the classic closed loop: each user keeps Window
	// operations outstanding and issues the next one Think after a
	// completion — offered load adapts to the system's speed.
	ModelClosed ArrivalModel = "closed"
	// ModelPoisson is an open loop: operations arrive in one global
	// Poisson stream of the configured rate, regardless of completions.
	ModelPoisson ArrivalModel = "poisson"
	// ModelBursts is an on/off open loop: Poisson arrivals at the
	// configured rate during On periods, silence during Off periods.
	ModelBursts ArrivalModel = "bursts"
)

// Arrival configures the arrival process of a run.
type Arrival struct {
	Model ArrivalModel
	// Window and Think parameterize ModelClosed.
	Window int
	Think  sim.Time
	// Rate is the mean arrivals per second of the open-loop models
	// (the on-phase rate for ModelBursts).
	Rate float64
	// On and Off are the burst phase durations of ModelBursts.
	On, Off sim.Time
}

// Closed returns a closed-loop model: window outstanding operations per
// user, think pause between completion and next issue.
func Closed(window int, think sim.Time) Arrival {
	return Arrival{Model: ModelClosed, Window: window, Think: think}
}

// Poisson returns an open-loop Poisson arrival stream of rate operations
// per second.
func Poisson(rate float64) Arrival {
	return Arrival{Model: ModelPoisson, Rate: rate}
}

// Bursts returns an on/off open loop: Poisson arrivals at rate during on
// periods, none during off periods.
func Bursts(rate float64, on, off sim.Time) Arrival {
	return Arrival{Model: ModelBursts, Rate: rate, On: on, Off: off}
}

// Validate checks the model parameters.
func (a Arrival) Validate() error {
	switch a.Model {
	case ModelClosed:
		if a.Window < 1 || a.Think < 0 {
			return fmt.Errorf("workload: closed loop needs Window >= 1 and Think >= 0, got %d/%v", a.Window, a.Think)
		}
	case ModelPoisson:
		if a.Rate <= 0 {
			return fmt.Errorf("workload: poisson arrivals need Rate > 0, got %v", a.Rate)
		}
	case ModelBursts:
		if a.Rate <= 0 || a.On < 1 || a.Off < 0 {
			return fmt.Errorf("workload: bursts need Rate > 0, On >= 1ns and Off >= 0, got %v/%v/%v", a.Rate, a.On, a.Off)
		}
	default:
		return fmt.Errorf("workload: unknown arrival model %q", a.Model)
	}
	return nil
}

func (a Arrival) String() string {
	switch a.Model {
	case ModelClosed:
		return fmt.Sprintf("closed(window=%d, think=%v)", a.Window, a.Think)
	case ModelPoisson:
		return fmt.Sprintf("poisson(%.0f/s)", a.Rate)
	case ModelBursts:
		return fmt.Sprintf("bursts(%.0f/s, on=%v, off=%v)", a.Rate, a.On, a.Off)
	}
	return string(a.Model)
}

// arrivalClock turns the open-loop models into a deterministic sequence
// of inter-arrival gaps. For bursts it tracks the position within the
// current on period and charges every boundary crossed with one off
// period of silence.
type arrivalClock struct {
	a     Arrival
	phase sim.Time
}

// gap draws the delay until the next arrival.
func (c *arrivalClock) gap(r *rand.Rand) sim.Time {
	d := sim.Time(r.ExpFloat64() / c.a.Rate * float64(sim.Second))
	if c.a.Model != ModelBursts {
		return d
	}
	c.phase += d
	for c.phase >= c.a.On {
		c.phase -= c.a.On
		d += c.a.Off
	}
	return d
}
