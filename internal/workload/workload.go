// Package workload generates deterministic client traffic for the
// replicated experiments: skewed key distributions (uniform, Zipf,
// hot-set), mixed operation types (reads, writes, deletes, scans),
// closed- and open-loop arrival models (per-user windows, Poisson,
// on/off bursts), and a driver that multiplexes thousands of logical
// users over a bounded pool of client connections.
//
// Every operation is recorded into a History whose per-key register
// linearizability can be checked after the run (History.CheckLinearizable)
// — a workload run is also a correctness proof, not only a load curve.
//
// All randomness is drawn from a private source seeded by Config.Seed
// and all timing from the simulation loop, so a given (code, seed,
// config) triple reproduces byte-identical histories and latency
// distributions.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"rubin/internal/kvstore"
	"rubin/internal/metrics"
	"rubin/internal/obs"
	"rubin/internal/sim"
)

// Invoker submits one encoded kvstore operation through connection slot
// conn (0 <= conn < Config.Conns). Systems that shard the request space
// derive the routing key(s) from the operation itself via kvstore.OpKeys
// — the shard router and Reptor's COP client both do — so the driver
// does not pass routing hints. done must fire exactly once with the
// reply. The return value is the submitted request's trace id (pbft
// request key) for the observability layer — "" when the system does
// not trace.
type Invoker func(conn int, op []byte, done func(result []byte)) string

// Config parameterizes one workload run.
type Config struct {
	// Users is the number of logical users (sessions). Each user is a
	// sequential process: up to Arrival.Window operations in flight in
	// closed loop, exactly one in open loop — open-loop arrivals a busy
	// user cannot serve yet queue behind it, and that queueing delay
	// counts into the measured latency, so the load never quietly
	// coordinates with the system's speed.
	Users int
	// Conns is the size of the client-connection pool the users are
	// multiplexed over: user u submits through connection u % Conns.
	Conns int
	// Ops is the number of measured operations; Warmup operations run
	// before them unmeasured. Both are recorded into the history — the
	// correctness check covers everything.
	Ops, Warmup int
	// Keys picks the key of each operation.
	Keys KeyChooser
	// Mix picks the operation type.
	Mix Mix
	// Arrival is the arrival model.
	Arrival Arrival
	// ValueSize pads written values up to this many bytes. Values keep a
	// unique "u<user>.<seq>" stem regardless, so every write in the
	// history is distinguishable.
	ValueSize int
	// ScanLimit caps the pairs one scan returns (0 means 16).
	ScanLimit int
	// TxnPick chooses the two distinct keys of a multi-key transaction.
	// The bench layer injects a picker here to control the share of
	// transactions whose keys land on different shards. Nil draws both
	// keys from Keys (re-drawing the second until it differs).
	TxnPick func(r *rand.Rand) (a, b string)
	// Seed seeds the workload's private random source.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Users < 1 {
		return fmt.Errorf("workload: need at least one user, got %d", c.Users)
	}
	if c.Conns < 1 {
		return fmt.Errorf("workload: need at least one connection, got %d", c.Conns)
	}
	if c.Ops < 1 || c.Warmup < 0 {
		return fmt.Errorf("workload: need Ops >= 1 and Warmup >= 0, got %d/%d", c.Ops, c.Warmup)
	}
	if c.Keys == nil || c.Keys.Keys() < 1 {
		return fmt.Errorf("workload: missing key distribution")
	}
	if c.ValueSize < 0 || c.ScanLimit < 0 {
		return fmt.Errorf("workload: negative ValueSize/ScanLimit")
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	return c.Arrival.Validate()
}

// Driver runs one workload configuration against an Invoker on the
// simulation loop, recording every operation.
type Driver struct {
	loop   *sim.Loop
	cfg    Config
	invoke Invoker
	rng    *rand.Rand
	hist   *History
	rec    *metrics.Recorder
	tracer *obs.Tracer

	// paths holds the fast/ordered verdict per in-flight trace id,
	// reported by the client stack via NotePath just before the done
	// callback fires and consumed when the operation completes.
	paths map[string]bool

	total           int
	issued          int
	completed       int
	measured        int
	aborted         int
	abortedMeasured int
	started         bool
	startAt         sim.Time
	endAt           sim.Time

	// Open-loop bookkeeping: arrivals hitting a busy user queue behind it.
	busy     []bool
	queued   [][]sim.Time
	nextUser int
	arrivals int
}

// New validates the configuration and prepares a driver; Run executes it.
func New(loop *sim.Loop, cfg Config, invoke Invoker) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if invoke == nil {
		return nil, fmt.Errorf("workload: nil invoker")
	}
	if cfg.ScanLimit == 0 {
		cfg.ScanLimit = 16
	}
	return &Driver{
		loop: loop, cfg: cfg, invoke: invoke,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		hist:   &History{},
		rec:    metrics.NewRecorder(),
		total:  cfg.Ops + cfg.Warmup,
		busy:   make([]bool, cfg.Users),
		queued: make([][]sim.Time, cfg.Users),
		paths:  make(map[string]bool),
	}, nil
}

// Run drives the workload to completion (it runs the loop until the
// event queue drains) and errors if any operation never finished.
func (d *Driver) Run() error {
	if d.cfg.Arrival.Model == ModelClosed {
		d.launchClosed()
	} else {
		d.launchOpen()
	}
	d.loop.Run()
	if d.completed != d.total {
		return fmt.Errorf("workload: completed %d of %d operations", d.completed, d.total)
	}
	return nil
}

// launchClosed starts every user's window of outstanding operations;
// each completion triggers the next issue after the think time.
func (d *Driver) launchClosed() {
	for u := 0; u < d.cfg.Users; u++ {
		u := u
		d.loop.Post(func() {
			for i := 0; i < d.cfg.Arrival.Window && d.issued < d.total; i++ {
				d.issue(u, d.loop.Now())
			}
		})
	}
}

// launchOpen schedules the open-loop arrival stream, one event at a time
// so the event heap never holds more than the next arrival.
func (d *Driver) launchOpen() {
	clock := &arrivalClock{a: d.cfg.Arrival}
	var next func()
	next = func() {
		if d.arrivals == d.total {
			return
		}
		d.arrivals++
		d.loop.After(clock.gap(d.rng), func() {
			d.arrive(d.loop.Now())
			next()
		})
	}
	next()
}

// arrive assigns an open-loop arrival to the next user round-robin.
func (d *Driver) arrive(at sim.Time) {
	u := d.nextUser
	d.nextUser = (d.nextUser + 1) % d.cfg.Users
	if d.busy[u] {
		d.queued[u] = append(d.queued[u], at)
		return
	}
	d.issue(u, at)
}

// issue builds and submits one operation for a user. arrive is when the
// operation entered the system — before now when it queued behind the
// user's previous operation.
func (d *Driver) issue(user int, arrive sim.Time) {
	seq := d.issued
	d.issued++
	measured := seq >= d.cfg.Warmup
	if measured && !d.started {
		d.started, d.startAt = true, arrive
	}
	if d.cfg.Arrival.Model != ModelClosed {
		d.busy[user] = true
	}
	kind := d.cfg.Mix.Pick(d.rng)
	key := KeyName(d.cfg.Keys.Pick(d.rng))
	rec := Op{User: user, Kind: kind, Key: key, Arrive: arrive, Measured: measured}
	var raw []byte
	switch kind {
	case Read:
		raw = kvstore.EncodeOp(kvstore.OpGet, key, "")
	case Write:
		rec.Value = d.writeValue(user, seq, -1)
		raw = kvstore.EncodeOp(kvstore.OpPut, key, rec.Value)
	case Delete:
		raw = kvstore.EncodeOp(kvstore.OpDelete, key, "")
	case Scan:
		// Scan the run of up to ten adjacent keys sharing the prefix.
		rec.Key = key[:len(key)-1]
		raw = kvstore.EncodeOp(kvstore.OpScan, rec.Key, strconv.Itoa(d.cfg.ScanLimit))
	case Txn:
		raw = d.buildTxn(&rec, user, seq)
	}
	rec.Invoke = d.loop.Now()
	var traceID string
	traceID = d.invoke(user%d.cfg.Conns, raw, func(res []byte) {
		d.complete(rec, traceID, res)
	})
	// Safe after the invoke: replies cross the simulated network, so done
	// cannot have fired synchronously at this same event.
	if d.tracer != nil && traceID != "" {
		d.tracer.MarkArrive(traceID, rec.Arrive)
		d.tracer.MarkInvoke(traceID, rec.Invoke)
	}
}

// buildTxn fills in one multi-key transaction — half the draws write two
// keys atomically, half read two keys atomically — and returns its
// encoded one-phase form. A router splits it into PREPARE/COMMIT when
// the keys span shards.
func (d *Driver) buildTxn(rec *Op, user, seq int) []byte {
	a, b := d.txnKeys()
	id := fmt.Sprintf("t%d.%d", user, seq)
	rec.Key = id
	var subs []kvstore.TxnSub
	if d.rng.Intn(2) == 0 {
		va, vb := d.writeValue(user, seq, 0), d.writeValue(user, seq, 1)
		rec.Sub = []SubOp{{Kind: Write, Key: a, Value: va}, {Kind: Write, Key: b, Value: vb}}
		subs = []kvstore.TxnSub{{Code: kvstore.OpPut, Key: a, Value: va}, {Code: kvstore.OpPut, Key: b, Value: vb}}
	} else {
		rec.Sub = []SubOp{{Kind: Read, Key: a}, {Kind: Read, Key: b}}
		subs = []kvstore.TxnSub{{Code: kvstore.OpGet, Key: a}, {Code: kvstore.OpGet, Key: b}}
	}
	return kvstore.EncodeTxn(id, subs)
}

// txnKeys draws the two distinct keys of a transaction.
func (d *Driver) txnKeys() (string, string) {
	if d.cfg.TxnPick != nil {
		return d.cfg.TxnPick(d.rng)
	}
	a := d.cfg.Keys.Pick(d.rng)
	b := d.cfg.Keys.Pick(d.rng)
	for tries := 0; b == a && tries < 16; tries++ {
		b = d.cfg.Keys.Pick(d.rng)
	}
	if b == a {
		b = (a + 1) % d.cfg.Keys.Keys()
	}
	return KeyName(a), KeyName(b)
}

// complete records one finished operation and schedules the user's next
// work according to the arrival model.
func (d *Driver) complete(rec Op, traceID string, res []byte) {
	ret := d.loop.Now()
	measured := rec.Measured
	if d.tracer != nil && traceID != "" {
		d.tracer.MarkReturn(traceID, ret)
		d.tracer.Finish(traceID, measured)
	}
	rec.Return = ret
	if traceID != "" {
		if fast, ok := d.paths[traceID]; ok {
			rec.Fast = fast
			delete(d.paths, traceID)
		}
	}
	d.normalize(&rec, res)
	d.hist.Add(rec)
	d.completed++
	if rec.Kind == Txn && rec.Result != Committed {
		d.aborted++
		if measured {
			d.abortedMeasured++
		}
	}
	if measured {
		d.measured++
		d.rec.Record(ret - rec.Arrive)
		if ret > d.endAt {
			d.endAt = ret
		}
	}
	user := rec.User
	if d.cfg.Arrival.Model == ModelClosed {
		if d.issued < d.total {
			d.loop.After(d.cfg.Arrival.Think, func() {
				if d.issued < d.total {
					d.issue(user, d.loop.Now())
				}
			})
		}
		return
	}
	d.busy[user] = false
	if q := d.queued[user]; len(q) > 0 {
		at := q[0]
		d.queued[user] = q[1:]
		d.issue(user, at)
	}
}

// writeValue builds the unique value of one write, padded to ValueSize.
// sub is the sub-operation index inside a transaction (-1 for a plain
// write); the stem stays unique across both forms because no stem is
// another stem followed by padding dots.
func (d *Driver) writeValue(user, seq, sub int) string {
	v := fmt.Sprintf("u%d.%d", user, seq)
	if sub >= 0 {
		v = fmt.Sprintf("%s.%d", v, sub)
	}
	if pad := d.cfg.ValueSize - len(v); pad > 0 {
		v += strings.Repeat(".", pad)
	}
	return v
}

// normalize maps a kvstore reply onto the observation the history
// records: reads record the value seen (Absent for a missing key),
// deletes record Found/NotFound, transactions record their outcome plus
// per-sub read observations, writes and scans record nothing the checker
// uses. Unexpected replies are recorded verbatim so they surface as
// correctness violations rather than vanishing.
func (d *Driver) normalize(rec *Op, res []byte) {
	s := string(res)
	switch rec.Kind {
	case Read:
		if s == "NOTFOUND" {
			rec.Result = Absent
		} else {
			rec.Result = s
		}
	case Delete:
		switch s {
		case "OK":
			rec.Result = Found
		case "NOTFOUND":
			rec.Result = NotFound
		default:
			rec.Result = s
		}
	case Txn:
		status, results, err := kvstore.DecodeTxnResult(res)
		switch {
		case err == nil && status == kvstore.TxnCommitted && len(results) == len(rec.Sub):
			rec.Result = Committed
			for i := range rec.Sub {
				if rec.Sub[i].Kind == Read {
					if v := string(results[i]); v == "NOTFOUND" {
						rec.Sub[i].Result = Absent
					} else {
						rec.Sub[i].Result = v
					}
				}
			}
		case err == nil && status == kvstore.TxnAborted:
			rec.Result = Aborted
		default:
			rec.Result = s
		}
	}
}

// NotePath records which path served the operation traced as traceID:
// fast (accepted on 2F+1 matching tentative replies) or ordered. Client
// stacks with the read fast path enabled call it immediately before the
// operation's done callback, so the verdict is in place when complete()
// records the operation into the history.
func (d *Driver) NotePath(traceID string, fast bool) {
	if traceID == "" {
		return
	}
	d.paths[traceID] = fast
}

// SetTracer attaches an observability tracer: each operation's arrival,
// invocation and return are marked under the trace id its Invoker
// returns, and Finish folds them into the latency breakdown. Call before
// Run; a nil tracer (the default) disables marking.
func (d *Driver) SetTracer(t *obs.Tracer) { d.tracer = t }

// History returns the complete operation record of the run.
func (d *Driver) History() *History { return d.hist }

// Latencies returns the recorder holding measured-operation latencies
// (arrival to reply, so open-loop queueing is included).
func (d *Driver) Latencies() *metrics.Recorder { return d.rec }

// Issued returns how many operations have been submitted.
func (d *Driver) Issued() int { return d.issued }

// Completed returns how many operations have finished.
func (d *Driver) Completed() int { return d.completed }

// MeasuredOps returns how many finished operations were after warmup.
func (d *Driver) MeasuredOps() int { return d.measured }

// MeasuredSpan returns the measured window: the arrival of the first
// measured operation and the completion of the last.
func (d *Driver) MeasuredSpan() (start, end sim.Time) { return d.startAt, d.endAt }

// Goodput returns completed measured operations per second over the
// measured span — under open-loop overload this falls below the offered
// rate, which is exactly the signal the E9 curves plot.
func (d *Driver) Goodput() float64 {
	return metrics.Throughput(d.measured, d.endAt-d.startAt)
}

// Aborted returns how many transactions finished aborted (or
// unresolved) — their effects never became visible, so they do not
// count as useful work.
func (d *Driver) Aborted() int { return d.aborted }

// CommittedGoodput returns measured operations per second excluding
// aborted transactions — the committed (useful) throughput the E10
// scaling curves plot.
func (d *Driver) CommittedGoodput() float64 {
	return metrics.Throughput(d.measured-d.abortedMeasured, d.endAt-d.startAt)
}
