package workload

import (
	"strings"
	"testing"

	"rubin/internal/sim"
)

// op builds one completed history entry with microsecond timestamps.
func op(kind Kind, key string, value, result string, invUS, retUS int64) Op {
	return Op{
		User: 0, Kind: kind, Key: key, Value: value, Result: result,
		Arrive: sim.Time(invUS) * sim.Microsecond,
		Invoke: sim.Time(invUS) * sim.Microsecond,
		Return: sim.Time(retUS) * sim.Microsecond,
	}
}

func historyOf(ops ...Op) *History {
	h := &History{}
	for _, o := range ops {
		h.Add(o)
	}
	return h
}

func TestCheckAcceptsSequentialHistory(t *testing.T) {
	h := historyOf(
		op(Read, "a", "", Absent, 0, 1),
		op(Write, "a", "v1", "", 2, 3),
		op(Read, "a", "", "v1", 4, 5),
		op(Delete, "a", "", Found, 6, 7),
		op(Read, "a", "", Absent, 8, 9),
		op(Delete, "a", "", NotFound, 10, 11),
		op(Write, "b", "w1", "", 0, 2), // independent key
		op(Read, "b", "", "w1", 3, 4),
	)
	if err := h.CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRejectsStaleRead is the injected-violation self-test: a read
// strictly after two sequential writes must observe the second one.
func TestCheckRejectsStaleRead(t *testing.T) {
	h := historyOf(
		op(Write, "a", "v1", "", 0, 1),
		op(Write, "a", "v2", "", 2, 3),
		op(Read, "a", "", "v1", 4, 5), // stale: v2 committed before it began
	)
	err := h.CheckLinearizable()
	if err == nil {
		t.Fatal("stale read accepted")
	}
	if !strings.Contains(err.Error(), `key "a"`) {
		t.Fatalf("violation does not name the key: %v", err)
	}
}

func TestCheckRejectsLostWrite(t *testing.T) {
	h := historyOf(
		op(Write, "a", "v1", "", 0, 1),
		op(Read, "a", "", Absent, 2, 3), // the write vanished
	)
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("lost write accepted")
	}
}

func TestCheckRejectsPhantomValue(t *testing.T) {
	h := historyOf(
		op(Write, "a", "v1", "", 0, 1),
		op(Read, "a", "", "v999", 2, 3), // never written
	)
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("phantom read accepted")
	}
}

func TestCheckRejectsWrongDeleteObservation(t *testing.T) {
	// A delete of an existing key observing NotFound.
	h := historyOf(
		op(Write, "a", "v1", "", 0, 1),
		op(Delete, "a", "", NotFound, 2, 3),
	)
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("delete of a written key observed NotFound and was accepted")
	}
	// A delete of a never-written key observing Found.
	h = historyOf(op(Delete, "a", "", Found, 0, 1))
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("delete of an absent key observed Found and was accepted")
	}
}

func TestCheckAcceptsConcurrentAmbiguity(t *testing.T) {
	// A read overlapping a write may see either the old or new value.
	for _, seen := range []string{Absent, "v1"} {
		h := historyOf(
			op(Write, "a", "v1", "", 0, 10),
			op(Read, "a", "", seen, 1, 9),
		)
		if err := h.CheckLinearizable(); err != nil {
			t.Fatalf("concurrent read of %q rejected: %v", display(seen), err)
		}
	}
	// Two concurrent writes followed by reads that agree on one order.
	h := historyOf(
		op(Write, "a", "v1", "", 0, 10),
		op(Write, "a", "v2", "", 0, 10),
		op(Read, "a", "", "v2", 11, 12),
		op(Read, "a", "", "v2", 13, 14),
	)
	if err := h.CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsCircularReadOrder(t *testing.T) {
	// Sequential reads observing v1 then v2 then v1 again with no
	// intervening writer of v1: no write order explains both.
	h := historyOf(
		op(Write, "a", "v1", "", 0, 10),
		op(Write, "a", "v2", "", 0, 10),
		op(Read, "a", "", "v1", 11, 12),
		op(Read, "a", "", "v2", 13, 14),
		op(Read, "a", "", "v1", 15, 16),
	)
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("circular read order accepted")
	}
}

func TestCheckSkipsScans(t *testing.T) {
	h := historyOf(
		op(Scan, "k00", "", "anything", 0, 1),
		op(Write, "a", "v1", "", 2, 3),
		op(Read, "a", "", "v1", 4, 5),
	)
	if err := h.CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsMalformedIntervals(t *testing.T) {
	h := historyOf(op(Write, "a", "v1", "", 5, 2)) // returns before invoke
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("malformed interval accepted")
	}
}

func TestCheckHandlesManyConcurrentWrites(t *testing.T) {
	// 24 fully concurrent unique writes plus a read pinning the winner:
	// the memoized search must dispatch this without exploring 24!.
	h := &History{}
	for i := 0; i < 24; i++ {
		h.Add(op(Write, "a", KeyName(i), "", 0, 100))
	}
	h.Add(op(Read, "a", "", KeyName(17), 101, 102))
	if err := h.CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEmptyHistory(t *testing.T) {
	if err := (&History{}).CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestDisplayRendersSentinels(t *testing.T) {
	for in, want := range map[string]string{
		Absent: "<absent>", Found: "<found>", NotFound: "<notfound>",
		"": "-", "v1": `"v1"`,
	} {
		if got := display(in); got != want {
			t.Errorf("display(%q) = %q, want %q", in, got, want)
		}
	}
}
