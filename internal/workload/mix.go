package workload

import (
	"fmt"
	"math/rand"
)

// Kind classifies one workload operation.
type Kind uint8

// Operation kinds.
const (
	Read Kind = iota + 1
	Write
	Delete
	Scan
	// Txn is a multi-key transaction: two sub-operations on distinct keys
	// that must commit atomically (all-or-nothing), even when the keys
	// live on different shards.
	Txn
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Delete:
		return "delete"
	case Scan:
		return "scan"
	case Txn:
		return "txn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Mix is an operation mix in percent. The shares must sum to exactly
// 100; any share may be zero.
type Mix struct {
	ReadPct   int
	WritePct  int
	DeletePct int
	ScanPct   int
	TxnPct    int
}

// Validate checks the shares.
func (m Mix) Validate() error {
	if m.ReadPct < 0 || m.WritePct < 0 || m.DeletePct < 0 || m.ScanPct < 0 || m.TxnPct < 0 {
		return fmt.Errorf("workload: negative mix share in %v", m)
	}
	if sum := m.ReadPct + m.WritePct + m.DeletePct + m.ScanPct + m.TxnPct; sum != 100 {
		return fmt.Errorf("workload: mix %v sums to %d, want 100", m, sum)
	}
	return nil
}

// Pick draws one operation kind.
func (m Mix) Pick(r *rand.Rand) Kind {
	v := r.Intn(100)
	switch {
	case v < m.ReadPct:
		return Read
	case v < m.ReadPct+m.WritePct:
		return Write
	case v < m.ReadPct+m.WritePct+m.DeletePct:
		return Delete
	case v < m.ReadPct+m.WritePct+m.DeletePct+m.ScanPct:
		return Scan
	default:
		return Txn
	}
}

func (m Mix) String() string {
	s := fmt.Sprintf("r%d/w%d/d%d/s%d", m.ReadPct, m.WritePct, m.DeletePct, m.ScanPct)
	if m.TxnPct > 0 {
		s += fmt.Sprintf("/t%d", m.TxnPct)
	}
	return s
}
