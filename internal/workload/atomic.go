package workload

import "fmt"

// CheckAtomicity verifies the all-or-nothing visibility of multi-key
// transactions: no read — single-key or inside a committed transaction —
// may observe a value written by a transaction that did not commit. This
// rejects dirty reads of staged 2PC writes (a value escaping before the
// decision), reads of aborted transactions' writes, and any write of an
// unresolved transaction (coordinator crash between PREPARE and COMMIT)
// becoming visible before a recovery decision is recorded.
//
// Together with CheckLinearizable — which explodes committed
// transactions into per-key operations, so a torn transaction (one
// sub-write applied, another missing) violates the per-key real-time
// order — this is the cross-shard correctness bar: committed
// transactions are observed in full, everything else not at all.
// History.Check runs both.
//
// Write values are globally unique (the driver stamps each with its
// user, sequence number and sub index), so a value identifies the
// transaction that wrote it.
func (h *History) CheckAtomicity() error {
	writer := map[string]*Op{}
	for i := range h.ops {
		op := &h.ops[i]
		if op.Kind != Txn {
			continue
		}
		for _, s := range op.Sub {
			if s.Kind == Write && s.Value != "" {
				writer[s.Value] = op
			}
		}
	}
	check := func(observed string, reader *Op) error {
		t, ok := writer[observed]
		if !ok || t.Result == Committed {
			return nil
		}
		return fmt.Errorf("workload: atomicity violation: u%d read %q written by %s transaction %q of u%d",
			reader.User, observed, display(t.Result), t.Key, t.User)
	}
	for i := range h.ops {
		op := &h.ops[i]
		switch op.Kind {
		case Read:
			if err := check(op.Result, op); err != nil {
				return err
			}
		case Txn:
			if op.Result != Committed {
				continue
			}
			for _, s := range op.Sub {
				if s.Kind != Read {
					continue
				}
				if err := check(s.Result, op); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Check runs the full correctness suite over the history: cross-shard
// atomicity first (its violations are the more specific report), then
// per-key linearizability with committed transactions exploded.
func (h *History) Check() error {
	if err := h.CheckAtomicity(); err != nil {
		return err
	}
	return h.CheckLinearizable()
}
