package workload

import (
	"rubin/internal/sim"
)

// Sentinel observations recorded in Op.Result. They contain a NUL byte,
// so no store value the driver writes can collide with them.
const (
	// Absent is what a read of a never-written (or deleted) key observes.
	Absent = "\x00absent"
	// Found is what a delete that removed an existing key observes.
	Found = "\x00found"
	// NotFound is what a delete of an absent key observes.
	NotFound = "\x00notfound"
	// Committed is the recorded outcome of a multi-key transaction whose
	// coordinator reported COMMITTED.
	Committed = "\x00committed"
	// Aborted is the recorded outcome of a transaction that was decided
	// ABORTED (lock conflict, or an explicit recovery decision).
	Aborted = "\x00aborted"
	// Unresolved is the recorded outcome of a transaction whose decision
	// never reached the client — a coordinator crash between PREPARE and
	// COMMIT. Its writes must be invisible until a decision is recorded.
	Unresolved = "\x00unresolved"
)

// SubOp is one sub-operation of a multi-key transaction: a read or a
// write of a single key.
type SubOp struct {
	Kind Kind
	Key  string
	// Value is the value a write sub-operation stores.
	Value string
	// Result is the normalized observation of a read sub-operation (the
	// value seen, Absent for a missing key); empty until the transaction
	// commits — aborted transactions observe nothing.
	Result string
}

// Op is one recorded operation of a workload run.
type Op struct {
	User int
	Kind Kind
	Key  string
	// Value is the value a Write stored.
	Value string
	// Result is the normalized observation: reads record the value seen
	// (Absent for a missing key), deletes record Found or NotFound,
	// transactions record Committed/Aborted/Unresolved; writes and scans
	// record nothing the checker uses.
	Result string
	// Sub holds a transaction's sub-operations (Kind == Txn only).
	Sub []SubOp
	// Arrive is when the operation entered the system. For open-loop
	// arrivals it precedes Invoke by the queueing delay behind the
	// user's previous operation, and latency is measured from here.
	Arrive sim.Time
	// Invoke and Return bound the real-time interval the linearizability
	// check uses: the operation took effect at some instant inside it.
	Invoke sim.Time
	Return sim.Time
	// Measured marks operations after the warmup.
	Measured bool
	// Fast marks operations served by the read-only fast path (2F+1
	// matching tentative replies, no agreement round). The correctness
	// checkers treat fast and ordered operations identically — that is
	// the point: a fast-path run must pass the same linearizability and
	// atomicity oracles as an ordered one.
	Fast bool
}

// History is the complete record of a workload run, in completion order.
type History struct {
	ops []Op
}

// Add appends one completed operation.
func (h *History) Add(op Op) { h.ops = append(h.ops, op) }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Ops returns the recorded operations in completion order. The slice is
// shared; treat it as read-only.
func (h *History) Ops() []Op { return h.ops }

// FastOps returns how many recorded operations were served by the
// read-only fast path.
func (h *History) FastOps() int {
	n := 0
	for i := range h.ops {
		if h.ops[i].Fast {
			n++
		}
	}
	return n
}
