package workload

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/sim"
)

// ---------------------------------------------------------------------------
// Key distributions
// ---------------------------------------------------------------------------

func countPicks(t *testing.T, c KeyChooser, draws int) []int {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	counts := make([]int, c.Keys())
	for i := 0; i < draws; i++ {
		k := c.Pick(r)
		if k < 0 || k >= c.Keys() {
			t.Fatalf("%s picked %d outside [0, %d)", c, k, c.Keys())
		}
		counts[k]++
	}
	return counts
}

func TestUniformSpreadsEvenly(t *testing.T) {
	counts := countPicks(t, NewUniform(16), 16000)
	for k, n := range counts {
		if n < 700 || n > 1300 {
			t.Errorf("key %d drawn %d times, want ~1000", k, n)
		}
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	counts := countPicks(t, NewZipf(64, 0.99), 20000)
	uniformShare := 20000 / 64
	if counts[0] < 5*uniformShare {
		t.Errorf("hottest zipf key drawn %d times, want far above the uniform %d", counts[0], uniformShare)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[8] {
		t.Errorf("zipf popularity not decreasing: %d, %d, %d", counts[0], counts[1], counts[8])
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	counts := countPicks(t, NewZipf(16, 0), 16000)
	for k, n := range counts {
		if n < 700 || n > 1300 {
			t.Errorf("theta=0 key %d drawn %d times, want ~1000", k, n)
		}
	}
}

func TestZipfSingleKey(t *testing.T) {
	counts := countPicks(t, NewZipf(1, 0.5), 100)
	if counts[0] != 100 {
		t.Fatalf("single-key zipf drew %d of 100", counts[0])
	}
}

func TestHotSetHonorsFraction(t *testing.T) {
	counts := countPicks(t, NewHotSet(100, 10, 0.9), 10000)
	hot := 0
	for k := 0; k < 10; k++ {
		hot += counts[k]
	}
	if hot < 8500 || hot > 9500 {
		t.Errorf("hot set drew %d of 10000, want ~9000", hot)
	}
	counts = countPicks(t, NewHotSet(10, 10, 0.5), 1000)
	if counts[0] == 0 {
		t.Error("degenerate all-hot set never drew key 0")
	}
}

func TestChoosersAreDeterministic(t *testing.T) {
	for _, c := range []KeyChooser{NewUniform(32), NewZipf(32, 0.9), NewHotSet(32, 4, 0.8)} {
		a := countPicks(t, c, 2000)
		b := countPicks(t, c, 2000)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s not deterministic per seed", c)
		}
		if c.String() == "" {
			t.Errorf("%T has empty description", c)
		}
	}
}

func TestChooserConstructorsPanicOnBadShape(t *testing.T) {
	for name, build := range map[string]func(){
		"uniform-zero": func() { NewUniform(0) },
		"zipf-theta-1": func() { NewZipf(8, 1.0) },
		"hotset-wide":  func() { NewHotSet(4, 5, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			build()
		}()
	}
}

// ---------------------------------------------------------------------------
// Mix and arrival models
// ---------------------------------------------------------------------------

func TestMixPickMatchesShares(t *testing.T) {
	m := Mix{ReadPct: 50, WritePct: 30, DeletePct: 10, ScanPct: 10}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	counts := map[Kind]int{}
	for i := 0; i < 10000; i++ {
		counts[m.Pick(r)]++
	}
	if counts[Read] < 4500 || counts[Read] > 5500 {
		t.Errorf("reads %d of 10000, want ~5000", counts[Read])
	}
	if counts[Scan] < 700 || counts[Scan] > 1300 {
		t.Errorf("scans %d of 10000, want ~1000", counts[Scan])
	}
	if m.String() != "r50/w30/d10/s10" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMixValidateRejectsBadShares(t *testing.T) {
	for _, m := range []Mix{
		{ReadPct: 101, WritePct: -1},
		{ReadPct: 50, WritePct: 40}, // sums to 90
		{ReadPct: 60, WritePct: 60}, // sums to 120
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %v accepted", m)
		}
	}
}

func TestArrivalValidate(t *testing.T) {
	for _, a := range []Arrival{
		Closed(1, 0), Closed(8, sim.Millisecond),
		Poisson(1000), Bursts(5000, sim.Millisecond, sim.Millisecond),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s rejected: %v", a, err)
		}
		if a.String() == "" {
			t.Error("empty arrival description")
		}
	}
	for _, a := range []Arrival{
		{}, Closed(0, 0), Closed(1, -1), Poisson(0), Bursts(100, 0, 0),
		{Model: "warp"},
	} {
		if err := a.Validate(); err == nil {
			t.Errorf("arrival %+v accepted", a)
		}
	}
}

func TestPoissonGapsMatchRate(t *testing.T) {
	clock := &arrivalClock{a: Poisson(10000)} // mean gap 100µs
	r := rand.New(rand.NewSource(3))
	var total sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		total += clock.gap(r)
	}
	mean := total / n
	if mean < 90*sim.Microsecond || mean > 110*sim.Microsecond {
		t.Errorf("mean poisson gap %v, want ~100µs", mean)
	}
}

func TestBurstGapsInsertOffPeriods(t *testing.T) {
	on, off := sim.Millisecond, 4*sim.Millisecond
	clock := &arrivalClock{a: Bursts(10000, on, off)}
	r := rand.New(rand.NewSource(3))
	var total sim.Time
	const n = 10000
	sawOff := false
	for i := 0; i < n; i++ {
		g := clock.gap(r)
		if g >= off {
			sawOff = true
		}
		total += g
	}
	if !sawOff {
		t.Fatal("no gap ever spanned an off period")
	}
	// 10000 arrivals at 10k/s fill ~1s of on time = ~1000 on periods,
	// each followed by 4ms off: the stream must stretch to ~5x.
	if total < 4*sim.Second || total > 6*sim.Second {
		t.Errorf("burst stream spans %v, want ~5s", total)
	}
}

// ---------------------------------------------------------------------------
// Driver against an in-process store
// ---------------------------------------------------------------------------

// fakeService executes operations against a single kvstore after a
// deterministic service delay, like a (non-replicated) server would:
// the execution instant is the linearization point.
type fakeService struct {
	loop  *sim.Loop
	store *kvstore.Store
	delay sim.Time
	calls int
}

func (s *fakeService) invoke(conn int, op []byte, done func([]byte)) string {
	s.calls++
	jitter := sim.Time(s.calls%7) * sim.Microsecond
	s.loop.After(s.delay+jitter, func() {
		done(s.store.Execute(op))
	})
	return ""
}

func testConfig(arrival Arrival) Config {
	return Config{
		Users: 20, Conns: 4, Ops: 400, Warmup: 40,
		Keys:    NewZipf(24, 0.9),
		Mix:     Mix{ReadPct: 35, WritePct: 35, DeletePct: 10, ScanPct: 10, TxnPct: 10},
		Arrival: arrival, ValueSize: 32, Seed: 9,
	}
}

func runDriver(t *testing.T, cfg Config) (*Driver, *fakeService) {
	t.Helper()
	loop := sim.NewLoop(1)
	svc := &fakeService{loop: loop, store: kvstore.New(), delay: 50 * sim.Microsecond}
	d, err := New(loop, cfg, svc.invoke)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	return d, svc
}

func TestDriverClosedLoop(t *testing.T) {
	cfg := testConfig(Closed(2, 10*sim.Microsecond))
	d, svc := runDriver(t, cfg)
	total := cfg.Ops + cfg.Warmup
	if d.Issued() != total || d.Completed() != total || svc.calls != total {
		t.Fatalf("issued/completed/calls = %d/%d/%d, want %d", d.Issued(), d.Completed(), svc.calls, total)
	}
	if d.MeasuredOps() != cfg.Ops || d.Latencies().Count() != cfg.Ops {
		t.Fatalf("measured %d ops, %d samples, want %d", d.MeasuredOps(), d.Latencies().Count(), cfg.Ops)
	}
	if d.History().Len() != total {
		t.Fatalf("history holds %d ops, want %d", d.History().Len(), total)
	}
	start, end := d.MeasuredSpan()
	if end <= start || d.Goodput() <= 0 {
		t.Fatalf("measured span [%v, %v], goodput %v", start, end, d.Goodput())
	}
	if err := d.History().Check(); err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, op := range d.History().Ops() {
		kinds[op.Kind]++
		if op.Invoke != op.Arrive {
			t.Fatal("closed-loop ops must not queue")
		}
	}
	for _, k := range []Kind{Read, Write, Delete, Scan, Txn} {
		if kinds[k] == 0 {
			t.Errorf("mix produced no %s ops", k)
		}
	}
	// One-phase transactions against a single store never conflict.
	if d.Aborted() != 0 {
		t.Fatalf("%d transactions aborted against a lock-free store", d.Aborted())
	}
	if d.CommittedGoodput() != d.Goodput() {
		t.Fatal("committed goodput diverged with zero aborts")
	}
}

func TestDriverTxnsRecordSubOps(t *testing.T) {
	cfg := testConfig(Closed(2, 0))
	cfg.Mix = Mix{WritePct: 30, TxnPct: 70}
	d, _ := runDriver(t, cfg)
	if err := d.History().Check(); err != nil {
		t.Fatal(err)
	}
	readers, writers := 0, 0
	for _, op := range d.History().Ops() {
		if op.Kind != Txn {
			continue
		}
		if op.Result != Committed {
			t.Fatalf("txn %q finished %q", op.Key, op.Result)
		}
		if len(op.Sub) != 2 || op.Sub[0].Key == op.Sub[1].Key {
			t.Fatalf("txn %q subs: %+v", op.Key, op.Sub)
		}
		switch op.Sub[0].Kind {
		case Read:
			readers++
			for _, s := range op.Sub {
				if s.Result == "" {
					t.Fatalf("committed reader txn %q has empty observation", op.Key)
				}
			}
		case Write:
			writers++
			for _, s := range op.Sub {
				if s.Value == "" {
					t.Fatalf("writer txn %q has empty value", op.Key)
				}
			}
		}
	}
	if readers == 0 || writers == 0 {
		t.Fatalf("mix produced %d reader and %d writer txns", readers, writers)
	}
}

func TestDriverOpenLoopQueuesBehindBusyUsers(t *testing.T) {
	cfg := testConfig(Poisson(2_000_000)) // far beyond the 50µs service time
	cfg.Users = 4
	d, _ := runDriver(t, cfg)
	if err := d.History().CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
	queued := 0
	for _, op := range d.History().Ops() {
		if op.Invoke > op.Arrive {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("overloaded open loop never queued an arrival")
	}
	// Queueing delay must count into measured latency: with 4 users and
	// a 2M/s offered rate the p99 has to sit far above the service time.
	if p99 := d.Latencies().Percentile(99); p99 < 200*sim.Microsecond {
		t.Errorf("p99 %v does not reflect queueing", p99)
	}
}

func TestDriverBurstsComplete(t *testing.T) {
	cfg := testConfig(Bursts(100000, 500*sim.Microsecond, 2*sim.Millisecond))
	d, _ := runDriver(t, cfg)
	if err := d.History().CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
	if d.Completed() != cfg.Ops+cfg.Warmup {
		t.Fatalf("completed %d", d.Completed())
	}
}

func TestDriverDeterministicPerSeed(t *testing.T) {
	for _, arrival := range []Arrival{Closed(2, 0), Poisson(100000)} {
		a, _ := runDriver(t, testConfig(arrival))
		b, _ := runDriver(t, testConfig(arrival))
		if !reflect.DeepEqual(a.History().Ops(), b.History().Ops()) {
			t.Errorf("%s: same-seed histories differ", arrival)
		}
	}
}

func TestDriverWriteValuesUniqueAndPadded(t *testing.T) {
	d, _ := runDriver(t, testConfig(Closed(1, 0)))
	seen := map[string]bool{}
	for _, op := range d.History().Ops() {
		if op.Kind != Write {
			continue
		}
		if len(op.Value) < 32 {
			t.Fatalf("write value %q shorter than ValueSize", op.Value)
		}
		if seen[op.Value] {
			t.Fatalf("duplicate write value %q", op.Value)
		}
		seen[op.Value] = true
	}
}

func TestDriverScanRepliesMatchPrefix(t *testing.T) {
	cfg := testConfig(Closed(1, 0))
	cfg.Mix = Mix{WritePct: 50, ScanPct: 50}
	cfg.ScanLimit = 3
	loop := sim.NewLoop(1)
	store := kvstore.New()
	scans := 0
	d, err := New(loop, cfg, func(_ int, op []byte, done func([]byte)) string {
		loop.After(sim.Microsecond, func() {
			res := store.Execute(op)
			if code, prefix, _, _ := kvstore.DecodeOp(op); code == kvstore.OpScan {
				scans++
				lines := strings.Split(string(res), "\n")
				if len(lines) > 3 {
					t.Errorf("scan returned %d pairs, limit 3", len(lines))
				}
				for _, l := range lines {
					if l != "" && !strings.HasPrefix(l, prefix) {
						t.Errorf("scan pair %q outside prefix %q", l, prefix)
					}
				}
			}
			done(res)
		})
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if scans == 0 {
		t.Fatal("mix produced no scans")
	}
}

func TestConfigValidateRejectsBadShapes(t *testing.T) {
	good := testConfig(Closed(1, 0))
	for name, mutate := range map[string]func(*Config){
		"no-users":  func(c *Config) { c.Users = 0 },
		"no-conns":  func(c *Config) { c.Conns = 0 },
		"no-ops":    func(c *Config) { c.Ops = 0 },
		"neg-warm":  func(c *Config) { c.Warmup = -1 },
		"no-keys":   func(c *Config) { c.Keys = nil },
		"bad-mix":   func(c *Config) { c.Mix = Mix{ReadPct: 10} },
		"bad-model": func(c *Config) { c.Arrival = Arrival{Model: "warp"} },
		"neg-value": func(c *Config) { c.ValueSize = -1 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := New(sim.NewLoop(1), cfg, func(int, []byte, func([]byte)) string { return "" }); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if _, err := New(sim.NewLoop(1), good, nil); err == nil {
		t.Error("nil invoker accepted")
	}
}

func TestDriverReportsIncompleteRuns(t *testing.T) {
	cfg := testConfig(Closed(1, 0))
	cfg.Users, cfg.Ops, cfg.Warmup = 2, 4, 0
	loop := sim.NewLoop(1)
	d, err := New(loop, cfg, func(_ int, _ []byte, done func([]byte)) string {
		// Drop every request: done never fires.
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err == nil {
		t.Fatal("driver reported success with no completions")
	}
}
