package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rubin/internal/sim"
)

// checkBudget bounds the search nodes the checker explores per key.
// Linearizability checking is NP-hard in general; real histories from a
// correct system check in near-linear time (see the greedy rule below),
// so hitting the budget is reported as its own error instead of hanging
// the suite.
const checkBudget = 4 << 20

// CheckLinearizable verifies that the recorded history is linearizable
// under per-key register semantics: for every key there must exist a
// total order of its reads, writes and deletes that (a) respects real
// time — an operation that returned before another was invoked precedes
// it — and (b) is legal for a register starting Absent: a read observes
// the latest written value (Absent if none), a delete observes whether
// the key existed and leaves it Absent. Committed transactions are
// exploded into per-key virtual operations carrying the transaction's
// interval — the coordinator replies only after every participant
// applied the COMMIT, so all sub-effects take place inside it, and a
// later read missing one sub-write (a torn transaction) fails the
// real-time order. Aborted and unresolved transactions observed nothing
// and wrote nothing (CheckAtomicity enforces the latter). Scans are
// recorded but not checked — they are multi-key observations outside
// the per-key register model. Every operation must have completed (the
// driver guarantees it).
func (h *History) CheckLinearizable() error {
	byKey := map[string][]*Op{}
	var keys []string
	add := func(op *Op) {
		if _, ok := byKey[op.Key]; !ok {
			keys = append(keys, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for i := range h.ops {
		op := &h.ops[i]
		if op.Kind == Scan {
			continue
		}
		if op.Return < op.Invoke || op.Invoke < op.Arrive {
			return fmt.Errorf("workload: malformed interval on %s of %q: arrive=%v invoke=%v return=%v",
				op.Kind, op.Key, op.Arrive, op.Invoke, op.Return)
		}
		if op.Kind == Txn {
			if op.Result != Committed {
				continue
			}
			for _, s := range op.Sub {
				add(&Op{
					User: op.User, Kind: s.Kind, Key: s.Key,
					Value: s.Value, Result: s.Result,
					Arrive: op.Arrive, Invoke: op.Invoke, Return: op.Return,
				})
			}
			continue
		}
		add(op)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := checkKey(key, byKey[key]); err != nil {
			return err
		}
	}
	return nil
}

// checkKey searches for a legal linearization of one key's operations.
func checkKey(key string, ops []*Op) error {
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].Return < ops[j].Return
	})
	c := &keyChecker{
		ops:       ops,
		done:      make([]bool, len(ops)),
		remaining: len(ops),
		visited:   map[string]bool{},
		budget:    checkBudget,
	}
	if c.search(Absent) {
		return nil
	}
	if c.budget < 0 {
		return fmt.Errorf("workload: linearizability check of key %q exceeded its search budget (%d ops)", key, len(ops))
	}
	return fmt.Errorf("workload: history of key %q is not linearizable:\n%s", key, renderOps(ops))
}

// keyChecker is one key's Wing–Gong search state.
type keyChecker struct {
	ops       []*Op
	done      []bool
	remaining int
	// visited memoizes failed (linearized-set, state) configurations so
	// permutations of independent writes are explored once.
	visited map[string]bool
	budget  int
}

// search reports whether the not-yet-linearized operations admit a legal
// order starting from the given register state.
func (c *keyChecker) search(state string) bool {
	if c.remaining == 0 {
		return true
	}
	c.budget--
	if c.budget < 0 {
		return false
	}
	// minRet is the earliest return among remaining operations. An
	// operation may linearize next ("minimal") iff it was invoked no
	// later — otherwise some remaining op already returned before it
	// began and must be ordered first.
	minRet := sim.Time(math.MaxInt64)
	for i, op := range c.ops {
		if !c.done[i] && op.Return < minRet {
			minRet = op.Return
		}
	}
	// Greedy rule: a minimal operation that observes the current state
	// without changing it (a read of the current value, a delete that
	// correctly found nothing) linearizes immediately. This is complete,
	// not only sound: such an op is concurrent with every other
	// remaining op (none returned before it was invoked), and moving a
	// state-preserving op to the front of any legal order keeps the
	// order legal. It removes all branching over reads.
	for i, op := range c.ops {
		if c.done[i] || op.Invoke > minRet {
			continue
		}
		if stateNeutral(op, state) {
			c.done[i] = true
			c.remaining--
			ok := c.search(state)
			c.done[i] = false
			c.remaining++
			return ok
		}
	}
	// Branch over state-changing candidates.
	memo := c.memoKey(state)
	if c.visited[memo] {
		return false
	}
	for i, op := range c.ops {
		if c.done[i] || op.Invoke > minRet {
			continue
		}
		next, ok := transition(op, state)
		if !ok {
			continue
		}
		c.done[i] = true
		c.remaining--
		found := c.search(next)
		c.done[i] = false
		c.remaining++
		if found {
			return true
		}
	}
	c.visited[memo] = true
	return false
}

// memoKey encodes the linearized set plus the register state.
func (c *keyChecker) memoKey(state string) string {
	b := make([]byte, (len(c.ops)+7)/8, (len(c.ops)+7)/8+len(state)+1)
	for i, done := range c.done {
		if done {
			b[i/8] |= 1 << (i % 8)
		}
	}
	b = append(b, 0)
	b = append(b, state...)
	return string(b)
}

// stateNeutral reports whether op observes state consistently without
// changing it.
func stateNeutral(op *Op, state string) bool {
	switch op.Kind {
	case Read:
		return op.Result == state
	case Delete:
		return op.Result == NotFound && state == Absent
	}
	return false
}

// transition applies a state-changing operation, reporting whether its
// recorded observation is consistent with the current state.
func transition(op *Op, state string) (string, bool) {
	switch op.Kind {
	case Write:
		return op.Value, true
	case Delete:
		if op.Result == Found && state != Absent {
			return Absent, true
		}
	}
	return "", false
}

// renderOps formats a key's operations for a violation report.
func renderOps(ops []*Op) string {
	var b strings.Builder
	for i, op := range ops {
		if i == 16 {
			fmt.Fprintf(&b, "  ... %d more\n", len(ops)-i)
			break
		}
		fmt.Fprintf(&b, "  u%-4d %-6s [%v, %v] wrote=%q saw=%s\n",
			op.User, op.Kind, op.Invoke, op.Return, op.Value, display(op.Result))
	}
	return b.String()
}

// display renders an observation, replacing the sentinels.
func display(result string) string {
	switch result {
	case Absent:
		return "<absent>"
	case Found:
		return "<found>"
	case NotFound:
		return "<notfound>"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Unresolved:
		return "unresolved"
	case "":
		return "-"
	}
	return fmt.Sprintf("%q", result)
}
