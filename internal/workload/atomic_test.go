package workload

import (
	"strings"
	"testing"

	"rubin/internal/sim"
)

// The checker self-tests build synthetic histories around one writer
// transaction T = {ka := va, kb := vb} and probe the cross-shard
// correctness bar: committed transactions are observed in full or not
// at all.

const (
	ka, kb = "k000001", "k000002"
	va, vb = "u1.1.0", "u1.1.1"
)

// at returns a completed operation spanning [from, to].
func at(op Op, from, to sim.Time) Op {
	op.Arrive, op.Invoke, op.Return = from, from, to
	return op
}

func writerTxn(result string, from, to sim.Time) Op {
	return at(Op{
		User: 1, Kind: Txn, Key: "t1.1", Result: result,
		Sub: []SubOp{
			{Kind: Write, Key: ka, Value: va},
			{Kind: Write, Key: kb, Value: vb},
		},
	}, from, to)
}

func readerTxn(user int, ra, rb string, from, to sim.Time) Op {
	return at(Op{
		User: user, Kind: Txn, Key: "t9.9", Result: Committed,
		Sub: []SubOp{
			{Kind: Read, Key: ka, Result: ra},
			{Kind: Read, Key: kb, Result: rb},
		},
	}, from, to)
}

func read(user int, key, saw string, from, to sim.Time) Op {
	return at(Op{User: user, Kind: Read, Key: key, Result: saw}, from, to)
}

func histOf(ops ...Op) *History {
	h := &History{}
	for _, op := range ops {
		h.Add(op)
	}
	return h
}

func TestCheckRejectsTornTxnWrite(t *testing.T) {
	// T committed at time 20, yet a read strictly after it finds kb
	// still absent: one sub-write applied, the other torn off. The
	// exploded sub-write of kb must linearize inside [10, 20], before
	// the read — per-key real time rejects the history.
	h := histOf(
		writerTxn(Committed, 10, 20),
		read(2, ka, va, 30, 40),
		read(2, kb, Absent, 30, 40),
	)
	err := h.Check()
	if err == nil {
		t.Fatal("torn transaction accepted")
	}
	if !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestCheckRejectsPreCommitObservation(t *testing.T) {
	// T's staged write escaped to a reader while the decision went
	// ABORTED: a dirty read of 2PC state.
	h := histOf(
		writerTxn(Aborted, 10, 20),
		read(2, ka, va, 12, 18),
	)
	err := h.Check()
	if err == nil {
		t.Fatal("dirty read of an aborted transaction accepted")
	}
	if !strings.Contains(err.Error(), "atomicity violation") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// The same observation inside a committed reader transaction is
	// equally illegal.
	h = histOf(
		writerTxn(Aborted, 10, 20),
		readerTxn(3, va, Absent, 12, 18),
	)
	if err := h.Check(); err == nil {
		t.Fatal("dirty sub-read of an aborted transaction accepted")
	}
}

func TestCheckRejectsUnresolvedTxnObservation(t *testing.T) {
	// The coordinator crashed between PREPARE and COMMIT: no decision
	// ever reached the client. Until a recovery decision is recorded
	// the staged writes must stay invisible everywhere.
	h := histOf(
		writerTxn(Unresolved, 10, 20),
		read(2, kb, vb, 50, 60),
	)
	err := h.Check()
	if err == nil {
		t.Fatal("observation of an unresolved transaction accepted")
	}
	if !strings.Contains(err.Error(), "atomicity violation") || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestCheckAcceptsCleanInterleaving(t *testing.T) {
	// A legal schedule: reads concurrent with T may see either world,
	// reads after T see both writes, an aborted transaction leaves no
	// trace, and a committed reader transaction observes T in full.
	h := histOf(
		read(2, ka, Absent, 1, 5), // before T
		writerTxn(Committed, 10, 20),
		read(3, ka, Absent, 8, 15), // concurrent: linearized before T
		read(4, kb, vb, 15, 25),    // concurrent: linearized after T
		at(Op{User: 5, Kind: Txn, Key: "t5.5", Result: Aborted,
			Sub: []SubOp{{Kind: Write, Key: ka, Value: "u5.5.0"}, {Kind: Write, Key: kb, Value: "u5.5.1"}}}, 22, 28),
		readerTxn(6, va, vb, 30, 40),
		read(7, ka, va, 45, 50),
	)
	if err := h.Check(); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestCheckAcceptsUnobservedUnresolvedTxn(t *testing.T) {
	// An in-doubt transaction whose staged writes never leak is not a
	// violation — the blocked locks are a liveness cost, not a safety
	// one.
	h := histOf(
		writerTxn(Unresolved, 10, 20),
		read(2, ka, Absent, 30, 40),
		read(2, kb, Absent, 30, 40),
	)
	if err := h.Check(); err != nil {
		t.Fatalf("unobserved in-doubt transaction rejected: %v", err)
	}
}

func TestCheckLinearizableSkipsAbortedSubOps(t *testing.T) {
	// An aborted transaction's sub-writes must not be exploded into the
	// per-key order: if they were, the read of ka seeing Absent after
	// the "write" would fail.
	h := histOf(
		at(Op{User: 1, Kind: Txn, Key: "t1.1", Result: Aborted,
			Sub: []SubOp{{Kind: Write, Key: ka, Value: va}}}, 10, 20),
		read(2, ka, Absent, 30, 40),
	)
	if err := h.Check(); err != nil {
		t.Fatalf("aborted transaction constrained the register: %v", err)
	}
}
