package reptor

import (
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// opRoutedTo returns an encoded kvstore put whose hash routes to the
// given instance.
func opRoutedTo(t *testing.T, cfg Config, instance int, salt string) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		op := kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("%s-%06d", salt, i), "v")
		if cfg.Route(op) == instance {
			return op
		}
	}
	t.Fatalf("no key routes to instance %d", instance)
	return nil
}

// TestBatchedFillAcrossMultiRoundHoleRun drives traffic at a single
// instance so every other instance accumulates a contiguous run of holes
// spanning several rounds, and asserts one heartbeat round fills several
// slots at once (the ranged ProposeHeartbeat) instead of paying one full
// agreement per hole.
func TestBatchedFillAcrossMultiRoundHoleRun(t *testing.T) {
	cfg := DefaultConfig()
	g := newTestGroup(t, transport.KindRDMA, cfg)
	cl, err := g.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 8: 24 requests at one instance commit as several rounds,
	// so the idle instances' hole runs span multiple rounds.
	const n = 24
	done := 0
	g.Loop.Post(func() {
		for i := 0; i < n; i++ {
			cl.Invoke(opRoutedTo(t, cfg, 0, fmt.Sprintf("batched-%d", i)), func([]byte) { done++ })
		}
	})
	g.Loop.Run()
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	if ex := g.Executors[0]; ex.Backlog() != 0 {
		t.Fatalf("executor stalled with %d committed-but-unmerged batches", ex.Backlog())
	}
	if got := len(g.GlobalOrder(0)); got != n {
		t.Fatalf("merged %d requests, want %d", got, n)
	}
	// A fill is proposed by the node leading the lagging instance, so the
	// counters live on different executors — aggregate them.
	var rounds, slots uint64
	for node := 0; node < cfg.PBFT.N; node++ {
		rounds += g.Executors[node].HeartbeatRounds()
		slots += g.Executors[node].HeartbeatSlots()
	}
	if rounds == 0 {
		t.Fatal("single-instance traffic should require heartbeat fills")
	}
	if slots <= rounds {
		t.Errorf("fills are not batched: %d rounds filled only %d slots", rounds, slots)
	}
	// Every node agrees on the merged order.
	ref := g.GlobalOrder(0)
	for node := 1; node < cfg.PBFT.N; node++ {
		got := g.GlobalOrder(node)
		if len(got) != len(ref) {
			t.Fatalf("node %d merged %d, node 0 merged %d", node, len(got), len(ref))
		}
	}
}

// TestHeartbeatSkippedWhenHoleFillsConcurrently arms the heartbeat with a
// delay far beyond the commit latency: the hole the timer was armed for
// fills through normal traffic before the timer fires, so the fire must
// not propose anything (no wasted empty-batch agreement) and the merge
// must complete regardless.
func TestHeartbeatSkippedWhenHoleFillsConcurrently(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeartbeatDelay = 50 * sim.Millisecond // >> commit latency
	cfg.HeartbeatMax = 100 * sim.Millisecond
	g := newTestGroup(t, transport.KindRDMA, cfg)
	cl, err := g.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// One op per instance: every instance's round-1 slot fills with real
	// traffic, at slightly different instants — each executor transiently
	// sees holes and arms, but every hole fills on its own.
	done := 0
	g.Loop.Post(func() {
		for k := 0; k < cfg.Instances; k++ {
			cl.Invoke(opRoutedTo(t, cfg, k, fmt.Sprintf("conc-%d", k)), func([]byte) { done++ })
		}
	})
	g.Loop.Run()
	if done != cfg.Instances {
		t.Fatalf("completed %d of %d", done, cfg.Instances)
	}
	for node := 0; node < cfg.PBFT.N; node++ {
		ex := g.Executors[node]
		if ex.HeartbeatRounds() != 0 {
			t.Errorf("node %d fired %d heartbeat fills for holes that filled concurrently",
				node, ex.HeartbeatRounds())
		}
		if ex.Backlog() != 0 {
			t.Errorf("node %d stalled with backlog %d", node, ex.Backlog())
		}
		if got := len(g.GlobalOrder(node)); got != cfg.Instances {
			t.Errorf("node %d merged %d requests, want %d", node, got, cfg.Instances)
		}
	}
}

// TestSubsumedRoundsUnblockMerge drives the executor's state-transfer
// accounting directly: rounds folded into an adopted checkpoint must
// advance the merge without order entries instead of wedging it, stale
// deliveries behind the cursor must be dropped, and the skip must be
// visible through SubsumedSlots.
func TestSubsumedRoundsUnblockMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instances = 2
	g := newTestGroup(t, transport.KindTCP, cfg)
	e := g.Executors[0]
	req := func(ts uint64) []pbft.Request {
		return []pbft.Request{{Client: 9, Timestamp: ts, Op: []byte("x")}}
	}
	// Instance 1 commits rounds 1-2; instance 0's replica state-transfers
	// past them (its rounds 1-2 will never be delivered).
	e.deliver(1, 1, req(1))
	e.deliver(1, 2, req(2))
	if e.MergedSlots() != 0 {
		t.Fatalf("merged %d slots before instance 0 resolved", e.MergedSlots())
	}
	e.subsume(0, 2)
	if e.MergedSlots() != 4 {
		t.Fatalf("merged %d slots after subsume, want 4", e.MergedSlots())
	}
	if e.SubsumedSlots() != 2 {
		t.Fatalf("SubsumedSlots = %d, want 2", e.SubsumedSlots())
	}
	if e.Backlog() != 0 {
		t.Fatalf("backlog %d after subsume, want 0", e.Backlog())
	}
	if len(e.order) != 2 {
		t.Fatalf("order has %d entries, want the 2 delivered requests", len(e.order))
	}
	// A late delivery for a subsumed (already passed) round is dropped,
	// not buffered forever.
	e.deliver(0, 1, nil)
	if e.Backlog() != 0 {
		t.Fatalf("stale delivery was buffered: backlog %d", e.Backlog())
	}
	// Normal merging continues beyond the subsumed prefix.
	e.deliver(0, 3, req(3))
	e.deliver(1, 3, req(4))
	if e.MergedSlots() != 6 || e.Backlog() != 0 {
		t.Fatalf("merge did not resume: slots=%d backlog=%d", e.MergedSlots(), e.Backlog())
	}
}

// TestAdaptiveBackoffResetsOnTraffic asserts the two halves of the
// adaptive delay: heartbeat rounds against an idle instance double its
// delay (up to the cap), and real traffic on that instance snaps it back
// to the floor.
func TestAdaptiveBackoffResetsOnTraffic(t *testing.T) {
	cfg := DefaultConfig()
	g := newTestGroup(t, transport.KindRDMA, cfg)
	cl, err := g.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: hammer instance 0; instances 1..3 are idle and get filled
	// by heartbeats, backing their delays off.
	done := 0
	g.Loop.Post(func() {
		for i := 0; i < 24; i++ {
			cl.Invoke(opRoutedTo(t, cfg, 0, fmt.Sprintf("backoff-%d", i)), func([]byte) { done++ })
		}
	})
	g.Loop.Run()
	if done != 24 {
		t.Fatalf("phase 1 completed %d of 24", done)
	}
	ex := g.Executors[0]
	idle := 1
	backedOff := ex.HeartbeatDelay(idle)
	if backedOff <= cfg.HeartbeatDelay {
		t.Fatalf("idle instance %d delay %v did not back off beyond the floor %v",
			idle, backedOff, cfg.HeartbeatDelay)
	}
	if backedOff > cfg.HeartbeatMax {
		t.Fatalf("delay %v exceeded the cap %v", backedOff, cfg.HeartbeatMax)
	}
	// Phase 2: real traffic on the idle instance resets its delay.
	g.Loop.Post(func() {
		cl.Invoke(opRoutedTo(t, cfg, idle, "reset"), func([]byte) { done++ })
	})
	g.Loop.Run()
	if done != 25 {
		t.Fatalf("phase 2 completed %d of 25", done)
	}
	if got := ex.HeartbeatDelay(idle); got != cfg.HeartbeatDelay {
		t.Errorf("delay after traffic = %v, want reset to floor %v", got, cfg.HeartbeatDelay)
	}
}
