package reptor

import (
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func newTestGroup(t *testing.T, kind transport.Kind, cfg Config) *Group {
	t.Helper()
	g, err := NewGroup(kind, cfg, model.Default(), 1, func(i int) pbft.Application { return kvstore.New() })
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	if err := g.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return g
}

func TestLeadershipIsSpreadAcrossInstances(t *testing.T) {
	g := newTestGroup(t, transport.KindTCP, DefaultConfig())
	leaders := map[uint32]bool{}
	for k, reps := range g.Instances {
		leader := reps[0].Leader(reps[0].View())
		leaders[leader] = true
		if want := uint32(k % g.Config.PBFT.N); leader != want {
			t.Fatalf("instance %d led by %d, want %d", k, leader, want)
		}
	}
	if len(leaders) != g.Config.Instances {
		t.Fatalf("only %d distinct leaders across %d instances", len(leaders), g.Config.Instances)
	}
}

func TestRequestsCommitAcrossInstances(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindTCP, transport.KindRDMA} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			g := newTestGroup(t, kind, DefaultConfig())
			cl, err := g.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			done := 0
			used := map[int]bool{}
			g.Loop.Post(func() {
				for i := 0; i < n; i++ {
					op := kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("key-%03d", i), "v")
					used[g.Config.Route(op)] = true
					cl.Invoke(op, func([]byte) { done++ })
				}
			})
			g.Loop.Run()
			if done != n {
				t.Fatalf("completed %d of %d", done, n)
			}
			if len(used) < 2 {
				t.Fatalf("routing degenerate: only %d instances used", len(used))
			}
			// All replicas converge to the same state.
			d0 := g.Apps[0].Snapshot()
			for i := 1; i < g.Config.PBFT.N; i++ {
				if g.Apps[i].Snapshot() != d0 {
					t.Fatalf("replica %d state diverged", i)
				}
			}
		})
	}
}

func TestGlobalOrderIsIdenticalOnAllNodes(t *testing.T) {
	g := newTestGroup(t, transport.KindRDMA, DefaultConfig())
	cl, err := g.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	g.Loop.Post(func() {
		for i := 0; i < n; i++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("g%03d", i), "v"), nil)
		}
	})
	g.Loop.Run()
	ref := g.GlobalOrder(0)
	total := 0
	for node := 1; node < g.Config.PBFT.N; node++ {
		got := g.GlobalOrder(node)
		if len(got) != len(ref) {
			t.Fatalf("node %d merged %d requests, node 0 merged %d", node, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("global order diverges at %d: %s vs %s", i, got[i], ref[i])
			}
		}
		total = len(got)
	}
	if total != n {
		t.Fatalf("global order contains %d requests, want %d", total, n)
	}
	// Heartbeats must have filled the holes so rounds merged fully.
	for node := 0; node < g.Config.PBFT.N; node++ {
		if g.Executors[node].MergedSlots() == 0 {
			t.Fatalf("node %d merged no slots", node)
		}
	}
}

func TestSingleInstanceDegeneratesToPBFT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instances = 1
	g := newTestGroup(t, transport.KindTCP, cfg)
	cl, err := g.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	g.Loop.Post(func() {
		for i := 0; i < 10; i++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("s%d", i), "v"), func([]byte) { done++ })
		}
	})
	g.Loop.Run()
	if done != 10 {
		t.Fatalf("completed %d of 10", done)
	}
}

func TestRouteIsDeterministicAndInRange(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < 200; i++ {
		op := []byte(fmt.Sprintf("op-%d", i))
		k1, k2 := cfg.Route(op), cfg.Route(op)
		if k1 != k2 {
			t.Fatal("routing not deterministic")
		}
		if k1 < 0 || k1 >= cfg.Instances {
			t.Fatalf("route %d out of range", k1)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Instances = 0
	if bad.Validate() == nil {
		t.Fatal("zero instances should be rejected")
	}
	bad = DefaultConfig()
	bad.PBFT.N = 3
	if bad.Validate() == nil {
		t.Fatal("invalid PBFT config should be rejected")
	}
}

func TestCOPSpreadsLeaderLoad(t *testing.T) {
	// COP's claim (Behl et al.): parallelizing consensus instances
	// removes the single-leader bottleneck. At workloads that are
	// round-trip-bound rather than CPU-bound the end-to-end time is
	// similar, so we assert the mechanism directly: with K=1 the leader
	// node burns far more CPU than the others; with K=4 (one instance
	// led by each replica) the load is balanced — and throughput must
	// not collapse from the extra connections.
	const (
		clients    = 4
		perClient  = 60
		payloadLen = 2048
	)
	run := func(instances int) (elapsed float64, imbalance float64) {
		cfg := DefaultConfig()
		cfg.Instances = instances
		g, err := NewGroup(transport.KindRDMA, cfg, model.Default(), 1,
			func(i int) pbft.Application { return kvstore.New() })
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		var cls []*Client
		for c := 0; c < clients; c++ {
			cl, err := g.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			cls = append(cls, cl)
		}
		// Snapshot CPU busy before the workload (setup costs excluded).
		before := make([]sim.Time, cfg.PBFT.N)
		for i := range before {
			before[i] = g.Network.Node(fmt.Sprintf("r%d", i)).CPU.BusyTotal()
		}
		start := g.Loop.Now()
		var finish sim.Time
		done := 0
		g.Loop.Post(func() {
			for c, cl := range cls {
				for i := 0; i < perClient; i++ {
					key := fmt.Sprintf("c%dw%04d", c, i)
					cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, string(make([]byte, payloadLen))), func([]byte) {
						done++
						finish = g.Loop.Now()
					})
				}
			}
		})
		g.Loop.Run()
		if done != clients*perClient {
			t.Fatalf("K=%d completed %d of %d", instances, done, clients*perClient)
		}
		var max, sum float64
		for i := range before {
			busy := float64(g.Network.Node(fmt.Sprintf("r%d", i)).CPU.BusyTotal() - before[i])
			sum += busy
			if busy > max {
				max = busy
			}
		}
		return (finish - start).Seconds(), max / (sum / float64(cfg.PBFT.N))
	}
	t1, imb1 := run(1)
	t4, imb4 := run(4)
	if imb4 >= imb1 {
		t.Errorf("COP did not spread leader load: imbalance K=1 %.3f vs K=4 %.3f", imb1, imb4)
	}
	if imb4 > 1.25 {
		t.Errorf("K=4 load imbalance %.3f, want near-uniform (<= 1.25)", imb4)
	}
	if t4 > 1.5*t1 {
		t.Errorf("K=4 time %.6fs collapsed vs K=1 %.6fs", t4, t1)
	}
}
