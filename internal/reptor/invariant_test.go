package reptor

import (
	"fmt"
	"math/rand"
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// TestSeededChaosInvariants runs COP groups under randomly generated but
// fully seeded fault schedules — link latency/jitter spikes, delayed-send
// replicas, and bounded single-replica isolations with heal — and asserts
// the invariants that must survive any such schedule:
//
//  1. liveness: every client operation completes;
//  2. agreement: all nodes merge byte-identical global orders containing
//     every operation exactly once;
//  3. no executor stall: no node is left holding committed-but-unmerged
//     batches once the dust settles;
//  4. state convergence: all replicas reach the same application state.
//
// The schedule derives entirely from the seed, so a failure reproduces
// exactly by rerunning the seed.
func TestSeededChaosInvariants(t *testing.T) {
	kinds := []transport.Kind{transport.KindRDMA, transport.KindTCP, transport.KindRDMA, transport.KindTCP}
	for i, seed := range []int64{7, 11, 23, 42} {
		seed, kind := seed, kinds[i]
		t.Run(fmt.Sprintf("seed%d-%s", seed, kind), func(t *testing.T) {
			runSeededChaos(t, kind, seed)
		})
	}
}

func runSeededChaos(t *testing.T, kind transport.Kind, seed int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Instances = 2 + int(seed%3) // 2..4 pipelines
	g, err := NewGroup(kind, cfg, model.Default(), seed, func(int) pbft.Application { return kvstore.New() })
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	const clients = 2
	cls := make([]*Client, clients)
	for i := range cls {
		if cls[i], err = g.AddClient(); err != nil {
			t.Fatal(err)
		}
	}

	// Build the fault schedule from the seed alone (independent of the
	// loop's random source, so the schedule is stable even if simulator
	// internals change their draw order).
	rng := rand.New(rand.NewSource(seed))
	n := g.Config.PBFT.N
	node := func(i int) *fabric.Node { return g.Network.Node(fmt.Sprintf("r%d", i)) }
	horizon := 400 * sim.Millisecond

	// Latency/jitter spikes on random replica links.
	for ev := 0; ev < 4; ev++ {
		i := rng.Intn(n)
		j := (i + 1 + rng.Intn(n-1)) % n
		at := sim.Time(rng.Int63n(int64(horizon * 3 / 4)))
		dur := 20*sim.Millisecond + sim.Time(rng.Int63n(int64(40*sim.Millisecond)))
		f := fabric.LinkFaults{
			ExtraLatency: sim.Time(rng.Int63n(int64(200 * sim.Microsecond))),
			Jitter:       sim.Time(rng.Int63n(int64(100 * sim.Microsecond))),
		}
		link := g.Network.Link(node(i), node(j))
		g.Loop.After(at, func() { link.SetFaults(f) })
		g.Loop.After(at+dur, func() { link.SetFaults(fabric.LinkFaults{}) })
	}
	// A delayed-send replica (slow process, not crashed): every instance
	// replica on that node delays its outbound traffic.
	for ev := 0; ev < 2; ev++ {
		i := rng.Intn(n)
		at := sim.Time(rng.Int63n(int64(horizon / 2)))
		dur := 20*sim.Millisecond + sim.Time(rng.Int63n(int64(30*sim.Millisecond)))
		delay := sim.Time(rng.Int63n(int64(300 * sim.Microsecond)))
		g.Loop.After(at, func() {
			for k := range g.Instances {
				g.Instances[k][i].SetFaults(pbft.Faults{SendDelay: delay})
			}
		})
		g.Loop.After(at+dur, func() {
			for k := range g.Instances {
				g.Instances[k][i].SetFaults(pbft.Faults{})
			}
		})
	}
	// One bounded isolation: a random replica loses all replica links
	// (held-and-released, so stream transports survive), long enough to
	// force view changes in the instances it leads, then heals.
	{
		i := rng.Intn(n)
		at := 50*sim.Millisecond + sim.Time(rng.Int63n(int64(100*sim.Millisecond)))
		dur := 60*sim.Millisecond + sim.Time(rng.Int63n(int64(60*sim.Millisecond)))
		g.Loop.After(at, func() {
			for j := 0; j < n; j++ {
				if j != i {
					g.Network.Link(node(i), node(j)).SetFaults(fabric.LinkFaults{Down: true})
				}
			}
		})
		g.Loop.After(at+dur, func() {
			for j := 0; j < n; j++ {
				if j != i {
					g.Network.Link(node(i), node(j)).SetFaults(fabric.LinkFaults{})
				}
			}
		})
	}

	// Closed-loop workload across the fault horizon.
	const perClient = 150
	done := 0
	for ci := 0; ci < clients; ci++ {
		ci := ci
		sent := 0
		var sendOne func()
		sendOne = func() {
			idx := sent
			sent++
			op := kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("inv-%d-%04d", ci, idx), "v")
			cls[ci].Invoke(op, func([]byte) {
				done++
				if sent < perClient {
					sendOne()
				}
			})
		}
		g.Loop.Post(func() {
			for w := 0; w < 8 && sent < perClient; w++ {
				sendOne()
			}
		})
	}

	// Run well past the horizon so recovery (view changes, state
	// transfer, heartbeat fills) completes; the event cap turns a
	// livelock into a loud failure instead of a hung test.
	g.Loop.SetEventLimit(80_000_000)
	g.Loop.RunUntil(g.Loop.Now() + 4*horizon)

	if want := clients * perClient; done != want {
		t.Fatalf("seed %d: completed %d of %d operations (liveness lost)", seed, done, want)
	}
	// Byte-identical orders are only promised for nodes that never
	// state-transferred: a subsumed round legitimately gaps a node's
	// local order (Executor.SubsumedSlots). None of the seeded schedules
	// reaches a transfer today (isolation is hold-and-release, so a
	// healed node replays its backlog instead of fetching state); if a
	// future schedule does, this names the real cause instead of a
	// baffling order mismatch.
	for nodeIdx := 0; nodeIdx < n; nodeIdx++ {
		if s := g.Executors[nodeIdx].SubsumedSlots(); s != 0 {
			t.Fatalf("seed %d: node %d subsumed %d slots via state transfer — order comparison not applicable, adjust the schedule or the assertions", seed, nodeIdx, s)
		}
	}
	ref := g.GlobalOrder(0)
	for nodeIdx := 1; nodeIdx < n; nodeIdx++ {
		got := g.GlobalOrder(nodeIdx)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: node %d merged %d entries, node 0 merged %d",
				seed, nodeIdx, len(got), len(ref))
		}
		for p := range ref {
			if got[p] != ref[p] {
				t.Fatalf("seed %d: global order diverges at %d: %q vs %q", seed, p, got[p], ref[p])
			}
		}
	}
	seen := make(map[string]int)
	for _, key := range ref {
		seen[key]++
	}
	if len(ref) != clients*perClient {
		t.Errorf("seed %d: merged order has %d entries, want %d", seed, len(ref), clients*perClient)
	}
	for key, c := range seen {
		if c != 1 {
			t.Errorf("seed %d: operation %q merged %d times", seed, key, c)
		}
	}
	for nodeIdx := 0; nodeIdx < n; nodeIdx++ {
		if b := g.Executors[nodeIdx].Backlog(); b != 0 {
			t.Errorf("seed %d: node %d executor stalled with %d committed-but-unmerged batches",
				seed, nodeIdx, b)
		}
	}
	d0 := g.Apps[0].Snapshot()
	for nodeIdx := 1; nodeIdx < n; nodeIdx++ {
		if g.Apps[nodeIdx].Snapshot() != d0 {
			t.Errorf("seed %d: replica %d application state diverged", seed, nodeIdx)
		}
	}
}
