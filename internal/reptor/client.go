package reptor

import (
	"fmt"
	"strconv"

	"rubin/internal/kvstore"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/pbft"
)

// Client routes operations to the responsible COP instance and collects
// BFT-quorum replies, one sub-client per instance.
//
// Every sub-client gets its own globally unique PBFT client identity:
// request keys are (client, timestamp) pairs and each sub-client counts
// timestamps independently, so sharing one identity across instances
// would make unrelated operations indistinguishable in the merged global
// order (and in the replicas' reply caches).
type Client struct {
	group *Group
	id    uint32
	sub   []*pbft.Client
	mesh  *msgnet.Mesh
}

// setTracer propagates the group's tracer to this client's mesh.
func (c *Client) setTracer(t *obs.Tracer) { c.mesh.SetTracer(t) }

// subClientID derives the PBFT identity of client id's instance-k
// sub-client. The stride bounds group size at 1024 clients per deployment
// before identities could collide — far beyond any simulated workload.
func subClientID(id uint32, k int) uint32 { return id + uint32(k)*1024 }

// AddClient creates a client on its own node connected to every replica's
// per-instance client port.
func (g *Group) AddClient() (*Client, error) {
	id := uint32(100 + len(g.clients))
	node := g.Network.AddNode(fmt.Sprintf("client%d", id))
	n := g.Config.PBFT.N
	for i := 0; i < n; i++ {
		g.Network.Connect(node, g.Network.Node(fmt.Sprintf("r%d", i)))
	}
	mesh, err := msgnet.NewMesh(g.Kind, node, msgnet.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mesh.SetTracer(g.tracer)
	cl := &Client{group: g, id: id, mesh: mesh}
	var dialErr error
	dials, want := 0, 0
	for k := 0; k < g.Config.Instances; k++ {
		sub := pbft.NewClient(subClientID(id, k), g.Config.PBFT.F)
		if g.readFastPath > 0 {
			sub.EnableReadFastPath(g.Loop, g.readFastPath)
		}
		cl.sub = append(cl.sub, sub)
		for i := 0; i < n; i++ {
			want++
			k, i := k, i
			g.Loop.Post(func() {
				mesh.Dial(g.Network.Node(fmt.Sprintf("r%d", i)), clientPortFor(k), func(p *msgnet.Peer, err error) {
					if err != nil {
						dialErr = err
						return
					}
					cl.sub[k].AttachReplica(uint32(i), p)
					dials++
				})
			})
		}
	}
	g.Loop.Run()
	if dialErr != nil {
		return nil, dialErr
	}
	if dials != want {
		return nil, fmt.Errorf("reptor: client wired %d of %d connections", dials, want)
	}
	g.clients = append(g.clients, cl)
	return cl, nil
}

// Invoke routes one operation to its instance; done fires on a BFT quorum
// of matching replies. The returned string is the request key the
// observability layer traces the operation under.
func (c *Client) Invoke(op []byte, done func([]byte)) string {
	k := c.group.Config.Route(op)
	return c.sub[k].Invoke(op, done)
}

// InvokeOp routes one encoded kvstore operation by the state-machine
// keys it touches (kvstore.OpKeys hashed through kvstore.PartitionKey,
// the repository's single partitioning function). Instances execute
// independently against the shared node-local state machine, so per-key
// semantics hold only when every operation of a key is ordered by the
// same instance — routing by the state-machine key guarantees that even
// when unique values make each operation's bytes distinct.
//
// Multi-key operations go through the partition structure:
//
//   - A scan fans out as one partition-filtered kvstore.OpScanPart per
//     instance. Partition k's keys are only ever mutated in instance k's
//     order, so each partial result is deterministic even though the
//     cross-instance merge interleaves differently per replica; the
//     partials are merged locally into the reply a whole-store scan
//     would have produced.
//   - A one-phase transaction routes to the instance owning its keys
//     when they all hash to one partition, and is refused otherwise —
//     cross-instance transactions need the shard layer's 2PC, not COP.
func (c *Client) InvokeOp(op []byte, done func([]byte)) string {
	parts := len(c.sub)
	code, key, value, err := kvstore.DecodeOp(op)
	if err != nil {
		// Undecodable bytes still deserve an ordered ERR reply.
		return c.Invoke(op, done)
	}
	if code == kvstore.OpScan && parts > 1 {
		limit := 0
		if n, err := strconv.Atoi(value); err == nil && n > 0 {
			limit = n
		}
		return c.scatterScan(key, limit, done)
	}
	keys, err := kvstore.OpKeys(op)
	if err != nil || len(keys) == 0 {
		return c.Invoke(op, done)
	}
	k := kvstore.PartitionKey(keys[0], parts)
	for _, extra := range keys[1:] {
		if kvstore.PartitionKey(extra, parts) != k {
			done([]byte("ERR cross-instance transaction (COP has no 2PC; use the shard layer)"))
			return ""
		}
	}
	// Single-key reads ride the fast path of the owning instance (a
	// no-op routing to the ordered path while the fast path is off).
	// Scans and transactions stay ordered: their consistency spans more
	// than one key.
	if code == kvstore.OpGet {
		return c.sub[k].InvokeRead(op, done)
	}
	return c.sub[k].Invoke(op, done)
}

// SetReadPathHook propagates a path-taken callback to every sub-client:
// it fires per completed fast-path-eligible operation with the trace key
// and whether the fast path served it (see pbft.Client.SetReadPathHook).
func (c *Client) SetReadPathHook(fn func(key string, fast bool)) {
	for _, s := range c.sub {
		s.SetReadPathHook(fn)
	}
}

// FastReads returns fast-path-served reads across sub-clients.
func (c *Client) FastReads() uint64 {
	var total uint64
	for _, s := range c.sub {
		total += s.FastReads()
	}
	return total
}

// FastReadFallbacks returns ordered-path fallbacks across sub-clients.
func (c *Client) FastReadFallbacks() uint64 {
	var total uint64
	for _, s := range c.sub {
		total += s.FastReadFallbacks()
	}
	return total
}

// scatterScan fans a scan out as one OpScanPart per instance and merges
// the partial replies. done fires once, after the last partial lands.
// The returned trace id is the partition-0 sub-request's — one
// representative leg of the scatter.
func (c *Client) scatterScan(prefix string, limit int, done func([]byte)) string {
	parts := len(c.sub)
	partials := make([]string, parts)
	pending := parts
	var traceID string
	for p, sub := range kvstore.SplitScan(prefix, limit, parts) {
		p := p
		id := c.sub[p].Invoke(sub, func(res []byte) {
			partials[p] = string(res)
			if pending--; pending == 0 {
				done([]byte(kvstore.MergeScans(partials, limit)))
			}
		})
		if p == 0 {
			traceID = id
		}
	}
	return traceID
}

// Completed returns the number of finished invocations across instances.
func (c *Client) Completed() uint64 {
	var total uint64
	for _, s := range c.sub {
		total += s.Completed()
	}
	return total
}

// Outstanding returns the invocations still awaiting quorum replies
// across all sub-clients.
func (c *Client) Outstanding() int {
	n := 0
	for _, s := range c.sub {
		n += s.Outstanding()
	}
	return n
}
