// Package reptor implements Consensus-Oriented Parallelization (COP,
// Behl et al., Middleware '15) — the parallelization scheme of the Reptor
// framework the paper integrates RUBIN into. Instead of splitting the BFT
// protocol into functional stages, COP runs K independent PBFT instances
// side by side (each led by a different replica) and deterministically
// merges their committed batches into one global total order.
//
// Requests are routed to instances by operation hash, so each instance
// orders a disjoint partition; the executor interleaves instance rounds
// round-robin (global slot = (seq-1)*K + instance) and fills holes left by
// idle instances with leader heartbeats (empty batches).
package reptor

import (
	"fmt"
	"hash/fnv"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Config tunes a COP group.
type Config struct {
	// PBFT is the per-instance protocol configuration.
	PBFT pbft.Config
	// Instances is K, the number of parallel consensus pipelines.
	Instances int
	// HeartbeatDelay is how long the executor waits on a hole before
	// asking the lagging instance's leader for empty batches — the
	// floor of the adaptive backoff. Real traffic on an instance resets
	// its delay to this value.
	HeartbeatDelay sim.Time
	// HeartbeatMax caps the exponential backoff: each heartbeat round an
	// instance stays idle doubles its delay up to this ceiling, so a cold
	// partition is probed aggressively at first and cheaply once it is
	// clearly idle.
	HeartbeatMax sim.Time
}

// DefaultConfig returns a 4-instance COP group over the default PBFT
// parameters.
func DefaultConfig() Config {
	return Config{
		PBFT:           pbft.DefaultConfig(),
		Instances:      4,
		HeartbeatDelay: 100 * sim.Microsecond,
		HeartbeatMax:   4 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Instances < 1 {
		return fmt.Errorf("reptor: need at least one instance")
	}
	if c.HeartbeatDelay < 1 || c.HeartbeatMax < c.HeartbeatDelay {
		return fmt.Errorf("reptor: need 0 < HeartbeatDelay <= HeartbeatMax, got %v/%v",
			c.HeartbeatDelay, c.HeartbeatMax)
	}
	return c.PBFT.Validate()
}

// Route assigns an operation to an instance by FNV-1a hash, partitioning
// the request space.
func (c Config) Route(op []byte) int {
	h := fnv.New32a()
	_, _ = h.Write(op)
	return int(h.Sum32()) % c.Instances
}

// Group is a running COP deployment: N nodes, K PBFT instances sharing
// each node's msgnet mesh (one transport stack per node), one merged
// executor per node.
type Group struct {
	Loop      *sim.Loop
	Network   *fabric.Network
	Config    Config
	Kind      transport.Kind
	Meshes    []*msgnet.Mesh
	Instances [][]*pbft.Replica // [instance][replica]
	Executors []*Executor       // one per node
	Apps      []pbft.Application

	clients []*Client
	tracer  *obs.Tracer

	// readFastPath, when non-zero, enables the read-only fast path on
	// every client (existing and future) with this fallback timeout.
	readFastPath sim.Time
}

// EnableReadFastPath turns on the read-only optimization for the group's
// clients: InvokeOp multicasts single-key reads to the owning instance's
// replicas and accepts 2F+1 matching tentative replies, falling back to
// the ordered path after timeout. Tentative reads execute against the
// node-local state machine shared by all instances, so a read routed to
// its key's owning instance observes that key exactly as the ordered
// path would.
func (g *Group) EnableReadFastPath(timeout sim.Time) {
	g.readFastPath = timeout
	for _, cl := range g.clients {
		for _, sub := range cl.sub {
			sub.EnableReadFastPath(g.Loop, timeout)
		}
	}
}

// SetTracer attaches an observability tracer to every instance replica,
// executor and mesh, including client meshes created later by AddClient.
// Call before generating traffic; a nil tracer detaches.
func (g *Group) SetTracer(t *obs.Tracer) {
	g.tracer = t
	for _, reps := range g.Instances {
		for _, rep := range reps {
			rep.SetTracer(t)
		}
	}
	for _, mesh := range g.Meshes {
		mesh.SetTracer(t)
	}
	for _, e := range g.Executors {
		e.tracer = t
	}
	for _, cl := range g.clients {
		cl.setTracer(t)
	}
}

// PeakQueueBytes returns the deepest msgnet send queue observed on any
// replica mesh — the group-level counterpart of pbft.Cluster.PeakQueueBytes.
func (g *Group) PeakQueueBytes() int {
	peak := 0
	for _, mesh := range g.Meshes {
		if d := mesh.PeakQueueBytes(); d > peak {
			peak = d
		}
	}
	return peak
}

// peerPortFor returns the replica-to-replica port of an instance.
func peerPortFor(instance int) int { return pbft.PeerPort + 10*instance }

// clientPortFor returns the client port of an instance.
func clientPortFor(instance int) int { return pbft.ClientPort + 10*instance }

// NewGroup assembles the deployment on a fresh simulation loop.
// appFactory provides the node-local state machine shared by all
// instances on that node (instances order disjoint partitions, so
// instance-local execution order is safe).
func NewGroup(kind transport.Kind, cfg Config, params model.Params, seed int64, appFactory func(node int) pbft.Application) (*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	loop := sim.NewLoop(seed)
	nw := fabric.New(loop, params)
	g := &Group{Loop: loop, Network: nw, Config: cfg, Kind: kind}

	n := cfg.PBFT.N
	opts := msgnet.DefaultOptions()
	for i := 0; i < n; i++ {
		node := nw.AddNode(fmt.Sprintf("r%d", i))
		mesh, err := msgnet.NewMesh(kind, node, opts)
		if err != nil {
			return nil, err
		}
		g.Meshes = append(g.Meshes, mesh)
		g.Apps = append(g.Apps, appFactory(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			nw.Connect(nw.Node(fmt.Sprintf("r%d", i)), nw.Node(fmt.Sprintf("r%d", j)))
		}
	}
	// Executors merge the instances' committed batches per node.
	for i := 0; i < n; i++ {
		g.Executors = append(g.Executors, newExecutor(g, i))
	}
	// Build the K instances; instance k starts in view k so leadership
	// rotates across replicas (the essence of COP: every replica leads
	// one pipeline).
	for k := 0; k < cfg.Instances; k++ {
		icfg := cfg.PBFT
		icfg.InitialView = uint64(k)
		rings := auth.GenerateKeyrings(n, uint64(seed)+uint64(k)*7919+1)
		var reps []*pbft.Replica
		for i := 0; i < n; i++ {
			rep, err := pbft.NewReplica(uint32(i), icfg, nw.Node(fmt.Sprintf("r%d", i)), rings[i], g.Apps[i])
			if err != nil {
				return nil, err
			}
			k, i := k, i
			rep.OnExecute(func(seq uint64, batch []pbft.Request) {
				g.Executors[i].deliver(k, seq, batch)
			})
			rep.OnCheckpointAdopt(func(seq uint64) {
				g.Executors[i].subsume(k, seq)
			})
			reps = append(reps, rep)
		}
		g.Instances = append(g.Instances, reps)
	}
	return g, nil
}

// Start wires every instance's connection mesh.
func (g *Group) Start() error {
	n := g.Config.PBFT.N
	for k, reps := range g.Instances {
		for i := 0; i < n; i++ {
			rep := reps[i]
			if err := g.Meshes[i].Listen(peerPortFor(k), func(p *msgnet.Peer) {
				rep.AttachInbound(p)
			}); err != nil {
				return err
			}
			if err := g.Meshes[i].Listen(clientPortFor(k), func(p *msgnet.Peer) {
				rep.HandleClientConn(p)
			}); err != nil {
				return err
			}
		}
	}
	var setupErr error
	dials := 0
	want := 0
	for k := range g.Instances {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				want++
				k, i, j := k, i, j
				g.Loop.Post(func() {
					g.Meshes[i].Dial(g.Network.Node(fmt.Sprintf("r%d", j)), peerPortFor(k), func(p *msgnet.Peer, err error) {
						if err != nil {
							setupErr = fmt.Errorf("instance %d dial r%d->r%d: %w", k, i, j, err)
							return
						}
						g.Instances[k][i].AttachPeer(uint32(j), p)
						dials++
					})
				})
			}
		}
	}
	g.Loop.Run()
	if setupErr != nil {
		return setupErr
	}
	if dials != want {
		return fmt.Errorf("reptor: %d of %d connections established", dials, want)
	}
	return nil
}

// GlobalOrder returns the merged global log of a node's executor as
// request keys, for cross-replica comparison in tests.
func (g *Group) GlobalOrder(node int) []string { return g.Executors[node].order }

// SendFaults sums the surfaced delivery failures across every replica of
// every instance — the group-level counterpart of pbft.Cluster.SendFaults,
// zero on a healthy network.
func (g *Group) SendFaults() uint64 {
	var n uint64
	for _, reps := range g.Instances {
		for _, rep := range reps {
			n += rep.SendFaults()
		}
	}
	return n
}

// Executor merges instance-local commits into the global total order on
// one node.
type Executor struct {
	group *Group
	node  int

	// ready[k] holds batches committed by instance k, keyed by
	// instance-local sequence.
	ready []map[uint64][]pbft.Request
	// round is the next instance-local sequence to merge.
	round uint64
	// cursor is the next instance within the current round.
	cursor int

	order []string
	slots uint64
	// hbArmed/hbRound/hbCursor/hbTimer track the one in-flight heartbeat
	// timer and the hole it was armed for, so a timer backed off for a
	// stale hole can be cancelled the moment the merge moves on to a
	// different one instead of blocking its (possibly much shorter) arm.
	hbArmed  bool
	hbRound  uint64
	hbCursor int
	hbTimer  sim.Timer
	// hbDelay is the per-instance adaptive heartbeat delay: reset to
	// Config.HeartbeatDelay by real traffic on the instance, doubled (up
	// to Config.HeartbeatMax) each heartbeat round the instance sits idle.
	hbDelay  []sim.Time
	hbRounds uint64
	hbSlots  uint64
	delivers uint64
	// subsumed[k] is the highest instance-k sequence folded into an
	// adopted state-transfer checkpoint: those rounds will never be
	// delivered through OnExecute and the merge must not wait for them.
	subsumed      []uint64
	subsumedSlots uint64

	// peakBacklog is the largest Backlog observed — the merge-pressure
	// high watermark E8/E9 report.
	peakBacklog int
	// Observability: with a tracer attached, deliverAt remembers when
	// each buffered batch committed so the merge can report how long the
	// barrier sat on it (RecordMergeWait + "merge-wait" spans).
	tracer    *obs.Tracer
	deliverAt map[slotKey]sim.Time
}

// slotKey identifies one instance-local sequence in the merge buffer.
type slotKey struct {
	instance int
	seq      uint64
}

func newExecutor(g *Group, node int) *Executor {
	e := &Executor{group: g, node: node, round: 1}
	for k := 0; k < g.Config.Instances; k++ {
		e.ready = append(e.ready, make(map[uint64][]pbft.Request))
		e.hbDelay = append(e.hbDelay, g.Config.HeartbeatDelay)
		e.subsumed = append(e.subsumed, 0)
	}
	return e
}

// MergedSlots returns how many global slots have been merged.
func (e *Executor) MergedSlots() uint64 { return e.slots }

// HeartbeatRounds returns how many heartbeat fills this executor fired.
func (e *Executor) HeartbeatRounds() uint64 { return e.hbRounds }

// HeartbeatSlots returns how many empty slots those fills requested —
// with batched hole-filling this can exceed HeartbeatRounds.
func (e *Executor) HeartbeatSlots() uint64 { return e.hbSlots }

// HeartbeatDelay returns the current adaptive delay of an instance.
func (e *Executor) HeartbeatDelay(instance int) sim.Time { return e.hbDelay[instance] }

// SubsumedSlots returns how many global slots were skipped because a
// state transfer folded their batches into an adopted checkpoint — a
// node with a non-zero count has a gap in its local view of the merged
// order (its application state is nevertheless the transferred, correct
// one).
func (e *Executor) SubsumedSlots() uint64 { return e.subsumedSlots }

// Backlog returns the number of committed-but-unmerged batches buffered
// by this executor — committed work the merge barrier is sitting on.
func (e *Executor) Backlog() int {
	n := 0
	for k := range e.ready {
		n += len(e.ready[k])
	}
	return n
}

// PeakBacklog returns the largest backlog this executor ever buffered.
func (e *Executor) PeakBacklog() int { return e.peakBacklog }

func (e *Executor) deliver(instance int, seq uint64, batch []pbft.Request) {
	e.delivers++
	// A delivery behind the merge cursor can only follow a subsumed-round
	// skip (normal execution is strictly in-order per instance); buffering
	// it would leave a permanently unmergeable entry behind.
	if seq < e.round || (seq == e.round && instance < e.cursor) {
		return
	}
	if len(batch) > 0 {
		// Real traffic: the instance's leader is alive and proposing, so
		// probe future holes at full speed again.
		e.hbDelay[instance] = e.group.Config.HeartbeatDelay
	}
	e.ready[instance][seq] = batch
	if b := e.Backlog(); b > e.peakBacklog {
		e.peakBacklog = b
	}
	if e.tracer != nil {
		if e.deliverAt == nil {
			e.deliverAt = make(map[slotKey]sim.Time)
		}
		e.deliverAt[slotKey{instance, seq}] = e.group.Loop.Now()
	}
	e.drain()
}

// subsume records that instance's sequences up to seq were folded into a
// state-transfer checkpoint this node adopted: the merge stops waiting
// for them. The affected global slots advance without contributing order
// entries — the batches' effects are inside the adopted application
// state, their contents unrecoverable here — and SubsumedSlots exposes
// how many, so a node that lived through a transfer is never silently
// wedged and never silently complete either.
func (e *Executor) subsume(instance int, seq uint64) {
	if seq > e.subsumed[instance] {
		e.subsumed[instance] = seq
	}
	for s := range e.ready[instance] {
		if s <= seq {
			delete(e.ready[instance], s)
			delete(e.deliverAt, slotKey{instance, s})
		}
	}
	e.drain()
}

// drain merges committed batches in strict (round, instance) order.
func (e *Executor) drain() {
	for {
		batch, ok := e.ready[e.cursor][e.round]
		if !ok {
			if e.round <= e.subsumed[e.cursor] {
				// Skipped by state transfer: advance the slot without
				// order entries (see subsume).
				e.subsumedSlots++
				e.slots++
				e.advanceCursor()
				continue
			}
			e.armHeartbeat()
			return
		}
		delete(e.ready[e.cursor], e.round)
		if e.tracer != nil {
			if at, ok := e.deliverAt[slotKey{e.cursor, e.round}]; ok {
				delete(e.deliverAt, slotKey{e.cursor, e.round})
				now := e.group.Loop.Now()
				e.tracer.RecordMergeWait(now - at)
				if now > at {
					e.tracer.Span("reptor", "merge-wait",
						fmt.Sprintf("r%d/i%d", e.node, e.cursor), "", at, now)
				}
			}
		}
		for _, req := range batch {
			e.order = append(e.order, req.Key())
		}
		e.slots++
		e.advanceCursor()
	}
}

func (e *Executor) advanceCursor() {
	e.cursor++
	if e.cursor == e.group.Config.Instances {
		e.cursor = 0
		e.round++
	}
}

// maxReadyRound returns the highest instance-local sequence committed by
// any instance but not yet merged — how far ahead of the barrier the
// group has already agreed.
func (e *Executor) maxReadyRound() uint64 {
	var max uint64
	for k := range e.ready {
		for seq := range e.ready[k] {
			if seq > max {
				max = seq
			}
		}
	}
	return max
}

// armHeartbeat schedules a one-shot nudge: if the hole at (round, cursor)
// persists for the instance's current adaptive delay and this node leads
// the lagging instance, fill the whole contiguous run of holes — every
// round up to the furthest committed-but-unmerged sequence — with one
// ranged heartbeat proposal instead of one full agreement per slot.
func (e *Executor) armHeartbeat() {
	if e.hbArmed {
		if e.hbRound == e.round && e.hbCursor == e.cursor {
			return // already armed for this very hole
		}
		// Armed for a hole the merge has moved past: a timer backed off
		// to HeartbeatMax for an idle instance must not delay the fresh
		// (floor-delay) probe of the hole now at the cursor.
		e.hbTimer.Cancel()
		e.hbArmed = false
	}
	// Only arm when some other instance has already moved past this
	// round — otherwise the group is simply idle. Any buffered entry is
	// at or beyond the merge cursor by construction (the merge consumes
	// every earlier slot before advancing), so the first non-empty
	// buffer decides; the full maxReadyRound scan is deferred to the
	// fired timer, off the per-delivery hot path.
	anyAhead := false
	for k := range e.ready {
		if len(e.ready[k]) > 0 {
			anyAhead = true
			break
		}
	}
	if !anyAhead {
		return
	}
	e.hbArmed = true
	instance, round := e.cursor, e.round
	e.hbRound, e.hbCursor = round, instance
	e.hbTimer = e.group.Loop.After(e.hbDelay[instance], func() {
		e.hbArmed = false
		if e.round == round && e.cursor == instance {
			// The hole survived the whole delay: the instance is idle.
			// Fill up to the furthest round any instance has committed,
			// and back off in case it stays idle.
			upTo := e.maxReadyRound()
			if upTo < round {
				upTo = round
			}
			rep := e.group.Instances[instance][e.node]
			if n := rep.ProposeHeartbeat(upTo); n > 0 {
				e.hbRounds++
				e.hbSlots += uint64(n)
			}
			if next := 2 * e.hbDelay[instance]; next <= e.group.Config.HeartbeatMax {
				e.hbDelay[instance] = next
			} else {
				e.hbDelay[instance] = e.group.Config.HeartbeatMax
			}
		}
		// Re-check: fills may have happened, or the hole persists and
		// needs re-arming.
		e.drain()
	})
}
