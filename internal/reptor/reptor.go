// Package reptor implements Consensus-Oriented Parallelization (COP,
// Behl et al., Middleware '15) — the parallelization scheme of the Reptor
// framework the paper integrates RUBIN into. Instead of splitting the BFT
// protocol into functional stages, COP runs K independent PBFT instances
// side by side (each led by a different replica) and deterministically
// merges their committed batches into one global total order.
//
// Requests are routed to instances by operation hash, so each instance
// orders a disjoint partition; the executor interleaves instance rounds
// round-robin (global slot = (seq-1)*K + instance) and fills holes left by
// idle instances with leader heartbeats (empty batches).
package reptor

import (
	"fmt"
	"hash/fnv"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/msgnet"
	"rubin/internal/pbft"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Config tunes a COP group.
type Config struct {
	// PBFT is the per-instance protocol configuration.
	PBFT pbft.Config
	// Instances is K, the number of parallel consensus pipelines.
	Instances int
	// HeartbeatDelay is how long the executor waits on a hole before
	// asking the lagging instance's leader for an empty batch.
	HeartbeatDelay sim.Time
}

// DefaultConfig returns a 4-instance COP group over the default PBFT
// parameters.
func DefaultConfig() Config {
	return Config{PBFT: pbft.DefaultConfig(), Instances: 4, HeartbeatDelay: 500 * sim.Microsecond}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Instances < 1 {
		return fmt.Errorf("reptor: need at least one instance")
	}
	return c.PBFT.Validate()
}

// Route assigns an operation to an instance by FNV-1a hash, partitioning
// the request space.
func (c Config) Route(op []byte) int {
	h := fnv.New32a()
	_, _ = h.Write(op)
	return int(h.Sum32()) % c.Instances
}

// Group is a running COP deployment: N nodes, K PBFT instances sharing
// each node's msgnet mesh (one transport stack per node), one merged
// executor per node.
type Group struct {
	Loop      *sim.Loop
	Network   *fabric.Network
	Config    Config
	Kind      transport.Kind
	Meshes    []*msgnet.Mesh
	Instances [][]*pbft.Replica // [instance][replica]
	Executors []*Executor       // one per node
	Apps      []pbft.Application

	clients []*Client
}

// peerPortFor returns the replica-to-replica port of an instance.
func peerPortFor(instance int) int { return pbft.PeerPort + 10*instance }

// clientPortFor returns the client port of an instance.
func clientPortFor(instance int) int { return pbft.ClientPort + 10*instance }

// NewGroup assembles the deployment on a fresh simulation loop.
// appFactory provides the node-local state machine shared by all
// instances on that node (instances order disjoint partitions, so
// instance-local execution order is safe).
func NewGroup(kind transport.Kind, cfg Config, params model.Params, seed int64, appFactory func(node int) pbft.Application) (*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	loop := sim.NewLoop(seed)
	nw := fabric.New(loop, params)
	g := &Group{Loop: loop, Network: nw, Config: cfg, Kind: kind}

	n := cfg.PBFT.N
	opts := msgnet.DefaultOptions()
	for i := 0; i < n; i++ {
		node := nw.AddNode(fmt.Sprintf("r%d", i))
		mesh, err := msgnet.NewMesh(kind, node, opts)
		if err != nil {
			return nil, err
		}
		g.Meshes = append(g.Meshes, mesh)
		g.Apps = append(g.Apps, appFactory(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			nw.Connect(nw.Node(fmt.Sprintf("r%d", i)), nw.Node(fmt.Sprintf("r%d", j)))
		}
	}
	// Executors merge the instances' committed batches per node.
	for i := 0; i < n; i++ {
		g.Executors = append(g.Executors, newExecutor(g, i))
	}
	// Build the K instances; instance k starts in view k so leadership
	// rotates across replicas (the essence of COP: every replica leads
	// one pipeline).
	for k := 0; k < cfg.Instances; k++ {
		icfg := cfg.PBFT
		icfg.InitialView = uint64(k)
		rings := auth.GenerateKeyrings(n, uint64(seed)+uint64(k)*7919+1)
		var reps []*pbft.Replica
		for i := 0; i < n; i++ {
			rep, err := pbft.NewReplica(uint32(i), icfg, nw.Node(fmt.Sprintf("r%d", i)), rings[i], g.Apps[i])
			if err != nil {
				return nil, err
			}
			k, i := k, i
			rep.OnExecute(func(seq uint64, batch []pbft.Request) {
				g.Executors[i].deliver(k, seq, batch)
			})
			reps = append(reps, rep)
		}
		g.Instances = append(g.Instances, reps)
	}
	return g, nil
}

// Start wires every instance's connection mesh.
func (g *Group) Start() error {
	n := g.Config.PBFT.N
	for k, reps := range g.Instances {
		for i := 0; i < n; i++ {
			rep := reps[i]
			if err := g.Meshes[i].Listen(peerPortFor(k), func(p *msgnet.Peer) {
				rep.AttachInbound(p)
			}); err != nil {
				return err
			}
			if err := g.Meshes[i].Listen(clientPortFor(k), func(p *msgnet.Peer) {
				rep.HandleClientConn(p)
			}); err != nil {
				return err
			}
		}
	}
	var setupErr error
	dials := 0
	want := 0
	for k := range g.Instances {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				want++
				k, i, j := k, i, j
				g.Loop.Post(func() {
					g.Meshes[i].Dial(g.Network.Node(fmt.Sprintf("r%d", j)), peerPortFor(k), func(p *msgnet.Peer, err error) {
						if err != nil {
							setupErr = fmt.Errorf("instance %d dial r%d->r%d: %w", k, i, j, err)
							return
						}
						g.Instances[k][i].AttachPeer(uint32(j), p)
						dials++
					})
				})
			}
		}
	}
	g.Loop.Run()
	if setupErr != nil {
		return setupErr
	}
	if dials != want {
		return fmt.Errorf("reptor: %d of %d connections established", dials, want)
	}
	return nil
}

// GlobalOrder returns the merged global log of a node's executor as
// request keys, for cross-replica comparison in tests.
func (g *Group) GlobalOrder(node int) []string { return g.Executors[node].order }

// Executor merges instance-local commits into the global total order on
// one node.
type Executor struct {
	group *Group
	node  int

	// ready[k] holds batches committed by instance k, keyed by
	// instance-local sequence.
	ready []map[uint64][]pbft.Request
	// round is the next instance-local sequence to merge.
	round uint64
	// cursor is the next instance within the current round.
	cursor int

	order    []string
	slots    uint64
	hbArmed  bool
	delivers uint64
}

func newExecutor(g *Group, node int) *Executor {
	e := &Executor{group: g, node: node, round: 1}
	for k := 0; k < g.Config.Instances; k++ {
		e.ready = append(e.ready, make(map[uint64][]pbft.Request))
	}
	return e
}

// MergedSlots returns how many global slots have been merged.
func (e *Executor) MergedSlots() uint64 { return e.slots }

func (e *Executor) deliver(instance int, seq uint64, batch []pbft.Request) {
	e.delivers++
	e.ready[instance][seq] = batch
	e.drain()
}

// drain merges committed batches in strict (round, instance) order.
func (e *Executor) drain() {
	for {
		batch, ok := e.ready[e.cursor][e.round]
		if !ok {
			e.armHeartbeat()
			return
		}
		delete(e.ready[e.cursor], e.round)
		for _, req := range batch {
			e.order = append(e.order, req.Key())
		}
		e.slots++
		e.cursor++
		if e.cursor == e.group.Config.Instances {
			e.cursor = 0
			e.round++
		}
	}
}

// armHeartbeat schedules a one-shot nudge: if the hole at (round, cursor)
// persists and this node leads the lagging instance, propose an empty
// batch to fill it.
func (e *Executor) armHeartbeat() {
	if e.hbArmed {
		return
	}
	// Only arm when some other instance has already moved past this
	// round — otherwise the group is simply idle.
	anyAhead := false
	for k := range e.ready {
		if len(e.ready[k]) > 0 {
			anyAhead = true
			break
		}
	}
	if !anyAhead {
		return
	}
	e.hbArmed = true
	instance, round := e.cursor, e.round
	e.group.Loop.After(e.group.Config.HeartbeatDelay, func() {
		e.hbArmed = false
		if e.round == round && e.cursor == instance {
			rep := e.group.Instances[instance][e.node]
			rep.ProposeHeartbeat(round)
		}
		// Re-check: fills may have happened, or the hole persists and
		// needs re-arming.
		e.drain()
	})
}
