// Package metrics provides measurement instrumentation and result
// formats for the simulated experiments.
//
// Three layers build on each other. Recorder and Counter collect raw
// per-operation virtual-time samples and event counts while a simulation
// runs. Series and Table shape samples into the sweep curves the paper's
// figures plot, rendered as aligned text tables. Result is the
// machine-readable counterpart: a schema-versioned, deterministic JSON
// document (one BENCH_<experiment>.json per run) carrying per-series
// points with explicit units, the effective configuration echo and the
// seed, so benchmark trajectories can be validated, stored and diffed
// across commits (Compare/RenderDeltas implement the -compare output of
// cmd/benchsuite).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rubin/internal/sim"
)

// Recorder accumulates duration samples (virtual time).
type Recorder struct {
	samples []sim.Time
	sorted  bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sample.
func (r *Recorder) Record(d sim.Time) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range r.samples {
		sum += s
	}
	return sum / sim.Time(len(r.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (r *Recorder) Min() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (r *Recorder) Max() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (r *Recorder) Percentile(p float64) sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	if p <= 0 {
		return r.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Stddev returns the population standard deviation in nanoseconds.
func (r *Recorder) Stddev() float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	mean := float64(r.Mean())
	var ss float64
	for _, s := range r.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Counter is a monotonically increasing event counter — the fault/error
// instrumentation the replicas expose (e.g. surfaced transport send
// failures) and the experiment tables report.
type Counter struct {
	n uint64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Throughput converts an operation count over a virtual duration into
// operations per second.
func Throughput(ops int, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// Point is one (x, y) sample of a sweep series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is a named curve of a figure, e.g. "TCP" latency vs payload.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// At returns the Y value at the given X, or NaN if absent.
func (s *Series) At(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Table renders a set of series sharing an X axis as an aligned text table
// — one row per X value, one column per series — the same rows the paper's
// figures plot.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewTable creates a table with the given labels.
func NewTable(title, xLabel, yLabel string) *Table {
	return &Table{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries appends a new named series and returns it.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// Get returns the named series, or nil.
func (t *Table) Get(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s)\n", t.Title, t.YLabel)
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.0f", x)
		for _, s := range t.Series {
			y := s.At(x)
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %16s", "-")
			} else {
				fmt.Fprintf(&b, " %16.2f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
