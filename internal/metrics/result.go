package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"rubin/internal/sim"
)

// SchemaVersion identifies the layout of a BENCH_*.json file. Bump it
// whenever a field is added, removed or changes meaning; -compare refuses
// to diff files with mismatched schemas.
const SchemaVersion = "rubin-bench/1"

// Well-known metric names. A ResultSeries may use other names, but the
// experiments in this repository stick to these so -compare can match
// series across runs.
const (
	MetricLatencyMean = "latency_mean" // unit: us
	MetricLatencyP50  = "latency_p50"  // unit: us
	MetricLatencyP90  = "latency_p90"  // unit: us
	MetricLatencyP99  = "latency_p99"  // unit: us
	MetricLatencyP999 = "latency_p999" // unit: us
	MetricThroughput  = "throughput"   // unit: req/s (or krps where noted)
	MetricGoodput     = "goodput"      // unit: op/s (measured completions)
	MetricCommits     = "commits"      // unit: count
	MetricSendFaults  = "send_faults"  // unit: count

	// Latency-attribution metrics (internal/obs). The five breakdown
	// phases partition the measured end-to-end latency: their per-point
	// sum equals latency_mean.
	MetricBreakdownQueue = "breakdown_queue" // unit: us (client-side queueing)
	MetricBreakdownOrder = "breakdown_order" // unit: us (leader ordering CPU)
	MetricBreakdownNet   = "breakdown_net"   // unit: us (wire + agreement rounds)
	MetricBreakdownMerge = "breakdown_merge" // unit: us (COP merge on reply path: 0)
	MetricBreakdownExec  = "breakdown_exec"  // unit: us (exec on reply path: 0)
	MetricMergeWait      = "merge_wait"      // unit: us (COP commit->merge, off reply path)

	// Pressure metrics exported by E7/E8/E9.
	MetricPeakQueueBytes = "peak_queue_bytes" // unit: bytes (msgnet high watermark)
	MetricHeartbeatSlots = "heartbeat_slots"  // unit: count (COP filler proposals)
	MetricHeartbeatDelay = "heartbeat_delay"  // unit: us (adaptive heartbeat backoff)
	MetricPeakBacklog    = "peak_backlog"     // unit: count (executor merge backlog)
	MetricLeaderCPU      = "leader_cpu"       // unit: utilization (busiest node CPU)

	// Read-only fast-path metrics exported by E11 (pbft.Client).
	MetricFastReads     = "fast_reads"     // unit: count (reads served by the fast path)
	MetricFastFallbacks = "fast_fallbacks" // unit: count (fast reads retried through ordering)

	// Sharding metrics exported by E10 (internal/shard).
	MetricCommittedGoodput = "committed_goodput" // unit: op/s (goodput minus aborted txns)
	MetricAbortedTxns      = "aborted_txns"      // unit: count (no-wait 2PC conflicts)
	MetricCrossShardTxns   = "cross_shard_txns"  // unit: count (txns routed through 2PC)
	MetricLockRetries      = "lock_retries"      // unit: count (LOCKED resubmissions)
	MetricPrepareWait      = "prepare_wait"      // unit: us (2PC dispatch->all votes)
	MetricCommitWait       = "commit_wait"       // unit: us (2PC decision->all quorums)

	// State-size metrics exported by E12 (incremental checkpoints and
	// Merkle partial state transfer).
	MetricRecoveryTime    = "recovery_time"    // unit: us (restart -> caught up to the group)
	MetricCheckpointBytes = "checkpoint_bytes" // unit: bytes (steady-state serialization per checkpoint)
	MetricCheckpointPause = "checkpoint_pause" // unit: us (modeled digest CPU per steady checkpoint)
	MetricTransferBytes   = "transfer_bytes"   // unit: bytes (state bytes served by responders)
	MetricStateBytes      = "state_bytes"      // unit: bytes (full snapshot size at run end)
	MetricThroughputDip   = "throughput_dip"   // unit: ratio (recovered-phase / healthy throughput)

	// Hot-path efficiency metric exported by ALLOC (testing.AllocsPerRun
	// over the msgnet/auth/sim fast paths).
	MetricAllocsPerOp = "allocs_per_op" // unit: allocs/op (steady-state heap allocations)
)

// ResultSeries is one named curve of an experiment result: points share an
// X axis (x_label) and a Y metric with an explicit unit. Transport names
// the backend the series ran on, when one applies.
type ResultSeries struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Unit      string  `json:"unit"`
	Transport string  `json:"transport,omitempty"`
	XLabel    string  `json:"x_label"`
	Points    []Point `json:"points"`
}

// Add appends one (x, y) sample.
func (s *ResultSeries) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// At returns the Y value at the given X, or NaN if absent.
func (s *ResultSeries) At(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Result is the machine-readable outcome of one experiment run — the
// content of a BENCH_<experiment>.json file. Config echoes every knob the
// run was configured with (flattened to strings so the echo marshals
// deterministically: encoding/json sorts map keys), and Series carries the
// measured curves. Two runs with identical seed and config marshal to
// byte-identical JSON.
type Result struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Figure     string            `json:"figure"`
	Seed       int64             `json:"seed"`
	Quick      bool              `json:"quick"`
	Config     map[string]string `json:"config"`
	Series     []*ResultSeries   `json:"series"`
	// Notes carries free-form per-run annotations that are outputs rather
	// than curves — e.g. E7's deterministic fault traces. Optional.
	Notes map[string]string `json:"notes,omitempty"`
}

// NewResult returns an empty result carrying the experiment identity.
func NewResult(experiment, title, figure string, seed int64, quick bool) *Result {
	return &Result{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Title:      title,
		Figure:     figure,
		Seed:       seed,
		Quick:      quick,
		Config:     map[string]string{},
	}
}

// SetConfig records one knob of the run's effective configuration.
func (r *Result) SetConfig(key, value string) { r.Config[key] = value }

// SetNote records one free-form output annotation.
func (r *Result) SetNote(key, value string) {
	if r.Notes == nil {
		r.Notes = map[string]string{}
	}
	r.Notes[key] = value
}

// AddSeries appends a new series and returns it.
func (r *Result) AddSeries(name, metric, unit, transport, xLabel string) *ResultSeries {
	s := &ResultSeries{Name: name, Metric: metric, Unit: unit, Transport: transport, XLabel: xLabel}
	r.Series = append(r.Series, s)
	return s
}

// PercentileSeries bundles the latency-distribution curves of one
// workload configuration — p50/p90/p99/p999 plus goodput — the
// histogram-style result shape the traffic experiments (E9) emit per
// sweep. All five share one name and X axis; they stay distinct series
// so -compare diffs each percentile on its own.
type PercentileSeries struct {
	P50, P90, P99, P999 *ResultSeries
	Goodput             *ResultSeries
}

// AddPercentileSeries appends the five-series percentile bundle.
func (r *Result) AddPercentileSeries(name, transport, xLabel string) PercentileSeries {
	return PercentileSeries{
		P50:     r.AddSeries(name, MetricLatencyP50, "us", transport, xLabel),
		P90:     r.AddSeries(name, MetricLatencyP90, "us", transport, xLabel),
		P99:     r.AddSeries(name, MetricLatencyP99, "us", transport, xLabel),
		P999:    r.AddSeries(name, MetricLatencyP999, "us", transport, xLabel),
		Goodput: r.AddSeries(name, MetricGoodput, "op/s", transport, xLabel),
	}
}

// Observe records one sweep point from percentile cuts of a latency
// distribution plus the measured goodput.
func (ps PercentileSeries) Observe(x float64, p50, p90, p99, p999 sim.Time, goodput float64) {
	ps.P50.Add(x, p50.Micros())
	ps.P90.Add(x, p90.Micros())
	ps.P99.Add(x, p99.Micros())
	ps.P999.Add(x, p999.Micros())
	ps.Goodput.Add(x, goodput)
}

// GetSeries returns the series with the given name and metric, or nil.
func (r *Result) GetSeries(name, metric string) *ResultSeries {
	for _, s := range r.Series {
		if s.Name == name && s.Metric == metric {
			return s
		}
	}
	return nil
}

// Experiment names are either figure-style ("E1".."E12") or an
// upper-case tag for harness-level studies ("ALLOC").
var experimentNameRE = regexp.MustCompile(`^(E[0-9]+|[A-Z]{2,12})$`)

// Validate checks the result against the documented schema (see
// docs/EXPERIMENTS.md): version match, well-formed experiment name,
// non-empty labels and units, at least one series, no duplicate
// (name, metric) pair, and finite point values throughout.
func (r *Result) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("metrics: schema %q, want %q", r.Schema, SchemaVersion)
	}
	if !experimentNameRE.MatchString(r.Experiment) {
		return fmt.Errorf("metrics: bad experiment name %q", r.Experiment)
	}
	if r.Title == "" {
		return fmt.Errorf("metrics: %s: empty title", r.Experiment)
	}
	if r.Figure == "" {
		return fmt.Errorf("metrics: %s: empty figure", r.Experiment)
	}
	if r.Config == nil {
		return fmt.Errorf("metrics: %s: missing config echo", r.Experiment)
	}
	if len(r.Series) == 0 {
		return fmt.Errorf("metrics: %s: no series", r.Experiment)
	}
	seen := map[string]bool{}
	for _, s := range r.Series {
		if s.Name == "" || s.Metric == "" || s.Unit == "" || s.XLabel == "" {
			return fmt.Errorf("metrics: %s: series %+v missing name/metric/unit/x_label", r.Experiment, s)
		}
		key := s.Name + "\x00" + s.Metric
		if seen[key] {
			return fmt.Errorf("metrics: %s: duplicate series (%s, %s)", r.Experiment, s.Name, s.Metric)
		}
		seen[key] = true
		if len(s.Points) == 0 {
			return fmt.Errorf("metrics: %s: series (%s, %s) has no points", r.Experiment, s.Name, s.Metric)
		}
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				return fmt.Errorf("metrics: %s: series (%s, %s) has non-finite point (%v, %v)",
					r.Experiment, s.Name, s.Metric, p.X, p.Y)
			}
		}
	}
	return nil
}

// Marshal renders the result as indented JSON with a trailing newline.
// The encoding is deterministic: struct fields keep declaration order and
// encoding/json sorts the Config map keys, so identical results produce
// byte-identical files.
func (r *Result) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseResult decodes and validates one BENCH_*.json payload.
func ParseResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("metrics: decoding result: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ResultFilename returns the canonical file name for an experiment's
// result, BENCH_<experiment>.json.
func ResultFilename(experiment string) string {
	return fmt.Sprintf("BENCH_%s.json", experiment)
}

// WriteFile validates the result and writes it to dir under its canonical
// name, returning the full path.
func (r *Result) WriteFile(dir string) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	b, err := r.Marshal()
	if err != nil {
		return "", err
	}
	path := dir + string(os.PathSeparator) + ResultFilename(r.Experiment)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadResultFile loads and validates one BENCH_*.json file.
func ReadResultFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := ParseResult(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Tables renders the result as human-readable text tables, one per
// distinct (metric, x-axis) pair in series order — the presentation the
// cmd/ binaries print alongside the JSON. Series measuring the same
// metric over different x-axes (e.g. E8's replica and instance sweeps)
// land in separate tables rather than being interleaved on one axis.
func (r *Result) Tables() []*Table {
	var order []string
	byAxis := map[string]*Table{}
	for _, s := range r.Series {
		key := s.Metric + "\x00" + s.XLabel
		tab, ok := byAxis[key]
		if !ok {
			tab = NewTable(fmt.Sprintf("%s — %s: %s by %s", r.Experiment, r.Title, s.Metric, s.XLabel),
				s.XLabel, s.Unit)
			byAxis[key] = tab
			order = append(order, key)
		}
		ts := tab.AddSeries(s.Name)
		ts.Points = append(ts.Points, s.Points...)
	}
	tables := make([]*Table, 0, len(order))
	for _, key := range order {
		tables = append(tables, byAxis[key])
	}
	return tables
}

// Delta is one point-wise regression comparison between two runs of the
// same experiment: Pct is the relative change (new-old)/old in percent.
type Delta struct {
	Series string
	Metric string
	Unit   string
	X      float64
	Old    float64
	New    float64
	Pct    float64
}

// Compare matches series of two results by (name, metric) and points by X,
// returning point-wise deltas. Series or points present on one side only
// are skipped — the comparison reports drift of the overlap, not coverage.
// The results must be the same experiment and schema, and a matched
// series must keep its unit: a unit change would make every percentage
// meaningless, so it is an error rather than a silently absurd delta.
func Compare(old, new *Result) ([]Delta, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("metrics: comparing schema %q against %q", new.Schema, old.Schema)
	}
	if old.Experiment != new.Experiment {
		return nil, fmt.Errorf("metrics: comparing experiment %s against %s", new.Experiment, old.Experiment)
	}
	var deltas []Delta
	for _, ns := range new.Series {
		os := old.GetSeries(ns.Name, ns.Metric)
		if os == nil {
			continue
		}
		if os.Unit != ns.Unit {
			return nil, fmt.Errorf("metrics: series (%s, %s) changed unit %q -> %q",
				ns.Name, ns.Metric, os.Unit, ns.Unit)
		}
		for _, p := range ns.Points {
			oldY := os.At(p.X)
			if math.IsNaN(oldY) {
				continue
			}
			pct := 0.0
			if oldY != 0 {
				pct = (p.Y - oldY) / oldY * 100
			}
			deltas = append(deltas, Delta{
				Series: ns.Name, Metric: ns.Metric, Unit: ns.Unit,
				X: p.X, Old: oldY, New: p.Y, Pct: pct,
			})
		}
	}
	return deltas, nil
}

// RenderDeltas formats a comparison as an aligned text table, sorted by
// absolute relative change (largest drift first).
func RenderDeltas(deltas []Delta) string {
	sorted := make([]Delta, len(deltas))
	copy(sorted, deltas)
	sort.SliceStable(sorted, func(i, j int) bool {
		return math.Abs(sorted[i].Pct) > math.Abs(sorted[j].Pct)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %-14s %8s %14s %14s %9s\n", "series", "metric", "x", "old", "new", "delta")
	for _, d := range sorted {
		fmt.Fprintf(&b, "%-32s %-14s %8.0f %14.2f %14.2f %+8.1f%%\n",
			d.Series, d.Metric, d.X, d.Old, d.New, d.Pct)
	}
	return b.String()
}
