package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"rubin/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty recorder should be all zeros")
	}
	for _, v := range []sim.Time{30, 10, 20} {
		r.Record(v)
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", r.Mean())
	}
	if r.Min() != 10 || r.Max() != 30 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRecorderPercentiles(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(sim.Time(i))
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{{50, 50}, {99, 99}, {100, 100}, {1, 1}, {0, 1}}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRecorderStddevAndReset(t *testing.T) {
	r := NewRecorder()
	r.Record(10)
	r.Record(10)
	if r.Stddev() != 0 {
		t.Fatalf("Stddev of equal samples = %v, want 0", r.Stddev())
	}
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
	if r.Stddev() != 0 {
		t.Fatal("Stddev of empty recorder should be 0")
	}
}

func TestRecorderInterleavedRecordAndQuery(t *testing.T) {
	r := NewRecorder()
	r.Record(5)
	_ = r.Min() // forces a sort
	r.Record(1) // must invalidate the sorted flag
	if r.Min() != 1 {
		t.Fatalf("Min after late insert = %v, want 1", r.Min())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, sim.Second); got != 1000 {
		t.Fatalf("Throughput = %v, want 1000", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero time = %v, want 0", got)
	}
}

func TestSeriesAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.At(2) != 20 {
		t.Fatal("At(2) wrong")
	}
	if !math.IsNaN(s.At(3)) {
		t.Fatal("missing X should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Latency", "payload_kb", "µs")
	a := tab.AddSeries("TCP")
	b := tab.AddSeries("RDMA")
	a.Add(1, 100)
	a.Add(10, 200)
	b.Add(1, 50)
	out := tab.Render()
	if !strings.Contains(out, "Latency") || !strings.Contains(out, "TCP") || !strings.Contains(out, "RDMA") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "50.00") {
		t.Fatalf("render missing values:\n%s", out)
	}
	// X=10 exists only for TCP: the RDMA column shows a dash.
	lines := strings.Split(out, "\n")
	var row10 string
	for _, l := range lines {
		if strings.HasPrefix(l, "10") {
			row10 = l
		}
	}
	if !strings.Contains(row10, "-") {
		t.Fatalf("missing value not rendered as dash: %q", row10)
	}
	if tab.Get("TCP") != a || tab.Get("nope") != nil {
		t.Fatal("Get lookup broken")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	prop := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range raw {
			r.Record(sim.Time(v))
		}
		a := float64(p1%101) + 0.0001 // avoid p=0 edge
		b := float64(p2%101) + 0.0001
		if a > b {
			a, b = b, a
		}
		pa, pb := r.Percentile(a), r.Percentile(b)
		return pa <= pb && pa >= r.Min() && pb <= r.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies between min and max.
func TestPropertyMeanBounded(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range raw {
			r.Record(sim.Time(v))
		}
		m := r.Mean()
		return m >= r.Min() && m <= r.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: table X values render sorted.
func TestPropertyTableSortedX(t *testing.T) {
	prop := func(xs []uint8) bool {
		tab := NewTable("t", "x", "y")
		s := tab.AddSeries("s")
		for _, x := range xs {
			s.Add(float64(x), 1)
		}
		out := tab.Render()
		lines := strings.Split(strings.TrimSpace(out), "\n")
		var got []float64
		for _, l := range lines[2:] {
			fields := strings.Fields(l)
			if len(fields) == 0 {
				continue
			}
			x, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				continue
			}
			got = append(got, x)
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
