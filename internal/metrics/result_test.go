package metrics

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rubin/internal/sim"
)

func sampleResult() *Result {
	r := NewResult("E5", "BFT agreement", "paper future work", 1, false)
	r.SetConfig("payloads_kb", "1,4")
	r.SetConfig("n", "4")
	s := r.AddSeries("Reptor+RUBIN", MetricLatencyMean, "us", "rdma-rubin", "payload_kb")
	s.Add(1, 123.25)
	s.Add(4, 150.5)
	t := r.AddSeries("Reptor+RUBIN", MetricThroughput, "req/s", "rdma-rubin", "payload_kb")
	t.Add(1, 9000)
	t.Add(4, 7000)
	return r
}

func TestResultRoundTrip(t *testing.T) {
	r := sampleResult()
	b, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", r, got)
	}
	b2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-marshal not byte-identical:\n%s\nvs\n%s", b, b2)
	}
}

func TestResultValidate(t *testing.T) {
	mutations := map[string]func(*Result){
		"bad schema":       func(r *Result) { r.Schema = "rubin-bench/0" },
		"bad name":         func(r *Result) { r.Experiment = "fig3" },
		"empty title":      func(r *Result) { r.Title = "" },
		"empty figure":     func(r *Result) { r.Figure = "" },
		"nil config":       func(r *Result) { r.Config = nil },
		"no series":        func(r *Result) { r.Series = nil },
		"empty unit":       func(r *Result) { r.Series[0].Unit = "" },
		"empty xlabel":     func(r *Result) { r.Series[0].XLabel = "" },
		"no points":        func(r *Result) { r.Series[0].Points = nil },
		"NaN point":        func(r *Result) { r.Series[0].Points[0].Y = math.NaN() },
		"Inf point":        func(r *Result) { r.Series[0].Points[1].X = math.Inf(1) },
		"duplicate series": func(r *Result) { r.Series[1].Metric = r.Series[0].Metric },
	}
	if err := sampleResult().Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	for name, mutate := range mutations {
		r := sampleResult()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid result", name)
		}
	}
}

func TestResultWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	r := sampleResult()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_E5.json" {
		t.Fatalf("wrote %s, want BENCH_E5.json", path)
	}
	got, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestCompare(t *testing.T) {
	old := sampleResult()
	cur := sampleResult()
	cur.Series[0].Points[0].Y = 246.5 // latency at 1KB doubled
	deltas, err := Compare(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4", len(deltas))
	}
	var worst Delta
	for _, d := range deltas {
		if math.Abs(d.Pct) > math.Abs(worst.Pct) {
			worst = d
		}
	}
	if worst.Metric != MetricLatencyMean || worst.X != 1 || math.Abs(worst.Pct-100) > 1e-9 {
		t.Fatalf("worst delta = %+v, want +100%% latency at x=1", worst)
	}
	out := RenderDeltas(deltas)
	if !strings.Contains(out, "+100.0%") {
		t.Fatalf("rendered deltas missing +100.0%%:\n%s", out)
	}
	// Mismatched experiments refuse to compare.
	other := sampleResult()
	other.Experiment = "E6"
	if _, err := Compare(old, other); err == nil {
		t.Fatal("Compare accepted mismatched experiments")
	}
}

func TestCompareEdgeCases(t *testing.T) {
	t.Run("mismatched series names skip", func(t *testing.T) {
		old := sampleResult()
		cur := sampleResult()
		cur.Series[0].Name = "Reptor+NIO" // no longer matches anything in old
		deltas, err := Compare(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deltas {
			if d.Series == "Reptor+NIO" {
				t.Fatalf("renamed series produced a delta: %+v", d)
			}
		}
		if len(deltas) != 2 {
			t.Fatalf("got %d deltas, want 2 (only the still-matching series)", len(deltas))
		}
	})

	t.Run("zero-point series", func(t *testing.T) {
		old := sampleResult()
		cur := sampleResult()
		cur.Series[0].Points = nil // invalid per Validate, but Compare must not panic
		deltas, err := Compare(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(deltas) != 2 {
			t.Fatalf("got %d deltas, want 2", len(deltas))
		}
		old.Series[1].Points = nil // empty on the old side: every X misses
		deltas, err = Compare(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(deltas) != 0 {
			t.Fatalf("got %d deltas, want 0", len(deltas))
		}
	})

	t.Run("unit change is an error", func(t *testing.T) {
		old := sampleResult()
		cur := sampleResult()
		cur.Series[0].Unit = "ms"
		if _, err := Compare(old, cur); err == nil {
			t.Fatal("Compare accepted a unit change on a matched series")
		}
	})

	t.Run("zero baseline reports zero percent", func(t *testing.T) {
		old := sampleResult()
		cur := sampleResult()
		old.Series[0].Points[0].Y = 0
		deltas, err := Compare(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deltas {
			if d.Old == 0 && d.Pct != 0 {
				t.Fatalf("zero baseline produced pct %v", d.Pct)
			}
		}
	})
}

func TestRenderDeltasEdgeCases(t *testing.T) {
	if out := RenderDeltas(nil); !strings.Contains(out, "no overlapping") {
		// Whatever the empty rendering is, it must not panic and should
		// say something; accept any non-empty text.
		if strings.TrimSpace(out) == "" {
			t.Fatal("RenderDeltas(nil) rendered nothing")
		}
	}
	deltas := []Delta{
		{Series: "a", Metric: MetricLatencyMean, Unit: "us", X: 1, Old: 100, New: 101, Pct: 1},
		{Series: "b", Metric: MetricLatencyMean, Unit: "us", X: 1, Old: 100, New: 50, Pct: -50},
		{Series: "c", Metric: MetricLatencyMean, Unit: "us", X: 1, Old: 100, New: 110, Pct: 10},
	}
	out := RenderDeltas(deltas)
	// Sorted by |pct| descending: b (-50%) first, a (+1%) last.
	bi, ci, ai := strings.Index(out, "\nb "), strings.Index(out, "\nc "), strings.Index(out, "\na ")
	if !(bi < ci && ci < ai) {
		t.Fatalf("deltas not sorted by |pct|:\n%s", out)
	}
	// The input slice must not be reordered in place.
	if deltas[0].Series != "a" {
		t.Fatalf("RenderDeltas mutated its input: %+v", deltas)
	}
}

func TestResultTables(t *testing.T) {
	tabs := sampleResult().Tables()
	if len(tabs) != 2 {
		t.Fatalf("got %d tables, want 2 (one per metric)", len(tabs))
	}
	if got := tabs[0].Get("Reptor+RUBIN").At(4); got != 150.5 {
		t.Fatalf("latency table at 4KB = %v, want 150.5", got)
	}
	if !strings.Contains(tabs[1].Render(), "req/s") {
		t.Fatalf("throughput table missing unit:\n%s", tabs[1].Render())
	}
}

// TestPercentileSeriesBundle asserts the five-series percentile bundle
// lands in the result with the documented metrics and units and records
// points on every series.
func TestPercentileSeriesBundle(t *testing.T) {
	r := NewResult("E9", "traffic", "beyond the paper", 1, false)
	ps := r.AddPercentileSeries("rate PBFT RUBIN", "rdma-rubin", "rate_ops_s")
	ps.Observe(1000, 100*sim.Microsecond, 200*sim.Microsecond, 400*sim.Microsecond, 900*sim.Microsecond, 995.5)
	ps.Observe(2000, 120*sim.Microsecond, 250*sim.Microsecond, 500*sim.Microsecond, 1100*sim.Microsecond, 1990.1)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("bundle added %d series, want 5", len(r.Series))
	}
	wantUnits := map[string]string{
		MetricLatencyP50: "us", MetricLatencyP90: "us",
		MetricLatencyP99: "us", MetricLatencyP999: "us",
		MetricGoodput: "op/s",
	}
	for metric, unit := range wantUnits {
		s := r.GetSeries("rate PBFT RUBIN", metric)
		if s == nil {
			t.Fatalf("missing metric %s", metric)
		}
		if s.Unit != unit || s.XLabel != "rate_ops_s" || s.Transport != "rdma-rubin" {
			t.Fatalf("series %s mislabeled: %+v", metric, s)
		}
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", metric, len(s.Points))
		}
	}
	if y := r.GetSeries("rate PBFT RUBIN", MetricLatencyP99).At(1000); y != 400 {
		t.Fatalf("p99 at x=1000 is %v µs, want 400", y)
	}
	if y := r.GetSeries("rate PBFT RUBIN", MetricGoodput).At(2000); y != 1990.1 {
		t.Fatalf("goodput at x=2000 is %v, want 1990.1", y)
	}
}
