// Package rdma simulates an RDMA-capable NIC and the verbs programming
// model: protection domains, registered memory regions, reliable-connection
// queue pairs, work requests, completion queues with event notification,
// two-sided SEND/RECV, one-sided WRITE/READ, inline sends, selective
// signaling, doorbell batching and receiver-not-ready (RNR) retry.
//
// The simulation charges data-path work to the NIC engine resource rather
// than the host CPU — kernel bypass and zero copy are therefore structural,
// not just smaller constants: a SEND costs the CPU only the doorbell ring,
// while payload bytes move on the NIC's DMA engines. This is the property
// the paper exploits and the baseline TCP stack (package tcpsim) lacks.
//
// Memory regions carry real backing bytes and one-sided operations are
// bounds- and access-checked against the remote key, so the security
// concerns of Section III-C (stray STag access, read/write races) are
// observable in tests.
package rdma

import (
	"errors"
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// Errors returned by verbs calls.
var (
	ErrQPState      = errors.New("rdma: queue pair not in a usable state")
	ErrSendQueueFul = errors.New("rdma: send queue full")
	ErrRecvQueueFul = errors.New("rdma: receive queue full")
	ErrInlineTooBig = errors.New("rdma: inline payload exceeds limit")
	ErrBadMR        = errors.New("rdma: memory region invalid for request")
	ErrPortInUse    = errors.New("rdma: CM port already in use")
	ErrRejected     = errors.New("rdma: connection rejected")
)

// Access is the bitmask of permissions granted when registering memory.
type Access uint8

// Access flags; LocalWrite is required for receive buffers, the remote
// flags expose the region to one-sided operations from the peer.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
)

// Opcode identifies the kind of work request.
type Opcode uint8

// Work request opcodes.
const (
	OpSend Opcode = iota + 1
	OpWrite
	OpRead
	OpRecv
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpRecv:
		return "RECV"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the completion status of a work request.
type Status uint8

// Completion statuses.
const (
	StatusOK Status = iota
	StatusRNRRetryExceeded
	StatusRemoteAccess
	StatusRecvLengthErr
	StatusQPError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusRNRRetryExceeded:
		return "RNR_RETRY_EXCEEDED"
	case StatusRemoteAccess:
		return "REMOTE_ACCESS_ERROR"
	case StatusRecvLengthErr:
		return "RECV_LENGTH_ERROR"
	case StatusQPError:
		return "QP_ERROR"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// CQE is a completion queue entry.
type CQE struct {
	WRID   uint64
	QPN    uint32
	Op     Opcode
	Status Status
	Bytes  int
}

// Device is the per-node RNIC instance.
type Device struct {
	node   *fabric.Node
	params model.Params

	nextQPN  uint32
	nextKey  uint32
	qps      map[uint32]*QP
	mrs      map[uint32]*MR // by rkey, for one-sided validation
	cmPorts  map[int]*cmListener
	nextPort int

	// In-flight connection-manager handshakes.
	pendingCM   map[uint32]*pendingConnect // by local (client) QPN
	cmAccepting map[uint32]*cmListener     // by local (server) QPN awaiting RTU

	// Stats.
	sendsRx, writesRx, readsRx uint64
	rnrNaks                    uint64
}

// OpenDevice creates the RNIC on a node and claims the node's ProtoRDMA
// handler. A node hosts at most one device.
func OpenDevice(node *fabric.Node) *Device {
	d := &Device{
		node:     node,
		params:   node.Network().Params(),
		nextQPN:  1,
		nextKey:  1,
		qps:      make(map[uint32]*QP),
		mrs:      make(map[uint32]*MR),
		cmPorts:  make(map[int]*cmListener),
		nextPort: 49152,
	}
	node.Register(fabric.ProtoRDMA, d.deliver)
	return d
}

// Node returns the fabric node the device is attached to.
func (d *Device) Node() *fabric.Node { return d.node }

func (d *Device) loop() *sim.Loop { return d.node.Loop() }

// RNRNaks returns how many receiver-not-ready NAKs this device has sent.
func (d *Device) RNRNaks() uint64 { return d.rnrNaks }

// AllocPD allocates a protection domain.
func (d *Device) AllocPD() *PD {
	return &PD{dev: d}
}

// PD is a protection domain scoping memory regions and queue pairs.
type PD struct {
	dev *Device
}

// Device returns the owning device.
func (pd *PD) Device() *Device { return pd.dev }

// MR is a registered memory region with real backing bytes.
type MR struct {
	pd     *PD
	buf    []byte
	lkey   uint32
	rkey   uint32
	access Access
	valid  bool
}

// RegisterMR pins and registers size bytes with the NIC. The CPU cost of
// page pinning and NIC translation-table programming is charged
// immediately; ready runs when registration completes (may be nil for
// setup-time registration where the caller does not care about the delay).
func (pd *PD) RegisterMR(size int, access Access, ready func()) *MR {
	dev := pd.dev
	mr := &MR{
		pd:     pd,
		buf:    make([]byte, size),
		lkey:   dev.nextKey,
		rkey:   dev.nextKey + 1,
		access: access,
		valid:  true,
	}
	dev.nextKey += 2
	dev.mrs[mr.rkey] = mr
	cost := dev.params.RDMA.MemRegisterBase + model.KB(dev.params.RDMA.MemRegisterPerKB, size)
	dev.node.CPU.Acquire(cost, func() {
		if ready != nil {
			ready()
		}
	})
	return mr
}

// Deregister invalidates the region; subsequent remote access fails.
func (mr *MR) Deregister() {
	if mr.valid {
		mr.valid = false
		delete(mr.pd.dev.mrs, mr.rkey)
	}
}

// Bytes exposes the region's backing memory.
func (mr *MR) Bytes() []byte { return mr.buf }

// Len returns the region size.
func (mr *MR) Len() int { return len(mr.buf) }

// RKey returns the remote key a peer needs for one-sided access.
func (mr *MR) RKey() uint32 { return mr.rkey }

// Access returns the region's permission mask.
func (mr *MR) Access() Access { return mr.access }

// CQ is a completion queue with an optional completion-channel callback.
type CQ struct {
	dev      *Device
	capacity int
	entries  []CQE
	onEvent  func()
	armed    bool
	overflow bool

	// thread is where poll and completion-handling CPU costs are
	// charged; defaults to the node CPU, but applications with a single
	// event-loop thread (selectors) point it at that thread's resource.
	thread *sim.Resource

	// eventCost overrides the per-notification CPU cost (default:
	// RDMAParams.CompletionHandle, the heavy event-channel path).
	// Frameworks with their own lightweight event manager — RUBIN's
	// hybrid event queue — set a smaller value and charge their own
	// dispatch cost instead.
	eventCost sim.Time
	hasCost   bool

	// notifyPending prevents charging more than one in-flight wakeup.
	notifyPending bool
}

// SetEventCost overrides the CPU cost charged per completion-channel
// notification.
func (cq *CQ) SetEventCost(d sim.Time) {
	cq.eventCost = d
	cq.hasCost = true
}

func (cq *CQ) notifyCost() sim.Time {
	if cq.hasCost {
		return cq.eventCost
	}
	return cq.dev.params.RDMA.CompletionHandle
}

// SetWorkThread redirects the CQ's CPU costs (poll, completion handling)
// to the given resource, typically a single-server application thread.
func (cq *CQ) SetWorkThread(r *sim.Resource) { cq.thread = r }

func (cq *CQ) workThread() *sim.Resource {
	if cq.thread != nil {
		return cq.thread
	}
	return cq.dev.node.CPU
}

// CreateCQ creates a completion queue holding up to capacity entries.
func (d *Device) CreateCQ(capacity int) *CQ {
	if capacity < 1 {
		panic("rdma: CQ capacity must be positive")
	}
	return &CQ{dev: d, capacity: capacity}
}

// OnEvent installs the completion-channel callback. The callback fires
// (after the modeled completion-handling CPU cost) when a CQE is added
// while the CQ is armed; it is then disarmed until RequestNotify is called
// again — matching ibv completion-channel semantics.
func (cq *CQ) OnEvent(fn func()) { cq.onEvent = fn }

// RequestNotify arms the completion channel for the next CQE.
func (cq *CQ) RequestNotify() {
	cq.armed = true
	if len(cq.entries) > 0 {
		cq.fire()
	}
}

// Poll removes and returns up to max entries. The poll cost is charged to
// the CPU. Polling an empty CQ returns nil.
func (cq *CQ) Poll(max int) []CQE {
	if len(cq.entries) == 0 || max <= 0 {
		return nil
	}
	n := max
	if n > len(cq.entries) {
		n = len(cq.entries)
	}
	out := make([]CQE, n)
	copy(out, cq.entries[:n])
	cq.entries = cq.entries[n:]
	cq.workThread().Delay(cq.dev.params.RDMA.CQPoll)
	return out
}

// Depth returns the number of entries waiting in the queue.
func (cq *CQ) Depth() int { return len(cq.entries) }

// Overflowed reports whether the CQ ever dropped an entry because it was
// full — a fatal condition for a real application.
func (cq *CQ) Overflowed() bool { return cq.overflow }

func (cq *CQ) push(e CQE) {
	if len(cq.entries) >= cq.capacity {
		cq.overflow = true
		return
	}
	cq.entries = append(cq.entries, e)
	if cq.armed {
		cq.fire()
	}
}

func (cq *CQ) fire() {
	if cq.onEvent == nil || cq.notifyPending {
		return
	}
	cq.armed = false
	cq.notifyPending = true
	cq.workThread().Acquire(cq.notifyCost(), func() {
		cq.notifyPending = false
		if cq.onEvent != nil {
			cq.onEvent()
		}
	})
}
