package rdma

import (
	"fmt"

	"rubin/internal/fabric"
)

// cmListener is a connection-manager service point accepting QP setup
// requests on a port.
type cmListener struct {
	port    int
	pd      *PD
	makeCfg func() QPConfig
	onConn  func(*QP)
	closed  bool
}

// Listener is the public handle to a CM listener.
type Listener struct{ l *cmListener }

// Close stops accepting connections on the port.
func (ln *Listener) Close() { ln.l.closed = true }

// ListenCM accepts queue-pair connections on a port. For each inbound
// request a QP is created in pd using makeCfg (called per connection so
// each QP gets fresh CQs if desired) and onConn runs once the handshake
// completes.
func (d *Device) ListenCM(port int, pd *PD, makeCfg func() QPConfig, onConn func(*QP)) (*Listener, error) {
	if _, used := d.cmPorts[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	if pd == nil || makeCfg == nil {
		return nil, fmt.Errorf("rdma: ListenCM requires a PD and config factory")
	}
	l := &cmListener{port: port, pd: pd, makeCfg: makeCfg, onConn: onConn}
	d.cmPorts[port] = l
	return &Listener{l: l}, nil
}

// pendingConnect tracks an in-flight outbound CM handshake keyed by the
// local QP number.
type pendingConnect struct {
	qp   *QP
	done func(*QP, error)
}

// ConnectCM creates a QP and connects it to a listener on the remote node.
// done runs when the handshake completes or is rejected.
func (d *Device) ConnectCM(remote *fabric.Node, port int, pd *PD, cfg QPConfig, done func(*QP, error)) {
	qp, err := d.CreateQP(pd, cfg)
	if err != nil {
		if done != nil {
			done(nil, err)
		}
		return
	}
	if d.pendingCM == nil {
		d.pendingCM = make(map[uint32]*pendingConnect)
	}
	d.pendingCM[qp.num] = &pendingConnect{qp: qp, done: done}
	req := &wireMsg{kind: wireCMReq, srcQPN: qp.num, cmPort: port}
	// CM setup runs through the kernel (rdma_cm), so charge a syscall-ish
	// cost; connection setup is off the data path.
	d.node.CPU.Acquire(d.params.TCP.SendSyscall, func() {
		if err := d.node.Network().Send(d.node, remote, fabric.ProtoRDMA, req, ctrlWireBytes); err != nil {
			delete(d.pendingCM, qp.num)
			qp.state = QPError
			if done != nil {
				done(nil, err)
			}
			return
		}
		qp.remoteNode = remote
	})
}

// handleCM processes connection-manager handshake messages:
//
//	client                      server
//	  | -- REQ(port, cQPN) ------> |   create QP, RTS
//	  | <-- REP(sQPN, cQPN) ------ |
//	RTS, done(qp)                  |
//	  | -- RTU(sQPN) ------------> |   onConn(qp)
func (d *Device) handleCM(from *fabric.Node, msg *wireMsg) {
	switch msg.kind {
	case wireCMReq:
		l := d.cmPorts[msg.cmPort]
		if l == nil || l.closed {
			rej := &wireMsg{kind: wireCMRej, dstQPN: msg.srcQPN}
			_ = d.node.Network().Send(d.node, from, fabric.ProtoRDMA, rej, ctrlWireBytes)
			return
		}
		qp, err := d.CreateQP(l.pd, l.makeCfg())
		if err != nil {
			rej := &wireMsg{kind: wireCMRej, dstQPN: msg.srcQPN}
			_ = d.node.Network().Send(d.node, from, fabric.ProtoRDMA, rej, ctrlWireBytes)
			return
		}
		qp.remoteNode = from
		qp.remoteQPN = msg.srcQPN
		qp.state = QPReady
		if d.cmAccepting == nil {
			d.cmAccepting = make(map[uint32]*cmListener)
		}
		d.cmAccepting[qp.num] = l
		rep := &wireMsg{kind: wireCMRep, srcQPN: qp.num, dstQPN: msg.srcQPN}
		_ = d.node.Network().Send(d.node, from, fabric.ProtoRDMA, rep, ctrlWireBytes)

	case wireCMRep:
		pc := d.pendingCM[msg.dstQPN]
		if pc == nil {
			return
		}
		delete(d.pendingCM, msg.dstQPN)
		pc.qp.remoteQPN = msg.srcQPN
		pc.qp.state = QPReady
		rtu := &wireMsg{kind: wireCMRTU, srcQPN: pc.qp.num, dstQPN: msg.srcQPN}
		_ = d.node.Network().Send(d.node, from, fabric.ProtoRDMA, rtu, ctrlWireBytes)
		if pc.done != nil {
			pc.done(pc.qp, nil)
		}

	case wireCMRTU:
		l := d.cmAccepting[msg.dstQPN]
		if l == nil {
			return
		}
		delete(d.cmAccepting, msg.dstQPN)
		qp := d.qps[msg.dstQPN]
		if qp != nil && l.onConn != nil {
			l.onConn(qp)
		}

	case wireCMRej:
		pc := d.pendingCM[msg.dstQPN]
		if pc == nil {
			return
		}
		delete(d.pendingCM, msg.dstQPN)
		pc.qp.state = QPError
		if pc.done != nil {
			pc.done(nil, ErrRejected)
		}
	}
}
