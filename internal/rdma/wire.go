package rdma

import (
	"rubin/internal/fabric"
	"rubin/internal/model"
)

// wireKind discriminates RDMA protocol messages on the fabric.
type wireKind uint8

const (
	wireSend wireKind = iota + 1
	wireWrite
	wireReadReq
	wireReadResp
	wireAck
	wireRNR
	wireNakAccess
	wireNakLength
	// Connection-manager handshake.
	wireCMReq
	wireCMRep
	wireCMRTU
	wireCMRej
)

func (k wireKind) op() Opcode {
	switch k {
	case wireSend:
		return OpSend
	case wireWrite:
		return OpWrite
	case wireReadReq, wireReadResp:
		return OpRead
	default:
		return 0
	}
}

// wireMsg is the single payload type the device exchanges over the fabric.
type wireMsg struct {
	kind     wireKind
	srcQPN   uint32
	dstQPN   uint32
	wrid     uint64
	psn      uint64
	data     []byte
	rkey     uint32
	roffset  int
	length   int
	signaled bool
	// CM fields.
	cmPort int
}

// deliver is the fabric handler for ProtoRDMA frames: it demultiplexes to
// queue pairs and the connection manager.
func (d *Device) deliver(from *fabric.Node, payload any, wireBytes int) {
	msg, ok := payload.(*wireMsg)
	if !ok {
		return
	}
	switch msg.kind {
	case wireCMReq, wireCMRep, wireCMRTU, wireCMRej:
		d.handleCM(from, msg)
		return
	}
	qp := d.qps[msg.dstQPN]
	if qp == nil || qp.state == QPError {
		return
	}
	switch msg.kind {
	case wireSend, wireWrite, wireReadReq:
		// Requester->responder traffic runs through the per-QP receive
		// pipeline to preserve RC ordering.
		qp.rxQ = append(qp.rxQ, msg)
		qp.pumpRecv()
	case wireAck:
		qp.handleAck(msg)
	case wireRNR:
		qp.handleRNR(msg)
	case wireNakAccess:
		qp.completeSend(msg.psn, StatusRemoteAccess)
	case wireNakLength:
		qp.completeSend(msg.psn, StatusRecvLengthErr)
	case wireReadResp:
		qp.handleReadResp(msg)
	}
}

// pumpRecv drives the per-QP responder pipeline one message at a time.
func (qp *QP) pumpRecv() {
	if qp.rxActive || len(qp.rxQ) == 0 || qp.state == QPError {
		return
	}
	qp.rxActive = true
	msg := qp.rxQ[0]
	qp.rxQ = qp.rxQ[1:]

	p := qp.dev.params.RDMA
	// Responder NIC work: descriptor processing plus the DMA that moves
	// the payload to or from host memory. All of it is on the NIC —
	// the remote CPU stays idle, which is RDMA's defining property.
	cost := p.NICProcess
	switch msg.kind {
	case wireSend, wireWrite:
		cost += model.KB(p.DMAPerKB, len(msg.data))
	case wireReadReq:
		cost += model.KB(p.DMAPerKB, msg.length)
	}
	qp.dev.node.NIC.Acquire(cost, func() {
		qp.finishRecv(msg)
		qp.rxActive = false
		qp.pumpRecv()
	})
}

func (qp *QP) finishRecv(msg *wireMsg) {
	p := qp.dev.params.RDMA
	// Strict RC ordering at the responder.
	if msg.psn < qp.rxExpected {
		// Duplicate of an already-processed packet: re-ack so the
		// sender can retire it; re-execute reads (idempotent).
		switch msg.kind {
		case wireSend, wireWrite:
			qp.reply(&wireMsg{kind: wireAck, psn: msg.psn})
			return
		}
	} else if msg.psn > qp.rxExpected {
		// A gap: an earlier packet is in RNR backoff. Reject so the
		// sender retries this one after the gap fills.
		qp.reply(&wireMsg{kind: wireRNR, psn: msg.psn})
		return
	}
	switch msg.kind {
	case wireSend:
		if len(qp.recvQ) == 0 {
			// Receiver not ready: NAK so the sender backs off and
			// retries (paper: "it is important to allocate enough
			// receive requests").
			qp.dev.rnrNaks++
			qp.reply(&wireMsg{kind: wireRNR, psn: msg.psn})
			return
		}
		wr := qp.recvQ[0]
		if wr.Length < len(msg.data) {
			qp.recvQ = qp.recvQ[1:]
			qp.rxExpected = msg.psn + 1
			qp.cfg.RecvCQ.push(CQE{WRID: wr.ID, QPN: qp.num, Op: OpRecv, Status: StatusRecvLengthErr})
			qp.reply(&wireMsg{kind: wireNakLength, psn: msg.psn})
			qp.state = QPError
			return
		}
		qp.recvQ = qp.recvQ[1:]
		qp.rxExpected = msg.psn + 1
		copy(wr.MR.buf[wr.Offset:], msg.data)
		qp.received++
		qp.dev.sendsRx++
		qp.dev.node.NIC.Delay(p.CQEGenerate)
		qp.cfg.RecvCQ.push(CQE{WRID: wr.ID, QPN: qp.num, Op: OpRecv, Status: StatusOK, Bytes: len(msg.data)})
		qp.reply(&wireMsg{kind: wireAck, psn: msg.psn})

	case wireWrite:
		qp.rxExpected = msg.psn + 1
		mr := qp.dev.mrs[msg.rkey]
		if mr == nil || !mr.valid || mr.access&AccessRemoteWrite == 0 ||
			msg.roffset < 0 || msg.roffset+len(msg.data) > mr.Len() {
			qp.reply(&wireMsg{kind: wireNakAccess, psn: msg.psn})
			return
		}
		copy(mr.buf[msg.roffset:], msg.data)
		qp.dev.writesRx++
		// One-sided: no receive CQE, no CPU involvement; just the ack.
		qp.reply(&wireMsg{kind: wireAck, psn: msg.psn})

	case wireReadReq:
		qp.rxExpected = msg.psn + 1
		mr := qp.dev.mrs[msg.rkey]
		if mr == nil || !mr.valid || mr.access&AccessRemoteRead == 0 ||
			msg.roffset < 0 || msg.roffset+msg.length > mr.Len() {
			qp.reply(&wireMsg{kind: wireNakAccess, psn: msg.psn})
			return
		}
		qp.dev.readsRx++
		data := append([]byte(nil), mr.buf[msg.roffset:msg.roffset+msg.length]...)
		resp := &wireMsg{kind: wireReadResp, psn: msg.psn, wrid: msg.wrid, data: data}
		resp.dstQPN = msg.srcQPN
		resp.srcQPN = qp.num
		qp.transmit(resp, len(data))
	}
}

// reply sends a control message back to the peer QP.
func (qp *QP) reply(msg *wireMsg) {
	msg.srcQPN = qp.num
	msg.dstQPN = qp.remoteQPN
	qp.transmit(msg, ctrlWireBytes)
}

// handleAck retires a pending send: the WR slot frees and, if the WR was
// signaled, a CQE is generated (selective signaling: unsignaled successes
// complete silently).
func (qp *QP) handleAck(msg *wireMsg) {
	entry := qp.pending[msg.psn]
	if entry == nil {
		return
	}
	delete(qp.pending, msg.psn)
	qp.outstanding--
	qp.sent++
	if entry.msg.signaled {
		qp.dev.node.NIC.Delay(qp.dev.params.RDMA.CQEGenerate)
		qp.cfg.SendCQ.push(CQE{
			WRID:   entry.msg.wrid,
			QPN:    qp.num,
			Op:     entry.op,
			Status: StatusOK,
			Bytes:  len(entry.msg.data),
		})
	}
	qp.pumpSend()
}

// handleRNR retransmits after a backoff, up to the configured retry count.
func (qp *QP) handleRNR(msg *wireMsg) {
	entry := qp.pending[msg.psn]
	if entry == nil {
		return
	}
	p := qp.dev.params.RDMA
	entry.retries++
	// IB semantics: an RNR retry count of 7 retries forever.
	if p.RNRRetry < 7 && entry.retries > p.RNRRetry {
		delete(qp.pending, msg.psn)
		qp.outstanding--
		qp.fatal(entry.msg.wrid, entry.op, StatusRNRRetryExceeded)
		return
	}
	qp.dev.loop().After(p.RNRDelay, func() {
		if qp.state != QPReady {
			return
		}
		// The NIC re-reads the payload for the retransmission.
		cost := p.NICProcess + model.KB(p.DMAPerKB, len(entry.msg.data))
		qp.dev.node.NIC.Acquire(cost, func() {
			if qp.state == QPReady {
				qp.transmit(entry.msg, entry.wire)
			}
		})
	})
}

// completeSend finishes a pending send with an error status and moves the
// QP to the error state.
func (qp *QP) completeSend(psn uint64, status Status) {
	entry := qp.pending[psn]
	if entry == nil {
		return
	}
	delete(qp.pending, psn)
	qp.outstanding--
	qp.fatal(entry.msg.wrid, entry.op, status)
}

// handleReadResp lands one-sided READ data in the requester's local region.
func (qp *QP) handleReadResp(msg *wireMsg) {
	wr := qp.pendingReads[msg.wrid]
	if wr == nil {
		return
	}
	delete(qp.pendingReads, msg.wrid)
	entry := qp.pending[msg.psn]
	p := qp.dev.params.RDMA
	// The local NIC DMA-writes the returned data into the WR's region.
	qp.dev.node.NIC.Acquire(p.NICProcess+model.KB(p.DMAPerKB, len(msg.data)), func() {
		copy(wr.MR.buf[wr.Offset:], msg.data)
		if entry != nil {
			delete(qp.pending, msg.psn)
			qp.outstanding--
			qp.sent++
		}
		if wr.Signaled {
			qp.dev.node.NIC.Delay(p.CQEGenerate)
			qp.cfg.SendCQ.push(CQE{
				WRID:   wr.ID,
				QPN:    qp.num,
				Op:     OpRead,
				Status: StatusOK,
				Bytes:  len(msg.data),
			})
		}
		qp.pumpSend()
	})
}
