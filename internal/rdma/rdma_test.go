package rdma

import (
	"bytes"
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// rig is a two-node RDMA test rig with a connected QP pair.
type rig struct {
	loop     *sim.Loop
	nw       *fabric.Network
	da, db   *Device
	pa, pb   *PD
	qpA, qpB *QP
	cqA, cqB *CQ // send CQs
	rqA, rqB *CQ // recv CQs
}

func newRig(t *testing.T) *rig { return newRigParams(t, nil) }

func newRigParams(t *testing.T, mutate func(*model.Params)) *rig {
	t.Helper()
	loop := sim.NewLoop(1)
	params := model.Default()
	if mutate != nil {
		mutate(&params)
	}
	nw := fabric.New(loop, params)
	na, nb := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(na, nb)
	r := &rig{loop: loop, nw: nw, da: OpenDevice(na), db: OpenDevice(nb)}
	r.pa, r.pb = r.da.AllocPD(), r.db.AllocPD()
	r.cqA, r.rqA = r.da.CreateCQ(128), r.da.CreateCQ(128)
	r.cqB, r.rqB = r.db.CreateCQ(128), r.db.CreateCQ(128)

	_, err := r.db.ListenCM(7, r.pb, func() QPConfig {
		return QPConfig{SendCQ: r.cqB, RecvCQ: r.rqB, MaxSendWR: 64, MaxRecvWR: 64, MaxInline: 256}
	}, func(qp *QP) { r.qpB = qp })
	if err != nil {
		t.Fatalf("ListenCM: %v", err)
	}
	loop.At(0, func() {
		r.da.ConnectCM(nb, 7, r.pa,
			QPConfig{SendCQ: r.cqA, RecvCQ: r.rqA, MaxSendWR: 64, MaxRecvWR: 64, MaxInline: 256},
			func(qp *QP, err error) {
				if err != nil {
					t.Errorf("ConnectCM: %v", err)
					return
				}
				r.qpA = qp
			})
	})
	loop.Run()
	if r.qpA == nil || r.qpB == nil {
		t.Fatal("CM handshake did not complete")
	}
	if r.qpA.State() != QPReady || r.qpB.State() != QPReady {
		t.Fatalf("QPs not ready: %v / %v", r.qpA.State(), r.qpB.State())
	}
	return r
}

func TestCMHandshakeEstablishesQPs(t *testing.T) {
	r := newRig(t)
	if r.qpA.Num() == r.qpB.Num() && r.da == r.db {
		t.Fatal("QP numbers must differ on one device")
	}
}

func TestCMConnectionRejectedWithoutListener(t *testing.T) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	na, nb := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(na, nb)
	da, db := OpenDevice(na), OpenDevice(nb)
	_ = db
	pd := da.AllocPD()
	cq := da.CreateCQ(16)
	var gotErr error
	loop.At(0, func() {
		da.ConnectCM(nb, 99, pd, QPConfig{SendCQ: cq, RecvCQ: cq, MaxSendWR: 8, MaxRecvWR: 8},
			func(qp *QP, err error) { gotErr = err })
	})
	loop.Run()
	if gotErr == nil {
		t.Fatal("expected rejection")
	}
}

func TestListenCMPortInUse(t *testing.T) {
	r := newRig(t)
	if _, err := r.db.ListenCM(7, r.pb, func() QPConfig { return QPConfig{} }, nil); err == nil {
		t.Fatal("duplicate ListenCM should fail")
	}
}

func TestSendRecvTransfersData(t *testing.T) {
	r := newRig(t)
	sendMR := r.pa.RegisterMR(4096, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(4096, AccessLocalWrite, nil)

	msg := bytes.Repeat([]byte{0xAB}, 2048)
	copy(sendMR.Bytes(), msg)

	var recvCQE, sendCQE *CQE
	r.loop.At(0, func() {
		if err := r.qpB.PostRecv(RecvWR{ID: 1, MR: recvMR, Length: 4096}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		if err := r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend, MR: sendMR, Length: 2048, Signaled: true}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
	})
	r.loop.Run()
	for _, e := range r.rqB.Poll(16) {
		e := e
		recvCQE = &e
	}
	for _, e := range r.cqA.Poll(16) {
		e := e
		sendCQE = &e
	}
	if recvCQE == nil || recvCQE.Status != StatusOK || recvCQE.Bytes != 2048 {
		t.Fatalf("bad recv CQE: %+v", recvCQE)
	}
	if recvCQE.WRID != 1 || recvCQE.Op != OpRecv {
		t.Fatalf("recv CQE identity wrong: %+v", recvCQE)
	}
	if sendCQE == nil || sendCQE.Status != StatusOK || sendCQE.WRID != 2 {
		t.Fatalf("bad send CQE: %+v", sendCQE)
	}
	if !bytes.Equal(recvMR.Bytes()[:2048], msg) {
		t.Fatal("payload corrupted in flight")
	}
	if r.qpA.Sent() != 1 || r.qpB.Received() != 1 {
		t.Fatalf("counters wrong: sent=%d received=%d", r.qpA.Sent(), r.qpB.Received())
	}
}

func TestUnsignaledSendProducesNoCQE(t *testing.T) {
	r := newRig(t)
	sendMR := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(1024, AccessLocalWrite, nil)
	r.loop.At(0, func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 1, MR: recvMR, Length: 1024})
		_ = r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend, MR: sendMR, Length: 512, Signaled: false})
	})
	r.loop.Run()
	if got := r.cqA.Poll(16); got != nil {
		t.Fatalf("unsignaled send produced CQEs: %+v", got)
	}
	// The WR slot must still be reclaimed on ack.
	if r.qpA.SendSlots() != 64 {
		t.Fatalf("send slots = %d, want 64 (slot leak)", r.qpA.SendSlots())
	}
}

func TestInlineSendDeliversAndRejectsOversize(t *testing.T) {
	r := newRig(t)
	recvMR := r.pb.RegisterMR(1024, AccessLocalWrite, nil)
	payload := []byte("inline-payload")
	r.loop.At(0, func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 1, MR: recvMR, Length: 1024})
		if err := r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend, Inline: payload, Signaled: true}); err != nil {
			t.Errorf("inline PostSend: %v", err)
		}
		if err := r.qpA.PostSend(&SendWR{ID: 3, Op: OpSend, Inline: make([]byte, 4096)}); err == nil {
			t.Error("oversized inline send should fail")
		}
	})
	r.loop.Run()
	if !bytes.Equal(recvMR.Bytes()[:len(payload)], payload) {
		t.Fatal("inline payload corrupted")
	}
}

func TestRNRNakAndRetryDelivers(t *testing.T) {
	r := newRig(t)
	sendMR := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(1024, AccessLocalWrite, nil)
	copy(sendMR.Bytes(), "retry me")
	r.loop.Post(func() {
		// No receive posted yet: first attempt draws an RNR NAK.
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpSend, MR: sendMR, Length: 8, Signaled: true})
	})
	// Post the receive while the sender is backing off after the NAK.
	r.loop.After(int64EqDelay(), func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 2, MR: recvMR, Length: 1024})
	})
	r.loop.Run()
	if r.db.RNRNaks() == 0 {
		t.Fatal("expected at least one RNR NAK")
	}
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusOK {
		t.Fatalf("send did not complete after retry: %+v", cqes)
	}
	if string(recvMR.Bytes()[:8]) != "retry me" {
		t.Fatal("payload corrupted across retry")
	}
}

// int64EqDelay returns a time safely inside the first RNR backoff window.
func int64EqDelay() sim.Time { return 30 * sim.Microsecond }

func TestRNRRetriesExhaustedErrorsQP(t *testing.T) {
	// A finite retry budget (anything below the IB "infinite" value 7)
	// must error the QP once exhausted.
	const retries = 3
	r := newRigParams(t, func(p *model.Params) { p.RDMA.RNRRetry = retries })
	sendMR := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	r.loop.Post(func() {
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpSend, MR: sendMR, Length: 8, Signaled: true})
	})
	r.loop.Run() // receiver never posts a buffer
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusRNRRetryExceeded {
		t.Fatalf("want RNR_RETRY_EXCEEDED, got %+v", cqes)
	}
	if r.qpA.State() != QPError {
		t.Fatalf("QP state = %v, want ERROR", r.qpA.State())
	}
	if got := int(r.db.RNRNaks()); got != retries+1 {
		t.Fatalf("RNR NAKs = %d, want %d", got, retries+1)
	}
}

func TestRNRDefaultRetriesForever(t *testing.T) {
	// With the default (infinite) retry setting, a late receive still
	// completes the send even after many NAKs.
	r := newRig(t)
	sendMR := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(1024, AccessLocalWrite, nil)
	r.loop.Post(func() {
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpSend, MR: sendMR, Length: 8, Signaled: true})
	})
	// Post the receive only after ~20 backoff periods.
	r.loop.After(20*model.Default().RDMA.RNRDelay, func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 2, MR: recvMR, Length: 1024})
	})
	r.loop.Run()
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusOK {
		t.Fatalf("send did not survive extended RNR: %+v", cqes)
	}
	if r.db.RNRNaks() < 8 {
		t.Fatalf("expected > 7 NAKs, got %d", r.db.RNRNaks())
	}
}

func TestOneSidedWrite(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(1024, AccessLocalWrite|AccessRemoteWrite, nil)
	copy(local.Bytes(), "one-sided write")

	r.loop.At(0, func() {
		err := r.qpA.PostSend(&SendWR{
			ID: 1, Op: OpWrite, MR: local, Length: 15,
			RemoteKey: remote.RKey(), RemoteOffset: 100, Signaled: true,
		})
		if err != nil {
			t.Errorf("PostSend(WRITE): %v", err)
		}
	})
	r.loop.Run()
	if string(remote.Bytes()[100:115]) != "one-sided write" {
		t.Fatal("write did not land in remote memory")
	}
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusOK || cqes[0].Op != OpWrite {
		t.Fatalf("bad write CQE: %+v", cqes)
	}
	// One-sided: the responder CPU must not have been involved and no
	// receive CQE generated.
	if r.rqB.Depth() != 0 {
		t.Fatal("one-sided write generated a receive CQE")
	}
}

func TestOneSidedWriteAccessViolation(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(1024, AccessLocalWrite, nil) // no RemoteWrite

	r.loop.At(0, func() {
		_ = r.qpA.PostSend(&SendWR{
			ID: 1, Op: OpWrite, MR: local, Length: 8,
			RemoteKey: remote.RKey(), Signaled: true,
		})
	})
	r.loop.Run()
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusRemoteAccess {
		t.Fatalf("want REMOTE_ACCESS_ERROR, got %+v", cqes)
	}
	if r.qpA.State() != QPError {
		t.Fatal("QP should be in error state after access violation")
	}
}

func TestOneSidedWriteBoundsViolation(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(64, AccessLocalWrite|AccessRemoteWrite, nil)
	r.loop.At(0, func() {
		_ = r.qpA.PostSend(&SendWR{
			ID: 1, Op: OpWrite, MR: local, Length: 128, // larger than remote MR
			RemoteKey: remote.RKey(), Signaled: true,
		})
	})
	r.loop.Run()
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusRemoteAccess {
		t.Fatalf("bounds violation not caught: %+v", cqes)
	}
}

func TestOneSidedWriteToDeregisteredMR(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(64, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(64, AccessLocalWrite|AccessRemoteWrite, nil)
	rkey := remote.RKey()
	remote.Deregister()
	r.loop.At(0, func() {
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpWrite, MR: local, Length: 8, RemoteKey: rkey, Signaled: true})
	})
	r.loop.Run()
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusRemoteAccess {
		t.Fatalf("deregistered MR access not caught: %+v", cqes)
	}
}

func TestOneSidedRead(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(1024, AccessLocalWrite|AccessRemoteRead, nil)
	copy(remote.Bytes()[200:], "read me remotely")

	r.loop.At(0, func() {
		err := r.qpA.PostSend(&SendWR{
			ID: 1, Op: OpRead, MR: local, Offset: 8, Length: 16,
			RemoteKey: remote.RKey(), RemoteOffset: 200, Signaled: true,
		})
		if err != nil {
			t.Errorf("PostSend(READ): %v", err)
		}
	})
	r.loop.Run()
	if string(local.Bytes()[8:24]) != "read me remotely" {
		t.Fatalf("read data wrong: %q", local.Bytes()[8:24])
	}
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusOK || cqes[0].Op != OpRead || cqes[0].Bytes != 16 {
		t.Fatalf("bad read CQE: %+v", cqes)
	}
}

func TestReadWithoutRemoteReadAccessFails(t *testing.T) {
	r := newRig(t)
	local := r.pa.RegisterMR(64, AccessLocalWrite, nil)
	remote := r.pb.RegisterMR(64, AccessLocalWrite|AccessRemoteWrite, nil)
	r.loop.At(0, func() {
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpRead, MR: local, Length: 8, RemoteKey: remote.RKey(), Signaled: true})
	})
	r.loop.Run()
	cqes := r.cqA.Poll(16)
	if len(cqes) != 1 || cqes[0].Status != StatusRemoteAccess {
		t.Fatalf("read access violation not caught: %+v", cqes)
	}
}

func TestRecvBufferTooSmallErrors(t *testing.T) {
	r := newRig(t)
	sendMR := r.pa.RegisterMR(1024, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(1024, AccessLocalWrite, nil)
	r.loop.At(0, func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 1, MR: recvMR, Length: 16})
		_ = r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend, MR: sendMR, Length: 512, Signaled: true})
	})
	r.loop.Run()
	recvCQEs := r.rqB.Poll(16)
	if len(recvCQEs) != 1 || recvCQEs[0].Status != StatusRecvLengthErr {
		t.Fatalf("want RECV_LENGTH_ERROR at receiver, got %+v", recvCQEs)
	}
	sendCQEs := r.cqA.Poll(16)
	if len(sendCQEs) != 1 || sendCQEs[0].Status != StatusRecvLengthErr {
		t.Fatalf("want RECV_LENGTH_ERROR at sender, got %+v", sendCQEs)
	}
}

func TestSendQueueDepthEnforced(t *testing.T) {
	r := newRig(t)
	mr := r.pa.RegisterMR(64, AccessLocalWrite, nil)
	r.loop.At(0, func() {
		wrs := make([]*SendWR, 65)
		for i := range wrs {
			wrs[i] = &SendWR{ID: uint64(i), Op: OpSend, MR: mr, Length: 1}
		}
		if err := r.qpA.PostSend(wrs...); err == nil {
			t.Error("posting beyond MaxSendWR should fail")
		}
	})
	r.loop.Run()
}

func TestRecvQueueDepthEnforced(t *testing.T) {
	r := newRig(t)
	mr := r.pb.RegisterMR(64, AccessLocalWrite, nil)
	r.loop.At(0, func() {
		for i := 0; i < 64; i++ {
			if err := r.qpB.PostRecv(RecvWR{ID: uint64(i), MR: mr, Length: 1}); err != nil {
				t.Errorf("PostRecv %d: %v", i, err)
			}
		}
		if err := r.qpB.PostRecv(RecvWR{ID: 99, MR: mr, Length: 1}); err == nil {
			t.Error("posting beyond MaxRecvWR should fail")
		}
	})
	r.loop.Run()
}

func TestPostSendOnUnconnectedQPFails(t *testing.T) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	na := nw.AddNode("a")
	d := OpenDevice(na)
	pd := d.AllocPD()
	cq := d.CreateCQ(8)
	qp, err := d.CreateQP(pd, QPConfig{SendCQ: cq, RecvCQ: cq, MaxSendWR: 8, MaxRecvWR: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(&SendWR{ID: 1, Op: OpSend, Inline: []byte("x")}); err == nil {
		t.Fatal("PostSend on INIT QP should fail")
	}
}

func TestPostSendBadMRRejected(t *testing.T) {
	r := newRig(t)
	mr := r.pa.RegisterMR(16, AccessLocalWrite, nil)
	r.loop.At(0, func() {
		if err := r.qpA.PostSend(&SendWR{ID: 1, Op: OpSend, MR: mr, Offset: 8, Length: 16}); err == nil {
			t.Error("out-of-bounds send WR should be rejected")
		}
		if err := r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend}); err == nil {
			t.Error("send WR without MR or inline should be rejected")
		}
	})
	r.loop.Run()
}

func TestManyMessagesArriveInOrder(t *testing.T) {
	r := newRig(t)
	const n = 50
	sendMR := r.pa.RegisterMR(n, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(n, AccessLocalWrite, nil)
	var got []byte
	r.loop.At(0, func() {
		for i := 0; i < n; i++ {
			_ = r.qpB.PostRecv(RecvWR{ID: uint64(i), MR: recvMR, Offset: i, Length: 1})
		}
		for i := 0; i < n; i++ {
			sendMR.Bytes()[i] = byte(i)
			if err := r.qpA.PostSend(&SendWR{ID: uint64(i), Op: OpSend, MR: sendMR, Offset: i, Length: 1, Signaled: i == n-1}); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
			}
		}
	})
	r.loop.Run()
	for {
		cqes := r.rqB.Poll(16)
		if cqes == nil {
			break
		}
		for _, e := range cqes {
			got = append(got, byte(e.WRID))
		}
	}
	if len(got) != n {
		t.Fatalf("received %d completions, want %d", len(got), n)
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("completion order broken at %d: %v", i, got)
		}
	}
	for i := 0; i < n; i++ {
		if recvMR.Bytes()[i] != byte(i) {
			t.Fatalf("data order broken at %d", i)
		}
	}
}

func TestCQEventNotificationArmsOnce(t *testing.T) {
	r := newRig(t)
	sendMR := r.pa.RegisterMR(64, AccessLocalWrite, nil)
	recvMR := r.pb.RegisterMR(64, AccessLocalWrite, nil)
	events := 0
	r.rqB.OnEvent(func() { events++ })
	r.rqB.RequestNotify()
	r.loop.At(0, func() {
		_ = r.qpB.PostRecv(RecvWR{ID: 1, MR: recvMR, Length: 64})
		_ = r.qpB.PostRecv(RecvWR{ID: 2, MR: recvMR, Length: 64})
		_ = r.qpA.PostSend(&SendWR{ID: 1, Op: OpSend, MR: sendMR, Length: 8})
		_ = r.qpA.PostSend(&SendWR{ID: 2, Op: OpSend, MR: sendMR, Length: 8})
	})
	r.loop.Run()
	if events != 1 {
		t.Fatalf("completion channel fired %d times, want 1 (one-shot arm)", events)
	}
	// Re-arm with entries already queued: fires again immediately.
	r.rqB.RequestNotify()
	r.loop.Run()
	if events != 2 {
		t.Fatalf("re-armed channel fired %d times total, want 2", events)
	}
}

func TestCQOverflowDetected(t *testing.T) {
	r := newRig(t)
	small := r.db.CreateCQ(1)
	// Replace b's recv CQ via a fresh QP pair on port 8.
	var qpB2 *QP
	_, err := r.db.ListenCM(8, r.pb, func() QPConfig {
		return QPConfig{SendCQ: r.cqB, RecvCQ: small, MaxSendWR: 8, MaxRecvWR: 8}
	}, func(qp *QP) { qpB2 = qp })
	if err != nil {
		t.Fatal(err)
	}
	var qpA2 *QP
	r.loop.Post(func() {
		r.da.ConnectCM(r.db.Node(), 8, r.pa,
			QPConfig{SendCQ: r.cqA, RecvCQ: r.rqA, MaxSendWR: 8, MaxRecvWR: 8},
			func(qp *QP, err error) { qpA2 = qp })
	})
	r.loop.Run()
	if qpA2 == nil || qpB2 == nil {
		t.Fatal("second QP pair not established")
	}
	mrA := r.pa.RegisterMR(64, AccessLocalWrite, nil)
	mrB := r.pb.RegisterMR(64, AccessLocalWrite, nil)
	r.loop.Post(func() {
		for i := 0; i < 3; i++ {
			_ = qpB2.PostRecv(RecvWR{ID: uint64(i), MR: mrB, Length: 8})
			_ = qpA2.PostSend(&SendWR{ID: uint64(i), Op: OpSend, MR: mrA, Length: 8})
		}
	})
	r.loop.Run()
	if !small.Overflowed() {
		t.Fatal("CQ overflow not detected")
	}
}

func TestMRRegistrationChargesCPU(t *testing.T) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	na := nw.AddNode("a")
	d := OpenDevice(na)
	pd := d.AllocPD()
	ready := sim.Time(-1)
	loop.At(0, func() {
		pd.RegisterMR(1<<20, AccessLocalWrite, func() { ready = loop.Now() })
	})
	loop.Run()
	base := model.Default().RDMA.MemRegisterBase
	if ready < base {
		t.Fatalf("1MB registration completed at %v, want >= %v", ready, base)
	}
}

func TestOpcodeAndStatusStrings(t *testing.T) {
	if OpSend.String() != "SEND" || OpRead.String() != "READ" || OpWrite.String() != "WRITE" || OpRecv.String() != "RECV" {
		t.Fatal("opcode strings wrong")
	}
	if StatusOK.String() != "OK" || StatusRNRRetryExceeded.String() != "RNR_RETRY_EXCEEDED" {
		t.Fatal("status strings wrong")
	}
	if QPReady.String() != "RTS" || QPError.String() != "ERROR" {
		t.Fatal("state strings wrong")
	}
}
