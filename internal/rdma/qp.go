package rdma

import (
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// QPState is the lifecycle state of a queue pair.
type QPState uint8

// Queue pair states (simplified RC state machine).
const (
	QPInit QPState = iota + 1
	QPReady
	QPError
)

func (s QPState) String() string {
	switch s {
	case QPInit:
		return "INIT"
	case QPReady:
		return "RTS"
	case QPError:
		return "ERROR"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// QPConfig sizes a queue pair at creation time.
type QPConfig struct {
	SendCQ    *CQ
	RecvCQ    *CQ
	MaxSendWR int // send queue depth
	MaxRecvWR int // receive queue depth
	MaxInline int // largest inline payload accepted by PostSend
}

// SendWR is a send-side work request: a two-sided SEND or a one-sided
// WRITE/READ.
type SendWR struct {
	ID uint64
	Op Opcode

	// Local buffer: either a registered-region slice...
	MR     *MR
	Offset int
	Length int
	// ...or inline payload carried in the WR itself (SEND/WRITE only,
	// subject to MaxInline); inline sends skip the NIC's DMA read.
	Inline []byte

	// Remote target for one-sided WRITE/READ.
	RemoteKey    uint32
	RemoteOffset int

	// Signaled requests a CQE on success. Errors always generate CQEs.
	Signaled bool
}

// RecvWR is a posted receive buffer for two-sided SENDs.
type RecvWR struct {
	ID     uint64
	MR     *MR
	Offset int
	Length int
}

// QP is a reliable-connection queue pair.
type QP struct {
	dev   *Device
	pd    *PD
	num   uint32
	state QPState
	cfg   QPConfig

	remoteNode *fabric.Node // set on connect
	remoteQPN  uint32

	// Send pipeline: WRs are processed by the NIC strictly in order per
	// QP (RC ordering); outstanding counts WRs posted but not yet acked.
	sendQ       []*SendWR
	txActive    bool
	outstanding int

	// Receive queue of posted buffers, consumed FIFO by arriving SENDs.
	recvQ []RecvWR

	// Receive pipeline serialization (per-QP in-order delivery).
	rxQ      []*wireMsg
	rxActive bool

	// Pending one-sided READ WRs awaiting responses, by WR ID.
	pendingReads map[uint64]*SendWR

	// Reliability: every data-path message carries a packet sequence
	// number; pending holds unacknowledged sends for RNR retransmission.
	// rxExpected enforces strict RC ordering at the responder: packets
	// beyond the expected PSN are NAKed for retry, duplicates below it
	// are re-acked and dropped, so acks (and thus selective-signaling
	// coverage) can never complete out of order.
	nextPSN    uint64
	rxExpected uint64
	pending    map[uint64]*txEntry

	// thread is where posting (doorbell) CPU costs are charged;
	// defaults to the node CPU.
	thread *sim.Resource

	// Stats.
	sent, received uint64
}

// txEntry is an unacknowledged transmitted WR kept for RNR retry.
type txEntry struct {
	msg     *wireMsg
	wire    int
	op      Opcode
	retries int
}

// CreateQP creates a queue pair in the Init state. Connect it via the
// connection manager (Listen/Connect) before posting.
func (d *Device) CreateQP(pd *PD, cfg QPConfig) (*QP, error) {
	if cfg.SendCQ == nil || cfg.RecvCQ == nil {
		return nil, fmt.Errorf("rdma: QP needs send and recv CQs")
	}
	if cfg.MaxSendWR < 1 || cfg.MaxRecvWR < 1 {
		return nil, fmt.Errorf("rdma: QP queue depths must be positive")
	}
	if cfg.MaxInline > d.params.RDMA.InlineMax {
		cfg.MaxInline = d.params.RDMA.InlineMax
	}
	qp := &QP{
		dev:          d,
		pd:           pd,
		num:          d.nextQPN,
		state:        QPInit,
		cfg:          cfg,
		pendingReads: make(map[uint64]*SendWR),
		pending:      make(map[uint64]*txEntry),
	}
	d.nextQPN++
	d.qps[qp.num] = qp
	return qp, nil
}

// SetWorkThread redirects posting costs to the given resource, typically
// the single application/selector thread that owns this QP.
func (qp *QP) SetWorkThread(r *sim.Resource) { qp.thread = r }

func (qp *QP) workThread() *sim.Resource {
	if qp.thread != nil {
		return qp.thread
	}
	return qp.dev.node.CPU
}

// Num returns the queue pair number.
func (qp *QP) Num() uint32 { return qp.num }

// RemoteNode returns the peer's fabric node once connected, else nil.
func (qp *QP) RemoteNode() *fabric.Node { return qp.remoteNode }

// State returns the QP's lifecycle state.
func (qp *QP) State() QPState { return qp.state }

// Sent returns the number of send-side WRs completed successfully.
func (qp *QP) Sent() uint64 { return qp.sent }

// Received returns the number of receive completions delivered.
func (qp *QP) Received() uint64 { return qp.received }

// RecvDepth returns the number of receive WRs currently posted.
func (qp *QP) RecvDepth() int { return len(qp.recvQ) }

// SendSlots returns how many more send WRs can be posted right now.
func (qp *QP) SendSlots() int { return qp.cfg.MaxSendWR - qp.outstanding - len(qp.sendQ) }

// PostRecv posts receive buffers. Each WR must reference a local-writable
// registered region.
func (qp *QP) PostRecv(wrs ...RecvWR) error {
	if qp.state == QPError {
		return ErrQPState
	}
	if len(qp.recvQ)+len(wrs) > qp.cfg.MaxRecvWR {
		return ErrRecvQueueFul
	}
	for _, wr := range wrs {
		if wr.MR == nil || !wr.MR.valid || wr.MR.access&AccessLocalWrite == 0 ||
			wr.Offset < 0 || wr.Length < 0 || wr.Offset+wr.Length > wr.MR.Len() {
			return fmt.Errorf("%w: recv wr %d", ErrBadMR, wr.ID)
		}
	}
	qp.recvQ = append(qp.recvQ, wrs...)
	// Re-posting receives is a cheap doorbell on the posting thread.
	qp.workThread().Delay(qp.dev.params.RDMA.RecvWRRefill * sim.Time(len(wrs)))
	return nil
}

// PostSend posts one or more send-side WRs with a single doorbell: the
// first WR pays the full doorbell cost, the rest the batched marginal cost
// (the paper's batched posting optimization). WRs are processed by the NIC
// in order.
func (qp *QP) PostSend(wrs ...*SendWR) error {
	if qp.state != QPReady {
		return ErrQPState
	}
	if len(wrs) == 0 {
		return nil
	}
	if qp.outstanding+len(qp.sendQ)+len(wrs) > qp.cfg.MaxSendWR {
		return ErrSendQueueFul
	}
	for _, wr := range wrs {
		if err := qp.validateSend(wr); err != nil {
			return err
		}
	}
	p := qp.dev.params.RDMA
	cost := p.PostWR + p.PostWRBatched*sim.Time(len(wrs)-1)
	qp.sendQ = append(qp.sendQ, wrs...)
	qp.workThread().Acquire(cost, qp.pumpSend)
	return nil
}

func (qp *QP) validateSend(wr *SendWR) error {
	switch wr.Op {
	case OpSend, OpWrite:
	case OpRead:
		if len(wr.Inline) > 0 {
			return fmt.Errorf("rdma: READ cannot be inline")
		}
	default:
		return fmt.Errorf("rdma: bad opcode %v in send WR", wr.Op)
	}
	if len(wr.Inline) > 0 {
		if len(wr.Inline) > qp.cfg.MaxInline {
			return fmt.Errorf("%w: %d > %d", ErrInlineTooBig, len(wr.Inline), qp.cfg.MaxInline)
		}
		return nil
	}
	if wr.MR == nil || !wr.MR.valid ||
		wr.Offset < 0 || wr.Length < 0 || wr.Offset+wr.Length > wr.MR.Len() {
		return fmt.Errorf("%w: send wr %d", ErrBadMR, wr.ID)
	}
	return nil
}

// pumpSend drives the per-QP NIC transmit pipeline, one WR at a time to
// preserve RC ordering. Parallelism across QPs comes from the NIC engine
// pool.
func (qp *QP) pumpSend() {
	if qp.txActive || len(qp.sendQ) == 0 || qp.state != QPReady {
		return
	}
	qp.txActive = true
	wr := qp.sendQ[0]
	qp.sendQ = qp.sendQ[1:]
	qp.outstanding++

	p := qp.dev.params.RDMA
	var payload []byte
	if len(wr.Inline) > 0 {
		payload = append([]byte(nil), wr.Inline...)
	} else if wr.Op != OpRead {
		payload = append([]byte(nil), wr.MR.buf[wr.Offset:wr.Offset+wr.Length]...)
	}

	// NIC engine work: descriptor processing plus the DMA read of the
	// payload (skipped for inline, which rode in with the doorbell).
	cost := p.NICProcess
	if wr.Op != OpRead {
		if len(wr.Inline) > 0 {
			cost -= p.InlineSave
			if cost < 0 {
				cost = 0
			}
		} else {
			cost += model.KB(p.DMAPerKB, len(payload))
		}
	}
	qp.dev.node.NIC.Acquire(cost, func() {
		msg := &wireMsg{srcQPN: qp.num, dstQPN: qp.remoteQPN, wrid: wr.ID}
		wire := len(payload)
		switch wr.Op {
		case OpSend:
			msg.kind = wireSend
			msg.data = payload
		case OpWrite:
			msg.kind = wireWrite
			msg.data = payload
			msg.rkey = wr.RemoteKey
			msg.roffset = wr.RemoteOffset
		case OpRead:
			msg.kind = wireReadReq
			msg.rkey = wr.RemoteKey
			msg.roffset = wr.RemoteOffset
			msg.length = wr.Length
			wire = ctrlWireBytes
			qp.pendingReads[wr.ID] = wr
		}
		msg.signaled = wr.Signaled
		msg.psn = qp.nextPSN
		qp.nextPSN++
		qp.pending[msg.psn] = &txEntry{msg: msg, wire: wire, op: wr.Op}
		qp.transmit(msg, wire)
		qp.txActive = false
		qp.pumpSend()
	})
}

const ctrlWireBytes = 60

// transmit puts a wire message on the fabric.
func (qp *QP) transmit(msg *wireMsg, wire int) {
	if wire < ctrlWireBytes {
		wire = ctrlWireBytes
	}
	err := qp.dev.node.Network().Send(qp.dev.node, qp.remoteNode, fabric.ProtoRDMA, msg, wire)
	if err != nil {
		qp.fatal(msg.wrid, msg.kind.op(), StatusQPError)
	}
}

// fatal moves the QP to the error state and reports the failure.
func (qp *QP) fatal(wrid uint64, op Opcode, status Status) {
	if qp.state == QPError {
		return
	}
	qp.state = QPError
	qp.cfg.SendCQ.push(CQE{WRID: wrid, QPN: qp.num, Op: op, Status: status})
}
