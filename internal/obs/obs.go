// Package obs is the observability layer of the simulated stack: causal
// per-request tracing, latency attribution and time-series sampling, all
// on the deterministic virtual clock.
//
// Because every component runs on one sim.Loop, tracing here is perfectly
// reproducible: the same (code, seed, config) triple produces
// byte-identical span streams, so latency attribution can be diffed PR
// over PR exactly like the BENCH_*.json throughput files already are.
//
// The central type is Tracer. A nil *Tracer is the disabled state: every
// method nil-checks and returns immediately, so instrumented components
// guard their call sites (`if r.tracer != nil { ... }`) and pay nothing —
// not even the request-key formatting — when observability is off.
//
// A Tracer does two jobs:
//
//   - Latency attribution: per-request milestone marks (arrive, invoke,
//     leader receipt, proposal, commit, return) are folded by Finish into
//     a strict phase partition — queue, order, net, merge, exec — whose
//     sum equals the end-to-end latency by construction (milestones are
//     clamped monotone, phases are the gaps). The per-phase recorders
//     feed the breakdown_* series of experiments E8/E9.
//
//   - Span/counter recording (Options.Spans): finished requests emit a
//     span tree, components emit extra spans (msgnet send-queue waits,
//     the COP executor's merge-waits) and samplers emit counter points,
//     all into fixed-size ring buffers exported as a Chrome trace-event
//     file (chrome://tracing, Perfetto) via WriteChromeTrace.
package obs

import (
	"rubin/internal/metrics"
	"rubin/internal/sim"
)

// DefaultSpanCap is the ring-buffer capacity used when Options.SpanCap is
// zero. When a run emits more spans (or samples) than this, the oldest
// are dropped — deterministically, since insertion order is virtual-time
// order.
const DefaultSpanCap = 1 << 16

// Options configures a Tracer.
type Options struct {
	// Spans retains span and counter events for Chrome-trace export. Off,
	// the tracer still aggregates the latency breakdown but stores no
	// per-event data beyond the in-flight milestone marks.
	Spans bool
	// SpanCap bounds the span and sample ring buffers (0 = DefaultSpanCap).
	SpanCap int
}

// Span is one completed interval on the virtual clock.
type Span struct {
	Run   int    // 1-based run (sweep point) index; 0 before any BeginRun
	Layer string // component tag: "client", "pbft", "msgnet", "reptor", ...
	Name  string // what happened, e.g. "order", "merge-wait"
	Node  string // where it happened ("" = request-level, no single node)
	Trace string // request key this span belongs to ("" = standalone)
	Start sim.Time
	End   sim.Time
}

// Sample is one counter observation on the virtual clock.
type Sample struct {
	Run   int
	Name  string // counter name, e.g. "msgnet_queue_bytes"
	Node  string
	At    sim.Time
	Value float64
}

// Milestone bits of reqMarks.set.
const (
	hasArrive = 1 << iota
	hasInvoke
	hasLeaderRecv
	hasPropose
	hasCommit
	hasReturn
	hasReadServe
)

// reqMarks holds the in-flight milestones of one request. Marks are
// first-wins: the simulation loop fires events in virtual-time order, so
// the first call (e.g. the first replica to commit) is the earliest.
type reqMarks struct {
	arrive, invoke, leaderRecv, propose, commit, ret sim.Time
	readServe                                        sim.Time
	set                                              uint8
}

// Tracer collects milestone marks, spans and samples for one benchmark
// process. It is not safe for concurrent use — like everything else in
// the repository it lives on the single-threaded simulation loop.
type Tracer struct {
	spansOn bool

	marks map[string]*reqMarks

	queue, order, net, merge, exec, total *metrics.Recorder
	mergeWait                             *metrics.Recorder
	prepareWait, commitWait               *metrics.Recorder
	readServed                            int

	runs    []string
	spans   *ring[Span]
	samples *ring[Sample]
}

// New creates an enabled tracer. The disabled state is a nil *Tracer, not
// an Options combination: nil is what makes the off path a true no-op.
func New(opts Options) *Tracer {
	t := &Tracer{
		spansOn:     opts.Spans,
		marks:       make(map[string]*reqMarks),
		queue:       metrics.NewRecorder(),
		order:       metrics.NewRecorder(),
		net:         metrics.NewRecorder(),
		merge:       metrics.NewRecorder(),
		exec:        metrics.NewRecorder(),
		total:       metrics.NewRecorder(),
		mergeWait:   metrics.NewRecorder(),
		prepareWait: metrics.NewRecorder(),
		commitWait:  metrics.NewRecorder(),
	}
	if opts.Spans {
		cap := opts.SpanCap
		if cap <= 0 {
			cap = DefaultSpanCap
		}
		t.spans = newRing[Span](cap)
		t.samples = newRing[Sample](cap)
	}
	return t
}

// SpansEnabled reports whether span/counter recording is on. Components
// use it to skip the bookkeeping (map writes, label formatting) that only
// exists to feed the exporter.
func (t *Tracer) SpansEnabled() bool { return t != nil && t.spansOn }

// BeginRun starts a new run (one sweep point of an experiment): it resets
// the breakdown aggregation and the in-flight marks, and gives subsequent
// spans and samples a fresh process id in the exported trace. The label
// becomes the process name in chrome://tracing.
func (t *Tracer) BeginRun(label string) {
	if t == nil {
		return
	}
	t.runs = append(t.runs, label)
	t.marks = make(map[string]*reqMarks)
	t.queue.Reset()
	t.order.Reset()
	t.net.Reset()
	t.merge.Reset()
	t.exec.Reset()
	t.total.Reset()
	t.mergeWait.Reset()
	t.prepareWait.Reset()
	t.commitWait.Reset()
	t.readServed = 0
}

// run returns the current 1-based run index.
func (t *Tracer) run() int { return len(t.runs) }

// marksFor returns (creating if needed) the milestone record of a request.
func (t *Tracer) marksFor(key string) *reqMarks {
	m := t.marks[key]
	if m == nil {
		m = &reqMarks{}
		t.marks[key] = m
	}
	return m
}

// MarkArrive records when the operation entered the system — before the
// invoke when it queued behind the user's previous operation (open loop).
func (t *Tracer) MarkArrive(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasArrive == 0 {
		m.arrive, m.set = at, m.set|hasArrive
	}
}

// MarkInvoke records when the client submitted the request to the group.
func (t *Tracer) MarkInvoke(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasInvoke == 0 {
		m.invoke, m.set = at, m.set|hasInvoke
	}
}

// MarkLeaderRecv records the leader accepting the request for batching.
func (t *Tracer) MarkLeaderRecv(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasLeaderRecv == 0 {
		m.leaderRecv, m.set = at, m.set|hasLeaderRecv
	}
}

// MarkPropose records the instant the leader's proposal carrying this
// request left (after the ordering-CPU service completed).
func (t *Tracer) MarkPropose(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasPropose == 0 {
		m.propose, m.set = at, m.set|hasPropose
	}
}

// MarkCommit records the earliest replica committing-and-executing the
// request (the instant its reply leaves; first-wins keeps the earliest).
func (t *Tracer) MarkCommit(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasCommit == 0 {
		m.commit, m.set = at, m.set|hasCommit
	}
}

// MarkReadServe records the earliest replica answering a fast-path read
// tentatively (no agreement round; first-wins keeps the earliest). It
// slots between propose and commit in the milestone order: for a
// fast-path read neither leader-recv, propose nor commit ever fire, so
// the clamped partition attributes the whole server-side interval to net
// plus this serve point — and the sum stays exact because the phases are
// still the gaps between monotone milestones.
func (t *Tracer) MarkReadServe(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasReadServe == 0 {
		m.readServe, m.set = at, m.set|hasReadServe
	}
}

// MarkReturn records the client accepting its F+1 reply quorum.
func (t *Tracer) MarkReturn(key string, at sim.Time) {
	if t == nil {
		return
	}
	m := t.marksFor(key)
	if m.set&hasReturn == 0 {
		m.ret, m.set = at, m.set|hasReturn
	}
}

// clampMark returns the milestone if it is set and not before floor, and
// floor otherwise — the monotone clamp that makes the phase partition sum
// exactly to the end-to-end latency even when a milestone was never
// observed (e.g. a request re-proposed through a view change).
func clampMark(v sim.Time, has bool, floor sim.Time) sim.Time {
	if !has || v < floor {
		return floor
	}
	return v
}

// Finish finalizes one request: its milestones are clamped monotone
// (arrive <= invoke <= leader-recv <= propose <= commit/exec <= return),
// folded into the breakdown recorders when the operation was measured,
// and — with span recording on — emitted as a span tree. The marks entry
// is dropped, so a long -trace run's memory stays bounded by the requests
// actually in flight. Finishing an unknown key is a no-op.
func (t *Tracer) Finish(key string, measured bool) {
	if t == nil {
		return
	}
	m := t.marks[key]
	if m == nil {
		return
	}
	delete(t.marks, key)
	if m.set&(hasArrive|hasInvoke) == 0 {
		return // nothing client-side was ever marked; unattributable
	}
	a := m.arrive
	if m.set&hasArrive == 0 {
		a = m.invoke
	}
	i := clampMark(m.invoke, m.set&hasInvoke != 0, a)
	s := clampMark(m.leaderRecv, m.set&hasLeaderRecv != 0, i)
	p := clampMark(m.propose, m.set&hasPropose != 0, s)
	rs := clampMark(m.readServe, m.set&hasReadServe != 0, p)
	c := clampMark(m.commit, m.set&hasCommit != 0, rs)
	x := c // exec completes at the commit instant; see Summary.Exec
	r := clampMark(m.ret, m.set&hasReturn != 0, x)
	if measured {
		t.queue.Record(i - a)
		t.order.Record(p - s)
		t.net.Record((s - i) + (c - p) + (r - x))
		t.merge.Record(0) // COP's merge barrier is off the reply path
		t.exec.Record(x - c)
		t.total.Record(r - a)
		if m.set&hasReadServe != 0 {
			t.readServed++
		}
	}
	if !t.spansOn {
		return
	}
	run := t.run()
	t.spans.push(Span{Run: run, Layer: "client", Name: "request", Trace: key, Start: a, End: r})
	sub := []Span{
		{Layer: "client", Name: "queue", Start: a, End: i},
		{Layer: "msgnet", Name: "req-net", Start: i, End: s},
		{Layer: "pbft", Name: "order", Start: s, End: p},
		{Layer: "pbft", Name: "read-serve", Start: p, End: rs},
		{Layer: "pbft", Name: "agree", Start: rs, End: c},
		{Layer: "msgnet", Name: "reply-net", Start: x, End: r},
	}
	for _, sp := range sub {
		if sp.End > sp.Start {
			sp.Run, sp.Trace = run, key
			t.spans.push(sp)
		}
	}
}

// Span records one standalone interval (when span recording is on).
func (t *Tracer) Span(layer, name, node, trace string, start, end sim.Time) {
	if t == nil || !t.spansOn {
		return
	}
	t.spans.push(Span{Run: t.run(), Layer: layer, Name: name, Node: node, Trace: trace, Start: start, End: end})
}

// Sample records one counter observation (when span recording is on).
func (t *Tracer) Sample(name, node string, at sim.Time, value float64) {
	if t == nil || !t.spansOn {
		return
	}
	t.samples.push(Sample{Run: t.run(), Name: name, Node: node, At: at, Value: value})
}

// RecordMergeWait feeds one committed-to-merged delay of the COP
// executor. The merge barrier is off the reply path (replies leave at
// commit time), so this wait is reported as its own series rather than a
// slice of the request-latency partition.
func (t *Tracer) RecordMergeWait(d sim.Time) {
	if t == nil {
		return
	}
	t.mergeWait.Record(d)
}

// RecordPrepareWait feeds the PREPARE phase duration of one cross-shard
// transaction: dispatching the prepares until the last participant's
// vote quorum lands at the coordinator.
func (t *Tracer) RecordPrepareWait(d sim.Time) {
	if t == nil {
		return
	}
	t.prepareWait.Record(d)
}

// RecordCommitWait feeds the decision phase duration of one cross-shard
// transaction: broadcasting COMMIT/ABORT until the last participant
// acknowledged applying it.
func (t *Tracer) RecordCommitWait(d sim.Time) {
	if t == nil {
		return
	}
	t.commitWait.Record(d)
}

// Summary is the per-run latency attribution: mean widths of the phase
// partition over the measured requests. Queue+Order+Net+Merge+Exec ==
// Total by construction (up to float rounding in downstream conversions).
//
// Two phases are structurally zero in the current stack and are reported
// anyway so the accounting is visibly exhaustive rather than silently
// incomplete: Exec, because the cost model charges execution CPU
// asynchronously (replies leave at the commit instant, execution time
// surfaces as node CPU utilization, not reply delay), and Merge, because
// COP's merge barrier orders the global log behind the replies rather
// than in front of them — the observed merge-wait is in MergeWait.
type Summary struct {
	Count                                 int
	Queue, Order, Net, Merge, Exec, Total sim.Time
	MergeWait                             sim.Time
	MergeCount                            int
	// 2PC phase means of the shard layer's cross-shard transactions (zero
	// when the run commits nothing across shards): PREPARE dispatch to
	// vote quorum, and decision broadcast to applied acknowledgment.
	PrepareWait, CommitWait sim.Time
	TxnCount                int
	// FastCount is how many measured requests carried a read-serve
	// milestone — i.e. were answered by the agreement-bypassing read
	// fast path rather than the ordered pipeline.
	FastCount int
}

// Summary returns the breakdown means of the current run.
func (t *Tracer) Summary() Summary {
	if t == nil {
		return Summary{}
	}
	return Summary{
		Count: t.total.Count(),
		Queue: t.queue.Mean(), Order: t.order.Mean(), Net: t.net.Mean(),
		Merge: t.merge.Mean(), Exec: t.exec.Mean(), Total: t.total.Mean(),
		MergeWait:   t.mergeWait.Mean(),
		MergeCount:  t.mergeWait.Count(),
		PrepareWait: t.prepareWait.Mean(),
		CommitWait:  t.commitWait.Mean(),
		TxnCount:    t.prepareWait.Count(),
		FastCount:   t.readServed,
	}
}

// RunCount returns how many measurement runs recorded into this tracer.
func (t *Tracer) RunCount() int {
	if t == nil {
		return 0
	}
	return len(t.runs)
}

// SpanCount returns the spans currently retained (tests, export stats).
func (t *Tracer) SpanCount() int {
	if t == nil || t.spans == nil {
		return 0
	}
	return t.spans.len()
}

// SampleCount returns the samples currently retained.
func (t *Tracer) SampleCount() int {
	if t == nil || t.samples == nil {
		return 0
	}
	return t.samples.len()
}

// DroppedSpans returns how many spans the ring evicted.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil || t.spans == nil {
		return 0
	}
	return t.spans.dropped()
}
