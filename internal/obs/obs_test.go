package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"rubin/internal/sim"
)

// A nil tracer must be safe to call through every method — that is the
// disabled state the hot path relies on.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.BeginRun("x")
	tr.MarkArrive("k", 1)
	tr.MarkInvoke("k", 2)
	tr.MarkLeaderRecv("k", 3)
	tr.MarkPropose("k", 4)
	tr.MarkCommit("k", 5)
	tr.MarkReturn("k", 6)
	tr.Finish("k", true)
	tr.Span("l", "n", "node", "", 1, 2)
	tr.Sample("c", "node", 1, 2)
	tr.RecordMergeWait(7)
	if tr.SpansEnabled() {
		t.Fatal("nil tracer reports spans enabled")
	}
	if s := tr.Summary(); s.Count != 0 || s.Total != 0 {
		t.Fatalf("nil tracer summary not zero: %+v", s)
	}
	if tr.SpanCount() != 0 || tr.SampleCount() != 0 || tr.DroppedSpans() != 0 {
		t.Fatal("nil tracer reports retained events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil export: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil export is not valid JSON: %s", buf.String())
	}
}

// The phase partition must sum exactly to the end-to-end latency.
func TestBreakdownPartitionSums(t *testing.T) {
	tr := New(Options{})
	tr.BeginRun("run")
	mark := func(key string, a, i, s, p, c, r sim.Time) {
		tr.MarkArrive(key, a)
		tr.MarkInvoke(key, i)
		tr.MarkLeaderRecv(key, s)
		tr.MarkPropose(key, p)
		tr.MarkCommit(key, c)
		tr.MarkReturn(key, r)
		tr.Finish(key, true)
	}
	mark("a", 0, 10, 30, 70, 150, 310)
	mark("b", 5, 5, 45, 125, 285, 605)
	s := tr.Summary()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if got := s.Queue + s.Order + s.Net + s.Merge + s.Exec; got != s.Total {
		t.Fatalf("phase sum %d != total %d", got, s.Total)
	}
	// Request a: queue 10, order 40, net 20+80+160=260, total 310.
	// Request b: queue 0, order 80, net 40+160+320=520, total 600.
	if s.Queue != 5 || s.Order != 60 || s.Net != 390 || s.Total != 455 {
		t.Fatalf("unexpected means: %+v", s)
	}
	if s.Merge != 0 || s.Exec != 0 {
		t.Fatalf("merge/exec should be structurally zero: %+v", s)
	}
}

// Missing milestones clamp onto their predecessor so the partition still
// sums to the end-to-end latency.
func TestFinishClampsMissingAndRetrogradeMarks(t *testing.T) {
	tr := New(Options{})
	tr.BeginRun("run")
	// No leader-recv/propose marks (e.g. lost through a view change), and
	// a commit mark that sits before invoke (impossible, but the clamp
	// must still hold the ordering).
	tr.MarkArrive("k", 100)
	tr.MarkInvoke("k", 120)
	tr.MarkCommit("k", 50)
	tr.MarkReturn("k", 200)
	tr.Finish("k", true)
	s := tr.Summary()
	if s.Total != 100 {
		t.Fatalf("total = %d, want 100", s.Total)
	}
	if got := s.Queue + s.Order + s.Net + s.Merge + s.Exec; got != s.Total {
		t.Fatalf("phase sum %d != total %d", got, s.Total)
	}
	if s.Queue != 20 || s.Net != 80 {
		t.Fatalf("clamped breakdown wrong: %+v", s)
	}
}

func TestFinishUnknownKeyAndUnmeasured(t *testing.T) {
	tr := New(Options{})
	tr.BeginRun("run")
	tr.Finish("never-marked", true) // must not panic or record
	tr.MarkArrive("warm", 0)
	tr.MarkReturn("warm", 10)
	tr.Finish("warm", false) // warmup: marks consumed, nothing recorded
	if s := tr.Summary(); s.Count != 0 {
		t.Fatalf("unmeasured finish recorded: %+v", s)
	}
	// The marks entry is gone: re-finishing is a no-op.
	tr.Finish("warm", true)
	if s := tr.Summary(); s.Count != 0 {
		t.Fatalf("stale finish recorded: %+v", s)
	}
}

func TestBeginRunResetsAggregation(t *testing.T) {
	tr := New(Options{})
	tr.BeginRun("one")
	tr.MarkArrive("k", 0)
	tr.MarkReturn("k", 100)
	tr.Finish("k", true)
	tr.RecordMergeWait(50)
	tr.BeginRun("two")
	if s := tr.Summary(); s.Count != 0 || s.MergeCount != 0 {
		t.Fatalf("BeginRun did not reset: %+v", s)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := newRing[int](3)
	for i := 1; i <= 5; i++ {
		r.push(i)
	}
	if r.len() != 3 || r.dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", r.len(), r.dropped())
	}
	var got []int
	r.each(func(v int) { got = append(got, v) })
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("retained %v, want [3 4 5]", got)
	}
}

func TestTracerSpanCapOverflow(t *testing.T) {
	tr := New(Options{Spans: true, SpanCap: 4})
	tr.BeginRun("run")
	for i := 0; i < 10; i++ {
		tr.Span("l", "s", "n", "", sim.Time(i), sim.Time(i+1))
	}
	if tr.SpanCount() != 4 || tr.DroppedSpans() != 6 {
		t.Fatalf("spans=%d dropped=%d, want 4/6", tr.SpanCount(), tr.DroppedSpans())
	}
}

// Samplers must not keep the loop alive: once only sampler ticks remain,
// every sampler declines to re-arm and the loop drains — including with
// two samplers that could otherwise sustain each other.
func TestSamplerGroupTerminates(t *testing.T) {
	loop := sim.NewLoop(1)
	g := NewSamplerGroup(loop)
	var a, b int
	g.Every(10, func(sim.Time) { a++ })
	g.Every(15, func(sim.Time) { b++ })
	// Real work until t=100.
	var work func()
	step := 0
	work = func() {
		step++
		if step < 10 {
			loop.After(10, work)
		}
	}
	loop.After(10, work)
	loop.Run()
	if loop.Pending() != 0 {
		t.Fatalf("loop still has %d events", loop.Pending())
	}
	if a < 9 || b < 6 {
		t.Fatalf("samplers under-fired: a=%d b=%d", a, b)
	}
	if loop.Now() > 200 {
		t.Fatalf("samplers overstayed: now=%v", loop.Now())
	}
}

// The exported trace must be stable byte-for-byte across identical runs
// and be valid JSON.
func TestChromeTraceDeterministicAndValid(t *testing.T) {
	build := func() []byte {
		tr := New(Options{Spans: true})
		tr.BeginRun("point-1")
		tr.MarkArrive("1/1", 1000)
		tr.MarkInvoke("1/1", 1500)
		tr.MarkLeaderRecv("1/1", 2500)
		tr.MarkPropose("1/1", 4000)
		tr.MarkCommit("1/1", 9000)
		tr.MarkReturn("1/1", 12345)
		tr.Finish("1/1", true)
		tr.Span("msgnet", "sendq bulk", "r0->r1", "", 2000, 2400)
		tr.Sample("msgnet_queue_bytes", "r0", 5000, 4096)
		tr.BeginRun("point-2")
		tr.Span("reptor", "merge-wait", "r2", "", 100, 900)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("export: %v", err)
		}
		return buf.Bytes()
	}
	one, two := build(), build()
	if !bytes.Equal(one, two) {
		t.Fatalf("trace export not deterministic:\n%s\n---\n%s", one, two)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(one, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, one)
	}
	var begins, ends, counters, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			begins++
		case "e":
			ends++
		case "C":
			counters++
		case "M":
			metas++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced async events: %d begins, %d ends", begins, ends)
	}
	if counters != 1 {
		t.Fatalf("counters = %d, want 1", counters)
	}
	if metas < 3 { // two process names + at least one thread name
		t.Fatalf("metadata events = %d, want >= 3", metas)
	}
}
