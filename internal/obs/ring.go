package obs

// ring is a fixed-capacity FIFO that overwrites its oldest element when
// full. Spans and samples are pushed in virtual-time order, so eviction
// deterministically drops the oldest events first — a bounded trace of a
// long run keeps its tail, which is what a latency investigation wants.
type ring[T any] struct {
	buf   []T
	start int
	n     int
	drop  uint64
}

func newRing[T any](cap int) *ring[T] {
	if cap < 1 {
		cap = 1
	}
	return &ring[T]{buf: make([]T, cap)}
}

func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
	r.drop++
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) dropped() uint64 { return r.drop }

// each visits the retained elements oldest-first.
func (r *ring[T]) each(fn func(T)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.start+i)%len(r.buf)])
	}
}
