package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"rubin/internal/sim"
)

// WriteChromeTrace writes the retained spans and samples as a Chrome
// trace-event JSON document (the format chrome://tracing and Perfetto
// load directly).
//
// Mapping: each run (sweep point) is a process whose name is the
// BeginRun label; each simulated node is a thread, numbered in order of
// first appearance; request-scoped spans are async begin/end pairs keyed
// by the request key, so the concurrent requests of one run nest as
// separate tracks; samples are counter events.
//
// The output is deterministic: events are emitted in ring order (virtual
// time), thread ids depend only on event order, and timestamps are
// formatted with integer arithmetic — two runs of the same seed produce
// byte-identical files, which the CI determinism job diffs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	e := &traceEmitter{bw: bw, tids: make(map[string]int)}
	if t != nil {
		// Name every run's process up front, then assign thread ids in
		// first-appearance order across both event streams.
		for i, label := range t.runs {
			e.meta(i+1, 0, "process_name", label)
		}
		if t.spans != nil {
			t.spans.each(func(sp Span) {
				tid := e.tid(sp.Run, sp.Node)
				id := sp.Trace
				if id == "" {
					e.seq++
					id = "s" + strconv.Itoa(e.seq)
				}
				e.event(`{"name":%s,"cat":%s,"ph":"b","id":%s,"pid":%d,"tid":%d,"ts":%s}`,
					strconv.Quote(sp.Name), strconv.Quote(sp.Layer), strconv.Quote(id), sp.Run, tid, tsMicros(sp.Start))
				e.event(`{"name":%s,"cat":%s,"ph":"e","id":%s,"pid":%d,"tid":%d,"ts":%s}`,
					strconv.Quote(sp.Name), strconv.Quote(sp.Layer), strconv.Quote(id), sp.Run, tid, tsMicros(sp.End))
			})
		}
		if t.samples != nil {
			t.samples.each(func(s Sample) {
				name := s.Name
				if s.Node != "" {
					name += "." + s.Node
				}
				e.event(`{"name":%s,"ph":"C","pid":%d,"tid":0,"ts":%s,"args":{"value":%s}}`,
					strconv.Quote(name), s.Run, tsMicros(s.At),
					strconv.FormatFloat(s.Value, 'g', -1, 64))
			})
		}
	}
	if e.err != nil {
		return e.err
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// traceEmitter tracks the comma state, thread-id table and first error of
// one export.
type traceEmitter struct {
	bw    *bufio.Writer
	tids  map[string]int
	wrote bool
	seq   int
	err   error
}

// tid returns the thread id of (run, node), assigning ids in
// first-appearance order. Node "" (request-level spans) is thread 0.
func (e *traceEmitter) tid(run int, node string) int {
	if node == "" {
		return 0
	}
	key := strconv.Itoa(run) + "/" + node
	if id, ok := e.tids[key]; ok {
		return id
	}
	id := len(e.tids) + 1
	e.tids[key] = id
	e.meta(run, id, "thread_name", node)
	return id
}

func (e *traceEmitter) meta(pid, tid int, kind, name string) {
	e.event(`{"name":%s,"ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		strconv.Quote(kind), pid, tid, strconv.Quote(name))
}

func (e *traceEmitter) event(format string, args ...any) {
	if e.err != nil {
		return
	}
	if e.wrote {
		if _, e.err = e.bw.WriteString(","); e.err != nil {
			return
		}
	}
	e.wrote = true
	_, e.err = fmt.Fprintf(e.bw, format, args...)
}

// tsMicros renders a virtual-nanosecond instant as the microseconds the
// trace format expects, using integer arithmetic so the text is exact
// (no float formatting in the determinism-diffed output).
func tsMicros(t sim.Time) string {
	return fmt.Sprintf("%d.%03d", t/1000, t%1000)
}
