package obs

import "rubin/internal/sim"

// SamplerGroup runs periodic observation callbacks on the simulation loop
// without keeping the simulation alive: benchmarks run their loop until
// the event queue drains, so a naively re-arming ticker would never let
// it drain. Each tick re-arms only while the loop holds events other than
// the group's own pending ticks — the group counts its live timers and
// compares against Loop.Pending, which also keeps multiple samplers from
// mutually sustaining each other forever.
//
// Callbacks must only observe (read counters, record samples): they run
// as ordinary loop events, so mutating simulation state from one would
// perturb the run being measured.
type SamplerGroup struct {
	loop *sim.Loop
	live int
}

// NewSamplerGroup creates a sampler group on the loop.
func NewSamplerGroup(loop *sim.Loop) *SamplerGroup {
	return &SamplerGroup{loop: loop}
}

// Every schedules fn to run each interval of virtual time, starting one
// interval from now, until only sampler ticks remain in the loop.
func (g *SamplerGroup) Every(interval sim.Time, fn func(now sim.Time)) {
	if interval <= 0 {
		panic("obs: sampler interval must be positive")
	}
	var tick func()
	tick = func() {
		g.live--
		fn(g.loop.Now())
		if g.loop.Pending() > g.live {
			g.live++
			g.loop.After(interval, tick)
		}
	}
	g.live++
	g.loop.After(interval, tick)
}
