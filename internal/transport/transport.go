// Package transport is the replica communication stack: framed,
// message-oriented, batched connections with two interchangeable backends —
// the Java-NIO-style selector over simulated TCP (package nio) and RUBIN
// over simulated RDMA (package rubin).
//
// This is the integration point the paper describes: Reptor's protocol
// layer talks to exactly this interface, so swapping the NIO selector for
// RUBIN requires no protocol changes (Section III). Both backends coalesce
// up to Options.Batch messages per syscall or doorbell, matching the
// batching of the Figure 4 measurement.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/nio"
	"rubin/internal/tcpsim"
)

// Errors returned by transport operations.
var (
	ErrTooBig = errors.New("transport: message exceeds MaxMessage")
	ErrClosed = errors.New("transport: connection closed")
)

// Kind identifies a backend.
type Kind string

// Available backends.
const (
	KindTCP  Kind = "tcp-nio"
	KindRDMA Kind = "rdma-rubin"
)

// Options tunes a stack.
type Options struct {
	// Batch is how many queued messages are coalesced per syscall
	// (TCP) or doorbell (RDMA). The paper's Figure 4 uses 10.
	Batch int
	// MaxMessage caps a single message's size (and sizes the RDMA
	// receive buffers).
	MaxMessage int
	// WRs is the RDMA work-request pool depth per connection.
	WRs int
}

// DefaultOptions returns the configuration used by the Figure 4
// experiment.
func DefaultOptions() Options {
	return Options{Batch: 10, MaxMessage: 256 << 10, WRs: 64}
}

func (o Options) validate() error {
	if o.Batch < 1 || o.MaxMessage < 1 || o.WRs < 1 {
		return fmt.Errorf("transport: invalid options %+v", o)
	}
	return nil
}

// Conn is one framed, message-oriented connection.
type Conn interface {
	// Send queues one message for delivery. Messages arrive whole, in
	// order, exactly once (the simulated fabrics are reliable).
	Send(msg []byte) error
	// OnMessage installs the delivery callback. Must be set before
	// messages arrive; delivery without a callback queues internally.
	OnMessage(fn func(msg []byte))
	// OnClose installs a callback for connection teardown.
	OnClose(fn func())
	// Unsent reports how many messages Send has accepted but the backend
	// has not yet handed to the wire (TCP: frames waiting for socket
	// space; RDMA: messages spilled past the work-request pool). Layers
	// above use it as the substrate backpressure signal.
	Unsent() int
	// OnDrain installs a callback fired whenever a previously backlogged
	// connection's unsent queue empties — the writability edge that pairs
	// with Unsent.
	OnDrain(fn func())
	// Peer returns the remote node.
	Peer() *fabric.Node
	// Close tears the connection down.
	Close()
	// Kind reports the backend.
	Kind() Kind
}

// Stack accepts and originates connections on one node.
type Stack interface {
	// Listen accepts inbound connections on a port.
	Listen(port int, accept func(Conn)) error
	// Dial connects to a port on a remote node.
	Dial(remote *fabric.Node, port int, done func(Conn, error))
	// Node returns the fabric node this stack runs on.
	Node() *fabric.Node
	// Kind reports the backend.
	Kind() Kind
}

// NewStack creates a stack of the requested kind on a node. TCP stacks
// require the node to have no other TCP stack; RDMA stacks open the
// node's RNIC.
func NewStack(kind Kind, node *fabric.Node, opts Options) (Stack, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	switch kind {
	case KindTCP:
		return newTCPStack(node, opts), nil
	case KindRDMA:
		return newRDMAStack(node, opts), nil
	default:
		return nil, fmt.Errorf("transport: unknown kind %q", kind)
	}
}

// ---------------------------------------------------------------------------
// TCP / Java-NIO backend
// ---------------------------------------------------------------------------

type tcpStack struct {
	node *fabric.Node
	opts Options
	st   *tcpsim.Stack
	sel  *nio.Selector
}

func newTCPStack(node *fabric.Node, opts Options) *tcpStack {
	st := tcpsim.NewStack(node)
	s := &tcpStack{node: node, opts: opts, st: st, sel: nio.NewSelector(st)}
	s.sel.Select(s.dispatch)
	return s
}

func (s *tcpStack) Node() *fabric.Node { return s.node }
func (s *tcpStack) Kind() Kind         { return KindTCP }

func (s *tcpStack) Listen(port int, accept func(Conn)) error {
	ssc, err := nio.ListenSocket(s.st, port)
	if err != nil {
		return err
	}
	s.sel.Register(ssc, nio.OpAccept, accept)
	return nil
}

func (s *tcpStack) Dial(remote *fabric.Node, port int, done func(Conn, error)) {
	s.st.Dial(remote, port, func(c *tcpsim.Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		tc := s.wrap(nio.WrapConn(c))
		done(tc, nil)
	})
}

// wrap builds the framed connection around an established socket channel
// and registers it for reads.
func (s *tcpStack) wrap(ch *nio.SocketChannel) *tcpConn {
	tc := &tcpConn{stack: s, conn: ch.Conn(), ch: ch, readBuf: make([]byte, 64<<10)}
	tc.key = s.sel.Register(ch, nio.OpRead, tc)
	return tc
}

// dispatch is the stack's single selector loop.
func (s *tcpStack) dispatch(keys []*nio.SelectionKey) {
	for _, k := range keys {
		switch ch := k.Channel().(type) {
		case *nio.ServerSocketChannel:
			if k.Ready()&nio.OpAccept != 0 {
				accept, _ := k.Attachment().(func(Conn))
				for {
					sc := ch.Accept()
					if sc == nil {
						break
					}
					tc := s.wrap(sc)
					if accept != nil {
						accept(tc)
					}
				}
			}
		case *nio.SocketChannel:
			tc, _ := k.Attachment().(*tcpConn)
			if tc == nil {
				k.ResetReady(k.Ready())
				continue
			}
			if k.Ready()&nio.OpRead != 0 {
				tc.drain()
			}
			if k.Ready()&nio.OpWrite != 0 {
				k.ResetReady(nio.OpWrite)
				k.SetInterest(nio.OpRead)
				tc.flush()
			}
		}
	}
}

// tcpConn frames messages with a 4-byte big-endian length prefix and
// coalesces up to Batch messages per write syscall.
type tcpConn struct {
	stack   *tcpStack
	conn    *tcpsim.Conn
	ch      *nio.SocketChannel
	key     *nio.SelectionKey
	onMsg   func([]byte)
	onClose func()
	onDrain func()
	closed  bool

	// Reassembly state.
	readBuf []byte
	acc     []byte
	inbox   [][]byte

	// Send side.
	sendQ      [][]byte
	flushArmed bool
}

var _ Conn = (*tcpConn)(nil)

func (c *tcpConn) Kind() Kind         { return KindTCP }
func (c *tcpConn) Peer() *fabric.Node { return c.conn.RemoteNode() }

func (c *tcpConn) OnMessage(fn func([]byte)) {
	c.onMsg = fn
	for len(c.inbox) > 0 && c.onMsg != nil {
		m := c.inbox[0]
		c.inbox = c.inbox[1:]
		c.onMsg(m)
	}
}

func (c *tcpConn) OnClose(fn func()) { c.onClose = fn }

func (c *tcpConn) OnDrain(fn func()) { c.onDrain = fn }

func (c *tcpConn) Unsent() int { return len(c.sendQ) }

func (c *tcpConn) Send(msg []byte) error {
	if c.closed {
		return ErrClosed
	}
	if len(msg) > c.stack.opts.MaxMessage {
		return fmt.Errorf("%w: %d", ErrTooBig, len(msg))
	}
	framed := make([]byte, 4+len(msg))
	binary.BigEndian.PutUint32(framed, uint32(len(msg)))
	copy(framed[4:], msg)
	c.sendQ = append(c.sendQ, framed)
	c.armFlush()
	return nil
}

// armFlush schedules one coalesced write at the end of the current event
// turn (the batching of the Figure 4 experiment).
func (c *tcpConn) armFlush() {
	if c.flushArmed || c.closed {
		return
	}
	c.flushArmed = true
	c.conn.LocalNode().Loop().Post(func() {
		c.flushArmed = false
		c.flush()
	})
}

func (c *tcpConn) flush() {
	wroteAny := false
	for len(c.sendQ) > 0 && !c.closed {
		n := len(c.sendQ)
		if n > c.stack.opts.Batch {
			n = c.stack.opts.Batch
		}
		var chunk []byte
		for _, f := range c.sendQ[:n] {
			chunk = append(chunk, f...)
		}
		wrote, err := c.conn.Write(chunk)
		if err != nil {
			c.teardown()
			return
		}
		if wrote < len(chunk) {
			// Socket buffer full: keep the unwritten tail and resume
			// on OpWrite readiness.
			c.sendQ = c.sendQ[n:]
			if wrote > 0 {
				rest := make([]byte, len(chunk)-wrote)
				copy(rest, chunk[wrote:])
				c.sendQ = append([][]byte{rest}, c.sendQ...)
			} else {
				c.sendQ = append([][]byte{chunk}, c.sendQ...)
			}
			if c.ch != nil {
				c.keyInterest(nio.OpRead | nio.OpWrite)
			}
			return
		}
		c.sendQ = c.sendQ[n:]
		wroteAny = true
	}
	if wroteAny && len(c.sendQ) == 0 && !c.closed && c.onDrain != nil {
		c.onDrain()
	}
}

func (c *tcpConn) keyInterest(ops nio.InterestOps) {
	// The transport registered the channel; adjust via its key through
	// the selector by re-registering interest on readiness changes.
	if c.key != nil {
		c.key.SetInterest(ops)
	}
}

func (c *tcpConn) drain() {
	if c.closed {
		return
	}
	if c.ch.Closed() {
		c.teardown()
		return
	}
	for {
		n, err := c.ch.Read(c.readBuf)
		if err != nil {
			c.teardown()
			return
		}
		if n == 0 {
			break
		}
		c.acc = append(c.acc, c.readBuf[:n]...)
	}
	params := c.stack.node.Network().Params()
	for {
		if len(c.acc) < 4 {
			break
		}
		size := int(binary.BigEndian.Uint32(c.acc))
		if len(c.acc) < 4+size {
			break
		}
		msg := make([]byte, size)
		copy(msg, c.acc[4:4+size])
		c.acc = c.acc[4+size:]
		// Deframing plus handler dispatch costs real selector-thread
		// time per message.
		c.stack.st.AppThread().Delay(params.TCP.MsgHandle)
		if c.onMsg != nil {
			c.onMsg(msg)
		} else {
			c.inbox = append(c.inbox, msg)
		}
	}
}

func (c *tcpConn) Close() {
	if c.closed {
		return
	}
	c.conn.Close()
	c.teardown()
}

func (c *tcpConn) teardown() {
	if c.closed {
		return
	}
	c.closed = true
	if c.key != nil {
		c.key.Cancel()
	}
	if c.onClose != nil {
		c.onClose()
	}
}
