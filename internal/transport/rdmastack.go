package transport

import (
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/rdma"
	"rubin/internal/rubin"
)

// rdmaStack is the RUBIN backend: one RDMA device and one RUBIN selector
// per node, all connections multiplexed on the selector's single thread —
// the drop-in replacement for the NIO stack that the paper integrates into
// Reptor.
type rdmaStack struct {
	node *fabric.Node
	opts Options
	dev  *rdma.Device
	sel  *rubin.Selector
}

func newRDMAStack(node *fabric.Node, opts Options) *rdmaStack {
	dev := rdma.OpenDevice(node)
	s := &rdmaStack{node: node, opts: opts, dev: dev, sel: rubin.NewSelector(dev)}
	s.sel.Select(s.dispatch)
	return s
}

func (s *rdmaStack) Node() *fabric.Node { return s.node }
func (s *rdmaStack) Kind() Kind         { return KindRDMA }

// chanConfig sizes RUBIN channels from the stack options.
func (s *rdmaStack) chanConfig() rubin.Config {
	cfg := rubin.DefaultConfig(s.node.Network().Params())
	cfg.SendWRs = s.opts.WRs
	cfg.RecvWRs = s.opts.WRs
	cfg.BufferSize = s.opts.MaxMessage
	cfg.PostBatch = s.opts.Batch
	return cfg
}

func (s *rdmaStack) Listen(port int, accept func(Conn)) error {
	srv, err := rubin.Listen(s.dev, port, s.chanConfig())
	if err != nil {
		return err
	}
	s.sel.Register(srv, rubin.OpConnect, accept)
	return nil
}

func (s *rdmaStack) Dial(remote *fabric.Node, port int, done func(Conn, error)) {
	_, err := rubin.Connect(s.dev, remote, port, s.chanConfig(), func(ch *rubin.Channel, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(s.wrap(ch), nil)
	})
	if err != nil {
		done(nil, err)
	}
}

func (s *rdmaStack) wrap(ch *rubin.Channel) *rdmaConn {
	rc := &rdmaConn{stack: s, ch: ch}
	rc.key = s.sel.Register(ch, rubin.OpReceive, rc)
	return rc
}

// dispatch is the stack's single RUBIN selector loop.
func (s *rdmaStack) dispatch(keys []*rubin.SelectionKey) {
	for _, k := range keys {
		switch ch := k.Channel().(type) {
		case *rubin.ServerChannel:
			if k.Ready()&rubin.OpConnect != 0 {
				accept, _ := k.Attachment().(func(Conn))
				for {
					c := ch.Accept()
					if c == nil {
						break
					}
					rc := s.wrap(c)
					if accept != nil {
						accept(rc)
					}
				}
			}
		case *rubin.Channel:
			rc, _ := k.Attachment().(*rdmaConn)
			if rc == nil {
				k.ResetReady(k.Ready())
				continue
			}
			if k.Ready()&rubin.OpReceive != 0 {
				rc.drain()
			}
			if k.Ready()&rubin.OpSend != 0 {
				k.ResetReady(rubin.OpSend)
				k.SetInterest(rubin.OpReceive)
				rc.retry()
			}
		}
	}
}

// rdmaConn maps transport messages 1:1 onto RUBIN channel messages (the
// channel is message-oriented already, so no framing is needed) and spills
// into an overflow queue under backpressure.
type rdmaConn struct {
	stack   *rdmaStack
	ch      *rubin.Channel
	key     *rubin.SelectionKey
	onMsg   func([]byte)
	onClose func()
	onDrain func()
	closed  bool

	overflow [][]byte
	inbox    [][]byte
}

var _ Conn = (*rdmaConn)(nil)

func (c *rdmaConn) Kind() Kind { return KindRDMA }

func (c *rdmaConn) Peer() *fabric.Node { return c.ch.Peer() }

func (c *rdmaConn) OnMessage(fn func([]byte)) {
	c.onMsg = fn
	for len(c.inbox) > 0 && c.onMsg != nil {
		m := c.inbox[0]
		c.inbox = c.inbox[1:]
		c.onMsg(m)
	}
}

func (c *rdmaConn) OnClose(fn func()) { c.onClose = fn }

func (c *rdmaConn) OnDrain(fn func()) { c.onDrain = fn }

// Unsent counts messages spilled past the work-request pool. Messages the
// channel already owns WRs for are NIC-queued, not software backlog.
func (c *rdmaConn) Unsent() int { return len(c.overflow) }

func (c *rdmaConn) Send(msg []byte) error {
	if c.closed || c.ch.Closed() {
		return ErrClosed
	}
	if len(msg) > c.stack.opts.MaxMessage {
		return fmt.Errorf("%w: %d", ErrTooBig, len(msg))
	}
	if len(c.overflow) > 0 {
		c.overflow = append(c.overflow, cloneBytes(msg))
		return nil
	}
	err := c.ch.Send(msg)
	if err == rubin.ErrWouldBlock {
		c.overflow = append(c.overflow, cloneBytes(msg))
		c.key.SetInterest(rubin.OpReceive | rubin.OpSend)
		return nil
	}
	if err != nil {
		return err
	}
	return nil
}

// retry drains the overflow queue once send capacity returns.
func (c *rdmaConn) retry() {
	drained := false
	for len(c.overflow) > 0 {
		err := c.ch.Send(c.overflow[0])
		if err == rubin.ErrWouldBlock {
			c.key.SetInterest(rubin.OpReceive | rubin.OpSend)
			return
		}
		if err != nil {
			c.teardown()
			return
		}
		c.overflow = c.overflow[1:]
		drained = true
	}
	if drained && c.onDrain != nil {
		c.onDrain()
	}
}

func (c *rdmaConn) drain() {
	params := c.stack.node.Network().Params()
	for {
		msg, ok := c.ch.Receive()
		if !ok {
			break
		}
		if c.ch.Closed() {
			c.teardown()
			return
		}
		// Per-message handler dispatch on the selector thread (cheaper
		// than TCP's: the channel is already message-oriented).
		c.stack.sel.Thread().Delay(params.Selector.MsgHandle)
		if c.onMsg != nil {
			c.onMsg(msg)
		} else {
			c.inbox = append(c.inbox, msg)
		}
	}
	if c.ch.Closed() {
		c.teardown()
	}
}

func (c *rdmaConn) Close() {
	if c.closed {
		return
	}
	c.ch.Close()
	c.teardown()
}

func (c *rdmaConn) teardown() {
	if c.closed {
		return
	}
	c.closed = true
	if c.key != nil {
		c.key.Cancel()
	}
	if c.onClose != nil {
		c.onClose()
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
