package transport

import (
	"bytes"
	"fmt"
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
)

// rig builds an n-node network with a stack of the given kind on each.
type rig struct {
	loop   *sim.Loop
	nw     *fabric.Network
	nodes  []*fabric.Node
	stacks []Stack
}

func newRig(t *testing.T, kind Kind, n int, opts Options) *rig {
	t.Helper()
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	r := &rig{loop: loop, nw: nw}
	for i := 0; i < n; i++ {
		node := nw.AddNode(fmt.Sprintf("n%d", i))
		r.nodes = append(r.nodes, node)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			nw.Connect(r.nodes[i], r.nodes[j])
		}
	}
	for i := 0; i < n; i++ {
		st, err := NewStack(kind, r.nodes[i], opts)
		if err != nil {
			t.Fatalf("NewStack: %v", err)
		}
		r.stacks = append(r.stacks, st)
	}
	return r
}

// pair establishes a connection from stack 0 to a listener on stack 1.
func (r *rig) pair(t *testing.T, port int) (client, server Conn) {
	t.Helper()
	if err := r.stacks[1].Listen(port, func(c Conn) { server = c }); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	r.loop.Post(func() {
		r.stacks[0].Dial(r.nodes[1], port, func(c Conn, err error) {
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			client = c
		})
	})
	r.loop.Run()
	if client == nil || server == nil {
		t.Fatal("connection not established")
	}
	return client, server
}

func kinds() []Kind { return []Kind{KindTCP, KindRDMA} }

func TestMessageDeliveryBothBackends(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			client, server := r.pair(t, 700)
			if client.Kind() != kind || server.Kind() != kind {
				t.Fatal("kind mismatch")
			}
			var got [][]byte
			server.OnMessage(func(m []byte) { got = append(got, m) })
			want := [][]byte{
				[]byte("hello"),
				bytes.Repeat([]byte{7}, 100<<10),
				{},
				bytes.Repeat([]byte{9}, 1<<10),
			}
			r.loop.Post(func() {
				for _, m := range want {
					if err := client.Send(m); err != nil {
						t.Errorf("Send: %v", err)
					}
				}
			})
			r.loop.Run()
			if len(got) != len(want) {
				t.Fatalf("delivered %d messages, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("message %d corrupted (%d vs %d bytes)", i, len(got[i]), len(want[i]))
				}
			}
		})
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			client, server := r.pair(t, 700)
			var fromClient, fromServer int
			server.OnMessage(func(m []byte) {
				fromClient++
				_ = server.Send(m) // echo
			})
			client.OnMessage(func(m []byte) { fromServer++ })
			r.loop.Post(func() {
				for i := 0; i < 25; i++ {
					_ = client.Send(bytes.Repeat([]byte{byte(i)}, 2048))
				}
			})
			r.loop.Run()
			if fromClient != 25 || fromServer != 25 {
				t.Fatalf("echo incomplete: %d/%d", fromClient, fromServer)
			}
		})
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			opts := DefaultOptions()
			opts.MaxMessage = 4096
			r := newRig(t, kind, 2, opts)
			client, _ := r.pair(t, 700)
			r.loop.Post(func() {
				if err := client.Send(make([]byte, 8192)); err == nil {
					t.Error("oversized message accepted")
				}
			})
			r.loop.Run()
		})
	}
}

func TestBackpressureOverflowDrains(t *testing.T) {
	// Tiny RDMA pools force ErrWouldBlock internally; the transport's
	// overflow queue must still deliver everything in order.
	opts := DefaultOptions()
	opts.WRs = 4
	r := newRig(t, KindRDMA, 2, opts)
	client, server := r.pair(t, 700)
	var got []int
	server.OnMessage(func(m []byte) { got = append(got, int(m[0])) })
	const n = 50
	r.loop.Post(func() {
		for i := 0; i < n; i++ {
			if err := client.Send(bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		}
	})
	r.loop.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got[:i+1])
		}
	}
}

func TestMessagesBeforeOnMessageAreQueued(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			client, server := r.pair(t, 700)
			r.loop.Post(func() { _ = client.Send([]byte("early")) })
			r.loop.Run()
			var got [][]byte
			server.OnMessage(func(m []byte) { got = append(got, m) })
			if len(got) != 1 || string(got[0]) != "early" {
				t.Fatalf("queued message lost: %q", got)
			}
		})
	}
}

func TestSendOnClosedConnFails(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			client, _ := r.pair(t, 700)
			r.loop.Post(func() {
				client.Close()
				if err := client.Send([]byte("x")); err == nil {
					t.Error("Send after Close should fail")
				}
			})
			r.loop.Run()
		})
	}
}

func TestTCPCloseNotifiesPeer(t *testing.T) {
	r := newRig(t, KindTCP, 2, DefaultOptions())
	client, server := r.pair(t, 700)
	closed := false
	server.OnClose(func() { closed = true })
	r.loop.Post(client.Close)
	r.loop.Run()
	if !closed {
		t.Fatal("peer close not observed")
	}
}

func TestDialFailure(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			var gotErr error
			called := false
			r.loop.Post(func() {
				r.stacks[0].Dial(r.nodes[1], 999, func(c Conn, err error) {
					called = true
					gotErr = err
				})
			})
			r.loop.Run()
			if !called || gotErr == nil {
				t.Fatalf("expected dial failure, called=%v err=%v", called, gotErr)
			}
		})
	}
}

func TestFullMeshManyNodes(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			const n = 4
			r := newRig(t, kind, n, DefaultOptions())
			// Every stack listens; every stack dials every other.
			conns := make(map[int][]Conn) // receiver -> accepted conns
			received := make(map[int]int)
			for i := 0; i < n; i++ {
				i := i
				err := r.stacks[i].Listen(700, func(c Conn) {
					conns[i] = append(conns[i], c)
					c.OnMessage(func(m []byte) { received[i]++ })
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			var dialed []Conn
			r.loop.Post(func() {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if i == j {
							continue
						}
						r.stacks[i].Dial(r.nodes[j], 700, func(c Conn, err error) {
							if err != nil {
								t.Errorf("Dial %d->%d: %v", i, j, err)
								return
							}
							dialed = append(dialed, c)
						})
					}
				}
			})
			r.loop.Run()
			if len(dialed) != n*(n-1) {
				t.Fatalf("dialed %d conns, want %d", len(dialed), n*(n-1))
			}
			r.loop.Post(func() {
				for _, c := range dialed {
					_ = c.Send([]byte("broadcast"))
				}
			})
			r.loop.Run()
			for i := 0; i < n; i++ {
				if received[i] != n-1 {
					t.Fatalf("node %d received %d messages, want %d", i, received[i], n-1)
				}
			}
		})
	}
}

func TestInvalidOptionsAndKind(t *testing.T) {
	loop := sim.NewLoop(1)
	nw := fabric.New(loop, model.Default())
	node := nw.AddNode("x")
	if _, err := NewStack(KindTCP, node, Options{}); err == nil {
		t.Fatal("zero options should be rejected")
	}
	if _, err := NewStack("bogus", node, DefaultOptions()); err == nil {
		t.Fatal("unknown kind should be rejected")
	}
}

func TestRDMAPeerIdentity(t *testing.T) {
	r := newRig(t, KindRDMA, 2, DefaultOptions())
	client, server := r.pair(t, 700)
	if client.Peer() != r.nodes[1] {
		t.Fatalf("client peer = %v, want %v", client.Peer(), r.nodes[1])
	}
	if server.Peer() != r.nodes[0] {
		t.Fatalf("server peer = %v, want %v", server.Peer(), r.nodes[0])
	}
}

func TestLargeVolumeStream(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := newRig(t, kind, 2, DefaultOptions())
			client, server := r.pair(t, 700)
			total := 0
			server.OnMessage(func(m []byte) { total += len(m) })
			const msgs = 200
			const size = 8 << 10
			sent := 0
			var sendNext func()
			sendNext = func() {
				for sent < msgs {
					if err := client.Send(bytes.Repeat([]byte{1}, size)); err != nil {
						t.Errorf("Send: %v", err)
						return
					}
					sent++
					if sent%20 == 0 {
						// Yield so receive processing interleaves.
						r.loop.After(50*sim.Microsecond, sendNext)
						return
					}
				}
			}
			r.loop.Post(sendNext)
			r.loop.Run()
			if total != msgs*size {
				t.Fatalf("received %d bytes, want %d", total, msgs*size)
			}
		})
	}
}
