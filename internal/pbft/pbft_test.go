package pbft

import (
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/msgnet"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

func newTestCluster(t *testing.T, kind transport.Kind, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(kind, cfg, model.Default(), 1, func(i int) Application { return kvstore.New() })
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

func kinds() []transport.Kind { return []transport.Kind{transport.KindTCP, transport.KindRDMA} }

func TestSingleRequestCommitsOnBothTransports(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := newTestCluster(t, kind, DefaultConfig())
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			var result []byte
			c.Loop.Post(func() {
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "alpha", "1"), func(res []byte) {
					result = res
				})
			})
			c.Loop.Run()
			if string(result) != "OK" {
				t.Fatalf("result = %q, want OK", result)
			}
			for i, rep := range c.Replicas {
				if rep.Executed() != 1 {
					t.Fatalf("replica %d executed %d, want 1", i, rep.Executed())
				}
			}
			// All state machines agree.
			for i, app := range c.Apps {
				if v, ok := app.(*kvstore.Store).Get("alpha"); !ok || v != "1" {
					t.Fatalf("replica %d state diverged", i)
				}
			}
		})
	}
}

func TestManyRequestsTotalOrder(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := newTestCluster(t, kind, DefaultConfig())
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			// Record execution order on every replica.
			orders := make([][]string, c.Config.N)
			for i, rep := range c.Replicas {
				i := i
				rep.OnExecute(func(seq uint64, batch []Request) {
					for _, req := range batch {
						orders[i] = append(orders[i], req.Key())
					}
				})
			}
			const n = 60
			done := 0
			c.Loop.Post(func() {
				for k := 0; k < n; k++ {
					key := fmt.Sprintf("k%03d", k)
					cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, key, "v"), func([]byte) { done++ })
				}
			})
			c.Loop.Run()
			if done != n {
				t.Fatalf("completed %d of %d invocations", done, n)
			}
			for i := 1; i < c.Config.N; i++ {
				if len(orders[i]) != len(orders[0]) {
					t.Fatalf("replica %d executed %d requests, replica 0 executed %d", i, len(orders[i]), len(orders[0]))
				}
				for j := range orders[0] {
					if orders[i][j] != orders[0][j] {
						t.Fatalf("total order violated at %d: replica %d has %s, replica 0 has %s",
							j, i, orders[i][j], orders[0][j])
					}
				}
			}
			// Final states agree.
			d0 := c.Apps[0].Snapshot()
			for i := 1; i < c.Config.N; i++ {
				if c.Apps[i].Snapshot() != d0 {
					t.Fatalf("replica %d state digest diverged", i)
				}
			}
		})
	}
}

func TestBatchingGroupsRequests(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 10
	c := newTestCluster(t, transport.KindTCP, cfg)
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	var batches []int
	c.Replicas[0].OnExecute(func(seq uint64, batch []Request) {
		batches = append(batches, len(batch))
	})
	c.Loop.Post(func() {
		for k := 0; k < 30; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), nil)
		}
	})
	c.Loop.Run()
	total := 0
	multi := false
	for _, b := range batches {
		total += b
		if b > 1 {
			multi = true
		}
	}
	if total != 30 {
		t.Fatalf("executed %d requests, want 30", total)
	}
	if !multi {
		t.Fatalf("no batching observed: %v", batches)
	}
}

func TestCheckpointGarbageCollectsLog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 1
	cfg.CheckpointEvery = 10
	cfg.LogWindow = 64
	c := newTestCluster(t, transport.KindTCP, cfg)
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	const n = 35
	c.Loop.Post(func() {
		for k := 0; k < n; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), nil)
		}
	})
	c.Loop.Run()
	for i, rep := range c.Replicas {
		if rep.Executed() != n {
			t.Fatalf("replica %d executed %d, want %d", i, rep.Executed(), n)
		}
		if rep.Stable() < 30 {
			t.Fatalf("replica %d stable checkpoint %d, want >= 30", i, rep.Stable())
		}
		if rep.LogSize() > int(cfg.CheckpointEvery) {
			t.Fatalf("replica %d log holds %d slots after GC", i, rep.LogSize())
		}
	}
}

func TestExactlyOnceReplayedRequest(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, DefaultConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	results := 0
	c.Loop.Post(func() {
		cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "once", "1"), func([]byte) { results++ })
	})
	c.Loop.Run()
	// Replay the identical request (same client, same timestamp).
	c.Loop.Post(func() {
		req := Request{Client: cl.ID(), Timestamp: 1, Op: kvstore.EncodeOp(kvstore.OpPut, "once", "1")}
		raw := Encode(req)
		for _, conn := range cl.conns {
			if err := conn.Send(msgnet.ClassControl, raw); err != nil {
				t.Errorf("replay send: %v", err)
			}
		}
	})
	c.Loop.Run()
	if results != 1 {
		t.Fatalf("client callback fired %d times", results)
	}
	for i, app := range c.Apps {
		// The op must have been executed exactly once per replica.
		if app.(*kvstore.Store).Applied() != 1 {
			t.Fatalf("replica %d applied %d ops, want 1 (replay executed)", i, app.(*kvstore.Store).Applied())
		}
	}
}

func TestCrashedBackupDoesNotBlockProgress(t *testing.T) {
	c := newTestCluster(t, transport.KindRDMA, DefaultConfig())
	c.Replicas[3].SetFaults(Faults{Crashed: true}) // a non-leader replica
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.Loop.Post(func() {
		for k := 0; k < 10; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), func([]byte) { done++ })
		}
	})
	c.Loop.Run()
	if done != 10 {
		t.Fatalf("completed %d of 10 with one crashed backup", done)
	}
}

func TestCrashedLeaderTriggersViewChange(t *testing.T) {
	cfg := DefaultConfig()
	c := newTestCluster(t, transport.KindTCP, cfg)
	c.Replicas[0].SetFaults(Faults{Crashed: true}) // leader of view 0
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	newViews := make(map[int]uint64)
	for i, rep := range c.Replicas {
		i := i
		rep.OnViewChange(func(v uint64) { newViews[i] = v })
	}
	done := 0
	c.Loop.Post(func() {
		cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "survive", "1"), func([]byte) { done++ })
	})
	// Give the view-change timers room to fire and the new view to form.
	c.Loop.Run()
	if done != 1 {
		t.Fatalf("request did not execute after leader crash (done=%d)", done)
	}
	for i := 1; i < 4; i++ {
		if c.Replicas[i].View() == 0 {
			t.Fatalf("replica %d still in view 0 after leader crash", i)
		}
	}
	if len(newViews) < 3 {
		t.Fatalf("only %d replicas installed a new view", len(newViews))
	}
	// The new leader is replica 1 (view 1).
	if v, ok := c.Apps[1].(*kvstore.Store).Get("survive"); !ok || v != "1" {
		t.Fatal("state not applied in new view")
	}
}

func TestEquivocatingLeaderIsReplaced(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, DefaultConfig())
	c.Replicas[0].SetFaults(Faults{EquivocateLeader: true})
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.Loop.Post(func() {
		cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "equi", "1"), func([]byte) { done++ })
	})
	c.Loop.Run()
	if done != 1 {
		t.Fatalf("request never executed under equivocating leader (done=%d)", done)
	}
	// Safety: all correct replicas agree on the final state.
	d1 := c.Apps[1].Snapshot()
	for i := 2; i < 4; i++ {
		if c.Apps[i].Snapshot() != d1 {
			t.Fatalf("replica %d diverged under equivocation", i)
		}
	}
}

func TestCorruptMACsAreDropped(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, DefaultConfig())
	// Replica 2 sends garbage MACs: its messages must be ignored, but
	// the remaining 3 replicas still form quorums (N=4, F=1).
	c.Replicas[2].SetFaults(Faults{CorruptMACs: true})
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.Loop.Post(func() {
		for k := 0; k < 5; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), func([]byte) { done++ })
		}
	})
	c.Loop.Run()
	if done != 5 {
		t.Fatalf("completed %d of 5 with one MAC-corrupting replica", done)
	}
}

func TestMultipleClients(t *testing.T) {
	c := newTestCluster(t, transport.KindRDMA, DefaultConfig())
	var clients []*Client
	for i := 0; i < 3; i++ {
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	done := 0
	c.Loop.Post(func() {
		for ci, cl := range clients {
			for k := 0; k < 8; k++ {
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("c%dk%d", ci, k), "v"), func([]byte) { done++ })
			}
		}
	})
	c.Loop.Run()
	if done != 24 {
		t.Fatalf("completed %d of 24 across clients", done)
	}
	d0 := c.Apps[0].Snapshot()
	for i := 1; i < 4; i++ {
		if c.Apps[i].Snapshot() != d0 {
			t.Fatalf("replica %d diverged", i)
		}
	}
}

func TestLargerClusterN7F2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N, cfg.F = 7, 2
	c := newTestCluster(t, transport.KindTCP, cfg)
	// Crash two replicas — the maximum tolerated.
	c.Replicas[5].SetFaults(Faults{Crashed: true})
	c.Replicas[6].SetFaults(Faults{Crashed: true})
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.Loop.Post(func() {
		for k := 0; k < 6; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), func([]byte) { done++ })
		}
	})
	c.Loop.Run()
	if done != 6 {
		t.Fatalf("completed %d of 6 with N=7 F=2 and two crashes", done)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{N: 3, F: 1, BatchSize: 1, CheckpointEvery: 1, LogWindow: 1}
	if bad.Validate() == nil {
		t.Fatal("N=3 F=1 should be rejected (needs 3F+1)")
	}
	good := DefaultConfig()
	if good.Validate() != nil {
		t.Fatal("default config should validate")
	}
	if good.Quorum() != 3 {
		t.Fatalf("quorum = %d, want 3", good.Quorum())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, sim.Time) {
		c, err := NewCluster(transport.KindRDMA, DefaultConfig(), model.Default(), 7,
			func(i int) Application { return kvstore.New() })
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		c.Loop.Post(func() {
			for k := 0; k < 12; k++ {
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("k%d", k), "v"), nil)
			}
		})
		c.Loop.Run()
		return c.Replicas[0].Executed(), c.Loop.Now()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
