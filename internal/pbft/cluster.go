package pbft

import (
	"errors"
	"fmt"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Ports used by cluster wiring.
const (
	PeerPort   = 1000
	ClientPort = 2000
)

// Cluster assembles a full replica group plus clients over a chosen
// transport backend on one simulation loop — the harness used by tests,
// benchmarks and examples. Beyond wiring, it exposes the fault
// orchestration surface the chaos subsystem drives: Crash, Restart,
// Partition, Heal and DegradeLink.
//
// All messaging goes through per-node msgnet meshes; the meshes own the
// peer handles, which survive replica crashes and are re-attached (or
// re-dialed, with failures recorded — see AttachErr) on Restart.
type Cluster struct {
	Loop     *sim.Loop
	Network  *fabric.Network
	Config   Config
	Kind     transport.Kind
	Replicas []*Replica
	Meshes   []*msgnet.Mesh
	Apps     []Application

	nodes      []*fabric.Node
	prefix     string // node-name prefix ("" standalone, "s3" for shard 3)
	appFactory func(i int) Application
	keyrings   []*auth.Keyring

	// Peer bookkeeping so a restarted replica can be re-attached to the
	// surviving msgnet peers (and dead ones re-dialed).
	peerLinks     [][]*msgnet.Peer // peerLinks[i][j]: outbound i -> j
	inboundPeer   [][]*msgnet.Peer // peer-initiated conns accepted by i
	inboundClient [][]*msgnet.Peer // client conns accepted by i

	// attachErrs collects re-attach/re-dial failures from Restart; they
	// surface through AttachErr (and chaos.Schedule.Err).
	attachErrs []error

	clientNodes  []*fabric.Node
	clientMeshes []*msgnet.Mesh
	Clients      []*Client

	// OnRestart, if set, is invoked after Restart wires up a fresh
	// replica — the place to re-attach OnExecute/OnViewChange hooks.
	OnRestart func(i int, rep *Replica)

	tracer *obs.Tracer
}

// SetTracer attaches an observability tracer to every current replica
// and mesh, and to ones created later (AddClient meshes, Restart
// replicas). Call before generating traffic; a nil tracer detaches.
func (c *Cluster) SetTracer(t *obs.Tracer) {
	c.tracer = t
	for _, rep := range c.Replicas {
		rep.SetTracer(t)
	}
	for _, mesh := range c.Meshes {
		mesh.SetTracer(t)
	}
	for _, mesh := range c.clientMeshes {
		mesh.SetTracer(t)
	}
}

// NewCluster builds N replica nodes (full mesh), opens msgnet meshes of
// the given transport kind, creates replicas running app instances from
// the factory, and interconnects all replica pairs. Call Start to
// complete connection setup, then AddClient.
func NewCluster(kind transport.Kind, cfg Config, params model.Params, seed int64, appFactory func(i int) Application) (*Cluster, error) {
	loop := sim.NewLoop(seed)
	return NewClusterIn(loop, fabric.New(loop, params), "", kind, cfg, seed, appFactory)
}

// NewClusterIn builds a replica group on an existing simulation loop and
// fabric network, so several independent groups — the shard layer's
// deployment — can share one simulated world. Node names are prefixed
// (replica i of prefix "s2" is node "s2r1") to keep groups disjoint on
// the shared network, and keySeed must differ between co-hosted groups
// so their keyrings do.
func NewClusterIn(loop *sim.Loop, nw *fabric.Network, prefix string, kind transport.Kind, cfg Config, keySeed int64, appFactory func(i int) Application) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Loop: loop, Network: nw, Config: cfg, Kind: kind,
		prefix:        prefix,
		appFactory:    appFactory,
		peerLinks:     make([][]*msgnet.Peer, cfg.N),
		inboundPeer:   make([][]*msgnet.Peer, cfg.N),
		inboundClient: make([][]*msgnet.Peer, cfg.N),
	}

	opts := msgnet.DefaultOptions()
	c.keyrings = auth.GenerateKeyrings(cfg.N, uint64(keySeed)+1)
	for i := 0; i < cfg.N; i++ {
		node := nw.AddNode(fmt.Sprintf("%sr%d", prefix, i))
		mesh, err := msgnet.NewMesh(kind, node, opts)
		if err != nil {
			return nil, err
		}
		app := appFactory(i)
		rep, err := NewReplica(uint32(i), cfg, node, c.keyrings[i], app)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		c.Meshes = append(c.Meshes, mesh)
		c.Replicas = append(c.Replicas, rep)
		c.Apps = append(c.Apps, app)
		c.peerLinks[i] = make([]*msgnet.Peer, cfg.N)
	}
	// Full mesh links.
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			nw.Connect(c.nodes[i], c.nodes[j])
		}
	}
	return c, nil
}

// Start listens on every replica and dials the full connection mesh,
// running the loop until setup completes.
func (c *Cluster) Start() error {
	var setupErr error
	for i, mesh := range c.Meshes {
		i := i
		if err := mesh.Listen(PeerPort, func(p *msgnet.Peer) {
			c.inboundPeer[i] = append(c.inboundPeer[i], p)
			c.Replicas[i].AttachInbound(p)
		}); err != nil {
			return err
		}
		if err := mesh.Listen(ClientPort, func(p *msgnet.Peer) {
			c.inboundClient[i] = append(c.inboundClient[i], p)
			c.Replicas[i].HandleClientConn(p)
		}); err != nil {
			return err
		}
	}
	dials := 0
	for i := range c.Meshes {
		for j := range c.Meshes {
			if i == j {
				continue
			}
			i, j := i, j
			c.Loop.Post(func() {
				c.Meshes[i].Dial(c.nodes[j], PeerPort, func(p *msgnet.Peer, err error) {
					if err != nil {
						setupErr = fmt.Errorf("dial r%d->r%d: %w", i, j, err)
						return
					}
					c.peerLinks[i][j] = p
					c.Replicas[i].AttachPeer(uint32(j), p)
					dials++
				})
			})
		}
	}
	c.Loop.Run()
	if setupErr != nil {
		return setupErr
	}
	want := c.Config.N * (c.Config.N - 1)
	if dials != want {
		return fmt.Errorf("pbft: only %d of %d peer connections established", dials, want)
	}
	return nil
}

// AddClient creates a client on its own node, links it to every replica
// and dials the client ports. Must run after Start.
func (c *Cluster) AddClient() (*Client, error) {
	return c.AddClientID(uint32(100 + len(c.Clients)))
}

// AddClientID is AddClient with an explicit PBFT client identity. The
// shard router derives identities unique across every group of a
// deployment — request keys (client, timestamp) name traces in the
// shared observability stream, so two groups' clients must not collide.
func (c *Cluster) AddClientID(id uint32) (*Client, error) {
	node := c.Network.AddNode(fmt.Sprintf("%sclient%d", c.prefix, id))
	for i := 0; i < c.Config.N; i++ {
		c.Network.Connect(node, c.nodes[i])
	}
	mesh, err := msgnet.NewMesh(c.Kind, node, msgnet.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mesh.SetTracer(c.tracer)
	cl := NewClient(id, c.Config.F)
	var dialErr error
	dials := 0
	for i := 0; i < c.Config.N; i++ {
		i := i
		c.Loop.Post(func() {
			mesh.Dial(c.nodes[i], ClientPort, func(p *msgnet.Peer, err error) {
				if err != nil {
					dialErr = err
					return
				}
				cl.AttachReplica(uint32(i), p)
				dials++
			})
		})
	}
	c.Loop.Run()
	if dialErr != nil {
		return nil, dialErr
	}
	if dials != c.Config.N {
		return nil, fmt.Errorf("pbft: client connected to %d of %d replicas", dials, c.Config.N)
	}
	c.clientNodes = append(c.clientNodes, node)
	c.clientMeshes = append(c.clientMeshes, mesh)
	c.Clients = append(c.Clients, cl)
	return cl, nil
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Time) { c.Loop.RunUntil(c.Loop.Now() + d) }

// SendFaults sums the surfaced delivery failures across the current
// replica instances (a restarted replica starts a fresh counter).
func (c *Cluster) SendFaults() uint64 {
	var n uint64
	for _, rep := range c.Replicas {
		n += rep.SendFaults()
	}
	return n
}

// PeakQueueBytes returns the deepest msgnet send queue observed on any
// replica mesh — the queue-depth metric experiment E7 reports.
func (c *Cluster) PeakQueueBytes() int {
	peak := 0
	for _, mesh := range c.Meshes {
		if d := mesh.PeakQueueBytes(); d > peak {
			peak = d
		}
	}
	return peak
}

// ---------------------------------------------------------------------------
// Fault orchestration (driven by internal/chaos)
// ---------------------------------------------------------------------------

// Crash fault-stops replica i: the process sends nothing, hears nothing
// and fires no timers from this instant on. All volatile state is lost;
// recovery goes through Restart.
func (c *Cluster) Crash(i int) { c.Replicas[i].Stop() }

// Restart replaces a crashed replica with a fresh instance — empty log,
// empty application state, view 0 — attached to the surviving msgnet
// peers, then starts state transfer so it fetches the group's latest
// stable checkpoint and rejoins. Outbound peers whose connection died
// while the replica was down are re-dialed through the mesh; re-dial
// failures are recorded and surface through AttachErr.
func (c *Cluster) Restart(i int) error {
	// Silence the old instance even if Crash was never called: two live
	// replicas sharing identity and keyring would equivocate.
	c.Replicas[i].Stop()
	app := c.appFactory(i)
	rep, err := NewReplica(uint32(i), c.Config, c.nodes[i], c.keyrings[i], app)
	if err != nil {
		return err
	}
	c.Replicas[i] = rep
	c.Apps[i] = app
	rep.SetTracer(c.tracer)
	for j, p := range c.peerLinks[i] {
		if j == i {
			continue
		}
		if p != nil && !p.Closed() {
			rep.AttachPeer(uint32(j), p)
			continue
		}
		// The outbound link died while the replica was down: re-dial it.
		// The dial completes on the loop; failures are recorded for
		// AttachErr so chaos scenarios see them.
		i, j := i, j
		c.Meshes[i].Dial(c.nodes[j], PeerPort, func(p *msgnet.Peer, err error) {
			if err != nil {
				c.attachErrs = append(c.attachErrs, fmt.Errorf("pbft: restart r%d: re-dial r%d: %w", i, j, err))
				return
			}
			c.peerLinks[i][j] = p
			c.Replicas[i].AttachPeer(uint32(j), p)
		})
	}
	for _, p := range c.inboundPeer[i] {
		if !p.Closed() {
			rep.AttachInbound(p)
		}
	}
	for _, p := range c.inboundClient[i] {
		if !p.Closed() {
			rep.HandleClientConn(p)
		}
	}
	if c.OnRestart != nil {
		c.OnRestart(i, rep)
	}
	rep.RequestStateTransfer()
	return nil
}

// AttachErr returns every re-attach failure recorded by Restart so far,
// joined — nil when all re-attaches succeeded. chaos.Schedule.Err folds
// this in, making failed recoveries visible to scenarios.
func (c *Cluster) AttachErr() error { return errors.Join(c.attachErrs...) }

// ReplicaLink returns the fabric link between replicas i and j.
func (c *Cluster) ReplicaLink(i, j int) *fabric.Link {
	return c.Network.Link(c.nodes[i], c.nodes[j])
}

// Partition installs the requested topology among the listed replicas:
// links between replicas in different groups go down, links within a
// group come (back) up — so successive Partition calls over the same
// replicas replace each other rather than accumulate. Links touching a
// replica not listed in any group are left untouched (so independent
// DegradeLink faults survive), as are client links. Severed links hold
// frames and deliver them on Heal — a partition is an unbounded message
// delay, the standard asynchronous-network model.
func (c *Cluster) Partition(groups ...[]int) {
	grp := make(map[int]int)
	for g, members := range groups {
		for _, i := range members {
			grp[i] = g
		}
	}
	for i := 0; i < c.Config.N; i++ {
		for j := i + 1; j < c.Config.N; j++ {
			gi, oki := grp[i]
			gj, okj := grp[j]
			if oki && okj {
				c.ReplicaLink(i, j).SetDown(gi != gj)
			}
		}
	}
}

// Heal restores every replica-to-replica link — including ones severed
// via DegradeLink — releasing held frames in their original order.
func (c *Cluster) Heal() {
	for i := 0; i < c.Config.N; i++ {
		for j := i + 1; j < c.Config.N; j++ {
			c.ReplicaLink(i, j).SetDown(false)
		}
	}
}

// DegradeLink applies fault state (loss, extra latency, jitter, down) to
// the link between replicas i and j.
func (c *Cluster) DegradeLink(i, j int, f fabric.LinkFaults) {
	c.ReplicaLink(i, j).SetFaults(f)
}
