package pbft

import (
	"fmt"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Ports used by cluster wiring.
const (
	PeerPort   = 1000
	ClientPort = 2000
)

// Cluster assembles a full replica group plus clients over a chosen
// transport backend on one simulation loop — the harness used by tests,
// benchmarks and examples.
type Cluster struct {
	Loop     *sim.Loop
	Network  *fabric.Network
	Config   Config
	Kind     transport.Kind
	Replicas []*Replica
	Stacks   []transport.Stack
	Apps     []Application

	clientNodes  []*fabric.Node
	clientStacks []transport.Stack
	Clients      []*Client
}

// NewCluster builds N replica nodes (full mesh), opens transport stacks of
// the given kind, creates replicas running app instances from the factory,
// and interconnects all replica pairs. Call Start to complete connection
// setup, then AddClient.
func NewCluster(kind transport.Kind, cfg Config, params model.Params, seed int64, appFactory func(i int) Application) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	loop := sim.NewLoop(seed)
	nw := fabric.New(loop, params)
	c := &Cluster{Loop: loop, Network: nw, Config: cfg, Kind: kind}

	opts := transport.DefaultOptions()
	rings := auth.GenerateKeyrings(cfg.N, uint64(seed)+1)
	for i := 0; i < cfg.N; i++ {
		node := nw.AddNode(fmt.Sprintf("r%d", i))
		st, err := transport.NewStack(kind, node, opts)
		if err != nil {
			return nil, err
		}
		app := appFactory(i)
		rep, err := NewReplica(uint32(i), cfg, node, rings[i], app)
		if err != nil {
			return nil, err
		}
		c.Stacks = append(c.Stacks, st)
		c.Replicas = append(c.Replicas, rep)
		c.Apps = append(c.Apps, app)
	}
	// Full mesh links.
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			nw.Connect(nw.Node(fmt.Sprintf("r%d", i)), nw.Node(fmt.Sprintf("r%d", j)))
		}
	}
	return c, nil
}

// Start listens on every replica and dials the full connection mesh,
// running the loop until setup completes.
func (c *Cluster) Start() error {
	var setupErr error
	for i, st := range c.Stacks {
		rep := c.Replicas[i]
		if err := st.Listen(PeerPort, func(conn transport.Conn) {
			rep.AttachInbound(conn)
		}); err != nil {
			return err
		}
		if err := st.Listen(ClientPort, func(conn transport.Conn) {
			rep.HandleClientConn(conn)
		}); err != nil {
			return err
		}
	}
	dials := 0
	for i := range c.Stacks {
		for j := range c.Stacks {
			if i == j {
				continue
			}
			i, j := i, j
			c.Loop.Post(func() {
				c.Stacks[i].Dial(c.Network.Node(fmt.Sprintf("r%d", j)), PeerPort, func(conn transport.Conn, err error) {
					if err != nil {
						setupErr = fmt.Errorf("dial r%d->r%d: %w", i, j, err)
						return
					}
					c.Replicas[i].AttachPeer(uint32(j), conn)
					dials++
				})
			})
		}
	}
	c.Loop.Run()
	if setupErr != nil {
		return setupErr
	}
	want := c.Config.N * (c.Config.N - 1)
	if dials != want {
		return fmt.Errorf("pbft: only %d of %d peer connections established", dials, want)
	}
	return nil
}

// AddClient creates a client on its own node, links it to every replica
// and dials the client ports. Must run after Start.
func (c *Cluster) AddClient() (*Client, error) {
	id := uint32(100 + len(c.Clients))
	node := c.Network.AddNode(fmt.Sprintf("client%d", id))
	for i := 0; i < c.Config.N; i++ {
		c.Network.Connect(node, c.Network.Node(fmt.Sprintf("r%d", i)))
	}
	st, err := transport.NewStack(c.Kind, node, transport.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cl := NewClient(id, c.Config.F)
	var dialErr error
	dials := 0
	for i := 0; i < c.Config.N; i++ {
		i := i
		c.Loop.Post(func() {
			st.Dial(c.Network.Node(fmt.Sprintf("r%d", i)), ClientPort, func(conn transport.Conn, err error) {
				if err != nil {
					dialErr = err
					return
				}
				cl.AttachReplica(uint32(i), conn)
				dials++
			})
		})
	}
	c.Loop.Run()
	if dialErr != nil {
		return nil, dialErr
	}
	if dials != c.Config.N {
		return nil, fmt.Errorf("pbft: client connected to %d of %d replicas", dials, c.Config.N)
	}
	c.clientNodes = append(c.clientNodes, node)
	c.clientStacks = append(c.clientStacks, st)
	c.Clients = append(c.Clients, cl)
	return cl, nil
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Time) { c.Loop.RunUntil(c.Loop.Now() + d) }
