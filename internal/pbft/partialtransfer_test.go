package pbft

import (
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// prefillCluster applies n puts directly to every replica's store before
// any traffic, simulating a group with accumulated cold state. The keys
// are distinct from workload keys and applied identically everywhere, so
// digests and applied counters stay in agreement.
func prefillCluster(c *Cluster, n int) {
	for i := range c.Apps {
		s := c.Apps[i].(*kvstore.Store)
		for k := 0; k < n; k++ {
			s.Execute(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("cold%06d", k), "prefill-value"))
		}
	}
}

// TestPartialTransferShipsOnlyDivergentState verifies the tentpole
// economics: recovering a replica into a cluster with a large cold
// state must move far fewer bytes than a full snapshot, because the
// restarted replica's empty buckets match nothing and only the
// populated partitions stream. The same scenario under
// FullStateTransfer must move at least one whole snapshot, and the
// partial path must serve strictly fewer bytes.
func TestPartialTransferShipsOnlyDivergentState(t *testing.T) {
	served := func(full bool) (bytes uint64, c *Cluster) {
		cfg := transferConfig()
		cfg.FullStateTransfer = full
		c = newTestCluster(t, transport.KindTCP, cfg)
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		c.Crash(3)
		invokeN(t, c, cl, "hot", 20)
		if err := c.Restart(3); err != nil {
			t.Fatal(err)
		}
		c.Loop.Run()
		invokeN(t, c, cl, "post", 10)
		c.RunFor(200 * sim.Millisecond)
		if c.Replicas[3].StateTransfers() == 0 {
			t.Fatal("restarted replica completed no state transfer")
		}
		if got, want := c.Replicas[3].Executed(), c.Replicas[0].Executed(); got != want {
			t.Fatalf("restarted replica executed %d, group %d", got, want)
		}
		for i := 0; i < 4; i++ {
			bytes += c.Replicas[i].StateBytesServed()
		}
		return bytes, c
	}
	partial, c := served(false)
	full, _ := served(true)
	snapshot := uint64(len(c.Apps[0].(*kvstore.Store).MarshalState()))
	if full < snapshot {
		t.Fatalf("legacy transfer served %d bytes, below one snapshot (%d)", full, snapshot)
	}
	if partial >= full {
		t.Fatalf("partial transfer served %d bytes, legacy served %d — no savings", partial, full)
	}
	// The hot keys occupy a handful of the 256 buckets; the savings
	// should be substantial, not marginal.
	if partial*2 > full {
		t.Fatalf("partial transfer served %d of %d legacy bytes — expected < half", partial, full)
	}
}

// TestByzantineCorruptedSubtree restarts a replica while one responder
// serves corrupted partitions: every StatePart is verified against the
// certified manifest on arrival, so the fetcher must reject and ban the
// corrupt peer, count the rejection, and still recover through the
// honest responders.
func TestByzantineCorruptedSubtree(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, transferConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	invokeN(t, c, cl, "byz", 20)
	c.Loop.Post(func() {
		c.Replicas[1].SetFaults(Faults{CorruptStateParts: true})
	})
	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	c.Loop.Run()
	invokeN(t, c, cl, "post", 10)
	c.RunFor(200 * sim.Millisecond)

	rep := c.Replicas[3]
	if rep.StateTransfers() == 0 {
		t.Fatal("replica never completed a state transfer despite honest majority")
	}
	if got, want := rep.Executed(), c.Replicas[0].Executed(); got != want {
		t.Fatalf("replica 3 executed %d, group %d", got, want)
	}
	if rep.StateRejects() == 0 {
		t.Fatal("corrupted partitions were never detected")
	}
	if d0 := c.Apps[0].Snapshot(); c.Apps[3].Snapshot() != d0 {
		t.Fatal("recovered state diverged")
	}
	if v, ok := c.Apps[3].(*kvstore.Store).Get("byz000"); !ok || v != "v" {
		t.Fatal("recovered state missing a committed key")
	}
}

// TestCheckpointRetentionBounded is the regression test for the
// checkpoint-amplification bug: across a long run the per-replica
// retained checkpoint bytes must stay within a small multiple of one
// state snapshot (one materialized base plus delta partitions), where
// the old full-state retention held a snapshot per in-window
// checkpoint. The legacy mode run alongside pins the contrast.
func TestCheckpointRetentionBounded(t *testing.T) {
	retained := func(full bool) (perCheckpoint float64, snapshot uint64) {
		cfg := transferConfig()
		cfg.FullStateTransfer = full
		c := newTestCluster(t, transport.KindTCP, cfg)
		prefillCluster(c, 2000) // sizeable cold state amplifies full retention
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		invokeN(t, c, cl, "ret", 48) // 24 seqs = 6 checkpoint intervals
		count, _ := c.Replicas[0].CheckpointStats()
		if count < 4 {
			t.Fatalf("only %d checkpoints taken", count)
		}
		snapshot = uint64(len(c.Apps[0].(*kvstore.Store).MarshalState()))
		return float64(c.Replicas[0].RetainedStateBytes()) / float64(snapshot), snapshot
	}
	deltaRatio, snap := retained(false)
	legacyRatio, _ := retained(true)
	// Delta retention: one base (≈1 snapshot) + in-window dirty buckets.
	if deltaRatio > 2.0 {
		t.Fatalf("delta retention holds %.1f× the %d-byte snapshot, want <= 2.0×", deltaRatio, snap)
	}
	if legacyRatio <= deltaRatio {
		t.Fatalf("legacy retention %.1f× not above delta retention %.1f× — test lost its contrast", legacyRatio, deltaRatio)
	}
}

// hotBuckets is the bucket cutoff separating the update-heavy working
// set from the cold mass in the sublinearity test: hot keys land in
// buckets [0, hotBuckets), cold prefill in [hotBuckets, MerkleBuckets).
// Incremental checkpoints win exactly when updates concentrate in a
// subset of partitions; interleaving hot and cold keys in the same
// bucket would re-serialize the cold neighbors on every interval (the
// granularity tradeoff of partition-level deltas).
const hotBuckets = 8

// filteredKeys returns n keys of the form prefix<i> whose Merkle bucket
// satisfies the predicate.
func filteredKeys(prefix string, n int, keep func(bucket int) bool) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("%s%06d", prefix, i)
		if keep(kvstore.PartitionKey(k, kvstore.MerkleBuckets)) {
			keys = append(keys, k)
		}
	}
	return keys
}

// invokeKeys commits one put per key through the client.
func invokeKeys(t *testing.T, c *Cluster, cl *Client, keys []string) {
	t.Helper()
	done := 0
	c.Loop.Post(func() {
		for _, k := range keys {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, k, "v"), func([]byte) { done++ })
		}
	})
	c.Loop.Run()
	if done != len(keys) {
		t.Fatalf("completed %d of %d requests", done, len(keys))
	}
}

// TestIncrementalCheckpointCostSublinear pins the kvstore-level
// economics the E12 experiment measures end to end: with a hot working
// set over a growing cold mass, steady-state checkpoint bytes (the
// dirty partitions re-serialized per interval) must not scale with
// total state size.
func TestIncrementalCheckpointCostSublinear(t *testing.T) {
	steady := func(prefill int) uint64 {
		cfg := transferConfig()
		c := newTestCluster(t, transport.KindTCP, cfg)
		cold := filteredKeys("cold", prefill, func(b int) bool { return b >= hotBuckets })
		for i := range c.Apps {
			s := c.Apps[i].(*kvstore.Store)
			for _, k := range cold {
				s.Execute(kvstore.EncodeOp(kvstore.OpPut, k, "prefill-value"))
			}
		}
		cl, err := c.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		invokeKeys(t, c, cl, filteredKeys("hot", 48, func(b int) bool { return b < hotBuckets }))
		count, bytes := c.Replicas[0].CheckpointSteadyStats()
		if count == 0 {
			t.Fatal("no steady-state checkpoints taken")
		}
		return bytes / count
	}
	small, large := steady(500), steady(8000)
	// 16× the cold state must not mean anywhere near 16× the steady
	// checkpoint bytes; allow generous slack for per-interval variance.
	if large > small*4 {
		t.Fatalf("steady checkpoint bytes grew %d -> %d with 16x state — not sublinear", small, large)
	}
}

// TestFullStateTransferFallback pins the E12 baseline mode: with
// FullStateTransfer set cluster-wide, recovery must still work through
// the legacy whole-snapshot path, with zero partial-protocol activity.
func TestFullStateTransferFallback(t *testing.T) {
	cfg := transferConfig()
	cfg.FullStateTransfer = true
	c := newTestCluster(t, transport.KindTCP, cfg)
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	invokeN(t, c, cl, "legacy", 20)
	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	c.Loop.Run()
	invokeN(t, c, cl, "post", 10)
	c.RunFor(200 * sim.Millisecond)
	if c.Replicas[3].StateTransfers() == 0 {
		t.Fatal("legacy transfer never completed")
	}
	if got, want := c.Replicas[3].Executed(), c.Replicas[0].Executed(); got != want {
		t.Fatalf("replica 3 executed %d, group %d", got, want)
	}
	if d0 := c.Apps[0].Snapshot(); c.Apps[3].Snapshot() != d0 {
		t.Fatal("legacy-recovered state diverged")
	}
}
