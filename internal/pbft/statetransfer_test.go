package pbft

import (
	"bytes"
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// transferConfig checkpoints frequently so state transfer engages within
// short workloads.
func transferConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchSize = 2
	cfg.CheckpointEvery = 4
	cfg.LogWindow = 64
	return cfg
}

func invokeN(t *testing.T, c *Cluster, cl *Client, prefix string, n int) {
	t.Helper()
	done := 0
	c.Loop.Post(func() {
		for k := 0; k < n; k++ {
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("%s%03d", prefix, k), "v"), func([]byte) { done++ })
		}
	})
	c.Loop.Run()
	if done != n {
		t.Fatalf("completed %d of %d %q requests", done, n, prefix)
	}
}

// TestStateTransferRoundTrip crashes a backup, advances the group past
// several checkpoints, restarts it and verifies the newcomer fetches the
// stable checkpoint, verifies it against the certified digest, and
// converges to the group's state — on both transport backends.
func TestStateTransferRoundTrip(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindTCP, transport.KindRDMA} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := newTestCluster(t, kind, transferConfig())
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			c.Crash(3)
			invokeN(t, c, cl, "down", 20) // 10 seqs, stable reaches 8
			if c.Replicas[0].Stable() < 8 {
				t.Fatalf("stable = %d before restart, want >= 8", c.Replicas[0].Stable())
			}
			if err := c.Restart(3); err != nil {
				t.Fatal(err)
			}
			c.Loop.Run() // let the state transfer complete
			invokeN(t, c, cl, "up", 10)
			c.RunFor(200 * sim.Millisecond)

			rep := c.Replicas[3]
			if rep.StateTransfers() == 0 {
				t.Fatal("restarted replica completed no state transfer")
			}
			if rep.Executed() != c.Replicas[0].Executed() {
				t.Fatalf("restarted replica executed %d, group executed %d",
					rep.Executed(), c.Replicas[0].Executed())
			}
			d0 := c.Apps[0].Snapshot()
			for i := 1; i < 4; i++ {
				if c.Apps[i].Snapshot() != d0 {
					t.Fatalf("replica %d state diverged after transfer", i)
				}
			}
			// The transferred store contents are readable.
			if v, ok := c.Apps[3].(*kvstore.Store).Get("down000"); !ok || v != "v" {
				t.Fatal("transferred state missing pre-crash key")
			}
		})
	}
}

// TestStateTransferLaggingReplica verifies in-protocol lag detection
// against a moving head: a restarted replica whose first transfer lands
// behind ongoing traffic must keep catching up via the live checkpoint
// certificates recordCheckpoint assembles, without further restarts.
func TestStateTransferLaggingReplica(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, transferConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// Stop replica 3 outright, run the group ahead, then restart: the
	// fresh instance receives live checkpoint certificates and must
	// catch up without any further crash.
	c.Crash(3)
	invokeN(t, c, cl, "a", 24)
	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	invokeN(t, c, cl, "b", 24)
	c.RunFor(200 * sim.Millisecond)
	if c.Replicas[3].StateTransfers() == 0 {
		t.Fatal("lagging replica never fetched state")
	}
	if got, want := c.Replicas[3].Executed(), c.Replicas[0].Executed(); got != want {
		t.Fatalf("lagging replica executed %d, group %d", got, want)
	}
}

// TestRestartBeforeFirstCheckpointDrains restarts a replica before the
// group has any stable checkpoint: the state-transfer probe goes
// unanswered and must NOT re-arm retries forever — the loop has to
// drain — and the replica must still recover via live certificates once
// checkpoints exist.
func TestRestartBeforeFirstCheckpointDrains(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, transferConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	c.Loop.Run() // must terminate: no checkpoint exists, no retry loop
	if c.Replicas[3].StateTransfers() != 0 {
		t.Fatalf("nothing to transfer yet, got %d transfers", c.Replicas[3].StateTransfers())
	}
	invokeN(t, c, cl, "late", 24) // now checkpoints form; certificates drive catch-up
	c.RunFor(200 * sim.Millisecond)
	if got, want := c.Replicas[3].Executed(), c.Replicas[0].Executed(); got != want {
		t.Fatalf("replica 3 executed %d, group %d", got, want)
	}
}

// TestStateTransferLargeSnapshot is the regression test for the ROADMAP
// item msgnet closes: a kvstore snapshot far above the transport's
// MaxMessage (≈1.1 MB vs the 256 KB frame limit) must still transfer
// after Crash/Restart — the StateResponse rides msgnet's bulk class as a
// digest-chained chunk stream — on both backends.
func TestStateTransferLargeSnapshot(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindTCP, transport.KindRDMA} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := transferConfig()
			cfg.BatchSize = 4
			cfg.CheckpointEvery = 8
			// Bulk writes take real wire time; keep request timers from
			// demanding view changes mid-flood.
			cfg.ViewTimeout = 400 * sim.Millisecond
			c := newTestCluster(t, kind, cfg)
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			c.Crash(3)
			// 36 distinct 32 KB values ≈ 1.15 MB of serialized store,
			// submitted with a bounded window (closed loop) like a real
			// client.
			const writes = 36
			value := string(bytes.Repeat([]byte("v"), 32<<10))
			done, sent := 0, 0
			var sendOne func()
			sendOne = func() {
				if sent >= writes {
					return
				}
				k := sent
				sent++
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, fmt.Sprintf("big%03d", k), value), func([]byte) {
					done++
					sendOne()
				})
			}
			c.Loop.Post(func() {
				for i := 0; i < 8; i++ {
					sendOne()
				}
			})
			c.Loop.Run()
			if done != writes {
				t.Fatalf("committed %d of %d bulk writes", done, writes)
			}
			snapshot := c.Apps[0].(*kvstore.Store).MarshalState()
			if maxMsg := transport.DefaultOptions().MaxMessage; len(snapshot) <= maxMsg {
				t.Fatalf("snapshot %d bytes does not exceed MaxMessage %d — test lost its point", len(snapshot), maxMsg)
			}
			if err := c.Restart(3); err != nil {
				t.Fatal(err)
			}
			c.Loop.Run() // chunked transfer completes
			// Enough post-restart writes to cross the next checkpoint
			// boundary: the restarted replica adopts the previous stable
			// point and catches the head through the live certificate,
			// like TestStateTransferLaggingReplica.
			invokeN(t, c, cl, "post", 28)
			c.RunFor(200 * sim.Millisecond)
			rep := c.Replicas[3]
			if rep.StateTransfers() == 0 {
				t.Fatal("restarted replica completed no state transfer")
			}
			if rep.Executed() != c.Replicas[0].Executed() {
				t.Fatalf("restarted replica executed %d, group executed %d", rep.Executed(), c.Replicas[0].Executed())
			}
			d0 := c.Apps[0].Snapshot()
			for i := 1; i < 4; i++ {
				if c.Apps[i].Snapshot() != d0 {
					t.Fatalf("replica %d state diverged after chunked transfer", i)
				}
			}
			if v, ok := c.Apps[3].(*kvstore.Store).Get("big000"); !ok || v != value {
				t.Fatal("transferred state missing or corrupted a bulk key")
			}
			if c.Replicas[3].SendFaults() != 0 {
				t.Errorf("restarted replica surfaced %d send faults on a healthy network", c.Replicas[3].SendFaults())
			}
		})
	}
}

// TestRestartRedialsDeadPeers kills a crashed replica's outbound
// connections before Restart: the new lifecycle API must re-dial them
// through the mesh (instead of silently leaving the replica half-wired)
// and record zero attach errors, and the replica must still catch up.
func TestRestartRedialsDeadPeers(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, transferConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	invokeN(t, c, cl, "pre", 20)
	c.Loop.Post(func() {
		for j, p := range c.peerLinks[3] {
			if j != 3 && p != nil {
				p.Close()
			}
		}
	})
	c.Loop.Run()
	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	c.Loop.Run() // re-dials and state transfer complete
	if err := c.AttachErr(); err != nil {
		t.Fatalf("re-attach errors: %v", err)
	}
	for j, p := range c.peerLinks[3] {
		if j == 3 {
			continue
		}
		if p == nil || p.Closed() {
			t.Fatalf("outbound peer 3->%d not re-dialed", j)
		}
	}
	invokeN(t, c, cl, "post", 10)
	c.RunFor(200 * sim.Millisecond)
	if got, want := c.Replicas[3].Executed(), c.Replicas[0].Executed(); got != want {
		t.Fatalf("restarted replica executed %d, group %d", got, want)
	}
}

// TestCascadingViewChanges exercises the startViewChange(newView+1)
// escalation path: when the leaders of consecutive views fail, replicas
// must keep escalating until a live leader installs a view. Table-driven
// over the two failure variants.
func TestCascadingViewChanges(t *testing.T) {
	cases := []struct {
		name     string
		n, f     int
		setup    func(c *Cluster)
		minView  uint64
		liveFrom int // replicas [liveFrom, n) participate at the end
	}{
		{
			// Leaders of views 0 and 1 both crash before any request:
			// N=7/F=2 keeps a 2F+1 quorum among the survivors, which
			// must cascade to view 2.
			name: "two-crashed-leaders-n7", n: 7, f: 2,
			setup:    func(c *Cluster) { c.Crash(0); c.Crash(1) },
			minView:  2,
			liveFrom: 2,
		},
		{
			// The view-0 leader crashes and the view-1 leader mutes its
			// NEW-VIEW: replicas waiting for the installation must time
			// out and escalate to view 2.
			name: "muted-new-view-n4", n: 4, f: 1,
			setup: func(c *Cluster) {
				c.Crash(0)
				c.Replicas[1].SetFaults(Faults{Mute: map[MsgType]bool{MsgNewView: true}})
			},
			minView:  2,
			liveFrom: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := transferConfig()
			cfg.N, cfg.F = tc.n, tc.f
			c := newTestCluster(t, transport.KindTCP, cfg)
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			tc.setup(c)
			done := 0
			c.Loop.Post(func() {
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "cascade", "1"), func([]byte) { done++ })
			})
			c.Loop.Run()
			if done != 1 {
				t.Fatalf("request never committed across cascading view changes")
			}
			for i := tc.liveFrom; i < tc.n; i++ {
				if v := c.Replicas[i].View(); v < tc.minView {
					t.Errorf("replica %d in view %d, want >= %d", i, v, tc.minView)
				}
				if v, ok := c.Apps[i].(*kvstore.Store).Get("cascade"); !ok || v != "1" {
					t.Errorf("replica %d missing committed state", i)
				}
			}
		})
	}
}

// TestCheckpointGCAtWindowBoundary runs with the tightest legal window
// (LogWindow == CheckpointEvery): the leader hits the high watermark
// every interval and may only proceed once the checkpoint advances the
// stable point, exercising the stall-and-resume path and log GC.
func TestCheckpointGCAtWindowBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 1
	cfg.CheckpointEvery = 8
	cfg.LogWindow = 8 // == CheckpointEvery: proposals stall at each boundary
	c := newTestCluster(t, transport.KindTCP, cfg)
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	const n = 40 // five full windows
	invokeN(t, c, cl, "w", n)
	for i, rep := range c.Replicas {
		if rep.Executed() != n {
			t.Fatalf("replica %d executed %d, want %d", i, rep.Executed(), n)
		}
		if rep.Stable() < uint64(n)-cfg.CheckpointEvery {
			t.Fatalf("replica %d stable %d, want >= %d", i, rep.Stable(), uint64(n)-cfg.CheckpointEvery)
		}
		if rep.LogSize() > int(cfg.CheckpointEvery) {
			t.Fatalf("replica %d log holds %d slots, want <= %d", i, rep.LogSize(), cfg.CheckpointEvery)
		}
	}
}
