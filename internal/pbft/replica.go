package pbft

import (
	"fmt"
	"sort"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/sim"
	"rubin/internal/transport"
)

// Application is the replicated service executed by the agreement layer.
type Application interface {
	// Execute applies one ordered operation and returns its result.
	Execute(op []byte) []byte
	// Snapshot returns a digest of the current state (checkpoints).
	Snapshot() auth.Digest
}

// Config tunes a replica group.
type Config struct {
	// N is the group size; F the tolerated faults. N must be >= 3F+1.
	N, F int
	// BatchSize is the maximum requests per pre-prepare.
	BatchSize int
	// BatchDelay bounds how long the leader waits to fill a batch.
	BatchDelay sim.Time
	// CheckpointEvery takes a checkpoint each K executed sequences.
	CheckpointEvery uint64
	// LogWindow is the high-watermark window above the stable
	// checkpoint within which proposals are accepted.
	LogWindow uint64
	// ViewTimeout is how long a replica waits for a known request to
	// execute before suspecting the leader.
	ViewTimeout sim.Time
	// InitialView lets multi-instance deployments (Reptor's COP) start
	// each instance in a different view so leadership is spread across
	// replicas.
	InitialView uint64
}

// DefaultConfig returns a reasonable small-cluster configuration
// tolerating one fault.
func DefaultConfig() Config {
	return Config{
		N:               4,
		F:               1,
		BatchSize:       8,
		BatchDelay:      200 * sim.Microsecond,
		CheckpointEvery: 64,
		LogWindow:       256,
		ViewTimeout:     40 * sim.Millisecond,
	}
}

// Validate checks the quorum arithmetic.
func (c Config) Validate() error {
	if c.N < 3*c.F+1 {
		return fmt.Errorf("pbft: need N >= 3F+1, got N=%d F=%d", c.N, c.F)
	}
	if c.BatchSize < 1 || c.CheckpointEvery < 1 || c.LogWindow < c.CheckpointEvery {
		return fmt.Errorf("pbft: invalid batching/checkpoint config")
	}
	return nil
}

// Quorum returns the 2F+1 agreement quorum size.
func (c Config) Quorum() int { return 2*c.F + 1 }

// Faults injects Byzantine behaviours for testing (zero value = correct).
type Faults struct {
	// Crashed drops all outgoing messages.
	Crashed bool
	// Mute drops outgoing messages of these types.
	Mute map[MsgType]bool
	// EquivocateLeader makes a leader send pre-prepares with corrupted
	// digests to half the backups (detected, triggers view change).
	EquivocateLeader bool
	// CorruptMACs invalidates outgoing authenticators.
	CorruptMACs bool
}

// slot is one sequence number's agreement state.
type slot struct {
	view     uint64
	pp       *PrePrepare
	prepares map[uint32]auth.Digest
	commits  map[uint32]auth.Digest
	sentPrep bool
	sentComm bool
	executed bool
}

func newSlot() *slot {
	return &slot{prepares: make(map[uint32]auth.Digest), commits: make(map[uint32]auth.Digest)}
}

// Replica is one PBFT group member.
type Replica struct {
	id      uint32
	cfg     Config
	node    *fabric.Node
	keyring *auth.Keyring
	app     Application
	faults  Faults

	// peers[i] is the connection used to send to replica i.
	peers map[uint32]transport.Conn
	// clientConns[c] is where replies to client c go.
	clientConns map[uint32]transport.Conn

	view     uint64
	seqNext  uint64 // next sequence the leader assigns
	log      map[uint64]*slot
	executed uint64
	stable   uint64

	checkpoints map[uint64]map[uint32]auth.Digest
	snapshots   map[uint64]auth.Digest // own checkpoint digests

	// Leader batching.
	pending    []Request
	proposed   map[string]bool // request keys already assigned a slot
	batchTimer *sim.Timer

	// requestStore remembers every known-but-unexecuted request so a
	// new leader can re-propose work the old leader dropped.
	requestStore map[string]Request

	// Exactly-once reply cache per client.
	replyCache map[uint32]Reply

	// Liveness: per-request timers and view-change state.
	reqTimers    map[string]*sim.Timer
	viewChanging bool
	vcVotes      map[uint64]map[uint32]ViewChange

	// Stats and hooks.
	committedCount uint64
	execBatches    uint64
	onExecute      func(seq uint64, batch []Request)
	onViewChange   func(newView uint64)
}

// NewReplica builds a replica. Connections are attached afterwards with
// AttachPeer / client requests arrive via HandleClientConn.
func NewReplica(id uint32, cfg Config, node *fabric.Node, keyring *auth.Keyring, app Application) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Replica{
		id:           id,
		cfg:          cfg,
		node:         node,
		keyring:      keyring,
		app:          app,
		view:         cfg.InitialView,
		peers:        make(map[uint32]transport.Conn),
		clientConns:  make(map[uint32]transport.Conn),
		log:          make(map[uint64]*slot),
		checkpoints:  make(map[uint64]map[uint32]auth.Digest),
		snapshots:    make(map[uint64]auth.Digest),
		proposed:     make(map[string]bool),
		replyCache:   make(map[uint32]Reply),
		reqTimers:    make(map[string]*sim.Timer),
		vcVotes:      make(map[uint64]map[uint32]ViewChange),
		requestStore: make(map[string]Request),
	}, nil
}

// ID returns the replica identifier.
func (r *Replica) ID() uint32 { return r.id }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Executed returns the last executed sequence number.
func (r *Replica) Executed() uint64 { return r.executed }

// Stable returns the last stable checkpoint sequence.
func (r *Replica) Stable() uint64 { return r.stable }

// LogSize returns the number of live slots (for GC assertions).
func (r *Replica) LogSize() int { return len(r.log) }

// SetFaults installs fault-injection behaviour.
func (r *Replica) SetFaults(f Faults) { r.faults = f }

// OnExecute installs a hook invoked after each executed batch.
func (r *Replica) OnExecute(fn func(seq uint64, batch []Request)) { r.onExecute = fn }

// OnViewChange installs a hook invoked when a new view is installed.
func (r *Replica) OnViewChange(fn func(uint64)) { r.onViewChange = fn }

// Leader returns the leader replica of a view.
func (r *Replica) Leader(view uint64) uint32 { return uint32(view % uint64(r.cfg.N)) }

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader(r.view) == r.id }

// AttachPeer wires the outbound connection to a peer replica and starts
// consuming inbound messages from it.
func (r *Replica) AttachPeer(id uint32, conn transport.Conn) {
	r.peers[id] = conn
	conn.OnMessage(func(raw []byte) { r.handleEnvelope(raw) })
}

// AttachInbound consumes messages from a peer-initiated connection
// (sender identity travels in the authenticated envelope).
func (r *Replica) AttachInbound(conn transport.Conn) {
	conn.OnMessage(func(raw []byte) { r.handleEnvelope(raw) })
}

// HandleClientConn consumes client requests from a client connection.
func (r *Replica) HandleClientConn(conn transport.Conn) {
	conn.OnMessage(func(raw []byte) {
		msg, err := Decode(raw)
		if err != nil {
			return
		}
		req, ok := msg.(Request)
		if !ok {
			return
		}
		r.clientConns[req.Client] = conn
		r.handleRequest(req)
	})
}

// crypto charges modeled CPU time for cryptographic work.
func (r *Replica) crypto(d sim.Time) { r.node.CPU.Delay(d) }

// broadcast authenticates and sends a message to all other replicas.
func (r *Replica) broadcast(m Message) {
	if r.faults.Crashed || (r.faults.Mute != nil && r.faults.Mute[m.msgType()]) {
		return
	}
	payload := Encode(m)
	p := r.node.Network().Params().Crypto
	r.crypto(auth.AuthenticatorCost(p, r.cfg.N, len(payload)))
	a := r.keyring.Authenticate(payload)
	if r.faults.CorruptMACs {
		corruptAuth(a)
	}
	if pp, isPP := m.(PrePrepare); isPP && r.faults.EquivocateLeader {
		r.equivocate(pp, a)
		return
	}
	env := EncodeEnvelope(Envelope{Sender: r.id, Payload: payload, Auth: a})
	for _, id := range r.peerIDs() {
		_ = r.peers[id].Send(env)
	}
}

// peerIDs returns connected peers in ascending order so send order (and
// therefore the simulation) is deterministic.
func (r *Replica) peerIDs() []uint32 {
	ids := make([]uint32, 0, len(r.peers))
	for id := uint32(0); id < uint32(r.cfg.N); id++ {
		if id != r.id && r.peers[id] != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// equivocate sends conflicting pre-prepares: correct to low-id backups,
// digest-corrupted to the rest.
func (r *Replica) equivocate(pp PrePrepare, a auth.Authenticator) {
	bad := pp
	bad.Digest[0] ^= 0xFF
	goodEnv := EncodeEnvelope(Envelope{Sender: r.id, Payload: Encode(pp), Auth: a})
	badPayload := Encode(bad)
	badEnv := EncodeEnvelope(Envelope{Sender: r.id, Payload: badPayload, Auth: r.keyring.Authenticate(badPayload)})
	for _, id := range r.peerIDs() {
		if id%2 == 0 {
			_ = r.peers[id].Send(goodEnv)
		} else {
			_ = r.peers[id].Send(badEnv)
		}
	}
}

// send authenticates and sends to one replica.
func (r *Replica) send(to uint32, m Message) {
	if r.faults.Crashed || (r.faults.Mute != nil && r.faults.Mute[m.msgType()]) {
		return
	}
	conn := r.peers[to]
	if conn == nil {
		return
	}
	payload := Encode(m)
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(payload)))
	a := r.keyring.Authenticate(payload)
	if r.faults.CorruptMACs {
		corruptAuth(a)
	}
	_ = conn.Send(EncodeEnvelope(Envelope{Sender: r.id, Payload: payload, Auth: a}))
}

func corruptAuth(a auth.Authenticator) {
	for _, mac := range a {
		if len(mac) > 0 {
			mac[0] ^= 0xFF
		}
	}
}

// handleEnvelope verifies and dispatches one replica-to-replica message.
func (r *Replica) handleEnvelope(raw []byte) {
	env, err := DecodeEnvelope(raw)
	if err != nil {
		return
	}
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(env.Payload)))
	if !r.keyring.VerifyFrom(int(env.Sender), env.Payload, env.Auth) {
		return // forged or corrupted: drop (paper III-C: HMACs detect)
	}
	msg, err := Decode(env.Payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case Request: // forwarded by a backup to the leader
		r.handleRequest(m)
	case PrePrepare:
		r.handlePrePrepare(env.Sender, m)
	case Prepare:
		r.handlePrepare(m)
	case Commit:
		r.handleCommit(m)
	case Checkpoint:
		r.handleCheckpoint(m)
	case ViewChange:
		r.handleViewChange(m)
	case NewView:
		r.handleNewView(env.Sender, m)
	}
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

func (r *Replica) handleRequest(req Request) {
	key := req.Key()
	// Exactly-once: answer repeats from the cache.
	if last, ok := r.replyCache[req.Client]; ok && last.Timestamp == req.Timestamp {
		r.reply(req.Client, last)
		return
	}
	if r.proposed[key] {
		return
	}
	if _, known := r.requestStore[key]; !known {
		r.requestStore[key] = req
	}
	// Liveness: watch this request until it executes.
	r.armRequestTimer(key)
	if !r.IsLeader() {
		// Clients broadcast requests to all replicas (see Client), so
		// the leader already has it; backups only watch the timer.
		return
	}
	r.pending = append(r.pending, req)
	r.proposed[key] = true
	if len(r.pending) >= r.cfg.BatchSize {
		r.proposeBatch()
		return
	}
	if r.batchTimer == nil || !r.batchTimer.Pending() {
		r.batchTimer = r.node.Loop().After(r.cfg.BatchDelay, r.proposeBatch)
	}
}

func (r *Replica) armRequestTimer(key string) {
	if r.reqTimers[key] != nil {
		return
	}
	r.reqTimers[key] = r.node.Loop().After(r.cfg.ViewTimeout, func() {
		delete(r.reqTimers, key)
		r.startViewChange(r.view + 1)
	})
}

func (r *Replica) cancelRequestTimer(key string) {
	if t := r.reqTimers[key]; t != nil {
		t.Cancel()
		delete(r.reqTimers, key)
	}
}

// proposeBatch assigns the next sequence number to the pending batch and
// broadcasts the pre-prepare.
func (r *Replica) proposeBatch() {
	if len(r.pending) == 0 || !r.IsLeader() || r.viewChanging {
		return
	}
	if r.seqNext >= r.stable+r.cfg.LogWindow {
		return // watermark window full; retried after the next checkpoint
	}
	n := len(r.pending)
	if n > r.cfg.BatchSize {
		n = r.cfg.BatchSize
	}
	batch := r.pending[:n:n]
	r.pending = r.pending[n:]
	r.seqNext++
	seq := r.seqNext

	p := r.node.Network().Params().Crypto
	d := BatchDigest(batch)
	r.crypto(auth.DigestCost(p, len(Encode(PrePrepare{Batch: batch}))))

	pp := PrePrepare{View: r.view, Seq: seq, Digest: d, Batch: batch}
	s := r.slotFor(seq)
	s.view = r.view
	s.pp = &pp
	r.broadcast(pp)
	r.tryPrepare(seq)
	if len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
}

// ProposeHeartbeat makes a leader propose an empty batch, advancing the
// instance's sequence without ordering any request, but never past round:
// if a proposal at or beyond round is already in flight the call is a
// no-op (otherwise executors waiting on in-flight commits would mint
// ever-higher sequence numbers and the merge would never converge).
// Reptor's executor uses this to fill holes in the merged global order
// when an instance is idle.
func (r *Replica) ProposeHeartbeat(round uint64) {
	if !r.IsLeader() || r.viewChanging {
		return
	}
	if r.seqNext >= round {
		return
	}
	if r.seqNext >= r.stable+r.cfg.LogWindow {
		return
	}
	r.seqNext++
	seq := r.seqNext
	pp := PrePrepare{View: r.view, Seq: seq, Digest: BatchDigest(nil)}
	s := r.slotFor(seq)
	s.view = r.view
	s.pp = &pp
	r.broadcast(pp)
	r.tryPrepare(seq)
}

func (r *Replica) slotFor(seq uint64) *slot {
	s := r.log[seq]
	if s == nil {
		s = newSlot()
		r.log[seq] = s
	}
	return s
}

func (r *Replica) handlePrePrepare(sender uint32, pp PrePrepare) {
	if pp.View != r.view || r.viewChanging {
		return
	}
	if sender != r.Leader(pp.View) {
		return // only the view's leader may propose
	}
	if pp.Seq <= r.stable || pp.Seq > r.stable+r.cfg.LogWindow {
		return // outside watermarks
	}
	// Integrity: the digest must match the carried batch (an
	// equivocating leader fails here).
	p := r.node.Network().Params().Crypto
	r.crypto(auth.DigestCost(p, len(Encode(pp))))
	if BatchDigest(pp.Batch) != pp.Digest {
		r.startViewChange(r.view + 1)
		return
	}
	s := r.slotFor(pp.Seq)
	if s.pp != nil && s.pp.Digest != pp.Digest && s.view == pp.View {
		// Conflicting proposal for the same (view, seq): Byzantine
		// leader; demand a view change.
		r.startViewChange(r.view + 1)
		return
	}
	s.view = pp.View
	s.pp = &pp
	for _, req := range pp.Batch {
		r.proposed[req.Key()] = true
		r.requestStore[req.Key()] = req
		r.armRequestTimer(req.Key()) // watch progress even if first seen here
	}
	if !s.sentPrep {
		s.sentPrep = true
		prep := Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.id}
		s.prepares[r.id] = pp.Digest
		r.broadcast(prep)
	}
	r.tryPrepare(pp.Seq)
	r.tryCommit(pp.Seq)
}

func (r *Replica) handlePrepare(m Prepare) {
	if m.View != r.view || r.viewChanging || m.Replica == r.Leader(m.View) {
		return
	}
	if m.Seq <= r.stable || m.Seq > r.stable+r.cfg.LogWindow {
		return
	}
	s := r.slotFor(m.Seq)
	s.prepares[m.Replica] = m.Digest
	r.tryPrepare(m.Seq)
	r.tryCommit(m.Seq)
}

// prepared implements the PBFT predicate: a matching pre-prepare plus 2F
// prepares (from distinct non-leader replicas, possibly including our own).
func (r *Replica) prepared(s *slot) bool {
	if s.pp == nil {
		return false
	}
	count := 0
	for _, d := range s.prepares {
		if d == s.pp.Digest {
			count++
		}
	}
	return count >= 2*r.cfg.F
}

func (r *Replica) tryPrepare(seq uint64) {
	s := r.log[seq]
	if s == nil || s.sentComm || !r.prepared(s) {
		return
	}
	s.sentComm = true
	c := Commit{View: s.pp.View, Seq: seq, Digest: s.pp.Digest, Replica: r.id}
	s.commits[r.id] = s.pp.Digest
	r.broadcast(c)
	r.tryCommit(seq)
}

func (r *Replica) handleCommit(m Commit) {
	if m.View != r.view || r.viewChanging {
		return
	}
	if m.Seq <= r.stable || m.Seq > r.stable+r.cfg.LogWindow {
		return
	}
	s := r.slotFor(m.Seq)
	s.commits[m.Replica] = m.Digest
	r.tryCommit(m.Seq)
}

// committed requires prepared plus a 2F+1 commit quorum.
func (r *Replica) committedSlot(s *slot) bool {
	if s.pp == nil || !r.prepared(s) {
		return false
	}
	count := 0
	for _, d := range s.commits {
		if d == s.pp.Digest {
			count++
		}
	}
	return count >= r.cfg.Quorum()
}

func (r *Replica) tryCommit(seq uint64) {
	s := r.log[seq]
	if s == nil || !r.committedSlot(s) {
		return
	}
	r.tryExecute()
}

// tryExecute applies committed batches strictly in sequence order.
func (r *Replica) tryExecute() {
	for {
		next := r.executed + 1
		s := r.log[next]
		if s == nil || s.executed || !r.committedSlot(s) {
			return
		}
		s.executed = true
		r.executed = next
		r.committedCount++
		r.execBatches++
		for _, req := range s.pp.Batch {
			result := r.app.Execute(req.Op)
			rep := Reply{View: r.view, Timestamp: req.Timestamp, Client: req.Client, Replica: r.id, Result: result}
			r.replyCache[req.Client] = rep
			r.reply(req.Client, rep)
			r.cancelRequestTimer(req.Key())
			delete(r.requestStore, req.Key())
		}
		if r.onExecute != nil {
			r.onExecute(next, s.pp.Batch)
		}
		if r.executed%r.cfg.CheckpointEvery == 0 {
			r.takeCheckpoint(r.executed)
		}
	}
}

func (r *Replica) reply(client uint32, rep Reply) {
	if r.faults.Crashed {
		return
	}
	conn := r.clientConns[client]
	if conn == nil {
		return
	}
	payload := Encode(rep)
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(payload)))
	_ = conn.Send(payload)
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

func (r *Replica) takeCheckpoint(seq uint64) {
	d := r.app.Snapshot()
	r.snapshots[seq] = d
	cp := Checkpoint{Seq: seq, Digest: d, Replica: r.id}
	r.recordCheckpoint(cp)
	r.broadcast(cp)
}

func (r *Replica) handleCheckpoint(m Checkpoint) {
	r.recordCheckpoint(m)
}

func (r *Replica) recordCheckpoint(m Checkpoint) {
	if m.Seq <= r.stable {
		return
	}
	set := r.checkpoints[m.Seq]
	if set == nil {
		set = make(map[uint32]auth.Digest)
		r.checkpoints[m.Seq] = set
	}
	set[m.Replica] = m.Digest
	// Count matching digests.
	counts := make(map[auth.Digest]int)
	for _, d := range set {
		counts[d]++
	}
	for d, c := range counts {
		if c >= r.cfg.Quorum() && r.snapshots[m.Seq] == d {
			r.advanceStable(m.Seq)
			return
		}
	}
}

// advanceStable garbage-collects the log below the new stable checkpoint.
func (r *Replica) advanceStable(seq uint64) {
	if seq <= r.stable {
		return
	}
	r.stable = seq
	for s := range r.log {
		if s <= seq {
			delete(r.log, s)
		}
	}
	for s := range r.checkpoints {
		if s <= seq {
			delete(r.checkpoints, s)
		}
	}
	for s := range r.snapshots {
		if s < seq {
			delete(r.snapshots, s)
		}
	}
	if r.IsLeader() && len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view || (r.viewChanging && newView <= r.pendingView()) {
		return
	}
	r.viewChanging = true
	// Cancel batch work; collect prepared proofs above the stable point.
	if r.batchTimer != nil {
		r.batchTimer.Cancel()
	}
	var proofs []PreparedProof
	for seq, s := range r.log {
		if s.pp != nil && r.prepared(s) && !s.executed {
			proofs = append(proofs, PreparedProof{View: s.pp.View, Seq: seq, Digest: s.pp.Digest, Batch: s.pp.Batch})
		}
	}
	vc := ViewChange{NewView: newView, Stable: r.stable, Prepared: proofs, Replica: r.id}
	r.recordViewChange(vc)
	r.broadcast(vc)
	// If the new leader's NEW-VIEW never arrives, escalate further.
	r.node.Loop().After(r.cfg.ViewTimeout, func() {
		if r.viewChanging && r.view < newView {
			r.startViewChange(newView + 1)
		}
	})
}

func (r *Replica) pendingView() uint64 {
	var max uint64
	for v := range r.vcVotes {
		if _, voted := r.vcVotes[v][r.id]; voted && v > max {
			max = v
		}
	}
	return max
}

func (r *Replica) handleViewChange(m ViewChange) {
	if m.NewView <= r.view {
		return
	}
	r.recordViewChange(m)
	votes := r.vcVotes[m.NewView]
	// Join an in-progress view change once F+1 replicas demand it (we
	// cannot all be faulty).
	if len(votes) >= r.cfg.F+1 {
		r.startViewChange(m.NewView)
	}
	if r.Leader(m.NewView) == r.id && len(votes) >= r.cfg.Quorum() {
		r.installNewView(m.NewView)
	}
}

func (r *Replica) recordViewChange(m ViewChange) {
	set := r.vcVotes[m.NewView]
	if set == nil {
		set = make(map[uint32]ViewChange)
		r.vcVotes[m.NewView] = set
	}
	set[m.Replica] = m
}

// installNewView (new leader): re-propose every prepared slot reported by
// the view-change quorum, filling gaps with empty batches.
func (r *Replica) installNewView(v uint64) {
	votes := r.vcVotes[v]
	maxStable := r.stable
	best := make(map[uint64]PreparedProof)
	var maxSeq uint64
	for _, vc := range votes {
		if vc.Stable > maxStable {
			maxStable = vc.Stable
		}
		for _, p := range vc.Prepared {
			if cur, ok := best[p.Seq]; !ok || p.View > cur.View {
				best[p.Seq] = p
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
	}
	var pps []PrePrepare
	for seq := maxStable + 1; seq <= maxSeq; seq++ {
		if p, ok := best[seq]; ok {
			pps = append(pps, PrePrepare{View: v, Seq: seq, Digest: p.Digest, Batch: p.Batch})
		} else {
			pps = append(pps, PrePrepare{View: v, Seq: seq, Digest: BatchDigest(nil)})
		}
	}
	nv := NewView{View: v, PrePrepares: pps}
	r.broadcast(nv)
	r.adoptNewView(v, nv)
}

func (r *Replica) handleNewView(sender uint32, nv NewView) {
	if nv.View <= r.view || sender != r.Leader(nv.View) {
		return
	}
	r.adoptNewView(nv.View, nv)
}

// adoptNewView installs the view and replays the re-proposed slots.
func (r *Replica) adoptNewView(v uint64, nv NewView) {
	r.view = v
	r.viewChanging = false
	for view := range r.vcVotes {
		if view <= v {
			delete(r.vcVotes, view)
		}
	}
	// Reset per-slot voting state for re-proposed slots.
	var maxSeq uint64
	for _, pp := range nv.PrePrepares {
		pp := pp
		if pp.Seq <= r.executed {
			continue // already executed here; state transfer not needed
		}
		s := newSlot()
		s.view = v
		s.pp = &pp
		r.log[pp.Seq] = s
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		if r.Leader(v) != r.id {
			s.sentPrep = true
			s.prepares[r.id] = pp.Digest
			r.broadcast(Prepare{View: v, Seq: pp.Seq, Digest: pp.Digest, Replica: r.id})
		}
	}
	if maxSeq > r.seqNext {
		r.seqNext = maxSeq
	}
	if r.seqNext < r.executed {
		r.seqNext = r.executed
	}
	// Rebuild proposal bookkeeping: only the re-proposed slots count as
	// in flight; everything else known-but-unexecuted goes back to the
	// new leader's queue.
	r.pending = nil
	r.proposed = make(map[string]bool)
	for _, pp := range nv.PrePrepares {
		for _, req := range pp.Batch {
			r.proposed[req.Key()] = true
		}
	}
	for _, key := range r.storedKeys() {
		r.armRequestTimer(key)
		if r.IsLeader() && !r.proposed[key] {
			r.pending = append(r.pending, r.requestStore[key])
			r.proposed[key] = true
		}
	}
	if r.onViewChange != nil {
		r.onViewChange(v)
	}
	if r.IsLeader() && len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
	for _, pp := range nv.PrePrepares {
		r.tryPrepare(pp.Seq)
		r.tryCommit(pp.Seq)
	}
}

// storedKeys returns requestStore keys in sorted order for deterministic
// re-proposal.
func (r *Replica) storedKeys() []string {
	keys := make([]string, 0, len(r.requestStore))
	for k := range r.requestStore {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
