package pbft

import (
	"fmt"
	"sort"

	"rubin/internal/auth"
	"rubin/internal/fabric"
	"rubin/internal/metrics"
	"rubin/internal/msgnet"
	"rubin/internal/obs"
	"rubin/internal/sim"
)

// Application is the replicated service executed by the agreement layer.
type Application interface {
	// Execute applies one ordered operation and returns its result.
	Execute(op []byte) []byte
	// Snapshot returns a digest of the current state (checkpoints).
	Snapshot() auth.Digest
}

// StateTransferable is the optional application interface enabling PBFT
// state transfer: applications that can serialize and restore their full
// state let a restarted or lagging replica adopt a peer's stable
// checkpoint instead of replaying the whole history. UnmarshalState must
// fully replace the current state, and a restored state must produce the
// same Snapshot digest as the original.
//
// The marshaled state travels in one StateResponse on msgnet's bulk
// class: snapshots larger than the transport's frame limit are chunked
// and reassembled transparently, so state size is bounded only by
// msgnet.Options.MaxTransfer.
type StateTransferable interface {
	MarshalState() []byte
	UnmarshalState(state []byte) error
}

// PartitionedState is the optional application interface enabling
// incremental checkpoints and Merkle partial state transfer (Castro &
// Liskov §6.3, hierarchical state partitions). The application's state is
// split into a fixed number of partitions, each with a stable digest;
// the root digest returned by Snapshot must be recomputable from a
// transfer header plus the partition digests via ComposeRoot.
//
// With this interface a replica retains checkpoints as delta chains (one
// materialized base plus, per later checkpoint, only the partitions
// dirtied since the previous one) and serves state transfer as a subtree
// negotiation: the fetcher advertises its partition digests, the
// responder streams only divergent partitions, and the fetcher verifies
// every partition against the certified root's digest list on arrival.
type PartitionedState interface {
	StateTransferable
	// PartitionCount returns the fixed number of leaf partitions.
	PartitionCount() int
	// PartitionDigests returns the current digest of every partition.
	PartitionDigests() []auth.Digest
	// CheckpointDelta returns the partitions mutated since the
	// application's applied-operation counter read since.
	CheckpointDelta(since uint64) []int
	// Applied returns the applied-operation counter (the clock
	// CheckpointDelta is expressed in).
	Applied() uint64
	// MarshalPartition serializes one partition; auth.Hash of the result
	// must equal its entry in PartitionDigests.
	MarshalPartition(part int) []byte
	// MarshalHeader serializes the state outside the partitions (e.g.
	// the applied counter and any non-partitioned sections).
	MarshalHeader() []byte
	// ComposeRoot statelessly recomputes the Snapshot root a store with
	// this header and these partition digests would report.
	ComposeRoot(header []byte, digests []auth.Digest) auth.Digest
	// ApplyTransfer atomically replaces the full state from a header
	// plus one serialized partition per index; the state must be
	// unchanged on error.
	ApplyTransfer(header []byte, parts [][]byte) error
}

// TentativeReader is the optional application interface enabling the
// read-only fast path (Castro & Liskov §4.4): applications that can
// evaluate side-effect-free operations without mutating state let a
// replica answer ReadRequests tentatively from its last-executed state,
// bypassing agreement. ExecuteReadOnly must return exactly what Execute
// would return for the same operation and state, and must leave the
// state — including any snapshot digest — byte-identical: replicas serve
// tentative reads at different times, and a read that perturbed state
// would diverge their checkpoints. Applications without this interface
// simply never answer ReadRequests; clients fall back to the ordered
// path on timeout.
type TentativeReader interface {
	ExecuteReadOnly(op []byte) []byte
}

// Config tunes a replica group.
type Config struct {
	// N is the group size; F the tolerated faults. N must be >= 3F+1.
	N, F int
	// BatchSize is the maximum requests per pre-prepare.
	BatchSize int
	// BatchDelay bounds how long the leader waits to fill a batch.
	BatchDelay sim.Time
	// CheckpointEvery takes a checkpoint each K executed sequences.
	CheckpointEvery uint64
	// LogWindow is the high-watermark window above the stable
	// checkpoint within which proposals are accepted.
	LogWindow uint64
	// ViewTimeout is how long a replica waits for a known request to
	// execute before suspecting the leader.
	ViewTimeout sim.Time
	// InitialView lets multi-instance deployments (Reptor's COP) start
	// each instance in a different view so leadership is spread across
	// replicas.
	InitialView uint64
	// FullStateTransfer disables the incremental checkpoint / partial
	// transfer machinery even when the application implements
	// PartitionedState: every checkpoint retains a full serialized
	// snapshot and state transfer ships full StateResponse blobs — the
	// pre-Merkle behavior, kept as the measured baseline of experiment
	// E12. The flag must be uniform across a group: it selects the
	// transfer protocol both sides speak.
	FullStateTransfer bool
}

// DefaultConfig returns a reasonable small-cluster configuration
// tolerating one fault.
func DefaultConfig() Config {
	return Config{
		N:               4,
		F:               1,
		BatchSize:       8,
		BatchDelay:      200 * sim.Microsecond,
		CheckpointEvery: 64,
		LogWindow:       256,
		ViewTimeout:     40 * sim.Millisecond,
	}
}

// Validate checks the quorum arithmetic.
func (c Config) Validate() error {
	if c.N < 3*c.F+1 {
		return fmt.Errorf("pbft: need N >= 3F+1, got N=%d F=%d", c.N, c.F)
	}
	if c.BatchSize < 1 || c.CheckpointEvery < 1 || c.LogWindow < c.CheckpointEvery {
		return fmt.Errorf("pbft: invalid batching/checkpoint config")
	}
	return nil
}

// Quorum returns the 2F+1 agreement quorum size.
func (c Config) Quorum() int { return 2*c.F + 1 }

// Faults injects Byzantine behaviours for testing (zero value = correct).
type Faults struct {
	// Crashed drops all outgoing messages.
	Crashed bool
	// Mute drops outgoing messages of these types.
	Mute map[MsgType]bool
	// EquivocateLeader makes a leader send pre-prepares with corrupted
	// digests to half the backups (detected, triggers view change).
	EquivocateLeader bool
	// CorruptMACs invalidates outgoing authenticators.
	CorruptMACs bool
	// SendDelay postpones every outgoing message by this duration (a
	// slow or deliberately delaying replica).
	SendDelay sim.Time
	// CorruptStateParts flips a byte in every served StatePart payload —
	// a Byzantine responder feeding junk into a partial state transfer
	// (caught by the fetcher's per-partition digest check on arrival).
	CorruptStateParts bool
}

// slot is one sequence number's agreement state.
type slot struct {
	view     uint64
	pp       *PrePrepare
	prepares map[uint32]auth.Digest
	commits  map[uint32]auth.Digest
	sentPrep bool
	sentComm bool
	executed bool
}

func newSlot() *slot {
	return &slot{prepares: make(map[uint32]auth.Digest), commits: make(map[uint32]auth.Digest)}
}

// Replica is one PBFT group member.
type Replica struct {
	id      uint32
	cfg     Config
	node    *fabric.Node
	keyring *auth.Keyring
	app     Application
	faults  Faults

	// peers[i] is the msgnet handle used to send to replica i.
	peers map[uint32]*msgnet.Peer
	// clientConns[c] is where replies to client c go.
	clientConns map[uint32]*msgnet.Peer

	view     uint64
	seqNext  uint64 // next sequence the leader assigns
	log      map[uint64]*slot
	executed uint64
	stable   uint64

	checkpoints map[uint64]map[uint32]auth.Digest
	snapshots   map[uint64]auth.Digest // own checkpoint digests
	states      map[uint64][]byte      // full snapshots per checkpoint (non-partitioned apps)

	// cps retains partitioned-application checkpoints as a delta chain:
	// the oldest retained record is a materialized base holding every
	// partition; each later record holds only the partitions dirtied
	// since the previous retained record. advanceStable folds the chain
	// so retention stays O(state + recent deltas) instead of the old
	// O(retained checkpoints × state).
	cps map[uint64]*cpRecord

	// State transfer: the latest response retained per authenticated
	// sender — bounded by N, so a Byzantine peer streaming responses
	// only ever occupies its own slot. stateTarget is the newest
	// quorum-certified checkpoint we know we are missing; fetch retries
	// stop once execution reaches it.
	stateVotes     map[uint32]StateResponse
	stateFetching  bool
	stateTarget    uint64
	stateRetry     sim.Timer
	stateTransfers uint64

	// Partial-transfer fetch state: one in-progress transfer per
	// authenticated sender (manifest + the divergent partitions received
	// and digest-verified so far). A sender whose manifest or partition
	// fails verification is dropped and banned until the next successful
	// adoption; stateRejects counts every such rejection.
	stateXfers   map[uint32]*stateXfer
	stateBanned  map[uint32]bool
	stateRejects *metrics.Counter

	// Checkpoint cost accounting (reported by E12): every checkpoint's
	// serialized bytes, plus the steady-state subset — checkpoints that
	// were true deltas (or, for non-partitioned apps, any checkpoint
	// after the instance's first). stateBytesServed counts the bytes
	// this replica shipped to fetchers.
	checkpointCount  uint64
	checkpointBytes  uint64
	steadyCpCount    uint64
	steadyCpBytes    uint64
	stateBytesServed uint64

	// stopped marks a crashed process: no sends, no receives, no timers.
	stopped bool

	// Leader batching.
	pending    []Request
	proposed   map[string]bool // request keys already assigned a slot
	batchTimer sim.Timer

	// requestStore remembers every known-but-unexecuted request so a
	// new leader can re-propose work the old leader dropped.
	requestStore map[string]Request

	// Exactly-once reply cache per client.
	replyCache map[uint32]Reply

	// Liveness: per-request timers and view-change state.
	reqTimers    map[string]sim.Timer
	viewChanging bool
	vcVotes      map[uint64]map[uint32]ViewChange

	// Stats and hooks.
	committedCount    uint64
	execBatches       uint64
	readsServed       uint64
	onExecute         func(seq uint64, batch []Request)
	onViewChange      func(newView uint64)
	onCheckpointAdopt func(seq uint64)
	tracer            *obs.Tracer

	// sendFaults counts every surfaced delivery failure on this
	// replica's outbound traffic — nothing is silently discarded.
	sendFaults *metrics.Counter

	// peerIDScratch backs peerIDs so per-broadcast id collection does not
	// allocate; consumers use the slice synchronously.
	peerIDScratch []uint32
}

// NewReplica builds a replica. Connections are attached afterwards with
// AttachPeer / client requests arrive via HandleClientConn.
func NewReplica(id uint32, cfg Config, node *fabric.Node, keyring *auth.Keyring, app Application) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Replica{
		id:           id,
		cfg:          cfg,
		node:         node,
		keyring:      keyring,
		app:          app,
		view:         cfg.InitialView,
		peers:        make(map[uint32]*msgnet.Peer),
		clientConns:  make(map[uint32]*msgnet.Peer),
		log:          make(map[uint64]*slot),
		checkpoints:  make(map[uint64]map[uint32]auth.Digest),
		snapshots:    make(map[uint64]auth.Digest),
		states:       make(map[uint64][]byte),
		cps:          make(map[uint64]*cpRecord),
		stateVotes:   make(map[uint32]StateResponse),
		stateXfers:   make(map[uint32]*stateXfer),
		stateBanned:  make(map[uint32]bool),
		stateRejects: metrics.NewCounter(),
		proposed:     make(map[string]bool),
		replyCache:   make(map[uint32]Reply),
		reqTimers:    make(map[string]sim.Timer),
		vcVotes:      make(map[uint64]map[uint32]ViewChange),
		requestStore: make(map[string]Request),
		sendFaults:   metrics.NewCounter(),
	}, nil
}

// ID returns the replica identifier.
func (r *Replica) ID() uint32 { return r.id }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Executed returns the last executed sequence number.
func (r *Replica) Executed() uint64 { return r.executed }

// Stable returns the last stable checkpoint sequence.
func (r *Replica) Stable() uint64 { return r.stable }

// LogSize returns the number of live slots (for GC assertions).
func (r *Replica) LogSize() int { return len(r.log) }

// StateTransfers returns the number of completed state transfers.
func (r *Replica) StateTransfers() uint64 { return r.stateTransfers }

// StateRejects returns how many transfer manifests or partitions failed
// digest verification on arrival (each one dropped its sender).
func (r *Replica) StateRejects() uint64 { return r.stateRejects.Value() }

// StateBytesServed returns the serialized state bytes this replica
// shipped to fetching peers (full snapshots or divergent partitions).
func (r *Replica) StateBytesServed() uint64 { return r.stateBytesServed }

// CheckpointStats returns how many checkpoints this replica took and
// their total serialized bytes (the data newly retained and digested per
// checkpoint — for partitioned applications only the dirty partitions).
func (r *Replica) CheckpointStats() (count, bytes uint64) {
	return r.checkpointCount, r.checkpointBytes
}

// CheckpointSteadyStats returns the steady-state subset of
// CheckpointStats: delta checkpoints for partitioned applications, or
// every checkpoint after the instance's first otherwise. This is the
// per-interval cost once the base exists — the number E12 pins sublinear
// in state size.
func (r *Replica) CheckpointSteadyStats() (count, bytes uint64) {
	return r.steadyCpCount, r.steadyCpBytes
}

// RetainedStateBytes returns the serialized state bytes currently held
// for serving state transfer (full snapshots plus delta-chain records).
// The bounded-retention regression test asserts this stays O(state), not
// O(retained checkpoints × state).
func (r *Replica) RetainedStateBytes() uint64 {
	var total uint64
	for _, st := range r.states {
		total += uint64(len(st))
	}
	for _, rec := range r.cps {
		total += uint64(len(rec.header))
		for _, p := range rec.parts {
			total += uint64(len(p))
		}
	}
	return total
}

// cpRecord is one retained checkpoint of a partitioned application. A
// base record materializes every partition; a delta record holds only
// the partitions dirtied since the previous retained record, so serving
// a partition walks the chain newest-first to the base.
type cpRecord struct {
	applied uint64 // the application's applied counter at the checkpoint
	header  []byte
	digests []auth.Digest
	parts   map[int][]byte
	base    bool
}

// stateXfer is one in-progress partial transfer from one sender: the
// self-consistency-verified manifest plus the partitions received and
// digest-verified so far.
type stateXfer struct {
	manifest StateManifest
	parts    map[int][]byte
}

// SetFaults installs fault-injection behaviour.
func (r *Replica) SetFaults(f Faults) { r.faults = f }

// Stop halts the replica permanently: a stopped replica sends nothing,
// ignores all inbound traffic and fires no timers — the process-crash
// model used by the chaos subsystem. Recovery is a fresh Replica plus
// state transfer (see Cluster.Restart), mirroring a real reboot that
// loses all volatile state.
func (r *Replica) Stop() {
	r.stopped = true
	r.batchTimer.Cancel()
	for _, t := range r.reqTimers {
		t.Cancel()
	}
	r.reqTimers = make(map[string]sim.Timer)
	r.stateRetry.Cancel()
}

// OnExecute installs a hook invoked after each executed batch.
func (r *Replica) OnExecute(fn func(seq uint64, batch []Request)) { r.onExecute = fn }

// SetTracer attaches an observability tracer recording the request
// milestones this replica observes (leader receipt, proposal broadcast,
// commit/execute). A nil tracer — the default — costs one pointer test
// per milestone site.
func (r *Replica) SetTracer(t *obs.Tracer) { r.tracer = t }

// OnViewChange installs a hook invoked when a new view is installed.
func (r *Replica) OnViewChange(fn func(uint64)) { r.onViewChange = fn }

// OnCheckpointAdopt installs a hook invoked when a state transfer
// fast-forwards execution to an adopted checkpoint. The sequences up to
// seq were NOT delivered through OnExecute — their batches are folded
// into the adopted application state and their contents are not
// recoverable here. Consumers that derive an order from OnExecute (the
// Reptor executor) must account for the jump or they will wait forever
// for deliveries that can no longer happen.
func (r *Replica) OnCheckpointAdopt(fn func(seq uint64)) { r.onCheckpointAdopt = fn }

// Leader returns the leader replica of a view.
func (r *Replica) Leader(view uint64) uint32 { return uint32(view % uint64(r.cfg.N)) }

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader(r.view) == r.id }

// AttachPeer wires the outbound msgnet peer to a replica and starts
// consuming inbound messages from it. Asynchronous delivery failures
// (connection death with messages queued) feed the fault counter.
func (r *Replica) AttachPeer(id uint32, p *msgnet.Peer) {
	r.peers[id] = p
	p.OnMessage(func(_ msgnet.Class, raw []byte) { r.handleEnvelope(raw) })
	p.OnSendError(func(error) { r.sendFaults.Inc() })
}

// AttachInbound consumes messages from a peer-initiated connection
// (sender identity travels in the authenticated envelope).
func (r *Replica) AttachInbound(p *msgnet.Peer) {
	p.OnMessage(func(_ msgnet.Class, raw []byte) { r.handleEnvelope(raw) })
}

// HandleClientConn consumes client requests from a client connection.
func (r *Replica) HandleClientConn(p *msgnet.Peer) {
	p.OnSendError(func(error) { r.sendFaults.Inc() })
	p.OnMessage(func(_ msgnet.Class, raw []byte) {
		msg, err := Decode(raw)
		if err != nil {
			return
		}
		switch req := msg.(type) {
		case Request:
			r.clientConns[req.Client] = p
			r.handleRequest(req)
		case ReadRequest:
			r.clientConns[req.Client] = p
			r.handleReadRequest(req)
		}
	})
}

// crypto charges modeled CPU time for cryptographic work.
func (r *Replica) crypto(d sim.Time) { r.node.CPU.Delay(d) }

// deferSend runs fn now, or after the injected SendDelay fault. A delayed
// send re-checks the crash state at fire time: a replica that Stop()s
// while a send is queued must not transmit afterwards.
func (r *Replica) deferSend(fn func()) {
	if r.faults.SendDelay > 0 {
		r.node.Loop().After(r.faults.SendDelay, func() {
			if !r.stopped {
				fn()
			}
		})
		return
	}
	fn()
}

// broadcast authenticates and sends a message to all other replicas.
func (r *Replica) broadcast(m Message) {
	if r.stopped || r.faults.Crashed || (r.faults.Mute != nil && r.faults.Mute[m.msgType()]) {
		return
	}
	payload := Encode(m)
	p := r.node.Network().Params().Crypto
	r.crypto(auth.AuthenticatorCost(p, r.cfg.N, len(payload)))
	a := r.keyring.Authenticate(payload)
	if r.faults.CorruptMACs {
		corruptAuth(a)
	}
	if pp, isPP := m.(PrePrepare); isPP && r.faults.EquivocateLeader {
		r.deferSend(func() { r.equivocate(pp, a) })
		return
	}
	env := EncodeEnvelope(Envelope{Sender: r.id, Payload: payload, Auth: a})
	cls := classFor(m.msgType())
	r.deferSend(func() {
		ids := r.peerIDs()
		// Peers with no live handle (e.g. mid-re-dial after a Restart)
		// are delivery failures too — counted, never silently skipped.
		r.sendFaults.Add(uint64(r.cfg.N - 1 - len(ids)))
		for _, id := range ids {
			if err := r.peers[id].Send(cls, env); err != nil {
				r.sendFaults.Inc()
			}
		}
	})
}

// classFor routes protocol messages onto msgnet traffic classes: bulk
// state transfer — full snapshots, partial-transfer manifests and
// partition payloads — rides ClassBulk so a large transfer cannot
// head-of-line-block the latency-critical agreement messages.
func classFor(t MsgType) msgnet.Class {
	switch t {
	case MsgStateResponse, MsgStateManifest, MsgStatePart:
		return msgnet.ClassBulk
	}
	return msgnet.ClassControl
}

// SendFaults returns the surfaced delivery failures of this replica
// instance (reported by experiments E5/E7).
func (r *Replica) SendFaults() uint64 { return r.sendFaults.Value() }

// peerIDs returns connected peers in ascending order so send order (and
// therefore the simulation) is deterministic. The returned slice aliases a
// per-replica scratch buffer: it is valid only until the next peerIDs call,
// which is fine for the broadcast loops that consume it synchronously.
func (r *Replica) peerIDs() []uint32 {
	ids := r.peerIDScratch[:0]
	for id := uint32(0); id < uint32(r.cfg.N); id++ {
		if id != r.id && r.peers[id] != nil {
			ids = append(ids, id)
		}
	}
	r.peerIDScratch = ids
	return ids
}

// equivocate sends conflicting pre-prepares: correct to low-id backups,
// digest-corrupted to the rest.
func (r *Replica) equivocate(pp PrePrepare, a auth.Authenticator) {
	bad := pp
	bad.Digest[0] ^= 0xFF
	goodEnv := EncodeEnvelope(Envelope{Sender: r.id, Payload: Encode(pp), Auth: a})
	badPayload := Encode(bad)
	badEnv := EncodeEnvelope(Envelope{Sender: r.id, Payload: badPayload, Auth: r.keyring.Authenticate(badPayload)})
	for _, id := range r.peerIDs() {
		env := goodEnv
		if id%2 != 0 {
			env = badEnv
		}
		if err := r.peers[id].Send(msgnet.ClassControl, env); err != nil {
			r.sendFaults.Inc()
		}
	}
}

// send authenticates and sends to one replica.
func (r *Replica) send(to uint32, m Message) {
	if r.stopped || r.faults.Crashed || (r.faults.Mute != nil && r.faults.Mute[m.msgType()]) {
		return
	}
	peer := r.peers[to]
	if peer == nil {
		r.sendFaults.Inc() // no live handle: a delivery failure, not a silent skip
		return
	}
	payload := Encode(m)
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(payload)))
	a := r.keyring.Authenticate(payload)
	if r.faults.CorruptMACs {
		corruptAuth(a)
	}
	env := EncodeEnvelope(Envelope{Sender: r.id, Payload: payload, Auth: a})
	cls := classFor(m.msgType())
	r.deferSend(func() {
		if err := peer.Send(cls, env); err != nil {
			r.sendFaults.Inc()
		}
	})
}

func corruptAuth(a auth.Authenticator) {
	for _, mac := range a {
		if len(mac) > 0 {
			mac[0] ^= 0xFF
		}
	}
}

// handleEnvelope verifies and dispatches one replica-to-replica message.
func (r *Replica) handleEnvelope(raw []byte) {
	if r.stopped {
		return
	}
	env, err := DecodeEnvelope(raw)
	if err != nil {
		return
	}
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(env.Payload)))
	if !r.keyring.VerifyFrom(int(env.Sender), env.Payload, env.Auth) {
		return // forged or corrupted: drop (paper III-C: HMACs detect)
	}
	msg, err := Decode(env.Payload)
	if err != nil {
		return
	}
	// Bind claimed identity to the authenticated sender: vote-carrying
	// messages whose in-payload Replica field does not match the MAC'd
	// envelope sender are forgeries (one Byzantine peer spoofing other
	// replicas' votes to fabricate quorums) and are dropped here so no
	// handler ever counts a vote under a spoofed identity.
	if claimed, ok := claimedReplica(msg); ok && claimed != env.Sender {
		return
	}
	switch m := msg.(type) {
	case Request: // forwarded by a backup to the leader
		r.handleRequest(m)
	case PrePrepare:
		r.handlePrePrepare(env.Sender, m)
	case Prepare:
		r.handlePrepare(m)
	case Commit:
		r.handleCommit(m)
	case Checkpoint:
		r.handleCheckpoint(env.Sender, m)
	case ViewChange:
		r.handleViewChange(m)
	case NewView:
		r.handleNewView(env.Sender, m)
	case StateRequest:
		r.handleStateRequest(env.Sender, m)
	case StateResponse:
		r.handleStateResponse(env.Sender, m)
	case StateManifest:
		r.handleStateManifest(env.Sender, m)
	case StatePart:
		r.handleStatePart(env.Sender, m)
	}
}

// claimedReplica extracts the replica identity a message claims to
// originate from, for messages that carry one.
func claimedReplica(m Message) (uint32, bool) {
	switch v := m.(type) {
	case Prepare:
		return v.Replica, true
	case Commit:
		return v.Replica, true
	case Checkpoint:
		return v.Replica, true
	case ViewChange:
		return v.Replica, true
	case StateRequest:
		return v.Replica, true
	case StateResponse:
		return v.Replica, true
	case StateManifest:
		return v.Replica, true
	case StatePart:
		return v.Replica, true
	default:
		return 0, false
	}
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

func (r *Replica) handleRequest(req Request) {
	if r.stopped {
		return
	}
	key := req.Key()
	// Exactly-once: answer repeats from the cache.
	if last, ok := r.replyCache[req.Client]; ok && last.Timestamp == req.Timestamp {
		r.reply(req.Client, last)
		return
	}
	if r.proposed[key] {
		return
	}
	if _, known := r.requestStore[key]; !known {
		r.requestStore[key] = req
	}
	// Liveness: watch this request until it executes.
	r.armRequestTimer(key)
	if !r.IsLeader() {
		// Clients broadcast requests to all replicas (see Client), so
		// the leader already has it; backups only watch the timer.
		return
	}
	if r.tracer != nil {
		r.tracer.MarkLeaderRecv(key, r.node.Loop().Now())
	}
	r.pending = append(r.pending, req)
	r.proposed[key] = true
	if len(r.pending) >= r.cfg.BatchSize {
		r.proposeBatch()
		return
	}
	if !r.batchTimer.Pending() {
		r.batchTimer = r.node.Loop().After(r.cfg.BatchDelay, r.proposeBatch)
	}
}

func (r *Replica) armRequestTimer(key string) {
	if _, armed := r.reqTimers[key]; armed {
		return
	}
	r.reqTimers[key] = r.node.Loop().After(r.cfg.ViewTimeout, func() {
		delete(r.reqTimers, key)
		r.startViewChange(r.view + 1)
	})
}

func (r *Replica) cancelRequestTimer(key string) {
	if t, ok := r.reqTimers[key]; ok {
		t.Cancel()
		delete(r.reqTimers, key)
	}
}

// proposeBatch assigns the next sequence number to the pending batch and
// broadcasts the pre-prepare.
func (r *Replica) proposeBatch() {
	if r.stopped || len(r.pending) == 0 || !r.IsLeader() || r.viewChanging {
		return
	}
	if r.seqNext >= r.stable+r.cfg.LogWindow {
		return // watermark window full; retried after the next checkpoint
	}
	n := len(r.pending)
	if n > r.cfg.BatchSize {
		n = r.cfg.BatchSize
	}
	batch := r.pending[:n:n]
	r.pending = r.pending[n:]
	r.seqNext++
	seq := r.seqNext

	params := r.node.Network().Params()
	// Ordering is leader work: validating, bookkeeping and marshalling
	// every request of the batch into the proposal burns leader CPU.
	// The proposal leaves only after the host CPU has actually served
	// that work, so a saturated leader delays its own pipeline — the
	// single-pipeline bottleneck COP spreads across K leaders.
	var order sim.Time
	for _, req := range batch {
		order += params.Protocol.OrderCost(len(req.Op))
	}
	p := params.Crypto
	d := BatchDigest(batch)
	r.crypto(auth.DigestCost(p, len(Encode(PrePrepare{Batch: batch}))))

	pp := PrePrepare{View: r.view, Seq: seq, Digest: d, Batch: batch}
	s := r.slotFor(seq)
	s.view = r.view
	s.pp = &pp
	r.node.CPU.Acquire(order, func() {
		// A view change while the proposal was being marshalled makes it
		// stale: the requests stay in requestStore and the new leader
		// re-proposes them.
		if r.stopped || r.viewChanging || r.view != pp.View {
			return
		}
		if r.tracer != nil {
			now := r.node.Loop().Now()
			for _, req := range pp.Batch {
				r.tracer.MarkPropose(req.Key(), now)
			}
		}
		r.broadcast(pp)
		r.tryPrepare(seq)
	})
	if len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
}

// ProposeHeartbeat makes a leader propose empty batches for every
// unassigned sequence up to and including upTo — a ranged fill: one call
// covers a contiguous run of holes, and the resulting agreements run
// pipelined (all pre-prepares broadcast back-to-back) instead of one full
// three-phase round per slot. It never proposes past upTo: if proposals at
// or beyond upTo are already in flight the call is a no-op (otherwise
// executors waiting on in-flight commits would mint ever-higher sequence
// numbers and the merge would never converge). Reptor's executor uses this
// to fill holes in the merged global order when an instance is idle.
// It returns the number of slots proposed.
func (r *Replica) ProposeHeartbeat(upTo uint64) int {
	if r.stopped || !r.IsLeader() || r.viewChanging {
		return 0
	}
	proposed := 0
	for r.seqNext < upTo && r.seqNext < r.stable+r.cfg.LogWindow {
		r.seqNext++
		seq := r.seqNext
		pp := PrePrepare{View: r.view, Seq: seq, Digest: BatchDigest(nil)}
		s := r.slotFor(seq)
		s.view = r.view
		s.pp = &pp
		r.broadcast(pp)
		proposed++
	}
	// Prepare after all proposals are out so the fill is one pipelined
	// round of messages rather than interleaved per-slot rounds.
	for i := proposed; i > 0; i-- {
		r.tryPrepare(r.seqNext - uint64(i) + 1)
	}
	return proposed
}

func (r *Replica) slotFor(seq uint64) *slot {
	s := r.log[seq]
	if s == nil {
		s = newSlot()
		r.log[seq] = s
	}
	return s
}

func (r *Replica) handlePrePrepare(sender uint32, pp PrePrepare) {
	if pp.View != r.view || r.viewChanging {
		return
	}
	if sender != r.Leader(pp.View) {
		return // only the view's leader may propose
	}
	if pp.Seq <= r.stable || pp.Seq > r.stable+r.cfg.LogWindow {
		return // outside watermarks
	}
	// Integrity: the digest must match the carried batch (an
	// equivocating leader fails here).
	p := r.node.Network().Params().Crypto
	r.crypto(auth.DigestCost(p, len(Encode(pp))))
	if BatchDigest(pp.Batch) != pp.Digest {
		r.startViewChange(r.view + 1)
		return
	}
	s := r.slotFor(pp.Seq)
	if s.pp != nil && s.pp.Digest != pp.Digest && s.view == pp.View {
		// Conflicting proposal for the same (view, seq): Byzantine
		// leader; demand a view change.
		r.startViewChange(r.view + 1)
		return
	}
	s.view = pp.View
	s.pp = &pp
	for _, req := range pp.Batch {
		r.proposed[req.Key()] = true
		r.requestStore[req.Key()] = req
		r.armRequestTimer(req.Key()) // watch progress even if first seen here
	}
	if !s.sentPrep {
		s.sentPrep = true
		prep := Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.id}
		s.prepares[r.id] = pp.Digest
		r.broadcast(prep)
	}
	r.tryPrepare(pp.Seq)
	r.tryCommit(pp.Seq)
}

func (r *Replica) handlePrepare(m Prepare) {
	if m.View != r.view || r.viewChanging || m.Replica == r.Leader(m.View) {
		return
	}
	if m.Seq <= r.stable || m.Seq > r.stable+r.cfg.LogWindow {
		return
	}
	s := r.slotFor(m.Seq)
	s.prepares[m.Replica] = m.Digest
	r.tryPrepare(m.Seq)
	r.tryCommit(m.Seq)
}

// prepared implements the PBFT predicate: a matching pre-prepare plus 2F
// prepares (from distinct non-leader replicas, possibly including our own).
func (r *Replica) prepared(s *slot) bool {
	if s.pp == nil {
		return false
	}
	count := 0
	for _, d := range s.prepares {
		if d == s.pp.Digest {
			count++
		}
	}
	return count >= 2*r.cfg.F
}

func (r *Replica) tryPrepare(seq uint64) {
	s := r.log[seq]
	if s == nil || s.sentComm || !r.prepared(s) {
		return
	}
	s.sentComm = true
	c := Commit{View: s.pp.View, Seq: seq, Digest: s.pp.Digest, Replica: r.id}
	s.commits[r.id] = s.pp.Digest
	r.broadcast(c)
	r.tryCommit(seq)
}

func (r *Replica) handleCommit(m Commit) {
	if m.View != r.view || r.viewChanging {
		return
	}
	if m.Seq <= r.stable || m.Seq > r.stable+r.cfg.LogWindow {
		return
	}
	s := r.slotFor(m.Seq)
	s.commits[m.Replica] = m.Digest
	r.tryCommit(m.Seq)
}

// committed requires prepared plus a 2F+1 commit quorum.
func (r *Replica) committedSlot(s *slot) bool {
	if s.pp == nil || !r.prepared(s) {
		return false
	}
	count := 0
	for _, d := range s.commits {
		if d == s.pp.Digest {
			count++
		}
	}
	return count >= r.cfg.Quorum()
}

func (r *Replica) tryCommit(seq uint64) {
	s := r.log[seq]
	if s == nil || !r.committedSlot(s) {
		return
	}
	r.tryExecute()
}

// tryExecute applies committed batches strictly in sequence order.
func (r *Replica) tryExecute() {
	for {
		next := r.executed + 1
		s := r.log[next]
		if s == nil || s.executed || !r.committedSlot(s) {
			return
		}
		s.executed = true
		r.executed = next
		r.committedCount++
		r.execBatches++
		proto := r.node.Network().Params().Protocol
		for _, req := range s.pp.Batch {
			if r.tracer != nil {
				r.tracer.MarkCommit(req.Key(), r.node.Loop().Now())
			}
			r.node.CPU.Delay(proto.ExecRequest)
			result := r.app.Execute(req.Op)
			rep := Reply{View: r.view, Timestamp: req.Timestamp, Client: req.Client, Replica: r.id, Result: result}
			r.replyCache[req.Client] = rep
			r.reply(req.Client, rep)
			r.cancelRequestTimer(req.Key())
			delete(r.requestStore, req.Key())
		}
		if r.onExecute != nil {
			r.onExecute(next, s.pp.Batch)
		}
		if r.executed%r.cfg.CheckpointEvery == 0 {
			r.takeCheckpoint(r.executed)
		}
	}
}

// handleReadRequest serves the read-only fast path: evaluate the
// operation tentatively against the last-executed state and report the
// result tagged with the state position it was read from. No agreement
// messages are exchanged — the client is responsible for only accepting
// a result 2F+1 replicas agree on. Applications without TentativeReader
// support never answer; the client's timeout falls the read back to the
// ordered path.
func (r *Replica) handleReadRequest(req ReadRequest) {
	if r.stopped || r.faults.Crashed {
		return
	}
	tr, ok := r.app.(TentativeReader)
	if !ok {
		return
	}
	proto := r.node.Network().Params().Protocol
	r.node.CPU.Delay(proto.ExecRequest)
	result := tr.ExecuteReadOnly(req.Op)
	r.readsServed++
	if r.tracer != nil {
		r.tracer.MarkReadServe(req.Key(), r.node.Loop().Now())
	}
	r.sendToClient(req.Client, Encode(ReadReply{
		Timestamp: req.Timestamp, Client: req.Client, Replica: r.id,
		Executed: r.executed, Result: result,
	}))
}

// ReadsServed returns the number of tentative reads this replica answered.
func (r *Replica) ReadsServed() uint64 { return r.readsServed }

func (r *Replica) reply(client uint32, rep Reply) {
	r.sendToClient(client, Encode(rep))
}

// sendToClient transmits one encoded reply payload to a client
// connection (plain payload — client traffic is unauthenticated; the
// client's reply quorum provides the integrity).
func (r *Replica) sendToClient(client uint32, payload []byte) {
	if r.stopped || r.faults.Crashed {
		return
	}
	peer := r.clientConns[client]
	if peer == nil {
		return
	}
	p := r.node.Network().Params().Crypto
	r.crypto(auth.Cost(p, len(payload)))
	r.deferSend(func() {
		if err := peer.Send(msgnet.ClassControl, payload); err != nil {
			r.sendFaults.Inc()
		}
	})
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

func (r *Replica) takeCheckpoint(seq uint64) {
	d := r.app.Snapshot()
	r.snapshots[seq] = d
	p := r.node.Network().Params().Crypto
	if ps, ok := r.partitioned(); ok {
		// Incremental checkpoint: serialize only the partitions dirtied
		// since the previous retained checkpoint (all of them for the
		// first — the chain's base). The modeled digest cost covers just
		// those bytes, which is what makes the checkpoint pause O(dirty
		// state) instead of O(state).
		rec := &cpRecord{
			applied: ps.Applied(),
			header:  ps.MarshalHeader(),
			digests: ps.PartitionDigests(),
			parts:   make(map[int][]byte),
		}
		var dirty []int
		if prev := r.newestRecordBelow(seq); prev != nil {
			dirty = ps.CheckpointDelta(prev.applied)
		} else {
			rec.base = true
			dirty = make([]int, ps.PartitionCount())
			for i := range dirty {
				dirty[i] = i
			}
		}
		bytes := len(rec.header)
		for _, b := range dirty {
			part := ps.MarshalPartition(b)
			rec.parts[b] = part
			bytes += len(part)
		}
		r.cps[seq] = rec
		r.checkpointCount++
		r.checkpointBytes += uint64(bytes)
		if !rec.base {
			r.steadyCpCount++
			r.steadyCpBytes += uint64(bytes)
		}
		r.crypto(auth.DigestCost(p, bytes))
	} else if st, ok := r.app.(StateTransferable); ok {
		// Retain the full serialized state so lagging peers can fetch it.
		state := st.MarshalState()
		r.states[seq] = state
		if r.checkpointCount > 0 {
			r.steadyCpCount++
			r.steadyCpBytes += uint64(len(state))
		}
		r.checkpointCount++
		r.checkpointBytes += uint64(len(state))
		r.crypto(auth.DigestCost(p, len(state)))
	}
	cp := Checkpoint{Seq: seq, Digest: d, Replica: r.id}
	r.recordCheckpoint(r.id, cp)
	r.broadcast(cp)
}

// partitioned returns the application's PartitionedState interface when
// the incremental/partial machinery is enabled (it is not when
// Config.FullStateTransfer forces the legacy full-snapshot baseline).
func (r *Replica) partitioned() (PartitionedState, bool) {
	if r.cfg.FullStateTransfer {
		return nil, false
	}
	ps, ok := r.app.(PartitionedState)
	return ps, ok
}

// newestRecordBelow returns the newest retained checkpoint record older
// than seq (nil if none) — the delta base for a checkpoint at seq.
func (r *Replica) newestRecordBelow(seq uint64) *cpRecord {
	var bestSeq uint64
	var best *cpRecord
	for s, rec := range r.cps {
		if s < seq && s >= bestSeq {
			bestSeq, best = s, rec
		}
	}
	return best
}

func (r *Replica) handleCheckpoint(sender uint32, m Checkpoint) {
	r.recordCheckpoint(sender, m)
}

func (r *Replica) recordCheckpoint(sender uint32, m Checkpoint) {
	if m.Seq <= r.stable {
		return
	}
	set := r.checkpoints[m.Seq]
	if set == nil {
		set = make(map[uint32]auth.Digest)
		r.checkpoints[m.Seq] = set
	}
	// Key votes by the envelope-verified sender: the in-payload Replica
	// field is unauthenticated, and a checkpoint certificate assembled
	// from forged identities would let one Byzantine peer authorize a
	// state transfer of attacker-chosen state (tryAdoptState path 2).
	set[sender] = m.Digest
	// Count matching digests.
	counts := make(map[auth.Digest]int)
	for _, d := range set {
		counts[d]++
	}
	for d, c := range counts {
		if c >= r.cfg.Quorum() && r.snapshots[m.Seq] == d {
			r.advanceStable(m.Seq)
			return
		}
		if c >= r.cfg.F+1 && m.Seq >= r.executed+r.cfg.CheckpointEvery {
			// F+1 matching votes mean at least one correct replica
			// executed through m.Seq — at least one full interval beyond
			// our execution point: we missed commits (restarted,
			// partitioned, or far behind) and will not catch up from our
			// own log. Fetch the state instead of stalling. Waiting for a
			// full 2F+1 certificate here deadlocks when F+1 replicas lag
			// together (the laggards withhold exactly the votes the
			// certificate needs); F+1 is safe because adoption
			// independently verifies the fetched state against F+1
			// matching responses or a full certificate. A replica less
			// than one interval behind is still executing from its own
			// log and needs no transfer.
			if m.Seq > r.stateTarget {
				r.stateTarget = m.Seq
			}
			// A state response for this very checkpoint may already be
			// waiting for exactly this evidence.
			if r.tryAdoptState() {
				return
			}
			r.requestStateTransfer()
			return
		}
	}
}

// advanceStable garbage-collects the log below the new stable checkpoint.
func (r *Replica) advanceStable(seq uint64) {
	if seq <= r.stable {
		return
	}
	r.stable = seq
	for s := range r.log {
		if s <= seq {
			delete(r.log, s)
		}
	}
	for s := range r.checkpoints {
		if s <= seq {
			delete(r.checkpoints, s)
		}
	}
	for s := range r.snapshots {
		if s < seq {
			delete(r.snapshots, s)
		}
	}
	for s := range r.states {
		if s < seq {
			delete(r.states, s)
		}
	}
	r.foldCheckpoints(seq)
	// State responses at or below the new stable point can never be
	// adopted (adoption requires seq > executed >= stable).
	for id, resp := range r.stateVotes {
		if resp.Seq <= seq {
			delete(r.stateVotes, id)
		}
	}
	for id, x := range r.stateXfers {
		if x.manifest.Seq <= seq {
			delete(r.stateXfers, id)
		}
	}
	if r.IsLeader() && len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
}

// foldCheckpoints collapses the delta chain at and below the new stable
// checkpoint into one materialized base record at stable, dropping the
// older records. This bounds retention at one base plus the deltas above
// stable — the fix for the old O(retained checkpoints × state) memory
// amplification.
func (r *Replica) foldCheckpoints(stable uint64) {
	target := r.cps[stable]
	if target == nil {
		// Not a partitioned checkpoint chain (or no record at stable —
		// possible only for non-partitioned apps); just prune old records.
		for s := range r.cps {
			if s < stable {
				delete(r.cps, s)
			}
		}
		return
	}
	if !target.base {
		// Overlay every record up to stable in ascending order: the
		// oldest retained record is always a base, so the merge holds
		// every partition.
		var seqs []uint64
		for s := range r.cps {
			if s <= stable {
				seqs = append(seqs, s)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		merged := make(map[int][]byte)
		for _, s := range seqs {
			for part, data := range r.cps[s].parts {
				merged[part] = data
			}
		}
		target.parts = merged
		target.base = true
	}
	for s := range r.cps {
		if s < stable {
			delete(r.cps, s)
		}
	}
}

// cpPart materializes one partition of a retained checkpoint by walking
// the delta chain newest-first down to the base.
func (r *Replica) cpPart(seq uint64, part int) []byte {
	var seqs []uint64
	for s := range r.cps {
		if s <= seq {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		if data, ok := r.cps[s].parts[part]; ok {
			return data
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// State transfer (Castro & Liskov §4.6)
//
// A replica that detects the group has certified a checkpoint beyond its
// own execution point — because it just restarted with empty state, was
// partitioned away, or simply fell behind — asks its peers for their
// latest stable checkpoint. It adopts a checkpoint once F+1 replicas vouch
// for the same (sequence, digest) pair (at least one of them is correct)
// and a carried snapshot actually re-hashes to the certified digest.
// ---------------------------------------------------------------------------

// RequestStateTransfer probes peers for their latest stable checkpoint
// (used by Cluster.Restart for a rebooted replica). It is a no-op if the
// application cannot transfer state or a fetch is already in flight.
// Retries only persist while a certified checkpoint beyond our execution
// point is actually known to exist (stateTarget, maintained by
// recordCheckpoint): if no peer has anything to serve — the group has no
// stable checkpoint yet — the probe goes unanswered once and the replica
// stays quiet until live checkpoint certificates reveal a gap, keeping
// an idle simulation drainable.
func (r *Replica) RequestStateTransfer() { r.requestStateTransfer() }

func (r *Replica) requestStateTransfer() {
	if r.stopped || r.stateFetching {
		return
	}
	if _, ok := r.app.(StateTransferable); !ok {
		return
	}
	r.stateFetching = true
	req := StateRequest{Seq: r.executed, Replica: r.id}
	if ps, ok := r.partitioned(); ok {
		// Advertise our Merkle position so responders ship only the
		// divergent partitions. Snapshot and the digest list come from
		// per-partition caches, so this is cheap for a mostly-clean
		// store.
		req.Root = r.app.Snapshot()
		req.Digests = ps.PartitionDigests()
	}
	r.broadcast(req)
	// If no adoptable quorum of responses arrives, ask again — unless we
	// caught up through normal execution in the meantime. Retrying is
	// warranted while either a certified checkpoint is known to be
	// missing or peers demonstrably hold state ahead of us (responses
	// collected but not yet adoptable, e.g. transiently scattered stable
	// points); with neither, the probe goes quiet so an idle simulation
	// drains.
	r.stateRetry = r.node.Loop().After(r.cfg.ViewTimeout, func() {
		if r.stopped || !r.stateFetching {
			return
		}
		r.stateFetching = false
		if r.executed < r.stateTarget || r.peersAhead() {
			r.requestStateTransfer()
		}
	})
}

// peersAhead reports whether any collected state response or transfer
// manifest is beyond our execution point.
func (r *Replica) peersAhead() bool {
	for _, resp := range r.stateVotes {
		if resp.Seq > r.executed {
			return true
		}
	}
	for _, x := range r.stateXfers {
		if x.manifest.Seq > r.executed {
			return true
		}
	}
	return false
}

func (r *Replica) handleStateRequest(sender uint32, m StateRequest) {
	// Serve the newest retained checkpoint beyond the requester's
	// execution point — not only the stable one. When F+1 replicas lag
	// together the group cannot certify any new stable checkpoint (the
	// certificate needs the laggards' own votes), yet the laggards can
	// still safely adopt a newer checkpoint: adoption demands F+1
	// responders vouching for the same (seq, digest), so one correct
	// responder is always among them.
	var best uint64
	for seq := range r.states {
		if seq > m.Seq && seq > best {
			best = seq
		}
	}
	for seq := range r.cps {
		if seq > m.Seq && seq > best {
			best = seq
		}
	}
	if best == 0 {
		return // the requester is at least as current as anything we hold
	}
	// Reply to the authenticated sender, not the claimed Replica field.
	if rec, ok := r.cps[best]; ok && len(m.Digests) == len(rec.digests) {
		// Subtree negotiation: open with the manifest, then stream only
		// the partitions whose digests diverge from the requester's.
		r.send(sender, StateManifest{
			Seq: best, View: r.view, Root: r.snapshots[best],
			Header: rec.header, Digests: rec.digests, Replica: r.id,
		})
		for i, d := range rec.digests {
			if m.Digests[i] == d {
				continue
			}
			data := r.cpPart(best, i)
			if r.faults.CorruptStateParts {
				bad := make([]byte, len(data))
				copy(bad, data)
				if len(bad) > 0 {
					bad[len(bad)-1] ^= 0xFF
				}
				data = bad
			}
			r.stateBytesServed += uint64(len(data))
			r.send(sender, StatePart{Seq: best, Part: uint32(i), Data: data, Replica: r.id})
		}
		return
	}
	state, ok := r.states[best]
	if !ok {
		// We hold only a partitioned record but the requester cannot
		// speak the partial protocol (no digest list / different
		// partition count): nothing servable — another peer (or a later
		// retained full snapshot) will answer.
		return
	}
	r.stateBytesServed += uint64(len(state))
	r.send(sender, StateResponse{
		Seq: best, View: r.view, Digest: r.snapshots[best],
		State: state, Replica: r.id,
	})
}

// handleStateManifest verifies and stores a partial-transfer manifest.
// Self-consistency — the root must be recomputable from the header and
// digest list — is checked before anything else, so every later
// per-partition check is anchored in a root that adoption will verify
// against F+1 matching manifests or a checkpoint certificate.
func (r *Replica) handleStateManifest(sender uint32, m StateManifest) {
	ps, ok := r.partitioned()
	if !ok || m.Seq <= r.executed || r.stateBanned[sender] {
		return
	}
	if len(m.Digests) != ps.PartitionCount() || ps.ComposeRoot(m.Header, m.Digests) != m.Root {
		r.rejectStateSender(sender)
		return
	}
	prev, held := r.stateXfers[sender]
	if held && prev.manifest.Seq > m.Seq {
		return // keep the newer transfer
	}
	r.stateXfers[sender] = &stateXfer{manifest: m, parts: make(map[int][]byte)}
	r.tryAdoptState()
}

// handleStatePart verifies one received partition against its manifest's
// digest on arrival. The first mismatch drops the sender: a Byzantine
// peer can no longer feed junk bytes that are detected only after the
// whole state downloaded.
func (r *Replica) handleStatePart(sender uint32, m StatePart) {
	ps, ok := r.partitioned()
	if !ok || r.stateBanned[sender] {
		return
	}
	x, held := r.stateXfers[sender]
	if !held || x.manifest.Seq != m.Seq {
		return // no matching manifest (e.g. already pruned): ignore
	}
	part := int(m.Part)
	if part < 0 || part >= ps.PartitionCount() {
		r.rejectStateSender(sender)
		return
	}
	p := r.node.Network().Params().Crypto
	r.crypto(auth.DigestCost(p, len(m.Data)))
	if auth.Hash(m.Data) != x.manifest.Digests[part] {
		r.rejectStateSender(sender)
		return
	}
	x.parts[part] = m.Data
	r.tryAdoptState()
}

// rejectStateSender drops a sender's in-progress transfer after a failed
// verification and bans it until the next successful adoption.
func (r *Replica) rejectStateSender(sender uint32) {
	r.stateRejects.Inc()
	delete(r.stateXfers, sender)
	r.stateBanned[sender] = true
}

func (r *Replica) handleStateResponse(sender uint32, m StateResponse) {
	if _, ok := r.app.(StateTransferable); !ok || m.Seq <= r.executed {
		return
	}
	// Retain the newest response per authenticated sender. Keying by the
	// envelope-verified sender (the in-payload Replica field is
	// unauthenticated) both prevents one Byzantine peer from forging an
	// F+1 quorum of "distinct" responders and bounds the store at one
	// snapshot per peer no matter how many responses it streams.
	if prev, held := r.stateVotes[sender]; !held || m.Seq >= prev.Seq {
		r.stateVotes[sender] = m
	}
	r.tryAdoptState()
}

// tryAdoptState adopts a stored state response if one is certified,
// reporting success. Two certification paths:
//
//  1. F+1 responders vouch for the same (seq, digest) — at least one of
//     them is correct.
//  2. A single response matches a checkpoint-quorum certificate this
//     replica assembled from the group's normal CHECKPOINT broadcasts
//     (2F+1 matching digests in r.checkpoints[seq]). This is how a
//     replica catches up while the group keeps executing at full speed:
//     peers' stable checkpoints advance so quickly that F+1 identical
//     responses may never accumulate, but certificates keep arriving.
func (r *Replica) tryAdoptState() bool {
	if ps, ok := r.partitioned(); ok && r.tryAdoptPartitioned(ps) {
		return true
	}
	st, ok := r.app.(StateTransferable)
	if !ok || len(r.stateVotes) == 0 {
		return false
	}
	type group struct {
		seq    uint64
		digest auth.Digest
	}
	tried := make(map[group]bool)
	// Scan responses in replica order for determinism, one verification
	// attempt per distinct (seq, digest) group.
	for id := uint32(0); id < uint32(r.cfg.N); id++ {
		resp, held := r.stateVotes[id]
		if !held || resp.Seq <= r.executed {
			continue
		}
		g := group{resp.Seq, resp.Digest}
		if tried[g] {
			continue
		}
		tried[g] = true
		var matching []StateResponse
		for j := uint32(0); j < uint32(r.cfg.N); j++ {
			if other, held := r.stateVotes[j]; held && other.Seq == resp.Seq && other.Digest == resp.Digest {
				matching = append(matching, other)
			}
		}
		certVotes := 0
		for _, d := range r.checkpoints[resp.Seq] {
			if d == resp.Digest {
				certVotes++
			}
		}
		if len(matching) < r.cfg.F+1 && certVotes < r.cfg.Quorum() {
			continue
		}
		// Certified. A Byzantine responder may still have attached
		// bogus state bytes under the right digest, so restore copies
		// until one re-hashes to the certified digest — and put the
		// previous state back if none does, since UnmarshalState
		// mutates the live application.
		prev := st.MarshalState()
		p := r.node.Network().Params().Crypto
		for _, cand := range matching {
			if err := st.UnmarshalState(cand.State); err != nil {
				continue
			}
			r.crypto(auth.DigestCost(p, len(cand.State)))
			if r.app.Snapshot() == resp.Digest {
				// The View field is only corroborated when F+1
				// responders agree; a lone certificate-backed response
				// could carry an inflated view that would wedge us.
				view := r.view
				if len(matching) >= r.cfg.F+1 {
					view = minResponseView(matching)
				}
				// Retain the adopted snapshot so this replica can serve
				// lagging peers in turn.
				stateCopy := make([]byte, len(cand.State))
				copy(stateCopy, cand.State)
				r.states[resp.Seq] = stateCopy
				r.adoptCheckpoint(resp.Seq, resp.Digest, view)
				return true
			}
		}
		if err := st.UnmarshalState(prev); err != nil {
			panic(fmt.Sprintf("pbft: replica %d failed to restore state after rejected transfer: %v", r.id, err))
		}
	}
	return false
}

// tryAdoptPartitioned adopts a partially-transferred checkpoint if one
// is certified and complete. Certification mirrors the full-snapshot
// path — F+1 senders vouching for the same (seq, root) or a single
// manifest matching a checkpoint-quorum certificate — but the state
// arrives as partitions that were each digest-verified on receipt, and
// partitions already matching locally are reused without any transfer.
func (r *Replica) tryAdoptPartitioned(ps PartitionedState) bool {
	if len(r.stateXfers) == 0 {
		return false
	}
	type group struct {
		seq  uint64
		root auth.Digest
	}
	tried := make(map[group]bool)
	// Scan transfers in replica order for determinism, one adoption
	// attempt per distinct (seq, root) group.
	for id := uint32(0); id < uint32(r.cfg.N); id++ {
		x, held := r.stateXfers[id]
		if !held || x.manifest.Seq <= r.executed {
			continue
		}
		g := group{x.manifest.Seq, x.manifest.Root}
		if tried[g] {
			continue
		}
		tried[g] = true
		var matching []*stateXfer
		var senders []uint32
		for j := uint32(0); j < uint32(r.cfg.N); j++ {
			if other, held := r.stateXfers[j]; held && other.manifest.Seq == g.seq && other.manifest.Root == g.root {
				matching = append(matching, other)
				senders = append(senders, j)
			}
		}
		certVotes := 0
		for _, d := range r.checkpoints[g.seq] {
			if d == g.root {
				certVotes++
			}
		}
		if len(matching) < r.cfg.F+1 && certVotes < r.cfg.Quorum() {
			continue
		}
		// Certified root. Assemble the full partition set: local
		// partitions whose digests already match the manifest are reused
		// as-is; the divergent ones must have arrived (from any matching
		// sender — parts are interchangeable once verified against the
		// same digest list).
		manifest := matching[0].manifest
		local := ps.PartitionDigests()
		parts := make([][]byte, ps.PartitionCount())
		complete := true
		for i := range parts {
			if i < len(local) && local[i] == manifest.Digests[i] {
				parts[i] = ps.MarshalPartition(i)
				continue
			}
			for _, cand := range matching {
				if data, ok := cand.parts[i]; ok {
					parts[i] = data
					break
				}
			}
			if parts[i] == nil {
				complete = false
				break
			}
		}
		if !complete {
			continue // divergent partitions still streaming in
		}
		prev := ps.MarshalState()
		if err := ps.ApplyTransfer(manifest.Header, parts); err != nil {
			// Digest-verified partitions under a certified root that
			// still fail to decode: the vouching senders colluded on a
			// malformed encoding. Drop them and keep fetching.
			for _, s := range senders {
				r.rejectStateSender(s)
			}
			continue
		}
		if r.app.Snapshot() != g.root {
			// Defense in depth (the composition rules make this
			// unreachable for a conforming application): roll back.
			if err := ps.UnmarshalState(prev); err != nil {
				panic(fmt.Sprintf("pbft: replica %d failed to restore state after rejected transfer: %v", r.id, err))
			}
			for _, s := range senders {
				r.rejectStateSender(s)
			}
			continue
		}
		view := r.view
		if len(matching) >= r.cfg.F+1 {
			view = minManifestView(matching)
		}
		// Retain the adopted checkpoint as a fresh base record so this
		// replica can serve lagging peers in turn.
		rec := &cpRecord{
			applied: ps.Applied(),
			header:  manifest.Header,
			digests: manifest.Digests,
			parts:   make(map[int][]byte, len(parts)),
			base:    true,
		}
		for i, data := range parts {
			rec.parts[i] = data
		}
		r.cps[g.seq] = rec
		r.adoptCheckpoint(g.seq, g.root, view)
		return true
	}
	return false
}

// minManifestView returns the smallest view among matching transfer
// manifests (same conservatism as minResponseView).
func minManifestView(matching []*stateXfer) uint64 {
	min := matching[0].manifest.View
	for _, x := range matching[1:] {
		if x.manifest.View < min {
			min = x.manifest.View
		}
	}
	return min
}

// minResponseView returns the smallest view among matching responders:
// adopting the minimum is conservative (at most as new as some correct
// replica's view); a stale view only costs extra view-change latency.
func minResponseView(matching []StateResponse) uint64 {
	min := matching[0].View
	for _, resp := range matching[1:] {
		if resp.View < min {
			min = resp.View
		}
	}
	return min
}

// adoptCheckpoint installs a fetched stable checkpoint: the application
// state is already restored and the caller retained the serving copy
// (full snapshot or base delta-chain record); fast-forward the agreement
// bookkeeping.
func (r *Replica) adoptCheckpoint(seq uint64, d auth.Digest, view uint64) {
	r.executed = seq
	if r.seqNext < seq {
		r.seqNext = seq
	}
	r.snapshots[seq] = d
	// Advertise the adopted checkpoint. When several replicas lagged
	// together, the group's stable checkpoint stalled precisely because
	// the laggards' votes were missing — this vote (plus the peers who
	// already voted) completes the certificate so everyone's watermark
	// window can move again.
	cp := Checkpoint{Seq: seq, Digest: d, Replica: r.id}
	r.recordCheckpoint(r.id, cp)
	r.broadcast(cp)
	if view > r.view {
		r.view = view
		// Observers track the current leader through this hook on
		// every other view-installation path; a recovered replica's
		// jump must be visible too.
		if r.onViewChange != nil {
			r.onViewChange(view)
		}
	}
	// The checkpoint subsumes every request ordered below it, but we
	// cannot tell which of the requests we are watching those are: drop
	// all request bookkeeping and let live traffic re-arm. Leaving the
	// timers armed would fire view-change demands for long-committed
	// requests and wedge the replica in viewChanging — blocking the very
	// catch-up the transfer enables.
	r.pending = nil
	r.proposed = make(map[string]bool)
	r.requestStore = make(map[string]Request)
	for key, t := range r.reqTimers {
		t.Cancel()
		delete(r.reqTimers, key)
	}
	// Any view change we demanded was based on pre-transfer lag; rejoin
	// the group's current view instead of staying wedged. If a genuine
	// view change is in progress, its NEW-VIEW will reach us normally.
	r.viewChanging = false
	for view := range r.vcVotes {
		if view <= r.view {
			delete(r.vcVotes, view)
		}
	}
	r.advanceStable(seq) // also prunes stateVotes/stateXfers at or below seq
	r.stateFetching = false
	r.stateRetry.Cancel()
	// A fresh transfer round starts from a clean slate: peers rejected
	// for corrupt parts in this round get another chance next time (the
	// reject counter keeps the permanent record).
	r.stateBanned = make(map[uint32]bool)
	r.stateTransfers++
	if r.onCheckpointAdopt != nil {
		r.onCheckpointAdopt(seq)
	}
	// Commits above the checkpoint may already be quorate in the log.
	r.tryExecute()
	// An older certified checkpoint can win the adoption scan while a
	// newer one is still known to be missing; keep fetching until
	// execution reaches the target instead of going quiet here.
	if r.executed < r.stateTarget {
		r.requestStateTransfer()
	}
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

func (r *Replica) startViewChange(newView uint64) {
	if r.stopped || newView <= r.view || (r.viewChanging && newView <= r.pendingView()) {
		return
	}
	r.viewChanging = true
	// Cancel batch work; collect prepared proofs above the stable point.
	r.batchTimer.Cancel()
	var proofs []PreparedProof
	for seq, s := range r.log {
		if s.pp != nil && r.prepared(s) && !s.executed {
			proofs = append(proofs, PreparedProof{View: s.pp.View, Seq: seq, Digest: s.pp.Digest, Batch: s.pp.Batch})
		}
	}
	vc := ViewChange{NewView: newView, Stable: r.stable, Prepared: proofs, Replica: r.id}
	r.recordViewChange(vc)
	r.broadcast(vc)
	// If the new leader's NEW-VIEW never arrives, escalate further.
	r.node.Loop().After(r.cfg.ViewTimeout, func() {
		if r.viewChanging && r.view < newView {
			r.startViewChange(newView + 1)
		}
	})
}

func (r *Replica) pendingView() uint64 {
	var max uint64
	for v := range r.vcVotes {
		if _, voted := r.vcVotes[v][r.id]; voted && v > max {
			max = v
		}
	}
	return max
}

func (r *Replica) handleViewChange(m ViewChange) {
	if m.NewView <= r.view {
		return
	}
	r.recordViewChange(m)
	votes := r.vcVotes[m.NewView]
	// Join an in-progress view change once F+1 replicas demand it (we
	// cannot all be faulty).
	if len(votes) >= r.cfg.F+1 {
		r.startViewChange(m.NewView)
	}
	if r.Leader(m.NewView) == r.id && len(votes) >= r.cfg.Quorum() {
		r.installNewView(m.NewView)
	}
}

func (r *Replica) recordViewChange(m ViewChange) {
	set := r.vcVotes[m.NewView]
	if set == nil {
		set = make(map[uint32]ViewChange)
		r.vcVotes[m.NewView] = set
	}
	set[m.Replica] = m
}

// installNewView (new leader): re-propose every prepared slot reported by
// the view-change quorum, filling gaps with empty batches.
func (r *Replica) installNewView(v uint64) {
	votes := r.vcVotes[v]
	maxStable := r.stable
	best := make(map[uint64]PreparedProof)
	var maxSeq uint64
	for _, vc := range votes {
		if vc.Stable > maxStable {
			maxStable = vc.Stable
		}
		for _, p := range vc.Prepared {
			if cur, ok := best[p.Seq]; !ok || p.View > cur.View {
				best[p.Seq] = p
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
	}
	var pps []PrePrepare
	for seq := maxStable + 1; seq <= maxSeq; seq++ {
		if p, ok := best[seq]; ok {
			pps = append(pps, PrePrepare{View: v, Seq: seq, Digest: p.Digest, Batch: p.Batch})
		} else {
			pps = append(pps, PrePrepare{View: v, Seq: seq, Digest: BatchDigest(nil)})
		}
	}
	nv := NewView{View: v, PrePrepares: pps}
	r.broadcast(nv)
	r.adoptNewView(v, nv)
}

func (r *Replica) handleNewView(sender uint32, nv NewView) {
	if nv.View <= r.view || sender != r.Leader(nv.View) {
		return
	}
	r.adoptNewView(nv.View, nv)
}

// adoptNewView installs the view and replays the re-proposed slots.
func (r *Replica) adoptNewView(v uint64, nv NewView) {
	r.view = v
	r.viewChanging = false
	for view := range r.vcVotes {
		if view <= v {
			delete(r.vcVotes, view)
		}
	}
	// Reset per-slot voting state for re-proposed slots.
	var maxSeq uint64
	for _, pp := range nv.PrePrepares {
		pp := pp
		if pp.Seq <= r.executed {
			continue // already executed here; state transfer not needed
		}
		s := newSlot()
		s.view = v
		s.pp = &pp
		r.log[pp.Seq] = s
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		if r.Leader(v) != r.id {
			s.sentPrep = true
			s.prepares[r.id] = pp.Digest
			r.broadcast(Prepare{View: v, Seq: pp.Seq, Digest: pp.Digest, Replica: r.id})
		}
	}
	// seqNext is the proposal frontier of the NEW view: the highest
	// re-proposed or executed sequence. It may move DOWN — a sequence the
	// old view claimed for a proposal that never went out (e.g. the
	// ordering-CPU completion observed the view change and aborted the
	// broadcast) would otherwise stay stranded: nothing re-proposes it,
	// and a later proposal above it could never execute past the hole.
	r.seqNext = maxSeq
	if r.seqNext < r.executed {
		r.seqNext = r.executed
	}
	// The new view will reuse sequences above the frontier, but the old
	// view may have left slots there (a received pre-prepare sets
	// sentPrep and records votes that are not view-tagged). Reusing such
	// a slot would suppress the new view's PREPARE/COMMIT broadcasts and
	// count stale cross-view votes, so unexecuted slots beyond the
	// frontier are dropped — their requests live on in requestStore.
	for seq, s := range r.log {
		if seq > r.seqNext && !s.executed {
			delete(r.log, seq)
		}
	}
	// Rebuild proposal bookkeeping: only the re-proposed slots count as
	// in flight; everything else known-but-unexecuted goes back to the
	// new leader's queue.
	r.pending = nil
	r.proposed = make(map[string]bool)
	for _, pp := range nv.PrePrepares {
		for _, req := range pp.Batch {
			r.proposed[req.Key()] = true
		}
	}
	for _, key := range r.storedKeys() {
		r.armRequestTimer(key)
		if r.IsLeader() && !r.proposed[key] {
			r.pending = append(r.pending, r.requestStore[key])
			r.proposed[key] = true
		}
	}
	if r.onViewChange != nil {
		r.onViewChange(v)
	}
	if r.IsLeader() && len(r.pending) > 0 {
		r.node.Loop().Post(r.proposeBatch)
	}
	for _, pp := range nv.PrePrepares {
		r.tryPrepare(pp.Seq)
		r.tryCommit(pp.Seq)
	}
}

// storedKeys returns requestStore keys in sorted order for deterministic
// re-proposal.
func (r *Replica) storedKeys() []string {
	keys := make([]string, 0, len(r.requestStore))
	for k := range r.requestStore {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
