// Package pbft implements the Practical Byzantine Fault Tolerance protocol
// (Castro & Liskov, OSDI '99) — the agreement protocol Reptor runs — over
// the pluggable transport stacks, so the same replica code measures both
// the Java-NIO baseline and RUBIN.
//
// The implementation covers the full normal-case three-phase protocol
// (pre-prepare / prepare / commit) with request batching, HMAC
// authenticators on every replica message, periodic checkpoints with log
// garbage collection, and view changes driven by request timers. Fault
// injection hooks (Faults) let tests exercise Byzantine leaders and
// crashed replicas.
package pbft

import (
	"encoding/binary"
	"fmt"

	"rubin/internal/auth"
)

// MsgType discriminates protocol messages on the wire.
type MsgType uint8

// Protocol message types.
const (
	MsgRequest MsgType = iota + 1
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgReply
	MsgCheckpoint
	MsgViewChange
	MsgNewView
	MsgStateRequest
	MsgStateResponse
	MsgReadRequest
	MsgReadReply
	MsgStateManifest
	MsgStatePart
)

func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgPrePrepare:
		return "PRE-PREPARE"
	case MsgPrepare:
		return "PREPARE"
	case MsgCommit:
		return "COMMIT"
	case MsgReply:
		return "REPLY"
	case MsgCheckpoint:
		return "CHECKPOINT"
	case MsgViewChange:
		return "VIEW-CHANGE"
	case MsgNewView:
		return "NEW-VIEW"
	case MsgStateRequest:
		return "STATE-REQUEST"
	case MsgStateResponse:
		return "STATE-RESPONSE"
	case MsgReadRequest:
		return "READ-REQUEST"
	case MsgReadReply:
		return "READ-REPLY"
	case MsgStateManifest:
		return "STATE-MANIFEST"
	case MsgStatePart:
		return "STATE-PART"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// Request is a client operation to be ordered and executed.
type Request struct {
	Client    uint32
	Timestamp uint64 // client-local, provides exactly-once semantics
	Op        []byte
}

// Key identifies a request for reply caching and timer bookkeeping.
func (r Request) Key() string { return fmt.Sprintf("%d/%d", r.Client, r.Timestamp) }

// PrePrepare is the leader's ordering proposal for one batch.
type PrePrepare struct {
	View   uint64
	Seq    uint64
	Digest auth.Digest // digest over the encoded batch
	Batch  []Request
}

// Prepare is a backup's agreement echo for a proposal.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  auth.Digest
	Replica uint32
}

// Commit finalizes a prepared proposal.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  auth.Digest
	Replica uint32
}

// Reply carries an execution result back to the client.
type Reply struct {
	View      uint64
	Timestamp uint64
	Client    uint32
	Replica   uint32
	Result    []byte
}

// Checkpoint advertises a replica's state digest at a checkpoint sequence.
type Checkpoint struct {
	Seq     uint64
	Digest  auth.Digest
	Replica uint32
}

// PreparedProof summarizes one prepared-but-unexecuted slot for a view
// change.
type PreparedProof struct {
	View   uint64
	Seq    uint64
	Digest auth.Digest
	Batch  []Request
}

// ViewChange asks to move to a new view, carrying the prepared set above
// the sender's last stable checkpoint.
type ViewChange struct {
	NewView  uint64
	Stable   uint64
	Prepared []PreparedProof
	Replica  uint32
}

// NewView is the new leader's installation message re-proposing the
// prepared slots.
type NewView struct {
	View        uint64
	PrePrepares []PrePrepare
}

// StateRequest asks peers for the state at their latest stable checkpoint.
// A restarted or lagging replica sends it when it detects that the group
// has advanced past its own execution point (Castro & Liskov §4.6, state
// transfer).
type StateRequest struct {
	// Seq is the requester's last executed sequence; peers respond only
	// if their stable checkpoint is beyond it.
	Seq     uint64
	Replica uint32
	// Root and Digests describe the requester's current Merkle state
	// (partitioned applications only): the root digest plus every leaf
	// partition digest. A responder holding partitioned checkpoints
	// streams only the partitions whose digests diverge; an empty digest
	// list requests the legacy full-snapshot StateResponse.
	Root    auth.Digest
	Digests []auth.Digest
}

// StateManifest opens a partial state transfer: it describes one retained
// checkpoint of a partitioned application — the quorum-certifiable root,
// the transfer header (application metadata outside the partitions) and
// every leaf partition digest. The requester verifies the manifest is
// self-consistent (ComposeRoot(Header, Digests) == Root), then verifies
// every arriving StatePart against Digests, so a Byzantine responder is
// caught on the first corrupt partition rather than after a full
// download. Adoption still requires the root be certified by F+1 matching
// manifests or a checkpoint-quorum certificate.
type StateManifest struct {
	// Seq is the responder's retained checkpoint sequence.
	Seq uint64
	// View is the responder's current view (rejoin hint, as in
	// StateResponse).
	View uint64
	// Root is the checkpoint's state digest (the Merkle root).
	Root auth.Digest
	// Header is the application's transfer header at the checkpoint.
	Header []byte
	// Digests are the leaf partition digests at the checkpoint.
	Digests []auth.Digest
	Replica uint32
}

// StatePart carries one divergent partition of a partial state transfer.
// It rides msgnet's bulk class like full snapshots, so streaming a large
// state never head-of-line-blocks agreement traffic.
type StatePart struct {
	// Seq is the checkpoint sequence of the manifest this part belongs to.
	Seq uint64
	// Part is the partition index.
	Part uint32
	// Data is the serialized partition; auth.Hash(Data) must equal the
	// manifest's Digests[Part].
	Data    []byte
	Replica uint32
}

// StateResponse carries a responder's stable checkpoint: the application
// snapshot plus the checkpoint digest the group certified. The requester
// adopts a checkpoint once F+1 responders vouch for the same (Seq, Digest)
// and the carried state verifies against the digest.
type StateResponse struct {
	// Seq is the responder's stable checkpoint sequence.
	Seq uint64
	// View is the responder's current view, letting a restarted replica
	// rejoin the active view instead of timing out from view 0.
	View uint64
	// Digest is the checkpoint digest certified by a checkpoint quorum.
	Digest auth.Digest
	// State is the serialized application snapshot at Seq.
	State   []byte
	Replica uint32
}

// ReadRequest asks every replica to execute a side-effect-free operation
// tentatively against its last-executed state, bypassing agreement
// (Castro & Liskov §4.4, the read-only optimization). It shares the
// client's timestamp counter with ordered Requests, so a read that falls
// back to the ordered path keeps a unique timestamp.
type ReadRequest struct {
	Client    uint32
	Timestamp uint64
	Op        []byte
}

// Key identifies a read for timer bookkeeping and tracing, in the same
// namespace as Request keys (timestamps are shared, so keys are unique).
func (r ReadRequest) Key() string { return fmt.Sprintf("%d/%d", r.Client, r.Timestamp) }

// ReadReply carries a tentative read result. Executed is the replica's
// last-executed sequence number — the state position the read was served
// from. The client accepts a result once 2F+1 replicas report the same
// bytes; the tag is evidence for diagnosing stale replies, not part of
// the matching rule.
type ReadReply struct {
	Timestamp uint64
	Client    uint32
	Replica   uint32
	Executed  uint64
	Result    []byte
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

// Message is the union of all protocol payloads.
type Message interface{ msgType() MsgType }

func (Request) msgType() MsgType       { return MsgRequest }
func (PrePrepare) msgType() MsgType    { return MsgPrePrepare }
func (Prepare) msgType() MsgType       { return MsgPrepare }
func (Commit) msgType() MsgType        { return MsgCommit }
func (Reply) msgType() MsgType         { return MsgReply }
func (Checkpoint) msgType() MsgType    { return MsgCheckpoint }
func (ViewChange) msgType() MsgType    { return MsgViewChange }
func (NewView) msgType() MsgType       { return MsgNewView }
func (StateRequest) msgType() MsgType  { return MsgStateRequest }
func (StateResponse) msgType() MsgType { return MsgStateResponse }
func (ReadRequest) msgType() MsgType   { return MsgReadRequest }
func (ReadReply) msgType() MsgType     { return MsgReadReply }
func (StateManifest) msgType() MsgType { return MsgStateManifest }
func (StatePart) msgType() MsgType     { return MsgStatePart }

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) digest(d auth.Digest) { e.buf = append(e.buf, d[:]...) }

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("pbft: truncated message")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.buf) < n || n < 0 {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) digest() auth.Digest {
	var out auth.Digest
	if d.err != nil || len(d.buf) < auth.DigestSize {
		d.fail()
		return out
	}
	copy(out[:], d.buf[:auth.DigestSize])
	d.buf = d.buf[auth.DigestSize:]
	return out
}

func encodeRequests(e *encoder, reqs []Request) {
	e.u32(uint32(len(reqs)))
	for _, r := range reqs {
		e.u32(r.Client)
		e.u64(r.Timestamp)
		e.bytes(r.Op)
	}
}

func encodeDigests(e *encoder, ds []auth.Digest) {
	e.u32(uint32(len(ds)))
	for _, d := range ds {
		e.digest(d)
	}
}

func decodeDigests(d *decoder) []auth.Digest {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil // nil round-trips to nil (reflect-equal for tests)
	}
	ds := make([]auth.Digest, 0, n)
	for i := 0; i < n; i++ {
		ds = append(ds, d.digest())
		if d.err != nil {
			return nil
		}
	}
	return ds
}

func decodeRequests(d *decoder) []Request {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		d.fail()
		return nil
	}
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		r := Request{Client: d.u32(), Timestamp: d.u64(), Op: d.bytes()}
		if d.err != nil {
			return nil
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// Encode serializes a protocol message with its type tag.
func Encode(m Message) []byte {
	e := &encoder{}
	e.u8(uint8(m.msgType()))
	switch v := m.(type) {
	case Request:
		e.u32(v.Client)
		e.u64(v.Timestamp)
		e.bytes(v.Op)
	case PrePrepare:
		e.u64(v.View)
		e.u64(v.Seq)
		e.digest(v.Digest)
		encodeRequests(e, v.Batch)
	case Prepare:
		e.u64(v.View)
		e.u64(v.Seq)
		e.digest(v.Digest)
		e.u32(v.Replica)
	case Commit:
		e.u64(v.View)
		e.u64(v.Seq)
		e.digest(v.Digest)
		e.u32(v.Replica)
	case Reply:
		e.u64(v.View)
		e.u64(v.Timestamp)
		e.u32(v.Client)
		e.u32(v.Replica)
		e.bytes(v.Result)
	case Checkpoint:
		e.u64(v.Seq)
		e.digest(v.Digest)
		e.u32(v.Replica)
	case ViewChange:
		e.u64(v.NewView)
		e.u64(v.Stable)
		e.u32(uint32(len(v.Prepared)))
		for _, p := range v.Prepared {
			e.u64(p.View)
			e.u64(p.Seq)
			e.digest(p.Digest)
			encodeRequests(e, p.Batch)
		}
		e.u32(v.Replica)
	case NewView:
		e.u64(v.View)
		e.u32(uint32(len(v.PrePrepares)))
		for _, pp := range v.PrePrepares {
			e.u64(pp.View)
			e.u64(pp.Seq)
			e.digest(pp.Digest)
			encodeRequests(e, pp.Batch)
		}
	case StateRequest:
		e.u64(v.Seq)
		e.u32(v.Replica)
		e.digest(v.Root)
		encodeDigests(e, v.Digests)
	case StateManifest:
		e.u64(v.Seq)
		e.u64(v.View)
		e.digest(v.Root)
		e.bytes(v.Header)
		encodeDigests(e, v.Digests)
		e.u32(v.Replica)
	case StatePart:
		e.u64(v.Seq)
		e.u32(v.Part)
		e.bytes(v.Data)
		e.u32(v.Replica)
	case StateResponse:
		e.u64(v.Seq)
		e.u64(v.View)
		e.digest(v.Digest)
		e.bytes(v.State)
		e.u32(v.Replica)
	case ReadRequest:
		e.u32(v.Client)
		e.u64(v.Timestamp)
		e.bytes(v.Op)
	case ReadReply:
		e.u64(v.Timestamp)
		e.u32(v.Client)
		e.u32(v.Replica)
		e.u64(v.Executed)
		e.bytes(v.Result)
	default:
		panic(fmt.Sprintf("pbft: cannot encode %T", m))
	}
	return e.buf
}

// Decode parses a serialized protocol message.
func Decode(raw []byte) (Message, error) {
	d := &decoder{buf: raw}
	t := MsgType(d.u8())
	var m Message
	switch t {
	case MsgRequest:
		m = Request{Client: d.u32(), Timestamp: d.u64(), Op: d.bytes()}
	case MsgPrePrepare:
		m = PrePrepare{View: d.u64(), Seq: d.u64(), Digest: d.digest(), Batch: decodeRequests(d)}
	case MsgPrepare:
		m = Prepare{View: d.u64(), Seq: d.u64(), Digest: d.digest(), Replica: d.u32()}
	case MsgCommit:
		m = Commit{View: d.u64(), Seq: d.u64(), Digest: d.digest(), Replica: d.u32()}
	case MsgReply:
		m = Reply{View: d.u64(), Timestamp: d.u64(), Client: d.u32(), Replica: d.u32(), Result: d.bytes()}
	case MsgCheckpoint:
		m = Checkpoint{Seq: d.u64(), Digest: d.digest(), Replica: d.u32()}
	case MsgViewChange:
		vc := ViewChange{NewView: d.u64(), Stable: d.u64()}
		n := int(d.u32())
		if d.err == nil && n >= 0 && n < 1<<20 {
			for i := 0; i < n; i++ {
				vc.Prepared = append(vc.Prepared, PreparedProof{
					View: d.u64(), Seq: d.u64(), Digest: d.digest(), Batch: decodeRequests(d),
				})
			}
		} else {
			d.fail()
		}
		vc.Replica = d.u32()
		m = vc
	case MsgNewView:
		nv := NewView{View: d.u64()}
		n := int(d.u32())
		if d.err == nil && n >= 0 && n < 1<<20 {
			for i := 0; i < n; i++ {
				nv.PrePrepares = append(nv.PrePrepares, PrePrepare{
					View: d.u64(), Seq: d.u64(), Digest: d.digest(), Batch: decodeRequests(d),
				})
			}
		} else {
			d.fail()
		}
		m = nv
	case MsgStateRequest:
		m = StateRequest{Seq: d.u64(), Replica: d.u32(), Root: d.digest(), Digests: decodeDigests(d)}
	case MsgStateManifest:
		m = StateManifest{Seq: d.u64(), View: d.u64(), Root: d.digest(), Header: d.bytes(), Digests: decodeDigests(d), Replica: d.u32()}
	case MsgStatePart:
		m = StatePart{Seq: d.u64(), Part: d.u32(), Data: d.bytes(), Replica: d.u32()}
	case MsgStateResponse:
		m = StateResponse{Seq: d.u64(), View: d.u64(), Digest: d.digest(), State: d.bytes(), Replica: d.u32()}
	case MsgReadRequest:
		m = ReadRequest{Client: d.u32(), Timestamp: d.u64(), Op: d.bytes()}
	case MsgReadReply:
		m = ReadReply{Timestamp: d.u64(), Client: d.u32(), Replica: d.u32(), Executed: d.u64(), Result: d.bytes()}
	default:
		return nil, fmt.Errorf("pbft: unknown message type %d", t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("pbft: %d trailing bytes", len(d.buf))
	}
	return m, nil
}

// BatchDigest computes the digest a pre-prepare commits to.
func BatchDigest(batch []Request) auth.Digest {
	e := &encoder{}
	encodeRequests(e, batch)
	return auth.Hash(e.buf)
}

// Envelope is the authenticated wrapper for replica-to-replica messages.
type Envelope struct {
	Sender  uint32
	Payload []byte
	Auth    auth.Authenticator
}

// EncodeEnvelope serializes an envelope.
func EncodeEnvelope(env Envelope) []byte {
	e := &encoder{}
	e.u32(env.Sender)
	e.bytes(env.Payload)
	e.u32(uint32(len(env.Auth)))
	for _, mac := range env.Auth {
		e.bytes(mac)
	}
	return e.buf
}

// DecodeEnvelope parses an envelope.
func DecodeEnvelope(raw []byte) (Envelope, error) {
	d := &decoder{buf: raw}
	env := Envelope{Sender: d.u32(), Payload: d.bytes()}
	n := int(d.u32())
	if d.err == nil && n >= 0 && n < 1<<16 {
		for i := 0; i < n; i++ {
			env.Auth = append(env.Auth, d.bytes())
		}
	} else {
		d.fail()
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	if len(d.buf) != 0 {
		return Envelope{}, fmt.Errorf("pbft: %d trailing envelope bytes", len(d.buf))
	}
	return env, nil
}
