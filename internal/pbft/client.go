package pbft

import (
	"bytes"
	"sort"

	"rubin/internal/msgnet"
	"rubin/internal/sim"
)

// Client invokes operations against a replica group and accepts a result
// once F+1 matching replies arrive (at least one is from a correct
// replica).
//
// With the read-only fast path enabled (EnableReadFastPath), side-effect-
// free operations can instead be multicast as ReadRequests: every replica
// executes them tentatively against its last-executed state, and the
// client accepts a result once 2F+1 replicas report identical bytes —
// the stronger quorum reads require, because a tentative result carries
// no agreement certificate (Castro & Liskov §4.4). A read that cannot
// gather a matching 2F+1 quorum (split replies, or a timeout while
// replicas lag or change views) falls back to the ordered path,
// preserving liveness; the fallback count is surfaced for metrics.
//
// Safety note: under crash faults the 2F+1 value-match is linearizable —
// a completed write has executed at F+1 or more replicas, leaving at most
// 2F stale ones, which is short of a read quorum. A Byzantine replica
// could in principle echo a value it never executed; that hazard is
// exactly what the workload linearizability oracle exists to catch, and
// the adversarial self-test in this package proves the oracle rejects
// histories produced by stale-serving replicas.
type Client struct {
	id    uint32
	f     int
	conns map[uint32]*msgnet.Peer
	order []uint32 // attached replica ids, ascending; broadcast send order
	next  uint64

	pending map[uint64]*invocation

	// Read-only fast path (disabled until EnableReadFastPath).
	fastReadsOn bool
	loop        *sim.Loop
	readTimeout sim.Time
	reads       map[uint64]*readInvocation
	onReadPath  func(key string, fast bool)

	// Stats.
	invoked, completed uint64
	sendErrs           uint64
	fastReads          uint64
	fastFallbacks      uint64
}

type invocation struct {
	op      []byte
	replies map[uint32][]byte // replica -> result
	done    func(result []byte)
	fired   bool
}

type readReplyVote struct {
	result   []byte
	executed uint64
}

type readInvocation struct {
	op      []byte
	key     string
	replies map[uint32]readReplyVote // replica -> first vote (equivocation-proof)
	done    func(result []byte)
	timer   sim.Timer
	fired   bool
}

// NewClient creates a client. Attach replica connections with
// AttachReplica before invoking.
func NewClient(id uint32, f int) *Client {
	return &Client{
		id:      id,
		f:       f,
		conns:   make(map[uint32]*msgnet.Peer),
		pending: make(map[uint64]*invocation),
		reads:   make(map[uint64]*readInvocation),
	}
}

// ID returns the client identifier.
func (c *Client) ID() uint32 { return c.id }

// Completed returns the number of finished invocations.
func (c *Client) Completed() uint64 { return c.completed }

// Outstanding returns the invocations still waiting for their reply
// quorum — zero once a workload has fully drained.
func (c *Client) Outstanding() int { return len(c.pending) + len(c.reads) }

// SendErrors returns the surfaced request-send failures. A client
// tolerates up to F failed sends per invocation (the quorum absorbs
// them), but the failures are still counted, never discarded.
func (c *Client) SendErrors() uint64 { return c.sendErrs }

// EnableReadFastPath turns on the read-only optimization: InvokeRead
// multicasts reads instead of ordering them, falling back to the ordered
// path if a matching 2F+1 quorum has not formed after timeout. The loop
// drives the fallback timer.
func (c *Client) EnableReadFastPath(loop *sim.Loop, timeout sim.Time) {
	c.fastReadsOn = true
	c.loop = loop
	c.readTimeout = timeout
}

// SetReadPathHook registers a callback fired when a fast-path-eligible
// invocation completes, reporting the request key it was traced under and
// whether the fast path served it (false means it fell back to ordering).
func (c *Client) SetReadPathHook(fn func(key string, fast bool)) { c.onReadPath = fn }

// FastReads returns the number of reads served by the fast path.
func (c *Client) FastReads() uint64 { return c.fastReads }

// FastReadFallbacks returns the number of reads that failed to gather a
// matching 2F+1 quorum and were resubmitted through the ordered path.
func (c *Client) FastReadFallbacks() uint64 { return c.fastFallbacks }

// AttachReplica wires the msgnet peer to one replica and consumes
// replies.
func (c *Client) AttachReplica(id uint32, p *msgnet.Peer) {
	if _, seen := c.conns[id]; !seen {
		c.order = append(c.order, id)
		sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	}
	c.conns[id] = p
	p.OnSendError(func(error) { c.sendErrs++ })
	p.OnMessage(func(_ msgnet.Class, raw []byte) {
		msg, err := Decode(raw)
		if err != nil {
			return
		}
		switch rep := msg.(type) {
		case Reply:
			if rep.Client != c.id {
				return
			}
			c.handleReply(rep)
		case ReadReply:
			if rep.Client != c.id {
				return
			}
			c.handleReadReply(rep)
		}
	})
}

// Invoke submits one operation to all replicas; done fires once F+1
// matching replies arrive. (Production PBFT sends to the primary first
// and broadcasts on timeout; broadcasting immediately is equivalent for
// safety and simpler for a simulation client.) The returned string is
// the request's key — the id the observability layer traces it under.
func (c *Client) Invoke(op []byte, done func(result []byte)) string {
	c.next++
	ts := c.next
	c.pending[ts] = &invocation{op: op, replies: make(map[uint32][]byte), done: done}
	c.invoked++
	req := Request{Client: c.id, Timestamp: ts, Op: op}
	c.broadcast(Encode(req))
	return req.Key()
}

// InvokeRead submits a side-effect-free operation. With the fast path
// enabled it is multicast as a ReadRequest and accepted on 2F+1 matching
// tentative replies; otherwise (or on fallback) it travels the ordered
// path like any other operation. The returned key is stable across a
// fallback, so callers trace the invocation under one id either way.
func (c *Client) InvokeRead(op []byte, done func(result []byte)) string {
	if !c.fastReadsOn {
		return c.Invoke(op, done)
	}
	c.next++
	ts := c.next
	req := ReadRequest{Client: c.id, Timestamp: ts, Op: op}
	inv := &readInvocation{op: op, key: req.Key(), replies: make(map[uint32]readReplyVote), done: done}
	c.reads[ts] = inv
	c.invoked++
	inv.timer = c.loop.After(c.readTimeout, func() { c.fallbackRead(ts) })
	c.broadcast(Encode(req))
	return inv.key
}

// broadcast sends one encoded client message to every attached replica in
// deterministic id order (keeps simulations reproducible). The order is
// precomputed at attach time so the per-invocation path does not allocate.
func (c *Client) broadcast(raw []byte) {
	for _, id := range c.order {
		p := c.conns[id]
		if p == nil {
			c.sendErrs++
			continue
		}
		if err := p.Send(msgnet.ClassControl, raw); err != nil {
			c.sendErrs++
		}
	}
}

func (c *Client) handleReply(rep Reply) {
	inv := c.pending[rep.Timestamp]
	if inv == nil || inv.fired {
		return
	}
	inv.replies[rep.Replica] = rep.Result
	// Accept when F+1 replicas report the same result.
	count := 0
	for _, res := range inv.replies {
		if bytes.Equal(res, rep.Result) {
			count++
		}
	}
	if count >= c.f+1 {
		inv.fired = true
		delete(c.pending, rep.Timestamp)
		c.completed++
		if inv.done != nil {
			inv.done(rep.Result)
		}
	}
}

func (c *Client) handleReadReply(rep ReadReply) {
	inv := c.reads[rep.Timestamp]
	if inv == nil || inv.fired {
		return
	}
	// First vote per replica wins: an equivocating replica cannot
	// contribute twice to a quorum, whatever tags it claims.
	if _, dup := inv.replies[rep.Replica]; dup {
		return
	}
	inv.replies[rep.Replica] = readReplyVote{result: rep.Result, executed: rep.Executed}
	// Accept when 2F+1 replicas report byte-identical results. Matching
	// on the value (not the state tag) keeps the fast path live while
	// replicas execute at slightly different positions; the tag is
	// carried for diagnostics.
	count := 0
	for _, v := range inv.replies {
		if bytes.Equal(v.result, rep.Result) {
			count++
		}
	}
	if count >= 2*c.f+1 {
		inv.fired = true
		inv.timer.Cancel()
		delete(c.reads, rep.Timestamp)
		c.fastReads++
		c.completed++
		if c.onReadPath != nil {
			c.onReadPath(inv.key, true)
		}
		if inv.done != nil {
			inv.done(rep.Result)
		}
		return
	}
	// Every attached replica has voted and no value reached 2F+1: no
	// quorum can form anymore. Fall back now instead of burning the
	// remaining timeout.
	if len(inv.replies) >= len(c.conns) {
		c.fallbackRead(rep.Timestamp)
	}
}

// fallbackRead abandons the tentative read and resubmits the operation
// through the ordered path. The invocation keeps its original trace key;
// the ordered retry completes under its own request id.
func (c *Client) fallbackRead(ts uint64) {
	inv := c.reads[ts]
	if inv == nil || inv.fired {
		return
	}
	inv.fired = true
	inv.timer.Cancel()
	delete(c.reads, ts)
	c.fastFallbacks++
	key, done := inv.key, inv.done
	// Invoke counts its own invocation and completion; cancel out the
	// double-count so stats reflect one logical operation.
	c.invoked--
	c.Invoke(inv.op, func(result []byte) {
		if c.onReadPath != nil {
			c.onReadPath(key, false)
		}
		if done != nil {
			done(result)
		}
	})
}
