package pbft

import (
	"bytes"
	"sort"

	"rubin/internal/msgnet"
)

// Client invokes operations against a replica group and accepts a result
// once F+1 matching replies arrive (at least one is from a correct
// replica).
type Client struct {
	id    uint32
	f     int
	conns map[uint32]*msgnet.Peer
	next  uint64

	pending map[uint64]*invocation

	// Stats.
	invoked, completed uint64
	sendErrs           uint64
}

type invocation struct {
	op      []byte
	replies map[uint32][]byte // replica -> result
	done    func(result []byte)
	fired   bool
}

// NewClient creates a client. Attach replica connections with
// AttachReplica before invoking.
func NewClient(id uint32, f int) *Client {
	return &Client{id: id, f: f, conns: make(map[uint32]*msgnet.Peer), pending: make(map[uint64]*invocation)}
}

// ID returns the client identifier.
func (c *Client) ID() uint32 { return c.id }

// Completed returns the number of finished invocations.
func (c *Client) Completed() uint64 { return c.completed }

// Outstanding returns the invocations still waiting for their F+1
// matching replies — zero once a workload has fully drained.
func (c *Client) Outstanding() int { return len(c.pending) }

// SendErrors returns the surfaced request-send failures. A client
// tolerates up to F failed sends per invocation (the quorum absorbs
// them), but the failures are still counted, never discarded.
func (c *Client) SendErrors() uint64 { return c.sendErrs }

// AttachReplica wires the msgnet peer to one replica and consumes
// replies.
func (c *Client) AttachReplica(id uint32, p *msgnet.Peer) {
	c.conns[id] = p
	p.OnSendError(func(error) { c.sendErrs++ })
	p.OnMessage(func(_ msgnet.Class, raw []byte) {
		msg, err := Decode(raw)
		if err != nil {
			return
		}
		rep, ok := msg.(Reply)
		if !ok || rep.Client != c.id {
			return
		}
		c.handleReply(rep)
	})
}

// Invoke submits one operation to all replicas; done fires once F+1
// matching replies arrive. (Production PBFT sends to the primary first
// and broadcasts on timeout; broadcasting immediately is equivalent for
// safety and simpler for a simulation client.) The returned string is
// the request's key — the id the observability layer traces it under.
func (c *Client) Invoke(op []byte, done func(result []byte)) string {
	c.next++
	ts := c.next
	c.pending[ts] = &invocation{op: op, replies: make(map[uint32][]byte), done: done}
	c.invoked++
	req := Request{Client: c.id, Timestamp: ts, Op: op}
	raw := Encode(req)
	// Deterministic send order keeps simulations reproducible.
	ids := make([]int, 0, len(c.conns))
	for id := range c.conns {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := c.conns[uint32(id)].Send(msgnet.ClassControl, raw); err != nil {
			c.sendErrs++
		}
	}
	return req.Key()
}

func (c *Client) handleReply(rep Reply) {
	inv := c.pending[rep.Timestamp]
	if inv == nil || inv.fired {
		return
	}
	inv.replies[rep.Replica] = rep.Result
	// Accept when F+1 replicas report the same result.
	count := 0
	for _, res := range inv.replies {
		if bytes.Equal(res, rep.Result) {
			count++
		}
	}
	if count >= c.f+1 {
		inv.fired = true
		delete(c.pending, rep.Timestamp)
		c.completed++
		if inv.done != nil {
			inv.done(rep.Result)
		}
	}
}
