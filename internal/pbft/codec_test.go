package pbft

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"rubin/internal/auth"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	out, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode(Encode(%T)): %v", m, err)
	}
	return out
}

func TestCodecRoundTripAllTypes(t *testing.T) {
	d := auth.Hash([]byte("digest"))
	reqs := []Request{
		{Client: 7, Timestamp: 9, Op: []byte("op-1")},
		{Client: 8, Timestamp: 10, Op: nil},
	}
	msgs := []Message{
		Request{Client: 1, Timestamp: 2, Op: []byte("x")},
		PrePrepare{View: 3, Seq: 4, Digest: d, Batch: reqs},
		Prepare{View: 3, Seq: 4, Digest: d, Replica: 2},
		Commit{View: 3, Seq: 4, Digest: d, Replica: 1},
		Reply{View: 3, Timestamp: 9, Client: 7, Replica: 0, Result: []byte("OK")},
		Checkpoint{Seq: 64, Digest: d, Replica: 3},
		ViewChange{NewView: 5, Stable: 64, Replica: 2,
			Prepared: []PreparedProof{{View: 4, Seq: 65, Digest: d, Batch: reqs}}},
		NewView{View: 5, PrePrepares: []PrePrepare{{View: 5, Seq: 65, Digest: d, Batch: reqs}}},
		StateRequest{Seq: 42, Replica: 3},
		StateRequest{Seq: 42, Replica: 3, Root: d, Digests: []auth.Digest{d, auth.Hash(nil)}},
		StateResponse{Seq: 64, View: 5, Digest: d, State: []byte("snapshot"), Replica: 1},
		StateManifest{Seq: 64, View: 5, Root: d, Header: []byte("hdr"), Digests: []auth.Digest{auth.Hash(nil), d}, Replica: 2},
		StatePart{Seq: 64, Part: 17, Data: []byte("bucket-bytes"), Replica: 2},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Normalize nil-vs-empty slices inside batches for comparison.
		if !messagesEquivalent(m, got) {
			t.Errorf("%T round trip mismatch:\n in: %+v\nout: %+v", m, m, got)
		}
	}
}

// messagesEquivalent compares messages treating nil and empty byte slices
// as equal (the codec does not distinguish them).
func messagesEquivalent(a, b Message) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(m Message) Message {
	fix := func(b []byte) []byte {
		if len(b) == 0 {
			return []byte{}
		}
		return b
	}
	fixReqs := func(rs []Request) []Request {
		out := make([]Request, len(rs))
		for i, r := range rs {
			r.Op = fix(r.Op)
			out[i] = r
		}
		return out
	}
	switch v := m.(type) {
	case Request:
		v.Op = fix(v.Op)
		return v
	case PrePrepare:
		v.Batch = fixReqs(v.Batch)
		return v
	case Reply:
		v.Result = fix(v.Result)
		return v
	case ViewChange:
		for i := range v.Prepared {
			v.Prepared[i].Batch = fixReqs(v.Prepared[i].Batch)
		}
		return v
	case NewView:
		for i := range v.PrePrepares {
			v.PrePrepares[i].Batch = fixReqs(v.PrePrepares[i].Batch)
		}
		return v
	case StateResponse:
		v.State = fix(v.State)
		return v
	case StateManifest:
		v.Header = fix(v.Header)
		return v
	case StatePart:
		v.Data = fix(v.Data)
		return v
	default:
		return m
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                     // unknown type
		{99},                    // unknown type
		{byte(MsgPrepare)},      // truncated
		{byte(MsgRequest), 1},   // truncated
		{byte(MsgCommit), 0, 0}, // truncated
	}
	for _, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("Decode(%v) should fail", raw)
		}
	}
	// Trailing bytes are also rejected.
	good := Encode(Prepare{View: 1, Seq: 2, Replica: 3})
	if _, err := Decode(append(good, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBatchDigestDistinguishesBatches(t *testing.T) {
	a := []Request{{Client: 1, Timestamp: 1, Op: []byte("x")}}
	b := []Request{{Client: 1, Timestamp: 2, Op: []byte("x")}}
	if BatchDigest(a) == BatchDigest(b) {
		t.Fatal("different batches share a digest")
	}
	if BatchDigest(a) != BatchDigest(a) {
		t.Fatal("digest not deterministic")
	}
	if BatchDigest(nil) != BatchDigest([]Request{}) {
		t.Fatal("nil and empty batches should digest identically")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{Sender: 2, Payload: []byte("payload"), Auth: auth.Authenticator{nil, []byte("mac1"), []byte("mac2")}}
	got, err := DecodeEnvelope(EncodeEnvelope(env))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sender != 2 || !bytes.Equal(got.Payload, []byte("payload")) {
		t.Fatalf("envelope mismatch: %+v", got)
	}
	if len(got.Auth) != 3 || !bytes.Equal(got.Auth[1], []byte("mac1")) {
		t.Fatalf("authenticator mismatch: %+v", got.Auth)
	}
}

func TestEnvelopeDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {1}, {0, 0, 0, 1, 0xFF, 0xFF, 0xFF}} {
		if _, err := DecodeEnvelope(raw); err == nil {
			t.Errorf("DecodeEnvelope(%v) should fail", raw)
		}
	}
}

// Property: Request encoding round-trips for arbitrary field values.
func TestPropertyRequestCodec(t *testing.T) {
	prop := func(client uint32, ts uint64, op []byte) bool {
		m, err := Decode(Encode(Request{Client: client, Timestamp: ts, Op: op}))
		if err != nil {
			return false
		}
		r, ok := m.(Request)
		return ok && r.Client == client && r.Timestamp == ts && bytes.Equal(r.Op, op)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary input (it may error).
func TestPropertyDecodeTotal(t *testing.T) {
	prop := func(raw []byte) bool {
		_, _ = Decode(raw)
		_, _ = DecodeEnvelope(raw)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PrePrepare with arbitrary batches round-trips.
func TestPropertyPrePrepareCodec(t *testing.T) {
	prop := func(view, seq uint64, ops [][]byte) bool {
		var batch []Request
		for i, op := range ops {
			batch = append(batch, Request{Client: uint32(i), Timestamp: uint64(i), Op: op})
		}
		pp := PrePrepare{View: view, Seq: seq, Digest: BatchDigest(batch), Batch: batch}
		m, err := Decode(Encode(pp))
		if err != nil {
			return false
		}
		got, ok := m.(PrePrepare)
		if !ok || got.View != view || got.Seq != seq || got.Digest != pp.Digest || len(got.Batch) != len(batch) {
			return false
		}
		for i := range batch {
			if !bytes.Equal(got.Batch[i].Op, batch[i].Op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
