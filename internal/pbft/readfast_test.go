package pbft

import (
	"fmt"
	"testing"

	"rubin/internal/kvstore"
	"rubin/internal/model"
	"rubin/internal/sim"
	"rubin/internal/transport"
	"rubin/internal/workload"
)

// newReadTestClient builds a bare client with n attached (nil) replica
// slots and the fast path enabled — enough to drive the read-quorum
// logic directly through handleReadReply without a network.
func newReadTestClient(f, n int) (*Client, *sim.Loop) {
	loop := sim.NewLoop(1)
	cl := NewClient(1, f)
	cl.EnableReadFastPath(loop, 2*sim.Millisecond)
	for i := 0; i < n; i++ {
		cl.conns[uint32(i)] = nil
	}
	return cl, loop
}

// vote builds one tentative reply for the quorum table tests.
func vote(replica uint32, result string, executed uint64) ReadReply {
	return ReadReply{Timestamp: 1, Client: 1, Replica: replica, Executed: executed, Result: []byte(result)}
}

func TestReadQuorumTable(t *testing.T) {
	cases := []struct {
		name  string
		votes []ReadReply
		// wantFast: accepted on 2F+1 matching tentative replies.
		// wantFallback: resubmitted through the ordered path.
		// Neither: the invocation is still waiting for votes.
		wantFast     bool
		wantFallback bool
		wantResult   string
	}{
		{
			name:       "2F+1 matching values accept",
			votes:      []ReadReply{vote(0, "v", 7), vote(1, "v", 7), vote(2, "v", 7)},
			wantFast:   true,
			wantResult: "v",
		},
		{
			name: "matching values at different state positions accept",
			// The quorum matches on result bytes; the Executed tag is
			// diagnostic, so replicas mid-execution still form a quorum.
			votes:      []ReadReply{vote(0, "v", 5), vote(1, "v", 6), vote(3, "v", 9)},
			wantFast:   true,
			wantResult: "v",
		},
		{
			name:  "F+1 matching is not enough",
			votes: []ReadReply{vote(0, "v", 7), vote(1, "v", 7)},
		},
		{
			name: "split vote falls back once every replica answered",
			votes: []ReadReply{
				vote(0, "a", 7), vote(1, "a", 7), vote(2, "b", 8), vote(3, "b", 8),
			},
			wantFallback: true,
		},
		{
			name: "equivocating replica cannot fill the quorum",
			// Replica 3 votes three times; only its first vote counts, so
			// two distinct replicas have voted "v" — short of 2F+1.
			votes: []ReadReply{vote(0, "v", 7), vote(3, "v", 7), vote(3, "v", 8), vote(3, "v", 9)},
		},
		{
			name: "equivocating value flips cannot complete a split",
			// Replica 3 first votes "b", then tries to switch to "a" to
			// complete a quorum for "a": the flip must be ignored.
			votes: []ReadReply{vote(0, "a", 7), vote(1, "a", 7), vote(3, "b", 8), vote(3, "a", 7)},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cl, _ := newReadTestClient(1, 4)
			var result []byte
			fired := 0
			cl.InvokeRead([]byte("op"), func(res []byte) { result = res; fired++ })
			for _, v := range tc.votes {
				cl.handleReadReply(v)
			}
			if got := cl.FastReads() == 1; got != tc.wantFast {
				t.Fatalf("fast accept = %v, want %v", got, tc.wantFast)
			}
			if got := cl.FastReadFallbacks() == 1; got != tc.wantFallback {
				t.Fatalf("fallback = %v, want %v", got, tc.wantFallback)
			}
			switch {
			case tc.wantFast:
				if fired != 1 || string(result) != tc.wantResult {
					t.Fatalf("done fired %d times with %q, want once with %q", fired, result, tc.wantResult)
				}
				if cl.Outstanding() != 0 {
					t.Fatalf("%d invocations outstanding after accept", cl.Outstanding())
				}
			case tc.wantFallback:
				if fired != 0 {
					t.Fatal("done fired before the ordered retry completed")
				}
				if cl.Outstanding() != 1 {
					t.Fatalf("outstanding = %d, want 1 (the ordered retry)", cl.Outstanding())
				}
			default:
				if fired != 0 {
					t.Fatal("done fired without a quorum")
				}
				if cl.Outstanding() != 1 {
					t.Fatalf("outstanding = %d, want 1 (still waiting)", cl.Outstanding())
				}
			}
		})
	}
}

// TestReadTimeoutFallsBackAndCompletesOrdered drives the timer-based
// fallback: a read stuck on split votes resubmits through the ordered
// path after the timeout, completes under its original trace key, and
// keeps the invoked/completed accounting at one logical operation.
func TestReadTimeoutFallsBackAndCompletesOrdered(t *testing.T) {
	cl, loop := newReadTestClient(1, 4)
	var hooks []bool
	cl.SetReadPathHook(func(_ string, fast bool) { hooks = append(hooks, fast) })
	var result []byte
	key := cl.InvokeRead([]byte("op"), func(res []byte) { result = res })
	cl.handleReadReply(vote(0, "a", 7))
	cl.handleReadReply(vote(1, "b", 8))
	loop.Run() // the fallback timer fires
	if cl.FastReadFallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", cl.FastReadFallbacks())
	}
	if key == "" {
		t.Fatal("InvokeRead returned an empty trace key")
	}
	// The ordered retry runs under timestamp 2; F+1 matching replies
	// complete it.
	cl.handleReply(Reply{Timestamp: 2, Client: 1, Replica: 0, Result: []byte("ordered")})
	cl.handleReply(Reply{Timestamp: 2, Client: 1, Replica: 1, Result: []byte("ordered")})
	if string(result) != "ordered" {
		t.Fatalf("result = %q, want the ordered retry's", result)
	}
	if len(hooks) != 1 || hooks[0] != false {
		t.Fatalf("path hook = %v, want one ordered-path report", hooks)
	}
	if cl.Completed() != 1 || cl.Outstanding() != 0 {
		t.Fatalf("completed=%d outstanding=%d, want 1/0", cl.Completed(), cl.Outstanding())
	}
}

// TestReadFastPathServesReads is the end-to-end happy path on both
// transports: a written value is read back through the multicast fast
// path, replicas report tentative serves, and no agreement instance ran
// for the read.
func TestReadFastPathServesReads(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := newTestCluster(t, kind, DefaultConfig())
			cl, err := c.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			cl.EnableReadFastPath(c.Loop, 2*sim.Millisecond)
			var paths []bool
			cl.SetReadPathHook(func(_ string, fast bool) { paths = append(paths, fast) })
			var got []byte
			c.Loop.Post(func() {
				cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "alpha", "1"), func([]byte) {
					cl.InvokeRead(kvstore.EncodeOp(kvstore.OpGet, "alpha", ""), func(res []byte) {
						got = res
					})
				})
			})
			c.Loop.Run()
			if string(got) != "1" {
				t.Fatalf("fast read returned %q, want 1", got)
			}
			if cl.FastReads() != 1 || cl.FastReadFallbacks() != 0 {
				t.Fatalf("fastReads=%d fallbacks=%d, want 1/0", cl.FastReads(), cl.FastReadFallbacks())
			}
			if len(paths) != 1 || !paths[0] {
				t.Fatalf("path hook = %v, want one fast-path report", paths)
			}
			served := 0
			for _, rep := range c.Replicas {
				served += int(rep.ReadsServed())
				// The read must not have entered the log: only the write
				// was ordered.
				if rep.Executed() != 1 {
					t.Fatalf("replica executed %d ordered ops, want 1 (the write)", rep.Executed())
				}
			}
			if served < 2*c.Config.F+1 {
				t.Fatalf("only %d replicas served the read tentatively, want >= %d", served, 2*c.Config.F+1)
			}
		})
	}
}

// TestReadOnlyDuringViewChange crashes the leader (and slows one backup
// past the read timeout) while fast reads are in flight: stuck reads
// must fall back to the ordered path, the view change must restore
// liveness, and the full history — fast and ordered reads interleaved
// with writes across the fault window — must stay linearizable.
func TestReadOnlyDuringViewChange(t *testing.T) {
	c := newTestCluster(t, transport.KindTCP, DefaultConfig())
	cl, err := c.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableReadFastPath(c.Loop, 500*sim.Microsecond)
	invoke := func(_ int, op []byte, done func([]byte)) string {
		if code, _, _, err := kvstore.DecodeOp(op); err == nil && code == kvstore.OpGet {
			return cl.InvokeRead(op, done)
		}
		return cl.Invoke(op, done)
	}
	d, err := workload.New(c.Loop, workload.Config{
		Users: 8, Conns: 1, Ops: 150, Warmup: 0,
		Keys:    workload.NewUniform(16),
		Mix:     workload.Mix{ReadPct: 70, WritePct: 30},
		Arrival: workload.Closed(1, 0), ValueSize: 16, Seed: 42,
	}, invoke)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetReadPathHook(d.NotePath)
	// Mid-run: crash the view-0 leader and make replica 1 delay every
	// send past the read timeout — fast reads can no longer gather 2F+1
	// prompt matching replies and must fall back while the remaining
	// replicas elect a new view. The slowdown lifts later, the new view
	// (led by replica 1) speeds back up, and the run drains.
	c.Loop.After(300*sim.Microsecond, func() {
		c.Crash(0)
		c.Replicas[1].SetFaults(Faults{SendDelay: 800 * sim.Microsecond})
	})
	c.Loop.After(4*sim.Millisecond, func() {
		c.Replicas[1].SetFaults(Faults{})
	})
	if err := d.Run(); err != nil {
		t.Fatalf("workload did not drain after the view change: %v", err)
	}
	if cl.Outstanding() != 0 {
		t.Fatalf("%d invocations left outstanding", cl.Outstanding())
	}
	if cl.FastReads() == 0 {
		t.Fatal("no fast reads served around the fault window")
	}
	if cl.FastReadFallbacks() == 0 {
		t.Fatal("no read fell back while the quorum was unreachable")
	}
	for i := 1; i < 4; i++ {
		if c.Replicas[i].View() == 0 {
			t.Fatalf("replica %d still in view 0 after the leader crash", i)
		}
	}
	if err := d.History().Check(); err != nil {
		t.Fatalf("history not linearizable across the view change: %v", err)
	}
	if d.History().FastOps() == 0 {
		t.Fatal("history recorded no fast-path operations")
	}
}

// staleApp wraps a kvstore and, once frozen, serves tentative reads
// from a stale snapshot while ordered execution continues on the live
// store — the Byzantine staleness hazard the fast path's oracle must
// catch.
type staleApp struct {
	*kvstore.Store
	frozen *kvstore.Store
}

func (a *staleApp) ExecuteReadOnly(op []byte) []byte {
	if a.frozen != nil {
		return a.frozen.ExecuteReadOnly(op)
	}
	return a.Store.ExecuteReadOnly(op)
}

// TestStaleFastReadsFailOracle is the adversarial self-test of the
// workload oracle: a cluster whose replicas serve fast-path replies
// from pre-write state produces matching 2F+1 quorums — the client
// cannot tell — but the recorded history must fail CheckLinearizable.
// The unfrozen control run proves the rejection is the staleness, not
// the harness.
func TestStaleFastReadsFailOracle(t *testing.T) {
	run := func(freeze bool) (*workload.History, []byte, error) {
		apps := make([]*staleApp, 4)
		c, err := NewCluster(transport.KindTCP, DefaultConfig(), model.Default(), 1,
			func(i int) Application {
				apps[i] = &staleApp{Store: kvstore.New()}
				return apps[i]
			})
		if err != nil {
			return nil, nil, err
		}
		if err := c.Start(); err != nil {
			return nil, nil, err
		}
		cl, err := c.AddClient()
		if err != nil {
			return nil, nil, err
		}
		cl.EnableReadFastPath(c.Loop, 2*sim.Millisecond)
		h := &workload.History{}
		record := func(kind workload.Kind, value, result string, inv, ret sim.Time) {
			h.Add(workload.Op{
				Kind: kind, Key: "k", Value: value, Result: result,
				Arrive: inv, Invoke: inv, Return: ret, Measured: true,
			})
		}
		var readResult []byte
		c.Loop.Post(func() {
			t0 := c.Loop.Now()
			cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "k", "v1"), func([]byte) {
				record(workload.Write, "v1", "", t0, c.Loop.Now())
				if freeze {
					// Snapshot the post-v1 state; from here on every
					// replica answers tentative reads from it, however
					// far the live store advances.
					snap := kvstore.New()
					snap.Execute(kvstore.EncodeOp(kvstore.OpPut, "k", "v1"))
					for _, a := range apps {
						a.frozen = snap
					}
				}
				// Strictly sequential intervals: were an operation's invoke
				// to touch its predecessor's return instant, the checker
				// could legally reorder them and mask the staleness.
				c.Loop.After(sim.Microsecond, func() {
					t1 := c.Loop.Now()
					cl.Invoke(kvstore.EncodeOp(kvstore.OpPut, "k", "v2"), func([]byte) {
						record(workload.Write, "v2", "", t1, c.Loop.Now())
						c.Loop.After(sim.Microsecond, func() {
							t2 := c.Loop.Now()
							cl.InvokeRead(kvstore.EncodeOp(kvstore.OpGet, "k", ""), func(res []byte) {
								readResult = res
								record(workload.Read, "", string(res), t2, c.Loop.Now())
							})
						})
					})
				})
			})
		})
		c.Loop.Run()
		if cl.FastReads() != 1 {
			return nil, nil, fmt.Errorf("read not served by the fast path (fast=%d fallbacks=%d)",
				cl.FastReads(), cl.FastReadFallbacks())
		}
		return h, readResult, nil
	}

	h, res, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	// All four replicas froze identically, so the stale value forms a
	// perfectly matching quorum — undetectable at the protocol level.
	if string(res) != "v1" {
		t.Fatalf("stale-serving replicas returned %q, want the stale v1", res)
	}
	if err := h.CheckLinearizable(); err == nil {
		t.Fatal("oracle accepted a history with a stale fast read")
	}

	h, res, err = run(false)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "v2" {
		t.Fatalf("honest replicas returned %q, want v2", res)
	}
	if err := h.CheckLinearizable(); err != nil {
		t.Fatalf("oracle rejected the honest control run: %v", err)
	}
}
