package pbft

import (
	"bytes"
	"testing"

	"rubin/internal/auth"
)

// fuzzSeedMessages returns one valid encoding per protocol message type,
// seeding the fuzzers with inputs that reach every decode arm.
func fuzzSeedMessages() [][]byte {
	var d auth.Digest
	for i := range d {
		d[i] = byte(i)
	}
	batch := []Request{{Client: 7, Timestamp: 3, Op: []byte("put/k/v")}}
	msgs := []Message{
		Request{Client: 1, Timestamp: 2, Op: []byte("op")},
		PrePrepare{View: 1, Seq: 2, Digest: d, Batch: batch},
		Prepare{View: 1, Seq: 2, Digest: d, Replica: 3},
		Commit{View: 1, Seq: 2, Digest: d, Replica: 3},
		Reply{View: 1, Timestamp: 2, Client: 3, Replica: 0, Result: []byte("r")},
		Checkpoint{Seq: 64, Digest: d, Replica: 2},
		ViewChange{NewView: 2, Stable: 64, Prepared: []PreparedProof{{View: 1, Seq: 65, Digest: d, Batch: batch}}, Replica: 1},
		NewView{View: 2, PrePrepares: []PrePrepare{{View: 2, Seq: 65, Digest: d, Batch: batch}}},
		StateRequest{Seq: 12, Replica: 1},
		StateRequest{Seq: 12, Replica: 1, Root: d, Digests: []auth.Digest{d, d}},
		StateResponse{Seq: 64, View: 2, Digest: d, State: []byte("state"), Replica: 1},
		ReadRequest{Client: 1, Timestamp: 2, Op: []byte("get/k")},
		ReadReply{Timestamp: 2, Client: 1, Replica: 3, Executed: 17, Result: []byte("v")},
		StateManifest{Seq: 64, View: 2, Root: d, Header: []byte("hd"), Digests: []auth.Digest{d}, Replica: 1},
		StatePart{Seq: 64, Part: 3, Data: []byte("part"), Replica: 1},
	}
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		out[i] = Encode(m)
	}
	return out
}

// FuzzDecode asserts the protocol codec is total: arbitrary input either
// decodes into a message whose canonical re-encoding is byte-identical to
// the input, or errors — it must never panic and never accept two
// encodings of the same message.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeedMessages() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Decode returned nil message without error")
		}
		if re := Encode(m); !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x decodes to %T but re-encodes to %x", data, m, re)
		}
	})
}

// FuzzDecodeReadRequest focuses the codec fuzzer on the read fast-path
// request arm: every input is forced onto the ReadRequest type tag, so
// the fuzzer explores that decoder's length and bounds handling instead
// of spreading over all message types. Accepted inputs must decode to a
// ReadRequest and re-encode byte-identically (in particular, trailing
// bytes must be rejected, never silently dropped).
func FuzzDecodeReadRequest(f *testing.F) {
	f.Add(Encode(ReadRequest{Client: 1, Timestamp: 2, Op: []byte("get/k")})[1:])
	f.Add(Encode(ReadRequest{Client: 0, Timestamp: 0, Op: nil})[1:])
	f.Add(append(Encode(ReadRequest{Client: 9, Timestamp: 9, Op: []byte("x")})[1:], 0)) // trailing byte
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		data := append([]byte{byte(MsgReadRequest)}, body...)
		m, err := Decode(data)
		if err != nil {
			return
		}
		if _, ok := m.(ReadRequest); !ok {
			t.Fatalf("read-request tag decoded to %T", m)
		}
		if re := Encode(m); !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x re-encodes to %x", data, re)
		}
	})
}

// FuzzDecodeReadReply does the same for the tentative-reply arm.
func FuzzDecodeReadReply(f *testing.F) {
	f.Add(Encode(ReadReply{Timestamp: 2, Client: 1, Replica: 3, Executed: 17, Result: []byte("v")})[1:])
	f.Add(Encode(ReadReply{})[1:])
	f.Add(append(Encode(ReadReply{Timestamp: 1, Client: 1, Replica: 1, Result: []byte("r")})[1:], 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		data := append([]byte{byte(MsgReadReply)}, body...)
		m, err := Decode(data)
		if err != nil {
			return
		}
		if _, ok := m.(ReadReply); !ok {
			t.Fatalf("read-reply tag decoded to %T", m)
		}
		if re := Encode(m); !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x re-encodes to %x", data, re)
		}
	})
}

// FuzzDecodeEnvelope asserts the authenticated-envelope codec is total
// and canonical in the same way.
func FuzzDecodeEnvelope(f *testing.F) {
	ring := auth.GenerateKeyrings(4, 1)[0]
	payload := Encode(Prepare{View: 1, Seq: 2, Replica: 0})
	f.Add(EncodeEnvelope(Envelope{Sender: 0, Payload: payload, Auth: ring.Authenticate(payload)}))
	f.Add(EncodeEnvelope(Envelope{Sender: 3, Payload: []byte{}}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if re := EncodeEnvelope(env); !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x re-encodes to %x", data, re)
		}
	})
}
