package pbft

import (
	"testing"

	"rubin/internal/transport"
)

// TestRangedHeartbeatFillsRun asserts one ProposeHeartbeat call covers a
// contiguous run of empty sequences: all slots up to upTo are proposed
// back-to-back, agreed in one pipelined wave, and executed everywhere.
func TestRangedHeartbeatFillsRun(t *testing.T) {
	c := newTestCluster(t, transport.KindRDMA, DefaultConfig())
	leader := c.Replicas[0]
	const upTo = 5
	var proposed int
	c.Loop.Post(func() { proposed = leader.ProposeHeartbeat(upTo) })
	c.Loop.Run()
	if proposed != upTo {
		t.Fatalf("proposed %d slots, want %d", proposed, upTo)
	}
	for i, rep := range c.Replicas {
		if rep.Executed() != upTo {
			t.Errorf("replica %d executed %d, want %d", i, rep.Executed(), upTo)
		}
	}
	// A second call with the same bound is a no-op: the sequences are
	// already assigned, so no new agreement is minted.
	var again int
	c.Loop.Post(func() { again = leader.ProposeHeartbeat(upTo) })
	c.Loop.Run()
	if again != 0 {
		t.Errorf("repeat call proposed %d slots, want 0", again)
	}
}

// TestRangedHeartbeatRespectsWindow asserts the fill stops at the
// watermark window instead of minting sequences no replica would accept.
func TestRangedHeartbeatRespectsWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 4
	cfg.LogWindow = 8
	c := newTestCluster(t, transport.KindRDMA, cfg)
	leader := c.Replicas[0]
	var proposed int
	c.Loop.Post(func() { proposed = leader.ProposeHeartbeat(1000) })
	c.Loop.Run()
	// The fill may ride the advancing checkpoint (each 4 executions move
	// the stable point and reopen the window on later calls), but a
	// single call must never propose beyond stable+LogWindow at the time
	// of each proposal.
	if proposed > int(cfg.LogWindow) {
		t.Fatalf("one call proposed %d slots, beyond the %d-slot window", proposed, cfg.LogWindow)
	}
	if leader.Executed() == 0 {
		t.Fatal("windowed fill executed nothing")
	}
	// Non-leaders refuse to propose heartbeats.
	var backup int
	c.Loop.Post(func() { backup = c.Replicas[1].ProposeHeartbeat(1000) })
	c.Loop.Run()
	if backup != 0 {
		t.Errorf("backup proposed %d heartbeat slots, want 0", backup)
	}
}
