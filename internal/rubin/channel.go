package rubin

import (
	"errors"
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/rdma"
	"rubin/internal/sim"
)

// Errors returned by channel operations.
var (
	ErrMessageTooBig = errors.New("rubin: message exceeds channel buffer size")
	ErrWouldBlock    = errors.New("rubin: no send capacity, wait for OpSend")
	ErrChanClosed    = errors.New("rubin: channel closed")
)

// Config sizes a channel's RDMA resources. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// SendWRs and RecvWRs are the work-request pool depths.
	SendWRs int
	RecvWRs int
	// BufferSize is the size of each pooled buffer and therefore the
	// largest message the channel can carry.
	BufferSize int
	// SignalInterval requests a signaled send completion every Nth send
	// (selective signaling). 1 signals every send.
	SignalInterval int
	// PostBatch caps how many queued sends are posted per doorbell.
	PostBatch int
	// Inline sends payloads at or below the device inline limit inside
	// the work request itself.
	Inline bool
	// ZeroCopyReceive skips the receive-side copy out of the registered
	// buffer (the paper's planned future optimization). The message
	// returned by Receive then aliases the pool buffer and must be
	// consumed before the next selector turn.
	ZeroCopyReceive bool
}

// DefaultConfig returns the channel configuration used by the paper's
// evaluation: enough 128 KB buffers for the 1–100 KB payload sweep, with
// every Section IV optimization enabled per the model's parameter set.
func DefaultConfig(p model.Params) Config {
	return Config{
		SendWRs:         64,
		RecvWRs:         64,
		BufferSize:      128 << 10,
		SignalInterval:  p.Selector.SignalInterval,
		PostBatch:       p.Selector.PostBatch,
		Inline:          true,
		ZeroCopyReceive: p.Selector.ZeroCopyReceive,
	}
}

func (cfg Config) validate() error {
	if cfg.SendWRs < 1 || cfg.RecvWRs < 1 {
		return fmt.Errorf("rubin: WR pool depths must be positive (%d/%d)", cfg.SendWRs, cfg.RecvWRs)
	}
	if cfg.BufferSize < 1 {
		return fmt.Errorf("rubin: buffer size must be positive")
	}
	if cfg.SignalInterval < 1 {
		return fmt.Errorf("rubin: signal interval must be >= 1")
	}
	if cfg.PostBatch < 1 {
		return fmt.Errorf("rubin: post batch must be >= 1")
	}
	return nil
}

// Channel is an RDMA connection with NIO-socket-like non-blocking
// semantics. Create channels with Connect or accept them from a
// ServerChannel, then register with a Selector.
type Channel struct {
	id  uint64
	dev *rdma.Device
	cfg Config

	qp     *rdma.QP
	sendCQ *rdma.CQ
	recvCQ *rdma.CQ

	// Pre-registered buffer pools (paper Section IV): one region per
	// pool, partitioned into fixed-size slots.
	sendMR *rdma.MR
	recvMR *rdma.MR

	freeSend []int // free send slot indices

	// Selective signaling bookkeeping: sends are numbered; every
	// SignalInterval-th WR is signaled and its completion releases all
	// slots up to it.
	sendSeq    uint64
	inFlight   []pendingSlot // slots awaiting a covering signaled CQE
	pendingWRs []*rdma.SendWR

	flushArmed bool
	wantSend   bool

	// Receive pipeline: CQEs queue here and are processed one at a time
	// on the owning thread so per-message copies cannot reorder.
	rxPending []rdma.CQE
	rxActive  bool

	// Received messages ready for Receive().
	inbox [][]byte

	key       *SelectionKey
	sel       *Selector
	ownThread *sim.Resource // app thread stand-in before registration
	connected bool
	closed    bool

	// Stats.
	sent, received uint64
	signaled       uint64
}

type pendingSlot struct {
	seq  uint64
	slot int // -1 for inline sends (no pool slot)
}

func newChannel(dev *rdma.Device, cfg Config, id uint64) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Channel{id: id, dev: dev, cfg: cfg}
	c.sendCQ = dev.CreateCQ(2*cfg.SendWRs + 8)
	c.recvCQ = dev.CreateCQ(2*cfg.RecvWRs + 8)
	c.freeSend = make([]int, 0, cfg.SendWRs)
	for i := 0; i < cfg.SendWRs; i++ {
		c.freeSend = append(c.freeSend, i)
	}
	return c, nil
}

// qpConfig builds the QP sizing for this channel.
func (c *Channel) qpConfig() rdma.QPConfig {
	return rdma.QPConfig{
		SendCQ:    c.sendCQ,
		RecvCQ:    c.recvCQ,
		MaxSendWR: c.cfg.SendWRs,
		MaxRecvWR: c.cfg.RecvWRs,
		MaxInline: 256,
	}
}

// finishSetup registers buffer pools and posts the initial receive WRs;
// called once the QP exists (after CM handshake on either side).
func (c *Channel) finishSetup(qp *rdma.QP) error {
	c.qp = qp
	if c.sel != nil {
		qp.SetWorkThread(c.sel.thread)
	}
	pd := c.dev.AllocPD()
	// Pool registration happens once at connection setup — the cost is
	// deliberately front-loaded (paper: buffer pools are pre-registered
	// and reused as needed).
	c.sendMR = pd.RegisterMR(c.cfg.SendWRs*c.cfg.BufferSize, rdma.AccessLocalWrite, nil)
	c.recvMR = pd.RegisterMR(c.cfg.RecvWRs*c.cfg.BufferSize, rdma.AccessLocalWrite, nil)
	for i := 0; i < c.cfg.RecvWRs; i++ {
		wr := rdma.RecvWR{ID: uint64(i), MR: c.recvMR, Offset: i * c.cfg.BufferSize, Length: c.cfg.BufferSize}
		if err := qp.PostRecv(wr); err != nil {
			return fmt.Errorf("rubin: initial PostRecv: %w", err)
		}
	}
	// The channel drains its own completion queues; the selector (if
	// registered) only contributes the event dispatch and the thread the
	// work runs on. RUBIN's event manager reads completion events much
	// more cheaply than the default per-event channel path (the heavy
	// application wakeup is the selector dispatch, charged separately).
	c.sendCQ.SetEventCost(2 * sim.Microsecond)
	c.recvCQ.SetEventCost(2 * sim.Microsecond)
	c.sendCQ.OnEvent(c.drainSendCQ)
	c.sendCQ.RequestNotify()
	c.recvCQ.OnEvent(c.drainRecvCQ)
	c.recvCQ.RequestNotify()
	c.connected = true
	return nil
}

// thread returns the single application thread this channel's RUBIN-level
// CPU work runs on: the selector's thread once registered, or a lazily
// created stand-in for bare channels.
func (c *Channel) thread() *sim.Resource {
	if c.sel != nil {
		return c.sel.thread
	}
	if c.ownThread == nil {
		c.ownThread = sim.NewResource(c.dev.Node().Loop(), c.dev.Node().Name()+"/rubin-chan", 1)
	}
	return c.ownThread
}

// drainSendCQ retires signaled send completions, releasing buffer slots.
func (c *Channel) drainSendCQ() {
	for {
		cqes := c.sendCQ.Poll(16)
		if cqes == nil {
			break
		}
		for _, cqe := range cqes {
			c.onSendCompletion(cqe)
		}
	}
	c.sendCQ.RequestNotify()
}

// drainRecvCQ queues receive completions into the serialized receive
// pipeline.
func (c *Channel) drainRecvCQ() {
	for {
		cqes := c.recvCQ.Poll(16)
		if cqes == nil {
			break
		}
		c.rxPending = append(c.rxPending, cqes...)
	}
	c.recvCQ.RequestNotify()
	c.pumpRx()
}

// pumpRx processes queued receive completions in bursts: one thread
// acquisition covers the whole burst's copy cost and one selector event is
// pushed per burst, so heavy traffic amortizes the event machinery the
// same way a real selector loop does.
func (c *Channel) pumpRx() {
	if c.rxActive || len(c.rxPending) == 0 || c.closed {
		return
	}
	c.rxActive = true
	batch := c.rxPending
	c.rxPending = nil

	p := c.dev.Node().Network().Params()
	var copyCost sim.Time
	if !c.cfg.ZeroCopyReceive {
		for _, cqe := range batch {
			if cqe.Status == rdma.StatusOK {
				copyCost += model.KB(p.Selector.CopyPerKB, cqe.Bytes)
			}
		}
	}
	c.thread().Acquire(copyCost, func() {
		delivered := 0
		for _, cqe := range batch {
			if c.closed {
				break
			}
			if c.finishRecvCQE(cqe) {
				delivered++
			}
		}
		c.rxActive = false
		if delivered > 0 && c.key != nil && c.sel != nil {
			c.key.markReady(OpReceive)
			c.sel.push(event{key: c.key, ops: OpReceive})
		}
		c.pumpRx()
	})
}

// finishRecvCQE lands one received message (copy already charged by
// pumpRx) and re-posts its buffer; reports whether a message was queued.
func (c *Channel) finishRecvCQE(cqe rdma.CQE) bool {
	if cqe.Status != rdma.StatusOK {
		c.fail()
		return false
	}
	slot := int(cqe.WRID)
	off := slot * c.cfg.BufferSize
	raw := c.recvMR.Bytes()[off : off+cqe.Bytes]
	var msg []byte
	if c.cfg.ZeroCopyReceive {
		msg = raw
	} else {
		msg = append([]byte(nil), raw...)
	}
	c.inbox = append(c.inbox, msg)
	c.received++
	wr := rdma.RecvWR{ID: cqe.WRID, MR: c.recvMR, Offset: off, Length: c.cfg.BufferSize}
	if err := c.qp.PostRecv(wr); err != nil {
		c.fail()
		return false
	}
	return true
}

// ID returns the channel's unique connection identifier (paper III-B).
func (c *Channel) ID() uint64 { return c.id }

// Peer returns the remote node once connected, else nil.
func (c *Channel) Peer() *fabric.Node {
	if c.qp == nil {
		return nil
	}
	return c.qp.RemoteNode()
}

// Connected reports whether the channel is usable for data transfer.
func (c *Channel) Connected() bool { return c.connected && !c.closed }

// Sent returns the number of messages sent.
func (c *Channel) Sent() uint64 { return c.sent }

// Received returns the number of messages received.
func (c *Channel) Received() uint64 { return c.received }

// SignaledCompletions returns how many send completions were actually
// signaled — with selective signaling this is ~Sent/SignalInterval.
func (c *Channel) SignaledCompletions() uint64 { return c.signaled }

// SendCapacity returns how many more messages can be queued right now
// (bounded by the work-request queue depth; non-inline messages
// additionally need a free pool buffer).
func (c *Channel) SendCapacity() int {
	return c.cfg.SendWRs - len(c.inFlight)
}

// Pending returns the number of received messages waiting in the inbox.
func (c *Channel) Pending() int { return len(c.inbox) }

// Send queues one message (non-blocking). It returns ErrWouldBlock when
// the send pool is exhausted; register for OpSend to learn when capacity
// returns. Messages from consecutive Send calls within one selector turn
// are posted with a single doorbell (batched posting).
func (c *Channel) Send(msg []byte) error {
	if c.closed || !c.connected {
		return ErrChanClosed
	}
	if len(msg) > c.cfg.BufferSize {
		return fmt.Errorf("%w: %d > %d", ErrMessageTooBig, len(msg), c.cfg.BufferSize)
	}
	if c.SendCapacity() <= 0 {
		c.wantSend = true
		return ErrWouldBlock
	}
	// Zero-length messages ride a pool slot (a WR must carry either
	// inline bytes or a region reference).
	inline := c.cfg.Inline && len(msg) > 0 && len(msg) <= 256
	if !inline && len(c.freeSend) == 0 {
		c.wantSend = true
		return ErrWouldBlock
	}
	c.sendSeq++
	seq := c.sendSeq
	// Selective signaling, with a forced signal when resources run low so
	// slot reclamation cannot stall behind an idle interval.
	signaled := seq%uint64(c.cfg.SignalInterval) == 0 ||
		c.SendCapacity() <= 2 || (!inline && len(c.freeSend) <= 1)

	wr := &rdma.SendWR{ID: seq, Op: rdma.OpSend, Signaled: signaled}
	slot := -1
	if inline {
		wr.Inline = append([]byte(nil), msg...)
	} else {
		slot = c.freeSend[len(c.freeSend)-1]
		c.freeSend = c.freeSend[:len(c.freeSend)-1]
		off := slot * c.cfg.BufferSize
		// Zero-copy send: the pool region is registered, so staging
		// the application bytes costs no modeled CPU copy (Section IV:
		// the application's send buffer is registered directly).
		copy(c.sendMR.Bytes()[off:], msg)
		wr.MR = c.sendMR
		wr.Offset = off
		wr.Length = len(msg)
	}
	c.inFlight = append(c.inFlight, pendingSlot{seq: seq, slot: slot})
	c.pendingWRs = append(c.pendingWRs, wr)
	c.armFlush()
	return nil
}

// armFlush schedules a doorbell at the end of the current event turn so
// that consecutive sends share one posting batch.
func (c *Channel) armFlush() {
	if c.flushArmed {
		return
	}
	c.flushArmed = true
	c.dev.Node().Loop().Post(func() {
		c.flushArmed = false
		c.Flush()
	})
}

// Flush posts all queued sends immediately, PostBatch WRs per doorbell.
func (c *Channel) Flush() {
	for len(c.pendingWRs) > 0 && !c.closed {
		n := len(c.pendingWRs)
		if n > c.cfg.PostBatch {
			n = c.cfg.PostBatch
		}
		batch := c.pendingWRs[:n]
		c.pendingWRs = c.pendingWRs[n:]
		if err := c.qp.PostSend(batch...); err != nil {
			c.fail()
			return
		}
		c.sent += uint64(n)
	}
}

// Receive pops the next received message. ok is false when the inbox is
// empty; the selector reports OpReceive readiness while messages wait.
func (c *Channel) Receive() ([]byte, bool) {
	if len(c.inbox) == 0 {
		if c.key != nil {
			c.key.ResetReady(OpReceive)
		}
		return nil, false
	}
	msg := c.inbox[0]
	c.inbox = c.inbox[1:]
	if len(c.inbox) == 0 && c.key != nil {
		c.key.ResetReady(OpReceive)
	}
	return msg, true
}

// Close tears the channel down locally and cancels its selection key.
func (c *Channel) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.connected = false
	if c.key != nil {
		c.key.Cancel()
	}
}

// Closed reports whether Close was called or the QP failed.
func (c *Channel) Closed() bool { return c.closed }

func (c *Channel) fail() {
	c.closed = true
	c.connected = false
	if c.key != nil {
		c.key.signal(OpReceive) // surface the failure to the event loop
	}
}

// onSendCompletion processes signaled send CQEs: a completion with
// sequence number s releases every pool slot with seq <= s (selective
// signaling reclaims in batches).
func (c *Channel) onSendCompletion(cqe rdma.CQE) {
	if cqe.Status != rdma.StatusOK {
		c.fail()
		return
	}
	c.signaled++
	released := 0
	for len(c.inFlight) > 0 && c.inFlight[0].seq <= cqe.WRID {
		if s := c.inFlight[0].slot; s >= 0 {
			c.freeSend = append(c.freeSend, s)
		}
		c.inFlight = c.inFlight[1:]
		released++
	}
	if released > 0 && c.wantSend {
		c.wantSend = false
		if c.key != nil {
			c.key.signal(OpSend)
		}
	}
}
