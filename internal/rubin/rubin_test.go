package rubin

import (
	"bytes"
	"fmt"
	"testing"

	"rubin/internal/fabric"
	"rubin/internal/model"
	"rubin/internal/rdma"
	"rubin/internal/sim"
)

type rig struct {
	loop       *sim.Loop
	na, nb     *fabric.Node
	da, db     *rdma.Device
	selA, selB *Selector
	params     model.Params
}

func newRig(t *testing.T, mutate func(*model.Params)) *rig {
	t.Helper()
	loop := sim.NewLoop(1)
	params := model.Default()
	if mutate != nil {
		mutate(&params)
	}
	nw := fabric.New(loop, params)
	na, nb := nw.AddNode("a"), nw.AddNode("b")
	nw.Connect(na, nb)
	r := &rig{loop: loop, na: na, nb: nb, params: params}
	r.da, r.db = rdma.OpenDevice(na), rdma.OpenDevice(nb)
	r.selA, r.selB = NewSelector(r.da), NewSelector(r.db)
	return r
}

// connect builds a connected channel pair: client on node a, server-side
// channel on node b (accepted through the selector, as an application
// would).
func (r *rig) connect(t *testing.T, cfg Config) (client, server *Channel) {
	t.Helper()
	srv, err := Listen(r.db, 7, cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	r.selB.Register(srv, OpConnect, nil)
	r.selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpConnect != 0 {
				if sc, ok := k.Channel().(*ServerChannel); ok {
					for {
						ch := sc.Accept()
						if ch == nil {
							break
						}
						server = ch
					}
				}
			}
		}
	})
	r.loop.Post(func() {
		_, err := Connect(r.da, r.nb, 7, cfg, func(ch *Channel, err error) {
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			client = ch
		})
		if err != nil {
			t.Errorf("Connect setup: %v", err)
		}
	})
	r.loop.Run()
	if client == nil || server == nil {
		t.Fatal("channel pair not established")
	}
	if srv.Err() != nil {
		t.Fatalf("server setup error: %v", srv.Err())
	}
	return client, server
}

func TestConnectEstablishesChannelPair(t *testing.T) {
	r := newRig(t, nil)
	client, server := r.connect(t, DefaultConfig(r.params))
	if !client.Connected() || !server.Connected() {
		t.Fatal("channels should be connected")
	}
	if server.ID() == 0 {
		t.Fatal("server channel should carry a connection ID")
	}
}

func TestConnectToClosedPortFails(t *testing.T) {
	r := newRig(t, nil)
	var gotErr error
	r.loop.Post(func() {
		_, _ = Connect(r.da, r.nb, 99, DefaultConfig(r.params), func(ch *Channel, err error) {
			gotErr = err
		})
	})
	r.loop.Run()
	if gotErr == nil {
		t.Fatal("expected connect failure")
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, nil)
	bad := []Config{
		{SendWRs: 0, RecvWRs: 1, BufferSize: 1, SignalInterval: 1, PostBatch: 1},
		{SendWRs: 1, RecvWRs: 0, BufferSize: 1, SignalInterval: 1, PostBatch: 1},
		{SendWRs: 1, RecvWRs: 1, BufferSize: 0, SignalInterval: 1, PostBatch: 1},
		{SendWRs: 1, RecvWRs: 1, BufferSize: 1, SignalInterval: 0, PostBatch: 1},
		{SendWRs: 1, RecvWRs: 1, BufferSize: 1, SignalInterval: 1, PostBatch: 0},
	}
	for i, cfg := range bad {
		if _, err := Listen(r.db, 100+i, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// pumpReceiver registers a channel for OpReceive on a selector and
// collects messages.
func pumpReceiver(sel *Selector, ch *Channel, out *[][]byte) {
	sel.Register(ch, OpReceive, nil)
	sel.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpReceive == 0 {
				continue
			}
			c := k.Channel().(*Channel)
			for {
				msg, ok := c.Receive()
				if !ok {
					break
				}
				*out = append(*out, msg)
			}
		}
	})
}

func TestSendReceiveRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	client, server := r.connect(t, DefaultConfig(r.params))

	var got [][]byte
	pumpReceiver(r.selB, server, &got)

	want := [][]byte{
		[]byte("alpha"),
		bytes.Repeat([]byte{0x42}, 4096),
		bytes.Repeat([]byte{0x17}, 100<<10),
	}
	r.loop.Post(func() {
		for _, m := range want {
			if err := client.Send(m); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	r.loop.Run()
	if len(got) != len(want) {
		t.Fatalf("received %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("message %d corrupted: %d bytes vs %d", i, len(got[i]), len(want[i]))
		}
	}
	if server.Received() != 3 || client.Sent() != 3 {
		t.Fatalf("counters wrong: %d sent / %d received", client.Sent(), server.Received())
	}
}

func TestMessageTooBigRejected(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	cfg.BufferSize = 1024
	client, _ := r.connect(t, cfg)
	r.loop.Post(func() {
		if err := client.Send(make([]byte, 2048)); err == nil {
			t.Error("oversized message should be rejected")
		}
	})
	r.loop.Run()
}

func TestSelectiveSignalingReducesCompletions(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	cfg.SignalInterval = 8
	client, server := r.connect(t, cfg)
	var got [][]byte
	pumpReceiver(r.selB, server, &got)

	const n = 64
	r.loop.Post(func() {
		for i := 0; i < n; i++ {
			if err := client.Send(bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		}
	})
	r.loop.Run()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	// ~n/8 periodic signals, plus at most a couple of forced signals
	// when the pool ran low — far fewer than one per message.
	if sig := client.SignaledCompletions(); sig < n/8 || sig > n/8+2 {
		t.Fatalf("signaled completions = %d, want ~%d", sig, n/8)
	}
	// All slots must be reclaimed by the covering signaled completions.
	if client.SendCapacity() != cfg.SendWRs {
		t.Fatalf("send capacity = %d, want %d (slot leak)", client.SendCapacity(), cfg.SendWRs)
	}
}

func TestEverySendSignaledWhenIntervalOne(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	cfg.SignalInterval = 1
	client, server := r.connect(t, cfg)
	var got [][]byte
	pumpReceiver(r.selB, server, &got)
	r.loop.Post(func() {
		for i := 0; i < 10; i++ {
			_ = client.Send([]byte("m"))
		}
	})
	r.loop.Run()
	if client.SignaledCompletions() != 10 {
		t.Fatalf("signaled = %d, want 10", client.SignaledCompletions())
	}
}

func TestBackpressureAndOpSend(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	cfg.SendWRs = 4
	cfg.SignalInterval = 2
	client, server := r.connect(t, cfg)
	var got [][]byte
	pumpReceiver(r.selB, server, &got)

	var blocked bool
	var resumed bool
	key := r.selA.Register(client, 0, nil)
	r.selA.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpSend != 0 {
				resumed = true
				k.ResetReady(OpSend)
				k.SetInterest(0)
			}
		}
	})
	r.loop.Post(func() {
		for i := 0; ; i++ {
			err := client.Send(bytes.Repeat([]byte{byte(i)}, 2048))
			if err == ErrWouldBlock {
				blocked = true
				key.SetInterest(OpSend)
				break
			}
			if err != nil {
				t.Errorf("Send: %v", err)
				break
			}
			if i > 100 {
				break
			}
		}
	})
	r.loop.Run()
	if !blocked {
		t.Fatal("small send pool never exerted backpressure")
	}
	if !resumed {
		t.Fatal("OpSend readiness never signaled after capacity returned")
	}
	if len(got) != 4 {
		t.Fatalf("received %d messages, want 4 (pool depth)", len(got))
	}
}

func TestInlineSendSkipsPoolSlot(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	cfg.Inline = true
	client, server := r.connect(t, cfg)
	var got [][]byte
	pumpReceiver(r.selB, server, &got)
	small := []byte("tiny") // well under the 256 B inline limit
	r.loop.Post(func() {
		if err := client.Send(small); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	r.loop.Run()
	if len(got) != 1 || !bytes.Equal(got[0], small) {
		t.Fatalf("inline message mangled: %q", got)
	}
}

func TestBatchedPostingSharesDoorbells(t *testing.T) {
	// Doorbell batching is a CPU-overhead optimization: posting 8
	// messages with one doorbell (PostWR + 7×PostWRBatched) must burn
	// less sender-thread time than 8 individual doorbells (8×PostWR).
	senderThreadBusy := func(postBatch int) sim.Time {
		r := newRig(t, func(p *model.Params) { p.Selector.PostBatch = postBatch })
		cfg := DefaultConfig(r.params)
		cfg.PostBatch = postBatch
		client, server := r.connect(t, cfg)
		var got [][]byte
		pumpReceiver(r.selB, server, &got)
		r.selA.Register(client, 0, nil) // pin posting to selA's thread
		before := r.selA.Thread().BusyTotal()
		r.loop.Post(func() {
			for i := 0; i < 8; i++ {
				_ = client.Send(bytes.Repeat([]byte{1}, 1024))
			}
		})
		r.loop.Run()
		if len(got) != 8 {
			t.Fatalf("received %d, want 8", len(got))
		}
		return r.selA.Thread().BusyTotal() - before
	}
	batched := senderThreadBusy(8)
	single := senderThreadBusy(1)
	if batched >= single {
		t.Fatalf("batched posting burned %v of sender thread, singles %v — batching should cost less", batched, single)
	}
}

func TestZeroCopyReceiveAblation(t *testing.T) {
	// Zero-copy receive must deliver identical bytes and strictly less
	// virtual time for large messages.
	run := func(zeroCopy bool) (sim.Time, []byte) {
		r := newRig(t, func(p *model.Params) { p.Selector.ZeroCopyReceive = zeroCopy })
		cfg := DefaultConfig(r.params)
		cfg.ZeroCopyReceive = zeroCopy
		client, server := r.connect(t, cfg)
		var got [][]byte
		pumpReceiver(r.selB, server, &got)
		var start sim.Time
		payload := bytes.Repeat([]byte{0x5A}, 100<<10)
		r.loop.Post(func() {
			start = r.loop.Now()
			_ = client.Send(payload)
		})
		r.loop.Run()
		if len(got) != 1 {
			t.Fatalf("received %d, want 1", len(got))
		}
		return r.loop.Now() - start, got[0]
	}
	tCopy, dataCopy := run(false)
	tZero, dataZero := run(true)
	if !bytes.Equal(dataCopy, dataZero) {
		t.Fatal("zero-copy receive corrupted data")
	}
	if tZero >= tCopy {
		t.Fatalf("zero-copy receive (%v) not faster than copying (%v)", tZero, tCopy)
	}
}

func TestManyChannelsOneSelector(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	srv, err := Listen(r.db, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	received := map[uint64]int{}
	r.selB.Register(srv, OpConnect, nil)
	r.selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			switch ch := k.Channel().(type) {
			case *ServerChannel:
				if k.Ready()&OpConnect != 0 {
					for {
						c := ch.Accept()
						if c == nil {
							break
						}
						r.selB.Register(c, OpReceive, nil)
					}
				}
			case *Channel:
				if k.Ready()&OpReceive != 0 {
					for {
						msg, ok := ch.Receive()
						if !ok {
							break
						}
						received[ch.ID()] += len(msg)
					}
				}
			}
		}
	})

	const nChans = 6
	var clients []*Channel
	r.loop.Post(func() {
		for i := 0; i < nChans; i++ {
			_, _ = Connect(r.da, r.nb, 7, cfg, func(ch *Channel, err error) {
				if err != nil {
					t.Errorf("Connect: %v", err)
					return
				}
				clients = append(clients, ch)
			})
		}
	})
	r.loop.Run()
	if len(clients) != nChans {
		t.Fatalf("%d clients connected, want %d", len(clients), nChans)
	}
	r.loop.Post(func() {
		for i, c := range clients {
			_ = c.Send(bytes.Repeat([]byte{byte(i)}, (i+1)*100))
		}
	})
	r.loop.Run()
	if len(received) != nChans {
		t.Fatalf("messages arrived on %d channels, want %d: %v", len(received), nChans, received)
	}
	total := 0
	for _, n := range received {
		total += n
	}
	if want := 100 * (1 + 2 + 3 + 4 + 5 + 6); total != want {
		t.Fatalf("total bytes %d, want %d", total, want)
	}
}

func TestEchoThroughTwoSelectors(t *testing.T) {
	r := newRig(t, nil)
	client, server := r.connect(t, DefaultConfig(r.params))

	// Server: echo.
	r.selB.Register(server, OpReceive, nil)
	r.selB.Select(func(keys []*SelectionKey) {
		for _, k := range keys {
			if k.Ready()&OpReceive == 0 {
				continue
			}
			c := k.Channel().(*Channel)
			for {
				msg, ok := c.Receive()
				if !ok {
					break
				}
				if err := c.Send(msg); err != nil {
					t.Errorf("echo Send: %v", err)
				}
			}
		}
	})

	// Client: measure completion.
	var echoed [][]byte
	pumpReceiver(r.selA, client, &echoed)
	const n = 20
	var start, end sim.Time
	r.loop.Post(func() {
		start = r.loop.Now()
		for i := 0; i < n; i++ {
			_ = client.Send(bytes.Repeat([]byte{byte(i)}, 1024))
		}
	})
	r.loop.Run()
	end = r.loop.Now()
	if len(echoed) != n {
		t.Fatalf("echoed %d, want %d", len(echoed), n)
	}
	if end <= start {
		t.Fatal("no virtual time elapsed")
	}
	for i, m := range echoed {
		if len(m) != 1024 || m[0] != byte(i) {
			t.Fatalf("echo %d corrupted", i)
		}
	}
}

func TestSendOnClosedChannelFails(t *testing.T) {
	r := newRig(t, nil)
	client, _ := r.connect(t, DefaultConfig(r.params))
	r.loop.Post(func() {
		client.Close()
		if err := client.Send([]byte("x")); err == nil {
			t.Error("Send after Close should fail")
		}
	})
	r.loop.Run()
	if !client.Closed() {
		t.Fatal("channel should report closed")
	}
}

func TestSelectorStatsAdvance(t *testing.T) {
	r := newRig(t, nil)
	client, server := r.connect(t, DefaultConfig(r.params))
	var got [][]byte
	pumpReceiver(r.selB, server, &got)
	r.loop.Post(func() {
		for i := 0; i < 5; i++ {
			_ = client.Send([]byte("stat"))
		}
	})
	r.loop.Run()
	if r.selB.Events() == 0 || r.selB.Wakeups() == 0 {
		t.Fatalf("selector stats did not advance: events=%d wakeups=%d", r.selB.Events(), r.selB.Wakeups())
	}
	if r.selB.Wakeups() > r.selB.Events() {
		t.Fatal("wakeups cannot exceed events (batching invariant)")
	}
}

func TestReceiveOrderMatchesSendOrder(t *testing.T) {
	r := newRig(t, nil)
	client, server := r.connect(t, DefaultConfig(r.params))
	var got [][]byte
	pumpReceiver(r.selB, server, &got)
	const n = 40
	r.loop.Post(func() {
		for i := 0; i < n; i++ {
			// Mix sizes so DMA times differ; order must still hold.
			size := 64 + (i%7)*4096
			msg := bytes.Repeat([]byte{byte(i)}, size)
			if err := client.Send(msg); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		}
	})
	r.loop.Run()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, m := range got {
		if m[0] != byte(i) {
			t.Fatalf("order violated at %d (got marker %d)", i, m[0])
		}
	}
}

func TestChannelIDsAreUnique(t *testing.T) {
	r := newRig(t, nil)
	cfg := DefaultConfig(r.params)
	a, _ := r.connect(t, cfg)
	// Second pair over a second port.
	srv2, err := Listen(r.db, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b *Channel
	r.selB.Register(srv2, OpConnect, nil)
	r.loop.Post(func() {
		_, _ = Connect(r.da, r.nb, 8, cfg, func(ch *Channel, err error) { b = ch })
	})
	r.loop.Run()
	if b == nil {
		t.Fatal("second channel not established")
	}
	ka := r.selA.Register(a, 0, nil)
	kb := r.selA.Register(b, 0, nil)
	if ka.ID() == kb.ID() {
		t.Fatal("selection key IDs must be unique")
	}
	if fmt.Sprint(a.ID()) == "" {
		t.Fatal("unreachable")
	}
}
