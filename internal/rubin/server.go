package rubin

import (
	"fmt"

	"rubin/internal/fabric"
	"rubin/internal/rdma"
)

// ServerChannel accepts inbound RDMA connections on a CM port, queueing
// established channels until the application calls Accept. Incoming
// connections surface as OpConnect readiness on its selection key.
type ServerChannel struct {
	dev      *rdma.Device
	cfg      Config
	listener *rdma.Listener
	backlog  []*Channel
	key      *SelectionKey
	nextID   *uint64
	err      error
}

// Listen opens a server channel on the device. Each accepted connection
// gets its own channel built from cfg.
func Listen(dev *rdma.Device, port int, cfg Config) (*ServerChannel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var idCounter uint64
	sc := &ServerChannel{dev: dev, cfg: cfg, nextID: &idCounter}
	pd := dev.AllocPD()

	// Each inbound handshake needs a fresh channel (with its own CQs)
	// before the QP exists, so the config factory creates it and the
	// establishment callback finishes it.
	var pending []*Channel
	l, err := dev.ListenCM(port, pd, func() rdma.QPConfig {
		*sc.nextID++
		ch, err := newChannel(dev, cfg, *sc.nextID)
		if err != nil {
			// Config was validated above; a failure here is a bug.
			panic(fmt.Sprintf("rubin: newChannel: %v", err))
		}
		pending = append(pending, ch)
		return ch.qpConfig()
	}, func(qp *rdma.QP) {
		if len(pending) == 0 {
			return
		}
		ch := pending[0]
		pending = pending[1:]
		if err := ch.finishSetup(qp); err != nil {
			sc.err = err
			return
		}
		sc.backlog = append(sc.backlog, ch)
		sc.key.signal(OpConnect)
	})
	if err != nil {
		return nil, err
	}
	sc.listener = l
	return sc, nil
}

func (sc *ServerChannel) bindKey(k *SelectionKey) { sc.key = k }

func (sc *ServerChannel) readiness() InterestOps {
	if len(sc.backlog) > 0 {
		return OpConnect
	}
	return 0
}

// Accept dequeues one established inbound channel, or nil if none waits.
// The caller must register the returned channel with a selector to
// receive messages on it.
func (sc *ServerChannel) Accept() *Channel {
	if len(sc.backlog) == 0 {
		if sc.key != nil {
			sc.key.ResetReady(OpConnect)
		}
		return nil
	}
	ch := sc.backlog[0]
	sc.backlog = sc.backlog[1:]
	if len(sc.backlog) == 0 && sc.key != nil {
		sc.key.ResetReady(OpConnect)
	}
	return ch
}

// Err returns the first setup error encountered while accepting, if any.
func (sc *ServerChannel) Err() error { return sc.err }

// Close stops accepting.
func (sc *ServerChannel) Close() {
	sc.listener.Close()
	if sc.key != nil {
		sc.key.Cancel()
	}
}

// Connect opens a channel to a server channel listening on the remote
// node. Establishment is signaled as OpAccept readiness if the channel is
// registered with interest OpAccept, and via the optional done callback.
func Connect(dev *rdma.Device, remote *fabric.Node, port int, cfg Config, done func(*Channel, error)) (*Channel, error) {
	var id uint64 // client-side IDs come from the selector key instead
	ch, err := newChannel(dev, cfg, id)
	if err != nil {
		return nil, err
	}
	pd := dev.AllocPD()
	dev.ConnectCM(remote, port, pd, ch.qpConfig(), func(qp *rdma.QP, err error) {
		if err != nil {
			ch.closed = true
			if done != nil {
				done(nil, err)
			}
			ch.key.signal(OpAccept)
			return
		}
		if err := ch.finishSetup(qp); err != nil {
			ch.closed = true
			if done != nil {
				done(nil, err)
			}
			ch.key.signal(OpAccept)
			return
		}
		if done != nil {
			done(ch, nil)
		}
		ch.key.signal(OpAccept)
	})
	return ch, nil
}

func (c *Channel) bindKey(k *SelectionKey) {
	c.key = k
	c.id = k.id
}

func (c *Channel) readiness() InterestOps {
	var r InterestOps
	if len(c.inbox) > 0 {
		r |= OpReceive
	}
	if c.connected && c.SendCapacity() > 0 {
		r |= OpSend
	}
	if c.connected {
		r |= OpAccept
	}
	return r
}
