// Package rubin implements RUBIN, the paper's contribution: an RDMA
// communication framework that recreates the behaviour of the Java NIO
// selector and socket channel (paper Section III) so that BFT frameworks
// built around that interface — Reptor, BFT-SMaRt, UpRight — can adopt
// RDMA without redesigning their communication stacks.
//
// Components (Figure 1 of the paper):
//
//   - Channel: an RDMA connection with non-blocking Send/Receive methods,
//     owning its queue pair, pre-registered buffer pools and work requests.
//     Buffer count and size are configured independently (Section III-B).
//   - Selector: checks readiness of many channels without blocking on a
//     single thread. A hybrid event queue merges connection events (from
//     the RDMA CM) with completion events (from completion queues), and an
//     event manager replaces epoll (Section III-B.2).
//   - SelectionKey: the result of registering a channel, holding the
//     interest set — OpConnect (incoming connections), OpAccept
//     (connection establishments), OpReceive (received messages), OpSend
//     (send capacity) — and the ready set updated as I/O events arrive.
//
// The Section IV optimizations are all implemented and individually
// controllable through Config for ablation:
//
//   - pre-registered send/receive buffer pools, reused across messages;
//   - batched work-request posting (one doorbell for many WRs);
//   - selective signaling (a send completion only every Nth message);
//   - inline sends for payloads up to the device inline limit;
//   - zero-copy send (the application buffer region is registered
//     directly); the receive side still performs one copy out of the
//     registered buffer — the paper's known limitation, removable with
//     Config.ZeroCopyReceive to project the planned optimization.
//
// Security (Section III-C): RUBIN uses two-sided Send/Receive semantics
// exclusively, so no buffer is ever exposed to remote one-sided access and
// the receiver alone decides data placement; see the rdma package for the
// enforcement of the underlying protection checks.
package rubin
