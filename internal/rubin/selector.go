package rubin

import (
	"rubin/internal/rdma"
	"rubin/internal/sim"
)

// InterestOps is the bitmask of events a RUBIN selection key watches —
// the four interests of paper Section III-B.
type InterestOps uint8

// Interest/readiness bits.
const (
	// OpConnect: an incoming connection request arrived at a
	// ServerChannel.
	OpConnect InterestOps = 1 << iota
	// OpAccept: an outbound connection establishment completed.
	OpAccept
	// OpReceive: a message arrived and is ready for Receive.
	OpReceive
	// OpSend: send capacity became available after exhaustion.
	OpSend
)

// Registrable is a channel type accepted by Selector.Register.
type Registrable interface {
	bindKey(k *SelectionKey)
	readiness() InterestOps
}

// event is one element of the hybrid event queue, carrying either a
// connection notification or a completion notification for a channel
// (paper Figure 2: copies of event-channel and completion-queue elements
// merge into one queue).
type event struct {
	key *SelectionKey
	ops InterestOps
}

// Selector multiplexes RDMA connection and completion events from many
// channels onto one application thread, mirroring the Java NIO selector's
// role in BFT frameworks.
type Selector struct {
	dev *rdma.Device

	// thread is the single selector/application thread; RUBIN-level CPU
	// work (event dispatch, receive copies) serializes here.
	thread *sim.Resource

	keys    []*SelectionKey
	nextKey uint64

	// The hybrid event queue and its event-manager state.
	hybridQ  []event
	dispatch bool
	handler  func([]*SelectionKey)

	// Stats.
	events  uint64
	wakeups uint64
}

// NewSelector creates a selector on a device's node.
func NewSelector(dev *rdma.Device) *Selector {
	return &Selector{
		dev:    dev,
		thread: sim.NewResource(dev.Node().Loop(), dev.Node().Name()+"/rubin", 1),
	}
}

// Device returns the RDMA device the selector serves.
func (s *Selector) Device() *rdma.Device { return s.dev }

// Thread returns the selector's single application thread resource; its
// busy time measures RUBIN's CPU overhead (useful for ablations).
func (s *Selector) Thread() *sim.Resource { return s.thread }

// Events returns the total number of events that traversed the hybrid
// event queue.
func (s *Selector) Events() uint64 { return s.events }

// Wakeups returns the number of dispatch batches delivered to the handler.
func (s *Selector) Wakeups() uint64 { return s.wakeups }

// Register attaches a channel with an interest set, returning its
// selection key (a "selectable channel" per the paper). Registering a
// Channel also arms its completion queues with the selector's event
// manager.
func (s *Selector) Register(ch Registrable, ops InterestOps, attachment any) *SelectionKey {
	s.nextKey++
	k := &SelectionKey{sel: s, ch: ch, id: s.nextKey, interest: ops, attachment: attachment}
	s.keys = append(s.keys, k)
	ch.bindKey(k)
	if c, ok := ch.(*Channel); ok {
		s.armChannel(c)
	}
	if r := ch.readiness() & ops; r != 0 {
		k.ready |= r
		s.push(event{key: k, ops: r})
	}
	return k
}

// armChannel moves the channel's RUBIN-level CPU work onto the selector's
// single thread; the channel itself already drains its completion queues.
func (s *Selector) armChannel(c *Channel) {
	c.sel = s
	c.sendCQ.SetWorkThread(s.thread)
	c.recvCQ.SetWorkThread(s.thread)
	if c.qp != nil {
		c.qp.SetWorkThread(s.thread)
	}
}

// push adds an event to the hybrid queue; the event manager then notifies
// a pending select (paper Figure 2, steps 4–5).
func (s *Selector) push(ev event) {
	if ev.key == nil || ev.key.canceled {
		return
	}
	s.hybridQ = append(s.hybridQ, ev)
	s.events++
	s.pump()
}

// Select installs the readiness handler (the select() invocation of paper
// Figure 2, step 3: it "blocks" until events arrive). The same contract
// as the NIO selector applies: the handler must consume or clear every
// ready+interesting bit or the dispatch loop spins, like any
// level-triggered event loop.
func (s *Selector) Select(handler func([]*SelectionKey)) {
	s.handler = handler
	s.pump()
}

// SelectNow drains currently ready keys without dispatch cost.
func (s *Selector) SelectNow() []*SelectionKey { return s.takeReady() }

func (s *Selector) takeReady() []*SelectionKey {
	if len(s.hybridQ) == 0 {
		return nil
	}
	// Match events to interested keys (ID comparison per the paper);
	// deduplicate to one entry per key preserving first-event order.
	seen := make(map[*SelectionKey]struct{}, len(s.hybridQ))
	var keys []*SelectionKey
	for _, ev := range s.hybridQ {
		k := ev.key
		if k.canceled || k.ready&k.interest == 0 {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	s.hybridQ = s.hybridQ[:0]
	return keys
}

func (s *Selector) pump() {
	if s.handler == nil || s.dispatch || len(s.hybridQ) == 0 {
		return
	}
	s.dispatch = true
	// The event-manager notification plus key matching: RUBIN's
	// select() path, slower than the native epoll-backed NIO selector
	// (paper Section IV notes native code as future work).
	params := s.dev.Node().Network().Params()
	s.thread.Acquire(params.Selector.RubinDispatch, func() {
		s.dispatch = false
		keys := s.takeReady()
		if len(keys) == 0 || s.handler == nil {
			return
		}
		s.wakeups++
		s.handler(keys)
		for _, k := range keys {
			if !k.canceled && k.ready&k.interest != 0 {
				s.hybridQ = append(s.hybridQ, event{key: k, ops: k.ready & k.interest})
			}
		}
		s.pump()
	})
}

// SelectionKey ties a channel to a selector; its unique ID characterizes
// the connection (paper Section III-B).
type SelectionKey struct {
	sel        *Selector
	ch         Registrable
	id         uint64
	interest   InterestOps
	ready      InterestOps
	attachment any
	canceled   bool
}

// ID returns the key's unique identifier.
func (k *SelectionKey) ID() uint64 { return k.id }

// Channel returns the registered channel (a *Channel or *ServerChannel).
func (k *SelectionKey) Channel() Registrable { return k.ch }

// Attachment returns the object attached at registration.
func (k *SelectionKey) Attachment() any { return k.attachment }

// Attach replaces the attachment.
func (k *SelectionKey) Attach(a any) { k.attachment = a }

// Interest returns the interest set.
func (k *SelectionKey) Interest() InterestOps { return k.interest }

// SetInterest replaces the interest set, re-evaluating readiness.
func (k *SelectionKey) SetInterest(ops InterestOps) {
	k.interest = ops
	if r := k.ch.readiness() & ops; r != 0 {
		k.ready |= r
		k.sel.push(event{key: k, ops: r})
	}
}

// Ready returns the ready set.
func (k *SelectionKey) Ready() InterestOps { return k.ready }

// ResetReady clears readiness bits once handled.
func (k *SelectionKey) ResetReady(ops InterestOps) { k.ready &^= ops }

// Cancel removes the key from the selector.
func (k *SelectionKey) Cancel() {
	if k.canceled {
		return
	}
	k.canceled = true
	for i, other := range k.sel.keys {
		if other == k {
			k.sel.keys = append(k.sel.keys[:i], k.sel.keys[i+1:]...)
			break
		}
	}
}

// markReady sets bits without queueing an event (the caller queues).
func (k *SelectionKey) markReady(ops InterestOps) { k.ready |= ops }

// signal sets bits and queues a hybrid event if the key is interested.
func (k *SelectionKey) signal(ops InterestOps) {
	if k == nil || k.canceled {
		return
	}
	k.ready |= ops
	if ops&k.interest != 0 {
		k.sel.push(event{key: k, ops: ops})
	}
}
