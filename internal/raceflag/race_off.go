//go:build !race

package raceflag

// Enabled reports that this binary runs under the race detector.
const Enabled = false
